package bus

import (
	"fmt"

	"adelie/internal/mm"
)

// CloneFor rebuilds this bus for a forked machine over as (the fork's
// address space, whose MMIO regions still point at the template's
// devices). replace maps each attached template device to its clone;
// every window keeps its base and IRQ line, the cloned address space's
// MMIO regions are rebound to the cloned devices, and IRQ devices are
// re-wired to the clone's interrupt controller — so the fork's device
// topology is identical and its interrupt state diverges independently.
func (b *Bus) CloneFor(as *mm.AddressSpace, replace func(Device) Device) (*Bus, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	nb := &Bus{
		as:     as,
		next:   b.next,
		byName: make(map[string]attached, len(b.byName)),
		ic:     b.ic.clone(),
	}
	nb.now.Store(b.now.Load())
	for _, a := range b.devs {
		nd := replace(a.dev)
		if nd == nil {
			return nil, fmt.Errorf("bus: clone: no replacement for device %q", a.dev.DevName())
		}
		if err := as.RebindMMIO(a.base, nd); err != nil {
			return nil, fmt.Errorf("bus: clone: %q: %w", nd.DevName(), err)
		}
		na := attached{dev: nd, base: a.base, line: a.line, lines: append([]int(nil), a.lines...)}
		switch dd := nd.(type) {
		case MSIXDevice:
			if len(na.lines) > 0 {
				lines := make([]*Line, len(na.lines))
				for v, n := range na.lines {
					lines[v] = &Line{n: n, ic: nb.ic}
				}
				dd.ConnectVectors(lines, nb.Now)
			}
		case IRQDevice:
			if a.line >= 0 {
				dd.ConnectIRQ(&Line{n: a.line, ic: nb.ic}, nb.Now)
			}
		}
		nb.devs = append(nb.devs, na)
		nb.byName[nd.DevName()] = na
		if t, ok := nd.(Ticker); ok {
			nb.tickers = append(nb.tickers, t)
		}
	}
	return nb, nil
}

// clone deep-copies the interrupt controller: line count, pending set,
// per-line counters and the delivery trace all carry over so a forked
// machine's coalescing figures continue from the snapshot point.
func (ic *IntController) clone() *IntController {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	n := &IntController{
		lines:     ic.lines,
		pending:   make(map[int]uint64, len(ic.pending)),
		raised:    append([]uint64(nil), ic.raised...),
		delivered: append([]uint64(nil), ic.delivered...),
		spurious:  append([]uint64(nil), ic.spurious...),
		latSum:    append([]uint64(nil), ic.latSum...),
		routes:    append([]int(nil), ic.routes...),
		trace:     append([]DeliveredIRQ(nil), ic.trace...),
	}
	for line, since := range ic.pending {
		n.pending[line] = since
	}
	return n
}
