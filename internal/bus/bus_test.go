package bus

import (
	"testing"

	"adelie/internal/mm"
)

// fakeDev is a minimal Device; with line != nil it is also an IRQDevice,
// and with epoch=true an EpochDevice.
type fakeDev struct {
	name   string
	pages  int
	regs   map[uint64]uint64
	line   *Line
	now    func() uint64
	epochs int
}

func (d *fakeDev) DevName() string { return d.name }
func (d *fakeDev) DevPages() int   { return d.pages }
func (d *fakeDev) MMIORead(off uint64) uint64 {
	return d.regs[off]
}
func (d *fakeDev) MMIOWrite(off uint64, val uint64) {
	if d.regs == nil {
		d.regs = map[uint64]uint64{}
	}
	d.regs[off] = val
}

type irqDev struct{ fakeDev }

func (d *irqDev) ConnectIRQ(l *Line, now func() uint64) { d.line, d.now = l, now }

type epochDev struct{ fakeDev }

func (d *epochDev) BeginEpoch() { d.epochs++ }
func (d *epochDev) EndEpoch()   { d.epochs++ }

func newBus(t *testing.T) *Bus {
	t.Helper()
	as := mm.NewAddressSpace(mm.NewPhysMem())
	return New(as, mm.KernelBase+0x7_0000_0000)
}

// TestAttachAllocatesWindowsInOrder: bases come out 64 KB apart in attach
// order, reads/writes route to the right handler, and lookups resolve.
func TestAttachAllocatesWindowsInOrder(t *testing.T) {
	b := newBus(t)
	d0 := &fakeDev{name: "a", pages: 1}
	d1 := &fakeDev{name: "b", pages: 1}
	b0, err := b.Attach(d0)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := b.Attach(d1)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b0+16*mm.PageSize {
		t.Fatalf("window stride = %#x, want %#x", b1-b0, 16*mm.PageSize)
	}
	if got, ok := b.Base("b"); !ok || got != b1 {
		t.Fatalf("Base(b) = %#x,%v", got, ok)
	}
	if _, err := b.Attach(&fakeDev{name: "a", pages: 1}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if len(b.Devices()) != 2 {
		t.Fatalf("devices = %d", len(b.Devices()))
	}
}

// TestIRQLinesAssignedInAttachOrder: only IRQDevices get lines, numbered
// by attach order; plain devices report -1.
func TestIRQLinesAssignedInAttachOrder(t *testing.T) {
	b := newBus(t)
	plain := &fakeDev{name: "plain", pages: 1}
	i0 := &irqDev{fakeDev{name: "i0", pages: 1}}
	i1 := &irqDev{fakeDev{name: "i1", pages: 1}}
	for _, d := range []Device{plain, i0, i1} {
		if _, err := b.Attach(d); err != nil {
			t.Fatal(err)
		}
	}
	if b.IRQLine("plain") != -1 {
		t.Fatal("plain device got a line")
	}
	if i0.line.Num() != 0 || i1.line.Num() != 1 {
		t.Fatalf("lines = %d,%d, want 0,1", i0.line.Num(), i1.line.Num())
	}
	if b.IRQLine("i1") != 1 {
		t.Fatalf("IRQLine(i1) = %d", b.IRQLine("i1"))
	}
	// The clock reader hands back what the engine published.
	b.SetNow(12345)
	if i0.now() != 12345 {
		t.Fatalf("device clock = %d", i0.now())
	}
}

// TestEpochDevicesByAssertion: the epoch set is discovered from the
// attached devices, replacing the engine's old variadic.
func TestEpochDevicesByAssertion(t *testing.T) {
	b := newBus(t)
	e := &epochDev{fakeDev{name: "e", pages: 1}}
	if _, err := b.Attach(&fakeDev{name: "p", pages: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Attach(e); err != nil {
		t.Fatal(err)
	}
	eds := b.EpochDevices()
	if len(eds) != 1 {
		t.Fatalf("epoch devices = %d, want 1", len(eds))
	}
	eds[0].BeginEpoch()
	eds[0].EndEpoch()
	if e.epochs != 2 {
		t.Fatalf("epoch calls = %d", e.epochs)
	}
}

// TestControllerCoalescesAndOrders: repeated raises of one line merge
// keeping the earliest pendingSince; TakePending drains sorted by line
// and a second call returns nothing.
func TestControllerCoalescesAndOrders(t *testing.T) {
	ic := NewIntController()
	l0, l1 := ic.addLine(), ic.addLine()
	ic.raise(l1, 500)
	ic.raise(l0, 900)
	ic.raise(l1, 300) // earlier work: Since must drop to 300
	p := ic.TakePending()
	if len(p) != 2 || p[0].Line != l0 || p[1].Line != l1 {
		t.Fatalf("pending = %+v", p)
	}
	if p[0].Since != 900 || p[1].Since != 300 {
		t.Fatalf("since = %d,%d, want 900,300", p[0].Since, p[1].Since)
	}
	if ic.TakePending() != nil {
		t.Fatal("pending not drained")
	}
	if ic.Raised(l1) != 2 {
		t.Fatalf("raised(l1) = %d", ic.Raised(l1))
	}
}

// TestControllerLatencyAndTrace: delivery notes accumulate latency
// against the earliest pending work and append to the trace; unhandled
// deliveries count as spurious.
func TestControllerLatencyAndTrace(t *testing.T) {
	ic := NewIntController()
	l := ic.addLine()
	ic.raise(l, 100)
	p := ic.TakePending()[0]
	ic.NoteDelivered(p, 400, true)
	ic.raise(l, 1000)
	p = ic.TakePending()[0]
	ic.NoteDelivered(p, 1000, false)
	if ic.Delivered(l) != 1 || ic.Spurious(l) != 1 {
		t.Fatalf("delivered=%d spurious=%d", ic.Delivered(l), ic.Spurious(l))
	}
	if avg := ic.AvgLatencyCycles(l); avg != 300 {
		t.Fatalf("avg latency = %f, want 300", avg)
	}
	tr := ic.Trace()
	if len(tr) != 2 || tr[0] != (DeliveredIRQ{Line: l, AtCycle: 400, Handled: true}) {
		t.Fatalf("trace = %+v", tr)
	}
}

// TestTickReachesTickers: Tick steps devices implementing Ticker with
// the published clock and the force flag.
type tickDev struct {
	fakeDev
	ticks []uint64
	force bool
}

func (d *tickDev) Tick(now uint64, force bool) {
	d.ticks = append(d.ticks, now)
	d.force = d.force || force
}

func TestTickReachesTickers(t *testing.T) {
	b := newBus(t)
	td := &tickDev{fakeDev: fakeDev{name: "t", pages: 1}}
	if _, err := b.Attach(td); err != nil {
		t.Fatal(err)
	}
	b.SetNow(777)
	b.Tick(false)
	b.Tick(true)
	if len(td.ticks) != 2 || td.ticks[0] != 777 || !td.force {
		t.Fatalf("ticks = %+v force=%v", td.ticks, td.force)
	}
}
