// Package bus is the device interconnect of the simulated testbed: it
// allocates MMIO windows, dispatches device registration, and owns the
// deterministic interrupt controller.
//
// Before the bus, sim.New hand-registered each device at a hardcoded
// MMIO base and the engine received epoch-deterministic devices as a
// separate variadic list. The bus unifies both: a device implements
// Device (name + window size), optionally IRQDevice (an interrupt line),
// optionally EpochDevice (round-granular state semantics, discovered by
// interface assertion), and optionally Ticker (a coalescing timer
// stepped on the virtual clock). Attach order is the only wiring input,
// so a machine's device map — bases, IRQ lines, epoch set — is a pure
// function of the attach sequence and stays bit-reproducible.
//
// Interrupts and determinism. Devices raise their lines at any point
// during a round (a doorbell write on one vCPU can make a peer NIC
// assert), but lines are only *delivered* — ISRs only run — at the
// engine's barrier-synchronized clock boundaries, with every vCPU
// quiescent, in ascending line order. Raising is a commutative
// set-union operation (the set of lines pending at the barrier does not
// depend on host scheduling within the round), so delivery order, ISR
// side effects and every RunResult derived from them are deterministic.
package bus

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"adelie/internal/mm"
	"adelie/internal/obs"
)

// Device is a bus-attachable device: an MMIO register block with a
// stable name. Optional capabilities are discovered by interface
// assertion at Attach time: IRQDevice, EpochDevice, Ticker.
type Device interface {
	mm.MMIOHandler
	// DevName is the stable lookup name ("nvme", "nic0", …); Attach
	// rejects duplicates.
	DevName() string
	// DevPages is the MMIO window size in pages.
	DevPages() int
}

// IRQDevice is a Device with an interrupt line. The bus assigns line
// numbers in attach order and hands the device its line plus a reader
// for the virtual clock (cycles), which the device uses to timestamp
// pending work for coalescing decisions.
type IRQDevice interface {
	Device
	ConnectIRQ(line *Line, now func() uint64)
}

// MSIXDevice is a Device with an MSI-X-style vector table: it raises
// NumVectors independent lines (one per queue), each individually
// routable to a target vCPU. The bus allocates the vectors as
// consecutive controller lines in attach order, so a device's vector v
// is always line base+v and the map stays a pure function of the attach
// sequence. Checked before IRQDevice at Attach time, so a device
// implementing both connects through its vector table.
type MSIXDevice interface {
	Device
	// NumVectors is the vector-table size; must be >= 1.
	NumVectors() int
	// ConnectVectors hands the device its lines, index = vector number.
	ConnectVectors(lines []*Line, now func() uint64)
}

// EpochDevice is a device with round-granular (epoch) state semantics:
// between BeginEpoch and EndEpoch, reads of modeled device state (e.g.
// the NVMe controller's DRAM-cache contents) observe the epoch-start
// snapshot while updates are buffered, and EndEpoch applies the buffer
// in deterministic order. This keeps latencies independent of the host
// scheduling order of lanes within a round.
type EpochDevice interface {
	BeginEpoch()
	EndEpoch()
}

// Ticker is a device with a clocked timer (interrupt coalescing delay).
// Tick runs at every clock boundary with all vCPUs quiescent; force is
// set on the final tick of a measurement so pending work flushes.
type Ticker interface {
	Tick(nowCycles uint64, force bool)
}

// windowStride is the minimum MMIO window spacing (64 KB), matching the
// per-device bases the testbed used before the bus existed.
const windowStride = 16 * mm.PageSize

type attached struct {
	dev   Device
	base  uint64
	line  int   // first IRQ line (vector 0), -1 if none
	lines []int // all vector lines, in vector order; nil if none
}

// Bus allocates MMIO windows, owns the interrupt controller, and keeps
// the device registry.
type Bus struct {
	as   *mm.AddressSpace
	next uint64

	mu      sync.Mutex
	devs    []attached
	byName  map[string]attached
	tickers []Ticker // devices with coalescing timers, in attach order

	ic  *IntController
	now atomic.Uint64 // virtual clock in cycles, set at engine barriers
}

// New returns an empty bus allocating MMIO windows upward from base.
func New(as *mm.AddressSpace, base uint64) *Bus {
	return &Bus{as: as, next: base, byName: map[string]attached{}, ic: NewIntController()}
}

// Attach registers d's MMIO window at the next free base and wires its
// optional IRQ line. It returns the allocated window base.
func (b *Bus) Attach(d Device) (uint64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	name := d.DevName()
	if _, dup := b.byName[name]; dup {
		return 0, fmt.Errorf("bus: duplicate device name %q", name)
	}
	pages := d.DevPages()
	if pages <= 0 {
		pages = 1
	}
	base := b.next
	if err := b.as.RegisterMMIO(base, pages, d); err != nil {
		return 0, fmt.Errorf("bus: attaching %q: %w", name, err)
	}
	stride := uint64(pages) * mm.PageSize
	if stride < windowStride {
		stride = windowStride
	}
	b.next += stride

	a := attached{dev: d, base: base, line: -1}
	switch dd := d.(type) {
	case MSIXDevice:
		nv := dd.NumVectors()
		if nv < 1 {
			nv = 1
		}
		lines := make([]*Line, nv)
		for v := range lines {
			n := b.ic.addLine()
			lines[v] = &Line{n: n, ic: b.ic}
			a.lines = append(a.lines, n)
		}
		a.line = a.lines[0]
		dd.ConnectVectors(lines, b.Now)
	case IRQDevice:
		a.line = b.ic.addLine()
		a.lines = []int{a.line}
		dd.ConnectIRQ(&Line{n: a.line, ic: b.ic}, b.Now)
	}
	b.devs = append(b.devs, a)
	b.byName[name] = a
	if t, ok := d.(Ticker); ok {
		b.tickers = append(b.tickers, t)
	}
	return base, nil
}

// Base returns the MMIO window base of the named device.
func (b *Bus) Base(name string) (uint64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a, ok := b.byName[name]
	if !ok {
		return 0, false
	}
	return a.base, true
}

// IRQLine returns the interrupt line of the named device (-1 if the
// device has no line or is not attached). For an MSI-X device this is
// vector 0's line.
func (b *Bus) IRQLine(name string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if a, ok := b.byName[name]; ok {
		return a.line
	}
	return -1
}

// IRQLines returns every interrupt line of the named device in vector
// order (nil if the device has no lines or is not attached).
func (b *Bus) IRQLines(name string) []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if a, ok := b.byName[name]; ok {
		return append([]int(nil), a.lines...)
	}
	return nil
}

// Devices returns the attached devices in attach order.
func (b *Bus) Devices() []Device {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Device, len(b.devs))
	for i, a := range b.devs {
		out[i] = a.dev
	}
	return out
}

// EpochDevices returns, in attach order, the attached devices that
// implement EpochDevice — the interface-assertion replacement for the
// engine's old EpochDevice variadic.
func (b *Bus) EpochDevices() []EpochDevice {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []EpochDevice
	for _, a := range b.devs {
		if e, ok := a.dev.(EpochDevice); ok {
			out = append(out, e)
		}
	}
	return out
}

// IC returns the interrupt controller.
func (b *Bus) IC() *IntController { return b.ic }

// SetNow publishes the virtual clock (cycles). The engine calls it at
// barriers only, so every Deliver/Raise within a round observes the
// round-start time — a deterministic timestamp.
func (b *Bus) SetNow(cycles uint64) { b.now.Store(cycles) }

// Now reads the virtual clock as of the last barrier.
func (b *Bus) Now() uint64 { return b.now.Load() }

// Tick steps every Ticker device at a clock boundary (coalescing-delay
// checks). force flushes pending work at end of measurement. The ticker
// set is precomputed at Attach time, so a machine with no coalescing
// devices pays one lock per barrier and no allocation.
func (b *Bus) Tick(force bool) {
	b.mu.Lock()
	tickers := b.tickers
	b.mu.Unlock()
	if len(tickers) == 0 {
		return
	}
	now := b.Now()
	for _, t := range tickers {
		t.Tick(now, force)
	}
}

// Line is one device's interrupt line.
type Line struct {
	n  int
	ic *IntController
}

// Num returns the controller line number.
func (l *Line) Num() int { return l.n }

// Assert raises the line. pendingSince is the virtual time (cycles) the
// oldest work covered by this interrupt has been waiting — the
// controller keeps the earliest value per line and reports delivery
// latency against it.
func (l *Line) Assert(pendingSince uint64) { l.ic.raise(l.n, pendingSince) }

// PendingIRQ is one raised-but-undelivered line.
type PendingIRQ struct {
	Line  int
	Since uint64 // earliest pendingSince across the raises being coalesced
	VCPU  int    // route target at drain time (vector-table entry)
}

// DeliveredIRQ is one ISR dispatch, recorded for determinism audits.
type DeliveredIRQ struct {
	Line    int
	VCPU    int // the vCPU the ISR ran on
	AtCycle uint64
	Handled bool
}

// IntController collects lines raised during a round and hands them to
// the engine at the barrier, in ascending line order. Each line carries
// a route — the vector-table entry naming its target vCPU (default 0) —
// which TakePending stamps onto the drained set so the engine can group
// delivery per lane. It also keeps the delivery trace and per-line
// latency sums the coalescing figures read.
type IntController struct {
	mu      sync.Mutex
	lines   int
	pending map[int]uint64 // line → earliest pendingSince
	routes  []int          // line → target vCPU (the vector table)

	raised    []uint64 // per line
	delivered []uint64
	spurious  []uint64
	latSum    []uint64 // Σ (deliveredAt - pendingSince), cycles
	trace     []DeliveredIRQ
}

// NewIntController returns an empty controller.
func NewIntController() *IntController {
	return &IntController{pending: map[int]uint64{}}
}

func (ic *IntController) addLine() int {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	n := ic.lines
	ic.lines++
	ic.raised = append(ic.raised, 0)
	ic.delivered = append(ic.delivered, 0)
	ic.spurious = append(ic.spurious, 0)
	ic.latSum = append(ic.latSum, 0)
	ic.routes = append(ic.routes, 0)
	return n
}

// SetRoute points a line's vector-table entry at a target vCPU.
// Unknown lines and negative targets are ignored: the route table only
// covers allocated vectors, and the engine clamps out-of-range targets
// to the booted vCPU count at delivery time.
func (ic *IntController) SetRoute(line, vcpu int) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if line < 0 || line >= len(ic.routes) || vcpu < 0 {
		return
	}
	ic.routes[line] = vcpu
}

// Route returns a line's current target vCPU (0 for unknown lines).
func (ic *IntController) Route(line int) int {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if line < 0 || line >= len(ic.routes) {
		return 0
	}
	return ic.routes[line]
}

// Process-wide interrupt counters, resolved once: raise runs on the hot
// concurrent device path (multi-queue NICs raise from several goroutines
// per round), so the per-event cost must stay one atomic add — not a
// registry mutex + map lookup.
var (
	mIRQsRaised    = obs.Default.Counter("adelie_bus_irqs_raised_total")
	mIRQsDelivered = obs.Default.Counter("adelie_bus_irqs_delivered_total")
	mIRQsSpurious  = obs.Default.Counter("adelie_bus_irqs_spurious_total")
)

// raise marks a line pending. Repeated raises before delivery coalesce,
// keeping the earliest pendingSince: the merged interrupt covers the
// oldest waiting work. Raising is commutative, which is what makes the
// barrier-observed pending set independent of intra-round scheduling.
func (ic *IntController) raise(line int, pendingSince uint64) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	ic.raised[line]++
	mIRQsRaised.Inc()
	if since, ok := ic.pending[line]; !ok || pendingSince < since {
		ic.pending[line] = pendingSince
	}
}

// TakePending atomically drains the pending set, sorted by line number —
// the deterministic delivery order.
func (ic *IntController) TakePending() []PendingIRQ {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if len(ic.pending) == 0 {
		return nil
	}
	out := make([]PendingIRQ, 0, len(ic.pending))
	for line, since := range ic.pending {
		out = append(out, PendingIRQ{Line: line, Since: since, VCPU: ic.routes[line]})
	}
	clear(ic.pending)
	sort.Slice(out, func(i, j int) bool { return out[i].Line < out[j].Line })
	return out
}

// traceCap bounds the delivery trace: counters carry the aggregate
// stats forever, the trace exists for determinism audits, and keeping
// its prefix (identically in every run, so comparisons stay valid)
// stops a long per-frame-interrupt measurement from growing memory per
// dispatch.
const traceCap = 1 << 16

// NoteDelivered records one dispatch: the delivery trace, the per-line
// counters, and the latency from the oldest covered work to delivery.
func (ic *IntController) NoteDelivered(p PendingIRQ, atCycle uint64, handled bool) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if len(ic.trace) < traceCap {
		ic.trace = append(ic.trace, DeliveredIRQ{Line: p.Line, VCPU: p.VCPU, AtCycle: atCycle, Handled: handled})
	}
	if handled {
		ic.delivered[p.Line]++
		if atCycle > p.Since {
			ic.latSum[p.Line] += atCycle - p.Since
		}
		mIRQsDelivered.Inc()
	} else {
		ic.spurious[p.Line]++
		mIRQsSpurious.Inc()
	}
}

// Raised returns how many times a line was asserted (before coalescing).
func (ic *IntController) Raised(line int) uint64 {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	return ic.raised[line]
}

// Delivered returns how many ISR dispatches a line received.
func (ic *IntController) Delivered(line int) uint64 {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	return ic.delivered[line]
}

// Spurious returns deliveries that found no registered ISR.
func (ic *IntController) Spurious(line int) uint64 {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	return ic.spurious[line]
}

// AvgLatencyCycles returns the mean cycles from oldest-pending-work to
// ISR dispatch on a line (0 if the line never delivered).
func (ic *IntController) AvgLatencyCycles(line int) float64 {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if ic.delivered[line] == 0 {
		return 0
	}
	return float64(ic.latSum[line]) / float64(ic.delivered[line])
}

// Trace returns the delivery sequence — (line, cycle, handled) per
// dispatch — which determinism tests compare across runs.
func (ic *IntController) Trace() []DeliveredIRQ {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	return append([]DeliveredIRQ(nil), ic.trace...)
}
