package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestTracerBarrierOrdersByClockTrackSeq(t *testing.T) {
	tr := NewTracer("m", 2)
	irq := tr.Track("irq")
	// Stage out of order across tracks: a late-clock event on a low
	// track, an early-clock raise on the irq track.
	tr.Emit(Event{Clk: 200, Track: 0, Kind: KindRound, Name: "round"})
	tr.Emit(Event{Clk: 200, Track: 1, Kind: KindRound, Name: "round"})
	tr.Emit(Event{Clk: 150, Track: irq, Kind: KindIRQRaise, Name: "raise"})
	tr.Emit(Event{Clk: 200, Track: 0, Kind: KindTLB, Name: "tlb"})
	tr.Barrier()
	evs := tr.Events()
	want := []string{"raise", "round", "tlb", "round"}
	if len(evs) != len(want) {
		t.Fatalf("got %d events, want %d", len(evs), len(want))
	}
	for i, name := range want {
		if evs[i].Name != name {
			t.Errorf("event %d = %q, want %q", i, evs[i].Name, name)
		}
	}
	// Same-track same-clock pairs keep emission order.
	if evs[1].Track != 0 || evs[2].Track != 0 || evs[3].Track != 1 {
		t.Errorf("track order wrong: %+v", evs)
	}
}

func TestSessionJSONDeterministic(t *testing.T) {
	build := func() *TraceSession {
		s := &TraceSession{}
		tr := s.Tracer("machine0 ext4", 1)
		tr.Emit(Event{Clk: 10, Track: 0, Kind: KindRound, Name: "round",
			Args: []Arg{ArgU("blocks", 7), ArgS("cfg", "pic+ret")}})
		tr.Emit(Event{Clk: 12, Dur: 5, Track: 0, Kind: KindISR, Name: "isr L3",
			Args: []Arg{ArgU("line", 3)}})
		tr.Barrier()
		return s
	}
	var a, b bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("trace JSON not byte-identical:\n%s\n----\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{
		`"ph":"X"`, `"dur":5`, `"ts":12`, `"process_name"`, `"thread_name"`,
		`"vCPU 0"`, `"blocks":7`, `"cfg":"pic+ret"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace JSON missing %s:\n%s", want, out)
		}
	}
}

func TestProfilerFlatAndCollapsed(t *testing.T) {
	p := &Profiler{}
	l0, l1 := p.NewLane(), p.NewLane()
	l0.Hit("ext4;ext4_get_block")
	l0.Hit("ext4;ext4_get_block")
	l1.Hit("ext4;ext4_get_block")
	l1.Hit("kernel;memcpy_burn")
	flat := p.Flat()
	if len(flat) != 2 || flat[0].Sym != "ext4;ext4_get_block" || flat[0].Count != 3 {
		t.Fatalf("flat = %+v", flat)
	}
	if p.Total() != 4 {
		t.Fatalf("total = %d, want 4", p.Total())
	}
	var buf bytes.Buffer
	if err := p.WriteCollapsed(&buf); err != nil {
		t.Fatal(err)
	}
	want := "ext4;ext4_get_block 3\nkernel;memcpy_burn 1\n"
	if buf.String() != want {
		t.Fatalf("collapsed = %q, want %q", buf.String(), want)
	}
}

func TestRegistryPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("adelie_test_ops_total").Add(42)
	r.Counter("adelie_test_ops_total").Inc() // same counter instance
	r.Gauge("adelie_test_pool", func() float64 { return 4 })
	h := r.Histogram("adelie_test_wait_us", 10, 100)
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE adelie_test_ops_total counter\nadelie_test_ops_total 43\n",
		"# TYPE adelie_test_pool gauge\nadelie_test_pool 4\n",
		`adelie_test_wait_us_bucket{le="10"} 1`,
		`adelie_test_wait_us_bucket{le="100"} 2`,
		`adelie_test_wait_us_bucket{le="+Inf"} 3`,
		"adelie_test_wait_us_sum 5055\n",
		"adelie_test_wait_us_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestTracerEventCap(t *testing.T) {
	tr := NewTracer("m", 1)
	for i := 0; i < maxEventsPerMachine+10; i++ {
		tr.Emit(Event{Clk: uint64(i), Track: 0, Name: "e"})
		if i%4096 == 0 {
			tr.Barrier()
		}
	}
	tr.Barrier()
	if len(tr.Events()) != maxEventsPerMachine {
		t.Fatalf("retained %d events, want cap %d", len(tr.Events()), maxEventsPerMachine)
	}
	if tr.Dropped() != 10 {
		t.Fatalf("dropped = %d, want 10", tr.Dropped())
	}
}
