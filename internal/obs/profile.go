package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"
)

// DefaultSampleEvery is the default profiler sample period in simulated
// cycles (~4.5 µs of virtual time at the testbed's 2.2 GHz): fine enough
// to attribute a microsecond-scale op, coarse enough that symbolization
// cost stays invisible next to interpretation.
const DefaultSampleEvery = 10000

// Profiler aggregates virtual-clock samples. Each vCPU records into its
// own ProfLane (single writer, no locks — the same per-lane discipline
// as the engine's counters), keyed by an already-symbolized frame string
// ("module;function"), so a sample taken before a re-randomization epoch
// and one taken after it land on the same key even though the VA moved.
type Profiler struct {
	// Every is the sample period in simulated cycles; 0 selects
	// DefaultSampleEvery.
	Every uint64

	mu    sync.Mutex
	lanes []*ProfLane
}

// Period returns the effective sample period.
func (p *Profiler) Period() uint64 {
	if p.Every == 0 {
		return DefaultSampleEvery
	}
	return p.Every
}

// ProfLane is one vCPU's sample bucket.
type ProfLane struct {
	counts map[string]uint64
	total  uint64
}

// NewLane allocates a sample bucket for one more vCPU.
func (p *Profiler) NewLane() *ProfLane {
	p.mu.Lock()
	defer p.mu.Unlock()
	l := &ProfLane{counts: make(map[string]uint64)}
	p.lanes = append(p.lanes, l)
	return l
}

// Hit records one sample against a symbolized frame.
func (l *ProfLane) Hit(sym string) {
	l.counts[sym]++
	l.total++
}

// ProfEntry is one merged flat-profile row.
type ProfEntry struct {
	Sym   string
	Count uint64
}

// Flat merges every lane and returns entries sorted by count descending,
// ties by symbol name — a deterministic top-of-profile table.
func (p *Profiler) Flat() []ProfEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	merged := make(map[string]uint64)
	for _, l := range p.lanes {
		for sym, n := range l.counts {
			merged[sym] += n
		}
	}
	out := make([]ProfEntry, 0, len(merged))
	for sym, n := range merged {
		out = append(out, ProfEntry{Sym: sym, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Sym < out[j].Sym
	})
	return out
}

// Total returns the total sample count across lanes.
func (p *Profiler) Total() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n uint64
	for _, l := range p.lanes {
		n += l.total
	}
	return n
}

// WriteCollapsed renders the profile in folded-stack format — one
// "frame;frame count" line per entry, name-sorted — directly consumable
// by flamegraph.pl / speedscope / inferno.
func (p *Profiler) WriteCollapsed(w io.Writer) error {
	entries := p.Flat()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Sym < entries[j].Sym })
	bw := bufio.NewWriter(w)
	for _, e := range entries {
		fmt.Fprintf(bw, "%s %d\n", e.Sym, e.Count)
	}
	return bw.Flush()
}

// WriteFlat renders the merged profile as an aligned text table with
// sample shares, top entries first.
func (p *Profiler) WriteFlat(w io.Writer) error {
	entries := p.Flat()
	var total uint64
	for _, e := range entries {
		total += e.Count
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%8s  %6s  %s\n", "samples", "share", "symbol")
	for _, e := range entries {
		share := 0.0
		if total > 0 {
			share = float64(e.Count) / float64(total) * 100
		}
		fmt.Fprintf(bw, "%8d  %5.1f%%  %s\n", e.Count, share, e.Sym)
	}
	fmt.Fprintf(bw, "%8d  100.0%%  (total, sample period %d cycles)\n", total, p.Period())
	return bw.Flush()
}
