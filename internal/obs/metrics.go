package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use; feeds happen at epoch boundaries (engine run end,
// rerand step, module load, request completion), never on per-op hot
// paths.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// GaugeFunc supplies a gauge's current value at scrape time.
type GaugeFunc func() float64

// Histogram is a fixed-bucket cumulative histogram (Prometheus
// exposition shape: _bucket{le=...}, _sum, _count).
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf implicit
	mu     sync.Mutex
	counts []uint64
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			break
		}
	}
	h.sum += v
	h.count++
}

// Registry holds named metrics. The zero value is not usable; use
// NewRegistry or the package-level Default.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]GaugeFunc
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]GaugeFunc),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry: simulation layers feed it, and
// adelie-simd's /v1/metricsz scrapes it.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge registers (or replaces) a function-backed gauge.
func (r *Registry) Gauge(name string, fn GaugeFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]uint64, len(bounds))}
		r.hists[name] = h
	}
	return h
}

// WritePrometheus renders every metric in Prometheus text exposition
// format (version 0.0.4), name-sorted for stable scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]GaugeFunc, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, name := range sortedKeys(counters) {
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", name, name, counters[name].Value())
	}
	for _, name := range sortedKeys(gauges) {
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(gauges[name]()))
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		h.mu.Lock()
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, h.count)
		fmt.Fprintf(bw, "%s_sum %s\n", name, formatFloat(h.sum))
		fmt.Fprintf(bw, "%s_count %d\n", name, h.count)
		h.mu.Unlock()
	}
	return bw.Flush()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
