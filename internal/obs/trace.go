package obs

import (
	"bufio"
	"fmt"
	"io"
	"slices"
	"strconv"
	"sync"
)

// Kind classifies a trace event. The chained-vs-ADELIE_NOCHAIN
// equivalence test compares event sequences with KindRound excluded:
// round summaries carry chained-block counts, which are a host-side
// execution detail, while every other kind derives from simulated state
// the cross-mode gate already proves equal.
type Kind uint8

const (
	// KindRound is a per-lane round retire summary (blocks retired,
	// chain-link follows, busy cycles for the lane's op this round).
	KindRound Kind = iota + 1
	// KindTLB is a per-lane TLB refill summary (misses this round).
	// Refills — not hits — so the sequence is invariant under trace
	// linking, which only ever skips lookups that were hits.
	KindTLB
	// KindIRQRaise marks a device asserting a vector line (stamped with
	// the raise clock, which precedes the delivering barrier).
	KindIRQRaise
	// KindISR is the deliver→ISR-done span on the routed vCPU's track.
	KindISR
	// KindRerand is a re-randomization epoch begin→end span carrying
	// the moved-module list.
	KindRerand
	// KindDev is a device counter delta (NVMe submit/complete, NIC
	// rings) sampled at a round barrier.
	KindDev
	// KindMM marks memory-system events: machine fork attach and
	// copy-on-write detach summaries.
	KindMM
)

// Arg is one event argument. String and signed arguments (ArgS/ArgI)
// carry a pre-rendered JSON value in Val; unsigned arguments (ArgU) —
// the hot emit path — carry the raw number and render at export, so
// emission never calls strconv. Either way export is deterministic
// concatenation and the struct stays comparable for equality tests.
type Arg struct {
	Key string
	Val string // pre-rendered JSON value; used when Num is false
	U   uint64 // raw unsigned value, rendered at export when Num
	Num bool
}

// ArgU records an unsigned argument (rendered lazily at export).
func ArgU(key string, v uint64) Arg { return Arg{Key: key, U: v, Num: true} }

// ArgI renders a signed argument.
func ArgI(key string, v int64) Arg { return Arg{Key: key, Val: strconv.FormatInt(v, 10)} }

// ArgS renders a string argument.
func ArgS(key, v string) Arg { return Arg{Key: key, Val: strconv.Quote(v)} }

// Event is one trace record. Clk and Dur are in simulated cycles of the
// machine's virtual clock; Track is the thread id within the machine's
// process (vCPU index, or a device/actor track allocated by Track).
type Event struct {
	Clk   uint64
	Dur   uint64 // 0 = instant; >0 = complete span ("X")
	Track int
	Kind  Kind
	Name  string
	Args  []Arg
	seq   uint64 // staging order within the emitting lane buffer
}

// maxEventsPerMachine bounds a tracer's retained events so a long
// measurement cannot exhaust host memory; overflow is counted, and the
// count is exported in the trace header. The cutoff is deterministic
// because emission order is.
const maxEventsPerMachine = 1 << 20

// Lane is a single-producer event buffer. Exactly one goroutine appends
// to a Lane (the engine's barrier passes run on one goroutine; the rare
// concurrent emitters, like per-vCPU ISR dispatch, each own their vCPU's
// lane), so no locking is needed — the tracer merges and clears all
// lanes at the next barrier, when every producer is quiescent.
type Lane struct {
	buf   []Event
	seq   uint64
	arena []Arg // chunked backing for ArgBuf; grown, never shrunk
}

// Emit stages an event on the lane.
func (l *Lane) Emit(ev Event) {
	ev.seq = l.seq
	l.seq++
	l.buf = append(l.buf, ev)
}

// argChunk is the arena growth quantum: one allocation per ~100 events
// instead of one per event on the barrier emit path.
const argChunk = 256

// ArgBuf carves an n-argument buffer from the lane's arena. Retained
// events keep their subslices valid forever: the arena only ever
// appends, and a chunk that fills up is abandoned to its events while
// a fresh one takes over. Single-producer like the lane itself.
func (l *Lane) ArgBuf(n int) []Arg {
	if len(l.arena)+n > cap(l.arena) {
		l.arena = make([]Arg, 0, max(argChunk, n))
	}
	l.arena = l.arena[:len(l.arena)+n]
	return l.arena[len(l.arena)-n : len(l.arena) : len(l.arena)]
}

// Tracer records the event stream of one machine — one trace "process",
// with one thread per vCPU plus one per device/actor track.
type Tracer struct {
	pid    int
	name   string
	ncpu   int
	tracks []string // track id → display name; 0..ncpu-1 are vCPUs
	lanes  []*Lane  // per-track staging buffers
	events []Event  // merged, deterministic (Clk, Track, seq) order
	drops  uint64
}

// NewTracer returns a standalone tracer (pid 0). Machines traced
// together in one file should come from a TraceSession instead, which
// assigns process ids in boot order.
func NewTracer(name string, ncpu int) *Tracer {
	t := &Tracer{name: name, ncpu: ncpu}
	for i := 0; i < ncpu; i++ {
		t.tracks = append(t.tracks, fmt.Sprintf("vCPU %d", i))
		t.lanes = append(t.lanes, &Lane{})
	}
	return t
}

// NCPU returns the number of vCPU tracks.
func (t *Tracer) NCPU() int { return t.ncpu }

// Track allocates (or finds) a named non-vCPU track — a device, the
// re-randomizer, the memory system — and returns its id.
func (t *Tracer) Track(name string) int {
	for i := t.ncpu; i < len(t.tracks); i++ {
		if t.tracks[i] == name {
			return i
		}
	}
	t.tracks = append(t.tracks, name)
	t.lanes = append(t.lanes, &Lane{})
	return len(t.tracks) - 1
}

// Lane returns track id's staging buffer.
func (t *Tracer) Lane(track int) *Lane { return t.lanes[track] }

// Emit stages an event on its track's lane.
func (t *Tracer) Emit(ev Event) { t.lanes[ev.Track].Emit(ev) }

// evCmp is the deterministic merge order: virtual clock, then track,
// then staging order within the emitting lane.
func evCmp(a, b Event) int {
	if a.Clk != b.Clk {
		if a.Clk < b.Clk {
			return -1
		}
		return 1
	}
	if a.Track != b.Track {
		return a.Track - b.Track
	}
	if a.seq != b.seq {
		if a.seq < b.seq {
			return -1
		}
		return 1
	}
	return 0
}

// Barrier merges every staged lane buffer into the retained stream in
// deterministic (Clk, Track, seq) order and clears the buffers. The
// engine calls it once per round with all vCPUs quiescent; events staged
// at one barrier always carry clocks at or past the previous barrier's,
// so batch-local sorting yields a globally ordered stream. The gather
// appends straight onto the retained stream and sorts the new tail in
// place; a typical round's tail (a couple of same-clock events gathered
// in track order) is already ordered, so the sort is usually skipped.
func (t *Tracer) Barrier() {
	start := len(t.events)
	for _, l := range t.lanes {
		if len(l.buf) > 0 {
			t.events = append(t.events, l.buf...)
			l.buf = l.buf[:0]
			l.seq = 0
		}
	}
	tail := t.events[start:]
	if len(tail) == 0 {
		return
	}
	for i := 1; i < len(tail); i++ {
		if evCmp(tail[i-1], tail[i]) > 0 {
			slices.SortStableFunc(tail, evCmp)
			break
		}
	}
	if len(t.events) > maxEventsPerMachine {
		t.drops += uint64(len(t.events) - maxEventsPerMachine)
		t.events = t.events[:maxEventsPerMachine]
	}
}

// Events returns the merged stream (tests and cross-mode comparisons).
func (t *Tracer) Events() []Event { return t.events }

// Dropped returns how many events overflowed the retention cap.
func (t *Tracer) Dropped() uint64 { return t.drops }

// TraceSession collects the tracers of every machine booted during one
// observed run into a single Chrome trace_event file: one process per
// machine, pids in boot order. Tracer allocation is mutex-guarded
// (machine boots are serial under the observability contract, but the
// guard keeps misuse race-free); event emission stays lock-free on the
// per-machine lanes.
type TraceSession struct {
	mu       sync.Mutex
	machines []*Tracer
}

// Tracer allocates the trace process for the next booted machine.
func (s *TraceSession) Tracer(name string, ncpu int) *Tracer {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := NewTracer(name, ncpu)
	t.pid = len(s.machines)
	s.machines = append(s.machines, t)
	return t
}

// Machines returns the session's tracers in boot (pid) order.
func (s *TraceSession) Machines() []*Tracer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Tracer(nil), s.machines...)
}

// WriteJSON renders the session as Chrome trace_event JSON ("ts" is in
// simulated cycles; Perfetto renders it as microseconds, which keeps
// relative durations exact). Output is hand-formatted so the same event
// stream always produces the same bytes.
func (s *TraceSession) WriteJSON(w io.Writer) error {
	s.mu.Lock()
	machines := append([]*Tracer(nil), s.machines...)
	s.mu.Unlock()

	bw := bufio.NewWriter(w)
	var drops uint64
	for _, t := range machines {
		drops += t.drops
	}
	fmt.Fprintf(bw, "{\"otherData\":{\"clock\":\"virtual-cycles\",\"dropped\":%d},\"traceEvents\":[", drops)
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		} else {
			bw.WriteString("\n")
			first = false
		}
		bw.WriteString(line)
	}
	for _, t := range machines {
		emit(fmt.Sprintf("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":%s}}",
			t.pid, strconv.Quote(t.name)))
		for tid, tn := range t.tracks {
			emit(fmt.Sprintf("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":%s}}",
				t.pid, tid, strconv.Quote(tn)))
		}
	}
	for _, t := range machines {
		for i := range t.events {
			ev := &t.events[i]
			args := ""
			for j := range ev.Args {
				if j > 0 {
					args += ","
				}
				a := &ev.Args[j]
				if a.Num {
					args += strconv.Quote(a.Key) + ":" + strconv.FormatUint(a.U, 10)
				} else {
					args += strconv.Quote(a.Key) + ":" + a.Val
				}
			}
			if ev.Dur > 0 {
				emit(fmt.Sprintf("{\"name\":%s,\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"args\":{%s}}",
					strconv.Quote(ev.Name), t.pid, ev.Track, ev.Clk, ev.Dur, args))
			} else {
				emit(fmt.Sprintf("{\"name\":%s,\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"args\":{%s}}",
					strconv.Quote(ev.Name), t.pid, ev.Track, ev.Clk, args))
			}
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}
