// Package obs is the deterministic observability layer: a cycle-accurate
// event tracer, a virtual-clock sampling profiler, and a metrics
// registry with Prometheus text exposition.
//
// The package is a stdlib-only leaf — every simulation layer (cpu, mm,
// bus, kernel, rerand, devices, engine, sim, service) may import it
// without cycles. Its contract mirrors the engine's deterministic-clock
// contract:
//
//   - Trace events are stamped with the *virtual* clock (simulated
//     cycles), never host time, and are emitted only from the engine's
//     single-threaded barrier passes, so the same seed produces a
//     byte-identical trace file run to run — something a real-hardware
//     tracer can never promise.
//   - Enabling tracing or profiling never changes a figure: no event or
//     sample charges simulated cycles, mutates guest state, or perturbs
//     an RNG stream. Tables render byte-identical with observability on
//     or off (the workload test suite enforces this over the whole
//     experiment registry).
//   - Profiler samples fire every N simulated cycles at block-retire
//     boundaries behind a nil-check fast path in the CPU, and are
//     symbolized eagerly against the kernel's module/function map — so
//     a sample attributes to the function symbol, not to the transient
//     VA a re-randomization epoch is about to invalidate.
package obs

// Stat is one named cumulative device counter, sampled by the engine at
// round barriers to derive per-round delta events (NVMe submits and
// completions, NIC ring activity).
type Stat struct {
	Name  string
	Value uint64
}

// StatSource is implemented by devices that expose cumulative counters
// for barrier-time delta sampling. The engine discovers sources by
// interface assertion over the machine's bus, the same way it discovers
// epoch devices; ObsStats must append the same stat names in the same
// order on every call (values monotonically non-decreasing). The
// append-into-dst shape lets the engine sample every device at every
// round barrier without a per-round allocation.
type StatSource interface {
	ObsStats(dst []Stat) []Stat
}
