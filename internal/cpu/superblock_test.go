package cpu

import (
	"testing"

	"adelie/internal/isa"
	"adelie/internal/mm"
)

// TestSuperblockRetiresWholeBlocks: straight-line code followed by RET is
// one basic block; re-execution must be served from the block cache and
// the Blocks counter must advance once per block, not per instruction.
func TestSuperblockRetiresWholeBlocks(t *testing.T) {
	c := machine(t, []isa.Inst{
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 3},
		{Op: isa.OpMOVI, R1: isa.RBX, Imm: 4},
		{Op: isa.OpADD, R1: isa.RAX, R2: isa.RBX},
		{Op: isa.OpRET},
	})
	if got := run(t, c); got != 7 {
		t.Fatalf("first run = %d, want 7", got)
	}
	if c.Blocks != 1 {
		t.Fatalf("blocks retired = %d, want 1", c.Blocks)
	}
	if c.Insts != 4 {
		t.Fatalf("instructions retired = %d, want 4", c.Insts)
	}
	_, misses0 := c.BlockCacheStats()
	chained0 := c.ChainedBlocks
	if got := run(t, c); got != 7 {
		t.Fatalf("second run = %d, want 7", got)
	}
	if c.ChainedBlocks <= chained0 {
		t.Fatal("second run did not re-enter the cached block via the entry cache")
	}
	if _, misses1 := c.BlockCacheStats(); misses1 != misses0 {
		t.Fatalf("second run rebuilt blocks: misses %d → %d", misses0, misses1)
	}
}

// TestSuperblockLoopSemantics: a backward conditional branch terminates
// each block; the loop must execute the same number of instructions as
// single-stepping would.
func TestSuperblockLoopSemantics(t *testing.T) {
	code := []isa.Inst{
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 0},
		{Op: isa.OpMOVI, R1: isa.RCX, Imm: 10},
		// loop:
		{Op: isa.OpADD, R1: isa.RAX, R2: isa.RCX},
		{Op: isa.OpSUBI, R1: isa.RCX, Imm: 1},
		{Op: isa.OpCMPI, R1: isa.RCX, Imm: 0},
		{Op: isa.OpJNE, Disp: -19},
		{Op: isa.OpRET},
	}
	blockCPU := machine(t, code)
	if got := run(t, blockCPU); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
	// Reference execution through the single-step path.
	stepCPU := machine(t, code)
	stepCPU.Regs[isa.RSP] = stackTop
	if err := stepCPU.Push(HostReturn); err != nil {
		t.Fatal(err)
	}
	stepCPU.RIP = codeBase
	for {
		halted, err := stepCPU.Step()
		if err != nil {
			t.Fatal(err)
		}
		if halted {
			break
		}
	}
	if stepCPU.Regs[isa.RAX] != 55 {
		t.Fatalf("step path sum = %d", stepCPU.Regs[isa.RAX])
	}
	if blockCPU.Insts != stepCPU.Insts {
		t.Fatalf("block path retired %d insts, step path %d", blockCPU.Insts, stepCPU.Insts)
	}
	if blockCPU.Cycles != stepCPU.Cycles {
		t.Fatalf("block path charged %d cycles, step path %d", blockCPU.Cycles, stepCPU.Cycles)
	}
}

// TestSuperblockInvalidatedByAliasWrite is the W^X hole test at block
// granularity: patch the code frame through a writable alias mapping and
// verify no stale cached block executes.
func TestSuperblockInvalidatedByAliasWrite(t *testing.T) {
	c := machine(t, []isa.Inst{
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 1},
		{Op: isa.OpRET},
	})
	for i := 0; i < 2; i++ { // second run warms the caches
		if got := run(t, c); got != 1 {
			t.Fatalf("original code = %d, want 1", got)
		}
	}
	if c.ChainedBlocks == 0 {
		t.Fatal("caches not warm before the alias write")
	}
	frame, _, ok := c.AS.Lookup(codeBase)
	if !ok {
		t.Fatal("code page not mapped")
	}
	alias := mm.KernelBase + 0x930000
	if err := c.AS.Map(alias, frame, mm.FlagWrite); err != nil {
		t.Fatal(err)
	}
	if err := c.AS.WriteBytes(alias, retImm(8)); err != nil {
		t.Fatal(err)
	}
	if got := run(t, c); got != 8 {
		t.Fatalf("patched code = %d, want 8 (stale superblock executed)", got)
	}
}

// TestSuperblockRemapKeepsBlocksWarm: a zero-copy remap (same frames,
// new VA) must not force a block rebuild — the cache is keyed by frame.
func TestSuperblockRemapKeepsBlocksWarm(t *testing.T) {
	c := machine(t, []isa.Inst{
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 6},
		{Op: isa.OpRET},
	})
	if got := run(t, c); got != 6 {
		t.Fatalf("original code = %d", got)
	}
	newBase := mm.KernelBase + 0x940000
	if err := c.AS.RemapRegion(newBase, codeBase, 1); err != nil {
		t.Fatal(err)
	}
	_, misses0 := c.BlockCacheStats()
	if got, err := c.Call(newBase); err != nil || got != 6 {
		t.Fatalf("remapped code = (%d, %v), want 6", got, err)
	}
	if _, misses1 := c.BlockCacheStats(); misses1 != misses0 {
		t.Fatalf("remap forced %d block rebuilds; frame-keyed cache should stay warm", misses1-misses0)
	}
}

// TestSuperblockStopsAtNativeEntry: straight-line code that falls
// through onto a registered native address must dispatch the native, not
// decode the bytes that happen to live there.
func TestSuperblockStopsAtNativeEntry(t *testing.T) {
	// Decodable bytes live at the native address: if block building ran
	// past the entry point it would execute them and return 999.
	c := machine(t, []isa.Inst{
		{Op: isa.OpMOVI, R1: isa.RBX, Imm: 5},
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 999},
		{Op: isa.OpRET},
	})
	head := encode(isa.Inst{Op: isa.OpMOVI, R1: isa.RBX, Imm: 5})
	c.RegisterNative(codeBase+uint64(len(head)), &Native{
		Name: "sentinel", Cost: 1,
		Fn: func(c *CPU) error {
			c.Regs[isa.RAX] = c.Regs[isa.RBX] * 100
			return nil
		},
	})
	if got := run(t, c); got != 500 {
		t.Fatalf("fall-through native = %d, want 500", got)
	}
}

// TestRegisterNativeInvalidatesCachedBlocks: registering a native at a
// VA interior to an already-cached block must drop the block — the
// frame's content never changed, so only explicit invalidation keeps
// the cached decode from running through the new entry point.
func TestRegisterNativeInvalidatesCachedBlocks(t *testing.T) {
	c := machine(t, []isa.Inst{
		{Op: isa.OpMOVI, R1: isa.RBX, Imm: 5},
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 999},
		{Op: isa.OpRET},
	})
	// Warm the block cache on the plain three-instruction block.
	if got := run(t, c); got != 999 {
		t.Fatalf("pre-native run = %d, want 999", got)
	}
	head := encode(isa.Inst{Op: isa.OpMOVI, R1: isa.RBX, Imm: 5})
	c.RegisterNative(codeBase+uint64(len(head)), &Native{
		Name: "late", Cost: 1,
		Fn: func(c *CPU) error {
			c.Regs[isa.RAX] = c.Regs[isa.RBX] * 100
			return nil
		},
	})
	if got := run(t, c); got != 500 {
		t.Fatalf("post-native run = %d, want 500 (stale block ran through the native)", got)
	}
}

// TestUnbuildableEntryNegativelyCached: an entry PC that cannot start a
// block (straddling instruction) must not re-attempt the block build on
// every execution — after the first attempt it is a cache hit that goes
// straight to the single-step fallback.
func TestUnbuildableEntryNegativelyCached(t *testing.T) {
	var code []isa.Inst
	for i := 0; i < mm.PageSize-3; i++ {
		code = append(code, isa.Inst{Op: isa.OpNOP})
	}
	code = append(code,
		isa.Inst{Op: isa.OpMOVABS, R1: isa.RAX, Imm: 42}, // straddles pages 0→1
		isa.Inst{Op: isa.OpRET},
	)
	c := machine(t, code)
	for i := 0; i < 2; i++ {
		if got := run(t, c); got != 42 {
			t.Fatalf("pass %d = %d, want 42", i, got)
		}
	}
	_, misses0 := c.BlockCacheStats()
	if got := run(t, c); got != 42 {
		t.Fatalf("warm pass = %d, want 42", got)
	}
	if _, misses1 := c.BlockCacheStats(); misses1 != misses0 {
		t.Fatalf("straddling entry rebuilt %d times on a warm cache", misses1-misses0)
	}
}

// TestStepPathUsesDecodeCache keeps the per-instruction decode cache (the
// single-step fallback path) covered now that Run executes superblocks.
func TestStepPathUsesDecodeCache(t *testing.T) {
	c := machine(t, []isa.Inst{
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 2},
		{Op: isa.OpRET},
	})
	exec := func() {
		if err := c.Push(HostReturn); err != nil {
			t.Fatal(err)
		}
		c.RIP = codeBase
		for {
			halted, err := c.Step()
			if err != nil {
				t.Fatal(err)
			}
			if halted {
				return
			}
		}
	}
	exec()
	hits0, _ := c.DecodeCacheStats()
	exec()
	hits1, misses := c.DecodeCacheStats()
	if hits1 <= hits0 {
		t.Fatalf("second step-path run decoded from scratch: hits %d → %d (misses %d)", hits0, hits1, misses)
	}
}

// TestGuestTLBOverflowDeterministic overflows DefaultTLBSize from guest
// code and requires two fresh vCPUs on the same address space to charge
// identical cycle counts — the determinism bug the FIFO eviction fixes.
func TestGuestTLBOverflowDeterministic(t *testing.T) {
	const npages = mm.DefaultTLBSize + 64
	bigBase := uint64(mm.KernelBase + 0x10_000000)
	// scan: walk one load per page over the whole region, twice, so the
	// second sweep's hit/miss pattern depends on which pages eviction
	// kept — the run-to-run variance random eviction used to cause.
	scan := []isa.Inst{
		{Op: isa.OpMOVI, R1: isa.RDX, Imm: 2},
		// pass:
		{Op: isa.OpMOVABS, R1: isa.RBX, Imm: int64(bigBase)},
		{Op: isa.OpMOVI, R1: isa.RCX, Imm: npages},
		// loop:
		{Op: isa.OpLOAD, R1: isa.RAX, R2: isa.RBX},
		{Op: isa.OpADDI, R1: isa.RBX, Imm: mm.PageSize},
		{Op: isa.OpSUBI, R1: isa.RCX, Imm: 1},
		{Op: isa.OpCMPI, R1: isa.RCX, Imm: 0},
		{Op: isa.OpJNE, Disp: -29}, // back to LOAD (6+6+6+6+5)
		{Op: isa.OpSUBI, R1: isa.RDX, Imm: 1},
		{Op: isa.OpCMPI, R1: isa.RDX, Imm: 0},
		{Op: isa.OpJNE, Disp: -62}, // back to MOVABS (10+6+29+6+6+5)
		{Op: isa.OpRET},
	}
	as := mm.NewAddressSpace(mm.NewPhysMem())
	if _, err := as.MapRegion(codeBase, 1, mm.FlagExec); err != nil {
		t.Fatal(err)
	}
	if _, err := as.MapRegion(stackBase, stackPgs, mm.FlagWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := as.MapRegion(bigBase, npages, mm.FlagWrite); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteBytesForce(codeBase, encode(scan...)); err != nil {
		t.Fatal(err)
	}
	runScan := func(id int) (cycles, misses uint64) {
		c := New(id, as)
		c.Regs[isa.RSP] = stackTop
		if _, err := c.Call(codeBase); err != nil {
			t.Fatal(err)
		}
		_, m, _ := c.TLB.Stats()
		return c.Cycles, m
	}
	cyc1, m1 := runScan(0)
	cyc2, m2 := runScan(1)
	if cyc1 != cyc2 {
		t.Fatalf("per-vCPU cycles differ across identical runs: %d vs %d", cyc1, cyc2)
	}
	if m1 != m2 {
		t.Fatalf("TLB miss counts differ across identical runs: %d vs %d", m1, m2)
	}
	if m1 < npages+mm.DefaultTLBSize/2 {
		t.Fatalf("scan did not thrash the TLB (misses=%d)", m1)
	}
}
