package cpu

import (
	"testing"

	"adelie/internal/isa"
	"adelie/internal/mm"
)

// Indirect-target-cache tests: a RET/indirect exit re-follows its last
// resolved successor when the dynamic target matches, validated exactly
// like a direct link. See superblock.go.

// indirectOff runs f with the indirect target cache disabled (direct
// links stay on) for CPUs created inside.
func indirectOff(t *testing.T, f func()) {
	t.Helper()
	was := SetIndirect(false)
	defer SetIndirect(was)
	f()
}

// callLoopMachine lays out a call-return loop — the shape every wrapper
// and retpoline-heavy module path has:
//
//	main: MOVI RCX, n
//	loop: CALL f          ← direct exit
//	      ADD  RAX, RCX   ← RET's monomorphic return target
//	      SUBI RCX, 1
//	      CMPI RCX, 0
//	      JNE  loop
//	      RET
//	f:    MOVI RBX, 9
//	      RET             ← indirect exit, same target every iteration
//
// Call(codeBase) returns sum n..1. f sits at codeBase+0x200 so caller
// and callee blocks share one page (same-frame links).
func callLoopMachine(t *testing.T, n int64) *CPU {
	t.Helper()
	c := machine(t, []isa.Inst{{Op: isa.OpNOP}})
	fVA := uint64(codeBase + 0x200)
	lenOf := func(in isa.Inst) int { return len(encode(in)) }
	pre := lenOf(isa.Inst{Op: isa.OpMOVI, R1: isa.RAX, Imm: 0}) +
		lenOf(isa.Inst{Op: isa.OpMOVI, R1: isa.RCX, Imm: n})
	callLen := lenOf(isa.Inst{Op: isa.OpCALL})
	loopLen := callLen +
		lenOf(isa.Inst{Op: isa.OpADD, R1: isa.RAX, R2: isa.RCX}) +
		lenOf(isa.Inst{Op: isa.OpSUBI, R1: isa.RCX, Imm: 1}) +
		lenOf(isa.Inst{Op: isa.OpCMPI, R1: isa.RCX, Imm: 0}) +
		lenOf(isa.Inst{Op: isa.OpJNE})
	callDisp := int64(fVA) - int64(codeBase+uint64(pre+callLen))
	code := encode(
		isa.Inst{Op: isa.OpMOVI, R1: isa.RAX, Imm: 0},
		isa.Inst{Op: isa.OpMOVI, R1: isa.RCX, Imm: n},
		isa.Inst{Op: isa.OpCALL, Disp: int32(callDisp)},
		isa.Inst{Op: isa.OpADD, R1: isa.RAX, R2: isa.RCX},
		isa.Inst{Op: isa.OpSUBI, R1: isa.RCX, Imm: 1},
		isa.Inst{Op: isa.OpCMPI, R1: isa.RCX, Imm: 0},
		isa.Inst{Op: isa.OpJNE, Disp: int32(-loopLen)},
		isa.Inst{Op: isa.OpRET},
	)
	if err := c.AS.WriteBytesForce(codeBase, code); err != nil {
		t.Fatal(err)
	}
	f := encode(
		isa.Inst{Op: isa.OpMOVI, R1: isa.RBX, Imm: 9},
		isa.Inst{Op: isa.OpRET},
	)
	if err := c.AS.WriteBytesForce(fVA, f); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestIndirectCacheChainsCallRetLoop: the hot call-return loop must
// follow the monomorphic RET link (IndirectChained > 0) and produce
// cycle/instruction accounting bit-identical to both the indirect-off
// and fully-unchained modes — the three-mode contract at unit scale.
func TestIndirectCacheChainsCallRetLoop(t *testing.T) {
	const n, want = 40, 40 * 41 / 2
	full := callLoopMachine(t, n)
	for i := 0; i < 2; i++ {
		if got := run(t, full); got != want {
			t.Fatalf("run %d = %d, want %d", i, got, want)
		}
	}
	if full.IndirectChained == 0 {
		t.Fatal("hot RET exit never chained through the indirect cache")
	}
	if full.IndirectChained > full.ChainedBlocks {
		t.Fatalf("IndirectChained %d > ChainedBlocks %d", full.IndirectChained, full.ChainedBlocks)
	}

	var direct *CPU
	indirectOff(t, func() {
		direct = callLoopMachine(t, n)
		for i := 0; i < 2; i++ {
			if got := run(t, direct); got != want {
				t.Fatalf("indirect-off run %d = %d, want %d", i, got, want)
			}
		}
	})
	if direct.IndirectChained != 0 {
		t.Fatalf("indirect-off vCPU followed %d indirect links", direct.IndirectChained)
	}
	if direct.ChainedBlocks == 0 {
		t.Fatal("indirect-off mode must keep direct links on")
	}

	var unchained *CPU
	chainOff(t, func() {
		unchained = callLoopMachine(t, n)
		for i := 0; i < 2; i++ {
			if got := run(t, unchained); got != want {
				t.Fatalf("unchained run %d = %d, want %d", i, got, want)
			}
		}
	})

	for _, m := range []struct {
		name string
		c    *CPU
	}{{"indirect-off", direct}, {"unchained", unchained}} {
		if full.Cycles != m.c.Cycles || full.Insts != m.c.Insts || full.Blocks != m.c.Blocks {
			t.Errorf("full (%d cycles, %d insts, %d blocks) != %s (%d, %d, %d)",
				full.Cycles, full.Insts, full.Blocks, m.name, m.c.Cycles, m.c.Insts, m.c.Blocks)
		}
	}
}

// TestIndirectCacheMonomorphicMiss: a RET alternating between two return
// sites keeps only the newest target cached — each flip is a mismatch
// that re-resolves through the dispatch path — and accounting still
// matches unchained execution exactly.
func TestIndirectCacheMonomorphicMiss(t *testing.T) {
	build := func() *CPU {
		c := machine(t, []isa.Inst{{Op: isa.OpNOP}})
		fVA := uint64(codeBase + 0x200)
		lenOf := func(in isa.Inst) int { return len(encode(in)) }
		callLen := lenOf(isa.Inst{Op: isa.OpCALL})
		movLen := lenOf(isa.Inst{Op: isa.OpMOVI, R1: isa.RAX, Imm: 0})
		// Two call sites to the same f: RET's target alternates.
		d1 := int64(fVA) - int64(codeBase+uint64(callLen))
		d2 := int64(fVA) - int64(codeBase+uint64(callLen+movLen+callLen))
		code := encode(
			isa.Inst{Op: isa.OpCALL, Disp: int32(d1)},
			isa.Inst{Op: isa.OpMOVI, R1: isa.RAX, Imm: 0},
			isa.Inst{Op: isa.OpCALL, Disp: int32(d2)},
			isa.Inst{Op: isa.OpADDI, R1: isa.RAX, Imm: 3},
			isa.Inst{Op: isa.OpRET},
		)
		if err := c.AS.WriteBytesForce(codeBase, code); err != nil {
			t.Fatal(err)
		}
		if err := c.AS.WriteBytesForce(fVA, encode(
			isa.Inst{Op: isa.OpMOVI, R1: isa.RBX, Imm: 9},
			isa.Inst{Op: isa.OpRET},
		)); err != nil {
			t.Fatal(err)
		}
		return c
	}
	full := build()
	for i := 0; i < 4; i++ {
		if got := run(t, full); got != 3 {
			t.Fatalf("run %d = %d, want 3", i, got)
		}
	}
	var unchained *CPU
	chainOff(t, func() {
		unchained = build()
		for i := 0; i < 4; i++ {
			if got := run(t, unchained); got != 3 {
				t.Fatalf("unchained run %d = %d, want 3", i, got)
			}
		}
	})
	if full.Cycles != unchained.Cycles || full.Insts != unchained.Insts || full.Blocks != unchained.Blocks {
		t.Fatalf("flip-flop targets: full (%d cycles, %d insts, %d blocks) != unchained (%d, %d, %d)",
			full.Cycles, full.Insts, full.Blocks, unchained.Cycles, unchained.Insts, unchained.Blocks)
	}
}

// retpolineMachine lays out a call-loop whose CALL goes through a
// retpoline-style thunk (PUSH reg; RET — the kcc shape): the thunk's RET
// "returns" into the *callee*, so the indirect cache is what chains the
// thunk→callee edge, exactly the case the tentpole targets.
func retpolineMachine(t *testing.T, n int64) (*CPU, uint64) {
	t.Helper()
	c := machine(t, []isa.Inst{{Op: isa.OpNOP}})
	thunkVA := uint64(codeBase + 0x180)
	fVA := uint64(codeBase + 0x200)
	lenOf := func(in isa.Inst) int { return len(encode(in)) }
	pre := lenOf(isa.Inst{Op: isa.OpMOVABS, R1: isa.RDI, Imm: 0}) +
		lenOf(isa.Inst{Op: isa.OpMOVI, R1: isa.RAX, Imm: 0}) +
		lenOf(isa.Inst{Op: isa.OpMOVI, R1: isa.RCX, Imm: n})
	callLen := lenOf(isa.Inst{Op: isa.OpCALL})
	loopLen := callLen +
		lenOf(isa.Inst{Op: isa.OpADD, R1: isa.RAX, R2: isa.RCX}) +
		lenOf(isa.Inst{Op: isa.OpSUBI, R1: isa.RCX, Imm: 1}) +
		lenOf(isa.Inst{Op: isa.OpCMPI, R1: isa.RCX, Imm: 0}) +
		lenOf(isa.Inst{Op: isa.OpJNE})
	thunkDisp := int64(thunkVA) - int64(codeBase+uint64(pre+callLen))
	code := encode(
		isa.Inst{Op: isa.OpMOVABS, R1: isa.RDI, Imm: int64(fVA)},
		isa.Inst{Op: isa.OpMOVI, R1: isa.RAX, Imm: 0},
		isa.Inst{Op: isa.OpMOVI, R1: isa.RCX, Imm: n},
		isa.Inst{Op: isa.OpCALL, Disp: int32(thunkDisp)},
		isa.Inst{Op: isa.OpADD, R1: isa.RAX, R2: isa.RCX},
		isa.Inst{Op: isa.OpSUBI, R1: isa.RCX, Imm: 1},
		isa.Inst{Op: isa.OpCMPI, R1: isa.RCX, Imm: 0},
		isa.Inst{Op: isa.OpJNE, Disp: int32(-loopLen)},
		isa.Inst{Op: isa.OpRET},
	)
	if err := c.AS.WriteBytesForce(codeBase, code); err != nil {
		t.Fatal(err)
	}
	thunk := encode(
		isa.Inst{Op: isa.OpPUSH, R1: isa.RDI},
		isa.Inst{Op: isa.OpRET},
	)
	if err := c.AS.WriteBytesForce(thunkVA, thunk); err != nil {
		t.Fatal(err)
	}
	f := encode(
		isa.Inst{Op: isa.OpMOVI, R1: isa.RBX, Imm: 9},
		isa.Inst{Op: isa.OpRET},
	)
	if err := c.AS.WriteBytesForce(fVA, f); err != nil {
		t.Fatal(err)
	}
	return c, fVA
}

// TestIndirectCacheChainsRetpolineThunk: the thunk's RET must chain into
// the callee via the indirect cache, with accounting identical to the
// unchained run.
func TestIndirectCacheChainsRetpolineThunk(t *testing.T) {
	const n, want = 30, 30 * 31 / 2
	full, _ := retpolineMachine(t, n)
	for i := 0; i < 2; i++ {
		if got := run(t, full); got != want {
			t.Fatalf("run %d = %d, want %d", i, got, want)
		}
	}
	if full.IndirectChained == 0 {
		t.Fatal("retpoline thunk RET never chained through the indirect cache")
	}
	var unchained *CPU
	chainOff(t, func() {
		var c *CPU
		c, _ = retpolineMachine(t, n)
		for i := 0; i < 2; i++ {
			if got := run(t, c); got != want {
				t.Fatalf("unchained run %d = %d, want %d", i, got, want)
			}
		}
		unchained = c
	})
	if full.Cycles != unchained.Cycles || full.Insts != unchained.Insts || full.Blocks != unchained.Blocks {
		t.Fatalf("retpoline: full (%d cycles, %d insts, %d blocks) != unchained (%d, %d, %d)",
			full.Cycles, full.Insts, full.Blocks, unchained.Cycles, unchained.Insts, unchained.Blocks)
	}
}

// TestIndirectStaleAcrossRemapEpoch: after a zero-copy remap (same
// frames, new VAs — the rerand move), the cached indirect successor's
// address-space generation is stale. The thunk must re-resolve the new
// return target through the dispatch path — never execute the stale
// block — and then chain again at the new addresses.
func TestIndirectStaleAcrossRemapEpoch(t *testing.T) {
	c := callLoopMachine(t, 10)
	for i := 0; i < 2; i++ {
		if got := run(t, c); got != 55 {
			t.Fatalf("warm run = %d, want 55", got)
		}
	}
	if c.IndirectChained == 0 {
		t.Fatal("indirect link not warm before the remap")
	}
	newBase := uint64(mm.KernelBase + 0x950000)
	if err := c.AS.RemapRegion(newBase, codeBase, 1); err != nil {
		t.Fatal(err)
	}
	_, misses0 := c.BlockCacheStats()
	i0 := c.IndirectChained
	for i := 0; i < 2; i++ {
		if got, err := c.Call(newBase); err != nil || got != 55 {
			t.Fatalf("remapped run = (%d, %v), want 55", got, err)
		}
	}
	if _, misses1 := c.BlockCacheStats(); misses1 != misses0 {
		t.Fatalf("remap forced %d block rebuilds; frame-keyed cache should stay warm", misses1-misses0)
	}
	if c.IndirectChained <= i0 {
		t.Fatal("remapped trace never chained indirectly again")
	}
}

// TestIndirectInvalidatedByAliasWriteToSuccessor: patch the indirectly
// linked successor's frame through a writable alias — the RET block's
// own page is untouched, so only the link's content-version guard can
// catch it — and verify no stale chained block executes.
func TestIndirectInvalidatedByAliasWriteToSuccessor(t *testing.T) {
	// Successor on its own page so the alias write cannot also
	// invalidate the RET block's page.
	c := machine(t, []isa.Inst{{Op: isa.OpNOP}})
	fVA := uint64(codeBase + 0x80)
	succVA := uint64(codeBase + mm.PageSize) // B: RET's return target page
	lenOf := func(in isa.Inst) int { return len(encode(in)) }
	callLen := lenOf(isa.Inst{Op: isa.OpCALL})
	// main: CALL f.   succ (next page): MOVI RAX, imm; RET
	d1 := int64(fVA) - int64(codeBase+uint64(callLen))
	if err := c.AS.WriteBytesForce(codeBase, encode(
		isa.Inst{Op: isa.OpCALL, Disp: int32(d1)},
	)); err != nil {
		t.Fatal(err)
	}
	// f discards the pushed return address and RETs straight into the
	// successor page, so the RET itself is the cross-page indirect edge.
	if err := c.AS.WriteBytesForce(fVA, encode(
		isa.Inst{Op: isa.OpPOP, R1: isa.RBX},
		isa.Inst{Op: isa.OpMOVABS, R1: isa.RDX, Imm: int64(succVA)},
		isa.Inst{Op: isa.OpPUSH, R1: isa.RDX},
		isa.Inst{Op: isa.OpRET},
	)); err != nil {
		t.Fatal(err)
	}
	if err := c.AS.WriteBytesForce(succVA, retImm(7)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // second run warms the RET→succ ilink
		if got := run(t, c); got != 7 {
			t.Fatalf("original code = %d, want 7", got)
		}
	}
	if c.IndirectChained == 0 {
		t.Fatal("indirect link not warm before the alias write")
	}
	frame, _, ok := c.AS.Lookup(succVA)
	if !ok {
		t.Fatal("successor page not mapped")
	}
	alias := mm.KernelBase + 0x960000
	if err := c.AS.Map(alias, frame, mm.FlagWrite); err != nil {
		t.Fatal(err)
	}
	if err := c.AS.WriteBytes(alias, retImm(42)); err != nil {
		t.Fatal(err)
	}
	if got := run(t, c); got != 42 {
		t.Fatalf("patched successor = %d, want 42 (stale indirectly chained block executed)", got)
	}
}

// TestIndirectTwoVCPUDeterminism: two fresh vCPUs over the same address
// space must retire identical block/chain/indirect/cycle counts — the
// indirect cache is per-vCPU state evolving deterministically (run with
// -race: the block caches must never share mutable state across vCPUs).
func TestIndirectTwoVCPUDeterminism(t *testing.T) {
	c1 := callLoopMachine(t, 50)
	run(t, c1)
	run(t, c1)
	c2 := New(1, c1.AS)
	c2.Regs[isa.RSP] = stackTop
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2; i++ {
			if got, err := c2.Call(codeBase); err != nil || got != 1275 {
				t.Errorf("second vCPU = (%d, %v), want 1275", got, err)
			}
		}
	}()
	<-done
	if c1.Cycles != c2.Cycles || c1.Blocks != c2.Blocks ||
		c1.ChainedBlocks != c2.ChainedBlocks || c1.IndirectChained != c2.IndirectChained {
		t.Fatalf("vCPUs diverge: (%d cycles, %d blocks, %d chained, %d indirect) vs (%d, %d, %d, %d)",
			c1.Cycles, c1.Blocks, c1.ChainedBlocks, c1.IndirectChained,
			c2.Cycles, c2.Blocks, c2.ChainedBlocks, c2.IndirectChained)
	}
	if c1.IndirectChained == 0 {
		t.Fatal("no indirect links followed; determinism test exercised nothing")
	}
}
