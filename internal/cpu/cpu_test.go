package cpu

import (
	"errors"
	"strings"
	"testing"

	"adelie/internal/isa"
	"adelie/internal/mm"
)

const (
	codeBase  = mm.KernelBase + 0x100000
	dataBase  = mm.KernelBase + 0x200000
	stackTop  = mm.KernelBase + 0x300000 // stack occupies the pages below
	stackPgs  = 4
	stackBase = stackTop - stackPgs*mm.PageSize
)

// machine maps a code region, a data region and a stack, writes the given
// instructions at codeBase, and returns a ready CPU.
func machine(t *testing.T, code []isa.Inst) *CPU {
	t.Helper()
	as := mm.NewAddressSpace(mm.NewPhysMem())
	if _, err := as.MapRegion(codeBase, 4, mm.FlagExec); err != nil {
		t.Fatal(err)
	}
	if _, err := as.MapRegion(dataBase, 4, mm.FlagWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := as.MapRegion(stackBase, stackPgs, mm.FlagWrite); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for _, in := range code {
		buf = in.Append(buf)
	}
	if err := as.WriteBytesForce(codeBase, buf); err != nil {
		t.Fatal(err)
	}
	c := New(0, as)
	c.Regs[isa.RSP] = stackTop
	return c
}

// run executes at codeBase until halt and returns RAX.
func run(t *testing.T, c *CPU) uint64 {
	t.Helper()
	v, err := c.Call(codeBase)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestArithmeticAndLoop(t *testing.T) {
	// Sum 1..10 into RAX.
	c := machine(t, []isa.Inst{
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 0},
		{Op: isa.OpMOVI, R1: isa.RCX, Imm: 10},
		// loop:
		{Op: isa.OpADD, R1: isa.RAX, R2: isa.RCX},
		{Op: isa.OpSUBI, R1: isa.RCX, Imm: 1},
		{Op: isa.OpCMPI, R1: isa.RCX, Imm: 0},
		{Op: isa.OpJNE, Disp: -19}, // back to ADD (2+6+6+5=19 bytes)
		{Op: isa.OpRET},
	})
	if got := run(t, c); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
}

func TestAllALUOps(t *testing.T) {
	c := machine(t, []isa.Inst{
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 12},
		{Op: isa.OpMOVI, R1: isa.RBX, Imm: 5},
		{Op: isa.OpSUB, R1: isa.RAX, R2: isa.RBX},  // 7
		{Op: isa.OpIMUL, R1: isa.RAX, R2: isa.RBX}, // 35
		{Op: isa.OpMOVI, R1: isa.RCX, Imm: 3},
		{Op: isa.OpUDIV, R1: isa.RAX, R2: isa.RCX}, // 11
		{Op: isa.OpXORI, R1: isa.RAX, Imm: 0xFF},   // 11^255 = 244
		{Op: isa.OpANDI, R1: isa.RAX, Imm: 0xF0},   // 240
		{Op: isa.OpSHRI, R1: isa.RAX, Imm: 4},      // 15
		{Op: isa.OpSHLI, R1: isa.RAX, Imm: 2},      // 60
		{Op: isa.OpOR, R1: isa.RAX, R2: isa.RBX},   // 60|5 = 61
		{Op: isa.OpRET},
	})
	if got := run(t, c); got != 61 {
		t.Fatalf("ALU chain = %d, want 61", got)
	}
}

func TestLoadStore(t *testing.T) {
	c := machine(t, []isa.Inst{
		{Op: isa.OpMOVABS, R1: isa.RBX, Imm: int64(dataBase)},
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 0x1234},
		{Op: isa.OpSTORE, R1: isa.RAX, R2: isa.RBX, Disp: 16},
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 0},
		{Op: isa.OpLOAD, R1: isa.RAX, R2: isa.RBX, Disp: 16},
		{Op: isa.OpRET},
	})
	if got := run(t, c); got != 0x1234 {
		t.Fatalf("load/store = %#x, want 0x1234", got)
	}
}

func TestPushPopAndCallRet(t *testing.T) {
	// entry: call f (skips over f's body via the call target math);
	// f: rax = 7; ret
	entry := []isa.Inst{
		{Op: isa.OpCALL, Disp: 1},             // target = 5 (next) + 1 = offset 6: f
		{Op: isa.OpRET},                       // after f returns
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 7}, // f at offset 6
		{Op: isa.OpRET},
	}
	c := machine(t, entry)
	if got := run(t, c); got != 7 {
		t.Fatalf("call/ret = %d, want 7", got)
	}
	if c.Regs[isa.RSP] != stackTop {
		t.Fatalf("stack not balanced: rsp=%#x want %#x", c.Regs[isa.RSP], stackTop)
	}
}

func TestRIPRelativeAddressing(t *testing.T) {
	// lea of a known offset, then rip-relative store and load.
	// Layout: lea (6) at 0, store-rip (6) at 6, load-rip (6) at 12, ret at 18.
	// Use dataBase via register instead for the store; test LEARIP math.
	c := machine(t, []isa.Inst{
		{Op: isa.OpLEARIP, R1: isa.RAX, Disp: 100}, // rax = rip_next + 100 = codeBase+6+100
		{Op: isa.OpRET},
	})
	if got := run(t, c); got != codeBase+6+100 {
		t.Fatalf("lea rip = %#x, want %#x", got, codeBase+6+100)
	}
}

func TestGOTIndirectCall(t *testing.T) {
	// A GOT slot in the data region holds the address of target code; the
	// CALLM instruction reads it and calls through.
	target := uint64(codeBase + 0x80)
	c := machine(t, nil)
	// main at codeBase: callm [rip+disp] ; ret
	// GOT slot placed at dataBase.
	var buf []byte
	disp := int32(int64(dataBase) - int64(codeBase+5)) // next rip after CALLM = codeBase+5
	buf = isa.Inst{Op: isa.OpCALLM, Disp: disp}.Append(buf)
	buf = isa.Inst{Op: isa.OpRET}.Append(buf)
	if err := c.AS.WriteBytesForce(codeBase, buf); err != nil {
		t.Fatal(err)
	}
	var fn []byte
	fn = isa.Inst{Op: isa.OpMOVI, R1: isa.RAX, Imm: 31337}.Append(fn)
	fn = isa.Inst{Op: isa.OpRET}.Append(fn)
	if err := c.AS.WriteBytesForce(target, fn); err != nil {
		t.Fatal(err)
	}
	if err := c.AS.Write64(dataBase, target); err != nil {
		t.Fatal(err)
	}
	if got := run(t, c); got != 31337 {
		t.Fatalf("got-indirect call = %d, want 31337", got)
	}
}

func TestReturnAddressEncryptionSequence(t *testing.T) {
	// The exact prologue/epilogue of paper Fig. 3b (non-static variant):
	//   prologue: mov key, %r11 ; xor %r11, (%rsp) ; xor %r11, %r11
	//   epilogue: the same, then ret
	// With the key in a register-addressed slot here (the GOT variant is
	// exercised in the kernel loader tests).
	key := uint64(0xDEADBEEFCAFEBABE)
	c := machine(t, nil)
	if err := c.AS.Write64(dataBase+8, key); err != nil {
		t.Fatal(err)
	}
	var main []byte
	// call f (f directly follows at offset 5+1=6... compute: call is 5B, ret 1B → f at 6)
	main = isa.Inst{Op: isa.OpCALL, Disp: 1}.Append(main) // target = 5+1 = 6
	main = isa.Inst{Op: isa.OpRET}.Append(main)
	// f:
	f := []isa.Inst{
		{Op: isa.OpMOVABS, R1: isa.RBX, Imm: int64(dataBase)},
		{Op: isa.OpLOAD, R1: isa.R11, R2: isa.RBX, Disp: 8}, // key
		{Op: isa.OpXORM, R1: isa.R11, R2: isa.RSP, Disp: 0}, // encrypt return address
		{Op: isa.OpXOR, R1: isa.R11, R2: isa.R11},           // clear scratch
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 55},
		// epilogue: decrypt
		{Op: isa.OpLOAD, R1: isa.R11, R2: isa.RBX, Disp: 8},
		{Op: isa.OpXORM, R1: isa.R11, R2: isa.RSP, Disp: 0},
		{Op: isa.OpXOR, R1: isa.R11, R2: isa.R11},
		{Op: isa.OpRET},
	}
	for _, in := range f {
		main = in.Append(main)
	}
	if err := c.AS.WriteBytesForce(codeBase, main); err != nil {
		t.Fatal(err)
	}
	if got := run(t, c); got != 55 {
		t.Fatalf("encrypted-return function = %d, want 55", got)
	}
	if c.Regs[isa.R11] != 0 {
		t.Fatal("scratch register leaked the key")
	}
}

func TestReturnWithWrongKeyFaultsOrDiverges(t *testing.T) {
	// If the epilogue decrypts with a different key, the return address is
	// garbage — exactly the protection §6 describes for hijacked returns.
	c := machine(t, nil)
	var main []byte
	main = isa.Inst{Op: isa.OpCALL, Disp: 1}.Append(main)
	main = isa.Inst{Op: isa.OpRET}.Append(main)
	f := []isa.Inst{
		{Op: isa.OpMOVABS, R1: isa.R11, Imm: 0x1111}, // encrypt key A
		{Op: isa.OpXORM, R1: isa.R11, R2: isa.RSP, Disp: 0},
		{Op: isa.OpMOVABS, R1: isa.R11, Imm: 0x2222}, // decrypt key B ≠ A
		{Op: isa.OpXORM, R1: isa.R11, R2: isa.RSP, Disp: 0},
		{Op: isa.OpRET},
	}
	for _, in := range f {
		main = in.Append(main)
	}
	if err := c.AS.WriteBytesForce(codeBase, main); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(codeBase); err == nil {
		t.Fatal("return through mismatched key should fault")
	}
}

func TestNXFaultOnDataExecution(t *testing.T) {
	c := machine(t, []isa.Inst{{Op: isa.OpRET}})
	_, err := c.Call(dataBase) // data region is NX
	var pf *mm.PageFault
	if !errors.As(err, &pf) || pf.Access != mm.AccessExec {
		t.Fatalf("got %v, want exec page fault", err)
	}
}

func TestWriteFaultSurfacesRIP(t *testing.T) {
	c := machine(t, []isa.Inst{
		{Op: isa.OpMOVABS, R1: isa.RBX, Imm: int64(codeBase)}, // exec page: not writable
		{Op: isa.OpSTORE, R1: isa.RAX, R2: isa.RBX},
		{Op: isa.OpRET},
	})
	_, err := c.Call(codeBase)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("got %v, want *Fault", err)
	}
	if f.RIP != codeBase+10 {
		t.Fatalf("fault RIP = %#x, want %#x (the store)", f.RIP, codeBase+10)
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	c := machine(t, []isa.Inst{
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 1},
		{Op: isa.OpMOVI, R1: isa.RBX, Imm: 0},
		{Op: isa.OpUDIV, R1: isa.RAX, R2: isa.RBX},
		{Op: isa.OpRET},
	})
	if _, err := c.Call(codeBase); err == nil || !strings.Contains(err.Error(), "divide by zero") {
		t.Fatalf("got %v, want divide-by-zero fault", err)
	}
}

func TestNativeDispatchAndArgs(t *testing.T) {
	c := machine(t, nil)
	nativeVA := uint64(codeBase + 0x800)
	var got []uint64
	c.RegisterNative(nativeVA, &Native{
		Name: "sum3", Cost: 10,
		Fn: func(c *CPU) error {
			got = append(got, c.Regs[isa.RDI], c.Regs[isa.RSI], c.Regs[isa.RDX])
			c.Regs[isa.RAX] = c.Regs[isa.RDI] + c.Regs[isa.RSI] + c.Regs[isa.RDX]
			return nil
		},
	})
	v, err := c.Call(nativeVA, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v != 6 || len(got) != 3 {
		t.Fatalf("native call = %d (args %v), want 6", v, got)
	}
	if c.Cycles < 10 {
		t.Fatal("native cost not charged")
	}
}

func TestNativeCallingModuleCode(t *testing.T) {
	// Kernel→module callback: a native invokes interpreted code via Call.
	c := machine(t, []isa.Inst{
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 0},
		{Op: isa.OpADD, R1: isa.RAX, R2: isa.RDI},
		{Op: isa.OpADD, R1: isa.RAX, R2: isa.RSI},
		{Op: isa.OpRET},
	})
	nativeVA := uint64(codeBase + 0x800)
	c.RegisterNative(nativeVA, &Native{
		Name: "invoke_handler", Cost: 5,
		Fn: func(c *CPU) error {
			v, err := c.Call(codeBase, 20, 22)
			if err != nil {
				return err
			}
			c.Regs[isa.RAX] = v + 1
			return nil
		},
	})
	v, err := c.Call(nativeVA)
	if err != nil {
		t.Fatal(err)
	}
	if v != 43 {
		t.Fatalf("nested call = %d, want 43", v)
	}
}

func TestInstructionBudget(t *testing.T) {
	// Infinite loop must be caught by the budget.
	c := machine(t, []isa.Inst{
		{Op: isa.OpJMP, Disp: -5},
	})
	c.Regs[isa.RSP] = stackTop
	if err := c.Push(HostReturn); err != nil {
		t.Fatal(err)
	}
	c.RIP = codeBase
	err := c.Run(1000)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("got %v, want budget fault", err)
	}
}

func TestConditionalJumps(t *testing.T) {
	cases := []struct {
		op   isa.Op
		a, b int64
		take bool
	}{
		{isa.OpJE, 5, 5, true}, {isa.OpJE, 5, 6, false},
		{isa.OpJNE, 5, 6, true}, {isa.OpJNE, 5, 5, false},
		{isa.OpJL, -1, 0, true}, {isa.OpJL, 0, -1, false},
		{isa.OpJGE, 0, -1, true}, {isa.OpJGE, -1, 0, false},
		{isa.OpJLE, 3, 3, true}, {isa.OpJLE, 4, 3, false},
		{isa.OpJG, 4, 3, true}, {isa.OpJG, 3, 3, false},
		{isa.OpJB, 1, 2, true}, {isa.OpJB, ^0, 1, false}, // unsigned: 2^64-1 not below 1
		{isa.OpJAE, ^0, 1, true}, {isa.OpJAE, 1, 2, false},
	}
	for _, tc := range cases {
		c := machine(t, []isa.Inst{
			{Op: isa.OpMOVABS, R1: isa.RAX, Imm: tc.a},
			{Op: isa.OpMOVABS, R1: isa.RBX, Imm: tc.b},
			{Op: isa.OpCMP, R1: isa.RAX, R2: isa.RBX},
			{Op: tc.op, Disp: 7}, // skip over "mov rax,0; ret" (6+1)
			{Op: isa.OpMOVI, R1: isa.RAX, Imm: 0},
			{Op: isa.OpRET},
			{Op: isa.OpMOVI, R1: isa.RAX, Imm: 1},
			{Op: isa.OpRET},
		})
		got := run(t, c)
		want := uint64(0)
		if tc.take {
			want = 1
		}
		if got != want {
			t.Errorf("%s(%d,%d): taken=%d, want %d", tc.op.Name(), tc.a, tc.b, got, want)
		}
	}
}

func TestCyclesChargeTLBMisses(t *testing.T) {
	c := machine(t, []isa.Inst{
		{Op: isa.OpMOVABS, R1: isa.RBX, Imm: int64(dataBase)},
		{Op: isa.OpLOAD, R1: isa.RAX, R2: isa.RBX},
		{Op: isa.OpLOAD, R1: isa.RAX, R2: isa.RBX},
		{Op: isa.OpRET},
	})
	run(t, c)
	// First load misses (+CostTLBMiss), second hits. Plus fetch misses.
	if c.Cycles <= c.Insts {
		t.Fatalf("cycles (%d) should exceed instruction count (%d) due to TLB misses", c.Cycles, c.Insts)
	}
}

func TestHalt(t *testing.T) {
	c := machine(t, []isa.Inst{
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 9},
		{Op: isa.OpHLT},
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 10}, // unreachable
	})
	c.RIP = codeBase
	c.Regs[isa.RSP] = stackTop
	if err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.RAX] != 9 {
		t.Fatalf("rax = %d, want 9 (hlt must stop execution)", c.Regs[isa.RAX])
	}
}

func BenchmarkInterpreterLoop(b *testing.B) {
	as := mm.NewAddressSpace(mm.NewPhysMem())
	if _, err := as.MapRegion(codeBase, 1, mm.FlagExec); err != nil {
		b.Fatal(err)
	}
	if _, err := as.MapRegion(stackBase, stackPgs, mm.FlagWrite); err != nil {
		b.Fatal(err)
	}
	var buf []byte
	for _, in := range []isa.Inst{
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 0},
		{Op: isa.OpMOVI, R1: isa.RCX, Imm: 100},
		{Op: isa.OpADD, R1: isa.RAX, R2: isa.RCX},
		{Op: isa.OpSUBI, R1: isa.RCX, Imm: 1},
		{Op: isa.OpCMPI, R1: isa.RCX, Imm: 0},
		{Op: isa.OpJNE, Disp: -19},
		{Op: isa.OpRET},
	} {
		buf = in.Append(buf)
	}
	if err := as.WriteBytesForce(codeBase, buf); err != nil {
		b.Fatal(err)
	}
	c := New(0, as)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Regs[isa.RSP] = stackTop
		if _, err := c.Call(codeBase); err != nil {
			b.Fatal(err)
		}
	}
}
