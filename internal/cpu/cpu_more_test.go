package cpu

import (
	"strings"
	"testing"

	"adelie/internal/isa"
	"adelie/internal/mm"
)

func TestRIPRelativeStoreAndLoad(t *testing.T) {
	// Store then load through rip-relative addressing into the data page.
	// Layout: strip (6B at 0), ldrip (6B at 6), ret (1B at 12).
	c := machine(t, nil)
	dispStore := int32(int64(dataBase) - int64(codeBase+6))
	dispLoad := int32(int64(dataBase) - int64(codeBase+12))
	var buf []byte
	buf = isa.Inst{Op: isa.OpMOVI, R1: isa.RAX, Imm: 777}.Append(buf) // 6B
	buf = isa.Inst{Op: isa.OpSTRIP, R1: isa.RAX, Disp: dispStore - 6}.Append(buf)
	buf = isa.Inst{Op: isa.OpMOVI, R1: isa.RAX, Imm: 0}.Append(buf)
	buf = isa.Inst{Op: isa.OpLDRIP, R1: isa.RAX, Disp: dispLoad - 12}.Append(buf)
	_ = dispLoad
	buf = isa.Inst{Op: isa.OpRET}.Append(buf)
	// Recompute displacements against actual instruction layout:
	// movi(6) strip(6) movi(6) ldrip(6) ret(1)
	buf = buf[:0]
	buf = isa.Inst{Op: isa.OpMOVI, R1: isa.RAX, Imm: 777}.Append(buf)
	buf = isa.Inst{Op: isa.OpSTRIP, R1: isa.RAX, Disp: int32(int64(dataBase) - int64(codeBase+12))}.Append(buf)
	buf = isa.Inst{Op: isa.OpMOVI, R1: isa.RAX, Imm: 0}.Append(buf)
	buf = isa.Inst{Op: isa.OpLDRIP, R1: isa.RAX, Disp: int32(int64(dataBase) - int64(codeBase+24))}.Append(buf)
	buf = isa.Inst{Op: isa.OpRET}.Append(buf)
	if err := c.AS.WriteBytesForce(codeBase, buf); err != nil {
		t.Fatal(err)
	}
	if got := run(t, c); got != 777 {
		t.Fatalf("rip-relative store/load = %d, want 777", got)
	}
	v, _ := c.AS.Read64(dataBase)
	if v != 777 {
		t.Fatalf("memory = %d", v)
	}
}

func TestTestInstructionFlags(t *testing.T) {
	c := machine(t, []isa.Inst{
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 0b1100},
		{Op: isa.OpMOVI, R1: isa.RBX, Imm: 0b0011},
		{Op: isa.OpTEST, R1: isa.RAX, R2: isa.RBX}, // 1100 & 0011 = 0 → ZF
		{Op: isa.OpJE, Disp: 7},
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 0},
		{Op: isa.OpRET},
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 1},
		{Op: isa.OpRET},
	})
	if got := run(t, c); got != 1 {
		t.Fatalf("test/je = %d, want 1", got)
	}
}

func TestJMPRegAndJMPMem(t *testing.T) {
	// jmp *%rax to a trailer that sets rax and returns.
	c := machine(t, nil)
	var buf []byte
	trailer := codeBase + 0x100
	buf = isa.Inst{Op: isa.OpMOVABS, R1: isa.RAX, Imm: int64(trailer)}.Append(buf)
	buf = isa.Inst{Op: isa.OpJMPR, R1: isa.RAX}.Append(buf)
	if err := c.AS.WriteBytesForce(codeBase, buf); err != nil {
		t.Fatal(err)
	}
	var tr []byte
	tr = isa.Inst{Op: isa.OpMOVI, R1: isa.RAX, Imm: 5150}.Append(tr)
	tr = isa.Inst{Op: isa.OpRET}.Append(tr)
	if err := c.AS.WriteBytesForce(trailer, tr); err != nil {
		t.Fatal(err)
	}
	if got := run(t, c); got != 5150 {
		t.Fatalf("jmp reg = %d", got)
	}

	// jmp *disp(%rip): slot in data page holds the trailer address.
	c2 := machine(t, nil)
	if err := c2.AS.Write64(dataBase, trailer); err != nil {
		t.Fatal(err)
	}
	var buf2 []byte
	buf2 = isa.Inst{Op: isa.OpJMPM, Disp: int32(int64(dataBase) - int64(codeBase+5))}.Append(buf2)
	if err := c2.AS.WriteBytesForce(codeBase, buf2); err != nil {
		t.Fatal(err)
	}
	if err := c2.AS.WriteBytesForce(trailer, tr); err != nil {
		t.Fatal(err)
	}
	if got := run(t, c2); got != 5150 {
		t.Fatalf("jmp mem = %d", got)
	}
}

func TestInstructionStraddlingPageBoundary(t *testing.T) {
	// Place a movabs so its 10 bytes straddle two exec pages.
	c := machine(t, nil)
	start := codeBase + mm.PageSize - 4
	var buf []byte
	buf = isa.Inst{Op: isa.OpMOVABS, R1: isa.RAX, Imm: 0x1234}.Append(buf)
	buf = isa.Inst{Op: isa.OpRET}.Append(buf)
	if err := c.AS.WriteBytesForce(start, buf); err != nil {
		t.Fatal(err)
	}
	v, err := c.Call(start)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1234 {
		t.Fatalf("straddling inst = %#x", v)
	}
}

func TestStackOverflowHitsGuard(t *testing.T) {
	// Recursive calls past the stack bottom must fault (unmapped guard).
	c := machine(t, []isa.Inst{
		{Op: isa.OpCALL, Disp: -5}, // call self forever
	})
	c.Regs[isa.RSP] = stackTop
	if err := c.Push(HostReturn); err != nil {
		t.Fatal(err)
	}
	c.RIP = codeBase
	err := c.Run(100000)
	if err == nil || !strings.Contains(err.Error(), "page fault") {
		t.Fatalf("got %v, want stack-guard page fault", err)
	}
}

func TestNativeErrorPropagates(t *testing.T) {
	c := machine(t, nil)
	va := uint64(codeBase + 0x400)
	c.RegisterNative(va, &Native{Name: "boom", Cost: 1, Fn: func(c *CPU) error {
		return &mm.PageFault{VA: 0xdead, Access: mm.AccessRead, Reason: "synthetic"}
	}})
	_, err := c.Call(va)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("native error lost: %v", err)
	}
}

func TestCallTooManyArgs(t *testing.T) {
	c := machine(t, []isa.Inst{{Op: isa.OpRET}})
	if _, err := c.Call(codeBase, 1, 2, 3, 4, 5, 6, 7); err == nil {
		t.Fatal("7 register args accepted; SysV allows 6")
	}
}

func TestMovRegAndShifts(t *testing.T) {
	c := machine(t, []isa.Inst{
		{Op: isa.OpMOVI, R1: isa.RBX, Imm: 3},
		{Op: isa.OpMOV, R1: isa.RAX, R2: isa.RBX},
		{Op: isa.OpSHLI, R1: isa.RAX, Imm: 63}, // huge shift, masked to 63
		{Op: isa.OpSHRI, R1: isa.RAX, Imm: 62},
		{Op: isa.OpRET},
	})
	if got := run(t, c); got != 2 { // 3<<63 = 0x8000..., >>62 = 2
		t.Fatalf("shift chain = %d, want 2", got)
	}
}

func TestFaultUnwrapsPageFault(t *testing.T) {
	c := machine(t, nil)
	_, err := c.Call(dataBase) // NX
	var f *Fault
	if !asFault(err, &f) {
		t.Fatalf("not a Fault: %v", err)
	}
	if f.Unwrap() == nil {
		t.Fatal("Fault should wrap the page fault")
	}
}

func asFault(err error, target **Fault) bool {
	for err != nil {
		if f, ok := err.(*Fault); ok {
			*target = f
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
