package cpu

import "adelie/internal/mm"

// CloneFor returns a copy of this vCPU for a forked machine: same
// architectural state (registers, flags, RIP), same cycle and retire
// counters, and a cloned TLB over the fork's address space so the
// clone's future hit/miss — and therefore cycle — sequence matches the
// template's. natives is the fork kernel's table (the closures captured
// by native entries belong to a specific kernel, so the template's map
// must not be shared).
//
// The decoded-instruction and superblock caches start empty: they are
// host-side accelerators whose population is invisible to cycle
// accounting (the same documented equivalence that lets ADELIE_NOCHAIN=1
// disable chaining without changing results).
func (c *CPU) CloneFor(as *mm.AddressSpace, natives map[uint64]*Native) *CPU {
	n := New(c.ID, as)
	n.Regs = c.Regs
	n.RIP = c.RIP
	n.ZF, n.SF, n.CF = c.ZF, c.SF, c.CF
	n.TLB = c.TLB.CloneFor(as)
	n.natives = natives
	n.nativeLo, n.nativeHi = c.nativeLo, c.nativeHi
	n.Cycles = c.Cycles
	n.Insts = c.Insts
	n.Blocks = c.Blocks
	n.ChainedBlocks = c.ChainedBlocks
	n.IndirectChained = c.IndirectChained
	n.chainOn = c.chainOn
	n.indirectOn = c.indirectOn
	n.decodeHits, n.decodeMisses = c.decodeHits, c.decodeMisses
	n.blockHits, n.blockMisses = c.blockHits, c.blockMisses
	n.chainMisses = c.chainMisses
	return n
}
