package cpu

import (
	"errors"
	"testing"

	"adelie/internal/isa"
	"adelie/internal/mm"
)

// Trace-linking tests: hot block exits chain block→block without
// returning to the dispatch loop, guarded by the successor frame's
// content version, the address-space generation and the native-table
// generation. See superblock.go.

// chainOff runs f with trace linking disabled for CPUs created inside.
func chainOff(t *testing.T, f func()) {
	t.Helper()
	was := SetChaining(false)
	defer SetChaining(was)
	f()
}

// loopCode is a multi-block program: an init block, a loop body block
// ending in a conditional branch (two linkable exits), and a RET block.
// Sum 1..n into RAX.
func loopCode(n int64) []isa.Inst {
	return []isa.Inst{
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 0},
		{Op: isa.OpMOVI, R1: isa.RCX, Imm: n},
		// loop:
		{Op: isa.OpADD, R1: isa.RAX, R2: isa.RCX},
		{Op: isa.OpSUBI, R1: isa.RCX, Imm: 1},
		{Op: isa.OpCMPI, R1: isa.RCX, Imm: 0},
		{Op: isa.OpJNE, Disp: -19}, // back to ADD
		{Op: isa.OpRET},
	}
}

// TestChainFollowsHotLoop: re-executing a hot loop must follow trace
// links (the taken back-edge and the fall-through exit) instead of
// bouncing through the dispatch loop, with cycle and instruction
// accounting identical to unchained block execution.
func TestChainFollowsHotLoop(t *testing.T) {
	chained := machine(t, loopCode(10))
	if got := run(t, chained); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
	if got := run(t, chained); got != 55 {
		t.Fatalf("second run = %d, want 55", got)
	}
	hits, _ := chained.ChainStats()
	if hits == 0 {
		t.Fatal("hot loop followed no trace links")
	}
	if chained.ChainedBlocks >= chained.Blocks {
		t.Fatalf("chained %d of %d blocks; the first block of a Call always dispatches",
			chained.ChainedBlocks, chained.Blocks)
	}

	var unchained *CPU
	chainOff(t, func() {
		unchained = machine(t, loopCode(10))
		if got := run(t, unchained); got != 55 {
			t.Fatalf("unchained sum = %d, want 55", got)
		}
		if got := run(t, unchained); got != 55 {
			t.Fatalf("unchained second run = %d, want 55", got)
		}
	})
	if h, _ := unchained.ChainStats(); h != 0 || unchained.ChainedBlocks != 0 {
		t.Fatalf("chain-disabled vCPU followed %d links", unchained.ChainedBlocks)
	}
	// TLB-resident working set: charged cycles must be bit-identical
	// across modes (the cross-mode CI gate at unit scale).
	if chained.Cycles != unchained.Cycles || chained.Insts != unchained.Insts {
		t.Fatalf("chained (%d cycles, %d insts) != unchained (%d cycles, %d insts)",
			chained.Cycles, chained.Insts, unchained.Cycles, unchained.Insts)
	}
	if chained.Blocks != unchained.Blocks {
		t.Fatalf("blocks retired differ: chained %d, unchained %d", chained.Blocks, unchained.Blocks)
	}
}

// crossPageMachine lays block A (page 0) ending in a direct JMP to block
// B (page 1) and returns the CPU. B loads 7 into RAX and returns.
func crossPageMachine(t *testing.T) *CPU {
	t.Helper()
	c := machine(t, []isa.Inst{{Op: isa.OpNOP}})
	a := encode(
		isa.Inst{Op: isa.OpMOVI, R1: isa.RBX, Imm: 3},
		isa.Inst{Op: isa.OpJMP}, // patched below
	)
	bVA := uint64(codeBase + mm.PageSize)
	// JMP disp is relative to the instruction after the JMP (len 5).
	disp := int64(bVA) - int64(codeBase+uint64(len(a)))
	a = encode(
		isa.Inst{Op: isa.OpMOVI, R1: isa.RBX, Imm: 3},
		isa.Inst{Op: isa.OpJMP, Disp: int32(disp)},
	)
	if err := c.AS.WriteBytesForce(codeBase, a); err != nil {
		t.Fatal(err)
	}
	b := encode(
		isa.Inst{Op: isa.OpMOVI, R1: isa.RAX, Imm: 7},
		isa.Inst{Op: isa.OpRET},
	)
	if err := c.AS.WriteBytesForce(bVA, b); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestChainCrossPageLink: a direct branch to the next page links after
// the first execution and the link is actually followed.
func TestChainCrossPageLink(t *testing.T) {
	c := crossPageMachine(t)
	if got := run(t, c); got != 7 {
		t.Fatalf("first run = %d, want 7", got)
	}
	hits0, _ := c.ChainStats()
	if got := run(t, c); got != 7 {
		t.Fatalf("second run = %d, want 7", got)
	}
	hits1, _ := c.ChainStats()
	if hits1 <= hits0 {
		t.Fatalf("cross-page exit not chained: link hits %d → %d", hits0, hits1)
	}
}

// TestChainInvalidatedByAliasWriteToSuccessor is the W^X hole test at
// link granularity: patch the *successor* frame through a writable alias
// — the predecessor's page is untouched, so only the link's own
// content-version guard can catch it — and verify no stale chained block
// executes.
func TestChainInvalidatedByAliasWriteToSuccessor(t *testing.T) {
	c := crossPageMachine(t)
	for i := 0; i < 2; i++ { // second run warms the A→B link
		if got := run(t, c); got != 7 {
			t.Fatalf("original code = %d, want 7", got)
		}
	}
	if hits, _ := c.ChainStats(); hits == 0 {
		t.Fatal("link not warm before the alias write")
	}
	bVA := uint64(codeBase + mm.PageSize)
	frame, _, ok := c.AS.Lookup(bVA)
	if !ok {
		t.Fatal("successor page not mapped")
	}
	alias := mm.KernelBase + 0x930000
	if err := c.AS.Map(alias, frame, mm.FlagWrite); err != nil {
		t.Fatal(err)
	}
	if err := c.AS.WriteBytes(alias, retImm(42)); err != nil {
		t.Fatal(err)
	}
	if got := run(t, c); got != 42 {
		t.Fatalf("patched successor = %d, want 42 (stale chained block executed)", got)
	}
}

// TestChainRemapKeepsBlocksWarm: a zero-copy remap (same frames, new VAs)
// must not rebuild any blocks — the block cache is frame-keyed — while
// links, which are VA-guarded, re-record at the new addresses and chain
// again.
func TestChainRemapKeepsBlocksWarm(t *testing.T) {
	c := machine(t, loopCode(10))
	for i := 0; i < 2; i++ {
		if got := run(t, c); got != 55 {
			t.Fatalf("run %d = %d, want 55", i, got)
		}
	}
	newBase := uint64(mm.KernelBase + 0x940000)
	if err := c.AS.RemapRegion(newBase, codeBase, 1); err != nil {
		t.Fatal(err)
	}
	_, misses0 := c.BlockCacheStats()
	hits0, _ := c.ChainStats()
	// Two calls at the new base: the first re-records the links at the
	// new VAs, the second follows them.
	for i := 0; i < 2; i++ {
		if got, err := c.Call(newBase); err != nil || got != 55 {
			t.Fatalf("remapped run = (%d, %v), want 55", got, err)
		}
	}
	if _, misses1 := c.BlockCacheStats(); misses1 != misses0 {
		t.Fatalf("remap forced %d block rebuilds; frame-keyed cache should stay warm", misses1-misses0)
	}
	if hits1, _ := c.ChainStats(); hits1 <= hits0 {
		t.Fatal("remapped trace never chained again")
	}
}

// TestChainToUnmappedTargetFaults: once the successor's page is unmapped
// (a re-randomized-away module region), following the stale link must
// fault exactly like the dispatch path — the address-space generation
// guard sends the exit back through translation.
func TestChainToUnmappedTargetFaults(t *testing.T) {
	c := crossPageMachine(t)
	for i := 0; i < 2; i++ {
		if got := run(t, c); got != 7 {
			t.Fatalf("warm run = %d, want 7", got)
		}
	}
	if hits, _ := c.ChainStats(); hits == 0 {
		t.Fatal("link not warm before the unmap")
	}
	bVA := uint64(codeBase + mm.PageSize)
	if err := c.AS.UnmapRegion(bVA, 1, false); err != nil {
		t.Fatal(err)
	}
	_, err := c.Call(codeBase)
	var pf *mm.PageFault
	if err == nil || !errors.As(err, &pf) {
		t.Fatalf("stale link did not fault: err=%v", err)
	}
	if pf.VA != bVA {
		t.Fatalf("fault at %#x, want the unmapped successor %#x", pf.VA, bVA)
	}
}

// TestChainNativeRegisteredInSuccessor: registering a native kernel
// entry point inside an already-linked successor must retire the link
// (native-table generation) — the successor's frame bytes never changed,
// so the content-version guard alone would let the stale block run
// through the new entry point.
func TestChainNativeRegisteredInSuccessor(t *testing.T) {
	c := crossPageMachine(t)
	for i := 0; i < 2; i++ {
		if got := run(t, c); got != 7 {
			t.Fatalf("warm run = %d, want 7", got)
		}
	}
	bVA := uint64(codeBase + mm.PageSize)
	c.RegisterNative(bVA, &Native{
		Name: "late", Cost: 1,
		Fn: func(c *CPU) error {
			c.Regs[isa.RAX] = 500
			return nil
		},
	})
	if got := run(t, c); got != 500 {
		t.Fatalf("post-native run = %d, want 500 (stale chain bypassed the native)", got)
	}
}

// TestChainBoundedByInstructionBudget: an infinite loop of linked blocks
// must still trip Run's instruction budget — chains are bounded, so the
// dispatch loop (and with it the engine's clock boundary) keeps firing.
func TestChainBoundedByInstructionBudget(t *testing.T) {
	// A single-instruction block that jumps to itself: JMP disp -5
	// (its own length) links to its own superblock.
	c := machine(t, []isa.Inst{{Op: isa.OpJMP, Disp: -5}})
	if err := c.Push(HostReturn); err != nil {
		t.Fatal(err)
	}
	c.RIP = codeBase
	err := c.Run(10_000)
	if err == nil {
		t.Fatal("runaway linked loop did not trip the instruction budget")
	}
	if hits, _ := c.ChainStats(); hits == 0 {
		t.Fatal("self-loop never chained; budget test exercised nothing")
	}
}

// TestChainDeterministic: two fresh vCPUs on the same address space must
// retire identical block, link and cycle counts — trace linking is
// per-vCPU state evolving deterministically.
func TestChainDeterministic(t *testing.T) {
	c1 := machine(t, loopCode(50))
	run(t, c1)
	run(t, c1)
	c2 := New(1, c1.AS)
	c2.Regs[isa.RSP] = stackTop
	if got, err := c2.Call(codeBase); err != nil || got != 1275 {
		t.Fatalf("second vCPU = (%d, %v)", got, err)
	}
	if _, err := c2.Call(codeBase); err != nil {
		t.Fatal(err)
	}
	if c1.Cycles != c2.Cycles || c1.Blocks != c2.Blocks || c1.ChainedBlocks != c2.ChainedBlocks {
		t.Fatalf("vCPUs diverge: (%d cycles, %d blocks, %d chained) vs (%d, %d, %d)",
			c1.Cycles, c1.Blocks, c1.ChainedBlocks, c2.Cycles, c2.Blocks, c2.ChainedBlocks)
	}
}
