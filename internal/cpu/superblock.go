package cpu

// Basic-block superblock execution: the interpreter's hot path.
//
// fetchBlock decodes forward from the entry PC to the next control-flow
// instruction (or the page boundary, a native kernel entry point, or an
// undecodable byte) and caches the whole run keyed by (frame, entry
// offset), validated by the frame's content version — the same
// invalidation that protects the per-instruction decode cache, so a
// write to a code page through any mapping (including a W^X-violating
// writable alias) drops stale blocks before they can execute, and a
// zero-copy re-randomization remap (same frames, new addresses) keeps
// blocks warm.
//
// stepBlock then executes the cached block in a tight loop: one TLB
// lookup and one exec-permission check per block instead of per
// instruction, no per-instruction fetch, no native-table probe between
// straight-line instructions (control can only land on a kernel entry
// point via a branch, which terminates a block). Cycle and instruction
// accounting is accumulated per block and lands in the same CPU counters
// the engine's closed-queueing model replays. For working sets within
// TLB capacity the charged cycles are bit-identical to per-instruction
// execution (intra-block instruction fetches were hits by construction);
// under capacity pressure the code page's FIFO insertion point can
// differ from the step path's, so cross-mode equality is not guaranteed
// there — run-to-run determinism always is.
//
// Memory-model note: like hardware that requires an instruction-sync
// barrier after self-modifying stores, a store issued from inside a
// block to the block's own not-yet-executed bytes takes effect at the
// next block fetch, not within the current block. Cross-block (and
// cross-op) modification is always observed, because every block entry
// re-validates the frame content version.

import (
	"adelie/internal/isa"
	"adelie/internal/mm"
)

// superblock is one decoded basic block. Only the final instruction can
// redirect control (branch/HLT) — or the block was cut at a page
// boundary, a native entry point, or an undecodable byte, in which case
// execution falls through to the next block fetch.
type superblock struct {
	insts []isa.Inst
}

// blockChunkBytes is the granularity at which superblock pointer storage
// is allocated within a page, mirroring decodeChunkBytes: entry points
// cluster in the code actually executed, and a chunked array keeps the
// hit path a bounds-free double index instead of a map probe.
const blockChunkBytes = 512

// blockChunk holds the superblocks entered within one chunk's offsets.
type blockChunk struct {
	blocks [blockChunkBytes]*superblock
}

// pageBlocks caches the superblocks of one physical frame, indexed by
// the byte offset of their entry point within the page; chunks
// materialize on first use.
type pageBlocks struct {
	ver    uint64 // frame content version the blocks belong to
	chunks [mm.PageSize / blockChunkBytes]*blockChunk
}

func (p *pageBlocks) get(off int) *superblock {
	ch := p.chunks[off/blockChunkBytes]
	if ch == nil {
		return nil
	}
	return ch.blocks[off%blockChunkBytes]
}

func (p *pageBlocks) set(off int, sb *superblock) {
	ci := off / blockChunkBytes
	ch := p.chunks[ci]
	if ch == nil {
		ch = &blockChunk{}
		p.chunks[ci] = ch
	}
	ch.blocks[off%blockChunkBytes] = sb
}

// maxBlockPages bounds the superblock cache footprint per vCPU, same
// policy as the per-instruction decode cache: when the bound is hit the
// whole cache is dropped (simple and deterministic).
const maxBlockPages = maxDecodedPages

// noBlock negatively caches entry PCs that cannot start a block (the
// entry instruction straddles the page or does not decode), so repeated
// execution there skips straight to the single-step fallback instead of
// re-attempting the build. Whether an entry can start a block depends
// only on this frame's bytes, so the usual version check validates it.
var noBlock = &superblock{}

// invalidateBlocks drops every cached superblock (native-table changes
// move block boundaries without touching frame contents).
func (c *CPU) invalidateBlocks() {
	clear(c.blocks)
	c.lastBlockFrame, c.lastPB = mm.NoFrame, nil
}

// stepBlock executes one whole basic block, falling back to a single
// Step when block execution cannot be used (entry instruction straddles
// the page boundary or fails to decode). Same contract as Step:
// (halted, error).
func (c *CPU) stepBlock() (bool, error) {
	rip := c.RIP
	if rip == HostReturn {
		return true, nil
	}
	if rip >= c.nativeLo && rip < c.nativeHi {
		if n, ok := c.natives[rip]; ok {
			return c.runNative(n)
		}
	}
	sb, err := c.fetchBlock()
	if err != nil {
		return false, c.fault("fetch", err)
	}
	if sb == nil {
		return c.Step()
	}
	var (
		n      uint64
		halted bool
	)
	insts := sb.insts
	for i := range insts {
		n++
		if halted, err = c.exec(&insts[i]); halted || err != nil {
			break
		}
	}
	c.Insts += n
	c.Cycles += n * CostInst
	c.Blocks++
	return halted, err
}

// fetchBlock returns the superblock entered at c.RIP, building and
// caching it on a miss. A nil block (with nil error) means the entry
// cannot start a block — the caller single-steps it instead.
func (c *CPU) fetchBlock() (*superblock, error) {
	rip := c.RIP
	e, hit, err := c.TLB.Entry(rip, mm.AccessExec)
	if err != nil {
		return nil, err
	}
	if !hit {
		c.Cycles += CostTLBMiss
	}
	off := int(rip & mm.PageMask)
	ver := e.Version()
	var pb *pageBlocks
	if e.Frame == c.lastBlockFrame {
		pb = c.lastPB
	} else if pb = c.blocks[e.Frame]; pb != nil {
		c.lastBlockFrame, c.lastPB = e.Frame, pb
	}
	if pb != nil && pb.ver == ver {
		if sb := pb.get(off); sb != nil {
			c.blockHits++
			if sb == noBlock {
				return nil, nil
			}
			return sb, nil
		}
	} else {
		if len(c.blocks) >= maxBlockPages {
			clear(c.blocks)
		}
		pb = &pageBlocks{ver: ver}
		c.blocks[e.Frame] = pb
		c.lastBlockFrame, c.lastPB = e.Frame, pb
	}
	c.blockMisses++

	window := e.CodeWindow(off)
	sb := &superblock{}
	o := 0
	for {
		in, derr := isa.Decode(window[o:])
		if derr != nil {
			// Truncated at the page edge means a (potential) straddler;
			// any other decode error past the entry also just ends the
			// block — the single-step fallback reproduces the exact
			// fault if execution ever reaches that byte.
			break
		}
		sb.insts = append(sb.insts, in)
		o += in.Len
		if in.Op.IsBranch() || in.Op == isa.OpHLT {
			break
		}
		if o >= len(window) {
			break // next instruction starts on the next page
		}
		if va := rip + uint64(o); va >= c.nativeLo && va < c.nativeHi {
			if _, native := c.natives[va]; native {
				break // fall-through onto a kernel entry point must dispatch
			}
		}
	}
	if len(sb.insts) == 0 {
		pb.set(off, noBlock) // entry straddles the page or is undecodable
		return nil, nil
	}
	pb.set(off, sb)
	return sb, nil
}
