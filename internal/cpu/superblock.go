package cpu

// Basic-block superblock execution: the interpreter's hot path.
//
// fetchBlock decodes forward from the entry PC to the next control-flow
// instruction (or the page boundary, a native kernel entry point, or an
// undecodable byte) and caches the whole run keyed by (frame, entry
// offset), validated by the frame's content version — the same
// invalidation that protects the per-instruction decode cache, so a
// write to a code page through any mapping (including a W^X-violating
// writable alias) drops stale blocks before they can execute, and a
// zero-copy re-randomization remap (same frames, new addresses) keeps
// blocks warm.
//
// runChain then executes cached blocks in a tight loop: one TLB lookup
// and one exec-permission check per block instead of per instruction, no
// per-instruction fetch, no native-table probe between straight-line
// instructions (control can only land on a kernel entry point via a
// branch, which terminates a block). Cycle and instruction accounting is
// accumulated per block and lands in the same CPU counters the engine's
// closed-queueing model replays.
//
// Trace linking. A block whose final instruction is a *direct* branch
// (CALL/JMP/Jcc) — or that was cut at a page boundary and falls through —
// records the successor superblock on its exit the first time that exit
// resolves: same-page targets and cross-page targets alike, the latter
// via the second frame's mm.Entry obtained on the dispatch path. On
// later executions the exit follows the link block→block without
// returning to the dispatch loop, guarded by
//
//   - the successor frame's content version (mm.FrameRef): a write to
//     the successor's bytes through any mapping — including an alias of
//     the *successor* frame the predecessor never touched — kills the
//     link before stale code runs;
//   - the address-space generation: any unmap/protect since the link was
//     recorded sends the exit back through the dispatch path, so a
//     branch to a re-randomized-away region faults exactly as
//     per-block dispatch would (stale module addresses must fault);
//   - the vCPU's native-table generation (blockGen): links hold direct
//     superblock pointers that bypass the blocks map, so the map clear
//     in invalidateBlocks alone cannot retire them — the generation
//     does, covering natives registered after the link was recorded.
//
// Indirect exits (RET, CALLR/JMPR, GOT-indirect CALLM/JMPM) — every
// retpoline thunk ends in RET — resolve a dynamic target, so they cannot
// link unconditionally. Instead each such block carries a *monomorphic
// indirect target cache*: one chainLink recording the last successor the
// exit resolved to. When the dynamic target VA matches the cached one,
// the exit follows the link under exactly the same validation triple as
// a direct link (successor frame content version, address-space
// generation, native-table generation); on a target mismatch, an empty
// cache, or failed validation it falls back to the dispatch-path resolve
// and re-records the newest target. A stale successor cached before a
// re-randomization epoch can therefore never execute: the remap bumps
// the address-space generation, the link fails validation, and the
// dispatch path re-resolves (or faults) exactly as unchained execution
// would. ADELIE_NOINDIRECT=1 (or SetIndirect(false)) turns only this
// cache off — direct links stay on — giving CI a three-mode equivalence
// matrix. Chains are bounded (maxChainBlocks) regardless of link kind,
// so the Run loop's instruction budget keeps firing and a stepBlock call
// can never outrun the engine's barrier-synchronized clock boundary: IRQ
// delivery and re-randomization stay where per-block dispatch put them.
//
// Native call-site links. An exit (direct or indirect — the hot case is
// a GOT-indirect CALLM into the core kernel) that resolves to a native
// entry point records a native-kind link: following it runs the native
// *inline* inside the chain and then enters the monomorphic cache of the
// block at the native's return address, so a module→kernel→module round
// trip costs zero dispatch-loop returns. The native link is validated by
// the native-table epoch (blockGen — every table mutation bumps it); the
// return-target block by the full triple above, re-read *after* the
// native runs, so a native that remaps, re-randomizes or rewrites code
// sends the return through the dispatch path exactly as unchained
// execution would. Natives charge the same cost/sample/stack-pop
// sequence wherever they are invoked, so inlining them is
// accounting-invisible.
//
// Dispatch entry cache. The residual dispatch entries — the first block
// of each Call (syscall entries, ISR handlers, kernel→module callbacks)
// and any exit the chain could not resolve — go through a small
// per-vCPU direct-mapped cache of dispatch resolutions keyed by entry
// VA, validated like any block link. A hit re-enters the cached trace
// without the dispatch tables and counts toward ChainedBlocks; the
// chain-rate metric is therefore the fraction of all block entries that
// skipped dispatch resolution, whatever boundary they crossed.
//
// Accounting equivalence. A followed link — direct or indirect — skips
// the successor's TLB lookup. For working sets within TLB capacity that
// lookup was a hit by construction (the translation entered the TLB when
// the link was recorded and nothing evicted it), so charged cycles — and
// therefore every figure — are bit-identical to unchained execution;
// CI's three-mode cross-mode gate (full / ADELIE_NOINDIRECT=1 /
// ADELIE_NOCHAIN=1) enforces this pairwise. Under capacity pressure the
// skipped lookup can elide a refill the unchained path would charge, the
// same documented exception block execution already has against
// single-stepping — run-to-run determinism always holds.
//
// Cost vectors. fetchBlock classifies each block's accounting shape at
// decode time: a block whose instructions touch no memory and cannot
// fault mid-block (no UDIV) is marked pure, and runChain retires it with
// a check-free execute loop plus one precomputed instruction/cycle
// summary instead of per-instruction bookkeeping. Blocks with memory
// operations keep per-access accounting but run it through the TLB's
// resident word probes (mm.TLB.LoadPage/StorePage) while inside a chain:
// between block boundaries no native, actor or IRQ can run, so the
// address-space generation cannot change mid-chain and the per-access
// generation re-check is provably redundant. Any access that turns out
// to be MMIO disarms the fast probe for the rest of the block (device
// reads are charged and routed on the slow path), and page-straddling
// accesses take the slow path as before — every charged cycle, TLB hit
// and miss is bit-identical in all three modes by construction.
//
// Memory-model note: like hardware that requires an instruction-sync
// barrier after self-modifying stores, a store issued from inside a
// block to the block's own not-yet-executed bytes takes effect at the
// next block fetch, not within the current block. Cross-block (and
// cross-op) modification is always observed, because every block entry
// re-validates the frame content version — a followed link re-validates
// the successor frame the same way.

import (
	"encoding/binary"
	"sync/atomic"

	"adelie/internal/isa"
	"adelie/internal/mm"
)

// chainingEnabled is the package-wide default latched by New into each
// vCPU. Trace linking is on unless ADELIE_NOCHAIN is enabled in the
// environment (the CI cross-mode equivalence gate; see envFlag for the
// "set, non-empty, not 0" semantics) or SetChaining(false) was called
// (the test hook).
var chainingEnabled atomic.Bool

// indirectEnabled gates the monomorphic indirect-branch target cache the
// same way: off when ADELIE_NOINDIRECT is enabled or SetIndirect(false)
// was called. With chaining on and indirect off, only direct links chain
// — the middle column of CI's three-mode equivalence matrix.
var indirectEnabled atomic.Bool

func init() {
	chainingEnabled.Store(!envFlag("ADELIE_NOCHAIN"))
	indirectEnabled.Store(!envFlag("ADELIE_NOINDIRECT"))
}

// SetChaining sets the package-wide trace-linking default for
// subsequently created CPUs and reports the previous value. Existing
// vCPUs keep the mode they were created with, so a machine never runs
// with mixed lanes.
func SetChaining(on bool) (was bool) {
	return chainingEnabled.Swap(on)
}

// ChainingEnabled reports the current package-wide default.
func ChainingEnabled() bool { return chainingEnabled.Load() }

// SetIndirect sets the package-wide indirect-target-cache default for
// subsequently created CPUs and reports the previous value. Like
// SetChaining, existing vCPUs keep the mode they were created with.
func SetIndirect(on bool) (was bool) {
	return indirectEnabled.Swap(on)
}

// IndirectEnabled reports the current package-wide default.
func IndirectEnabled() bool { return indirectEnabled.Load() }

// chainLink records one resolved successor of a superblock exit (or of
// the dispatch entry cache). It comes in two kinds:
//
//   - block link (sb != nil): the successor is an interpreted block,
//     validated by the triple {sb.gen == blockGen, gen == AS generation,
//     ref.Version() == ver} before being entered;
//   - native call-site link (nat != nil): the successor is a native
//     kernel function, validated by gen == blockGen alone (the
//     native-table epoch; natives are dispatched before translation, so
//     frame versions and the address-space generation do not apply).
//     Following it runs the native inline and then chains into ret, the
//     monomorphic cache of the block at the native's return address —
//     itself a block link validated by the full triple.
type chainLink struct {
	va  uint64      // branch-target VA this link covers
	ver uint64      // successor frame content version when recorded
	gen uint64      // AS generation (block) / native-table epoch (native)
	ref mm.FrameRef // successor frame version handle
	sb  *superblock // successor block (block links)
	nat *Native     // native entry point (native call-site links)
	ret *chainLink  // native links: block at the native's return address
}

// empty reports whether the link slot is unused.
func (l *chainLink) empty() bool { return l.sb == nil && l.nat == nil }

// entryCacheSlots sizes the per-vCPU dispatch entry cache (direct-mapped,
// power of two).
const entryCacheSlots = 16

// entrySlot maps an entry VA to its dispatch-entry-cache slot. Function
// entry points are commonly 16-aligned, so fold higher bits in rather
// than using the low bits alone.
func entrySlot(va uint64) uint64 { return (va ^ va>>4 ^ va>>12) & (entryCacheSlots - 1) }

// superblock is one decoded basic block. Only the final instruction can
// redirect control (branch/HLT) — or the block was cut at a page
// boundary, a native entry point, or an undecodable byte, in which case
// execution falls through to the next block fetch.
type superblock struct {
	insts []isa.Inst

	// gen is the vCPU's blockGen when the block was built; chain links
	// refuse to enter a block from an older native-table epoch.
	gen uint64

	// linkable marks exits eligible for direct trace linking: a direct
	// branch (CALL/JMP/Jcc) or a fall-through cut. HLT never links.
	linkable bool

	// indirect marks exits eligible for the monomorphic indirect target
	// cache: RET or a register/GOT-indirect branch. The dynamic target
	// must match ilink.va for the link to be followed.
	indirect bool

	// pure is the decode-time cost-vector classification: no instruction
	// in the block touches memory or can fault mid-block, so runChain
	// retires it with a check-free loop and the precomputed nInsts
	// summary instead of per-instruction bookkeeping.
	pure   bool
	nInsts uint64 // len(insts), precomputed for one-shot accounting

	// links caches up to two resolved successors of a direct exit — a
	// conditional exit has exactly two targets (taken and fall-through).
	links [2]chainLink

	// ilink is the monomorphic indirect target cache: the last successor
	// a RET/indirect exit resolved to. One slot, newest target wins.
	ilink chainLink
}

// pureOp reports whether op can neither touch memory nor fault: the
// allowlist behind the cost-vector pure classification. Branches and HLT
// appear because they are legal *final* instructions of a pure block
// (fetchBlock guarantees mid-block instructions are never branches);
// none of them performs a memory access. Stack ops (PUSH/POP, CALL*,
// RET), loads/stores and UDIV (divide fault) are excluded.
func pureOp(op isa.Op) bool {
	switch op {
	case isa.OpNOP, isa.OpHLT,
		isa.OpMOVABS, isa.OpMOVI, isa.OpMOV, isa.OpLEARIP,
		isa.OpADD, isa.OpSUB, isa.OpXOR, isa.OpAND, isa.OpOR, isa.OpIMUL,
		isa.OpADDI, isa.OpSUBI, isa.OpXORI, isa.OpANDI, isa.OpSHLI, isa.OpSHRI,
		isa.OpCMP, isa.OpCMPI, isa.OpTEST,
		isa.OpJMP, isa.OpJMPR,
		isa.OpJE, isa.OpJNE, isa.OpJL, isa.OpJGE, isa.OpJLE, isa.OpJG,
		isa.OpJB, isa.OpJAE:
		return true
	}
	return false
}

// blockChunkBytes is the granularity at which superblock pointer storage
// is allocated within a page, mirroring decodeChunkBytes: entry points
// cluster in the code actually executed, and a chunked array keeps the
// hit path a bounds-free double index instead of a map probe.
const blockChunkBytes = 512

// blockChunk holds the superblocks entered within one chunk's offsets.
type blockChunk struct {
	blocks [blockChunkBytes]*superblock
}

// pageBlocks caches the superblocks of one physical frame, indexed by
// the byte offset of their entry point within the page; chunks
// materialize on first use.
type pageBlocks struct {
	ver    uint64 // frame content version the blocks belong to
	chunks [mm.PageSize / blockChunkBytes]*blockChunk
}

func (p *pageBlocks) get(off int) *superblock {
	ch := p.chunks[off/blockChunkBytes]
	if ch == nil {
		return nil
	}
	return ch.blocks[off%blockChunkBytes]
}

func (p *pageBlocks) set(off int, sb *superblock) {
	ci := off / blockChunkBytes
	ch := p.chunks[ci]
	if ch == nil {
		ch = &blockChunk{}
		p.chunks[ci] = ch
	}
	ch.blocks[off%blockChunkBytes] = sb
}

// maxBlockPages bounds the superblock cache footprint per vCPU, same
// policy as the per-instruction decode cache: when the bound is hit the
// whole cache is dropped (simple and deterministic).
const maxBlockPages = maxDecodedPages

// maxChainBlocks bounds how many linked blocks one stepBlock call may
// retire before returning to the dispatch loop, keeping the Run loop's
// instruction-budget check live on runaway linked loops.
const maxChainBlocks = 64

// noBlock negatively caches entry PCs that cannot start a block (the
// entry instruction straddles the page or does not decode), so repeated
// execution there skips straight to the single-step fallback instead of
// re-attempting the build. Whether an entry can start a block depends
// only on this frame's bytes, so the usual version check validates it.
var noBlock = &superblock{}

// invalidateBlocks drops every cached superblock (native-table changes
// move block boundaries without touching frame contents). Bumping
// blockGen retires chain links too: they hold direct superblock
// pointers the map clear cannot reach.
func (c *CPU) invalidateBlocks() {
	clear(c.blocks)
	c.lastBlockFrame, c.lastPB = mm.NoFrame, nil
	c.blockGen++
}

// stepBlock executes one whole basic block — and, via trace linking, any
// hot straight-line successors — falling back to a single Step when
// block execution cannot be used (entry instruction straddles the page
// boundary or fails to decode). Same contract as Step: (halted, error).
//
// With chaining on, the dispatch entry cache is probed first: a
// validated hit re-enters the cached block's trace without the
// native-range check or fetchBlock resolution (the native-table epoch in
// the link guarantees the VA was not, and still is not, a native entry
// point). A hit counts toward ChainedBlocks — the entry skipped dispatch
// resolution exactly like a followed trace link.
func (c *CPU) stepBlock() (bool, error) {
	rip := c.RIP
	if rip == HostReturn {
		return true, nil
	}
	if c.chainOn {
		if l := &c.entry[entrySlot(rip)]; l.sb != nil && l.va == rip &&
			l.sb.gen == c.blockGen && l.gen == c.AS.Generation() && l.ref.Version() == l.ver {
			c.ChainedBlocks++
			return c.runChain(l.sb)
		}
	}
	if rip >= c.nativeLo && rip < c.nativeHi {
		if n, ok := c.natives[rip]; ok {
			return c.runNative(n)
		}
	}
	gen := c.AS.Generation()
	sb, e, err := c.fetchBlock()
	if err != nil {
		return false, c.fault("fetch", err)
	}
	if sb == nil {
		return c.Step()
	}
	if c.chainOn {
		c.entry[entrySlot(rip)] = chainLink{va: rip, ver: e.Version(), gen: gen, ref: e.Ref(), sb: sb}
	}
	return c.runChain(sb)
}

// runChain executes sb and then follows chain links block→block —
// running native call-site links inline — until an exit dispatches
// (uncached or mismatched indirect target, host return, native→native
// transfer, invalidated link) or the chain bound is reached. Per-block
// accounting is identical to per-block dispatch: pure blocks replay
// their precomputed cost vector, memory blocks run per-access accounting
// through the resident fast probe.
func (c *CPU) runChain(sb *superblock) (bool, error) {
	// The address-space generation can only change inside a native
	// (chainNative refreshes it); hoisting the atomic read out of the
	// per-transition link validation is therefore exact.
	asGen := c.AS.Generation()
	for depth := 0; ; depth++ {
		var (
			n      uint64
			halted bool
			err    error
		)
		insts := sb.insts
		if !sb.pure {
			// Memory block: per-access accounting, but arm the resident
			// fast probe — the address-space generation cannot change
			// between here and the end of the block (no native, actor or
			// IRQ runs mid-chain), so the per-access generation re-check
			// is redundant. MMIO disarms it (see load64/store64).
			c.memFast = true
		}
		// Fused execute loop: RIP stays in a local, the hot opcodes run
		// inline (one exec call per block-final control transfer instead
		// of one per instruction), and accounting lands in one shot
		// below. fetchBlock guarantees only the final instruction can
		// branch or halt; faults sync c.RIP before capture so Fault.RIP
		// is identical to per-instruction execution.
		rip := c.RIP
	exec:
		for i := range insts {
			in := &insts[i]
			n++
			next := rip + uint64(in.Len)
			switch in.Op {
			case isa.OpMOVI, isa.OpMOVABS:
				c.Regs[in.R1] = uint64(in.Imm)
			case isa.OpMOV:
				c.Regs[in.R1] = c.Regs[in.R2]
			case isa.OpLEARIP:
				c.Regs[in.R1] = next + uint64(int64(in.Disp))
			case isa.OpADD:
				c.Regs[in.R1] += c.Regs[in.R2]
			case isa.OpSUB:
				c.Regs[in.R1] -= c.Regs[in.R2]
			case isa.OpXOR:
				c.Regs[in.R1] ^= c.Regs[in.R2]
			case isa.OpAND:
				c.Regs[in.R1] &= c.Regs[in.R2]
			case isa.OpOR:
				c.Regs[in.R1] |= c.Regs[in.R2]
			case isa.OpIMUL:
				c.Regs[in.R1] *= c.Regs[in.R2]
			case isa.OpADDI:
				c.Regs[in.R1] += uint64(in.Imm)
			case isa.OpSUBI:
				c.Regs[in.R1] -= uint64(in.Imm)
			case isa.OpXORI:
				c.Regs[in.R1] ^= uint64(in.Imm)
			case isa.OpANDI:
				c.Regs[in.R1] &= uint64(in.Imm)
			case isa.OpSHLI:
				c.Regs[in.R1] <<= uint64(in.Imm) & 63
			case isa.OpSHRI:
				c.Regs[in.R1] >>= uint64(in.Imm) & 63
			case isa.OpCMP:
				c.setFlags(c.Regs[in.R1], c.Regs[in.R2])
			case isa.OpCMPI:
				c.setFlags(c.Regs[in.R1], uint64(in.Imm))
			case isa.OpTEST:
				v := c.Regs[in.R1] & c.Regs[in.R2]
				c.ZF = v == 0
				c.SF = int64(v) < 0
				c.CF = false
			case isa.OpNOP:
			// Memory ops probe the TLB's inlinable resident word path
			// first (see mm.TLB.LoadPage/StorePage — zero calls on a
			// hit); a declined probe counts nothing and falls back to
			// load64/store64, whose full path performs identical
			// accounting. A declined probe re-probes inside the
			// fallback — harmless duplicate work on the rare path.
			case isa.OpLOAD:
				addr := c.Regs[in.R2] + uint64(int64(in.Disp))
				if c.memFast {
					if b, ok := c.TLB.LoadPage(addr); ok {
						off := addr & mm.PageMask
						c.Regs[in.R1] = binary.LittleEndian.Uint64(b[off : off+8])
						break
					}
				}
				v, lerr := c.load64(addr)
				if lerr != nil {
					c.RIP = rip
					err = c.fault("load", lerr)
					break exec
				}
				c.Regs[in.R1] = v
			case isa.OpSTORE:
				addr := c.Regs[in.R2] + uint64(int64(in.Disp))
				if c.memFast {
					if b, ok := c.TLB.StorePage(addr); ok {
						off := addr & mm.PageMask
						binary.LittleEndian.PutUint64(b[off:off+8], c.Regs[in.R1])
						break
					}
				}
				if serr := c.store64(addr, c.Regs[in.R1]); serr != nil {
					c.RIP = rip
					err = c.fault("store", serr)
					break exec
				}
			case isa.OpLDRIP:
				addr := next + uint64(int64(in.Disp))
				if c.memFast {
					if b, ok := c.TLB.LoadPage(addr); ok {
						off := addr & mm.PageMask
						c.Regs[in.R1] = binary.LittleEndian.Uint64(b[off : off+8])
						break
					}
				}
				v, lerr := c.load64(addr)
				if lerr != nil {
					c.RIP = rip
					err = c.fault("rip-relative load", lerr)
					break exec
				}
				c.Regs[in.R1] = v
			case isa.OpSTRIP:
				addr := next + uint64(int64(in.Disp))
				if c.memFast {
					if b, ok := c.TLB.StorePage(addr); ok {
						off := addr & mm.PageMask
						binary.LittleEndian.PutUint64(b[off:off+8], c.Regs[in.R1])
						break
					}
				}
				if serr := c.store64(addr, c.Regs[in.R1]); serr != nil {
					c.RIP = rip
					err = c.fault("rip-relative store", serr)
					break exec
				}
			case isa.OpPUSH:
				// Mirrors Push exactly: value read first (PUSH RSP pushes
				// the pre-decrement value), RSP stays decremented on fault.
				v := c.Regs[in.R1]
				c.Regs[isa.RSP] -= 8
				addr := c.Regs[isa.RSP]
				if c.memFast {
					if b, ok := c.TLB.StorePage(addr); ok {
						off := addr & mm.PageMask
						binary.LittleEndian.PutUint64(b[off:off+8], v)
						break
					}
				}
				if perr := c.store64(addr, v); perr != nil {
					c.RIP = rip
					err = c.fault("push", perr)
					break exec
				}
			case isa.OpPOP:
				// Mirrors Pop exactly: RSP increments before the result
				// lands in R1, so POP RSP ends with the popped value.
				addr := c.Regs[isa.RSP]
				if c.memFast {
					if b, ok := c.TLB.LoadPage(addr); ok {
						off := addr & mm.PageMask
						c.Regs[isa.RSP] = addr + 8
						c.Regs[in.R1] = binary.LittleEndian.Uint64(b[off : off+8])
						break
					}
				}
				v, perr := c.Pop()
				if perr != nil {
					c.RIP = rip
					err = c.fault("pop", perr)
					break exec
				}
				c.Regs[in.R1] = v
			case isa.OpJMP:
				rip = next + uint64(int64(in.Disp))
				continue // block-final by construction
			case isa.OpJE, isa.OpJNE, isa.OpJL, isa.OpJGE, isa.OpJLE, isa.OpJG, isa.OpJB, isa.OpJAE:
				if c.cond(in.Op) {
					rip = next + uint64(int64(in.Disp))
				} else {
					rip = next
				}
				continue // block-final by construction
			// Block-final control transfers with memory operands mirror
			// exec's cases op for op; each probes the resident word path
			// first and falls back to the shared exec core (or completes
			// through Push/store64, which account identically) otherwise.
			case isa.OpRET:
				addr := c.Regs[isa.RSP]
				if c.memFast {
					if b, ok := c.TLB.LoadPage(addr); ok {
						off := addr & mm.PageMask
						c.Regs[isa.RSP] = addr + 8
						rip = binary.LittleEndian.Uint64(b[off : off+8])
						if rip == HostReturn {
							halted = true
							break exec
						}
						continue // block-final by construction
					}
				}
				c.RIP = rip
				halted, err = c.exec(in)
				rip = c.RIP
				if halted || err != nil {
					break exec
				}
				continue
			case isa.OpCALL:
				if c.memFast {
					sp := c.Regs[isa.RSP] - 8
					if b, ok := c.TLB.StorePage(sp); ok {
						off := sp & mm.PageMask
						binary.LittleEndian.PutUint64(b[off:off+8], next)
						c.Regs[isa.RSP] = sp
						rip = next + uint64(int64(in.Disp))
						continue // block-final by construction
					}
				}
				if perr := c.Push(next); perr != nil {
					c.RIP = rip
					err = c.fault("call", perr)
					break exec
				}
				rip = next + uint64(int64(in.Disp))
				continue
			case isa.OpCALLR:
				if c.memFast {
					sp := c.Regs[isa.RSP] - 8
					if b, ok := c.TLB.StorePage(sp); ok {
						off := sp & mm.PageMask
						binary.LittleEndian.PutUint64(b[off:off+8], next)
						c.Regs[isa.RSP] = sp
						rip = c.Regs[in.R1]
						continue // block-final by construction
					}
				}
				if perr := c.Push(next); perr != nil {
					c.RIP = rip
					err = c.fault("call", perr)
					break exec
				}
				rip = c.Regs[in.R1]
				continue
			case isa.OpJMPR:
				rip = c.Regs[in.R1]
				if rip == HostReturn {
					halted = true
					break exec
				}
				continue // block-final by construction
			case isa.OpCALLM:
				gva := next + uint64(int64(in.Disp))
				if c.memFast {
					if b, ok := c.TLB.LoadPage(gva); ok {
						off := gva & mm.PageMask
						target := binary.LittleEndian.Uint64(b[off : off+8])
						// The GOT load is done (and counted); the push must
						// complete here — re-entering exec would charge the
						// load twice.
						sp := c.Regs[isa.RSP] - 8
						if b2, ok2 := c.TLB.StorePage(sp); ok2 {
							off2 := sp & mm.PageMask
							binary.LittleEndian.PutUint64(b2[off2:off2+8], next)
							c.Regs[isa.RSP] = sp
						} else if perr := c.Push(next); perr != nil {
							c.RIP = rip
							err = c.fault("call", perr)
							break exec
						}
						rip = target
						continue // block-final by construction
					}
				}
				c.RIP = rip
				halted, err = c.exec(in)
				rip = c.RIP
				if halted || err != nil {
					break exec
				}
				continue
			case isa.OpJMPM:
				gva := next + uint64(int64(in.Disp))
				if c.memFast {
					if b, ok := c.TLB.LoadPage(gva); ok {
						off := gva & mm.PageMask
						rip = binary.LittleEndian.Uint64(b[off : off+8])
						if rip == HostReturn {
							halted = true
							break exec
						}
						continue // block-final by construction
					}
				}
				c.RIP = rip
				halted, err = c.exec(in)
				rip = c.RIP
				if halted || err != nil {
					break exec
				}
				continue
			default:
				// Control transfers (CALL*, RET, JMPR/JMPM, HLT) and rare
				// ops: the shared exec core, with RIP synced across it.
				c.RIP = rip
				halted, err = c.exec(in)
				rip = c.RIP
				if halted || err != nil {
					break exec
				}
				continue
			}
			rip = next
		}
		c.RIP = rip
		c.memFast = false
		c.Insts += n
		c.Cycles += n * CostInst
		c.Blocks++
		if c.sampler != nil && c.Cycles >= c.sampleNext {
			c.takeSample()
		}
		if halted || err != nil {
			return halted, err
		}
		if !c.chainOn || depth >= maxChainBlocks {
			return false, nil
		}
		indirect := false
		switch {
		case sb.linkable:
		case sb.indirect && c.indirectOn:
			indirect = true
		default:
			return false, nil // HLT exit, or indirect with the cache off
		}
		// rip still holds the exit target from the execute loop above.
		// Link lookup. Direct exits key up to two slots (taken and
		// fall-through); indirect exits use the monomorphic cache and
		// require the dynamic target to match the recorded VA.
		var l *chainLink
		li := -1
		if indirect {
			if !sb.ilink.empty() && sb.ilink.va == rip {
				l = &sb.ilink
			}
		} else {
			for i := range sb.links {
				if sb.links[i].va == rip && !sb.links[i].empty() {
					li, l = i, &sb.links[i]
					break
				}
			}
		}
		if l != nil {
			if l.nat != nil {
				// Native call-site link: valid while the native table is
				// unchanged since it was recorded.
				if l.gen == c.blockGen {
					nsb, halted, err := c.chainNative(l, indirect)
					if nsb == nil {
						return halted, err
					}
					sb = nsb
					asGen = c.AS.Generation() // the native may have remapped
					continue
				}
			} else if l.sb.gen == c.blockGen && l.gen == asGen && l.ref.Version() == l.ver {
				c.ChainedBlocks++
				if indirect {
					c.IndirectChained++
				}
				sb = l.sb
				continue
			}
		}
		// No valid link. Resolve the successor through the dispatch path
		// — identical accounting to returning to the Run loop — and
		// record the link for next time.
		c.chainMisses++
		if rip == HostReturn {
			return true, nil
		}
		if rip >= c.nativeLo && rip < c.nativeHi {
			if nat, native := c.natives[rip]; native {
				// Kernel entry point: record a native call-site link and
				// run the native inline — the call, the native and its
				// return-target block all stay inside the chain.
				nl := chainLink{va: rip, gen: c.blockGen, nat: nat}
				if indirect {
					sb.ilink = nl
					l = &sb.ilink
				} else {
					slot := directSlot(sb, li)
					sb.links[slot] = nl
					l = &sb.links[slot]
				}
				nsb, halted, err := c.chainNative(l, indirect)
				if nsb == nil {
					return halted, err
				}
				sb = nsb
				asGen = c.AS.Generation() // the native may have remapped
				continue
			}
		}
		nsb, e, ferr := c.fetchBlock()
		if ferr != nil {
			return false, c.fault("fetch", ferr)
		}
		if nsb == nil {
			return c.Step() // unbuildable entry: single-step fallback
		}
		nl := chainLink{va: rip, ver: e.Version(), gen: asGen, ref: e.Ref(), sb: nsb}
		if indirect {
			sb.ilink = nl // monomorphic: the newest target wins
		} else {
			sb.links[directSlot(sb, li)] = nl
		}
		sb = nsb
	}
}

// directSlot picks the links slot a direct exit's new record goes into:
// the stale slot already keyed by this target (refresh in place), a free
// slot, or — with both slots live with other targets — slot 1 (evict the
// newer).
func directSlot(sb *superblock, li int) int {
	if li >= 0 {
		return li
	}
	for i := range sb.links {
		if sb.links[i].empty() {
			return i
		}
	}
	return 1
}

// chainNative runs the native call-site link l inline — without
// returning to the dispatch loop — and resolves the block at the
// native's return address, chaining into l.ret when it validates and
// re-recording it otherwise. Accounting is identical to the dispatch
// path: runNative charges the same cost/sample/pop sequence wherever it
// is invoked, and the return-target resolution mirrors the block-link
// miss path. Returns the next block to execute in the chain; a nil
// block means runChain must return (halted, err) to the dispatch loop
// (host return, a native→native transfer, a fault, or the single-step
// fallback).
func (c *CPU) chainNative(l *chainLink, indirect bool) (*superblock, bool, error) {
	if halted, err := c.runNative(l.nat); halted || err != nil {
		return nil, halted, err
	}
	rip := c.RIP
	// Monomorphic return-target cache, full block-link validation.
	if r := l.ret; r != nil && r.va == rip &&
		r.sb.gen == c.blockGen && r.gen == c.AS.Generation() && r.ref.Version() == r.ver {
		c.ChainedBlocks++
		if indirect {
			c.IndirectChained++
		}
		return r.sb, false, nil
	}
	c.chainMisses++
	if rip == HostReturn {
		return nil, true, nil
	}
	if rip >= c.nativeLo && rip < c.nativeHi {
		if _, native := c.natives[rip]; native {
			return nil, false, nil // native→native: the dispatch loop runs it
		}
	}
	gen := c.AS.Generation()
	nsb, e, ferr := c.fetchBlock()
	if ferr != nil {
		return nil, false, c.fault("fetch", ferr)
	}
	if nsb == nil {
		halted, err := c.Step() // unbuildable entry: single-step fallback
		return nil, halted, err
	}
	l.ret = &chainLink{va: rip, ver: e.Version(), gen: gen, ref: e.Ref(), sb: nsb}
	return nsb, false, nil
}

// fetchBlock returns the superblock entered at c.RIP and its translation,
// building and caching the block on a miss. A nil block (with nil error)
// means the entry cannot start a block — the caller single-steps it
// instead.
func (c *CPU) fetchBlock() (*superblock, mm.Entry, error) {
	rip := c.RIP
	e, hit, err := c.TLB.Entry(rip, mm.AccessExec)
	if err != nil {
		return nil, e, err
	}
	if !hit {
		c.Cycles += CostTLBMiss
	}
	off := int(rip & mm.PageMask)
	ver := e.Version()
	var pb *pageBlocks
	if e.Frame == c.lastBlockFrame {
		pb = c.lastPB
	} else if pb = c.blocks[e.Frame]; pb != nil {
		c.lastBlockFrame, c.lastPB = e.Frame, pb
	}
	if pb != nil && pb.ver == ver {
		if sb := pb.get(off); sb != nil {
			c.blockHits++
			if sb == noBlock {
				return nil, e, nil
			}
			return sb, e, nil
		}
	} else {
		if len(c.blocks) >= maxBlockPages {
			// Full invalidation, not just a map clear: chain links hold
			// direct superblock pointers, so only the generation bump
			// actually retires the old block graph and keeps the
			// footprint bound meaningful.
			c.invalidateBlocks()
		}
		pb = &pageBlocks{ver: ver}
		c.blocks[e.Frame] = pb
		c.lastBlockFrame, c.lastPB = e.Frame, pb
	}
	c.blockMisses++

	window := e.CodeWindow(off)
	sb := &superblock{gen: c.blockGen}
	o := 0
	for {
		in, derr := isa.Decode(window[o:])
		if derr != nil {
			// Truncated at the page edge means a (potential) straddler;
			// any other decode error past the entry also just ends the
			// block — the single-step fallback reproduces the exact
			// fault if execution ever reaches that byte.
			break
		}
		sb.insts = append(sb.insts, in)
		o += in.Len
		if in.Op.IsBranch() || in.Op == isa.OpHLT {
			break
		}
		if o >= len(window) {
			break // next instruction starts on the next page
		}
		if va := rip + uint64(o); va >= c.nativeLo && va < c.nativeHi {
			if _, native := c.natives[va]; native {
				break // fall-through onto a kernel entry point must dispatch
			}
		}
	}
	if len(sb.insts) == 0 {
		pb.set(off, noBlock) // entry straddles the page or is undecodable
		return nil, e, nil
	}
	switch last := sb.insts[len(sb.insts)-1].Op; {
	case last == isa.OpHLT:
		// Halt: no successor to link.
	case last == isa.OpRET, last.IsIndirectBranch():
		sb.indirect = true // dynamic target: monomorphic indirect cache
	default:
		sb.linkable = true // direct branch or fall-through cut
	}
	// Cost-vector classification: a block whose every instruction is on
	// the pure allowlist retires with one precomputed summary.
	sb.nInsts = uint64(len(sb.insts))
	sb.pure = true
	for i := range sb.insts {
		if !pureOp(sb.insts[i].Op) {
			sb.pure = false
			break
		}
	}
	pb.set(off, sb)
	return sb, e, nil
}
