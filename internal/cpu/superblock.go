package cpu

// Basic-block superblock execution: the interpreter's hot path.
//
// fetchBlock decodes forward from the entry PC to the next control-flow
// instruction (or the page boundary, a native kernel entry point, or an
// undecodable byte) and caches the whole run keyed by (frame, entry
// offset), validated by the frame's content version — the same
// invalidation that protects the per-instruction decode cache, so a
// write to a code page through any mapping (including a W^X-violating
// writable alias) drops stale blocks before they can execute, and a
// zero-copy re-randomization remap (same frames, new addresses) keeps
// blocks warm.
//
// runChain then executes cached blocks in a tight loop: one TLB lookup
// and one exec-permission check per block instead of per instruction, no
// per-instruction fetch, no native-table probe between straight-line
// instructions (control can only land on a kernel entry point via a
// branch, which terminates a block). Cycle and instruction accounting is
// accumulated per block and lands in the same CPU counters the engine's
// closed-queueing model replays.
//
// Trace linking. A block whose final instruction is a *direct* branch
// (CALL/JMP/Jcc) — or that was cut at a page boundary and falls through —
// records the successor superblock on its exit the first time that exit
// resolves: same-page targets and cross-page targets alike, the latter
// via the second frame's mm.Entry obtained on the dispatch path. On
// later executions the exit follows the link block→block without
// returning to the dispatch loop, guarded by
//
//   - the successor frame's content version (mm.FrameRef): a write to
//     the successor's bytes through any mapping — including an alias of
//     the *successor* frame the predecessor never touched — kills the
//     link before stale code runs;
//   - the address-space generation: any unmap/protect since the link was
//     recorded sends the exit back through the dispatch path, so a
//     branch to a re-randomized-away region faults exactly as
//     per-block dispatch would (stale module addresses must fault);
//   - the vCPU's native-table generation (blockGen): links hold direct
//     superblock pointers that bypass the blocks map, so the map clear
//     in invalidateBlocks alone cannot retire them — the generation
//     does, covering natives registered after the link was recorded.
//
// Indirect exits (RET, CALLR/JMPR, GOT-indirect CALLM/JMPM) never link:
// their targets come from registers, the stack or a re-randomizer-
// patched GOT, so they always take the dispatch path. Chains are bounded
// (maxChainBlocks) so the Run loop's instruction budget keeps firing and
// a stepBlock call can never outrun the engine's barrier-synchronized
// clock boundary: IRQ delivery and re-randomization stay where per-block
// dispatch put them.
//
// Accounting equivalence. A followed link skips the successor's TLB
// lookup. For working sets within TLB capacity that lookup was a hit by
// construction (the translation entered the TLB when the link was
// recorded and nothing evicted it), so charged cycles — and therefore
// every figure — are bit-identical to unchained execution; CI's
// cross-mode gate (ADELIE_NOCHAIN=1) enforces this. Under capacity
// pressure the skipped lookup can elide a refill the unchained path
// would charge, the same documented exception block execution already
// has against single-stepping — run-to-run determinism always holds.
//
// Memory-model note: like hardware that requires an instruction-sync
// barrier after self-modifying stores, a store issued from inside a
// block to the block's own not-yet-executed bytes takes effect at the
// next block fetch, not within the current block. Cross-block (and
// cross-op) modification is always observed, because every block entry
// re-validates the frame content version — a followed link re-validates
// the successor frame the same way.

import (
	"os"
	"sync/atomic"

	"adelie/internal/isa"
	"adelie/internal/mm"
)

// chainingEnabled is the package-wide default latched by New into each
// vCPU. Trace linking is on unless ADELIE_NOCHAIN is set in the
// environment (the CI cross-mode equivalence gate) or SetChaining(false)
// was called (the test hook).
var chainingEnabled atomic.Bool

func init() {
	chainingEnabled.Store(os.Getenv("ADELIE_NOCHAIN") == "")
}

// SetChaining sets the package-wide trace-linking default for
// subsequently created CPUs and reports the previous value. Existing
// vCPUs keep the mode they were created with, so a machine never runs
// with mixed lanes.
func SetChaining(on bool) (was bool) {
	return chainingEnabled.Swap(on)
}

// ChainingEnabled reports the current package-wide default.
func ChainingEnabled() bool { return chainingEnabled.Load() }

// chainLink records one resolved successor of a superblock exit.
type chainLink struct {
	va  uint64      // branch-target VA this link covers
	ver uint64      // successor frame content version when recorded
	gen uint64      // address-space generation when recorded
	ref mm.FrameRef // successor frame version handle
	sb  *superblock // successor block
}

// superblock is one decoded basic block. Only the final instruction can
// redirect control (branch/HLT) — or the block was cut at a page
// boundary, a native entry point, or an undecodable byte, in which case
// execution falls through to the next block fetch.
type superblock struct {
	insts []isa.Inst

	// gen is the vCPU's blockGen when the block was built; chain links
	// refuse to enter a block from an older native-table epoch.
	gen uint64

	// linkable marks exits eligible for trace linking: a direct branch
	// (CALL/JMP/Jcc) or a fall-through cut. Indirect exits and HLT/RET
	// always dispatch.
	linkable bool

	// links caches up to two resolved successors — a conditional exit
	// has exactly two targets (taken and fall-through).
	links [2]chainLink
}

// blockChunkBytes is the granularity at which superblock pointer storage
// is allocated within a page, mirroring decodeChunkBytes: entry points
// cluster in the code actually executed, and a chunked array keeps the
// hit path a bounds-free double index instead of a map probe.
const blockChunkBytes = 512

// blockChunk holds the superblocks entered within one chunk's offsets.
type blockChunk struct {
	blocks [blockChunkBytes]*superblock
}

// pageBlocks caches the superblocks of one physical frame, indexed by
// the byte offset of their entry point within the page; chunks
// materialize on first use.
type pageBlocks struct {
	ver    uint64 // frame content version the blocks belong to
	chunks [mm.PageSize / blockChunkBytes]*blockChunk
}

func (p *pageBlocks) get(off int) *superblock {
	ch := p.chunks[off/blockChunkBytes]
	if ch == nil {
		return nil
	}
	return ch.blocks[off%blockChunkBytes]
}

func (p *pageBlocks) set(off int, sb *superblock) {
	ci := off / blockChunkBytes
	ch := p.chunks[ci]
	if ch == nil {
		ch = &blockChunk{}
		p.chunks[ci] = ch
	}
	ch.blocks[off%blockChunkBytes] = sb
}

// maxBlockPages bounds the superblock cache footprint per vCPU, same
// policy as the per-instruction decode cache: when the bound is hit the
// whole cache is dropped (simple and deterministic).
const maxBlockPages = maxDecodedPages

// maxChainBlocks bounds how many linked blocks one stepBlock call may
// retire before returning to the dispatch loop, keeping the Run loop's
// instruction-budget check live on runaway linked loops.
const maxChainBlocks = 64

// noBlock negatively caches entry PCs that cannot start a block (the
// entry instruction straddles the page or does not decode), so repeated
// execution there skips straight to the single-step fallback instead of
// re-attempting the build. Whether an entry can start a block depends
// only on this frame's bytes, so the usual version check validates it.
var noBlock = &superblock{}

// invalidateBlocks drops every cached superblock (native-table changes
// move block boundaries without touching frame contents). Bumping
// blockGen retires chain links too: they hold direct superblock
// pointers the map clear cannot reach.
func (c *CPU) invalidateBlocks() {
	clear(c.blocks)
	c.lastBlockFrame, c.lastPB = mm.NoFrame, nil
	c.blockGen++
}

// stepBlock executes one whole basic block — and, via trace linking, any
// hot straight-line successors — falling back to a single Step when
// block execution cannot be used (entry instruction straddles the page
// boundary or fails to decode). Same contract as Step: (halted, error).
func (c *CPU) stepBlock() (bool, error) {
	rip := c.RIP
	if rip == HostReturn {
		return true, nil
	}
	if rip >= c.nativeLo && rip < c.nativeHi {
		if n, ok := c.natives[rip]; ok {
			return c.runNative(n)
		}
	}
	sb, _, err := c.fetchBlock()
	if err != nil {
		return false, c.fault("fetch", err)
	}
	if sb == nil {
		return c.Step()
	}
	return c.runChain(sb)
}

// runChain executes sb and then follows chain links block→block until an
// exit dispatches (indirect branch, native entry, invalidated or missing
// link) or the chain bound is reached. Per-block accounting is identical
// to per-block dispatch.
func (c *CPU) runChain(sb *superblock) (bool, error) {
	for depth := 0; ; depth++ {
		var (
			n      uint64
			halted bool
			err    error
		)
		insts := sb.insts
		for i := range insts {
			n++
			if halted, err = c.exec(&insts[i]); halted || err != nil {
				break
			}
		}
		c.Insts += n
		c.Cycles += n * CostInst
		c.Blocks++
		if c.sampler != nil && c.Cycles >= c.sampleNext {
			c.takeSample()
		}
		if halted || err != nil {
			return halted, err
		}
		if !c.chainOn || !sb.linkable || depth >= maxChainBlocks {
			return false, nil
		}
		rip := c.RIP
		li := -1
		for i := range sb.links {
			if sb.links[i].va == rip && sb.links[i].sb != nil {
				li = i
				break
			}
		}
		if li >= 0 {
			l := &sb.links[li]
			if l.sb.gen == c.blockGen && l.gen == c.AS.Generation() && l.ref.Version() == l.ver {
				c.ChainedBlocks++
				sb = l.sb
				continue
			}
		}
		// No valid link. Resolve the successor through the dispatch path
		// — identical accounting to returning to the Run loop — and
		// record the link for next time.
		c.chainMisses++
		if rip == HostReturn {
			return true, nil
		}
		if rip >= c.nativeLo && rip < c.nativeHi {
			if _, native := c.natives[rip]; native {
				return false, nil // kernel entry point: the dispatch loop runs it
			}
		}
		gen := c.AS.Generation()
		nsb, e, ferr := c.fetchBlock()
		if ferr != nil {
			return false, c.fault("fetch", ferr)
		}
		if nsb == nil {
			return c.Step() // unbuildable entry: single-step fallback
		}
		slot := li // stale link for this va: refresh in place
		if slot < 0 {
			for i := range sb.links {
				if sb.links[i].sb == nil {
					slot = i
					break
				}
			}
			if slot < 0 {
				slot = 1 // both slots live with other targets: evict the newer
			}
		}
		sb.links[slot] = chainLink{va: rip, ver: e.Version(), gen: gen, ref: e.Ref(), sb: nsb}
		sb = nsb
	}
}

// fetchBlock returns the superblock entered at c.RIP and its translation,
// building and caching the block on a miss. A nil block (with nil error)
// means the entry cannot start a block — the caller single-steps it
// instead.
func (c *CPU) fetchBlock() (*superblock, mm.Entry, error) {
	rip := c.RIP
	e, hit, err := c.TLB.Entry(rip, mm.AccessExec)
	if err != nil {
		return nil, e, err
	}
	if !hit {
		c.Cycles += CostTLBMiss
	}
	off := int(rip & mm.PageMask)
	ver := e.Version()
	var pb *pageBlocks
	if e.Frame == c.lastBlockFrame {
		pb = c.lastPB
	} else if pb = c.blocks[e.Frame]; pb != nil {
		c.lastBlockFrame, c.lastPB = e.Frame, pb
	}
	if pb != nil && pb.ver == ver {
		if sb := pb.get(off); sb != nil {
			c.blockHits++
			if sb == noBlock {
				return nil, e, nil
			}
			return sb, e, nil
		}
	} else {
		if len(c.blocks) >= maxBlockPages {
			// Full invalidation, not just a map clear: chain links hold
			// direct superblock pointers, so only the generation bump
			// actually retires the old block graph and keeps the
			// footprint bound meaningful.
			c.invalidateBlocks()
		}
		pb = &pageBlocks{ver: ver}
		c.blocks[e.Frame] = pb
		c.lastBlockFrame, c.lastPB = e.Frame, pb
	}
	c.blockMisses++

	window := e.CodeWindow(off)
	sb := &superblock{gen: c.blockGen}
	o := 0
	for {
		in, derr := isa.Decode(window[o:])
		if derr != nil {
			// Truncated at the page edge means a (potential) straddler;
			// any other decode error past the entry also just ends the
			// block — the single-step fallback reproduces the exact
			// fault if execution ever reaches that byte.
			break
		}
		sb.insts = append(sb.insts, in)
		o += in.Len
		if in.Op.IsBranch() || in.Op == isa.OpHLT {
			break
		}
		if o >= len(window) {
			break // next instruction starts on the next page
		}
		if va := rip + uint64(o); va >= c.nativeLo && va < c.nativeHi {
			if _, native := c.natives[va]; native {
				break // fall-through onto a kernel entry point must dispatch
			}
		}
	}
	if len(sb.insts) == 0 {
		pb.set(off, noBlock) // entry straddles the page or is undecodable
		return nil, e, nil
	}
	switch last := sb.insts[len(sb.insts)-1].Op; {
	case last == isa.OpHLT, last == isa.OpRET, last.IsIndirectBranch():
		// Halt or indirect exit: the target is dynamic — never link.
	default:
		sb.linkable = true // direct branch or fall-through cut
	}
	pb.set(off, sb)
	return sb, e, nil
}
