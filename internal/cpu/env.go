package cpu

import "os"

// envFlag reports whether the named environment flag is enabled. The
// semantics are: set, non-empty, and not "0". Both mode hooks
// (ADELIE_NOCHAIN, ADELIE_NOINDIRECT) parse through this one helper so
// `FLAG=0` reads as "off" everywhere — historically ADELIE_NOCHAIN=0
// *disabled* chaining because the init check was `Getenv == ""`.
func envFlag(name string) bool {
	v := os.Getenv(name)
	return v != "" && v != "0"
}
