package cpu

import (
	"testing"

	"adelie/internal/isa"
	"adelie/internal/mm"
)

// encode assembles a sequence of instructions.
func encode(code ...isa.Inst) []byte {
	var buf []byte
	for _, in := range code {
		buf = in.Append(buf)
	}
	return buf
}

// retImm is a tiny function returning imm.
func retImm(imm int64) []byte {
	return encode(
		isa.Inst{Op: isa.OpMOVI, R1: isa.RAX, Imm: imm},
		isa.Inst{Op: isa.OpRET},
	)
}

// TestDecodeCacheHitsOnStraightLineCode verifies the hot-path cache is
// actually exercised: re-executing the same code must be served from
// cached superblocks — via the dispatch entry cache — not fresh decodes.
func TestDecodeCacheHitsOnStraightLineCode(t *testing.T) {
	c := machine(t, []isa.Inst{
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 7},
		{Op: isa.OpRET},
	})
	if got := run(t, c); got != 7 {
		t.Fatalf("first run = %d", got)
	}
	_, misses0 := c.BlockCacheStats()
	chained0 := c.ChainedBlocks
	if got := run(t, c); got != 7 {
		t.Fatalf("second run = %d", got)
	}
	if c.ChainedBlocks <= chained0 {
		t.Fatalf("second run was not served from cache: chained %d → %d", chained0, c.ChainedBlocks)
	}
	if _, misses1 := c.BlockCacheStats(); misses1 != misses0 {
		t.Fatalf("second run rebuilt blocks: misses %d → %d", misses0, misses1)
	}
}

// TestDecodeCacheInvalidatedByAliasWrite is the W^X hole test: map the
// code frame a second time with write permission, patch the code through
// the alias, and verify the vCPU executes the new bytes — a stale cached
// decode must never run.
func TestDecodeCacheInvalidatedByAliasWrite(t *testing.T) {
	c := machine(t, []isa.Inst{
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 1},
		{Op: isa.OpRET},
	})
	if got := run(t, c); got != 1 {
		t.Fatalf("original code = %d, want 1", got)
	}
	// Warm the decode cache on the original bytes.
	if got := run(t, c); got != 1 {
		t.Fatalf("warm run = %d, want 1", got)
	}

	frame, _, ok := c.AS.Lookup(codeBase)
	if !ok {
		t.Fatal("code page not mapped")
	}
	alias := mm.KernelBase + 0x900000
	if err := c.AS.Map(alias, frame, mm.FlagWrite); err != nil {
		t.Fatal(err)
	}
	// An ordinary permission-checked write through the writable alias.
	if err := c.AS.WriteBytes(alias, retImm(2)); err != nil {
		t.Fatal(err)
	}
	if got := run(t, c); got != 2 {
		t.Fatalf("patched code = %d, want 2 (stale decode executed)", got)
	}
}

// TestDecodeCacheInvalidatedByStore64Alias repeats the W^X hole through
// the CPU's own store path (interpreted guest stores, not host writes).
func TestDecodeCacheInvalidatedByStore64Alias(t *testing.T) {
	c := machine(t, []isa.Inst{
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 1},
		{Op: isa.OpRET},
	})
	if got := run(t, c); got != 1 {
		t.Fatalf("original code = %d, want 1", got)
	}
	frame, _, ok := c.AS.Lookup(codeBase)
	if !ok {
		t.Fatal("code page not mapped")
	}
	alias := mm.KernelBase + 0x910000
	if err := c.AS.Map(alias, frame, mm.FlagWrite); err != nil {
		t.Fatal(err)
	}
	patch := retImm(3)
	for len(patch) < 8 {
		patch = append(patch, byte(isa.OpNOP))
	}
	var word uint64
	for i := 7; i >= 0; i-- {
		word = word<<8 | uint64(patch[i])
	}
	if err := c.store64(alias, word); err != nil {
		t.Fatal(err)
	}
	if got := run(t, c); got != 3 {
		t.Fatalf("patched code = %d, want 3 (stale decode executed)", got)
	}
}

// TestDecodeCacheInvalidatedByForceWrite covers the loader/re-randomizer
// patching path (WriteBytesForce on already-executable text).
func TestDecodeCacheInvalidatedByForceWrite(t *testing.T) {
	c := machine(t, []isa.Inst{
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 1},
		{Op: isa.OpRET},
	})
	if got := run(t, c); got != 1 {
		t.Fatalf("original code = %d, want 1", got)
	}
	if err := c.AS.WriteBytesForce(codeBase, retImm(4)); err != nil {
		t.Fatal(err)
	}
	if got := run(t, c); got != 4 {
		t.Fatalf("patched code = %d, want 4 (stale decode executed)", got)
	}
}

// TestProtectRevokesExecutionDespiteWarmCache: dropping exec permission
// must stop execution even though the decode cache still holds the page.
func TestProtectRevokesExecutionDespiteWarmCache(t *testing.T) {
	c := machine(t, []isa.Inst{
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 1},
		{Op: isa.OpRET},
	})
	if got := run(t, c); got != 1 {
		t.Fatalf("original code = %d", got)
	}
	if err := c.AS.Protect(codeBase, 0); err != nil { // read-only, NX
		t.Fatal(err)
	}
	if _, err := c.Call(codeBase); err == nil {
		t.Fatal("execution succeeded on an NX page with a warm decode cache")
	}
}

// TestUnmapRevokesExecutionDespiteWarmCache: unmapping the page (the
// re-randomizer's delayed teardown) must fault despite cached decodes.
func TestUnmapRevokesExecutionDespiteWarmCache(t *testing.T) {
	c := machine(t, []isa.Inst{
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 1},
		{Op: isa.OpRET},
	})
	if got := run(t, c); got != 1 {
		t.Fatalf("original code = %d", got)
	}
	if _, err := c.AS.Unmap(codeBase); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(codeBase); err == nil {
		t.Fatal("execution succeeded on an unmapped page with a warm decode cache")
	}
}

// TestRemapKeepsDecodeWarm: a zero-copy remap (same frames, new VA) must
// not force a re-decode — the cache is keyed by frame, mirroring the
// paper's moves never copying module text.
func TestRemapKeepsDecodeWarm(t *testing.T) {
	c := machine(t, []isa.Inst{
		{Op: isa.OpMOVI, R1: isa.RAX, Imm: 9},
		{Op: isa.OpRET},
	})
	if got := run(t, c); got != 9 {
		t.Fatalf("original code = %d", got)
	}
	newBase := mm.KernelBase + 0x920000
	if err := c.AS.RemapRegion(newBase, codeBase, 1); err != nil {
		t.Fatal(err)
	}
	_, misses0 := c.DecodeCacheStats()
	if got, err := c.Call(newBase); err != nil || got != 9 {
		t.Fatalf("remapped code = (%d, %v), want 9", got, err)
	}
	_, misses1 := c.DecodeCacheStats()
	if misses1 != misses0 {
		t.Fatalf("remap forced %d re-decodes; frame-keyed cache should stay warm", misses1-misses0)
	}
}

// TestStraddleFetch executes an instruction split across a page boundary
// (the fetch path's two-frame splice) and verifies it decodes correctly
// and repeatedly.
func TestStraddleFetch(t *testing.T) {
	// Fill page 0 with NOPs up to 3 bytes before its end, place a 10-byte
	// MOVABS straddling into page 1, then RET.
	var code []isa.Inst
	nops := mm.PageSize - 3
	for i := 0; i < nops; i++ {
		code = append(code, isa.Inst{Op: isa.OpNOP})
	}
	want := uint64(0xDEAD_BEEF_0BAD_F00D)
	code = append(code,
		isa.Inst{Op: isa.OpMOVABS, R1: isa.RAX, Imm: int64(want)},
		isa.Inst{Op: isa.OpRET},
	)
	c := machine(t, code)
	for i := 0; i < 2; i++ { // second pass runs with a warm NOP page
		if got := run(t, c); got != want {
			t.Fatalf("pass %d: straddling MOVABS = %#x, want %#x", i, got, want)
		}
	}
}
