package cpu

import "testing"

func TestEnvFlagSemantics(t *testing.T) {
	const name = "ADELIE_TEST_FLAG"
	cases := []struct {
		set  bool
		val  string
		want bool
	}{
		{set: false, val: "", want: false}, // unset: off
		{set: true, val: "", want: false},  // set but empty: off
		{set: true, val: "0", want: false}, // explicit zero: off
		{set: true, val: "1", want: true},
		{set: true, val: "true", want: true},
		{set: true, val: "00", want: true}, // only the exact string "0" is off
	}
	for _, tc := range cases {
		if tc.set {
			t.Setenv(name, tc.val)
		}
		if got := envFlag(name); got != tc.want {
			t.Errorf("envFlag(%q) with set=%v val=%q = %v, want %v",
				name, tc.set, tc.val, got, tc.want)
		}
	}
}

// TestEnvFlagZeroKeepsModesOn pins the historical bug: ADELIE_NOCHAIN=0
// (and ADELIE_NOINDIRECT=0) must read as "not disabled".
func TestEnvFlagZeroKeepsModesOn(t *testing.T) {
	t.Setenv("ADELIE_NOCHAIN", "0")
	t.Setenv("ADELIE_NOINDIRECT", "0")
	if envFlag("ADELIE_NOCHAIN") || envFlag("ADELIE_NOINDIRECT") {
		t.Fatal("FLAG=0 must parse as disabled-flag (modes stay on)")
	}
	t.Setenv("ADELIE_NOCHAIN", "1")
	t.Setenv("ADELIE_NOINDIRECT", "1")
	if !envFlag("ADELIE_NOCHAIN") || !envFlag("ADELIE_NOINDIRECT") {
		t.Fatal("FLAG=1 must parse as enabled-flag (modes off)")
	}
}
