// Package cpu interprets AK64 machine code. It is the execution substrate
// on which loaded modules run: every instruction a driver executes —
// including the wrapper, stack-swap and return-address-encryption
// sequences Adelie injects — is fetched through the MMU (honouring NX and
// write protection), decoded and retired with cycle accounting.
//
// Core kernel functions (kmalloc, printk, VFS internals …) are not
// interpreted: they are native Go functions registered at fixed kernel
// text addresses. A call or jump that lands on a registered native address
// invokes the Go function with access to the CPU state and then performs
// return semantics. This mirrors the paper's split: Adelie re-randomizes
// and instruments modules, while the core kernel remains ordinary code
// reached through well-defined entry points.
package cpu

import (
	"fmt"

	"adelie/internal/isa"
	"adelie/internal/mm"
)

// Cycle cost model. The absolute values are nominal; what matters for the
// evaluation's shape is that every extra instruction Adelie injects
// (wrappers, prologues, thunks, GOT loads) costs cycles, and that TLB
// refills after re-randomization flushes are visible.
const (
	CostInst    = 1  // each retired instruction
	CostTLBMiss = 25 // page-walk on a TLB miss
	CostMMIO    = 80 // uncached device register access
)

// HostReturn is the sentinel return address pushed by Call: returning to
// it ends interpretation. It lies outside the canonical address space, so
// no mapped code can collide with it.
const HostReturn = mm.MaxVA | 1

// Native is a kernel function implemented in Go. It may read and write
// CPU registers and memory; its Cost is charged when called.
type Native struct {
	Name string
	Cost uint64
	Fn   func(c *CPU) error
}

// CPU is one virtual CPU.
type CPU struct {
	ID   int
	Regs [isa.NumRegs]uint64
	RIP  uint64

	// Flags, set by CMP/TEST only (AK64 simplification: ALU operations do
	// not update flags; compiled code always compares explicitly).
	ZF bool // equal
	SF bool // signed less-than outcome of the last compare
	CF bool // unsigned below outcome of the last compare

	AS  *mm.AddressSpace
	TLB *mm.TLB

	natives map[uint64]*Native

	Cycles uint64 // cycles consumed
	Insts  uint64 // instructions retired

	fetchBuf [isa.MaxInstLen]byte
}

// New returns a CPU executing in the given address space.
func New(id int, as *mm.AddressSpace) *CPU {
	return &CPU{ID: id, AS: as, TLB: mm.NewTLB(as), natives: make(map[uint64]*Native)}
}

// RegisterNative installs a native kernel function at va. The page
// containing va must be mapped executable by the caller (the kernel image
// region) so that translation succeeds before dispatch.
func (c *CPU) RegisterNative(va uint64, n *Native) {
	c.natives[va] = n
}

// ShareNatives makes this CPU dispatch to the same native table as other —
// all vCPUs of a machine see one kernel.
func (c *CPU) ShareNatives(other *CPU) { c.natives = other.natives }

// SetNatives installs a shared native dispatch table (the kernel's).
func (c *CPU) SetNatives(m map[uint64]*Native) { c.natives = m }

// NativeTable returns the CPU's native dispatch table.
func (c *CPU) NativeTable() map[uint64]*Native { return c.natives }

// Fault is an execution error with machine context attached.
type Fault struct {
	RIP    uint64
	CPU    int
	Reason string
	Err    error
}

func (f *Fault) Error() string {
	if f.Err != nil {
		return fmt.Sprintf("cpu%d fault at rip=%#x: %s: %v", f.CPU, f.RIP, f.Reason, f.Err)
	}
	return fmt.Sprintf("cpu%d fault at rip=%#x: %s", f.CPU, f.RIP, f.Reason)
}

func (f *Fault) Unwrap() error { return f.Err }

func (c *CPU) fault(reason string, err error) error {
	return &Fault{RIP: c.RIP, CPU: c.ID, Reason: reason, Err: err}
}

// load64 reads a 64-bit value through the TLB with cycle accounting.
func (c *CPU) load64(va uint64) (uint64, error) {
	_, flags, hit, err := c.TLB.Translate(va, mm.AccessRead)
	if err != nil {
		return 0, err
	}
	if !hit {
		c.Cycles += CostTLBMiss
	}
	if flags&mm.FlagMMIO != 0 {
		c.Cycles += CostMMIO
	}
	return c.AS.Read64(va)
}

// store64 writes a 64-bit value through the TLB with cycle accounting.
func (c *CPU) store64(va uint64, val uint64) error {
	_, flags, hit, err := c.TLB.Translate(va, mm.AccessWrite)
	if err != nil {
		return err
	}
	if !hit {
		c.Cycles += CostTLBMiss
	}
	if flags&mm.FlagMMIO != 0 {
		c.Cycles += CostMMIO
	}
	return c.AS.Write64(va, val)
}

// Push pushes val onto the stack.
func (c *CPU) Push(val uint64) error {
	c.Regs[isa.RSP] -= 8
	return c.store64(c.Regs[isa.RSP], val)
}

// Pop pops the top of stack.
func (c *CPU) Pop() (uint64, error) {
	v, err := c.load64(c.Regs[isa.RSP])
	if err != nil {
		return 0, err
	}
	c.Regs[isa.RSP] += 8
	return v, nil
}

// fetch decodes the instruction at RIP, enforcing execute permission.
func (c *CPU) fetch() (isa.Inst, error) {
	rip := c.RIP
	_, _, hit, err := c.TLB.Translate(rip, mm.AccessExec)
	if err != nil {
		return isa.Inst{}, err
	}
	if !hit {
		c.Cycles += CostTLBMiss
	}
	// Read as much of the instruction as fits in this page.
	pageEnd := (rip &^ mm.PageMask) + mm.PageSize
	n := int(pageEnd - rip)
	if n > isa.MaxInstLen {
		n = isa.MaxInstLen
	}
	buf := c.fetchBuf[:0]
	b, err := c.AS.ReadBytes(rip, n)
	if err != nil {
		return isa.Inst{}, err
	}
	buf = append(buf, b...)
	in, derr := isa.Decode(buf)
	if derr == isa.ErrTruncated && n < isa.MaxInstLen {
		// Instruction straddles a page: the next page must be executable.
		if _, _, _, err := c.TLB.Translate(pageEnd, mm.AccessExec); err != nil {
			return isa.Inst{}, err
		}
		rest, err := c.AS.ReadBytes(pageEnd, isa.MaxInstLen-n)
		if err != nil {
			return isa.Inst{}, err
		}
		buf = append(buf, rest...)
		in, derr = isa.Decode(buf)
	}
	if derr != nil {
		return isa.Inst{}, derr
	}
	return in, nil
}

// Step executes a single instruction. It returns (halted, error); halted
// is true after HLT or a return to HostReturn.
func (c *CPU) Step() (bool, error) {
	if c.RIP == HostReturn {
		return true, nil
	}
	// Native dispatch: control has landed on a kernel entry point.
	if n, ok := c.natives[c.RIP]; ok {
		c.Cycles += n.Cost
		if err := n.Fn(c); err != nil {
			return false, c.fault("native "+n.Name, err)
		}
		ret, err := c.Pop()
		if err != nil {
			return false, c.fault("native return", err)
		}
		c.RIP = ret
		return c.RIP == HostReturn, nil
	}

	in, err := c.fetch()
	if err != nil {
		return false, c.fault("fetch", err)
	}
	c.Insts++
	c.Cycles += CostInst
	next := c.RIP + uint64(in.Len)

	switch in.Op {
	case isa.OpNOP:
	case isa.OpHLT:
		c.RIP = next
		return true, nil
	case isa.OpRET:
		v, err := c.Pop()
		if err != nil {
			return false, c.fault("ret", err)
		}
		c.RIP = v
		return c.RIP == HostReturn, nil

	case isa.OpPUSH:
		if err := c.Push(c.Regs[in.R1]); err != nil {
			return false, c.fault("push", err)
		}
	case isa.OpPOP:
		v, err := c.Pop()
		if err != nil {
			return false, c.fault("pop", err)
		}
		c.Regs[in.R1] = v

	case isa.OpMOVABS, isa.OpMOVI:
		c.Regs[in.R1] = uint64(in.Imm)
	case isa.OpMOV:
		c.Regs[in.R1] = c.Regs[in.R2]
	case isa.OpLOAD:
		v, err := c.load64(c.Regs[in.R2] + uint64(int64(in.Disp)))
		if err != nil {
			return false, c.fault("load", err)
		}
		c.Regs[in.R1] = v
	case isa.OpSTORE:
		if err := c.store64(c.Regs[in.R2]+uint64(int64(in.Disp)), c.Regs[in.R1]); err != nil {
			return false, c.fault("store", err)
		}
	case isa.OpLEARIP:
		c.Regs[in.R1] = next + uint64(int64(in.Disp))
	case isa.OpLDRIP:
		v, err := c.load64(next + uint64(int64(in.Disp)))
		if err != nil {
			return false, c.fault("rip-relative load", err)
		}
		c.Regs[in.R1] = v
	case isa.OpSTRIP:
		if err := c.store64(next+uint64(int64(in.Disp)), c.Regs[in.R1]); err != nil {
			return false, c.fault("rip-relative store", err)
		}
	case isa.OpXORM:
		va := c.Regs[in.R2] + uint64(int64(in.Disp))
		v, err := c.load64(va)
		if err != nil {
			return false, c.fault("xor-mem load", err)
		}
		if err := c.store64(va, v^c.Regs[in.R1]); err != nil {
			return false, c.fault("xor-mem store", err)
		}

	case isa.OpADD:
		c.Regs[in.R1] += c.Regs[in.R2]
	case isa.OpSUB:
		c.Regs[in.R1] -= c.Regs[in.R2]
	case isa.OpXOR:
		c.Regs[in.R1] ^= c.Regs[in.R2]
	case isa.OpAND:
		c.Regs[in.R1] &= c.Regs[in.R2]
	case isa.OpOR:
		c.Regs[in.R1] |= c.Regs[in.R2]
	case isa.OpIMUL:
		c.Regs[in.R1] *= c.Regs[in.R2]
	case isa.OpUDIV:
		if c.Regs[in.R2] == 0 {
			return false, c.fault("divide by zero", nil)
		}
		c.Regs[in.R1] /= c.Regs[in.R2]
	case isa.OpADDI:
		c.Regs[in.R1] += uint64(in.Imm)
	case isa.OpSUBI:
		c.Regs[in.R1] -= uint64(in.Imm)
	case isa.OpXORI:
		c.Regs[in.R1] ^= uint64(in.Imm)
	case isa.OpANDI:
		c.Regs[in.R1] &= uint64(in.Imm)
	case isa.OpSHLI:
		c.Regs[in.R1] <<= uint64(in.Imm) & 63
	case isa.OpSHRI:
		c.Regs[in.R1] >>= uint64(in.Imm) & 63

	case isa.OpCMP:
		c.setFlags(c.Regs[in.R1], c.Regs[in.R2])
	case isa.OpCMPI:
		c.setFlags(c.Regs[in.R1], uint64(in.Imm))
	case isa.OpTEST:
		v := c.Regs[in.R1] & c.Regs[in.R2]
		c.ZF = v == 0
		c.SF = int64(v) < 0
		c.CF = false

	case isa.OpCALL:
		if err := c.Push(next); err != nil {
			return false, c.fault("call", err)
		}
		c.RIP = next + uint64(int64(in.Disp))
		return false, nil
	case isa.OpJMP:
		c.RIP = next + uint64(int64(in.Disp))
		return false, nil
	case isa.OpCALLR:
		if err := c.Push(next); err != nil {
			return false, c.fault("call", err)
		}
		c.RIP = c.Regs[in.R1]
		return false, nil
	case isa.OpJMPR:
		c.RIP = c.Regs[in.R1]
		return c.RIP == HostReturn, nil
	case isa.OpCALLM:
		target, err := c.load64(next + uint64(int64(in.Disp)))
		if err != nil {
			return false, c.fault("got-indirect call", err)
		}
		if err := c.Push(next); err != nil {
			return false, c.fault("call", err)
		}
		c.RIP = target
		return false, nil
	case isa.OpJMPM:
		target, err := c.load64(next + uint64(int64(in.Disp)))
		if err != nil {
			return false, c.fault("got-indirect jmp", err)
		}
		c.RIP = target
		return c.RIP == HostReturn, nil

	case isa.OpJE, isa.OpJNE, isa.OpJL, isa.OpJGE, isa.OpJLE, isa.OpJG, isa.OpJB, isa.OpJAE:
		if c.cond(in.Op) {
			c.RIP = next + uint64(int64(in.Disp))
			return false, nil
		}

	default:
		return false, c.fault("unimplemented opcode "+in.Op.Name(), nil)
	}
	c.RIP = next
	return false, nil
}

func (c *CPU) setFlags(a, b uint64) {
	c.ZF = a == b
	c.SF = int64(a) < int64(b)
	c.CF = a < b
}

func (c *CPU) cond(op isa.Op) bool {
	switch op {
	case isa.OpJE:
		return c.ZF
	case isa.OpJNE:
		return !c.ZF
	case isa.OpJL:
		return c.SF
	case isa.OpJGE:
		return !c.SF
	case isa.OpJLE:
		return c.ZF || c.SF
	case isa.OpJG:
		return !c.ZF && !c.SF
	case isa.OpJB:
		return c.CF
	case isa.OpJAE:
		return !c.CF
	}
	return false
}

// DefaultMaxInsts bounds a single Call to catch runaway module code.
const DefaultMaxInsts = 50_000_000

// Run executes instructions until halt, fault, or the instruction budget
// is exhausted.
func (c *CPU) Run(maxInsts uint64) error {
	start := c.Insts
	for {
		halted, err := c.Step()
		if err != nil {
			return err
		}
		if halted {
			return nil
		}
		if c.Insts-start > maxInsts {
			return c.fault(fmt.Sprintf("instruction budget (%d) exhausted", maxInsts), nil)
		}
	}
}

// Call invokes the function at va with up to six integer arguments in the
// SysV argument registers, runs until the function returns, and yields
// RAX. The current RSP must point at a valid stack. Call nests: native
// functions may use it to invoke module entry points (kernel → module
// callbacks).
func (c *CPU) Call(va uint64, args ...uint64) (uint64, error) {
	if len(args) > len(isa.ArgRegs) {
		return 0, fmt.Errorf("cpu: Call with %d args; only %d register args supported", len(args), len(isa.ArgRegs))
	}
	for i, a := range args {
		c.Regs[isa.ArgRegs[i]] = a
	}
	savedRIP := c.RIP
	if err := c.Push(HostReturn); err != nil {
		return 0, err
	}
	c.RIP = va
	if err := c.Run(DefaultMaxInsts); err != nil {
		return 0, err
	}
	c.RIP = savedRIP
	return c.Regs[isa.RAX], nil
}
