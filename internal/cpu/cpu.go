// Package cpu interprets AK64 machine code. It is the execution substrate
// on which loaded modules run: every instruction a driver executes —
// including the wrapper, stack-swap and return-address-encryption
// sequences Adelie injects — is fetched through the MMU (honouring NX and
// write protection), decoded and retired with cycle accounting.
//
// Core kernel functions (kmalloc, printk, VFS internals …) are not
// interpreted: they are native Go functions registered at fixed kernel
// text addresses. A call or jump that lands on a registered native address
// invokes the Go function with access to the CPU state and then performs
// return semantics. This mirrors the paper's split: Adelie re-randomizes
// and instruments modules, while the core kernel remains ordinary code
// reached through well-defined entry points.
package cpu

import (
	"encoding/binary"
	"fmt"

	"adelie/internal/isa"
	"adelie/internal/mm"
)

// Cycle cost model. The absolute values are nominal; what matters for the
// evaluation's shape is that every extra instruction Adelie injects
// (wrappers, prologues, thunks, GOT loads) costs cycles, and that TLB
// refills after re-randomization flushes are visible.
const (
	CostInst    = 1  // each retired instruction
	CostTLBMiss = 25 // page-walk on a TLB miss
	CostMMIO    = 80 // uncached device register access
)

// HostReturn is the sentinel return address pushed by Call: returning to
// it ends interpretation. It lies outside the canonical address space, so
// no mapped code can collide with it.
const HostReturn = mm.MaxVA | 1

// Native is a kernel function implemented in Go. It may read and write
// CPU registers and memory; its Cost is charged when called.
type Native struct {
	Name string
	Cost uint64
	Fn   func(c *CPU) error
}

// CPU is one virtual CPU.
type CPU struct {
	ID   int
	Regs [isa.NumRegs]uint64
	RIP  uint64

	// Flags, set by CMP/TEST only (AK64 simplification: ALU operations do
	// not update flags; compiled code always compares explicitly).
	ZF bool // equal
	SF bool // signed less-than outcome of the last compare
	CF bool // unsigned below outcome of the last compare

	AS  *mm.AddressSpace
	TLB *mm.TLB

	natives map[uint64]*Native

	// nativeLo/nativeHi bound the VAs that can hold native entry points,
	// letting the block hot path replace the natives map probe with a
	// range compare for module RIPs. The zero-CPU default is the full
	// address space (always probe); the kernel narrows it to its text
	// region at boot, and RegisterNative widens it as needed.
	nativeLo, nativeHi uint64

	Cycles uint64 // cycles consumed
	Insts  uint64 // instructions retired

	fetchBuf [isa.MaxInstLen]byte

	// decoded is the per-vCPU decoded-instruction cache: one page of
	// pre-decoded instructions per physical frame. Keying by frame (not
	// VA) means a zero-copy re-randomization remap — same frames, new
	// addresses — keeps its decoded code warm, mirroring how the paper's
	// moves never copy module text. Entries are validated against the
	// frame's content version, so writes to a code page through any
	// mapping (including a W^X-violating writable alias) invalidate the
	// stale decode before it can execute. It backs the single-step path
	// (Step, and block execution's straddler fallback); the hot path is
	// the superblock cache below.
	decoded map[mm.FrameID]*pageDecode

	// blocks is the per-vCPU superblock cache: decoded basic blocks per
	// physical frame, keyed by entry offset and validated by the same
	// frame content versions as decoded. See superblock.go.
	blocks map[mm.FrameID]*pageBlocks

	// lastBlockFrame/lastPB short-circuit the blocks map for the common
	// case of consecutive blocks on the same page.
	lastBlockFrame mm.FrameID
	lastPB         *pageBlocks

	// entry is the dispatch entry cache: a small direct-mapped cache of
	// dispatch-path block resolutions keyed by entry VA, validated by
	// the same triple as a trace link. It lets a repeated Call (or any
	// repeated dispatch to the same VA — syscall entries, ISR handlers)
	// re-enter its hot trace without the dispatch-table resolution.
	// Active only with chainOn; see stepBlock.
	entry [entryCacheSlots]chainLink

	// blockGen is the native-table epoch of every cached superblock.
	// invalidateBlocks bumps it, so chain links — which hold direct
	// superblock pointers that bypass the blocks map — can never follow
	// into a block built under stale native boundaries (see superblock.go).
	blockGen uint64

	// chainOn enables superblock trace linking on this vCPU. It is
	// latched from the package-wide default (SetChaining, ADELIE_NOCHAIN)
	// at New so a toggle mid-measurement cannot desynchronize lanes.
	chainOn bool

	// indirectOn enables the monomorphic indirect-branch target cache,
	// latched from the package-wide default (SetIndirect,
	// ADELIE_NOINDIRECT) the same way. Meaningful only with chainOn.
	indirectOn bool

	// memFast arms the TLB resident word probes (mm.TLB.LoadPage and
	// StorePage) inside a block's execute loop: between block boundaries no native,
	// actor or IRQ can run, so the address-space generation cannot change
	// and the per-access generation re-check is redundant. Cleared at
	// every block boundary and on the first MMIO access of a block.
	memFast bool

	// Blocks counts basic blocks retired via block execution. The engine
	// samples it per round slot the same way it samples Cycles.
	Blocks uint64

	// ChainedBlocks counts the subset of Blocks entered through a
	// validated cached link instead of a full dispatch resolution: a
	// trace link from the preceding block (direct or indirect,
	// including the return-target link of an inlined native call) or
	// the per-vCPU dispatch entry cache. The engine samples it
	// alongside Blocks; the chain rate ChainedBlocks/Blocks is the
	// fraction of block entries that skipped the dispatch tables.
	ChainedBlocks uint64

	// IndirectChained counts the subset of ChainedBlocks entered through
	// the monomorphic indirect target cache (RET/indirect exits whose
	// dynamic target matched the cached successor).
	IndirectChained uint64

	// decodeHits/decodeMisses count per-instruction cache consultations;
	// blockHits/blockMisses count superblock consultations;
	// chainMisses counts linkable block exits that had to fall back to
	// the dispatch path (ChainedBlocks is the hit count). Metrics only.
	decodeHits, decodeMisses uint64
	blockHits, blockMisses   uint64
	chainMisses              uint64

	// sampler, when non-nil, is the observability profiler hook: invoked
	// with the current RIP every sampleEvery simulated cycles, checked at
	// block-retire boundaries (and native/single-step retires) so the
	// disabled cost is one predicted nil-compare per block. Samples are
	// driven by the virtual clock (c.Cycles), never host time, and must
	// not mutate guest state — the figure contract is that attaching a
	// sampler changes nothing simulated.
	sampler     func(va uint64)
	sampleEvery uint64
	sampleNext  uint64
}

// decodeChunkBytes is the granularity at which decode storage is
// allocated within a page. Code rarely fills whole pages (module
// functions are tens to hundreds of bytes), so chunking keeps the
// cache's footprint proportional to the code actually executed while
// the hit path stays a bounds-free double index.
const decodeChunkBytes = 512

// decodeChunk caches decodes for one chunk's worth of byte offsets.
type decodeChunk struct {
	valid [decodeChunkBytes / 64]uint64
	insts [decodeChunkBytes]isa.Inst
}

// pageDecode caches the decode of one physical frame's worth of code;
// chunks materialize on first use.
type pageDecode struct {
	ver    uint64 // frame content version this decode belongs to
	chunks [mm.PageSize / decodeChunkBytes]*decodeChunk
}

func (p *pageDecode) get(off int) (isa.Inst, bool) {
	ch := p.chunks[off/decodeChunkBytes]
	if ch == nil {
		return isa.Inst{}, false
	}
	o := off % decodeChunkBytes
	if ch.valid[o>>6]&(1<<(uint(o)&63)) == 0 {
		return isa.Inst{}, false
	}
	return ch.insts[o], true
}

func (p *pageDecode) set(off int, in isa.Inst) {
	ci := off / decodeChunkBytes
	ch := p.chunks[ci]
	if ch == nil {
		ch = &decodeChunk{}
		p.chunks[ci] = ch
	}
	o := off % decodeChunkBytes
	ch.insts[o] = in
	ch.valid[o>>6] |= 1 << (uint(o) & 63)
}

// maxDecodedPages bounds the cache footprint per vCPU. Module working
// sets are a handful of text pages; when the bound is hit the whole
// cache is dropped (simple and deterministic).
const maxDecodedPages = 128

// New returns a CPU executing in the given address space.
func New(id int, as *mm.AddressSpace) *CPU {
	return &CPU{
		ID: id, AS: as, TLB: mm.NewTLB(as),
		natives:        make(map[uint64]*Native),
		nativeHi:       ^uint64(0),
		decoded:        make(map[mm.FrameID]*pageDecode),
		blocks:         make(map[mm.FrameID]*pageBlocks),
		lastBlockFrame: mm.NoFrame,
		chainOn:        chainingEnabled.Load(),
		indirectOn:     indirectEnabled.Load(),
	}
}

// DecodeCacheStats returns the decoded-instruction cache hit/miss counts.
func (c *CPU) DecodeCacheStats() (hits, misses uint64) {
	return c.decodeHits, c.decodeMisses
}

// BlockCacheStats returns the superblock cache hit/miss counts.
func (c *CPU) BlockCacheStats() (hits, misses uint64) {
	return c.blockHits, c.blockMisses
}

// ChainStats returns the trace-linking counters: hits is the number of
// blocks entered by following a chain link (== ChainedBlocks, direct and
// indirect alike), misses the number of link-eligible block exits that
// dispatched instead.
func (c *CPU) ChainStats() (hits, misses uint64) {
	return c.ChainedBlocks, c.chainMisses
}

// RegisterNative installs a native kernel function at va. The page
// containing va must be mapped executable by the caller (the kernel image
// region) so that translation succeeds before dispatch.
func (c *CPU) RegisterNative(va uint64, n *Native) {
	c.natives[va] = n
	if va < c.nativeLo {
		c.nativeLo = va
	}
	if va >= c.nativeHi {
		c.nativeHi = va + 1
	}
	// A cached superblock may span the new entry point; native
	// boundaries are baked in at build time, so drop the cache.
	c.invalidateBlocks()
}

// ShareNatives makes this CPU dispatch to the same native table as other —
// all vCPUs of a machine see one kernel.
func (c *CPU) ShareNatives(other *CPU) {
	c.natives = other.natives
	c.nativeLo, c.nativeHi = other.nativeLo, other.nativeHi
	c.invalidateBlocks()
}

// SetNatives installs a shared native dispatch table (the kernel's).
// Natives the owner defines in the shared table later must fall inside
// the range declared via SetNativeRange (the kernel's text region
// guarantees this).
func (c *CPU) SetNatives(m map[uint64]*Native) {
	c.natives = m
	c.invalidateBlocks()
}

// SetNativeRange narrows the VA window that can hold native entry
// points. Every address passed to RegisterNative (or registered in a
// shared table) must fall inside [lo, hi) — the kernel passes its text
// region, which also bounds natives it defines later.
func (c *CPU) SetNativeRange(lo, hi uint64) {
	c.nativeLo, c.nativeHi = lo, hi
	c.invalidateBlocks()
}

// NativeTable returns the CPU's native dispatch table.
func (c *CPU) NativeTable() map[uint64]*Native { return c.natives }

// SetSampler installs (or, with a nil fn, removes) the profiler sample
// hook: fn is called with the current RIP every `every` simulated
// cycles, at the next block/native/instruction retire after the period
// elapses. The hook observes only — it runs on the vCPU's own lane
// goroutine and must not touch guest state or charge cycles.
func (c *CPU) SetSampler(every uint64, fn func(va uint64)) {
	if fn == nil || every == 0 {
		c.sampler, c.sampleEvery, c.sampleNext = nil, 0, 0
		return
	}
	c.sampler = fn
	c.sampleEvery = every
	c.sampleNext = c.Cycles + every
}

// takeSample fires the sampler and arms the next period. Kept out of
// line so the retire-path check stays a two-word compare.
func (c *CPU) takeSample() {
	c.sampleNext = c.Cycles + c.sampleEvery
	c.sampler(c.RIP)
}

// Fault is an execution error with machine context attached.
type Fault struct {
	RIP    uint64
	CPU    int
	Reason string
	Err    error
}

func (f *Fault) Error() string {
	if f.Err != nil {
		return fmt.Sprintf("cpu%d fault at rip=%#x: %s: %v", f.CPU, f.RIP, f.Reason, f.Err)
	}
	return fmt.Sprintf("cpu%d fault at rip=%#x: %s", f.CPU, f.RIP, f.Reason)
}

func (f *Fault) Unwrap() error { return f.Err }

func (c *CPU) fault(reason string, err error) error {
	return &Fault{RIP: c.RIP, CPU: c.ID, Reason: reason, Err: err}
}

// load64 reads a 64-bit value through the TLB with cycle accounting.
// TLB hits on ordinary memory are served straight from the frame bytes
// cached in the entry — no page walk, no allocator lock. Inside a block
// (memFast armed) the lookup is the resident fast probe: one front-cache
// index, no generation re-check, identical hit accounting; an MMIO hit
// disarms the probe for the rest of the block and re-charges through the
// slow path so device accounting stays on one code path.
func (c *CPU) load64(va uint64) (uint64, error) {
	if c.memFast {
		if b, ok := c.TLB.LoadPage(va); ok {
			off := va & mm.PageMask
			return binary.LittleEndian.Uint64(b[off : off+8]), nil
		}
		// Declined: L1 miss, MMIO page, or straddling access. The full
		// probe below re-runs the L1 lookup with identical accounting.
	}
	e, hit, err := c.TLB.Entry(va, mm.AccessRead)
	if err != nil {
		return 0, err
	}
	if !hit {
		c.Cycles += CostTLBMiss
	}
	if e.Flags&mm.FlagMMIO != 0 {
		c.memFast = false // device access: slow accounting path from here on
		c.Cycles += CostMMIO
		return c.AS.Read64(va) // device register routing
	}
	off := va & mm.PageMask
	if off+8 <= mm.PageSize {
		return binary.LittleEndian.Uint64(e.Bytes()[off : off+8]), nil
	}
	return c.AS.Read64(va) // page-straddling access: slow path
}

// store64 writes a 64-bit value through the TLB with cycle accounting.
// The memFast resident probe applies exactly as in load64.
func (c *CPU) store64(va uint64, val uint64) error {
	if c.memFast {
		if b, ok := c.TLB.StorePage(va); ok {
			off := va & mm.PageMask
			binary.LittleEndian.PutUint64(b[off:off+8], val)
			return nil
		}
		// Declined: L1 miss, MMIO, read-only, COW, exec-mapped, or
		// straddling. The full probe below reproduces accounting and
		// faults verbatim (and performs the COW detach / version bump).
	}
	e, hit, err := c.TLB.Entry(va, mm.AccessWrite)
	if err != nil {
		return err
	}
	if !hit {
		c.Cycles += CostTLBMiss
	}
	if e.Flags&mm.FlagMMIO != 0 {
		c.memFast = false // device access: slow accounting path from here on
		c.Cycles += CostMMIO
		return c.AS.Write64(va, val) // device register routing
	}
	off := va & mm.PageMask
	if off+8 <= mm.PageSize {
		// WritableBytes detaches a copy-on-write shared frame first; in a
		// never-forked machine it is the same direct pointer Bytes returns.
		binary.LittleEndian.PutUint64(e.WritableBytes()[off:off+8], val)
		e.NoteWrite()
		return nil
	}
	return c.AS.Write64(va, val) // page-straddling access: slow path
}

// Push pushes val onto the stack.
func (c *CPU) Push(val uint64) error {
	c.Regs[isa.RSP] -= 8
	return c.store64(c.Regs[isa.RSP], val)
}

// Pop pops the top of stack.
func (c *CPU) Pop() (uint64, error) {
	v, err := c.load64(c.Regs[isa.RSP])
	if err != nil {
		return 0, err
	}
	c.Regs[isa.RSP] += 8
	return v, nil
}

// fetch returns the instruction at RIP, enforcing execute permission.
// The fast path is a decoded-instruction cache hit: one TLB lookup, one
// frame-version check, one array index — straight-line driver code
// decodes once per (frame, content version), not per step.
func (c *CPU) fetch() (isa.Inst, error) {
	rip := c.RIP
	e, hit, err := c.TLB.Entry(rip, mm.AccessExec)
	if err != nil {
		return isa.Inst{}, err
	}
	if !hit {
		c.Cycles += CostTLBMiss
	}
	off := int(rip & mm.PageMask)
	ver := e.Version()
	pd := c.decoded[e.Frame]
	if pd != nil && pd.ver == ver {
		if in, ok := pd.get(off); ok {
			c.decodeHits++
			return in, nil
		}
	} else {
		if len(c.decoded) >= maxDecodedPages {
			clear(c.decoded)
		}
		pd = &pageDecode{ver: ver}
		c.decoded[e.Frame] = pd
	}
	c.decodeMisses++

	// Decode directly from the frame bytes — no copy on the common path.
	page := e.Bytes()
	in, derr := isa.Decode(page[off:])
	if derr == isa.ErrTruncated && mm.PageSize-off < isa.MaxInstLen {
		// Instruction straddles the page boundary: splice the head bytes
		// with the start of the next page (which must be executable) and
		// decode once more. Straddlers are not cached — their decode
		// depends on two frames' contents.
		n := copy(c.fetchBuf[:], page[off:])
		pageEnd := (rip &^ mm.PageMask) + mm.PageSize
		e2, hit2, err := c.TLB.Entry(pageEnd, mm.AccessExec)
		if err != nil {
			return isa.Inst{}, err
		}
		if !hit2 {
			c.Cycles += CostTLBMiss
		}
		m := copy(c.fetchBuf[n:], e2.Bytes())
		in, derr = isa.Decode(c.fetchBuf[:n+m])
		if derr != nil {
			return isa.Inst{}, derr
		}
		return in, nil
	}
	if derr != nil {
		return isa.Inst{}, derr
	}
	pd.set(off, in)
	return in, nil
}

// Step executes a single instruction. It returns (halted, error); halted
// is true after HLT or a return to HostReturn.
func (c *CPU) Step() (bool, error) {
	if c.RIP == HostReturn {
		return true, nil
	}
	// Native dispatch: control has landed on a kernel entry point.
	if c.RIP >= c.nativeLo && c.RIP < c.nativeHi {
		if n, ok := c.natives[c.RIP]; ok {
			return c.runNative(n)
		}
	}

	in, err := c.fetch()
	if err != nil {
		return false, c.fault("fetch", err)
	}
	c.Insts++
	c.Cycles += CostInst
	if c.sampler != nil && c.Cycles >= c.sampleNext {
		c.takeSample()
	}
	return c.exec(&in)
}

// runNative invokes a native kernel function at c.RIP and performs its
// return semantics.
func (c *CPU) runNative(n *Native) (bool, error) {
	c.Cycles += n.Cost
	if c.sampler != nil && c.Cycles >= c.sampleNext {
		c.takeSample() // RIP still holds the native's entry VA
	}
	if err := n.Fn(c); err != nil {
		return false, c.fault("native "+n.Name, err)
	}
	ret, err := c.Pop()
	if err != nil {
		return false, c.fault("native return", err)
	}
	c.RIP = ret
	return c.RIP == HostReturn, nil
}

// exec executes one decoded instruction at c.RIP, updating RIP. It is
// the dispatch core shared by Step and block execution; the caller has
// already done fetch and instruction accounting.
func (c *CPU) exec(in *isa.Inst) (bool, error) {
	next := c.RIP + uint64(in.Len)

	switch in.Op {
	case isa.OpNOP:
	case isa.OpHLT:
		c.RIP = next
		return true, nil
	case isa.OpRET:
		v, err := c.Pop()
		if err != nil {
			return false, c.fault("ret", err)
		}
		c.RIP = v
		return c.RIP == HostReturn, nil

	case isa.OpPUSH:
		if err := c.Push(c.Regs[in.R1]); err != nil {
			return false, c.fault("push", err)
		}
	case isa.OpPOP:
		v, err := c.Pop()
		if err != nil {
			return false, c.fault("pop", err)
		}
		c.Regs[in.R1] = v

	case isa.OpMOVABS, isa.OpMOVI:
		c.Regs[in.R1] = uint64(in.Imm)
	case isa.OpMOV:
		c.Regs[in.R1] = c.Regs[in.R2]
	case isa.OpLOAD:
		v, err := c.load64(c.Regs[in.R2] + uint64(int64(in.Disp)))
		if err != nil {
			return false, c.fault("load", err)
		}
		c.Regs[in.R1] = v
	case isa.OpSTORE:
		if err := c.store64(c.Regs[in.R2]+uint64(int64(in.Disp)), c.Regs[in.R1]); err != nil {
			return false, c.fault("store", err)
		}
	case isa.OpLEARIP:
		c.Regs[in.R1] = next + uint64(int64(in.Disp))
	case isa.OpLDRIP:
		v, err := c.load64(next + uint64(int64(in.Disp)))
		if err != nil {
			return false, c.fault("rip-relative load", err)
		}
		c.Regs[in.R1] = v
	case isa.OpSTRIP:
		if err := c.store64(next+uint64(int64(in.Disp)), c.Regs[in.R1]); err != nil {
			return false, c.fault("rip-relative store", err)
		}
	case isa.OpXORM:
		va := c.Regs[in.R2] + uint64(int64(in.Disp))
		v, err := c.load64(va)
		if err != nil {
			return false, c.fault("xor-mem load", err)
		}
		if err := c.store64(va, v^c.Regs[in.R1]); err != nil {
			return false, c.fault("xor-mem store", err)
		}

	case isa.OpADD:
		c.Regs[in.R1] += c.Regs[in.R2]
	case isa.OpSUB:
		c.Regs[in.R1] -= c.Regs[in.R2]
	case isa.OpXOR:
		c.Regs[in.R1] ^= c.Regs[in.R2]
	case isa.OpAND:
		c.Regs[in.R1] &= c.Regs[in.R2]
	case isa.OpOR:
		c.Regs[in.R1] |= c.Regs[in.R2]
	case isa.OpIMUL:
		c.Regs[in.R1] *= c.Regs[in.R2]
	case isa.OpUDIV:
		if c.Regs[in.R2] == 0 {
			return false, c.fault("divide by zero", nil)
		}
		c.Regs[in.R1] /= c.Regs[in.R2]
	case isa.OpADDI:
		c.Regs[in.R1] += uint64(in.Imm)
	case isa.OpSUBI:
		c.Regs[in.R1] -= uint64(in.Imm)
	case isa.OpXORI:
		c.Regs[in.R1] ^= uint64(in.Imm)
	case isa.OpANDI:
		c.Regs[in.R1] &= uint64(in.Imm)
	case isa.OpSHLI:
		c.Regs[in.R1] <<= uint64(in.Imm) & 63
	case isa.OpSHRI:
		c.Regs[in.R1] >>= uint64(in.Imm) & 63

	case isa.OpCMP:
		c.setFlags(c.Regs[in.R1], c.Regs[in.R2])
	case isa.OpCMPI:
		c.setFlags(c.Regs[in.R1], uint64(in.Imm))
	case isa.OpTEST:
		v := c.Regs[in.R1] & c.Regs[in.R2]
		c.ZF = v == 0
		c.SF = int64(v) < 0
		c.CF = false

	case isa.OpCALL:
		if err := c.Push(next); err != nil {
			return false, c.fault("call", err)
		}
		c.RIP = next + uint64(int64(in.Disp))
		return false, nil
	case isa.OpJMP:
		c.RIP = next + uint64(int64(in.Disp))
		return false, nil
	case isa.OpCALLR:
		if err := c.Push(next); err != nil {
			return false, c.fault("call", err)
		}
		c.RIP = c.Regs[in.R1]
		return false, nil
	case isa.OpJMPR:
		c.RIP = c.Regs[in.R1]
		return c.RIP == HostReturn, nil
	case isa.OpCALLM:
		target, err := c.load64(next + uint64(int64(in.Disp)))
		if err != nil {
			return false, c.fault("got-indirect call", err)
		}
		if err := c.Push(next); err != nil {
			return false, c.fault("call", err)
		}
		c.RIP = target
		return false, nil
	case isa.OpJMPM:
		target, err := c.load64(next + uint64(int64(in.Disp)))
		if err != nil {
			return false, c.fault("got-indirect jmp", err)
		}
		c.RIP = target
		return c.RIP == HostReturn, nil

	case isa.OpJE, isa.OpJNE, isa.OpJL, isa.OpJGE, isa.OpJLE, isa.OpJG, isa.OpJB, isa.OpJAE:
		if c.cond(in.Op) {
			c.RIP = next + uint64(int64(in.Disp))
			return false, nil
		}

	default:
		return false, c.fault("unimplemented opcode "+in.Op.Name(), nil)
	}
	c.RIP = next
	return false, nil
}

func (c *CPU) setFlags(a, b uint64) {
	c.ZF = a == b
	c.SF = int64(a) < int64(b)
	c.CF = a < b
}

func (c *CPU) cond(op isa.Op) bool {
	switch op {
	case isa.OpJE:
		return c.ZF
	case isa.OpJNE:
		return !c.ZF
	case isa.OpJL:
		return c.SF
	case isa.OpJGE:
		return !c.SF
	case isa.OpJLE:
		return c.ZF || c.SF
	case isa.OpJG:
		return !c.ZF && !c.SF
	case isa.OpJB:
		return c.CF
	case isa.OpJAE:
		return !c.CF
	}
	return false
}

// DefaultMaxInsts bounds a single Call to catch runaway module code.
const DefaultMaxInsts = 50_000_000

// Run executes instructions until halt, fault, or the instruction budget
// is exhausted. The hot path retires whole basic blocks — chained
// block→block along hot traces (see superblock.go) — per iteration; the
// budget is checked at chain granularity (at most maxChainBlocks blocks),
// which only affects how far past the limit a runaway module gets before
// the fault fires.
func (c *CPU) Run(maxInsts uint64) error {
	start := c.Insts
	for {
		halted, err := c.stepBlock()
		if err != nil {
			return err
		}
		if halted {
			return nil
		}
		if c.Insts-start > maxInsts {
			return c.fault(fmt.Sprintf("instruction budget (%d) exhausted", maxInsts), nil)
		}
	}
}

// Call invokes the function at va with up to six integer arguments in the
// SysV argument registers, runs until the function returns, and yields
// RAX. The current RSP must point at a valid stack. Call nests: native
// functions may use it to invoke module entry points (kernel → module
// callbacks).
func (c *CPU) Call(va uint64, args ...uint64) (uint64, error) {
	if len(args) > len(isa.ArgRegs) {
		return 0, fmt.Errorf("cpu: Call with %d args; only %d register args supported", len(args), len(isa.ArgRegs))
	}
	for i, a := range args {
		c.Regs[isa.ArgRegs[i]] = a
	}
	savedRIP := c.RIP
	if err := c.Push(HostReturn); err != nil {
		return 0, err
	}
	c.RIP = va
	if err := c.Run(DefaultMaxInsts); err != nil {
		return 0, err
	}
	c.RIP = savedRIP
	return c.Regs[isa.RAX], nil
}
