// Package drivers contains the device drivers of the evaluation, written
// in the kcc IR and compiled like any kernel module. The set mirrors the
// paper's §5 choices: network (E1000E, E1000, ENA), storage (NVMe),
// USB 3.0 (xHCI), file systems (ext4, FUSE) and the dummy IOCTL driver of
// the CPU-bound worst-case test (§5.3).
//
// Each driver exposes an init entry point that receives its MMIO base
// (and queue/ring memory where applicable) and data-path entry points the
// kernel calls per operation. Built with internal/plugin, every exported
// entry gains an immovable wrapper, stack substitution and return-address
// encryption — the code paths whose cost the figures measure.
package drivers

import (
	"fmt"

	"adelie/internal/devices"
	"adelie/internal/elfmod"
	"adelie/internal/isa"
	"adelie/internal/kcc"
	"adelie/internal/kernel"
	"adelie/internal/plugin"
)

// BuildOpts selects the build configuration for a driver, spanning the
// paper's evaluation matrix (vanilla / PIC / PIC+retpoline /
// re-randomizable with or without stack re-randomization).
type BuildOpts struct {
	PIC         bool
	Retpoline   bool
	Rerand      bool // plugin transform (implies PIC)
	StackRerand bool
	RetEncrypt  bool
}

// Build compiles a driver module under the given configuration.
func Build(m *kcc.Module, o BuildOpts) (*elfmod.Object, error) {
	if o.Rerand {
		return plugin.Build(m, plugin.Options{
			Retpoline:   o.Retpoline,
			StackRerand: o.StackRerand,
			RetEncrypt:  o.RetEncrypt,
		})
	}
	model := kcc.ModelAbsolute
	if o.PIC {
		model = kcc.ModelPIC
	}
	return kcc.Compile(m, kcc.Options{Model: model, Retpoline: o.Retpoline})
}

// MaxGuestCPUs bounds the per-CPU data arrays drivers carry. The
// engine runs guest code on up to NumCPUs vCPUs concurrently, so driver
// counters and queue slots are per-CPU (indexed by smp_processor_id),
// exactly like this_cpu_* data in real Linux drivers. kernel.New
// enforces NumCPUs <= kernel.MaxCPUs, which this mirrors.
const MaxGuestCPUs = kernel.MaxCPUs

// perCPUSlot emits code computing base+8*cpu of a per-CPU 64-bit array:
// RAX = smp_processor_id()*8, baseReg = &global + RAX. Clobbers RAX.
func perCPUSlot(baseReg isa.Reg, global string) []kcc.Ins {
	return []kcc.Ins{
		kcc.Call("smp_processor_id"),
		kcc.ArithImm(kcc.OpShl, isa.RAX, 3),
		kcc.GlobalAddr(baseReg, global),
		kcc.Arith(kcc.OpAdd, baseReg, isa.RAX),
	}
}

// Dummy returns the §5.3 dummy driver: a null IOCTL handler executed in a
// tight loop to expose the worst-case (CPU-bound) overhead of wrappers
// and stack re-randomization (Fig. 9). The op counter is per-CPU, so
// concurrent vCPUs never write the same cell.
func Dummy(name string) *kcc.Module {
	m := &kcc.Module{Name: name}
	body := []kcc.Ins{
		// Validate the request code and fall through the default arm —
		// the "null ioctl operation" of §5.3.
		kcc.MovReg(isa.RAX, isa.RDI),
		kcc.CmpImm(isa.RAX, 0),
		kcc.Br(kcc.CondEQ, "ok"),
		kcc.CmpImm(isa.RAX, 0x5401), // a TCGETS-flavoured request code
		kcc.Br(kcc.CondEQ, "ok"),
		kcc.MovImm(isa.RAX, -22), // -EINVAL
		kcc.Ret(),
		kcc.Label("ok"),
	}
	body = append(body, perCPUSlot(isa.RBX, name+"_count")...)
	body = append(body,
		kcc.Load(isa.RCX, isa.RBX, 0),
		kcc.ArithImm(kcc.OpAdd, isa.RCX, 1),
		kcc.Store(isa.RBX, 0, isa.RCX),
		kcc.MovImm(isa.RAX, 0),
		kcc.Ret(),
	)
	m.AddFunc(name+"_ioctl", true, body...)
	m.AddGlobal(kcc.Global{Name: name + "_count", Size: 8 * MaxGuestCPUs, Init: make([]byte, 8*MaxGuestCPUs)})
	return m
}

// NVMe returns the storage driver. Entry points:
//
//	nvme_init(mmio, sq, cq)      — program controller registers
//	nvme_read(buf, lba, count)   — synchronous O_DIRECT-style read;
//	                               returns the device-reported latency
//	                               in cycles (0 on failure)
//
// The polled-CQ spin is retired: nvme_read consumes its slot's
// completion through the CQ latency word the controller posts (nonzero
// = complete; the driver clears it), and when the companion nvmeirq
// module's setup has run the controller additionally signals every
// posted completion through an interrupt whose ISR runs on the routed
// vCPU at the next clock boundary. The consume sequence executes the
// same number of instructions, with the same encoded byte length, on
// the same CQ page as the old status check, so latency figures AND the
// module's re-randomization copy cost are unchanged (fig6's golden
// regression test pins this).
//
// The driver is SMP-correct: each vCPU owns submission/completion queue
// slot smp_processor_id() (the queues must be sized for NumCPUs entries,
// see sim.Machine.InitNVMe) and the completion latency is read from the
// per-slot CQ entry, not from a shared device register — so concurrent
// reads on different vCPUs never touch each other's queue state.
func NVMe() *kcc.Module {
	m := &kcc.Module{Name: "nvme"}
	m.AddFunc("nvme_init", true,
		// args: rdi=mmio, rsi=sq, rdx=cq
		kcc.GlobalStore("nvme_mmio", isa.RDI),
		kcc.GlobalStore("nvme_sq", isa.RSI),
		kcc.GlobalStore("nvme_cq", isa.RDX),
		// Program the controller.
		kcc.Store(isa.RDI, devices.NVMeRegSQBase, isa.RSI),
		kcc.Store(isa.RDI, devices.NVMeRegCQBase, isa.RDX),
		kcc.MovImm(isa.RAX, 0),
		kcc.Ret(),
	)
	m.AddFunc("nvme_read", true,
		// args: rdi=buf, rsi=lba, rdx=count
		kcc.Call("smp_processor_id"),
		kcc.MovReg(isa.R14, isa.RAX), // r14 = this CPU's queue slot
		// SQ entry = sq + slot*32.
		kcc.GlobalLoad(isa.RBX, "nvme_sq"),
		kcc.ArithImm(kcc.OpShl, isa.RAX, 5),
		kcc.Arith(kcc.OpAdd, isa.RBX, isa.RAX),
		kcc.MovImm(isa.RAX, devices.NVMeCmdRead),
		kcc.Store(isa.RBX, 0, isa.RAX),
		kcc.Store(isa.RBX, 8, isa.RSI),
		kcc.Store(isa.RBX, 16, isa.RDX),
		kcc.Store(isa.RBX, 24, isa.RDI),
		// Ring the doorbell with this CPU's slot.
		kcc.GlobalLoad(isa.RCX, "nvme_mmio"),
		kcc.Store(isa.RCX, devices.NVMeRegDoorbell, isa.R14),
		// Consume the completion at cq + slot*16: the controller posts a
		// nonzero latency word per completed command; zero means nothing
		// completed (the retired polled-CQ status check's failure case).
		kcc.GlobalLoad(isa.RBX, "nvme_cq"),
		kcc.MovReg(isa.RAX, isa.R14),
		kcc.ArithImm(kcc.OpShl, isa.RAX, 4),
		kcc.Arith(kcc.OpAdd, isa.RBX, isa.RAX),
		kcc.Load(isa.RAX, isa.RBX, 8),
		kcc.CmpImm(isa.RAX, 0),
		kcc.Br(kcc.CondEQ, "fail"),
		// Clear both CQ words (marks the slot reusable); the latency
		// stays in RAX as the return value.
		kcc.MovImm(isa.RCX, 0),
		kcc.Store(isa.RBX, 8, isa.RCX),
		kcc.Store(isa.RBX, 0, isa.RCX),
		kcc.Ret(),
		kcc.Label("fail"),
		kcc.MovImm(isa.RAX, 0),
		kcc.Ret(),
	)
	for _, g := range []string{"nvme_mmio", "nvme_sq", "nvme_cq"} {
		m.AddGlobal(kcc.Global{Name: g, Size: 8, Init: make([]byte, 8)})
	}
	return m
}

// NVMeIRQ returns the storage driver's completion-interrupt companion
// module — a separate module (so the base nvme module's byte image, and
// with it every legacy figure's re-randomization copy cost, stays
// untouched) that interrupt-driven workloads load alongside "nvme".
// Entry points:
//
//	nvmeirq_setup(line, cpu, mmio) — register the completion ISR on the
//	                                 controller's vector, affine to cpu,
//	                                 and enable the completion interrupt
//	nvmeirq_count()                — completions the ISR acknowledged
//
// The ISR is movable, like the NIC's NAPI handler: the re-randomizer
// slides the registered vector when the module moves. The vector is
// affine to one vCPU, so the acknowledgment counter needs no per-CPU
// slot.
func NVMeIRQ() *kcc.Module {
	m := &kcc.Module{Name: "nvmeirq"}
	m.AddFunc("nvmeirq.isr", false,
		kcc.GlobalLoad(isa.RAX, "nvmeirq_compl"),
		kcc.ArithImm(kcc.OpAdd, isa.RAX, 1),
		kcc.GlobalStore("nvmeirq_compl", isa.RAX),
		kcc.Ret(),
	)
	m.AddFunc("nvmeirq_setup", true,
		// args: rdi=line, rsi=cpu, rdx=mmio
		kcc.MovReg(isa.R14, isa.RDI), // r14 = line
		kcc.MovReg(isa.R13, isa.RSI), // r13 = cpu
		kcc.MovReg(isa.R12, isa.RDX), // r12 = controller mmio base
		kcc.GlobalAddr(isa.RSI, "nvmeirq.isr"),
		kcc.Call("request_irq"),
		kcc.MovReg(isa.RDI, isa.R14),
		kcc.MovReg(isa.RSI, isa.R13),
		kcc.Call("irq_set_affinity"),
		kcc.MovImm(isa.RAX, 1),
		kcc.Store(isa.R12, devices.NVMeRegIntCtl, isa.RAX),
		kcc.MovImm(isa.RAX, 0),
		kcc.Ret(),
	)
	m.AddFunc("nvmeirq_count", true,
		kcc.GlobalLoad(isa.RAX, "nvmeirq_compl"),
		kcc.Ret(),
	)
	m.AddGlobal(kcc.Global{Name: "nvmeirq_compl", Size: 8, Init: make([]byte, 8)})
	return m
}

// nicModule builds a ring-buffer NIC driver under the given prefix; the
// E1000E, E1000 (VirtualBox) and ENA (AWS) drivers share the shape but
// are distinct modules, as in the paper's driver list.
//
// RX has two paths: the legacy poll_rx (host-driven slot polling) and a
// NAPI-style ISR registered during init. request_irq receives the
// address of the *movable* local handler — like a workqueue handler,
// the registered vector is slid by the re-randomizer when the module
// moves (§3.4). The ISR masks the device's interrupt line, drains every
// filled descriptor from its own rxhead cursor (the device re-asserts
// on unmask if frames arrived meanwhile), and unmasks — the standard
// interrupt/poll hybrid discipline of real NIC drivers.
func nicModule(prefix string, extraWork int) *kcc.Module {
	m := &kcc.Module{Name: prefix}
	g := func(s string) string { return prefix + "_" + s }
	m.AddFunc(g("init"), true,
		// args: rdi=mmio, rsi=txring, rdx=rxring, rcx=ringlen, r8=irq
		kcc.GlobalStore(g("mmio"), isa.RDI),
		kcc.GlobalStore(g("tx"), isa.RSI),
		kcc.GlobalStore(g("rx"), isa.RDX),
		kcc.GlobalStore(g("len"), isa.RCX),
		kcc.Store(isa.RDI, devices.NICRegTxRing, isa.RSI),
		kcc.Store(isa.RDI, devices.NICRegRxRing, isa.RDX),
		kcc.Store(isa.RDI, devices.NICRegRingLen, isa.RCX),
		// request_irq(irq, &napi_isr): the handler address is movable.
		kcc.MovReg(isa.RDI, isa.R8),
		kcc.GlobalAddr(isa.RSI, g("isr.napi")),
		kcc.Call("request_irq"),
		kcc.MovImm(isa.RAX, 0),
		kcc.Ret(),
	)
	// isr.napi(line): mask → drain the RX ring from rxhead → unmask.
	m.AddFunc(g("isr.napi"), false,
		// Mask the line (IMC) so re-asserts defer while we poll.
		kcc.GlobalLoad(isa.RBX, g("mmio")),
		kcc.MovImm(isa.RAX, 1),
		kcc.Store(isa.RBX, devices.NICRegIntCtl, isa.RAX),
		kcc.Label("drain"),
		// desc = rx + (rxhead & (len-1))*16
		kcc.GlobalLoad(isa.R12, g("rx")),
		kcc.GlobalLoad(isa.RCX, g("len")),
		kcc.ArithImm(kcc.OpSub, isa.RCX, 1),
		kcc.GlobalLoad(isa.RAX, g("rxhead")),
		kcc.Arith(kcc.OpAnd, isa.RAX, isa.RCX),
		kcc.ArithImm(kcc.OpShl, isa.RAX, 4),
		kcc.Arith(kcc.OpAdd, isa.R12, isa.RAX),
		kcc.Load(isa.RDX, isa.R12, 8), // frame length; 0 = ring drained
		kcc.CmpImm(isa.RDX, 0),
		kcc.Br(kcc.CondEQ, "drained"),
		// Touch the payload (header parse stand-in), then consume the
		// descriptor so the device can refill the slot.
		kcc.Load(isa.RSI, isa.R12, 0),
		kcc.Load(isa.R13, isa.RSI, 0),
		kcc.MovImm(isa.RDX, 0),
		kcc.Store(isa.R12, 8, isa.RDX),
		kcc.GlobalLoad(isa.RAX, g("rxhead")),
		kcc.ArithImm(kcc.OpAdd, isa.RAX, 1),
		kcc.GlobalStore(g("rxhead"), isa.RAX),
		kcc.GlobalLoad(isa.RAX, g("rxcount")),
		kcc.ArithImm(kcc.OpAdd, isa.RAX, 1),
		kcc.GlobalStore(g("rxcount"), isa.RAX),
		kcc.Jmp("drain"),
		kcc.Label("drained"),
		// Unmask (IMS); the device re-asserts if work arrived meanwhile.
		kcc.GlobalLoad(isa.RBX, g("mmio")),
		kcc.MovImm(isa.RAX, 0),
		kcc.Store(isa.RBX, devices.NICRegIntCtl, isa.RAX),
		kcc.Ret(),
	)
	// rx_count(): frames the ISR has drained (figure/test accessor).
	m.AddFunc(g("rx_count"), true,
		kcc.GlobalLoad(isa.RAX, g("rxcount")),
		kcc.Ret(),
	)
	// xmit(buf, len, slot): fill the TX descriptor, ring the doorbell.
	xmit := []kcc.Ins{
		kcc.GlobalLoad(isa.RBX, g("tx")),
		kcc.GlobalLoad(isa.RCX, g("len")),
		// desc = tx + (slot % len)*16; slots are caller-managed and the
		// ring length is a power of two, so mask instead of dividing.
		kcc.ArithImm(kcc.OpSub, isa.RCX, 1),
		kcc.MovReg(isa.RAX, isa.RDX),
		kcc.Arith(kcc.OpAnd, isa.RAX, isa.RCX),
		kcc.ArithImm(kcc.OpShl, isa.RAX, 4),
		kcc.Arith(kcc.OpAdd, isa.RBX, isa.RAX),
		kcc.Store(isa.RBX, 0, isa.RDI),
		kcc.Store(isa.RBX, 8, isa.RSI),
	}
	// Checksum-like touch of the payload: realistic per-frame CPU work.
	xmit = append(xmit,
		kcc.MovImm(isa.RAX, 0),
		kcc.MovImm(isa.RCX, int64(extraWork)),
		kcc.Label("csum"),
		kcc.Load(isa.R12, isa.RDI, 0),
		kcc.Arith(kcc.OpAdd, isa.RAX, isa.R12),
		kcc.ArithImm(kcc.OpSub, isa.RCX, 1),
		kcc.CmpImm(isa.RCX, 0),
		kcc.Br(kcc.CondNE, "csum"),
	)
	xmit = append(xmit,
		kcc.GlobalLoad(isa.RCX, g("mmio")),
		kcc.Store(isa.RCX, devices.NICRegTxDoorbell, isa.RDX),
		kcc.MovImm(isa.RAX, 0),
		kcc.Ret(),
	)
	m.AddFunc(g("xmit"), true, xmit...)

	// poll_rx(slot): return the length of the frame in RX slot, clearing
	// the descriptor; 0 means empty.
	m.AddFunc(g("poll_rx"), true,
		kcc.GlobalLoad(isa.RBX, g("rx")),
		kcc.GlobalLoad(isa.RCX, g("len")),
		kcc.ArithImm(kcc.OpSub, isa.RCX, 1),
		kcc.MovReg(isa.RAX, isa.RDI),
		kcc.Arith(kcc.OpAnd, isa.RAX, isa.RCX),
		kcc.ArithImm(kcc.OpShl, isa.RAX, 4),
		kcc.Arith(kcc.OpAdd, isa.RBX, isa.RAX),
		kcc.Load(isa.RAX, isa.RBX, 8), // length
		kcc.MovImm(isa.RCX, 0),
		kcc.Store(isa.RBX, 8, isa.RCX), // mark consumed
		kcc.Ret(),
	)
	for _, s := range []string{"mmio", "tx", "rx", "len", "rxhead", "rxcount"} {
		m.AddGlobal(kcc.Global{Name: g(s), Size: 8, Init: make([]byte, 8)})
	}
	return m
}

// E1000EMQ is the multi-queue (RSS) build of the server NIC: one RX
// ring, rxhead cursor and NAPI vector per hardware queue, with queue
// q's vector affine to vCPU q. Entry points:
//
//	e1000emq_init(mmio, txring, rxtab, ringlen, nq, irq0)
//	    rxtab is a guest array of nq RX ring base addresses; irq0 is the
//	    device's first vector (queue q interrupts on line irq0+q). For
//	    each queue the init programs the device's per-queue ring
//	    register, registers the shared NAPI ISR on the queue's vector
//	    and pins the vector to vCPU q via irq_set_affinity.
//	e1000emq_xmit(buf, len, slot)  — same TX path as the single-queue driver
//	e1000emq_rx_count(q)           — frames queue q's ISR has drained
//
// A single movable ISR serves every vector: it recovers the queue index
// from its line argument (q = line − irq0), then masks, drains and
// unmasks only that queue's register block and ring — so two queues'
// ISRs running concurrently on different vCPUs never share a cursor.
func E1000EMQ() *kcc.Module {
	const prefix, extraWork = "e1000emq", 8
	m := &kcc.Module{Name: prefix}
	g := func(s string) string { return prefix + "_" + s }
	m.AddFunc(g("init"), true,
		// args: rdi=mmio, rsi=txring, rdx=rxtab, rcx=ringlen, r8=nq, r9=irq0
		kcc.GlobalStore(g("mmio"), isa.RDI),
		kcc.GlobalStore(g("tx"), isa.RSI),
		kcc.GlobalStore(g("len"), isa.RCX),
		kcc.GlobalStore(g("nq"), isa.R8),
		kcc.GlobalStore(g("irqbase"), isa.R9),
		kcc.Store(isa.RDI, devices.NICRegTxRing, isa.RSI),
		kcc.Store(isa.RDI, devices.NICRegRingLen, isa.RCX),
		// Per-queue setup: r12 = q.
		kcc.MovImm(isa.R12, 0),
		kcc.Label("qsetup"),
		kcc.Cmp(isa.R12, isa.R8),
		kcc.Br(kcc.CondAE, "qdone"),
		// r13 = rxtab[q]; remember it in rxrings[q].
		kcc.MovReg(isa.RAX, isa.R12),
		kcc.ArithImm(kcc.OpShl, isa.RAX, 3),
		kcc.MovReg(isa.RBX, isa.RDX),
		kcc.Arith(kcc.OpAdd, isa.RBX, isa.RAX),
		kcc.Load(isa.R13, isa.RBX, 0),
		kcc.GlobalAddr(isa.RBX, g("rxrings")),
		kcc.Arith(kcc.OpAdd, isa.RBX, isa.RAX),
		kcc.Store(isa.RBX, 0, isa.R13),
		// Program the device's per-queue RX ring register.
		kcc.GlobalLoad(isa.R14, g("mmio")),
		kcc.MovReg(isa.RAX, isa.R12),
		kcc.ArithImm(kcc.OpShl, isa.RAX, 5), // q * NICRegQueueStride
		kcc.Arith(kcc.OpAdd, isa.R14, isa.RAX),
		kcc.Store(isa.R14, devices.NICRegQueueBase+devices.NICRegQRxRing, isa.R13),
		// request_irq(irq0+q, &napi_isr): the handler address is movable.
		kcc.MovReg(isa.RDI, isa.R9),
		kcc.Arith(kcc.OpAdd, isa.RDI, isa.R12),
		kcc.GlobalAddr(isa.RSI, g("isr.napi")),
		kcc.Call("request_irq"),
		// irq_set_affinity(irq0+q, q): queue q delivers on vCPU q.
		kcc.MovReg(isa.RDI, isa.R9),
		kcc.Arith(kcc.OpAdd, isa.RDI, isa.R12),
		kcc.MovReg(isa.RSI, isa.R12),
		kcc.Call("irq_set_affinity"),
		kcc.ArithImm(kcc.OpAdd, isa.R12, 1),
		kcc.Jmp("qsetup"),
		kcc.Label("qdone"),
		kcc.MovImm(isa.RAX, 0),
		kcc.Ret(),
	)
	// isr.napi(line): q = line − irq0; mask queue q → drain its RX ring
	// from its own rxhead cursor → unmask queue q.
	m.AddFunc(g("isr.napi"), false,
		kcc.GlobalLoad(isa.RAX, g("irqbase")),
		kcc.MovReg(isa.R14, isa.RDI),
		kcc.Arith(kcc.OpSub, isa.R14, isa.RAX), // r14 = q
		// r13 = mmio + q*stride: base for this queue's register block.
		kcc.GlobalLoad(isa.R13, g("mmio")),
		kcc.MovReg(isa.RAX, isa.R14),
		kcc.ArithImm(kcc.OpShl, isa.RAX, 5),
		kcc.Arith(kcc.OpAdd, isa.R13, isa.RAX),
		// Mask this queue's line so re-asserts defer while we poll.
		kcc.MovImm(isa.RAX, 1),
		kcc.Store(isa.R13, devices.NICRegQueueBase+devices.NICRegQIntCtl, isa.RAX),
		// Per-queue slot addresses: rbx=&rxrings[q], r8=&rxheads[q],
		// r9=&rxcounts[q].
		kcc.MovReg(isa.RAX, isa.R14),
		kcc.ArithImm(kcc.OpShl, isa.RAX, 3),
		kcc.GlobalAddr(isa.RBX, g("rxrings")),
		kcc.Arith(kcc.OpAdd, isa.RBX, isa.RAX),
		kcc.GlobalAddr(isa.R8, g("rxheads")),
		kcc.Arith(kcc.OpAdd, isa.R8, isa.RAX),
		kcc.GlobalAddr(isa.R9, g("rxcounts")),
		kcc.Arith(kcc.OpAdd, isa.R9, isa.RAX),
		kcc.Label("drain"),
		// desc = rxrings[q] + (rxheads[q] & (len-1))*16
		kcc.Load(isa.R12, isa.RBX, 0),
		kcc.GlobalLoad(isa.RCX, g("len")),
		kcc.ArithImm(kcc.OpSub, isa.RCX, 1),
		kcc.Load(isa.RAX, isa.R8, 0),
		kcc.Arith(kcc.OpAnd, isa.RAX, isa.RCX),
		kcc.ArithImm(kcc.OpShl, isa.RAX, 4),
		kcc.Arith(kcc.OpAdd, isa.R12, isa.RAX),
		kcc.Load(isa.RDX, isa.R12, 8), // frame length; 0 = ring drained
		kcc.CmpImm(isa.RDX, 0),
		kcc.Br(kcc.CondEQ, "drained"),
		// Touch the payload (header parse stand-in), then consume the
		// descriptor so the device can refill the slot.
		kcc.Load(isa.RSI, isa.R12, 0),
		kcc.Load(isa.RAX, isa.RSI, 0),
		kcc.MovImm(isa.RDX, 0),
		kcc.Store(isa.R12, 8, isa.RDX),
		kcc.Load(isa.RAX, isa.R8, 0),
		kcc.ArithImm(kcc.OpAdd, isa.RAX, 1),
		kcc.Store(isa.R8, 0, isa.RAX),
		kcc.Load(isa.RAX, isa.R9, 0),
		kcc.ArithImm(kcc.OpAdd, isa.RAX, 1),
		kcc.Store(isa.R9, 0, isa.RAX),
		kcc.Jmp("drain"),
		kcc.Label("drained"),
		// Unmask; the device re-asserts if frames arrived meanwhile.
		kcc.MovImm(isa.RAX, 0),
		kcc.Store(isa.R13, devices.NICRegQueueBase+devices.NICRegQIntCtl, isa.RAX),
		kcc.Ret(),
	)
	// rx_count(q): frames queue q's ISR has drained (figure/test accessor).
	m.AddFunc(g("rx_count"), true,
		kcc.MovReg(isa.RAX, isa.RDI),
		kcc.ArithImm(kcc.OpShl, isa.RAX, 3),
		kcc.GlobalAddr(isa.RBX, g("rxcounts")),
		kcc.Arith(kcc.OpAdd, isa.RBX, isa.RAX),
		kcc.Load(isa.RAX, isa.RBX, 0),
		kcc.Ret(),
	)
	// xmit(buf, len, slot): identical TX path to the single-queue driver.
	xmit := []kcc.Ins{
		kcc.GlobalLoad(isa.RBX, g("tx")),
		kcc.GlobalLoad(isa.RCX, g("len")),
		kcc.ArithImm(kcc.OpSub, isa.RCX, 1),
		kcc.MovReg(isa.RAX, isa.RDX),
		kcc.Arith(kcc.OpAnd, isa.RAX, isa.RCX),
		kcc.ArithImm(kcc.OpShl, isa.RAX, 4),
		kcc.Arith(kcc.OpAdd, isa.RBX, isa.RAX),
		kcc.Store(isa.RBX, 0, isa.RDI),
		kcc.Store(isa.RBX, 8, isa.RSI),
		kcc.MovImm(isa.RAX, 0),
		kcc.MovImm(isa.RCX, int64(extraWork)),
		kcc.Label("csum"),
		kcc.Load(isa.R12, isa.RDI, 0),
		kcc.Arith(kcc.OpAdd, isa.RAX, isa.R12),
		kcc.ArithImm(kcc.OpSub, isa.RCX, 1),
		kcc.CmpImm(isa.RCX, 0),
		kcc.Br(kcc.CondNE, "csum"),
		kcc.GlobalLoad(isa.RCX, g("mmio")),
		kcc.Store(isa.RCX, devices.NICRegTxDoorbell, isa.RDX),
		kcc.MovImm(isa.RAX, 0),
		kcc.Ret(),
	}
	m.AddFunc(g("xmit"), true, xmit...)
	for _, s := range []string{"mmio", "tx", "len", "nq", "irqbase"} {
		m.AddGlobal(kcc.Global{Name: g(s), Size: 8, Init: make([]byte, 8)})
	}
	for _, s := range []string{"rxrings", "rxheads", "rxcounts"} {
		m.AddGlobal(kcc.Global{
			Name: g(s), Size: 8 * devices.MaxNICQueues,
			Init: make([]byte, 8*devices.MaxNICQueues),
		})
	}
	return m
}

// E1000E is the server NIC of Table 1.
func E1000E() *kcc.Module { return nicModule("e1000e", 8) }

// E1000 is the VirtualBox-era variant used in the artifact VMs.
func E1000() *kcc.Module { return nicModule("e1000", 10) }

// ENA is the AWS adapter the paper re-randomizes in SAVIOR.
func ENA() *kcc.Module { return nicModule("ena", 6) }

// Ext4Lite is the file-system module on the dd/sysbench path: an
// extent-mapping get_block plus a per-page read hook.
//
//	ext4_get_block(inode, blk) — walk a small extent table mapping file
//	                             block → LBA (returns LBA)
func Ext4Lite() *kcc.Module {
	m := &kcc.Module{Name: "ext4"}
	// Extent table: 8 extents of (firstBlk, lbaBase) pairs covering 512
	// blocks each.
	table := make([]byte, 8*16)
	for i := 0; i < 8; i++ {
		first := uint64(i * 512)
		lba := uint64(0x8000 + i*4096)
		for j := 0; j < 8; j++ {
			table[i*16+j] = byte(first >> (8 * j))
			table[i*16+8+j] = byte(lba >> (8 * j))
		}
	}
	m.AddGlobal(kcc.Global{Name: "ext4_extents", Size: uint64(len(table)), Init: table})
	m.AddFunc("ext4_get_block", true,
		// args: rdi=inode (ignored), rsi=file block
		kcc.Call("cond_resched"), // hot-path kernel helper (PLT under retpoline)
		kcc.GlobalAddr(isa.RBX, "ext4_extents"),
		kcc.MovImm(isa.RCX, 8), // extent count
		kcc.MovImm(isa.RAX, 0),
		kcc.Label("scan"),
		kcc.Load(isa.R12, isa.RBX, 0), // first block of extent
		kcc.Cmp(isa.RSI, isa.R12),
		kcc.Br(kcc.CondB, "done"), // file block below this extent: prior one wins
		// lba = extent.lbaBase + (blk - first)
		kcc.Load(isa.RAX, isa.RBX, 8),
		kcc.MovReg(isa.R13, isa.RSI),
		kcc.Arith(kcc.OpSub, isa.R13, isa.R12),
		kcc.Arith(kcc.OpAdd, isa.RAX, isa.R13),
		kcc.ArithImm(kcc.OpAdd, isa.RBX, 16),
		kcc.ArithImm(kcc.OpSub, isa.RCX, 1),
		kcc.CmpImm(isa.RCX, 0),
		kcc.Br(kcc.CondNE, "scan"),
		kcc.Label("done"),
		kcc.Ret(),
	)
	return m
}

// FuseLite is the user-space-filesystem dispatcher used as extra
// re-randomization load in Fig. 8. Its request counter is per-CPU, like
// the dummy driver's.
func FuseLite() *kcc.Module {
	m := &kcc.Module{Name: "fuse"}
	body := []kcc.Ins{
		// args: rdi=opcode. Route a few opcodes, count the rest.
		kcc.CmpImm(isa.RDI, 1), // LOOKUP
		kcc.Br(kcc.CondEQ, "hit"),
		kcc.CmpImm(isa.RDI, 3), // GETATTR
		kcc.Br(kcc.CondEQ, "hit"),
		kcc.CmpImm(isa.RDI, 15), // READ
		kcc.Br(kcc.CondEQ, "hit"),
		kcc.MovImm(isa.RAX, -38), // -ENOSYS
		kcc.Ret(),
		kcc.Label("hit"),
	}
	body = append(body, perCPUSlot(isa.RBX, "fuse_reqs")...)
	body = append(body,
		kcc.Load(isa.RCX, isa.RBX, 0),
		kcc.ArithImm(kcc.OpAdd, isa.RCX, 1),
		kcc.Store(isa.RBX, 0, isa.RCX),
		kcc.MovImm(isa.RAX, 0),
		kcc.Ret(),
	)
	m.AddFunc("fuse_dispatch", true, body...)
	m.AddGlobal(kcc.Global{Name: "fuse_reqs", Size: 8 * MaxGuestCPUs, Init: make([]byte, 8*MaxGuestCPUs)})
	return m
}

// XHCI is the USB 3.0 host-controller driver: init + port poll.
func XHCI() *kcc.Module {
	m := &kcc.Module{Name: "xhci"}
	m.AddFunc("xhci_init", true,
		kcc.GlobalStore("xhci_mmio", isa.RDI),
		kcc.MovImm(isa.RAX, 0),
		kcc.Ret(),
	)
	m.AddFunc("xhci_poll", true,
		kcc.GlobalLoad(isa.RBX, "xhci_mmio"),
		kcc.Load(isa.RAX, isa.RBX, devices.XHCIRegPortStatus),
		kcc.Ret(),
	)
	m.AddGlobal(kcc.Global{Name: "xhci_mmio", Size: 8, Init: make([]byte, 8)})
	return m
}

// All returns every driver in the suite, keyed by module name.
func All() map[string]func() *kcc.Module {
	return map[string]func() *kcc.Module{
		"dummy":  func() *kcc.Module { return Dummy("dummy") },
		"nvme":   NVMe,
		"e1000e": E1000E,
		"e1000":  E1000,
		"ena":    ENA,
		"ext4":   Ext4Lite,
		"fuse":   FuseLite,
		"xhci":   XHCI,
	}
}

// Extra returns the drivers that ship alongside the legacy suite but
// stay out of the suite-wide tables: Fig. 5a's per-module size rows are
// a published figure, so additions land here instead of All. Lookup
// resolves across both maps.
func Extra() map[string]func() *kcc.Module {
	return map[string]func() *kcc.Module{
		"e1000emq": E1000EMQ,
		"nvmeirq":  NVMeIRQ,
	}
}

// Lookup resolves a driver module by name across All and Extra.
func Lookup(name string) (func() *kcc.Module, bool) {
	if mk, ok := All()[name]; ok {
		return mk, true
	}
	mk, ok := Extra()[name]
	return mk, ok
}

// BuildAll compiles every driver under the same options.
func BuildAll(o BuildOpts) (map[string]*elfmod.Object, error) {
	out := map[string]*elfmod.Object{}
	for name, mk := range All() {
		obj, err := Build(mk(), o)
		if err != nil {
			return nil, fmt.Errorf("drivers: building %s: %w", name, err)
		}
		out[name] = obj
	}
	return out, nil
}
