package drivers_test

import (
	"testing"

	"adelie/internal/drivers"
	"adelie/internal/kernel"
	"adelie/internal/sim"
)

// allConfigs spans the evaluation matrix.
var allConfigs = map[string]drivers.BuildOpts{
	"vanilla":     {},
	"vanilla-ret": {Retpoline: true},
	"pic":         {PIC: true},
	"pic-ret":     {PIC: true, Retpoline: true},
	"rerand":      {PIC: true, Rerand: true},
	"rerand-full": {PIC: true, Retpoline: true, Rerand: true, StackRerand: true, RetEncrypt: true},
}

func TestBuildAllConfigs(t *testing.T) {
	for cfg, opts := range allConfigs {
		for name, mk := range drivers.All() {
			obj, err := drivers.Build(mk(), opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", cfg, name, err)
			}
			if err := obj.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", cfg, name, err)
			}
		}
	}
}

func newMachine(t *testing.T) *sim.Machine {
	t.Helper()
	m, err := sim.NewMachine(sim.Config{NumCPUs: 4, Seed: 21, KASLR: kernel.KASLRFull64})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func fullOpts() drivers.BuildOpts {
	return drivers.BuildOpts{PIC: true, Retpoline: true, Rerand: true, StackRerand: true, RetEncrypt: true}
}

func TestDummyIoctl(t *testing.T) {
	m := newMachine(t)
	if _, err := m.LoadDriver("dummy", fullOpts()); err != nil {
		t.Fatal(err)
	}
	if ret, err := m.Call("dummy_ioctl", 0); err != nil || ret != 0 {
		t.Fatalf("null ioctl = (%d, %v)", ret, err)
	}
	if ret, err := m.Call("dummy_ioctl", 0x5401); err != nil || ret != 0 {
		t.Fatalf("TCGETS ioctl = (%d, %v)", ret, err)
	}
	ret, err := m.Call("dummy_ioctl", 99)
	if err != nil {
		t.Fatal(err)
	}
	if int64(ret) != -22 {
		t.Fatalf("bad ioctl = %d, want -EINVAL", int64(ret))
	}
}

func TestNVMeReadThroughDriver(t *testing.T) {
	m := newMachine(t)
	if _, err := m.LoadDriver("nvme", fullOpts()); err != nil {
		t.Fatal(err)
	}
	if err := m.InitNVMe(); err != nil {
		t.Fatal(err)
	}
	m.NVMe.Preload(5, []byte("adelie block data"))
	buf, err := m.K.Kmalloc(512)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := m.Call("nvme_read", buf, 5, 512)
	if err != nil {
		t.Fatal(err)
	}
	if lat == 0 {
		t.Fatal("driver reported failure")
	}
	got, err := m.K.AS.ReadBytes(buf, 17)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "adelie block data" {
		t.Fatalf("DMA data = %q", got)
	}
	// First read of an LBA misses the controller cache; the second hits.
	lat2, err := m.Call("nvme_read", buf, 5, 512)
	if err != nil {
		t.Fatal(err)
	}
	if lat2 >= lat {
		t.Fatalf("cache hit latency %d not below miss latency %d", lat2, lat)
	}
	if m.NVMe.CacheHits == 0 {
		t.Fatal("no controller cache hit recorded")
	}
}

func TestNICTransmitReceiveLoop(t *testing.T) {
	m := newMachine(t)
	if _, err := m.LoadDriver("e1000e", fullOpts()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.InitNIC("e1000e"); err != nil {
		t.Fatal(err)
	}
	// Load generator sends a frame to the server NIC.
	m.NIC.Deliver([]byte("GET /index.html"))
	// Driver polls RX slot 0.
	n, err := m.Call("e1000e_poll_rx", 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 15 {
		t.Fatalf("poll_rx = %d, want 15", n)
	}
	// Transmit a response.
	buf, err := m.K.Kmalloc(2048)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.K.AS.Write64(buf, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call("e1000e_xmit", buf, 1000, 0); err != nil {
		t.Fatal(err)
	}
	if m.NIC.TxFrames != 1 || m.NIC.TxBytes != 1000 {
		t.Fatalf("tx stats = %d frames / %d bytes", m.NIC.TxFrames, m.NIC.TxBytes)
	}
	if m.Peer.RxFrames != 1 {
		t.Fatal("peer did not receive the frame")
	}
}

// TestNICNapiISRDrainsRing: the interrupt path end to end — the wire
// delivers frames into the RX ring (asserting the NIC's bus line), the
// kernel dispatches the driver's NAPI ISR, and the ISR masks, drains
// every frame, unmasks, and leaves the ring refillable.
func TestNICNapiISRDrainsRing(t *testing.T) {
	m := newMachine(t)
	if _, err := m.LoadDriver("e1000e", fullOpts()); err != nil {
		t.Fatal(err)
	}
	ringLen, err := m.InitNIC("e1000e")
	if err != nil {
		t.Fatal(err)
	}
	line := m.NIC.IRQLine()
	if line < 0 {
		t.Fatal("server NIC got no IRQ line")
	}
	if _, ok := m.K.ISR(line); !ok {
		t.Fatal("driver init did not request_irq its ISR")
	}
	for i := 0; i < 5; i++ {
		m.NIC.Deliver([]byte("frame"))
	}
	// Per-frame coalescing default: every delivery asserted the line.
	if m.NIC.IRQsAsserted != 5 {
		t.Fatalf("asserts = %d, want 5", m.NIC.IRQsAsserted)
	}
	for _, p := range m.Bus.IC().TakePending() {
		handled, err := m.K.DispatchIRQ(m.K.CPU(0), p.Line)
		if err != nil {
			t.Fatal(err)
		}
		if !handled {
			t.Fatalf("line %d spurious", p.Line)
		}
	}
	if n, err := m.Call("e1000e_rx_count"); err != nil || n != 5 {
		t.Fatalf("rx_count = (%d, %v), want 5", n, err)
	}
	// The ring is drained: the device can deliver a full ring again.
	for i := uint64(0); i < ringLen; i++ {
		m.NIC.Deliver([]byte("again"))
	}
	if m.NIC.Dropped != 0 {
		t.Fatalf("dropped %d frames on a drained ring", m.NIC.Dropped)
	}
	// And frames past the full ring drop without overwriting.
	m.NIC.Deliver([]byte("overrun"))
	if m.NIC.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", m.NIC.Dropped)
	}
}

// TestNICISRSurvivesRerand: the registered vector points into the
// movable part; after moves + drain, interrupts still land.
func TestNICISRSurvivesRerand(t *testing.T) {
	m := newMachine(t)
	if _, err := m.LoadDriver("e1000e", fullOpts()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.InitNIC("e1000e"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.R.Step(); err != nil {
			t.Fatal(err)
		}
	}
	m.K.SMR.Flush()
	m.NIC.Deliver([]byte("post-move"))
	for _, p := range m.Bus.IC().TakePending() {
		if handled, err := m.K.DispatchIRQ(m.K.CPU(0), p.Line); err != nil || !handled {
			t.Fatalf("post-move dispatch = (%v, %v)", handled, err)
		}
	}
	if n, err := m.Call("e1000e_rx_count"); err != nil || n != 1 {
		t.Fatalf("rx_count = (%d, %v), want 1", n, err)
	}
}

func TestExt4GetBlock(t *testing.T) {
	m := newMachine(t)
	if _, err := m.LoadDriver("ext4", fullOpts()); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ blk, lba uint64 }{
		{0, 0x8000},
		{100, 0x8000 + 100},
		{512, 0x9000},                  // second extent
		{1500, 0xA000 + (1500 - 1024)}, // third extent
	}
	for _, c := range cases {
		got, err := m.Call("ext4_get_block", 1, c.blk)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.lba {
			t.Fatalf("get_block(%d) = %#x, want %#x", c.blk, got, c.lba)
		}
	}
}

func TestFuseDispatch(t *testing.T) {
	m := newMachine(t)
	if _, err := m.LoadDriver("fuse", fullOpts()); err != nil {
		t.Fatal(err)
	}
	for _, op := range []uint64{1, 3, 15} {
		if ret, err := m.Call("fuse_dispatch", op); err != nil || ret != 0 {
			t.Fatalf("fuse op %d = (%d, %v)", op, int64(ret), err)
		}
	}
	ret, err := m.Call("fuse_dispatch", 77)
	if err != nil {
		t.Fatal(err)
	}
	if int64(ret) != -38 {
		t.Fatalf("unknown fuse op = %d, want -ENOSYS", int64(ret))
	}
}

func TestXHCIPoll(t *testing.T) {
	m := newMachine(t)
	if _, err := m.LoadDriver("xhci", fullOpts()); err != nil {
		t.Fatal(err)
	}
	if err := m.InitXHCI(); err != nil {
		t.Fatal(err)
	}
	status, err := m.Call("xhci_poll")
	if err != nil {
		t.Fatal(err)
	}
	if status != 1 {
		t.Fatalf("port status = %d, want connected", status)
	}
	if m.XHCI.Polls == 0 {
		t.Fatal("device did not observe the poll")
	}
}

func TestAllDriversSurviveRerandomization(t *testing.T) {
	m := newMachine(t)
	for _, name := range []string{"dummy", "nvme", "e1000e", "ext4", "fuse", "xhci"} {
		if _, err := m.LoadDriver(name, fullOpts()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if err := m.InitNVMe(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.InitNIC("e1000e"); err != nil {
		t.Fatal(err)
	}
	if err := m.InitXHCI(); err != nil {
		t.Fatal(err)
	}
	buf, err := m.K.Kmalloc(512)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		if _, err := m.R.Step(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if _, err := m.Call("dummy_ioctl", 0); err != nil {
			t.Fatalf("round %d ioctl: %v", round, err)
		}
		if lat, err := m.Call("nvme_read", buf, 1, 512); err != nil || lat == 0 {
			t.Fatalf("round %d nvme: (%d, %v)", round, lat, err)
		}
		if _, err := m.Call("ext4_get_block", 1, 7); err != nil {
			t.Fatalf("round %d ext4: %v", round, err)
		}
		if _, err := m.Call("xhci_poll"); err != nil {
			t.Fatalf("round %d xhci: %v", round, err)
		}
	}
	m.K.SMR.Flush()
	if d := m.K.SMR.Stats().Delta(); d != 0 {
		t.Fatalf("SMR delta = %d", d)
	}
}

func TestDriverSizesPICvsNonPIC(t *testing.T) {
	// Fig. 5a's measurement at module level: both builds exist and the
	// size accounting is non-zero and model-dependent.
	for name, mk := range drivers.All() {
		plain, err := drivers.Build(mk(), drivers.BuildOpts{})
		if err != nil {
			t.Fatal(err)
		}
		pic, err := drivers.Build(mk(), drivers.BuildOpts{PIC: true, Retpoline: true})
		if err != nil {
			t.Fatal(err)
		}
		if plain.TotalSize() == 0 || pic.TotalSize() == 0 {
			t.Fatalf("%s: zero size", name)
		}
	}
}
