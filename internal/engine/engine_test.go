package engine_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"adelie/internal/cpu"
	"adelie/internal/drivers"
	"adelie/internal/kernel"
	"adelie/internal/sim"
)

func boot(t *testing.T, ncpu int, rerand bool) (*sim.Machine, uint64) {
	t.Helper()
	m, err := sim.NewMachine(sim.Config{NumCPUs: ncpu, Seed: 42, KASLR: kernel.KASLRFull64})
	if err != nil {
		t.Fatal(err)
	}
	o := drivers.BuildOpts{PIC: true, Retpoline: true}
	if rerand {
		o.Rerand, o.StackRerand, o.RetEncrypt = true, true, true
	}
	if _, err := m.LoadDriver("dummy", o); err != nil {
		t.Fatal(err)
	}
	va, ok := m.K.Symbol("dummy_ioctl")
	if !ok {
		t.Fatal("dummy_ioctl not exported")
	}
	return m, va
}

// TestParallelLanesAccrueBusyCycles is the headline property of the
// engine: with Workers > 1, more than one vCPU physically interprets
// operations (the seed executed everything on vCPU 0 and modeled the
// rest analytically).
func TestParallelLanesAccrueBusyCycles(t *testing.T) {
	const ncpu = 8
	m, va := boot(t, ncpu, false)
	res, err := m.Run(sim.RunConfig{Ops: 64, Workers: ncpu, SyscallCycles: 100},
		func(c *cpu.CPU) (uint64, error) {
			_, err := c.Call(va, 0)
			return 0, err
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lanes != ncpu {
		t.Fatalf("lanes = %d, want %d", res.Lanes, ncpu)
	}
	for i := 0; i < ncpu; i++ {
		if m.K.CPU(i).Cycles == 0 {
			t.Errorf("vCPU %d accrued no busy cycles", i)
		}
		if m.K.CPU(i).Insts == 0 {
			t.Errorf("vCPU %d retired no instructions", i)
		}
	}
	// All interpreted work is accounted: the sum over vCPUs matches the
	// result's interpreted share (BusyCycles also includes the per-op
	// syscall charge, which is not executed on a vCPU).
	var sum uint64
	for i := 0; i < ncpu; i++ {
		sum += m.K.CPU(i).Cycles
	}
	if want := res.BusyCycles - 64*100; sum != want {
		t.Fatalf("vCPU cycle sum %d != interpreted busy %d", sum, want)
	}
}

// TestLanesCappedByCPUs: the physical lane count is bounded by the
// machine's cores even when the modeled worker population is larger.
func TestLanesCappedByCPUs(t *testing.T) {
	m, va := boot(t, 4, false)
	res, err := m.Run(sim.RunConfig{Ops: 40, Workers: 100},
		func(c *cpu.CPU) (uint64, error) {
			_, err := c.Call(va, 0)
			return 0, err
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lanes != 4 {
		t.Fatalf("lanes = %d, want 4", res.Lanes)
	}
}

// TestSingleWorkerStaysOnOneVCPU: the Workers=1 microbenchmarks must
// keep their single-lane cost profile (no goroutine round-trips, one
// TLB/decode-cache warmup).
func TestSingleWorkerStaysOnOneVCPU(t *testing.T) {
	m, va := boot(t, 4, false)
	if _, err := m.Run(sim.RunConfig{Ops: 20, Workers: 1},
		func(c *cpu.CPU) (uint64, error) {
			_, err := c.Call(va, 0)
			return 0, err
		}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if m.K.CPU(i).Cycles != 0 {
			t.Fatalf("vCPU %d ran with Workers=1", i)
		}
	}
}

// TestParallelRunDeterministic: two identical machines, parallel lanes,
// re-randomization on — results must be bit-identical. This is the
// engine's determinism contract under real concurrency.
func TestParallelRunDeterministic(t *testing.T) {
	results := make([]sim.RunResult, 2)
	perCPU := make([][]uint64, 2)
	for i := range results {
		m, va := boot(t, 8, true)
		res, err := m.Run(sim.RunConfig{Ops: 400, Workers: 8, RerandPeriodUs: 20, SyscallCycles: 2000},
			func(c *cpu.CPU) (uint64, error) {
				_, err := c.Call(va, 0)
				return 0, err
			})
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
		cycles := make([]uint64, 8)
		for j := 0; j < 8; j++ {
			cycles[j] = m.K.CPU(j).Cycles
		}
		perCPU[i] = cycles
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatalf("parallel run not deterministic:\n%+v\n%+v", results[0], results[1])
	}
	for j := 0; j < 8; j++ {
		if perCPU[0][j] != perCPU[1][j] {
			t.Fatalf("vCPU %d cycles differ across runs: %d vs %d", j, perCPU[0][j], perCPU[1][j])
		}
	}
	if results[0].RerandSteps == 0 {
		t.Fatal("re-randomizer actor never fired")
	}
}

// TestOpErrorReportsOpIndex: a failing op is attributed to its
// deterministic op index, not a lane-scheduling-dependent one.
func TestOpErrorReportsOpIndex(t *testing.T) {
	m, va := boot(t, 4, false)
	_, err := m.Run(sim.RunConfig{Ops: 16, Workers: 4},
		func(c *cpu.CPU) (uint64, error) {
			if c.ID == 2 { // lane 2 fails on its first op, global index 2
				return 0, errLane2
			}
			_, err := c.Call(va, 0)
			return 0, err
		})
	if err == nil {
		t.Fatal("expected op error")
	}
	if !strings.Contains(err.Error(), "op 2") {
		t.Fatalf("error not attributed to op 2: %v", err)
	}
}

var errLane2 = errors.New("injected lane-2 failure")
