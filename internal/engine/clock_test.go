package engine

import "testing"

func TestClockFiresActorsOnPeriod(t *testing.T) {
	clk := NewClock()
	var a, b int
	clk.Schedule(Actor{Name: "a", PeriodUs: 10, Step: func() error { a++; return nil }})
	clk.Schedule(Actor{Name: "b", PeriodUs: 25, Step: func() error { b++; return nil }})

	if err := clk.Advance(9); err != nil { // t=9: nothing due
		t.Fatal(err)
	}
	if a != 0 || b != 0 {
		t.Fatalf("early fire: a=%d b=%d", a, b)
	}
	if err := clk.Advance(1); err != nil { // t=10: a fires once
		t.Fatal(err)
	}
	if a != 1 || b != 0 {
		t.Fatalf("t=10: a=%d b=%d", a, b)
	}
	if err := clk.Advance(65); err != nil { // t=75: a at 20..70 (6 more), b at 25,50,75 (3)
		t.Fatal(err)
	}
	if a != 7 || b != 3 {
		t.Fatalf("t=75: a=%d b=%d, want 7 and 3", a, b)
	}
}

func TestClockActorOrderingOnSharedDeadline(t *testing.T) {
	clk := NewClock()
	var order []string
	clk.Schedule(Actor{Name: "first", PeriodUs: 10, Step: func() error { order = append(order, "first"); return nil }})
	clk.Schedule(Actor{Name: "second", PeriodUs: 10, Step: func() error { order = append(order, "second"); return nil }})
	if err := clk.Advance(10); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("tie-break not registration order: %v", order)
	}
}

func TestClockIgnoresNonPositivePeriods(t *testing.T) {
	clk := NewClock()
	fired := false
	clk.Schedule(Actor{PeriodUs: 0, Step: func() error { fired = true; return nil }})
	if err := clk.Advance(1000); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("disabled actor fired")
	}
}
