package engine

// The virtual clock. Simulated time advances only through Advance calls
// made by the engine's accounting pass, which runs single-threaded at
// round barriers — so clocked actors (the re-randomizer kthread, future
// async devices) always step deterministically with no vCPU running,
// no matter how many host goroutines the round itself used.

// Actor is a component stepped on the virtual clock: each time the
// clock crosses a multiple of its period, Step runs once. The paper's
// randomizer kthread is the canonical actor; the abstraction exists so
// later subsystems (device interrupt mills, watchdogs) join the same
// deterministic timeline instead of being inlined into the op loop.
type Actor struct {
	Name     string
	PeriodUs float64
	Step     func() error
}

type actorState struct {
	Actor
	nextUs float64
}

// Clock is the deterministic virtual clock.
type Clock struct {
	nowUs  float64
	actors []*actorState
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// NowUs returns the current virtual time in microseconds.
func (c *Clock) NowUs() float64 { return c.nowUs }

// Schedule registers an actor to be stepped every PeriodUs of virtual
// time, first at one full period from now. Actors with PeriodUs <= 0
// are ignored.
func (c *Clock) Schedule(a Actor) {
	if a.PeriodUs <= 0 {
		return
	}
	c.actors = append(c.actors, &actorState{Actor: a, nextUs: c.nowUs + a.PeriodUs})
}

// Advance moves virtual time forward by dUs, firing every actor whose
// deadline is crossed (repeatedly, if more than one period elapsed).
// Actors fire in deadline order; ties resolve in registration order.
func (c *Clock) Advance(dUs float64) error {
	c.nowUs += dUs
	for {
		var due *actorState
		for _, a := range c.actors {
			if a.nextUs <= c.nowUs && (due == nil || a.nextUs < due.nextUs) {
				due = a
			}
		}
		if due == nil {
			return nil
		}
		if err := due.Step(); err != nil {
			return err
		}
		due.nextUs += due.PeriodUs
	}
}
