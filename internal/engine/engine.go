// Package engine is the parallel execution engine behind sim.Machine.Run:
// it schedules benchmark operations across all vCPUs as host goroutines
// under a deterministic barrier-synchronized virtual clock.
//
// Execution model. The Ops operations of a measurement are dealt
// round-robin onto lanes (lane l runs ops l, l+lanes, l+2·lanes, …, on
// vCPU l), where lanes = min(Workers, NumCPUs, Ops). Each round runs one
// op per lane concurrently — real goroutines interpreting real driver
// code, contending on the real (lock-light) translation path — then hits
// a barrier. With all vCPUs quiescent, the engine replays the round's
// per-op costs into the closed-queueing model in op order, advancing the
// virtual clock and firing clocked actors (the re-randomizer kthread)
// whose deadlines were crossed. Actors therefore mutate the address
// space only between rounds, which is what makes parallel execution
// bit-reproducible: lane→op assignment is static, per-vCPU state (TLB,
// decoded-instruction cache, stacks) evolves deterministically per lane,
// and every cross-lane mutation happens at a deterministic barrier.
//
// Guest code run under more than one lane must be SMP-correct the same
// way real driver code must be: per-CPU state keyed by smp_processor_id
// (see internal/drivers), devices with per-slot queues, no unsynchronized
// shared writes. Workloads additionally keep any host-side closure state
// per-lane (indexed by cpu.CPU.ID) so results stay deterministic.
//
// Interrupts. When the engine drives a machine assembled on a device
// bus, lines raised by devices during a round (NIC RX coalescing, see
// internal/bus) are delivered only here, at the round barrier: after the
// accounting pass, the engine publishes the virtual clock to the bus,
// ticks coalescing timers, and drains the pending vector set grouped by
// routed target vCPU — each target lane dispatches the lines routed to
// it in ascending line order, concurrently across lanes, and the
// delivery trace plus all accounting are then committed in (vCPU, line)
// order after every lane joins. A machine whose vectors all route to
// vCPU 0 (the default) takes the sequential single-lane path, which is
// bit-identical to the pre-vector-table engine. Because raising is
// commutative, routes only change between rounds, and delivery is
// barrier-serialized with deterministic commit order, interrupt side
// effects — ISR cycles, ring drains, driver counters — are
// bit-reproducible no matter how the host scheduled the round's lanes.
package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"adelie/internal/bus"
	"adelie/internal/cpu"
	"adelie/internal/kernel"
	"adelie/internal/obs"
	"adelie/internal/rerand"
)

// CPUHz is the nominal clock of the simulated testbed (Table 1).
const CPUHz = 2.2e9

// OpFunc executes one benchmark operation on the vCPU, returning the
// device wait in cycles (time the CPU is idle on I/O) and any fault.
type OpFunc func(c *cpu.CPU) (waitCycles uint64, err error)

// EpochDevice is a device with round-granular (epoch) state semantics;
// see bus.EpochDevice. The engine discovers epoch devices by interface
// assertion over the machine's bus (this alias keeps older call sites
// compiling).
type EpochDevice = bus.EpochDevice

// RunConfig parameterizes a measurement.
type RunConfig struct {
	Ops            int     // operations to execute (sampled ops = all)
	Workers        int     // concurrent clients (Figs. 7/8 sweeps)
	RerandPeriodUs float64 // re-randomization period; 0 = disabled
	SyscallCycles  uint64  // fixed kernel entry/exit + core-kernel path cost per op
	BytesPerOp     float64 // payload size (for MB/s and the wire cap)
	WireBps        float64 // wire bandwidth cap; 0 = none

	// Actors are extra clocked actors scheduled on the measurement's
	// virtual clock alongside the re-randomizer — e.g. a load generator
	// injecting frames into a NIC. They fire during the accounting pass
	// at round barriers, so their mutations are deterministic.
	Actors []Actor

	// Trace, when non-nil, receives the measurement's cycle-stamped
	// event stream: per-lane round retire summaries, TLB refill and
	// device counter deltas, IRQ raise→deliver→ISR-done, rerand epochs
	// and copy-on-write detaches, all emitted from the single-threaded
	// barrier passes and merged in deterministic (clock, track, seq)
	// order. Tracing never changes a figure — no event charges cycles
	// or touches guest state — and the merged stream is byte-identical
	// run to run for the same seed.
	Trace *obs.Tracer

	// Profile, when non-nil, aggregates virtual-clock samples for this
	// run. The engine does not consume it directly: sim.Machine.Run
	// attaches per-vCPU samplers symbolized against its kernel before
	// delegating here (the field rides on RunConfig so callers opt in
	// at the same place they opt into tracing).
	Profile *obs.Profiler
}

// RunResult is one measured configuration — a point on a §5 figure.
type RunResult struct {
	OpsPerSec     float64
	MBPerSec      float64
	CPUUsagePct   float64 // across all vCPUs, as the paper reports
	AvgOpMicros   float64
	ElapsedSec    float64
	BusyCycles    uint64 // interpreted + charged kernel cycles
	WaitCycles    uint64 // device wait
	RerandCycles  uint64 // randomizer thread work
	RerandSteps   int
	Lanes         int    // vCPUs that physically executed operations
	Blocks        uint64 // basic blocks retired by lanes (superblock execution)
	ChainedBlocks uint64 // blocks entered via trace links, no dispatch-loop return

	// IndirectChained is the subset of ChainedBlocks entered through the
	// monomorphic indirect-branch target cache (RET/indirect exits whose
	// dynamic target matched the cached successor).
	IndirectChained uint64
	IRQs            uint64 // ISR dispatches delivered at clock boundaries
	IRQCycles       uint64 // cycles spent in ISRs (counted into CPU usage)

	// Per-vCPU delivery breakdown (index = vCPU; nil when the machine has
	// no bus). The aggregate IRQs/IRQCycles fields are kept for
	// compatibility and always equal the slice sums.
	IRQsPerLane      []uint64
	IRQCyclesPerLane []uint64
}

// IRQVCPUs counts the vCPUs that handled at least one interrupt — the
// observable spread of the vector table's routing.
func (r *RunResult) IRQVCPUs() int {
	n := 0
	for _, c := range r.IRQsPerLane {
		if c > 0 {
			n++
		}
	}
	return n
}

// Engine drives measurements against one booted kernel.
type Engine struct {
	K     *kernel.Kernel
	R     *rerand.Randomizer // optional; stepped as a clocked actor
	Bus   *bus.Bus           // optional; devices, epoch set, interrupts
	Epoch []EpochDevice      // devices needing round-granular determinism

	// Trace state for the current Run (nil / unused when the run is not
	// traced). Set at Run entry, cleared on return; serviceIRQs reads it
	// to stamp raise/deliver/ISR events.
	tr      *obs.Tracer
	trIRQ   int // "irq" track id (device-side raise timeline)
	trMM    int // "mm" track id (fork / COW-detach events)
	devObs  []engineDevObs
	tlbPrev []uint64
	cowPrev int64
}

// engineDevObs is one StatSource device under delta sampling. prev is
// the last committed sample; cur is a scratch buffer reused every round
// so barrier sampling stays allocation-free on quiet rounds.
type engineDevObs struct {
	tid  int
	src  obs.StatSource
	prev []obs.Stat
	cur  []obs.Stat
}

// New returns an engine over k. r may be nil (no re-randomization) and
// b may be nil (no devices). Epoch devices are discovered from the bus
// by interface assertion — this replaces the old EpochDevice variadic.
func New(k *kernel.Kernel, r *rerand.Randomizer, b *bus.Bus) *Engine {
	e := &Engine{K: k, R: r, Bus: b}
	if b != nil {
		e.Epoch = b.EpochDevices()
	}
	return e
}

// lap records one lane's physical cost for the op it ran this round.
type lap struct {
	busy     uint64
	wait     uint64
	blocks   uint64
	chained  uint64
	indirect uint64
	err      error
}

// Run executes cfg.Ops operations across the vCPUs, interleaving
// clocked-actor steps on the virtual clock, and derives the
// figure-level metrics.
//
// Concurrency model (closed queueing, first-order): each of the Workers
// clients issues its next operation as soon as the previous completes.
// An operation holds a CPU for its busy portion and overlaps its device /
// client-round-trip wait with other workers. The sustainable rate is the
// minimum of three ceilings:
//
//	workers/latency   — Little's law over the closed population,
//	(N-1)/busy        — CPU capacity (one core's headroom reserved),
//	wire/bytesPerOp   — link bandwidth.
//
// This is what produces the paper's curves: throughput rising with
// concurrency until either the wire (Figs. 7/8) or the CPUs saturate.
// Unlike the analytic model's population, the *physical* execution is
// capped at NumCPUs lanes — the simulated machine cannot interpret more
// concurrent operations than it has cores, exactly like the testbed.
func (e *Engine) Run(cfg RunConfig, op OpFunc) (RunResult, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 1000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	ncpu := e.K.NumCPUs()
	lanes := cfg.Workers
	if lanes > ncpu {
		lanes = ncpu
	}
	if lanes > cfg.Ops {
		lanes = cfg.Ops
	}

	var res RunResult
	res.Lanes = lanes
	if e.Bus != nil {
		res.IRQsPerLane = make([]uint64, ncpu)
		res.IRQCyclesPerLane = make([]uint64, ncpu)
	}
	clk := NewClock()
	e.beginTrace(cfg.Trace, lanes)
	defer func() { e.tr = nil }()
	var trRerand int
	if e.tr != nil && e.R != nil && cfg.RerandPeriodUs > 0 {
		trRerand = e.tr.Track("rerand")
	}
	if e.R != nil && cfg.RerandPeriodUs > 0 {
		clk.Schedule(Actor{
			Name:     "rerand",
			PeriodUs: cfg.RerandPeriodUs,
			Step: func() error {
				rep, err := e.R.Step()
				if err != nil {
					return err
				}
				res.RerandCycles += rep.Cycles
				res.RerandSteps++
				obs.Default.Counter("adelie_rerand_epochs_total").Inc()
				obs.Default.Counter("adelie_rerand_modules_moved_total").Add(uint64(rep.ModulesMoved))
				obs.Default.Counter("adelie_rerand_pages_remapped_total").Add(rep.PagesRemapped)
				if e.tr != nil {
					// Epoch begin→end as one span: begin at the firing
					// clock, duration = the randomizer thread's modeled
					// cost, args carrying the moved-module list.
					names := make([]string, 0, len(e.R.Modules()))
					for _, m := range e.R.Modules() {
						names = append(names, m.Name)
					}
					sort.Strings(names)
					e.tr.Lane(trRerand).Emit(obs.Event{
						Clk: uint64(clk.NowUs() * (CPUHz / 1e6)), Dur: rep.Cycles,
						Track: trRerand, Kind: obs.KindRerand, Name: "rerand epoch",
						Args: []obs.Arg{
							obs.ArgS("moved", strings.Join(names, ",")),
							obs.ArgU("pages_remapped", rep.PagesRemapped),
							obs.ArgU("got_entries", rep.GotEntries),
							obs.ArgI("stacks_retired", int64(rep.StacksRetired)),
						},
					})
				}
				return nil
			},
		})
	}
	for _, a := range cfg.Actors {
		clk.Schedule(a)
	}
	if e.Bus != nil {
		e.Bus.SetNow(0)
	}

	// Persistent lane workers: one goroutine per lane for the whole
	// measurement, signalled once per round. This keeps the per-round
	// cost to a channel handshake instead of goroutine spawns, which
	// matters when ops are microseconds long.
	laps := make([]lap, lanes)
	var wg sync.WaitGroup
	var start []chan struct{}
	if lanes > 1 {
		start = make([]chan struct{}, lanes)
		for l := 1; l < lanes; l++ {
			start[l] = make(chan struct{}, 1)
			go func(l int) {
				for range start[l] {
					laps[l] = e.runOne(l, op)
					wg.Done()
				}
			}(l)
		}
		defer func() {
			for l := 1; l < lanes; l++ {
				close(start[l])
			}
		}()
	}

	for base := 0; base < cfg.Ops; base += lanes {
		n := cfg.Ops - base
		if n > lanes {
			n = lanes
		}
		for _, d := range e.Epoch {
			d.BeginEpoch()
		}
		if n > 1 {
			wg.Add(n - 1)
			for l := 1; l < n; l++ {
				start[l] <- struct{}{}
			}
		}
		// Lane 0 always runs on the calling goroutine: zero overhead on
		// the latency-sensitive Workers=1 microbenchmarks.
		laps[0] = e.runOne(0, op)
		if n > 1 {
			wg.Wait()
		}
		for _, d := range e.Epoch {
			d.EndEpoch()
		}

		// Accounting pass: single-threaded, in op order, with every vCPU
		// at the barrier. Clock advances here are where actors fire.
		for l := 0; l < n; l++ {
			if laps[l].err != nil {
				return res, fmt.Errorf("engine: op %d: %w", base+l, laps[l].err)
			}
			busy := laps[l].busy + cfg.SyscallCycles
			res.BusyCycles += busy
			res.WaitCycles += laps[l].wait
			res.Blocks += laps[l].blocks
			res.ChainedBlocks += laps[l].chained
			res.IndirectChained += laps[l].indirect

			busyUs := float64(busy) / CPUHz * 1e6
			latencyUs := float64(busy+laps[l].wait) / CPUHz * 1e6
			ratePerUs := float64(cfg.Workers) / latencyUs
			if busyUs > 0 {
				if cpuRate := float64(ncpu-1) / busyUs; cpuRate < ratePerUs {
					ratePerUs = cpuRate
				}
			}
			if cfg.WireBps > 0 && cfg.BytesPerOp > 0 {
				if wireRate := cfg.WireBps / cfg.BytesPerOp / 1e6; wireRate < ratePerUs {
					ratePerUs = wireRate
				}
			}
			if err := clk.Advance(1 / ratePerUs); err != nil {
				return res, err
			}
		}

		// Trace window: with the round fully accounted, derive per-lane
		// retire summaries and counter deltas — all from state the
		// accounting pass already collected, so tracing costs nothing
		// when off and no simulated cycles ever.
		if e.tr != nil {
			e.traceRound(clk, laps[:n])
		}

		// Interrupt window: with the round fully accounted and every vCPU
		// still quiescent, publish the clock, step coalescing timers, and
		// deliver pending lines to their ISRs.
		if err := e.serviceIRQs(clk, &res, false); err != nil {
			return res, err
		}
		if e.tr != nil {
			e.tr.Barrier()
		}
	}

	// Final flush: force coalescing timers so frames still pending below
	// their thresholds are signalled and drained before metrics derive.
	if err := e.serviceIRQs(clk, &res, true); err != nil {
		return res, err
	}
	if e.tr != nil {
		e.tr.Barrier()
	}

	elapsedUs := clk.NowUs()
	res.ElapsedSec = elapsedUs / 1e6
	if res.ElapsedSec > 0 {
		res.OpsPerSec = float64(cfg.Ops) / res.ElapsedSec
		res.MBPerSec = res.OpsPerSec * cfg.BytesPerOp / 1e6
	}
	res.AvgOpMicros = elapsedUs / float64(cfg.Ops)
	totalCycles := float64(ncpu) * res.ElapsedSec * CPUHz
	if totalCycles > 0 {
		// Worker busy time is per-op busy × ops (all workers included:
		// each op's busy cycles were executed once on some core). ISR
		// time is CPU time too, like the randomizer thread's.
		res.CPUUsagePct = (float64(res.BusyCycles) + float64(res.RerandCycles) + float64(res.IRQCycles)) / totalCycles * 100
	}
	reg := obs.Default
	reg.Counter("adelie_engine_runs_total").Inc()
	reg.Counter("adelie_engine_ops_total").Add(uint64(cfg.Ops))
	reg.Counter("adelie_engine_busy_cycles_total").Add(res.BusyCycles)
	reg.Counter("adelie_engine_blocks_total").Add(res.Blocks)
	reg.Counter("adelie_engine_chained_blocks_total").Add(res.ChainedBlocks)
	reg.Counter("adelie_engine_indirect_chained_total").Add(res.IndirectChained)
	reg.Counter("adelie_engine_irqs_total").Add(res.IRQs)
	reg.Counter("adelie_engine_irq_cycles_total").Add(res.IRQCycles)
	return res, nil
}

// beginTrace arms the engine's trace state for one Run: allocates the
// non-vCPU tracks and snapshots the cumulative counters (per-lane TLB
// misses, device stats, COW detaches) that traceRound delta-samples at
// every barrier.
func (e *Engine) beginTrace(tr *obs.Tracer, lanes int) {
	e.tr = tr
	if tr == nil {
		return
	}
	e.trIRQ = tr.Track("irq")
	e.trMM = tr.Track("mm")
	e.devObs = e.devObs[:0]
	if e.Bus != nil {
		for _, d := range e.Bus.Devices() {
			if src, ok := d.(obs.StatSource); ok {
				e.devObs = append(e.devObs, engineDevObs{
					tid:  tr.Track(d.DevName()),
					src:  src,
					prev: src.ObsStats(nil),
				})
			}
		}
	}
	e.tlbPrev = make([]uint64, lanes)
	for l := range e.tlbPrev {
		_, miss, _ := e.K.CPU(l).TLB.Stats()
		e.tlbPrev[l] = miss
	}
	e.cowPrev = e.K.AS.Phys().COWDetaches()
}

// traceRound emits the round's retire summaries and counter deltas. It
// runs on the accounting goroutine with every vCPU quiescent; events
// carry the post-accounting barrier clock except where a device stamped
// an earlier raise time.
func (e *Engine) traceRound(clk *Clock, laps []lap) {
	now := uint64(clk.NowUs() * (CPUHz / 1e6))
	for l := range laps {
		lane := e.tr.Lane(l)
		// Idle lanes (no op this round) emit nothing: a narrow workload
		// on a wide machine would otherwise pay one empty summary per
		// idle vCPU per round — the dominant traced-dd cost — and the
		// gaps render more honestly in Perfetto anyway.
		if laps[l].blocks != 0 || laps[l].busy != 0 {
			args := lane.ArgBuf(4)
			args[0] = obs.ArgU("blocks", laps[l].blocks)
			args[1] = obs.ArgU("chained", laps[l].chained)
			args[2] = obs.ArgU("indirect", laps[l].indirect)
			args[3] = obs.ArgU("busy_cycles", laps[l].busy)
			lane.Emit(obs.Event{
				Clk: now, Track: l, Kind: obs.KindRound, Name: "round", Args: args,
			})
		}
		_, miss, _ := e.K.CPU(l).TLB.Stats()
		if d := miss - e.tlbPrev[l]; d > 0 {
			e.tlbPrev[l] = miss
			args := lane.ArgBuf(1)
			args[0] = obs.ArgU("misses", d)
			lane.Emit(obs.Event{
				Clk: now, Track: l, Kind: obs.KindTLB, Name: "tlb-refill", Args: args,
			})
		}
	}
	for i := range e.devObs {
		d := &e.devObs[i]
		d.cur = d.src.ObsStats(d.cur[:0])
		// Count deltas before carving arena space: most rounds most
		// devices are quiet, and a speculative carve per device per
		// round would burn arena chunks on nothing.
		n := 0
		for j := range d.cur {
			if d.cur[j].Value > d.prev[j].Value {
				n++
			}
		}
		if n > 0 {
			args := e.tr.Lane(d.tid).ArgBuf(n)[:0]
			for j := range d.cur {
				if delta := d.cur[j].Value - d.prev[j].Value; delta > 0 {
					args = append(args, obs.ArgU(d.cur[j].Name, delta))
				}
			}
			d.prev = append(d.prev[:0], d.cur...)
			e.tr.Lane(d.tid).Emit(obs.Event{
				Clk: now, Track: d.tid, Kind: obs.KindDev, Name: "dev", Args: args,
			})
		}
	}
	if cow := e.K.AS.Phys().COWDetaches(); cow != e.cowPrev {
		delta := cow - e.cowPrev
		e.cowPrev = cow
		e.tr.Lane(e.trMM).Emit(obs.Event{
			Clk: now, Track: e.trMM, Kind: obs.KindMM, Name: "cow-detach",
			Args: []obs.Arg{obs.ArgI("frames", delta)},
		})
	}
}

// serviceIRQs runs the barrier interrupt window: publish the virtual
// clock to the bus, tick coalescing timers, and drain the pending
// vector set grouped by routed target vCPU. Every target lane
// dispatches its lines in ascending line order on its own cpu.CPU —
// concurrently when the round's vectors route to more than one lane —
// and the delivery trace, counters and per-lane accounting are
// committed in (vCPU, line) order only after all lanes join, so the
// result is independent of host scheduling. With force set (end of
// measurement) it loops until the pending set is empty, so an ISR whose
// unmask re-asserts the line still drains before metrics derive.
func (e *Engine) serviceIRQs(clk *Clock, res *RunResult, force bool) error {
	if e.Bus == nil {
		return nil
	}
	now := uint64(clk.NowUs() * (CPUHz / 1e6))
	e.Bus.SetNow(now)
	ic := e.Bus.IC()
	ncpu := e.K.NumCPUs()
	for iter := 0; ; iter++ {
		if iter >= 1024 {
			return fmt.Errorf("engine: interrupt storm: lines still pending after %d flush passes", iter)
		}
		e.Bus.Tick(force)
		pending := ic.TakePending()
		if len(pending) == 0 {
			return nil
		}
		// Clamp routes to booted vCPUs, then order the set by (vCPU, line):
		// groups become contiguous runs, and the commit loop below walks
		// them in the deterministic delivery order. TakePending returned
		// the set line-ascending, so a same-vCPU pair keeps line order
		// under this stable sort.
		multi := false
		for i := range pending {
			if pending[i].VCPU < 0 || pending[i].VCPU >= ncpu {
				pending[i].VCPU = 0
			}
			if pending[i].VCPU != pending[0].VCPU {
				multi = true
			}
		}
		if multi {
			sort.SliceStable(pending, func(i, j int) bool { return pending[i].VCPU < pending[j].VCPU })
		}

		type delivery struct {
			handled bool
			cycles  uint64
			err     error
		}
		dels := make([]delivery, len(pending))
		dispatch := func(vcpu, lo, hi int) {
			c := e.K.CPU(vcpu)
			for i := lo; i < hi; i++ {
				before := c.Cycles
				handled, err := e.K.DispatchIRQ(c, pending[i].Line)
				dels[i] = delivery{handled: handled, cycles: c.Cycles - before, err: err}
				if err != nil {
					return
				}
			}
		}
		if !multi {
			// Single target lane — every legacy machine routes here (all
			// vectors on vCPU 0): sequential dispatch on the calling
			// goroutine, bit-identical to the pre-vector-table engine.
			dispatch(pending[0].VCPU, 0, len(pending))
		} else {
			var wg sync.WaitGroup
			for lo := 0; lo < len(pending); {
				hi := lo + 1
				for hi < len(pending) && pending[hi].VCPU == pending[lo].VCPU {
					hi++
				}
				wg.Add(1)
				go func(vcpu, lo, hi int) {
					defer wg.Done()
					dispatch(vcpu, lo, hi)
				}(pending[lo].VCPU, lo, hi)
				lo = hi
			}
			wg.Wait()
		}
		// Commit: trace, counters and per-lane attribution in (vCPU, line)
		// order with all lanes joined.
		for i, p := range pending {
			d := dels[i]
			if d.err != nil {
				return fmt.Errorf("engine: irq line %d (vcpu %d): %w", p.Line, p.VCPU, d.err)
			}
			if d.handled {
				res.IRQs++
				res.IRQCycles += d.cycles
				res.IRQsPerLane[p.VCPU]++
				res.IRQCyclesPerLane[p.VCPU] += d.cycles
			}
			ic.NoteDelivered(p, now, d.handled)
			if e.tr != nil {
				// Raise on the device-side irq track at the assert clock;
				// deliver→ISR-done as a span on the routed vCPU's track.
				handled := uint64(0)
				if d.handled {
					handled = 1
				}
				irqLane := e.tr.Lane(e.trIRQ)
				rargs := irqLane.ArgBuf(2)
				rargs[0] = obs.ArgU("line", uint64(p.Line))
				rargs[1] = obs.ArgU("vcpu", uint64(p.VCPU))
				irqLane.Emit(obs.Event{
					Clk: p.Since, Track: e.trIRQ, Kind: obs.KindIRQRaise,
					Name: fmt.Sprintf("raise L%d", p.Line),
					Args: rargs,
				})
				cpuLane := e.tr.Lane(p.VCPU)
				iargs := cpuLane.ArgBuf(3)
				iargs[0] = obs.ArgU("line", uint64(p.Line))
				iargs[1] = obs.ArgU("raised_at", p.Since)
				iargs[2] = obs.ArgU("handled", handled)
				cpuLane.Emit(obs.Event{
					Clk: now, Dur: d.cycles, Track: p.VCPU, Kind: obs.KindISR,
					Name: fmt.Sprintf("isr L%d", p.Line),
					Args: iargs,
				})
			}
		}
		if !force {
			return nil
		}
	}
}

// runOne executes a single operation on lane l's vCPU and measures its
// interpreted cost. Block and chain-link counts are sampled the same way
// cycles are: a lane retires whole basic blocks (chained block→block on
// hot traces) inside its round slot, and the counts are folded into the
// round's accounting at the barrier.
func (e *Engine) runOne(l int, op OpFunc) lap {
	c := e.K.CPU(l)
	before := c.Cycles
	beforeBlocks := c.Blocks
	beforeChained := c.ChainedBlocks
	beforeIndirect := c.IndirectChained
	wait, err := op(c)
	return lap{busy: c.Cycles - before, wait: wait,
		blocks: c.Blocks - beforeBlocks, chained: c.ChainedBlocks - beforeChained,
		indirect: c.IndirectChained - beforeIndirect, err: err}
}
