// Package rerand implements Adelie's continuous re-randomization policy:
// the randomizer kernel thread that periodically moves every registered
// module (paper §4.2), the per-CPU stack substitution natives wrappers
// call (§3.4 "Stacks"), and the dmesg-style statistics the paper's
// artifact reports (Randomized count, SMR Retire/Free/Delta, Stack
// Alloc/Free/Delta).
//
// Mechanism (zero-copy remap, GOT reallocation, key rotation, delayed
// unmap) lives in internal/kernel; this package decides when to invoke it
// and owns the stack pool lifecycle.
package rerand

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"adelie/internal/cpu"
	"adelie/internal/isa"
	"adelie/internal/kernel"
	"adelie/internal/plugin"
	"adelie/internal/stackpool"
)

// Cycle-cost model for the randomizer thread itself, used by the
// simulator to charge re-randomization work to a vCPU. Values are nominal
// but proportioned so that the §5.4 scalability result (≈0.4% of one CPU
// at a 20 ms period for a handful of modules) is reproducible.
const (
	CostBase     = 1500 // fixed per module move (bookkeeping, rng, retire)
	CostPerPage  = 400  // PTE install + shootdown amortization per page
	CostPerEntry = 15   // one GOT slot rewrite
	CostPerStack = 120  // stack list swap / release
)

// Randomizer is the re-randomizer "kthread".
type Randomizer struct {
	K    *kernel.Kernel
	Pool *stackpool.Pool

	mu      sync.Mutex
	modules []*kernel.Module

	randomized atomic.Int64 // total module moves ("Randomized N times")
	cycles     atomic.Uint64
}

// New creates a randomizer, registers the stack-substitution natives
// (get_new_stack / return_old_stack) with the kernel, and returns it.
// It must be constructed before loading modules that use stack
// re-randomization, so their imports resolve.
func New(k *kernel.Kernel) *Randomizer {
	r := &Randomizer{
		K:    k,
		Pool: stackpool.New(k.NumCPUs(), k.AllocStack, k.FreeStack),
	}
	r.installStackNatives(func(name string, cost uint64, fn func(*cpu.CPU) error) error {
		k.DefineNative(name, cost, fn)
		return nil
	})
	return r
}

// Fork returns a randomizer for a forked kernel: the stack pool is
// cloned (the queued top-of-stack VAs carry over — forking preserves
// all mappings), the module list is remapped to the fork kernel's
// module copies by name, counters are carried over, and the
// stack-substitution natives are rebound so their closures capture the
// fork's pool instead of the template's.
func Fork(nk *kernel.Kernel, tmpl *Randomizer) (*Randomizer, error) {
	r := &Randomizer{
		K:    nk,
		Pool: tmpl.Pool.Clone(nk.AllocStack, nk.FreeStack),
	}
	tmpl.mu.Lock()
	mods := append([]*kernel.Module(nil), tmpl.modules...)
	tmpl.mu.Unlock()
	for _, m := range mods {
		nm, ok := nk.Module(m.Name)
		if !ok {
			return nil, fmt.Errorf("rerand: fork: module %s missing from forked kernel", m.Name)
		}
		r.modules = append(r.modules, nm)
	}
	r.randomized.Store(tmpl.randomized.Load())
	r.cycles.Store(tmpl.cycles.Load())
	if err := r.installStackNatives(nk.RebindNative); err != nil {
		return nil, fmt.Errorf("rerand: fork: %w", err)
	}
	return r, nil
}

// installStackNatives registers (or, during fork, rebinds) the two
// stack-substitution natives as closures over this randomizer's pool.
func (r *Randomizer) installStackNatives(define func(string, uint64, func(*cpu.CPU) error) error) error {
	// get_new_stack (paper Fig. 3b): save the current stack position in
	// %rbp, dequeue a stack from the per-CPU list (allocating on demand)
	// and continue on it. The native also migrates its own return
	// address, which the calling convention left on the old stack.
	if err := define(plugin.SymGetNewStack, 40, func(c *cpu.CPU) error {
		ret, err := c.Pop() // return address pushed by the wrapper's call
		if err != nil {
			return err
		}
		old := c.Regs[isa.RSP]
		top, err := r.Pool.Get(c.ID)
		if err != nil {
			return err
		}
		c.Regs[isa.RBP] = old // %rbp = %rsp (saved old stack)
		c.Regs[isa.RSP] = top
		return c.Push(ret)
	}); err != nil {
		return err
	}

	// return_old_stack: push the (now balanced) stack back on the per-CPU
	// list and restore the saved position from %rbp.
	return define(plugin.SymReturnOldStack, 40, func(c *cpu.CPU) error {
		ret, err := c.Pop()
		if err != nil {
			return err
		}
		r.Pool.Put(c.ID, c.Regs[isa.RSP]) // stack is at its top again
		c.Regs[isa.RSP] = c.Regs[isa.RBP] // restore old stack
		return c.Push(ret)
	})
}

// Add registers a module for continuous re-randomization.
func (r *Randomizer) Add(m *kernel.Module) error {
	if !m.Rerandomizable() {
		return fmt.Errorf("rerand: module %s was not built with the plugin", m.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.modules = append(r.modules, m)
	return nil
}

// Modules returns the registered modules.
func (r *Randomizer) Modules() []*kernel.Module {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*kernel.Module(nil), r.modules...)
}

// StepReport describes the work of one randomization pass.
type StepReport struct {
	ModulesMoved  int
	PagesRemapped uint64
	GotEntries    uint64
	StacksRetired int
	Cycles        uint64 // modeled CPU cost of the pass
}

// Step performs one full pass: every registered module is moved, and the
// per-CPU stack lists are swapped with the old stacks retired through SMR
// (freed when pending calls drain).
func (r *Randomizer) Step() (StepReport, error) {
	r.mu.Lock()
	mods := append([]*kernel.Module(nil), r.modules...)
	r.mu.Unlock()

	var rep StepReport
	for _, m := range mods {
		pagesBefore, entriesBefore := m.PagesRemapped, m.GotEntriesMoved
		if _, err := m.Rerandomize(); err != nil {
			return rep, fmt.Errorf("rerand: %s: %w", m.Name, err)
		}
		r.randomized.Add(1)
		rep.ModulesMoved++
		rep.PagesRemapped += m.PagesRemapped - pagesBefore
		rep.GotEntries += m.GotEntriesMoved - entriesBefore
	}

	// Swap stack lists; release the old stacks once no pending call can
	// still be running on one.
	old := r.Pool.SwapAll()
	rep.StacksRetired = len(old)
	if len(old) > 0 {
		pool := r.Pool
		r.K.SMR.Retire(func() { _ = pool.Release(old) })
	}

	rep.Cycles = uint64(rep.ModulesMoved)*CostBase +
		rep.PagesRemapped*CostPerPage +
		rep.GotEntries*CostPerEntry +
		uint64(rep.StacksRetired)*CostPerStack
	r.cycles.Add(rep.Cycles)
	return rep, nil
}

// Run drives Step on a wall-clock period until the context is cancelled —
// the "randomizer kthread" of §4.2. Most experiments instead call Step
// from the simulator's clock for determinism.
func (r *Randomizer) Run(ctx context.Context, period time.Duration) error {
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			if _, err := r.Step(); err != nil {
				return err
			}
		}
	}
}

// Stats aggregates the counters the artifact's dmesg output reports.
type Stats struct {
	Randomized int64
	SMRRetired int64
	SMRFreed   int64
	StackAlloc int64
	StackFree  int64
	Cycles     uint64
}

// Stats returns the current counters.
func (r *Randomizer) Stats() Stats {
	smr := r.K.SMR.Stats()
	st := r.Pool.Stats()
	return Stats{
		Randomized: r.randomized.Load(),
		SMRRetired: smr.Retired,
		SMRFreed:   smr.Freed,
		StackAlloc: st.Allocs,
		StackFree:  st.Frees,
		Cycles:     r.cycles.Load(),
	}
}

// LogDmesg writes the artifact-style status block to the kernel log:
//
//	Randomized 53 times
//	SMR Retire: 106 / SMR Free: 106 / SMR Delta: 0
//	Stack Alloc: 530 / Stack Free: 530 / Stack Delta: 0
func (r *Randomizer) LogDmesg() {
	s := r.Stats()
	r.K.Printk("-----")
	r.K.Printk(fmt.Sprintf("Randomized %d times", s.Randomized))
	r.K.Printk(fmt.Sprintf("SMR Retire: %d", s.SMRRetired))
	r.K.Printk(fmt.Sprintf("SMR Free: %d", s.SMRFreed))
	r.K.Printk(fmt.Sprintf("SMR Delta: %d", s.SMRRetired-s.SMRFreed))
	r.K.Printk(fmt.Sprintf("Stack Alloc: %d", s.StackAlloc))
	r.K.Printk(fmt.Sprintf("Stack Free: %d", s.StackFree))
	r.K.Printk(fmt.Sprintf("Stack Delta: %d", s.StackAlloc-s.StackFree))
}
