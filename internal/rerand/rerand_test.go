package rerand

import (
	"context"
	"strings"
	"testing"
	"time"

	"adelie/internal/isa"
	"adelie/internal/kcc"
	"adelie/internal/kernel"
	"adelie/internal/plugin"
)

// counterDriver is a small driver whose exported entry increments and
// returns a counter — observable state across re-randomizations.
func counterDriver() *kcc.Module {
	m := &kcc.Module{Name: "ctr"}
	m.AddFunc("bump_helper", false,
		kcc.ArithImm(kcc.OpAdd, isa.RAX, 1),
		kcc.Ret(),
	)
	m.AddFunc("ctr_ioctl", true,
		kcc.GlobalLoad(isa.RAX, "count"),
		kcc.Call("bump_helper"),
		kcc.GlobalStore("count", isa.RAX),
		kcc.Ret(),
	)
	m.AddGlobal(kcc.Global{Name: "count", Size: 8, Init: make([]byte, 8)})
	return m
}

// setup boots a kernel, creates the randomizer, builds and loads the
// driver with the given plugin options, and registers it.
func setup(t *testing.T, opts plugin.Options) (*kernel.Kernel, *Randomizer, *kernel.Module, uint64) {
	t.Helper()
	k, err := kernel.New(kernel.Config{NumCPUs: 4, Seed: 99, KASLR: kernel.KASLRFull64})
	if err != nil {
		t.Fatal(err)
	}
	r := New(k)
	obj, err := plugin.Build(counterDriver(), opts)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := k.Load(obj)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Add(mod); err != nil {
		t.Fatal(err)
	}
	va, ok := k.Symbol("ctr_ioctl")
	if !ok {
		t.Fatal("ctr_ioctl not exported")
	}
	return k, r, mod, va
}

func allOptionCombos() map[string]plugin.Options {
	return map[string]plugin.Options{
		"plain":         {},
		"retpoline":     {Retpoline: true},
		"stack":         {StackRerand: true},
		"encrypt":       {RetEncrypt: true},
		"stack+encrypt": {StackRerand: true, RetEncrypt: true},
		"full":          {Retpoline: true, StackRerand: true, RetEncrypt: true},
	}
}

func TestEndToEndAcrossRerandomization(t *testing.T) {
	for name, opts := range allOptionCombos() {
		t.Run(name, func(t *testing.T) {
			k, r, mod, va := setup(t, opts)
			c := k.CPU(0)
			want := uint64(0)
			for round := 0; round < 8; round++ {
				for i := 0; i < 3; i++ {
					got, err := c.Call(va)
					if err != nil {
						t.Fatalf("round %d call %d: %v", round, i, err)
					}
					want++
					if got != want {
						t.Fatalf("round %d: counter = %d, want %d", round, got, want)
					}
				}
				base := mod.Base()
				rep, err := r.Step()
				if err != nil {
					t.Fatal(err)
				}
				if rep.ModulesMoved != 1 || mod.Base() == base {
					t.Fatalf("round %d: module did not move (rep %+v)", round, rep)
				}
			}
			// With no pending calls everything drains.
			k.SMR.Flush()
			if d := k.SMR.Stats().Delta(); d != 0 {
				t.Fatalf("SMR delta = %d after drain", d)
			}
		})
	}
}

func TestStackSwapHappens(t *testing.T) {
	k, r, _, va := setup(t, plugin.Options{StackRerand: true})
	c := k.CPU(0)
	if _, err := c.Call(va); err != nil {
		t.Fatal(err)
	}
	st := r.Pool.Stats()
	if st.Gets != 1 || st.Puts != 1 || st.Allocs != 1 {
		t.Fatalf("pool stats = %+v; wrapper did not swap stacks", st)
	}
	// Second call reuses the pooled stack.
	if _, err := c.Call(va); err != nil {
		t.Fatal(err)
	}
	if st := r.Pool.Stats(); st.Allocs != 1 {
		t.Fatalf("allocs = %d, want 1 (LIFO reuse)", st.Allocs)
	}
	// After a step, the old stack is retired and freed once safe.
	if _, err := r.Step(); err != nil {
		t.Fatal(err)
	}
	k.SMR.Flush()
	if st := r.Pool.Stats(); st.Frees != 1 {
		t.Fatalf("frees = %d, want 1 after swap+drain", st.Frees)
	}
}

func TestPendingCallSurvivesRerandomization(t *testing.T) {
	// Simulates a call that was in flight when the randomizer fired: the
	// old mapping (code, GOT, key) must remain fully functional until the
	// call completes. We freeze the old movable entry address, step the
	// randomizer under an SMR pin, and invoke the old address directly.
	k, r, mod, _ := setup(t, plugin.Options{RetEncrypt: true})
	sym, ok := mod.Obj.Lookup("ctr_ioctl" + plugin.RealSuffix)
	if !ok {
		t.Fatal("real body symbol missing")
	}
	secVA, ok := mod.Movable.SectionVA(sym.Section)
	if !ok {
		t.Fatal("movable text VA unknown")
	}
	oldEntry := secVA + sym.Offset

	k.SMR.Enter(2) // pin: a pending call is "inside" the module
	if _, err := r.Step(); err != nil {
		t.Fatal(err)
	}
	// Old code path still executes — with the old key in the old GOT.
	c := k.CPU(0)
	got, err := c.Call(oldEntry)
	if err != nil {
		t.Fatalf("pending-call path through old mapping failed: %v", err)
	}
	if got != 1 {
		t.Fatalf("old-mapping call = %d, want 1", got)
	}
	k.SMR.Leave(2)
	k.SMR.Flush()
	// Now the old mapping is gone; the same address must fault.
	if _, err := c.Call(oldEntry); err == nil {
		t.Fatal("old mapping still executable after drain")
	}
}

func TestObsoleteAddressesBecomeUseless(t *testing.T) {
	// §6: hijacked addresses go stale within one period. After a step and
	// drain, every page of the old range is unmapped.
	k, r, mod, _ := setup(t, plugin.Options{})
	oldBase := mod.Base()
	pages := mod.Movable.Pages
	if _, err := r.Step(); err != nil {
		t.Fatal(err)
	}
	k.SMR.Flush()
	for pg := 0; pg < pages; pg++ {
		if _, _, ok := k.AS.Lookup(oldBase + uint64(pg)*4096); ok {
			t.Fatalf("old page %d still mapped", pg)
		}
	}
}

func TestKeyRotatesEveryStep(t *testing.T) {
	k, r, mod, _ := setup(t, plugin.Options{RetEncrypt: true})
	_ = k
	seen := map[uint64]bool{mod.Key(): true}
	for i := 0; i < 10; i++ {
		if _, err := r.Step(); err != nil {
			t.Fatal(err)
		}
		key := mod.Key()
		if seen[key] {
			t.Fatalf("key repeated at step %d", i)
		}
		seen[key] = true
	}
}

func TestStepReportCosts(t *testing.T) {
	_, r, _, _ := setup(t, plugin.Options{StackRerand: true})
	rep, err := r.Step()
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesRemapped == 0 || rep.GotEntries == 0 || rep.Cycles == 0 {
		t.Fatalf("empty step report: %+v", rep)
	}
	want := uint64(rep.ModulesMoved)*CostBase + rep.PagesRemapped*CostPerPage +
		rep.GotEntries*CostPerEntry + uint64(rep.StacksRetired)*CostPerStack
	if rep.Cycles != want {
		t.Fatalf("cycles = %d, want %d", rep.Cycles, want)
	}
}

func TestAddRejectsPlainModules(t *testing.T) {
	k, err := kernel.New(kernel.Config{NumCPUs: 2, Seed: 1, KASLR: kernel.KASLRFull64})
	if err != nil {
		t.Fatal(err)
	}
	r := New(k)
	m := &kcc.Module{Name: "plain"}
	m.AddFunc("f", true, kcc.Ret())
	obj, err := kcc.Compile(m, kcc.Options{Model: kcc.ModelPIC})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := k.Load(obj)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Add(mod); err == nil {
		t.Fatal("plain module accepted by randomizer")
	}
}

func TestLogDmesgFormat(t *testing.T) {
	k, r, _, va := setup(t, plugin.Options{StackRerand: true})
	if _, err := k.CPU(0).Call(va); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Step(); err != nil {
		t.Fatal(err)
	}
	r.LogDmesg()
	log := strings.Join(k.Dmesg(), "\n")
	for _, want := range []string{"Randomized 1 times", "SMR Retire:", "Stack Alloc:", "Stack Delta:"} {
		if !strings.Contains(log, want) {
			t.Fatalf("dmesg missing %q:\n%s", want, log)
		}
	}
}

func TestRunTicker(t *testing.T) {
	_, r, mod, _ := setup(t, plugin.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	err := r.Run(ctx, 5*time.Millisecond)
	if err != context.DeadlineExceeded {
		t.Fatalf("Run returned %v", err)
	}
	if mod.Rerandomizations == 0 {
		t.Fatal("ticker never stepped")
	}
}

func BenchmarkStep(b *testing.B) {
	k, err := kernel.New(kernel.Config{NumCPUs: 4, Seed: 5, KASLR: kernel.KASLRFull64})
	if err != nil {
		b.Fatal(err)
	}
	r := New(k)
	obj, err := plugin.Build(counterDriver(), plugin.Options{Retpoline: true, StackRerand: true, RetEncrypt: true})
	if err != nil {
		b.Fatal(err)
	}
	mod, err := k.Load(obj)
	if err != nil {
		b.Fatal(err)
	}
	if err := r.Add(mod); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Step(); err != nil {
			b.Fatal(err)
		}
		k.SMR.Flush()
	}
}
