package kcc

import (
	"fmt"
	"sort"

	"adelie/internal/elfmod"
	"adelie/internal/isa"
)

// ScratchReg is reserved for the compiler (address materialization in
// GlobalStore and similar multi-step lowerings). Driver IR must not rely
// on it surviving across instructions.
const ScratchReg = isa.R10

// RetpolineThunkPrefix names the indirect-branch thunks, mirroring the
// Linux symbol __x86_indirect_thunk_<reg> (paper §2.5).
const RetpolineThunkPrefix = "__ak64_indirect_thunk_"

// funcAlign is the alignment of function entry points; the padding NOPs
// are part of what the gadget scanner sees, as on real systems.
const funcAlign = 16

// Compile lowers a module to a relocatable object under the given options.
func Compile(m *Module, opts Options) (*elfmod.Object, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	if opts.Rerandomizable && opts.Model != ModelPIC {
		return nil, fmt.Errorf("kcc: %s: re-randomizable modules require the PIC model", m.Name)
	}
	c := &compiler{
		mod:  m,
		opts: opts,
		obj:  elfmod.New(m.Name),
	}
	c.obj.PIC = opts.Model == ModelPIC
	c.obj.Retpoline = opts.Retpoline
	c.obj.Rerandomizable = opts.Rerandomizable
	if err := c.run(); err != nil {
		return nil, err
	}
	if err := c.obj.Validate(); err != nil {
		return nil, fmt.Errorf("kcc: %s: produced invalid object: %w", m.Name, err)
	}
	return c.obj, nil
}

type compiler struct {
	mod  *Module
	opts Options
	obj  *elfmod.Object

	text      sectionBuf
	fixedText sectionBuf
	data      sectionBuf
	rodata    sectionBuf
	bssSize   uint64
	bssSyms   []elfmod.Symbol // offsets assigned during layout

	// pending relocations use section-kind + offset until section indexes
	// are known at assembly time.
	relocs []pendingReloc
}

type pendingReloc struct {
	secKind elfmod.SectionKind
	offset  uint64
	typ     elfmod.RelocType
	sym     string
	addend  int64
}

type sectionBuf struct {
	bytes []byte
	syms  []elfmod.Symbol // Section field filled at assembly time
}

func (s *sectionBuf) align(n int, pad byte) {
	for len(s.bytes)%n != 0 {
		s.bytes = append(s.bytes, pad)
	}
}

func (c *compiler) run() error {
	// Retpoline thunks are generated lazily per (register, section) as
	// indirect calls are lowered, then appended after user functions.
	thunksNeeded := map[string]thunkReq{}

	for _, f := range c.mod.Funcs {
		sec := &c.text
		kind := elfmod.SecText
		if f.InFixedText {
			sec = &c.fixedText
			kind = elfmod.SecFixedText
		}
		if err := c.compileFunc(f, sec, kind, thunksNeeded); err != nil {
			return err
		}
	}

	// Emit the thunks (deterministic order for reproducible images).
	names := make([]string, 0, len(thunksNeeded))
	for n := range thunksNeeded {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		req := thunksNeeded[n]
		sec, kind := &c.text, elfmod.SecText
		if req.fixed {
			sec, kind = &c.fixedText, elfmod.SecFixedText
		}
		c.emitThunk(n, req.reg, sec, kind)
	}

	// Globals.
	for _, g := range c.mod.Globals {
		if err := c.compileGlobal(g); err != nil {
			return err
		}
	}

	return c.assemble()
}

type thunkReq struct {
	reg   isa.Reg
	fixed bool
}

// thunkName returns the section-specific thunk symbol for reg.
func thunkName(reg isa.Reg, fixed bool) string {
	n := RetpolineThunkPrefix + reg.String()
	if fixed {
		n += ".fixed"
	}
	return n
}

// emitThunk writes a retpoline thunk: the return-trampoline construct that
// redirects an indirect branch through a RET so the indirect-branch
// predictor is never consulted (paper §2.5). The NOPs stand in for the
// speculation-capture pause/lfence loop and charge its cost.
func (c *compiler) emitThunk(name string, reg isa.Reg, sec *sectionBuf, kind elfmod.SectionKind) {
	sec.align(funcAlign, byte(isa.OpNOP))
	start := uint64(len(sec.bytes))
	sec.bytes = isa.Inst{Op: isa.OpPUSH, R1: reg}.Append(sec.bytes)
	sec.bytes = isa.Inst{Op: isa.OpNOP}.Append(sec.bytes)
	sec.bytes = isa.Inst{Op: isa.OpNOP}.Append(sec.bytes)
	sec.bytes = isa.Inst{Op: isa.OpRET}.Append(sec.bytes)
	sec.syms = append(sec.syms, elfmod.Symbol{
		Name: name, Offset: start, Size: uint64(len(sec.bytes)) - start,
		Bind: elfmod.BindLocal, Kind: elfmod.SymFunc,
	})
	_ = kind
}

func (c *compiler) compileFunc(f *Func, sec *sectionBuf, kind elfmod.SectionKind, thunks map[string]thunkReq) error {
	sec.align(funcAlign, byte(isa.OpNOP))
	start := uint64(len(sec.bytes))

	labels := map[string]uint64{} // label → section offset
	type fixup struct {
		at    uint64 // offset of the rel32 field within the section
		label string
	}
	var fixups []fixup

	emit := func(in isa.Inst) {
		sec.bytes = in.Append(sec.bytes)
	}
	here := func() uint64 { return uint64(len(sec.bytes)) }

	for i, in := range f.Body {
		switch in.Kind {
		case ILabel:
			labels[in.Label] = here()

		case IMovImm:
			if in.Imm >= -1<<31 && in.Imm < 1<<31 {
				emit(isa.Inst{Op: isa.OpMOVI, R1: in.Dst, Imm: in.Imm})
			} else {
				emit(isa.Inst{Op: isa.OpMOVABS, R1: in.Dst, Imm: in.Imm})
			}

		case IMovReg:
			emit(isa.Inst{Op: isa.OpMOV, R1: in.Dst, R2: in.Src})

		case ILoad:
			emit(isa.Inst{Op: isa.OpLOAD, R1: in.Dst, R2: in.Src, Disp: in.Off})

		case IStore:
			emit(isa.Inst{Op: isa.OpSTORE, R1: in.Src, R2: in.Dst, Disp: in.Off})

		case IXorMem:
			emit(isa.Inst{Op: isa.OpXORM, R1: in.Src, R2: in.Dst, Disp: in.Off})

		case IGlobalAddr:
			c.emitAddrOf(sec, kind, in.Dst, in.Sym)

		case IGotLoad:
			if c.opts.Model != ModelPIC {
				return fmt.Errorf("func %q: GOT load of %q requires the PIC model", f.Name, in.Sym)
			}
			c.reloc(kind, here()+2, elfmod.RelGOTPCREL, in.Sym, -4)
			emit(isa.Inst{Op: isa.OpLDRIP, R1: in.Dst})

		case IGlobalLoad:
			c.emitAddrOf(sec, kind, in.Dst, in.Sym)
			emit(isa.Inst{Op: isa.OpLOAD, R1: in.Dst, R2: in.Dst})

		case IGlobalStore:
			c.emitAddrOf(sec, kind, ScratchReg, in.Sym)
			emit(isa.Inst{Op: isa.OpSTORE, R1: in.Src, R2: ScratchReg})

		case ICall:
			switch {
			case c.opts.Model == ModelAbsolute:
				// Direct rel32 call: the loader guarantees modules load
				// within ±2 GB of the kernel in this model.
				c.reloc(kind, here()+1, elfmod.RelPC32, in.Sym, -4)
				emit(isa.Inst{Op: isa.OpCALL})
			case c.opts.Retpoline:
				// call foo@PLT: patched by the loader to a direct call
				// for local symbols, kept as a PLT stub otherwise
				// (paper Fig. 4, "With PLT" rows).
				c.reloc(kind, here()+1, elfmod.RelPLT32, in.Sym, -4)
				emit(isa.Inst{Op: isa.OpCALL})
			default:
				// call *foo@GOTPCREL(%rip): patched to a direct call for
				// local symbols (paper Fig. 4, "No PLT" rows).
				c.reloc(kind, here()+1, elfmod.RelGOTPCREL, in.Sym, -4)
				emit(isa.Inst{Op: isa.OpCALLM})
			}

		case ICallReg:
			if c.opts.Retpoline {
				tn := thunkName(in.Src, kind == elfmod.SecFixedText)
				thunks[tn] = thunkReq{reg: in.Src, fixed: kind == elfmod.SecFixedText}
				c.reloc(kind, here()+1, elfmod.RelPC32, tn, -4)
				emit(isa.Inst{Op: isa.OpCALL})
			} else {
				emit(isa.Inst{Op: isa.OpCALLR, R1: in.Src})
			}

		case IArith:
			op, ok := arithRegOps[in.Op]
			if !ok {
				return fmt.Errorf("func %q: instruction %d: arith op %d has no register form", f.Name, i, in.Op)
			}
			emit(isa.Inst{Op: op, R1: in.Dst, R2: in.Src})

		case IArithImm:
			op, ok := arithImmOps[in.Op]
			if !ok {
				return fmt.Errorf("func %q: instruction %d: arith op %d has no immediate form", f.Name, i, in.Op)
			}
			emit(isa.Inst{Op: op, R1: in.Dst, Imm: in.Imm})

		case ICmp:
			emit(isa.Inst{Op: isa.OpCMP, R1: in.Dst, R2: in.Src})

		case ICmpImm:
			emit(isa.Inst{Op: isa.OpCMPI, R1: in.Dst, Imm: in.Imm})

		case IJmp:
			fixups = append(fixups, fixup{at: here() + 1, label: in.Label})
			emit(isa.Inst{Op: isa.OpJMP})

		case IBr:
			fixups = append(fixups, fixup{at: here() + 1, label: in.Label})
			emit(isa.Inst{Op: condOps[in.Cond]})

		case IPush:
			emit(isa.Inst{Op: isa.OpPUSH, R1: in.Src})

		case IPop:
			emit(isa.Inst{Op: isa.OpPOP, R1: in.Dst})

		case IRet:
			emit(isa.Inst{Op: isa.OpRET})

		default:
			return fmt.Errorf("func %q: unknown instruction kind %d", f.Name, in.Kind)
		}
	}

	// Patch label fixups: rel32 = label - (field + 4).
	for _, fx := range fixups {
		target, ok := labels[fx.label]
		if !ok {
			return fmt.Errorf("func %q: undefined label %q", f.Name, fx.label)
		}
		rel := int64(target) - int64(fx.at+4)
		if rel < -1<<31 || rel >= 1<<31 {
			return fmt.Errorf("func %q: branch to %q out of rel32 range", f.Name, fx.label)
		}
		putI32(sec.bytes, fx.at, int32(rel))
	}

	bind := elfmod.BindLocal
	if f.Export {
		bind = elfmod.BindGlobal
	}
	sec.syms = append(sec.syms, elfmod.Symbol{
		Name: f.Name, Offset: start, Size: uint64(len(sec.bytes)) - start,
		Bind: bind, Kind: elfmod.SymFunc, Wrapper: f.Wrapper,
	})
	return nil
}

// emitAddrOf materializes &sym into dst under the active code model.
func (c *compiler) emitAddrOf(sec *sectionBuf, kind elfmod.SectionKind, dst isa.Reg, sym string) {
	here := uint64(len(sec.bytes))
	if c.opts.Model == ModelAbsolute {
		// movabs $sym, dst with a 64-bit absolute relocation.
		c.reloc(kind, here+2, elfmod.RelAbs64, sym, 0)
		sec.bytes = isa.Inst{Op: isa.OpMOVABS, R1: dst}.Append(sec.bytes)
		return
	}
	// mov sym@GOTPCREL(%rip), dst — reads the symbol's address from its
	// GOT slot; the loader rewrites this to lea sym(%rip), dst when the
	// symbol turns out to be local (paper Fig. 4, last row).
	c.reloc(kind, here+2, elfmod.RelGOTPCREL, sym, -4)
	sec.bytes = isa.Inst{Op: isa.OpLDRIP, R1: dst}.Append(sec.bytes)
}

func (c *compiler) reloc(kind elfmod.SectionKind, off uint64, typ elfmod.RelocType, sym string, addend int64) {
	c.relocs = append(c.relocs, pendingReloc{secKind: kind, offset: off, typ: typ, sym: sym, addend: addend})
}

func (c *compiler) compileGlobal(g *Global) error {
	var sec *sectionBuf
	var kind elfmod.SectionKind
	switch {
	case g.Init == nil:
		// .bss: offsets assigned during assembly.
		bind := elfmod.BindLocal
		if g.Export {
			bind = elfmod.BindGlobal
		}
		// Align to 8.
		c.bssSize = (c.bssSize + 7) &^ 7
		c.bssSyms = append(c.bssSyms, elfmod.Symbol{
			Name: g.Name, Offset: c.bssSize, Size: g.Size,
			Bind: bind, Kind: elfmod.SymObject,
		})
		c.bssSize += g.Size
		if len(g.Relocs) > 0 {
			return fmt.Errorf("kcc: global %q: .bss cannot carry relocations", g.Name)
		}
		return nil
	case g.ReadOnly:
		sec, kind = &c.rodata, elfmod.SecROData
	default:
		sec, kind = &c.data, elfmod.SecData
	}
	sec.align(8, 0)
	start := uint64(len(sec.bytes))
	sec.bytes = append(sec.bytes, g.Init...)
	bind := elfmod.BindLocal
	if g.Export {
		bind = elfmod.BindGlobal
	}
	sec.syms = append(sec.syms, elfmod.Symbol{
		Name: g.Name, Offset: start, Size: g.Size,
		Bind: bind, Kind: elfmod.SymObject,
	})
	for _, dr := range g.Relocs {
		if dr.Offset+8 > g.Size {
			return fmt.Errorf("kcc: global %q: data reloc at %d overruns size %d", g.Name, dr.Offset, g.Size)
		}
		c.reloc(kind, start+dr.Offset, elfmod.RelAbs64, dr.Sym, 0)
	}
	return nil
}

// assemble materializes the buffered sections, symbols and relocations
// into the output object.
func (c *compiler) assemble() error {
	secIdx := map[elfmod.SectionKind]int{}
	addSec := func(kind elfmod.SectionKind, buf *sectionBuf) {
		if len(buf.bytes) == 0 && len(buf.syms) == 0 {
			return
		}
		idx := c.obj.AddSection(kind, buf.bytes)
		secIdx[kind] = idx
		for _, s := range buf.syms {
			s.Section = idx
			if _, err := c.obj.AddSymbol(s); err != nil {
				panic(err) // duplicates rejected by validate() earlier
			}
		}
	}
	addSec(elfmod.SecText, &c.text)
	addSec(elfmod.SecFixedText, &c.fixedText)
	addSec(elfmod.SecROData, &c.rodata)
	addSec(elfmod.SecData, &c.data)
	if c.bssSize > 0 || len(c.bssSyms) > 0 {
		idx := c.obj.AddBSS(c.bssSize)
		secIdx[elfmod.SecBSS] = idx
		for _, s := range c.bssSyms {
			s.Section = idx
			if _, err := c.obj.AddSymbol(s); err != nil {
				panic(err)
			}
		}
	}
	for _, pr := range c.relocs {
		idx, ok := secIdx[pr.secKind]
		if !ok {
			return fmt.Errorf("kcc: relocation against missing section %v", pr.secKind)
		}
		c.obj.AddReloc(elfmod.Reloc{
			Section: idx, Offset: pr.offset, Type: pr.typ,
			Symbol: c.obj.SymbolRef(pr.sym), Addend: pr.addend,
		})
	}
	return nil
}

func putI32(b []byte, off uint64, v int32) {
	b[off] = byte(v)
	b[off+1] = byte(v >> 8)
	b[off+2] = byte(v >> 16)
	b[off+3] = byte(v >> 24)
}
