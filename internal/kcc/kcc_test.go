package kcc

import (
	"strings"
	"testing"

	"adelie/internal/elfmod"
	"adelie/internal/isa"
)

// testModule returns a module exercising every lowering path.
func testModule() *Module {
	m := &Module{Name: "testmod"}
	m.AddFunc("leaf", false,
		MovImm(isa.RAX, 42),
		Ret(),
	)
	m.AddFunc("entry", true,
		Push(isa.RBX),
		MovImm(isa.RBX, 0),
		Label("loop"),
		ArithImm(OpAdd, isa.RBX, 1),
		CmpImm(isa.RBX, 10),
		Br(CondLT, "loop"),
		Call("leaf"),
		Call("kmalloc"), // kernel import
		GlobalAddr(isa.RDI, "counter"),
		GlobalLoad(isa.RSI, "counter"),
		ArithImm(OpAdd, isa.RSI, 1),
		GlobalStore("counter", isa.RSI),
		MovReg(isa.RAX, isa.RBX),
		Pop(isa.RBX),
		Ret(),
	)
	m.AddFunc("dispatch", true,
		GlobalAddr(isa.RAX, "leaf"),
		CallReg(isa.RAX),
		Ret(),
	)
	m.AddGlobal(Global{Name: "counter", Size: 8, Init: make([]byte, 8)})
	m.AddGlobal(Global{Name: "scratchbuf", Size: 256})
	m.AddGlobal(Global{Name: "banner", Size: 6, Init: []byte("hello\x00"), ReadOnly: true})
	m.AddGlobal(Global{
		Name: "ops", Size: 16, Init: make([]byte, 16), Export: true,
		Relocs: []DataReloc{{Offset: 0, Sym: "entry"}, {Offset: 8, Sym: "dispatch"}},
	})
	return m
}

func compileAll(t *testing.T) map[string]*elfmod.Object {
	t.Helper()
	out := map[string]*elfmod.Object{}
	for name, opts := range map[string]Options{
		"abs":           {Model: ModelAbsolute},
		"abs-ret":       {Model: ModelAbsolute, Retpoline: true},
		"pic":           {Model: ModelPIC},
		"pic-ret":       {Model: ModelPIC, Retpoline: true},
		"pic-ret-rernd": {Model: ModelPIC, Retpoline: true, Rerandomizable: true},
	} {
		obj, err := Compile(testModule(), opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = obj
	}
	return out
}

func TestCompileProducesValidObjects(t *testing.T) {
	for name, obj := range compileAll(t) {
		if err := obj.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if _, err := elfmod.Decode(obj.Encode()); err != nil {
			t.Errorf("%s: round trip: %v", name, err)
		}
	}
}

func relocTypes(obj *elfmod.Object, sec elfmod.SectionKind) map[elfmod.RelocType]int {
	out := map[elfmod.RelocType]int{}
	for _, r := range obj.Relocs {
		if obj.Sections[r.Section].Kind == sec {
			out[r.Type]++
		}
	}
	return out
}

func TestAbsoluteModelUsesAbs64AndPC32(t *testing.T) {
	objs := compileAll(t)
	rt := relocTypes(objs["abs"], elfmod.SecText)
	if rt[elfmod.RelAbs64] == 0 {
		t.Error("absolute model should emit ABS64 for global addresses")
	}
	if rt[elfmod.RelPC32] == 0 {
		t.Error("absolute model should emit PC32 for calls")
	}
	if rt[elfmod.RelGOTPCREL] != 0 || rt[elfmod.RelPLT32] != 0 {
		t.Errorf("absolute model must not use GOT/PLT: %v", rt)
	}
}

func TestPICModelUsesGOT(t *testing.T) {
	objs := compileAll(t)
	rt := relocTypes(objs["pic"], elfmod.SecText)
	if rt[elfmod.RelGOTPCREL] == 0 {
		t.Error("PIC model should emit GOTPCREL")
	}
	if rt[elfmod.RelAbs64] != 0 {
		t.Errorf("PIC text must not contain ABS64 relocations: %v", rt)
	}
}

func TestRetpolineUsesPLTForCalls(t *testing.T) {
	objs := compileAll(t)
	rt := relocTypes(objs["pic-ret"], elfmod.SecText)
	if rt[elfmod.RelPLT32] == 0 {
		t.Error("retpoline PIC build should route calls through PLT32")
	}
	// Non-retpoline PIC keeps GOT-indirect call instructions instead.
	noRet := relocTypes(objs["pic"], elfmod.SecText)
	if noRet[elfmod.RelPLT32] != 0 {
		t.Error("non-retpoline build must not emit PLT32")
	}
}

func TestRetpolineEmitsThunks(t *testing.T) {
	objs := compileAll(t)
	if _, ok := objs["pic-ret"].Lookup(RetpolineThunkPrefix + "rax"); !ok {
		t.Error("retpoline build missing indirect thunk for rax")
	}
	if _, ok := objs["pic"].Lookup(RetpolineThunkPrefix + "rax"); ok {
		t.Error("non-retpoline build should not contain thunks")
	}
	// The thunk itself must be the push/ret return trampoline.
	obj := objs["pic-ret"]
	sym, _ := obj.Lookup(RetpolineThunkPrefix + "rax")
	code := obj.Sections[sym.Section].Data[sym.Offset : sym.Offset+sym.Size]
	in, err := isa.Decode(code)
	if err != nil || in.Op != isa.OpPUSH || in.R1 != isa.RAX {
		t.Fatalf("thunk starts with %v (err %v), want push %%rax", in, err)
	}
	if code[len(code)-1] != byte(isa.OpRET) {
		t.Fatal("thunk must end in ret")
	}
}

func TestIndirectCallWithoutRetpolineIsDirectIndirect(t *testing.T) {
	obj, err := Compile(testModule(), Options{Model: ModelPIC})
	if err != nil {
		t.Fatal(err)
	}
	sym, ok := obj.Lookup("dispatch")
	if !ok {
		t.Fatal("dispatch not found")
	}
	code := obj.Sections[sym.Section].Data[sym.Offset : sym.Offset+sym.Size]
	found := false
	for off := 0; off < len(code); {
		in, err := isa.Decode(code[off:])
		if err != nil {
			break
		}
		if in.Op == isa.OpCALLR {
			found = true
		}
		off += in.Len
	}
	if !found {
		t.Fatal("no call *%reg in non-retpoline dispatch")
	}
}

func TestPICCodeIsLargerThanAbsolute(t *testing.T) {
	// Fig. 5a's premise at microscale: GOT indirection and (with
	// retpoline) PLT stubs make PIC modules somewhat larger. In AK64 the
	// LDRIP (6B) vs MOVABS (10B) encodings actually favour PIC for
	// address materialization, but thunks and GOT slots still add up.
	// What we pin here is just that the size accounting moves when the
	// model changes.
	objs := compileAll(t)
	if objs["pic-ret"].TotalSize() == objs["abs"].TotalSize() {
		t.Error("expected code model change to change the image size")
	}
}

func TestGotLoadRequiresPIC(t *testing.T) {
	m := &Module{Name: "m"}
	m.AddFunc("f", true, GotLoad(isa.R11, "__rerand_key"), Ret())
	if _, err := Compile(m, Options{Model: ModelAbsolute}); err == nil {
		t.Fatal("GotLoad under absolute model must fail")
	}
	if _, err := Compile(m, Options{Model: ModelPIC}); err != nil {
		t.Fatal(err)
	}
}

func TestRerandomizableRequiresPIC(t *testing.T) {
	m := &Module{Name: "m"}
	m.AddFunc("f", true, Ret())
	if _, err := Compile(m, Options{Model: ModelAbsolute, Rerandomizable: true}); err == nil {
		t.Fatal("re-randomizable absolute module must be rejected")
	}
}

func TestBranchTargetsResolve(t *testing.T) {
	m := &Module{Name: "m"}
	m.AddFunc("spin", true,
		MovImm(isa.RCX, 3),
		Label("top"),
		ArithImm(OpSub, isa.RCX, 1),
		CmpImm(isa.RCX, 0),
		Br(CondNE, "top"),
		Jmp("out"),
		MovImm(isa.RAX, 99), // skipped
		Label("out"),
		MovImm(isa.RAX, 7),
		Ret(),
	)
	obj, err := Compile(m, Options{Model: ModelPIC})
	if err != nil {
		t.Fatal(err)
	}
	sym, _ := obj.Lookup("spin")
	code := obj.Sections[sym.Section].Data[sym.Offset : sym.Offset+sym.Size]
	// Decode fully: every branch displacement must land inside the func.
	for off := 0; off < len(code); {
		in, err := isa.Decode(code[off:])
		if err != nil {
			t.Fatalf("decode at %d: %v", off, err)
		}
		if in.Op == isa.OpJNE || in.Op == isa.OpJMP {
			tgt := int64(off) + int64(in.Len) + int64(in.Disp)
			if tgt < 0 || tgt > int64(len(code)) {
				t.Fatalf("branch at %d targets %d, outside [0,%d]", off, tgt, len(code))
			}
		}
		off += in.Len
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		mod  func() *Module
		want string
	}{
		{"empty body", func() *Module {
			m := &Module{Name: "m"}
			m.Funcs = append(m.Funcs, &Func{Name: "f"})
			return m
		}, "empty body"},
		{"no return", func() *Module {
			m := &Module{Name: "m"}
			m.AddFunc("f", true, MovImm(isa.RAX, 1))
			return m
		}, "never returns"},
		{"undefined label", func() *Module {
			m := &Module{Name: "m"}
			m.AddFunc("f", true, Jmp("nowhere"), Ret())
			return m
		}, "undefined label"},
		{"duplicate label", func() *Module {
			m := &Module{Name: "m"}
			m.AddFunc("f", true, Label("a"), Label("a"), Ret())
			return m
		}, "duplicate label"},
		{"duplicate symbol", func() *Module {
			m := &Module{Name: "m"}
			m.AddFunc("f", true, Ret())
			m.AddFunc("f", true, Ret())
			return m
		}, "duplicate symbol"},
		{"global init mismatch", func() *Module {
			m := &Module{Name: "m"}
			m.AddFunc("f", true, Ret())
			m.AddGlobal(Global{Name: "g", Size: 8, Init: []byte{1}})
			return m
		}, "init size"},
		{"bss reloc", func() *Module {
			m := &Module{Name: "m"}
			m.AddFunc("f", true, Ret())
			m.AddGlobal(Global{Name: "g", Size: 8, Relocs: []DataReloc{{0, "f"}}})
			return m
		}, ".bss cannot carry relocations"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.mod(), Options{Model: ModelPIC})
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("got %v, want error containing %q", err, c.want)
			}
		})
	}
}

func TestUndefinedSymbolsAreImports(t *testing.T) {
	obj, err := Compile(testModule(), Options{Model: ModelPIC})
	if err != nil {
		t.Fatal(err)
	}
	undef := obj.Undefineds()
	if len(undef) != 1 || undef[0] != "kmalloc" {
		t.Fatalf("Undefineds = %v, want [kmalloc]", undef)
	}
}

func TestDataRelocsEmitted(t *testing.T) {
	obj, err := Compile(testModule(), Options{Model: ModelPIC})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, r := range obj.Relocs {
		if obj.Sections[r.Section].Kind == elfmod.SecData && r.Type == elfmod.RelAbs64 {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("data ABS64 relocs = %d, want 2 (ops table entries)", n)
	}
}

func TestSectionAssignment(t *testing.T) {
	obj, err := Compile(testModule(), Options{Model: ModelPIC})
	if err != nil {
		t.Fatal(err)
	}
	check := func(sym string, kind elfmod.SectionKind) {
		t.Helper()
		s, ok := obj.Lookup(sym)
		if !ok {
			t.Fatalf("%s missing", sym)
		}
		if got := obj.Sections[s.Section].Kind; got != kind {
			t.Errorf("%s in %v, want %v", sym, got, kind)
		}
	}
	check("entry", elfmod.SecText)
	check("counter", elfmod.SecData)
	check("scratchbuf", elfmod.SecBSS)
	check("banner", elfmod.SecROData)
}

func TestFixedTextPlacement(t *testing.T) {
	m := &Module{Name: "m"}
	f := m.AddFunc("wrapper", true, Call("real"), Ret())
	f.InFixedText = true
	f.Wrapper = true
	m.AddFunc("real", false, Ret())
	obj, err := Compile(m, Options{Model: ModelPIC, Rerandomizable: true})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := obj.Lookup("wrapper")
	if obj.Sections[s.Section].Kind != elfmod.SecFixedText {
		t.Fatal("wrapper not placed in .fixed.text")
	}
	if !s.Wrapper {
		t.Fatal("wrapper symbol not flagged")
	}
}

func TestFunctionAlignment(t *testing.T) {
	obj, err := Compile(testModule(), Options{Model: ModelPIC})
	if err != nil {
		t.Fatal(err)
	}
	for i := range obj.Symbols {
		s := &obj.Symbols[i]
		if s.IsUndefined() || s.Kind != elfmod.SymFunc {
			continue
		}
		if s.Offset%funcAlign != 0 {
			t.Errorf("func %s at offset %d, not %d-aligned", s.Name, s.Offset, funcAlign)
		}
	}
}

func TestMovImmSelectsEncoding(t *testing.T) {
	m := &Module{Name: "m"}
	m.AddFunc("f", true,
		MovImm(isa.RAX, 1),
		MovImm(isa.RBX, 1<<40),
		Ret(),
	)
	obj, err := Compile(m, Options{Model: ModelPIC})
	if err != nil {
		t.Fatal(err)
	}
	sym, _ := obj.Lookup("f")
	code := obj.Sections[sym.Section].Data[sym.Offset:]
	in1, _ := isa.Decode(code)
	if in1.Op != isa.OpMOVI {
		t.Fatalf("small imm lowered to %v, want MOVI", in1.Op.Name())
	}
	in2, _ := isa.Decode(code[in1.Len:])
	if in2.Op != isa.OpMOVABS {
		t.Fatalf("large imm lowered to %v, want MOVABS", in2.Op.Name())
	}
}

func BenchmarkCompile(b *testing.B) {
	m := testModule()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(m, Options{Model: ModelPIC, Retpoline: true}); err != nil {
			b.Fatal(err)
		}
	}
}
