// Package kcc is the "kernel C compiler" of the reproduction: it lowers a
// small register-level IR to AK64 machine code inside an elfmod.Object.
//
// The package models the parts of the GCC toolchain the paper's mechanisms
// live in:
//
//   - code models: Absolute (vanilla kernel modules: direct rel32 calls,
//     64-bit absolute data addresses, must load within ±2 GB of the
//     kernel) and PIC (RIP-relative everything, symbol addresses fetched
//     from a GOT, calls through GOT or PLT) — paper §3.3;
//   - the Spectre-V2 retpoline mitigation: with it enabled, indirect
//     branches go through return-trampoline thunks and external calls go
//     through PLT stubs built from JMP_NOSPEC (paper §2.5, §4.1);
//   - deterministic encodings, so the loader can rewrite call sites and
//     GOT loads in place once symbol locality is known (paper Fig. 4).
//
// The plugin transform (internal/plugin) operates on this IR before
// compilation, exactly as the paper's GCC plugin operates on GCC's
// internal representation.
package kcc

import (
	"fmt"

	"adelie/internal/isa"
)

// CodeModel selects how symbol addresses are materialized.
type CodeModel uint8

const (
	// ModelAbsolute is the vanilla Linux module model: direct rel32 calls
	// (targets within ±2 GB) and movabs for data addresses. KASLR range
	// is limited to 31 bits of entropy (paper §1).
	ModelAbsolute CodeModel = iota
	// ModelPIC is Adelie's model: all symbol access is RIP-relative via
	// GOT slots; code can run anywhere in the 64-bit space.
	ModelPIC
)

func (m CodeModel) String() string {
	if m == ModelAbsolute {
		return "absolute"
	}
	return "pic"
}

// Options configure a compilation.
type Options struct {
	Model     CodeModel
	Retpoline bool
	// Rerandomizable marks the output object as plugin-transformed; set by
	// internal/plugin, never directly by drivers. Requires ModelPIC.
	Rerandomizable bool
}

// Cond is a branch condition.
type Cond uint8

const (
	CondEQ Cond = iota
	CondNE
	CondLT
	CondGE
	CondLE
	CondGT
	CondB  // unsigned below
	CondAE // unsigned above-or-equal
)

var condOps = map[Cond]isa.Op{
	CondEQ: isa.OpJE, CondNE: isa.OpJNE, CondLT: isa.OpJL, CondGE: isa.OpJGE,
	CondLE: isa.OpJLE, CondGT: isa.OpJG, CondB: isa.OpJB, CondAE: isa.OpJAE,
}

// ArithOp is a two-operand ALU operation.
type ArithOp uint8

const (
	OpAdd ArithOp = iota
	OpSub
	OpXor
	OpAnd
	OpOr
	OpMul
	OpDiv
	OpShl // immediate form only
	OpShr // immediate form only
)

var arithRegOps = map[ArithOp]isa.Op{
	OpAdd: isa.OpADD, OpSub: isa.OpSUB, OpXor: isa.OpXOR,
	OpAnd: isa.OpAND, OpOr: isa.OpOR, OpMul: isa.OpIMUL, OpDiv: isa.OpUDIV,
}

var arithImmOps = map[ArithOp]isa.Op{
	OpAdd: isa.OpADDI, OpSub: isa.OpSUBI, OpXor: isa.OpXORI,
	OpAnd: isa.OpANDI, OpShl: isa.OpSHLI, OpShr: isa.OpSHRI,
}

// InsKind enumerates IR instructions.
type InsKind uint8

const (
	ILabel       InsKind = iota // Label:
	IMovImm                     // Dst = Imm
	IMovReg                     // Dst = Src
	ILoad                       // Dst = mem64[Src + Off]
	IStore                      // mem64[Dst + Off] = Src
	IGlobalAddr                 // Dst = &Sym
	IGlobalLoad                 // Dst = *(&Sym) (64-bit value of global)
	IGlobalStore                // *(&Sym) = Src
	IGotLoad                    // Dst = GOT[Sym] — raw GOT slot contents (key load)
	ICall                       // call Sym
	ICallReg                    // call *Src
	IArith                      // Dst = Dst op Src
	IArithImm                   // Dst = Dst op Imm
	ICmp                        // flags = cmp(Dst, Src)
	ICmpImm                     // flags = cmp(Dst, Imm)
	IJmp                        // goto Label
	IBr                         // if Cond goto Label
	IPush                       // push Src
	IPop                        // pop Dst
	IXorMem                     // mem64[Dst + Off] ^= Src (return-address encryption)
	IRet                        // return
)

// Ins is one IR instruction. Fields are used according to Kind.
type Ins struct {
	Kind  InsKind
	Dst   isa.Reg
	Src   isa.Reg
	Imm   int64
	Off   int32
	Sym   string
	Label string
	Cond  Cond
	Op    ArithOp
}

// Constructor helpers keep driver code readable.

// Label marks a branch target.
func Label(name string) Ins { return Ins{Kind: ILabel, Label: name} }

// MovImm sets dst = imm.
func MovImm(dst isa.Reg, imm int64) Ins { return Ins{Kind: IMovImm, Dst: dst, Imm: imm} }

// MovReg sets dst = src.
func MovReg(dst, src isa.Reg) Ins { return Ins{Kind: IMovReg, Dst: dst, Src: src} }

// Load sets dst = mem64[base+off].
func Load(dst, base isa.Reg, off int32) Ins { return Ins{Kind: ILoad, Dst: dst, Src: base, Off: off} }

// Store sets mem64[base+off] = src.
func Store(base isa.Reg, off int32, src isa.Reg) Ins {
	return Ins{Kind: IStore, Dst: base, Off: off, Src: src}
}

// GlobalAddr sets dst = &sym.
func GlobalAddr(dst isa.Reg, sym string) Ins { return Ins{Kind: IGlobalAddr, Dst: dst, Sym: sym} }

// GlobalLoad sets dst = the 64-bit value stored at sym.
func GlobalLoad(dst isa.Reg, sym string) Ins { return Ins{Kind: IGlobalLoad, Dst: dst, Sym: sym} }

// GlobalStore stores src into the 64-bit global sym.
func GlobalStore(sym string, src isa.Reg) Ins { return Ins{Kind: IGlobalStore, Sym: sym, Src: src} }

// GotLoad sets dst = GOT[sym], the raw slot contents. For ordinary symbols
// that is the symbol's address; for the re-randomization key pseudo-symbol
// (plugin.KeySymbol) the slot holds the key itself (paper Fig. 3b).
func GotLoad(dst isa.Reg, sym string) Ins { return Ins{Kind: IGotLoad, Dst: dst, Sym: sym} }

// Call emits a direct call to sym.
func Call(sym string) Ins { return Ins{Kind: ICall, Sym: sym} }

// CallReg emits an indirect call through src.
func CallReg(src isa.Reg) Ins { return Ins{Kind: ICallReg, Src: src} }

// Arith sets dst = dst op src.
func Arith(op ArithOp, dst, src isa.Reg) Ins { return Ins{Kind: IArith, Op: op, Dst: dst, Src: src} }

// ArithImm sets dst = dst op imm.
func ArithImm(op ArithOp, dst isa.Reg, imm int64) Ins {
	return Ins{Kind: IArithImm, Op: op, Dst: dst, Imm: imm}
}

// Cmp compares two registers.
func Cmp(a, b isa.Reg) Ins { return Ins{Kind: ICmp, Dst: a, Src: b} }

// CmpImm compares a register with an immediate.
func CmpImm(a isa.Reg, imm int64) Ins { return Ins{Kind: ICmpImm, Dst: a, Imm: imm} }

// Jmp jumps unconditionally to a label.
func Jmp(label string) Ins { return Ins{Kind: IJmp, Label: label} }

// Br jumps to a label if cond holds.
func Br(cond Cond, label string) Ins { return Ins{Kind: IBr, Cond: cond, Label: label} }

// Push pushes src.
func Push(src isa.Reg) Ins { return Ins{Kind: IPush, Src: src} }

// Pop pops into dst.
func Pop(dst isa.Reg) Ins { return Ins{Kind: IPop, Dst: dst} }

// XorMem xors src into mem64[base+off].
func XorMem(base isa.Reg, off int32, src isa.Reg) Ins {
	return Ins{Kind: IXorMem, Dst: base, Off: off, Src: src}
}

// Ret returns from the function.
func Ret() Ins { return Ins{Kind: IRet} }

// Func is one IR function.
type Func struct {
	Name   string
	Export bool // exported to the kernel (global bind); else static
	Body   []Ins

	// InFixedText places the compiled function into .fixed.text — used by
	// the plugin for wrappers (the immovable part, paper Fig. 2b).
	InFixedText bool
	// NoInstrument excludes the function from prologue/epilogue injection
	// (the wrappers themselves and the retpoline thunks).
	NoInstrument bool
	// Wrapper marks plugin-generated wrapper functions; the flag is
	// propagated to the symbol table so the loader can identify them.
	Wrapper bool
}

// DataReloc records that a global's initializer holds the absolute address
// of another symbol at the given offset (e.g. the function pointers in a
// static ops table such as ext4_file_inode_operations, paper §6). The
// loader resolves these, and for re-randomizable modules records the local
// ones so the re-randomizer can slide them on every move.
type DataReloc struct {
	Offset uint64
	Sym    string
}

// Global is one IR data object.
type Global struct {
	Name     string
	Size     uint64
	Init     []byte // nil → .bss; else .data or .rodata
	ReadOnly bool
	Export   bool
	Relocs   []DataReloc // symbol addresses embedded in Init
}

// Module is a compilation unit.
type Module struct {
	Name    string
	Funcs   []*Func
	Globals []*Global
}

// AddFunc appends a function and returns it for further construction.
func (m *Module) AddFunc(name string, export bool, body ...Ins) *Func {
	f := &Func{Name: name, Export: export, Body: body}
	m.Funcs = append(m.Funcs, f)
	return f
}

// AddGlobal appends a data object.
func (m *Module) AddGlobal(g Global) *Global {
	gp := &g
	m.Globals = append(m.Globals, gp)
	return gp
}

// Func returns the named function, or nil.
func (m *Module) Func(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// validate checks structural properties before lowering.
func (m *Module) validate() error {
	seen := map[string]bool{}
	for _, g := range m.Globals {
		if seen[g.Name] {
			return fmt.Errorf("kcc: %s: duplicate global %q", m.Name, g.Name)
		}
		seen[g.Name] = true
		if g.Init != nil && uint64(len(g.Init)) != g.Size {
			return fmt.Errorf("kcc: %s: global %q init size %d != size %d",
				m.Name, g.Name, len(g.Init), g.Size)
		}
	}
	for _, f := range m.Funcs {
		if seen[f.Name] {
			return fmt.Errorf("kcc: %s: duplicate symbol %q", m.Name, f.Name)
		}
		seen[f.Name] = true
		if err := validateFunc(f); err != nil {
			return fmt.Errorf("kcc: %s: %w", m.Name, err)
		}
	}
	return nil
}

func validateFunc(f *Func) error {
	if len(f.Body) == 0 {
		return fmt.Errorf("func %q has empty body", f.Name)
	}
	labels := map[string]bool{}
	for _, in := range f.Body {
		if in.Kind == ILabel {
			if labels[in.Label] {
				return fmt.Errorf("func %q: duplicate label %q", f.Name, in.Label)
			}
			labels[in.Label] = true
		}
	}
	returns := false
	for i, in := range f.Body {
		switch in.Kind {
		case IJmp, IBr:
			if !labels[in.Label] {
				return fmt.Errorf("func %q: undefined label %q", f.Name, in.Label)
			}
		case IRet:
			returns = true
		case ICall, IGlobalAddr, IGlobalLoad, IGlobalStore, IGotLoad:
			if in.Sym == "" {
				return fmt.Errorf("func %q: instruction %d missing symbol", f.Name, i)
			}
		}
	}
	if !returns {
		return fmt.Errorf("func %q never returns", f.Name)
	}
	last := f.Body[len(f.Body)-1]
	if last.Kind != IRet && last.Kind != IJmp {
		return fmt.Errorf("func %q falls off the end", f.Name)
	}
	return nil
}
