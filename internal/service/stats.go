package service

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"adelie/internal/obs"
	"adelie/internal/workload"
)

// Stats is the /v1/statsz snapshot: pool and queue occupancy, lifetime
// request accounting, fork-pool boot counters, and service-latency
// percentiles. Throughput is reported both raw and per host core — the
// PR-6 lesson that fan-out wins scale with cores, so a fleet number
// only compares across hosts when normalized.
type Stats struct {
	PoolSize   int  `json:"pool_size"`
	QueueCap   int  `json:"queue_cap"`
	QueueDepth int  `json:"queue_depth"`
	InFlight   int  `json:"in_flight"`
	Draining   bool `json:"draining"`

	Requests      uint64 `json:"requests"`       // accepted for processing
	OK            uint64 `json:"ok"`             // completed successfully
	Errors        uint64 `json:"errors"`         // failed after admission
	QueueFull     uint64 `json:"queue_full"`     // shed with 503
	Timeouts      uint64 `json:"timeouts"`       // gave up while queued
	LeasesGranted uint64 `json:"leases_granted"` //
	LeasesRevoked uint64 `json:"leases_revoked"` // TTL expiries

	// Machine-pool boot accounting (fork-pool counters since startup):
	// every served run should be a fork, never a cold boot.
	ForkTemplates int64 `json:"fork_templates"`
	ForksServed   int64 `json:"forks_served"`
	ColdBoots     int64 `json:"cold_boots"`

	UptimeUs   float64 `json:"uptime_us"`
	RPS        float64 `json:"rps"`          // completed requests / uptime
	RPSPerCore float64 `json:"rps_per_core"` // RPS / GOMAXPROCS
	Cores      int     `json:"cores"`
	P50Us      float64 `json:"p50_us"` // service latency incl. queue wait
	P99Us      float64 `json:"p99_us"`

	// Queue-wait percentiles over the same completion window: the lease
	// wait alone, excluding the experiment run. Wait growing while run
	// time holds steady means the pool is undersized — the two phases
	// regress for different reasons, so statsz reports them split.
	QueueWaitP50Us float64 `json:"queue_wait_p50_us"`
	QueueWaitP99Us float64 `json:"queue_wait_p99_us"`
}

// latWindow bounds the latency reservoir: percentiles are computed over
// the most recent completions, so a long-lived daemon reports current
// behavior, not its boot-time history.
const latWindow = 4096

// statsCollector accumulates completion counters and a latency ring.
type statsCollector struct {
	mu       sync.Mutex
	start    time.Time
	base     workload.PoolStats // fork-pool counters at service start
	requests uint64
	ok       uint64
	errors   uint64
	lats     []float64 // ring of recent latencies (µs)
	next     int       // ring write cursor once full
	qlats    []float64 // ring of recent lease queue waits (µs)
	qnext    int
}

func newStatsCollector() *statsCollector {
	return &statsCollector{start: time.Now(), base: workload.ForkPoolStats()}
}

func (s *statsCollector) admitted(queueWait time.Duration) {
	us := float64(queueWait.Nanoseconds()) / 1e3
	s.mu.Lock()
	s.requests++
	if len(s.qlats) < latWindow {
		s.qlats = append(s.qlats, us)
	} else {
		s.qlats[s.qnext] = us
		s.qnext = (s.qnext + 1) % latWindow
	}
	s.mu.Unlock()
	obs.Default.Counter("adelie_service_requests_total").Inc()
	obs.Default.Histogram("adelie_service_queue_wait_us",
		100, 1000, 10_000, 100_000, 1_000_000).Observe(us)
}

func (s *statsCollector) done(d time.Duration, ok bool) {
	us := float64(d.Nanoseconds()) / 1e3
	s.mu.Lock()
	defer s.mu.Unlock()
	if ok {
		s.ok++
		obs.Default.Counter("adelie_service_ok_total").Inc()
	} else {
		s.errors++
		obs.Default.Counter("adelie_service_errors_total").Inc()
	}
	obs.Default.Histogram("adelie_service_latency_us",
		1000, 10_000, 100_000, 1_000_000, 10_000_000).Observe(us)
	if len(s.lats) < latWindow {
		s.lats = append(s.lats, us)
		return
	}
	s.lats[s.next] = us
	s.next = (s.next + 1) % latWindow
}

// percentile returns the pth percentile (0–100) of the sorted slice.
func percentile(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// snapshot assembles the full Stats view.
func (s *statsCollector) snapshot(mgr *leaseMgr, poolSize, queueCap int) Stats {
	queueDepth, inFlight, granted, queueFull, timeouts, revoked, draining := mgr.snapshot()
	pool := workload.ForkPoolStats()

	s.mu.Lock()
	uptime := time.Since(s.start)
	st := Stats{
		PoolSize: poolSize, QueueCap: queueCap,
		QueueDepth: queueDepth, InFlight: inFlight, Draining: draining,
		Requests: s.requests, OK: s.ok, Errors: s.errors,
		QueueFull: queueFull, Timeouts: timeouts,
		LeasesGranted: granted, LeasesRevoked: revoked,
		ForkTemplates: pool.Templates - s.base.Templates,
		ForksServed:   pool.Forks - s.base.Forks,
		ColdBoots:     pool.ColdBoots - s.base.ColdBoots,
		UptimeUs:      float64(uptime.Nanoseconds()) / 1e3,
		Cores:         runtime.GOMAXPROCS(0),
	}
	lats := append([]float64(nil), s.lats...)
	qlats := append([]float64(nil), s.qlats...)
	s.mu.Unlock()

	if uptime > 0 {
		st.RPS = float64(st.OK) / uptime.Seconds()
		st.RPSPerCore = st.RPS / float64(st.Cores)
	}
	sort.Float64s(lats)
	st.P50Us = percentile(lats, 50)
	st.P99Us = percentile(lats, 99)
	sort.Float64s(qlats)
	st.QueueWaitP50Us = percentile(qlats, 50)
	st.QueueWaitP99Us = percentile(qlats, 99)
	return st
}
