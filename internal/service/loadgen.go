package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// The load generator: hammer a running adelie-simd with many concurrent
// /v1/run requests over a pool of worker connections and report
// throughput and tail latency — the stress_test companion the lease
// servers in the roadmap's related repos ship. cmd/simload is the CLI
// wrapper; benchtool's selfbench drives RunLoad in-process against an
// httptest server to record service_rps / service_p99_us.

// LoadOpts configures one load run.
type LoadOpts struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8787".
	BaseURL string
	// Experiment and Params form the request every worker posts.
	Experiment string
	Params     map[string]string
	Quick      bool
	// Requests is the total request count; Concurrency the number of
	// workers issuing them (each worker = one in-flight request).
	Requests    int
	Concurrency int
	// Timeout is the per-request client timeout (default 5m — queue
	// waits behind a small pool are part of the measurement).
	Timeout time.Duration
}

// LoadReport is the aggregate result of one load run.
type LoadReport struct {
	Requests     int         `json:"requests"`
	OK           int         `json:"ok"`
	Failed       int         `json:"failed"`
	StatusCounts map[int]int `json:"status_counts"`
	ElapsedUs    float64     `json:"elapsed_us"`
	RPS          float64     `json:"rps"`
	RPSPerCore   float64     `json:"rps_per_core,omitempty"` // filled by callers that know core count
	P50Us        float64     `json:"p50_us"`
	P99Us        float64     `json:"p99_us"`
	// QueueWaitP50Us/P99Us split the lease queue wait out of the service
	// latency above (reported by the daemon per-response in the
	// X-Adelie-Queue-Wait-Us header): they isolate "waiting for a pool
	// slot" from "running the experiment".
	QueueWaitP50Us float64 `json:"queue_wait_p50_us"`
	QueueWaitP99Us float64 `json:"queue_wait_p99_us"`
	// FirstError carries one representative failure body for diagnosis.
	FirstError string `json:"first_error,omitempty"`
}

// RunLoad issues opts.Requests POST /v1/run calls from opts.Concurrency
// workers and aggregates latency and status counts. Transport-level
// failures count as Failed with status 0.
func RunLoad(opts LoadOpts) (*LoadReport, error) {
	if opts.Requests <= 0 || opts.Concurrency <= 0 {
		return nil, fmt.Errorf("loadgen: requests (%d) and concurrency (%d) must be positive", opts.Requests, opts.Concurrency)
	}
	if opts.Concurrency > opts.Requests {
		opts.Concurrency = opts.Requests
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Minute
	}
	params := make(map[string]any, len(opts.Params))
	for k, v := range opts.Params {
		params[k] = v
	}
	body, err := json.Marshal(RunRequest{Experiment: opts.Experiment, Params: params, Quick: opts.Quick})
	if err != nil {
		return nil, err
	}
	url := opts.BaseURL + "/v1/run"
	client := &http.Client{
		Timeout: opts.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        opts.Concurrency,
			MaxIdleConnsPerHost: opts.Concurrency,
		},
	}

	type workerStats struct {
		lats     []float64
		qlats    []float64
		statuses map[int]int
		firstErr string
	}
	perWorker := make([]workerStats, opts.Concurrency)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func(ws *workerStats) {
			defer wg.Done()
			ws.statuses = map[int]int{}
			for {
				if int(next.Add(1)) > opts.Requests {
					return
				}
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					ws.statuses[0]++
					if ws.firstErr == "" {
						ws.firstErr = err.Error()
					}
					continue
				}
				b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
				resp.Body.Close()
				ws.statuses[resp.StatusCode]++
				if resp.StatusCode == http.StatusOK {
					ws.lats = append(ws.lats, float64(time.Since(t0).Nanoseconds())/1e3)
					if qw, err := strconv.ParseFloat(resp.Header.Get("X-Adelie-Queue-Wait-Us"), 64); err == nil {
						ws.qlats = append(ws.qlats, qw)
					}
				} else if ws.firstErr == "" {
					ws.firstErr = fmt.Sprintf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(b))
				}
			}
		}(&perWorker[w])
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadReport{
		Requests:     opts.Requests,
		StatusCounts: map[int]int{},
		ElapsedUs:    float64(elapsed.Nanoseconds()) / 1e3,
	}
	var lats, qlats []float64
	for i := range perWorker {
		ws := &perWorker[i]
		lats = append(lats, ws.lats...)
		qlats = append(qlats, ws.qlats...)
		for code, n := range ws.statuses {
			rep.StatusCounts[code] += n
		}
		if rep.FirstError == "" {
			rep.FirstError = ws.firstErr
		}
	}
	rep.OK = rep.StatusCounts[http.StatusOK]
	rep.Failed = rep.Requests - rep.OK
	if elapsed > 0 {
		rep.RPS = float64(rep.OK) / elapsed.Seconds()
	}
	sort.Float64s(lats)
	rep.P50Us = percentile(lats, 50)
	rep.P99Us = percentile(lats, 99)
	sort.Float64s(qlats)
	rep.QueueWaitP50Us = percentile(qlats, 50)
	rep.QueueWaitP99Us = percentile(qlats, 99)
	return rep, nil
}
