package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"adelie/internal/workload"
)

// newTestService starts a service (custom registry optional) behind an
// httptest server and tears both down with the test.
func newTestService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

// post sends a /v1 POST and returns status + body.
func post(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out.Bytes()
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out.Bytes()
}

// gateRegistry builds a registry with a channel-gated experiment (each
// run announces itself on started, then blocks until release closes) and an
// instant one — the deterministic fixtures for queue-full, TTL and
// drain tests.
func gateRegistry(started chan struct{}, release chan struct{}) *workload.Registry {
	tab := func(title string) *workload.Table {
		t := &workload.Table{Title: title, Columns: []workload.Column{workload.Col("v", "%d", "%s")}}
		t.AddRow(1)
		return t
	}
	return workload.NewRegistry(
		&workload.Experiment{
			Name: "gated", Doc: "blocks until released",
			Run: func(workload.Params) (*workload.Table, error) {
				started <- struct{}{}
				<-release
				return tab("gated"), nil
			},
		},
		&workload.Experiment{
			Name: "instant", Doc: "returns immediately",
			Run: func(workload.Params) (*workload.Table, error) {
				return tab("instant"), nil
			},
		},
	)
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestRunRoundTrip(t *testing.T) {
	_, ts := newTestService(t, Config{PoolSize: 2})
	status, body := post(t, ts.URL+"/v1/run", RunRequest{Experiment: "fig1"})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var rep RunReply
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Name != "fig1" || rep.Table == nil || len(rep.Table.Rows) == 0 {
		t.Fatalf("bad reply: %+v", rep)
	}
}

// TestServedTableByteIdenticalToBenchtool is the HTTP half of the
// determinism contract: the Table served by /v1/run must marshal
// byte-identically to the Table `benchtool run` produces for the same
// experiment and params (both sides resolve overrides through
// workload.ResolveOverrides — one code path, no drift).
func TestServedTableByteIdenticalToBenchtool(t *testing.T) {
	_, ts := newTestService(t, Config{PoolSize: 2})
	status, body := post(t, ts.URL+"/v1/run", RunRequest{
		Experiment: "fig9", Quick: true, Params: map[string]any{"ops": "100"},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var rep struct {
		Table json.RawMessage `json:"table"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	var servedTab workload.Table
	if err := json.Unmarshal(rep.Table, &servedTab); err != nil {
		t.Fatal(err)
	}
	served, err := json.Marshal(&servedTab)
	if err != nil {
		t.Fatal(err)
	}

	exp, ok := workload.Experiments.Lookup("fig9")
	if !ok {
		t.Fatal("fig9 not registered")
	}
	p, _, _, err := exp.ResolveOverrides(true, []string{"ops=100"}, false)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := exp.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, want) {
		t.Fatalf("served table diverges from benchtool's:\nserved: %s\nwant:   %s", served, want)
	}
}

func TestSweepRoundTrip(t *testing.T) {
	_, ts := newTestService(t, Config{PoolSize: 2})
	status, body := post(t, ts.URL+"/v1/sweep", RunRequest{
		Experiment: "fig9", Quick: true, Params: map[string]any{"ops": "40..80:40"},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var rep SweepReply
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Param != "ops" || len(rep.Points) != 2 {
		t.Fatalf("want 2 ops points, got %+v", rep)
	}
	exp, _ := workload.Experiments.Lookup("fig9")
	for i, wantOps := range []int64{40, 80} {
		if got := rep.Points[i].Params["ops"]; got != wantOps {
			t.Fatalf("point %d: ops=%d, want %d", i, got, wantOps)
		}
		p, _, _, err := exp.ResolveOverrides(true, []string{fmt.Sprintf("ops=%d", wantOps)}, true)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := exp.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(tab)
		got, _ := json.Marshal(rep.Points[i].Table)
		if !bytes.Equal(got, want) {
			t.Fatalf("sweep point ops=%d diverges from direct run", wantOps)
		}
	}
}

func TestExperimentsListing(t *testing.T) {
	_, ts := newTestService(t, Config{})
	status, body := get(t, ts.URL+"/v1/experiments")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	var rep struct {
		Experiments []struct {
			Name   string `json:"name"`
			Params []struct {
				Name    string `json:"name"`
				Default int64  `json:"default"`
			} `json:"params"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range rep.Experiments {
		names[e.Name] = true
	}
	for _, want := range workload.Experiments.Names() {
		if !names[want] {
			t.Fatalf("experiment %q missing from listing", want)
		}
	}
}

func TestUnknownExperiment404(t *testing.T) {
	_, ts := newTestService(t, Config{})
	status, body := post(t, ts.URL+"/v1/run", RunRequest{Experiment: "fgi5b"})
	if status != http.StatusNotFound {
		t.Fatalf("status %d, want 404: %s", status, body)
	}
	var rep ErrorReply
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Suggestion != "fig5b" || !strings.Contains(rep.Error, `did you mean "fig5b"`) {
		t.Fatalf("want fig5b suggestion, got %+v", rep)
	}
	if len(rep.Registered) == 0 {
		t.Fatal("want registered experiment list in 404 body")
	}
}

func TestBadParams400(t *testing.T) {
	_, ts := newTestService(t, Config{})
	for _, tc := range []struct {
		name string
		req  RunRequest
		path string
		want string
	}{
		{"unknown param", RunRequest{Experiment: "fig1", Params: map[string]any{"bogus": "1"}}, "/v1/run", "no parameter"},
		{"range on run", RunRequest{Experiment: "fig9", Params: map[string]any{"ops": "10..20"}}, "/v1/run", "is a range"},
		{"non-integer", RunRequest{Experiment: "fig9", Params: map[string]any{"ops": "many"}}, "/v1/run", "not an integer"},
		{"fractional", RunRequest{Experiment: "fig9", Params: map[string]any{"ops": 1.5}}, "/v1/run", "not an integer"},
		{"sweep without range", RunRequest{Experiment: "fig9", Params: map[string]any{"ops": "100"}}, "/v1/sweep", "needs exactly one range"},
	} {
		status, body := post(t, ts.URL+tc.path, tc.req)
		if status != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", tc.name, status, body)
		}
		if !strings.Contains(string(body), tc.want) {
			t.Fatalf("%s: body %s does not mention %q", tc.name, body, tc.want)
		}
	}
}

func TestQueueFull503(t *testing.T) {
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	svc, ts := newTestService(t, Config{
		Registry: gateRegistry(started, release),
		PoolSize: 1, QueueCap: 1, LeaseTTL: time.Minute,
	})

	results := make(chan int, 2)
	fire := func() {
		go func() {
			status, _ := post(t, ts.URL+"/v1/run", RunRequest{Experiment: "gated"})
			results <- status
		}()
	}
	fire() // takes the only slot
	<-started
	fire() // sits in the queue
	waitFor(t, "queued request", func() bool { return svc.StatsNow().QueueDepth == 1 })

	// Queue at capacity: the third request sheds immediately.
	status, body := post(t, ts.URL+"/v1/run", RunRequest{Experiment: "gated"})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", status, body)
	}
	if !strings.Contains(string(body), "queue full") {
		t.Fatalf("body %s does not mention queue full", body)
	}

	close(release)
	<-started // the queued request runs once the first releases
	for i := 0; i < 2; i++ {
		if status := <-results; status != http.StatusOK {
			t.Fatalf("gated request %d: status %d", i, status)
		}
	}
	if got := svc.StatsNow().QueueFull; got != 1 {
		t.Fatalf("QueueFull=%d, want 1", got)
	}
}

func TestLeaseTTLRevocation(t *testing.T) {
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	svc, ts := newTestService(t, Config{
		Registry: gateRegistry(started, release),
		PoolSize: 1, QueueCap: 4, LeaseTTL: 25 * time.Millisecond,
	})

	abandoned := make(chan int, 1)
	go func() {
		status, _ := post(t, ts.URL+"/v1/run", RunRequest{Experiment: "gated"})
		abandoned <- status
	}()
	<-started
	// The gated run holds the only slot past its TTL; the janitor must
	// revoke it and return the slot.
	waitFor(t, "TTL revocation", func() bool { return svc.StatsNow().LeasesRevoked >= 1 })

	// Capacity is back while the abandoned machine is still running.
	status, body := post(t, ts.URL+"/v1/run", RunRequest{Experiment: "instant"})
	if status != http.StatusOK {
		t.Fatalf("post-revocation request: status %d: %s", status, body)
	}

	// The abandoned run's late result is discarded with 504.
	close(release)
	if status := <-abandoned; status != http.StatusGatewayTimeout {
		t.Fatalf("revoked lease: status %d, want 504", status)
	}
	st := svc.StatsNow()
	if st.LeasesRevoked != 1 || st.Errors == 0 {
		t.Fatalf("stats after revocation: %+v", st)
	}
}

func TestDrainCompletesAdmittedRequests(t *testing.T) {
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	svc, ts := newTestService(t, Config{
		Registry: gateRegistry(started, release),
		PoolSize: 2, QueueCap: 8, LeaseTTL: time.Minute,
	})

	const n = 6
	results := make(chan int, n)
	for i := 0; i < n; i++ {
		go func() {
			status, _ := post(t, ts.URL+"/v1/run", RunRequest{Experiment: "gated"})
			results <- status
		}()
	}
	// Both slots running, the rest queued.
	waitFor(t, "all admitted", func() bool {
		st := svc.StatsNow()
		return st.InFlight+st.QueueDepth == n
	})

	svc.BeginDrain()
	if status, _ := post(t, ts.URL+"/v1/run", RunRequest{Experiment: "instant"}); status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: status %d, want 503", status)
	}
	if status, _ := get(t, ts.URL+"/v1/healthz"); status != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d, want 503", status)
	}

	close(release)
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- svc.Drain(ctx)
	}()
	for i := 0; i < n; i++ {
		if status := <-results; status != http.StatusOK {
			t.Fatalf("admitted request %d lost to drain: status %d", i, status)
		}
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := svc.StatsNow(); st.OK != n || st.InFlight != 0 || st.QueueDepth != 0 {
		t.Fatalf("post-drain stats: %+v", st)
	}
}

func TestHealthzAndStatsz(t *testing.T) {
	svc, ts := newTestService(t, Config{PoolSize: 3, QueueCap: 7})
	if status, body := get(t, ts.URL+"/v1/healthz"); status != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %s", status, body)
	}
	if status, body := post(t, ts.URL+"/v1/run", RunRequest{Experiment: "fig1"}); status != http.StatusOK {
		t.Fatalf("run: %d %s", status, body)
	}
	status, body := get(t, ts.URL+"/v1/statsz")
	if status != http.StatusOK {
		t.Fatalf("statsz: %d", status)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.PoolSize != 3 || st.QueueCap != 7 || st.OK != 1 || st.P50Us <= 0 || st.RPS <= 0 {
		t.Fatalf("statsz: %+v", st)
	}
	want := svc.StatsNow()
	if want.OK != st.OK {
		t.Fatalf("StatsNow OK=%d, statsz OK=%d", want.OK, st.OK)
	}
}

// TestConcurrentClients hammers a pool of 4 with 32 in-flight clients
// (96 machine-booting requests through the fork pool) — the -race leg
// of the service's concurrency contract. Every boot must be served as a
// fork: one template per fig9 variant, zero cold boots.
func TestConcurrentClients(t *testing.T) {
	svc, ts := newTestService(t, Config{PoolSize: 4, QueueCap: 128})
	rep, err := RunLoad(LoadOpts{
		BaseURL:    ts.URL,
		Experiment: "fig9", Quick: true, Params: map[string]string{"ops": "10"},
		Requests: 96, Concurrency: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 96 || rep.Failed != 0 {
		t.Fatalf("load: %+v", rep)
	}
	if rep.RPS <= 0 || rep.P99Us <= 0 || rep.P99Us < rep.P50Us {
		t.Fatalf("degenerate latency stats: %+v", rep)
	}
	st := svc.StatsNow()
	if st.OK != 96 || st.InFlight != 0 || st.QueueDepth != 0 {
		t.Fatalf("post-load stats: %+v", st)
	}
	if st.ColdBoots != 0 {
		t.Fatalf("service cold-booted %d machines; every request must be fork-served", st.ColdBoots)
	}
	if st.ForksServed == 0 || st.ForkTemplates == 0 {
		t.Fatalf("fork pool idle under load: %+v", st)
	}
}
