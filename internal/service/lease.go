package service

import (
	"context"
	"errors"
	"sync"
	"time"
)

// The lease manager bounds how much of the machine pool one daemon hands
// out at a time. Every request leases one pool slot for the duration of
// its experiment run; requests past the pool size wait in a bounded FIFO
// queue (strictly first-come-first-served — Go channel wakeups are not),
// and a running lease that outlives its TTL is revoked: the slot returns
// to the pool immediately so an abandoned or wedged run cannot hold
// capacity, and the late result is discarded when it finally arrives —
// the flextape/allocation_manager allocate→refresh→expire shape, with
// the refresh implicit in the run.

var (
	// ErrQueueFull rejects a request when the FIFO wait queue is at
	// capacity (HTTP 503: shed load rather than build an unbounded
	// backlog).
	ErrQueueFull = errors.New("service: request queue full")
	// ErrDraining rejects new requests once a graceful shutdown began.
	ErrDraining = errors.New("service: draining")
)

// lease is one granted pool slot.
type lease struct {
	mgr      *leaseMgr
	id       uint64
	granted  time.Time
	waited   time.Duration // time spent in the FIFO queue (0: granted on arrival)
	deadline time.Time     // granted + TTL; past this the janitor revokes
	revoked  bool          // slot already reclaimed; result must be discarded
	released bool
}

// Waited returns how long the request queued before this lease was
// granted — zero for the fast path that found a free slot on arrival.
// Splitting this out of the service latency is what lets an operator
// tell "the pool is too small" (wait grows, run steady) from "the
// experiments got slower" (run grows).
func (l *lease) Waited() time.Duration { return l.waited }

// Revoked reports whether the lease's TTL expired before Release.
func (l *lease) Revoked() bool {
	l.mgr.mu.Lock()
	defer l.mgr.mu.Unlock()
	return l.revoked
}

// Release returns the slot to the pool (or hands it to the queue head).
// Releasing a revoked lease is a no-op: its slot was reclaimed at
// revocation time. Release is idempotent.
func (l *lease) Release() {
	m := l.mgr
	m.mu.Lock()
	defer m.mu.Unlock()
	if l.released {
		return
	}
	l.released = true
	delete(m.active, l.id)
	if !l.revoked {
		m.returnSlotLocked()
	}
}

// waiter is one queued Acquire.
type waiter struct {
	ch        chan *lease // buffered 1; the grantor never blocks
	enqueued  time.Time   // when the request joined the queue
	abandoned bool        // Acquire gave up (deadline) before a grant
}

// leaseMgr is the pool's allocation state.
type leaseMgr struct {
	mu      sync.Mutex
	free    int // unleased slots
	size    int
	waiters []*waiter // FIFO wait queue, head first
	active  map[uint64]*lease
	nextID  uint64

	queueCap  int
	ttl       time.Duration
	draining  bool
	granted   uint64 // lifetime grants
	queueFull uint64 // rejections
	timeouts  uint64 // queue waits that hit their deadline
	revoked   uint64 // TTL revocations

	stopJanitor chan struct{}
	janitorDone chan struct{}
}

func newLeaseMgr(size, queueCap int, ttl time.Duration) *leaseMgr {
	m := &leaseMgr{
		free: size, size: size, queueCap: queueCap, ttl: ttl,
		active:      map[uint64]*lease{},
		stopJanitor: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	go m.janitor()
	return m
}

// Acquire leases one slot, waiting in FIFO order behind earlier
// requests. It fails fast with ErrQueueFull/ErrDraining and gives up
// when ctx expires while still queued.
func (m *leaseMgr) Acquire(ctx context.Context) (*lease, error) {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	if m.free > 0 {
		m.free--
		l := m.grantLocked()
		m.mu.Unlock()
		return l, nil
	}
	if len(m.waiters) >= m.queueCap {
		m.queueFull++
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	w := &waiter{ch: make(chan *lease, 1), enqueued: time.Now()}
	m.waiters = append(m.waiters, w)
	m.mu.Unlock()

	select {
	case l := <-w.ch:
		return l, nil
	case <-ctx.Done():
	}
	// Deadline hit. A grant may have raced the cancellation: if it did,
	// the lease is in the channel and must go back to the pool.
	m.mu.Lock()
	select {
	case l := <-w.ch:
		l.released = true
		delete(m.active, l.id)
		m.returnSlotLocked()
	default:
		w.abandoned = true
	}
	m.timeouts++
	m.mu.Unlock()
	return nil, ctx.Err()
}

// grantLocked mints a lease against one already-claimed slot.
func (m *leaseMgr) grantLocked() *lease {
	m.nextID++
	m.granted++
	now := time.Now()
	l := &lease{mgr: m, id: m.nextID, granted: now, deadline: now.Add(m.ttl)}
	m.active[l.id] = l
	return l
}

// returnSlotLocked gives a freed slot to the queue head (skipping waits
// that already gave up) or back to the free count.
func (m *leaseMgr) returnSlotLocked() {
	for len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		if w.abandoned {
			continue
		}
		l := m.grantLocked()
		l.waited = l.granted.Sub(w.enqueued)
		w.ch <- l
		return
	}
	m.free++
}

// janitor revokes leases that outlived the TTL, returning their slots.
func (m *leaseMgr) janitor() {
	defer close(m.janitorDone)
	tick := m.ttl / 4
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-m.stopJanitor:
			return
		case now := <-t.C:
			m.mu.Lock()
			for _, l := range m.active {
				if !l.revoked && now.After(l.deadline) {
					l.revoked = true
					m.revoked++
					m.returnSlotLocked()
				}
			}
			m.mu.Unlock()
		}
	}
}

// beginDrain stops new admissions; queued waiters still get served.
func (m *leaseMgr) beginDrain() {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
}

// drainDone reports whether no lease is live and no request queued.
// Revoked-but-unreleased leases count as live: their runs are still
// executing and a clean drain waits for them.
func (m *leaseMgr) drainDone() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active) == 0 && len(m.waiters) == 0
}

// close stops the janitor.
func (m *leaseMgr) close() {
	select {
	case <-m.stopJanitor:
	default:
		close(m.stopJanitor)
	}
	<-m.janitorDone
}

// snapshot returns the counters for statsz.
func (m *leaseMgr) snapshot() (queueDepth, inFlight int, granted, queueFull, timeouts, revoked uint64, draining bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.waiters), len(m.active), m.granted, m.queueFull, m.timeouts, m.revoked, m.draining
}
