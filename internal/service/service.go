// Package service is the fleet-scale simulation service behind
// cmd/adelie-simd: a long-running daemon owning a pool of snapshot-forked
// machines and serving experiment requests over HTTP/JSON.
//
// The shape follows the lease-based allocation servers the roadmap names
// (flextape/allocation_manager/machinist) and QCDSP's replicated-node
// lesson — serve many concurrent experiments with a fleet of cheap forked
// machines, not one big one:
//
//   - machine pool: per-(config, seed, queues, drivers) frozen Snapshot()
//     templates, lazily booted on first use of each shape, every request
//     served by a ~200µs copy-on-write Fork() that is bit-identical to a
//     cold boot (workload's fork pool — the same path -parallel sweeps
//     use — held enabled for the service's lifetime);
//   - lease manager: a bounded FIFO request queue in front of a bounded
//     set of live forks, per-request deadlines while queued, a TTL on
//     running leases with revocation of abandoned machines, and a
//     graceful drain that completes every admitted request;
//   - HTTP/JSON API: POST /v1/run and /v1/sweep produce the registry's
//     Table JSON exactly as `benchtool run` does (the same override
//     resolution path, so default/quick/range semantics cannot drift),
//     GET /v1/experiments lists the registry, /v1/healthz and /v1/statsz
//     report liveness and pool/queue/latency/throughput counters.
//
// The load generator in loadgen.go (cmd/simload) closes the loop: it
// hammers a running daemon with thousands of concurrent requests and
// reports rps and tail latency, the numbers benchtool's selfbench
// records as service_rps / service_p99_us.
package service

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"adelie/internal/workload"
)

// Config sizes one service instance.
type Config struct {
	// Registry is the experiment registry to serve; nil means the full
	// evaluation registry (workload.Experiments).
	Registry *workload.Registry
	// PoolSize bounds concurrently leased machines (live forks running
	// experiments). Default 4.
	PoolSize int
	// QueueCap bounds the FIFO wait queue; requests past it are shed
	// with 503. Default 1024.
	QueueCap int
	// LeaseTTL revokes a running lease that exceeds it: the pool slot
	// returns immediately, the late result is discarded. Default 2m.
	LeaseTTL time.Duration
	// RequestTimeout caps how long a request may wait in the queue
	// before giving up with 504. Default 5m.
	RequestTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Registry == nil {
		c.Registry = workload.Experiments
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 2 * time.Minute
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Minute
	}
	return c
}

// Service is one running instance: pool + lease manager + handlers.
type Service struct {
	cfg    Config
	reg    *workload.Registry
	leases *leaseMgr
	stats  *statsCollector
	closed bool
}

// New builds a service and enables the machine pool: from here until
// Close, every machine an experiment boots is a copy-on-write fork of a
// lazily-booted frozen template of that machine shape.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	workload.EnableForkPool()
	return &Service{
		cfg:    cfg,
		reg:    cfg.Registry,
		leases: newLeaseMgr(cfg.PoolSize, cfg.QueueCap, cfg.LeaseTTL),
		stats:  newStatsCollector(),
	}
}

// StatsNow snapshots the statsz counters.
func (s *Service) StatsNow() Stats {
	return s.stats.snapshot(s.leases, s.cfg.PoolSize, s.cfg.QueueCap)
}

// BeginDrain stops admitting new requests (healthz flips to draining,
// run/sweep answer 503). Queued and running requests keep going.
func (s *Service) BeginDrain() { s.leases.beginDrain() }

// Drain gracefully shuts the service down: stop admissions, then wait
// until every admitted request — queued or running — has completed, or
// ctx expires (the in-flight count at expiry is in the error). No
// admitted request is lost by a drain that returns nil.
func (s *Service) Drain(ctx context.Context) error {
	s.BeginDrain()
	for !s.leases.drainDone() {
		select {
		case <-ctx.Done():
			queueDepth, inFlight, _, _, _, _, _ := s.leases.snapshot()
			return fmt.Errorf("service: drain timed out with %d running and %d queued", inFlight, queueDepth)
		case <-time.After(2 * time.Millisecond):
		}
	}
	return nil
}

// Close releases the service's resources: the lease janitor stops and
// the machine pool's templates are released. Call after Drain.
func (s *Service) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.leases.close()
	workload.DisableForkPool()
}

// Handler returns the HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/statsz", s.handleStatsz)
	mux.HandleFunc("GET /v1/metricsz", s.handleMetricsz)
	return mux
}
