package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"time"

	"adelie/internal/obs"
	"adelie/internal/workload"
)

// RunRequest is the POST /v1/run (and /v1/sweep) body: an experiment
// name, optional -p-style parameter overrides, and the quick flag.
// Param values may be JSON numbers or strings; a string may use the
// range syntax "lo..hi[:step]" — rejected by /v1/run, required (on
// exactly one param) by /v1/sweep.
type RunRequest struct {
	Experiment string         `json:"experiment"`
	Params     map[string]any `json:"params,omitempty"`
	Quick      bool           `json:"quick,omitempty"`

	// Trace asks /v1/run to record the run's deterministic event trace
	// and attach it to the reply as Chrome trace_event JSON. Traced
	// requests serialize on the daemon's exclusive observability session;
	// machines booted by concurrently running untraced requests join the
	// trace too (the fleet-wide view).
	Trace bool `json:"trace,omitempty"`

	// Sweep-only knobs. Parallel defaults to true (fan the points across
	// the pool on fork-served boots); false is the serial reference
	// mode. Workers 0 means the pool size.
	Parallel *bool `json:"parallel,omitempty"`
	Workers  int   `json:"workers,omitempty"`
}

// RunReply is one experiment result: the same name/params/table record
// `benchtool -json` emits per experiment, so a Table served over HTTP
// marshals byte-identically to the CLI's for identical params.
type RunReply struct {
	Name      string           `json:"name"`
	Params    map[string]int64 `json:"params"`
	Table     *workload.Table  `json:"table"`
	ElapsedUs float64          `json:"elapsed_us,omitempty"`

	// Trace is the run's Chrome trace_event JSON when the request set
	// "trace": true (already-marshaled bytes; byte-deterministic for a
	// given experiment and params).
	Trace json.RawMessage `json:"trace,omitempty"`
}

// SweepReply is the POST /v1/sweep result: one RunReply per point.
type SweepReply struct {
	Name      string     `json:"name"`
	Param     string     `json:"param"`
	Points    []RunReply `json:"points"`
	ElapsedUs float64    `json:"elapsed_us,omitempty"`
}

// ErrorReply is every non-2xx body.
type ErrorReply struct {
	Error      string   `json:"error"`
	Suggestion string   `json:"suggestion,omitempty"`
	Registered []string `json:"registered,omitempty"`
}

// maxBodyBytes bounds a request body read.
const maxBodyBytes = 1 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorReply{Error: fmt.Sprintf(format, args...)})
}

// overrideStrings converts a JSON params map into sorted "key=val"
// override pairs for the shared resolution path. Numbers must be
// integral; strings pass through untouched (range syntax included).
func overrideStrings(params map[string]any) ([]string, error) {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		switch v := params[k].(type) {
		case string:
			out = append(out, k+"="+v)
		case float64:
			if v != math.Trunc(v) {
				return nil, fmt.Errorf("parameter %q: %v is not an integer", k, v)
			}
			out = append(out, k+"="+strconv.FormatInt(int64(v), 10))
		case json.Number:
			out = append(out, k+"="+v.String())
		default:
			return nil, fmt.Errorf("parameter %q: value must be an integer or a string", k)
		}
	}
	return out, nil
}

// resolved is one decoded, validated request: the experiment, its
// resolved params, and the (at most one) sweep range.
type resolved struct {
	req         RunRequest
	exp         *workload.Experiment
	params      workload.Params
	sweepParam  string
	sweepValues []int64
}

// decodeRequest reads and validates the request body, resolving the
// experiment and its overrides through the same workload path
// benchtool's -p flags use. On failure the response is already written.
func (s *Service) decodeRequest(w http.ResponseWriter, r *http.Request) (resolved, bool) {
	var res resolved
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&res.req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return res, false
	}
	if res.req.Experiment == "" {
		writeError(w, http.StatusBadRequest, "missing experiment name")
		return res, false
	}
	exp, ok := s.reg.Lookup(res.req.Experiment)
	if !ok {
		rep := ErrorReply{
			Error:      fmt.Sprintf("unknown experiment %q", res.req.Experiment),
			Suggestion: s.reg.Suggest(res.req.Experiment),
			Registered: s.reg.Names(),
		}
		if rep.Suggestion != "" {
			rep.Error += fmt.Sprintf("; did you mean %q?", rep.Suggestion)
		}
		writeJSON(w, http.StatusNotFound, rep)
		return res, false
	}
	res.exp = exp
	ovs, err := overrideStrings(res.req.Params)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%s: %v", exp.Name, err)
		return res, false
	}
	res.params, res.sweepParam, res.sweepValues, err = exp.ResolveOverrides(res.req.Quick, ovs, true)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%s: %v", exp.Name, err)
		return res, false
	}
	return res, true
}

// acquire leases a pool slot, mapping queue-full/draining/timeout to
// HTTP statuses. The returned lease is non-nil exactly when ok.
func (s *Service) acquire(w http.ResponseWriter, r *http.Request) (*lease, bool) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	l, err := s.leases.Acquire(ctx)
	switch {
	case err == nil:
		return l, true
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, "request queue full (cap %d, pool %d)", s.cfg.QueueCap, s.cfg.PoolSize)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting new requests")
	default:
		writeError(w, http.StatusGatewayTimeout, "timed out after %s waiting for a machine lease", s.cfg.RequestTimeout)
	}
	return nil, false
}

// finishLeased closes out a leased run: on TTL revocation the result is
// discarded (capacity already went back to the queue, and a caller past
// the TTL plausibly abandoned the request), otherwise respond 200.
func (s *Service) finishLeased(w http.ResponseWriter, l *lease, start time.Time, name string, reply func(elapsed time.Duration) any) {
	if l.Revoked() {
		s.stats.done(time.Since(start), false)
		writeError(w, http.StatusGatewayTimeout,
			"%s: lease TTL (%s) exceeded; machine revoked, result discarded", name, s.cfg.LeaseTTL)
		return
	}
	elapsed := time.Since(start)
	s.stats.done(elapsed, true)
	writeJSON(w, http.StatusOK, reply(elapsed))
}

// handleRun serves POST /v1/run: one experiment, one Table.
func (s *Service) handleRun(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	res, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	if res.sweepParam != "" {
		writeError(w, http.StatusBadRequest,
			"%s: parameter %q is a range; POST /v1/sweep runs one table per point", res.exp.Name, res.sweepParam)
		return
	}
	l, ok := s.acquire(w, r)
	if !ok {
		return
	}
	defer l.Release()
	s.stats.admitted(l.Waited())
	w.Header().Set("X-Adelie-Queue-Wait-Us", strconv.FormatInt(l.Waited().Microseconds(), 10))
	var traceJSON json.RawMessage
	run := func() (*workload.Table, error) { return res.exp.Run(res.params) }
	if res.req.Trace {
		run = func() (*workload.Table, error) {
			sess, end := workload.BeginObs(true, false)
			tab, err := res.exp.Run(res.params)
			end()
			if err == nil {
				var buf bytes.Buffer
				if werr := sess.Trace.WriteJSON(&buf); werr != nil {
					return nil, werr
				}
				traceJSON = buf.Bytes()
			}
			return tab, err
		}
	}
	tab, err := run()
	if err != nil {
		s.stats.done(time.Since(start), false)
		writeError(w, http.StatusInternalServerError, "%s: %v", res.exp.Name, err)
		return
	}
	s.finishLeased(w, l, start, res.exp.Name, func(elapsed time.Duration) any {
		return RunReply{
			Name: res.exp.Name, Params: res.params.Map(), Table: tab,
			ElapsedUs: float64(elapsed.Nanoseconds()) / 1e3,
			Trace:     traceJSON,
		}
	})
}

// handleSweep serves POST /v1/sweep: one experiment, one range param,
// one Table per point — PR 6's sweep runner fanned across the pool on
// fork-served boots, under a single lease.
func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	res, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	if res.sweepParam == "" {
		writeError(w, http.StatusBadRequest,
			"%s: sweep needs exactly one range-valued param (\"lo..hi[:step]\")", res.exp.Name)
		return
	}
	parallel := res.req.Parallel == nil || *res.req.Parallel
	workers := res.req.Workers
	if workers <= 0 || workers > s.cfg.PoolSize {
		workers = s.cfg.PoolSize
	}
	l, ok := s.acquire(w, r)
	if !ok {
		return
	}
	defer l.Release()
	s.stats.admitted(l.Waited())
	w.Header().Set("X-Adelie-Queue-Wait-Us", strconv.FormatInt(l.Waited().Microseconds(), 10))
	pts, err := workload.RunSweep(res.exp, res.params, res.sweepParam, res.sweepValues, parallel, workers)
	if err != nil {
		s.stats.done(time.Since(start), false)
		writeError(w, http.StatusInternalServerError, "%s: %v", res.exp.Name, err)
		return
	}
	points := make([]RunReply, 0, len(pts))
	for _, pt := range pts {
		pp := res.params.Clone()
		if err := pp.Set(pt.Param, pt.Value); err != nil {
			s.stats.done(time.Since(start), false)
			writeError(w, http.StatusInternalServerError, "%s: %v", res.exp.Name, err)
			return
		}
		points = append(points, RunReply{Name: res.exp.Name, Params: pp.Map(), Table: pt.Table})
	}
	s.finishLeased(w, l, start, res.exp.Name, func(elapsed time.Duration) any {
		return SweepReply{
			Name: res.exp.Name, Param: res.sweepParam, Points: points,
			ElapsedUs: float64(elapsed.Nanoseconds()) / 1e3,
		}
	})
}

// handleExperiments serves GET /v1/experiments: the registry listing —
// names, figures, docs and ParamSpecs (defaults + quick values).
func (s *Service) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Experiments []*workload.Experiment `json:"experiments"`
	}{s.reg.All()})
}

// handleHealthz serves GET /v1/healthz.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.StatsNow().Draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleStatsz serves GET /v1/statsz.
func (s *Service) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsNow())
}

// handleMetricsz serves GET /v1/metricsz: the process-wide obs registry
// in Prometheus text exposition format — engine, bus, kernel, rerand and
// service counters from every layer the run touched.
func (s *Service) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default.WritePrometheus(w)
}
