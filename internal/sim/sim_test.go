package sim_test

import (
	"reflect"
	"testing"

	"adelie/internal/cpu"
	"adelie/internal/drivers"
	"adelie/internal/kernel"
	"adelie/internal/sim"
)

func newMachine(t *testing.T) *sim.Machine {
	t.Helper()
	m, err := sim.NewMachine(sim.Config{NumCPUs: 20, Seed: 5, KASLR: kernel.KASLRFull64})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func loadDummy(t *testing.T, m *sim.Machine, rerand bool) {
	t.Helper()
	o := drivers.BuildOpts{PIC: true, Retpoline: true}
	if rerand {
		o.Rerand = true
		o.StackRerand = true
		o.RetEncrypt = true
	}
	if _, err := m.LoadDriver("dummy", o); err != nil {
		t.Fatal(err)
	}
}

func TestRunBasicAccounting(t *testing.T) {
	m := newMachine(t)
	loadDummy(t, m, false)
	va, _ := m.K.Symbol("dummy_ioctl")
	res, err := m.Run(sim.RunConfig{Ops: 100, Workers: 1, SyscallCycles: 1000}, func(c *cpu.CPU) (uint64, error) {
		_, err := c.Call(va, 0)
		return 0, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OpsPerSec <= 0 || res.BusyCycles == 0 || res.ElapsedSec <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	// Single worker, no wait: CPU usage ≈ 1/NumCPUs = 5%.
	if res.CPUUsagePct < 4 || res.CPUUsagePct > 6 {
		t.Fatalf("CPU usage = %.2f%%, want ≈5%%", res.CPUUsagePct)
	}
}

func TestRunWaitReducesCPUUsage(t *testing.T) {
	m := newMachine(t)
	loadDummy(t, m, false)
	va, _ := m.K.Symbol("dummy_ioctl")
	busyOnly, err := m.Run(sim.RunConfig{Ops: 50, Workers: 1}, func(c *cpu.CPU) (uint64, error) {
		_, err := c.Call(va, 0)
		return 0, err
	})
	if err != nil {
		t.Fatal(err)
	}
	withWait, err := m.Run(sim.RunConfig{Ops: 50, Workers: 1}, func(c *cpu.CPU) (uint64, error) {
		_, err := c.Call(va, 0)
		return 1_000_000, err // 0.45 ms device wait per op
	})
	if err != nil {
		t.Fatal(err)
	}
	if withWait.CPUUsagePct >= busyOnly.CPUUsagePct {
		t.Fatal("device wait should lower CPU usage")
	}
	if withWait.OpsPerSec >= busyOnly.OpsPerSec {
		t.Fatal("device wait should lower single-worker throughput")
	}
}

func TestRunWorkersOverlapWaits(t *testing.T) {
	// With latency dominated by wait, throughput scales with workers
	// until a ceiling — the Fig. 7/8 rising edge.
	m := newMachine(t)
	loadDummy(t, m, false)
	va, _ := m.K.Symbol("dummy_ioctl")
	run := func(workers int) float64 {
		res, err := m.Run(sim.RunConfig{Ops: 50, Workers: workers}, func(c *cpu.CPU) (uint64, error) {
			_, err := c.Call(va, 0)
			return 10_000_000, err // 4.5 ms wait
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.OpsPerSec
	}
	r1, r8, r64 := run(1), run(8), run(64)
	if !(r8 > 6*r1 && r64 > 6*r8) {
		t.Fatalf("wait-bound scaling broken: %f %f %f", r1, r8, r64)
	}
}

func TestRunWireCap(t *testing.T) {
	m := newMachine(t)
	loadDummy(t, m, false)
	va, _ := m.K.Symbol("dummy_ioctl")
	res, err := m.Run(sim.RunConfig{
		Ops: 50, Workers: 100, BytesPerOp: 10_000, WireBps: 1e6,
	}, func(c *cpu.CPU) (uint64, error) {
		_, err := c.Call(va, 0)
		return 0, err
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 MB/s wire, 10 KB/op → at most 100 ops/s.
	if res.OpsPerSec > 101 {
		t.Fatalf("wire cap violated: %.1f ops/s", res.OpsPerSec)
	}
	if res.MBPerSec > 1.01 {
		t.Fatalf("MB/s above wire: %.2f", res.MBPerSec)
	}
}

func TestRunFiresRerandOnSchedule(t *testing.T) {
	m := newMachine(t)
	loadDummy(t, m, true)
	va, _ := m.K.Symbol("dummy_ioctl")
	res, err := m.Run(sim.RunConfig{
		Ops: 200, Workers: 1, RerandPeriodUs: 100, SyscallCycles: 100_000,
	}, func(c *cpu.CPU) (uint64, error) {
		_, err := c.Call(va, 0)
		return 0, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RerandSteps == 0 || res.RerandCycles == 0 {
		t.Fatalf("re-randomizer never fired: %+v", res)
	}
	// Elapsed/period within one step of the observed count.
	expect := res.ElapsedSec * 1e6 / 100
	if float64(res.RerandSteps) < expect-1 || float64(res.RerandSteps) > expect+1 {
		t.Fatalf("steps = %d, want ≈%.1f", res.RerandSteps, expect)
	}
	if mod := m.Module("dummy"); mod.Rerandomizations != uint64(res.RerandSteps) {
		t.Fatalf("module moved %d times, runner reports %d", mod.Rerandomizations, res.RerandSteps)
	}
}

func TestRunDeterminism(t *testing.T) {
	results := make([]sim.RunResult, 2)
	for i := range results {
		m, err := sim.NewMachine(sim.Config{NumCPUs: 20, Seed: 5, KASLR: kernel.KASLRFull64})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.LoadDriver("dummy", drivers.BuildOpts{PIC: true, Rerand: true, RetEncrypt: true}); err != nil {
			t.Fatal(err)
		}
		va, _ := m.K.Symbol("dummy_ioctl")
		res, err := m.Run(sim.RunConfig{Ops: 300, Workers: 4, RerandPeriodUs: 500, SyscallCycles: 2000},
			func(c *cpu.CPU) (uint64, error) {
				_, err := c.Call(va, 0)
				return 0, err
			})
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatalf("simulation not deterministic:\n%+v\n%+v", results[0], results[1])
	}
}

func TestLoadDriverUnknownName(t *testing.T) {
	m := newMachine(t)
	if _, err := m.LoadDriver("floppy", drivers.BuildOpts{}); err == nil {
		t.Fatal("unknown driver accepted")
	}
}

func TestCallUnknownSymbol(t *testing.T) {
	m := newMachine(t)
	if _, err := m.Call("nope"); err == nil {
		t.Fatal("unknown symbol accepted")
	}
}

func TestMachineDevicesWired(t *testing.T) {
	m := newMachine(t)
	if m.NVMe == nil || m.NIC == nil || m.Peer == nil || m.XHCI == nil {
		t.Fatal("devices missing")
	}
	// The NIC pair is connected: a host frame sent from the server side
	// reaches the load generator.
	m.NIC.Deliver([]byte("x")) // server side host-queue (no ring yet)
	if m.NIC.RxFrames != 1 {
		t.Fatal("server NIC dropped host frame")
	}
}
