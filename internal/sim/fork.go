package sim

import (
	"fmt"

	"adelie/internal/bus"
	"adelie/internal/devices"
	"adelie/internal/kernel"
	"adelie/internal/rerand"
)

// Snapshot freezes the machine as a fork template. A frozen machine
// refuses Run and Call — its memory image must stay immutable so forks
// share it copy-on-write — and Fork may then be called any number of
// times, concurrently. Snapshot requires quiescence: no engine run in
// progress, no SMR critical section live, and no retired address range
// still awaiting reclamation (its free closure captures the template's
// address space). Take the snapshot right after boot + driver load,
// before any measurement.
func (m *Machine) Snapshot() error {
	if m.frozen {
		return nil
	}
	// Validate forkability now (reclaimer scheme + quiescence) so the
	// error surfaces at snapshot time, not at the first fork. The probe
	// fork is released immediately so frame refcounts are unchanged.
	nk, err := m.K.Fork()
	if err != nil {
		return fmt.Errorf("sim: snapshot: %w", err)
	}
	nk.AS.Phys().Release()
	m.frozen = true
	return nil
}

// Frozen reports whether the machine is a snapshot template.
func (m *Machine) Frozen() bool { return m.frozen }

// Fork returns a new machine sharing the template's physical frames
// copy-on-write. The clone is a complete, independent testbed — kernel,
// address space, devices, bus, interrupt controller, re-randomizer — in
// the exact state the template froze in: same module bases, same RNG
// stream position, same device caches, same cycle counters. By the
// fork-determinism contract it therefore produces bit-identical
// experiment results to a machine that booted cold into that state.
// Forking is cheap (no frame copies; the first write to any shared
// frame pays one page copy) and safe to call concurrently.
func (m *Machine) Fork() (*Machine, error) {
	if !m.frozen {
		return nil, fmt.Errorf("sim: fork: machine is not a snapshot (call Snapshot first)")
	}
	nk, err := m.K.Fork()
	if err != nil {
		return nil, fmt.Errorf("sim: fork: %w", err)
	}
	nr, err := rerand.Fork(nk, m.R)
	if err != nil {
		return nil, fmt.Errorf("sim: fork: %w", err)
	}
	nvme := m.NVMe.CloneFor(nk.AS)
	nic := m.NIC.CloneFor(nk.AS)
	peer := m.Peer.CloneFor(nk.AS)
	xhci := m.XHCI.Clone()
	repl := map[bus.Device]bus.Device{m.NVMe: nvme, m.NIC: nic, m.Peer: peer, m.XHCI: xhci}
	nb, err := m.Bus.CloneFor(nk.AS, func(d bus.Device) bus.Device { return repl[d] })
	if err != nil {
		return nil, fmt.Errorf("sim: fork: %w", err)
	}
	devices.Connect(nic, peer)
	// The IRQ router is machine wiring, not kernel state: kernel.Fork
	// leaves it nil, so point the clone's guest affinity API at its own
	// interrupt controller (which carried the template's routes over).
	nk.SetIRQRouter(nb.IC().SetRoute)
	nm := &Machine{
		K: nk, R: nr, Bus: nb,
		NVMe: nvme, NIC: nic, Peer: peer, XHCI: xhci,
		mods: make(map[string]*kernel.Module, len(m.mods)),
	}
	for name, mod := range m.mods {
		cloned, ok := nk.Module(mod.Name)
		if !ok {
			return nil, fmt.Errorf("sim: fork: module %s missing from forked kernel", mod.Name)
		}
		nm.mods[name] = cloned
	}
	return nm, nil
}

// Release drops the machine's copy-on-write references on its physical
// frames (fork teardown) and returns the number of frame records whose
// last reference died here. The machine must not be used afterwards.
func (m *Machine) Release() int64 {
	return m.K.AS.Phys().Release()
}
