// Package sim assembles the full testbed of Table 1 in simulation: a
// 20-vCPU kernel at a nominal 2.2 GHz (the Xeon Silver 4114), an NVMe
// controller, a pair of back-to-back NICs (server + load generator), an
// xHCI controller, the driver suite, and the re-randomizer.
//
// Its Run method is the measurement harness every figure uses: it
// executes operations concurrently on the vCPUs via internal/engine
// (interpreting the real driver code paths, so wrapper/prologue/
// retpoline/GOT costs and post-remap TLB misses are all physically
// incurred), advances a deterministic virtual clock, fires the
// re-randomizer at its configured period on that clock, and reports
// throughput and all-core CPU usage the way §5 does.
package sim

import (
	"fmt"

	"adelie/internal/devices"
	"adelie/internal/drivers"
	"adelie/internal/engine"
	"adelie/internal/kernel"
	"adelie/internal/mm"
	"adelie/internal/rerand"
)

// CPUHz is the nominal clock of the simulated testbed (Table 1).
const CPUHz = engine.CPUHz

// MMIO window bases (inside the kernel half, away from other regions).
const (
	mmioNVMe = mm.KernelBase + 0x7_0000_0000
	mmioNIC0 = mm.KernelBase + 0x7_0001_0000
	mmioNIC1 = mm.KernelBase + 0x7_0002_0000
	mmioXHCI = mm.KernelBase + 0x7_0003_0000
)

// Config configures a machine.
type Config struct {
	NumCPUs int   // default 20 (Table 1 server)
	Seed    int64 // determinism knob
	KASLR   kernel.KASLRMode
}

// Machine is the assembled testbed.
type Machine struct {
	K    *kernel.Kernel
	R    *rerand.Randomizer
	NVMe *devices.NVMe
	NIC  *devices.NIC // server-side adapter
	Peer *devices.NIC // load-generator adapter
	XHCI *devices.XHCI

	mods map[string]*kernel.Module
}

// NewMachine boots the testbed.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.NumCPUs == 0 {
		cfg.NumCPUs = 20
	}
	k, err := kernel.New(kernel.Config{NumCPUs: cfg.NumCPUs, Seed: cfg.Seed, KASLR: cfg.KASLR})
	if err != nil {
		return nil, err
	}
	m := &Machine{K: k, R: rerand.New(k), mods: map[string]*kernel.Module{}}

	m.NVMe = devices.NewNVMe(k.AS)
	if err := k.AS.RegisterMMIO(mmioNVMe, 1, m.NVMe); err != nil {
		return nil, err
	}
	m.NIC = devices.NewNIC(k.AS)
	if err := k.AS.RegisterMMIO(mmioNIC0, 1, m.NIC); err != nil {
		return nil, err
	}
	m.Peer = devices.NewNIC(k.AS)
	if err := k.AS.RegisterMMIO(mmioNIC1, 1, m.Peer); err != nil {
		return nil, err
	}
	devices.Connect(m.NIC, m.Peer)
	m.XHCI = devices.NewXHCI()
	if err := k.AS.RegisterMMIO(mmioXHCI, 1, m.XHCI); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadDriver builds, loads and (if re-randomizable) registers a driver.
func (m *Machine) LoadDriver(name string, o drivers.BuildOpts) (*kernel.Module, error) {
	mk, ok := drivers.All()[name]
	if !ok {
		return nil, fmt.Errorf("sim: unknown driver %q", name)
	}
	obj, err := drivers.Build(mk(), o)
	if err != nil {
		return nil, err
	}
	mod, err := m.K.Load(obj)
	if err != nil {
		return nil, err
	}
	if o.Rerand {
		if err := m.R.Add(mod); err != nil {
			return nil, err
		}
	}
	m.mods[name] = mod
	return mod, nil
}

// Call invokes an exported driver symbol on vCPU 0.
func (m *Machine) Call(sym string, args ...uint64) (uint64, error) {
	va, ok := m.K.Symbol(sym)
	if !ok {
		return 0, fmt.Errorf("sim: symbol %q not exported", sym)
	}
	return m.K.CPU(0).Call(va, args...)
}

// InitNVMe allocates submission/completion queues and initializes the
// loaded NVMe driver against the controller. The queues carry one slot
// per vCPU (the driver dedicates slot smp_processor_id() to each CPU),
// so concurrent reads issued by the engine never share an entry.
func (m *Machine) InitNVMe() error {
	ncpu := uint64(m.K.NumCPUs())
	sq, err := m.K.Kmalloc(ncpu * 32)
	if err != nil {
		return err
	}
	cq, err := m.K.Kmalloc(ncpu * 16)
	if err != nil {
		return err
	}
	_, err = m.Call("nvme_init", mmioNVMe, sq, cq)
	return err
}

// InitNIC allocates descriptor rings and RX buffers for one of the NIC
// driver variants (prefix "e1000e", "e1000" or "ena") and initializes it.
// It returns the ring length used.
func (m *Machine) InitNIC(prefix string) (uint64, error) {
	const ringLen = 64
	tx, err := m.K.Kmalloc(ringLen * 16)
	if err != nil {
		return 0, err
	}
	rx, err := m.K.Kmalloc(ringLen * 16)
	if err != nil {
		return 0, err
	}
	// Pre-post RX buffers.
	for i := uint64(0); i < ringLen; i++ {
		buf, err := m.K.Kmalloc(2048)
		if err != nil {
			return 0, err
		}
		if err := m.K.AS.Write64(rx+i*16, buf); err != nil {
			return 0, err
		}
	}
	_, err = m.Call(prefix+"_init", mmioNIC0, tx, rx, ringLen)
	return ringLen, err
}

// InitXHCI initializes the xHCI driver.
func (m *Machine) InitXHCI() error {
	_, err := m.Call("xhci_init", mmioXHCI)
	return err
}

// Module returns a loaded driver module.
func (m *Machine) Module(name string) *kernel.Module { return m.mods[name] }

// OpFunc executes one benchmark operation on the vCPU, returning the
// device wait in cycles (time the CPU is idle on I/O) and any fault.
// Operations run concurrently on up to min(Workers, NumCPUs) vCPUs;
// any host-side closure state must be kept per-lane (index it by c.ID),
// and guest code on the path must be SMP-correct (see internal/engine).
type OpFunc = engine.OpFunc

// RunConfig parameterizes a measurement.
type RunConfig = engine.RunConfig

// RunResult is one measured configuration — a point on a §5 figure.
type RunResult = engine.RunResult

// Engine returns the parallel execution engine for this machine, with
// the re-randomizer scheduled as a clocked actor and the NVMe controller
// registered for epoch (round-granular) cache semantics.
func (m *Machine) Engine() *engine.Engine {
	return engine.New(m.K, m.R, m.NVMe)
}

// Run executes cfg.Ops operations across the machine's vCPUs under the
// deterministic barrier-synchronized virtual clock, interleaving
// re-randomizer steps, and derives the figure-level metrics. Lanes
// retire whole decoded basic blocks per round slot (superblock
// execution, reported in RunResult.Blocks); per-block costs are replayed
// into the closed-queueing model unchanged. See engine.Engine.Run for
// the execution and queueing model.
func (m *Machine) Run(cfg RunConfig, op OpFunc) (RunResult, error) {
	return m.Engine().Run(cfg, op)
}
