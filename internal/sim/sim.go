// Package sim assembles the full testbed of Table 1 in simulation: a
// 20-vCPU kernel at a nominal 2.2 GHz (the Xeon Silver 4114), an NVMe
// controller, a pair of back-to-back NICs (server + load generator), an
// xHCI controller, the driver suite, and the re-randomizer.
//
// Its Run method is the measurement harness every figure uses: it
// executes operations on a vCPU (interpreting the real driver code paths,
// so wrapper/prologue/retpoline/GOT costs and post-remap TLB misses are
// all physically incurred), advances a deterministic virtual clock,
// fires the re-randomizer at its configured period on that clock, and
// reports throughput and all-core CPU usage the way §5 does.
package sim

import (
	"fmt"

	"adelie/internal/cpu"
	"adelie/internal/devices"
	"adelie/internal/drivers"
	"adelie/internal/kernel"
	"adelie/internal/mm"
	"adelie/internal/rerand"
)

// CPUHz is the nominal clock of the simulated testbed (Table 1).
const CPUHz = 2.2e9

// MMIO window bases (inside the kernel half, away from other regions).
const (
	mmioNVMe = mm.KernelBase + 0x7_0000_0000
	mmioNIC0 = mm.KernelBase + 0x7_0001_0000
	mmioNIC1 = mm.KernelBase + 0x7_0002_0000
	mmioXHCI = mm.KernelBase + 0x7_0003_0000
)

// Config configures a machine.
type Config struct {
	NumCPUs int   // default 20 (Table 1 server)
	Seed    int64 // determinism knob
	KASLR   kernel.KASLRMode
}

// Machine is the assembled testbed.
type Machine struct {
	K    *kernel.Kernel
	R    *rerand.Randomizer
	NVMe *devices.NVMe
	NIC  *devices.NIC // server-side adapter
	Peer *devices.NIC // load-generator adapter
	XHCI *devices.XHCI

	mods map[string]*kernel.Module
}

// NewMachine boots the testbed.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.NumCPUs == 0 {
		cfg.NumCPUs = 20
	}
	k, err := kernel.New(kernel.Config{NumCPUs: cfg.NumCPUs, Seed: cfg.Seed, KASLR: cfg.KASLR})
	if err != nil {
		return nil, err
	}
	m := &Machine{K: k, R: rerand.New(k), mods: map[string]*kernel.Module{}}

	m.NVMe = devices.NewNVMe(k.AS)
	if err := k.AS.RegisterMMIO(mmioNVMe, 1, m.NVMe); err != nil {
		return nil, err
	}
	m.NIC = devices.NewNIC(k.AS)
	if err := k.AS.RegisterMMIO(mmioNIC0, 1, m.NIC); err != nil {
		return nil, err
	}
	m.Peer = devices.NewNIC(k.AS)
	if err := k.AS.RegisterMMIO(mmioNIC1, 1, m.Peer); err != nil {
		return nil, err
	}
	devices.Connect(m.NIC, m.Peer)
	m.XHCI = devices.NewXHCI()
	if err := k.AS.RegisterMMIO(mmioXHCI, 1, m.XHCI); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadDriver builds, loads and (if re-randomizable) registers a driver.
func (m *Machine) LoadDriver(name string, o drivers.BuildOpts) (*kernel.Module, error) {
	mk, ok := drivers.All()[name]
	if !ok {
		return nil, fmt.Errorf("sim: unknown driver %q", name)
	}
	obj, err := drivers.Build(mk(), o)
	if err != nil {
		return nil, err
	}
	mod, err := m.K.Load(obj)
	if err != nil {
		return nil, err
	}
	if o.Rerand {
		if err := m.R.Add(mod); err != nil {
			return nil, err
		}
	}
	m.mods[name] = mod
	return mod, nil
}

// Call invokes an exported driver symbol on vCPU 0.
func (m *Machine) Call(sym string, args ...uint64) (uint64, error) {
	va, ok := m.K.Symbol(sym)
	if !ok {
		return 0, fmt.Errorf("sim: symbol %q not exported", sym)
	}
	return m.K.CPU(0).Call(va, args...)
}

// InitNVMe allocates submission/completion queues and initializes the
// loaded NVMe driver against the controller.
func (m *Machine) InitNVMe() error {
	sq, err := m.K.Kmalloc(32 * 16)
	if err != nil {
		return err
	}
	cq, err := m.K.Kmalloc(16 * 16)
	if err != nil {
		return err
	}
	_, err = m.Call("nvme_init", mmioNVMe, sq, cq)
	return err
}

// InitNIC allocates descriptor rings and RX buffers for one of the NIC
// driver variants (prefix "e1000e", "e1000" or "ena") and initializes it.
// It returns the ring length used.
func (m *Machine) InitNIC(prefix string) (uint64, error) {
	const ringLen = 64
	tx, err := m.K.Kmalloc(ringLen * 16)
	if err != nil {
		return 0, err
	}
	rx, err := m.K.Kmalloc(ringLen * 16)
	if err != nil {
		return 0, err
	}
	// Pre-post RX buffers.
	for i := uint64(0); i < ringLen; i++ {
		buf, err := m.K.Kmalloc(2048)
		if err != nil {
			return 0, err
		}
		if err := m.K.AS.Write64(rx+i*16, buf); err != nil {
			return 0, err
		}
	}
	_, err = m.Call(prefix+"_init", mmioNIC0, tx, rx, ringLen)
	return ringLen, err
}

// InitXHCI initializes the xHCI driver.
func (m *Machine) InitXHCI() error {
	_, err := m.Call("xhci_init", mmioXHCI)
	return err
}

// Module returns a loaded driver module.
func (m *Machine) Module(name string) *kernel.Module { return m.mods[name] }

// OpFunc executes one benchmark operation on the vCPU, returning the
// device wait in cycles (time the CPU is idle on I/O) and any fault.
type OpFunc func(c *cpu.CPU) (waitCycles uint64, err error)

// RunConfig parameterizes a measurement.
type RunConfig struct {
	Ops            int     // operations to execute (sampled ops = all)
	Workers        int     // concurrent clients (Figs. 7/8 sweeps)
	RerandPeriodUs float64 // re-randomization period; 0 = disabled
	SyscallCycles  uint64  // fixed kernel entry/exit + core-kernel path cost per op
	BytesPerOp     float64 // payload size (for MB/s and the wire cap)
	WireBps        float64 // wire bandwidth cap; 0 = none
}

// RunResult is one measured configuration — a point on a §5 figure.
type RunResult struct {
	OpsPerSec    float64
	MBPerSec     float64
	CPUUsagePct  float64 // across all vCPUs, as the paper reports
	AvgOpMicros  float64
	ElapsedSec   float64
	BusyCycles   uint64 // interpreted + charged kernel cycles
	WaitCycles   uint64 // device wait
	RerandCycles uint64 // randomizer thread work
	RerandSteps  int
}

// Run executes cfg.Ops operations, interleaving re-randomizer steps on
// the virtual clock, and derives the figure-level metrics.
//
// Concurrency model (closed queueing, first-order): each of the Workers
// clients issues its next operation as soon as the previous completes.
// An operation holds a CPU for its busy portion and overlaps its device /
// client-round-trip wait with other workers. The sustainable rate is the
// minimum of three ceilings:
//
//	workers/latency   — Little's law over the closed population,
//	(N-1)/busy        — CPU capacity (one core's headroom reserved),
//	wire/bytesPerOp   — link bandwidth.
//
// This is what produces the paper's curves: throughput rising with
// concurrency until either the wire (Figs. 7/8) or the CPUs saturate.
func (m *Machine) Run(cfg RunConfig, op OpFunc) (RunResult, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 1000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	c := m.K.CPU(0)
	ncpu := m.K.NumCPUs()

	var res RunResult
	var elapsedUs float64
	nextRerand := cfg.RerandPeriodUs

	for i := 0; i < cfg.Ops; i++ {
		before := c.Cycles
		wait, err := op(c)
		if err != nil {
			return res, fmt.Errorf("sim: op %d: %w", i, err)
		}
		busy := c.Cycles - before + cfg.SyscallCycles
		res.BusyCycles += busy
		res.WaitCycles += wait

		busyUs := float64(busy) / CPUHz * 1e6
		latencyUs := float64(busy+wait) / CPUHz * 1e6
		ratePerUs := float64(cfg.Workers) / latencyUs
		if busyUs > 0 {
			if cpuRate := float64(ncpu-1) / busyUs; cpuRate < ratePerUs {
				ratePerUs = cpuRate
			}
		}
		if cfg.WireBps > 0 && cfg.BytesPerOp > 0 {
			if wireRate := cfg.WireBps / cfg.BytesPerOp / 1e6; wireRate < ratePerUs {
				ratePerUs = wireRate
			}
		}
		elapsedUs += 1 / ratePerUs

		for cfg.RerandPeriodUs > 0 && elapsedUs >= nextRerand {
			rep, err := m.R.Step()
			if err != nil {
				return res, err
			}
			res.RerandCycles += rep.Cycles
			res.RerandSteps++
			nextRerand += cfg.RerandPeriodUs
		}
	}

	res.ElapsedSec = elapsedUs / 1e6
	if res.ElapsedSec > 0 {
		res.OpsPerSec = float64(cfg.Ops) / res.ElapsedSec
		res.MBPerSec = res.OpsPerSec * cfg.BytesPerOp / 1e6
	}
	res.AvgOpMicros = elapsedUs / float64(cfg.Ops)
	totalCycles := float64(ncpu) * res.ElapsedSec * CPUHz
	if totalCycles > 0 {
		// Worker busy time is per-op busy × ops (all workers included:
		// each op's busy cycles were executed once on some core).
		res.CPUUsagePct = (float64(res.BusyCycles) + float64(res.RerandCycles)) / totalCycles * 100
	}
	return res, nil
}
