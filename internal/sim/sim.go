// Package sim assembles the full testbed of Table 1 in simulation: a
// 20-vCPU kernel at a nominal 2.2 GHz (the Xeon Silver 4114), an NVMe
// controller, a pair of back-to-back NICs (server + load generator), an
// xHCI controller, the driver suite, and the re-randomizer.
//
// Its Run method is the measurement harness every figure uses: it
// executes operations concurrently on the vCPUs via internal/engine
// (interpreting the real driver code paths, so wrapper/prologue/
// retpoline/GOT costs and post-remap TLB misses are all physically
// incurred), advances a deterministic virtual clock, fires the
// re-randomizer at its configured period on that clock, and reports
// throughput and all-core CPU usage the way §5 does.
package sim

import (
	"fmt"

	"adelie/internal/bus"
	"adelie/internal/devices"
	"adelie/internal/drivers"
	"adelie/internal/engine"
	"adelie/internal/kernel"
	"adelie/internal/mm"
	"adelie/internal/obs"
	"adelie/internal/rerand"
)

// CPUHz is the nominal clock of the simulated testbed (Table 1).
const CPUHz = engine.CPUHz

// mmioBase is where the device bus starts allocating MMIO windows
// (inside the kernel half, away from other regions). Windows come out
// in attach order: nvme, nic0, nic1, xhci — the same per-device bases
// the testbed used before the bus existed.
const mmioBase = mm.KernelBase + 0x7_0000_0000

// Config configures a machine.
type Config struct {
	NumCPUs int   // default 20 (Table 1 server)
	Seed    int64 // determinism knob
	KASLR   kernel.KASLRMode

	// NICQueues sets the server adapter's RX queue count (RSS). 0 and 1
	// both mean the legacy single-queue adapter, whose MMIO map, vector
	// allocation and RNG draws are byte-identical to the pre-multi-queue
	// machine. Capped at devices.MaxNICQueues.
	NICQueues int
}

// Machine is the assembled testbed. Devices hang off the Bus, which
// allocates their MMIO windows and owns the deterministic interrupt
// controller; the named fields are conveniences into the same devices.
type Machine struct {
	K    *kernel.Kernel
	R    *rerand.Randomizer
	Bus  *bus.Bus
	NVMe *devices.NVMe
	NIC  *devices.NIC // server-side adapter ("nic0")
	Peer *devices.NIC // load-generator adapter ("nic1")
	XHCI *devices.XHCI

	mods   map[string]*kernel.Module
	frozen bool // set by Snapshot: machine is a fork template, refuses Run/Call

	tracer *obs.Tracer   // default event tracer for Run (AttachObs)
	prof   *obs.Profiler // installed sampling profiler, if any (AttachObs)
}

// NewMachine boots the testbed: kernel, bus, and the Table-1 device set
// attached in fixed order (deterministic bases and IRQ lines).
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.NumCPUs == 0 {
		cfg.NumCPUs = 20
	}
	k, err := kernel.New(kernel.Config{NumCPUs: cfg.NumCPUs, Seed: cfg.Seed, KASLR: cfg.KASLR})
	if err != nil {
		return nil, err
	}
	if cfg.NICQueues > devices.MaxNICQueues {
		return nil, fmt.Errorf("sim: NICQueues %d exceeds the adapter's %d hardware queues",
			cfg.NICQueues, devices.MaxNICQueues)
	}
	m := &Machine{K: k, R: rerand.New(k), Bus: bus.New(k.AS, mmioBase), mods: map[string]*kernel.Module{}}
	// Guest-visible IRQ affinity (request_irq / irq_set_affinity) programs
	// the bus interrupt controller's vector routes.
	k.SetIRQRouter(m.Bus.IC().SetRoute)

	m.NVMe = devices.NewNVMe(k.AS)
	m.NIC = devices.NewNIC(k.AS)
	m.NIC.Name = "nic0"
	if cfg.NICQueues > 1 {
		m.NIC.SetQueues(cfg.NICQueues)
	}
	m.Peer = devices.NewNIC(k.AS)
	m.Peer.Name = "nic1"
	m.XHCI = devices.NewXHCI()
	for _, d := range []bus.Device{m.NVMe, m.NIC, m.Peer, m.XHCI} {
		if _, err := m.Bus.Attach(d); err != nil {
			return nil, err
		}
	}
	devices.Connect(m.NIC, m.Peer)
	return m, nil
}

// MMIOBase returns the bus window base of a named device ("nvme",
// "nic0", "nic1", "xhci").
func (m *Machine) MMIOBase(name string) (uint64, error) {
	base, ok := m.Bus.Base(name)
	if !ok {
		return 0, fmt.Errorf("sim: no device %q on the bus", name)
	}
	return base, nil
}

// LoadDriver builds, loads and (if re-randomizable) registers a driver.
func (m *Machine) LoadDriver(name string, o drivers.BuildOpts) (*kernel.Module, error) {
	mk, ok := drivers.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("sim: unknown driver %q", name)
	}
	obj, err := drivers.Build(mk(), o)
	if err != nil {
		return nil, err
	}
	mod, err := m.K.Load(obj)
	if err != nil {
		return nil, err
	}
	if o.Rerand {
		if err := m.R.Add(mod); err != nil {
			return nil, err
		}
	}
	m.mods[name] = mod
	return mod, nil
}

// Call invokes an exported driver symbol on vCPU 0.
func (m *Machine) Call(sym string, args ...uint64) (uint64, error) {
	if m.frozen {
		return 0, fmt.Errorf("sim: machine is a frozen snapshot template; Fork it to run")
	}
	va, ok := m.K.Symbol(sym)
	if !ok {
		return 0, fmt.Errorf("sim: symbol %q not exported", sym)
	}
	return m.K.CPU(0).Call(va, args...)
}

// InitNVMe allocates submission/completion queues and initializes the
// loaded NVMe driver against the controller. The queues carry one slot
// per vCPU (the driver dedicates slot smp_processor_id() to each CPU),
// so concurrent reads issued by the engine never share an entry.
func (m *Machine) InitNVMe() error {
	ncpu := uint64(m.K.NumCPUs())
	sq, err := m.K.Kmalloc(ncpu * 32)
	if err != nil {
		return err
	}
	cq, err := m.K.Kmalloc(ncpu * 16)
	if err != nil {
		return err
	}
	mmio, err := m.MMIOBase("nvme")
	if err != nil {
		return err
	}
	_, err = m.Call("nvme_init", mmio, sq, cq)
	return err
}

// InitNIC allocates descriptor rings and RX buffers for one of the NIC
// driver variants (prefix "e1000e", "e1000" or "ena") and initializes it
// against the server adapter, passing the adapter's bus IRQ line so the
// driver can request_irq its NAPI-style ISR. It returns the ring length
// used.
func (m *Machine) InitNIC(prefix string) (uint64, error) {
	return m.InitNICRing(prefix, 64)
}

// InitNICRing is InitNIC with a caller-chosen ring length (small rings
// force RX overruns for coalescing experiments). The length must be a
// power of two: the drivers mask slot indexes instead of dividing, so
// any other length would silently desync the driver's cursor from the
// device's fill pointer.
func (m *Machine) InitNICRing(prefix string, ringLen uint64) (uint64, error) {
	if ringLen == 0 || ringLen&(ringLen-1) != 0 {
		return 0, fmt.Errorf("sim: NIC ring length %d is not a power of two", ringLen)
	}
	tx, err := m.K.Kmalloc(ringLen * 16)
	if err != nil {
		return 0, err
	}
	rx, err := m.K.Kmalloc(ringLen * 16)
	if err != nil {
		return 0, err
	}
	// Pre-post RX buffers.
	for i := uint64(0); i < ringLen; i++ {
		buf, err := m.K.Kmalloc(2048)
		if err != nil {
			return 0, err
		}
		if err := m.K.AS.Write64(rx+i*16, buf); err != nil {
			return 0, err
		}
	}
	mmio, err := m.MMIOBase("nic0")
	if err != nil {
		return 0, err
	}
	_, err = m.Call(prefix+"_init", mmio, tx, rx, ringLen, uint64(m.NIC.IRQLine()))
	return ringLen, err
}

// InitNICMQ allocates a TX ring plus one RX ring per hardware queue and
// initializes the multi-queue driver (prefix "e1000emq") against the
// server adapter. The driver's init walks the ring table, programs each
// queue's device ring register, registers its NAPI ISR on each queue's
// vector and pins queue q's vector to vCPU q — so the machine must have
// been built with Config.NICQueues matching queues. Ring length rules
// are InitNICRing's.
func (m *Machine) InitNICMQ(prefix string, ringLen uint64, queues int) (uint64, error) {
	if ringLen == 0 || ringLen&(ringLen-1) != 0 {
		return 0, fmt.Errorf("sim: NIC ring length %d is not a power of two", ringLen)
	}
	if queues < 1 || queues > m.NIC.NumQueues() {
		return 0, fmt.Errorf("sim: %d queues requested, adapter has %d", queues, m.NIC.NumQueues())
	}
	tx, err := m.K.Kmalloc(ringLen * 16)
	if err != nil {
		return 0, err
	}
	// Ring table: queues consecutive RX ring base addresses, each ring
	// with pre-posted buffers.
	rxtab, err := m.K.Kmalloc(uint64(queues) * 8)
	if err != nil {
		return 0, err
	}
	for q := 0; q < queues; q++ {
		rx, err := m.K.Kmalloc(ringLen * 16)
		if err != nil {
			return 0, err
		}
		for i := uint64(0); i < ringLen; i++ {
			buf, err := m.K.Kmalloc(2048)
			if err != nil {
				return 0, err
			}
			if err := m.K.AS.Write64(rx+i*16, buf); err != nil {
				return 0, err
			}
		}
		if err := m.K.AS.Write64(rxtab+uint64(q)*8, rx); err != nil {
			return 0, err
		}
	}
	mmio, err := m.MMIOBase("nic0")
	if err != nil {
		return 0, err
	}
	lines := m.Bus.IRQLines("nic0")
	if len(lines) < queues {
		return 0, fmt.Errorf("sim: adapter has %d vectors, %d queues requested", len(lines), queues)
	}
	_, err = m.Call(prefix+"_init", mmio, tx, rxtab, ringLen, uint64(queues), uint64(lines[0]))
	return ringLen, err
}

// InitNVMeIRQ switches the storage path to completion interrupts: it
// loads nothing itself (the "nvmeirq" companion driver must already be
// loaded), registers the completion ISR on the controller's vector
// pinned to the given vCPU, and enables the controller's interrupt.
func (m *Machine) InitNVMeIRQ(vcpu int) error {
	mmio, err := m.MMIOBase("nvme")
	if err != nil {
		return err
	}
	line := m.Bus.IRQLine("nvme")
	if line < 0 {
		return fmt.Errorf("sim: nvme has no interrupt line")
	}
	_, err = m.Call("nvmeirq_setup", uint64(line), uint64(vcpu), mmio)
	return err
}

// InitXHCI initializes the xHCI driver.
func (m *Machine) InitXHCI() error {
	mmio, err := m.MMIOBase("xhci")
	if err != nil {
		return err
	}
	_, err = m.Call("xhci_init", mmio)
	return err
}

// Module returns a loaded driver module.
func (m *Machine) Module(name string) *kernel.Module { return m.mods[name] }

// OpFunc executes one benchmark operation on the vCPU, returning the
// device wait in cycles (time the CPU is idle on I/O) and any fault.
// Operations run concurrently on up to min(Workers, NumCPUs) vCPUs;
// any host-side closure state must be kept per-lane (index it by c.ID),
// and guest code on the path must be SMP-correct (see internal/engine).
type OpFunc = engine.OpFunc

// RunConfig parameterizes a measurement.
type RunConfig = engine.RunConfig

// RunResult is one measured configuration — a point on a §5 figure.
type RunResult = engine.RunResult

// Engine returns the parallel execution engine for this machine, wired
// to the device bus: the re-randomizer runs as a clocked actor, epoch
// devices (the NVMe controller) are discovered from the bus by
// interface assertion, and device interrupts are delivered at the
// engine's clock boundaries.
func (m *Machine) Engine() *engine.Engine {
	return engine.New(m.K, m.R, m.Bus)
}

// Run executes cfg.Ops operations across the machine's vCPUs under the
// deterministic barrier-synchronized virtual clock, interleaving
// re-randomizer steps, and derives the figure-level metrics. Lanes
// retire whole decoded basic blocks per round slot (superblock
// execution, reported in RunResult.Blocks), chained block→block along
// hot traces without returning to the dispatch loop (trace linking,
// reported in RunResult.ChainedBlocks — direct links and the monomorphic
// indirect target cache alike, the latter also broken out in
// RunResult.IndirectChained); per-block costs are replayed
// into the closed-queueing model unchanged. See engine.Engine.Run for
// the execution and queueing model and internal/cpu's superblock.go for
// the link-invalidation contract.
func (m *Machine) Run(cfg RunConfig, op OpFunc) (RunResult, error) {
	if m.frozen {
		return RunResult{}, fmt.Errorf("sim: machine is a frozen snapshot template; Fork it to run")
	}
	if cfg.Trace == nil {
		cfg.Trace = m.tracer
	}
	if cfg.Profile != nil {
		// Per-run profiler: install for the duration of this run, then
		// restore whatever AttachObs left in place.
		m.installProfiler(cfg.Profile)
		defer m.installProfiler(m.prof)
	}
	return m.Engine().Run(cfg, op)
}
