package sim_test

import (
	"reflect"
	"testing"
	"time"

	"adelie/internal/cpu"
	"adelie/internal/drivers"
	"adelie/internal/kernel"
	"adelie/internal/sim"
)

func TestForkRequiresSnapshot(t *testing.T) {
	m := newMachine(t)
	if _, err := m.Fork(); err == nil {
		t.Fatal("fork of an unfrozen machine accepted")
	}
}

func TestSnapshotFreezesMachine(t *testing.T) {
	m := newMachine(t)
	loadDummy(t, m, false)
	if err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if !m.Frozen() {
		t.Fatal("machine not frozen after snapshot")
	}
	if err := m.Snapshot(); err != nil {
		t.Fatalf("snapshot not idempotent: %v", err)
	}
	if _, err := m.Call("dummy_ioctl", 0); err == nil {
		t.Fatal("frozen machine accepted Call")
	}
	if _, err := m.Run(sim.RunConfig{Ops: 1, Workers: 1}, func(c *cpu.CPU) (uint64, error) {
		return 0, nil
	}); err == nil {
		t.Fatal("frozen machine accepted Run")
	}
}

func TestForkRunMatchesColdBoot(t *testing.T) {
	// A fork must produce bit-identical results to a cold-booted machine
	// of the same configuration — the fork-determinism contract the
	// parallel sweep runner relies on.
	cfg := sim.RunConfig{Ops: 300, Workers: 4, RerandPeriodUs: 500, SyscallCycles: 2000}
	boot := func() *sim.Machine {
		m, err := sim.NewMachine(sim.Config{NumCPUs: 20, Seed: 5, KASLR: kernel.KASLRFull64})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.LoadDriver("dummy", drivers.BuildOpts{PIC: true, Rerand: true, RetEncrypt: true}); err != nil {
			t.Fatal(err)
		}
		return m
	}
	run := func(m *sim.Machine) sim.RunResult {
		va, _ := m.K.Symbol("dummy_ioctl")
		res, err := m.Run(cfg, func(c *cpu.CPU) (uint64, error) {
			_, err := c.Call(va, 0)
			return 0, err
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	cold := run(boot())

	tmpl := boot()
	if err := tmpl.Snapshot(); err != nil {
		t.Fatal(err)
	}
	f1, err := tmpl.Fork()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := tmpl.Fork()
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := run(f1), run(f2)
	if !reflect.DeepEqual(r1, cold) {
		t.Fatalf("fork diverges from cold boot:\nfork: %+v\ncold: %+v", r1, cold)
	}
	if !reflect.DeepEqual(r2, cold) {
		t.Fatalf("second fork diverges from cold boot:\nfork: %+v\ncold: %+v", r2, cold)
	}
	f1.Release()
	f2.Release()
}

func TestForkDriverStateIndependent(t *testing.T) {
	// Each fork gets its own devices and modules: running one fork must
	// not advance the template's or a sibling's counters.
	tmpl := newMachine(t)
	loadDummy(t, tmpl, true)
	if err := tmpl.Snapshot(); err != nil {
		t.Fatal(err)
	}
	f1, err := tmpl.Fork()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := tmpl.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if f1.Module("dummy") == tmpl.Module("dummy") || f1.Module("dummy") == f2.Module("dummy") {
		t.Fatal("forks share module bookkeeping")
	}
	if f1.NVMe == tmpl.NVMe || f1.NIC == f2.NIC {
		t.Fatal("forks share devices")
	}
	va, _ := f1.K.Symbol("dummy_ioctl")
	if _, err := f1.Run(sim.RunConfig{Ops: 100, Workers: 2, RerandPeriodUs: 100, SyscallCycles: 100_000},
		func(c *cpu.CPU) (uint64, error) {
			_, err := c.Call(va, 0)
			return 0, err
		}); err != nil {
		t.Fatal(err)
	}
	if f1.Module("dummy").Rerandomizations == 0 {
		t.Fatal("fork's re-randomizer never moved its module")
	}
	if got := tmpl.Module("dummy").Rerandomizations; got != 0 {
		t.Fatalf("template module moved %d times by a fork's run", got)
	}
	if got := f2.Module("dummy").Rerandomizations; got != 0 {
		t.Fatalf("sibling module moved %d times by another fork's run", got)
	}
	f1.Release()
	f2.Release()
}

func TestForkLatency(t *testing.T) {
	// The tentpole perf target: forking is orders of magnitude cheaper
	// than booting. The hard ≤1ms number is tracked by benchtool's
	// selfbench (fork_us); here we only guard against gross regression.
	tmpl := newMachine(t)
	loadDummy(t, tmpl, true)
	if err := tmpl.Snapshot(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	const n = 10
	for i := 0; i < n; i++ {
		f, err := tmpl.Fork()
		if err != nil {
			t.Fatal(err)
		}
		f.Release()
	}
	per := time.Since(start) / n
	t.Logf("fork+release latency: %v", per)
	if per > 50*time.Millisecond {
		t.Fatalf("fork latency %v, want well under boot cost", per)
	}
}
