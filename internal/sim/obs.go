package sim

import "adelie/internal/obs"

// AttachObs wires the observability subsystem to the machine: tr (may
// be nil) becomes the machine's default event tracer — every subsequent
// Run whose RunConfig.Trace is unset records into it — and prof (may be
// nil) installs virtual-clock sample hooks on every vCPU that persist
// until detached with AttachObs(nil-or-tr, nil).
//
// Samples are symbolized eagerly, at sample time, against the kernel's
// live module map: a sample taken inside a re-randomizable driver
// attributes to "module;function" regardless of where re-randomization
// has currently placed the function, so profiles aggregate across
// rerand epochs. Eager symbolization is safe because module part bases
// only move at engine barriers, when every lane is quiescent, and
// Module.FindFunc takes the module lock. The hooks run off the
// simulated clock — sampling never adds simulated cycles — and a nil
// sampler costs one pointer compare per block, so disabled
// observability cannot perturb any figure.
func (m *Machine) AttachObs(tr *obs.Tracer, prof *obs.Profiler) {
	m.tracer = tr
	m.prof = prof
	m.installProfiler(prof)
}

// installProfiler points every vCPU's sample hook at p's lanes (or
// clears the hooks when p is nil). Each vCPU gets its own single-writer
// lane, so concurrent sampling needs no locks on the hot path.
func (m *Machine) installProfiler(p *obs.Profiler) {
	for i := 0; i < m.K.NumCPUs(); i++ {
		c := m.K.CPU(i)
		if p == nil {
			c.SetSampler(0, nil)
			continue
		}
		lane := p.NewLane()
		c.SetSampler(p.Period(), func(va uint64) {
			if n, ok := c.NativeTable()[va]; ok {
				lane.Hit("kernel;" + n.Name)
				return
			}
			lane.Hit(m.symbolizeModule(va))
		})
	}
}

// symbolizeModule resolves a sampled VA to "module;function" against
// the currently loaded modules. VAs that fall outside every module (or
// inside a module but outside any function symbol) aggregate under
// "[unknown]" — never under the transient address, which would smear
// one function across rerand epochs and break run-to-run determinism
// of the rendered profile.
func (m *Machine) symbolizeModule(va uint64) string {
	for _, mod := range m.K.Modules() {
		if fn, ok := mod.FindFunc(va); ok {
			return mod.Name + ";" + fn
		}
	}
	return "[unknown]"
}
