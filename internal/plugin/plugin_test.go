package plugin

import (
	"strings"
	"testing"

	"adelie/internal/elfmod"
	"adelie/internal/isa"
	"adelie/internal/kcc"
)

// driverModule is a miniature driver: one exported entry point, one static
// helper, a state global and an exported read-only ops table.
func driverModule() *kcc.Module {
	m := &kcc.Module{Name: "drv"}
	m.AddFunc("helper", false,
		kcc.MovImm(isa.RAX, 5),
		kcc.Ret(),
	)
	m.AddFunc("drv_ioctl", true,
		kcc.Call("helper"),
		kcc.GlobalLoad(isa.RBX, "state"),
		kcc.Arith(kcc.OpAdd, isa.RAX, isa.RBX),
		kcc.Ret(),
	)
	m.AddGlobal(kcc.Global{Name: "state", Size: 8, Init: make([]byte, 8)})
	m.AddGlobal(kcc.Global{
		Name: "drv_ops", Size: 8, Init: make([]byte, 8), Export: true, ReadOnly: true,
		Relocs: []kcc.DataReloc{{Offset: 0, Sym: "drv_ioctl"}},
	})
	return m
}

func TestTransformWrapsExports(t *testing.T) {
	m := driverModule()
	if err := Transform(m, Options{StackRerand: true, RetEncrypt: true}); err != nil {
		t.Fatal(err)
	}
	real := m.Func("drv_ioctl" + RealSuffix)
	if real == nil {
		t.Fatal("exported function not renamed to .real")
	}
	if real.Export {
		t.Fatal(".real body must become static")
	}
	w := m.Func("drv_ioctl")
	if w == nil || !w.Wrapper || !w.InFixedText || !w.Export || !w.NoInstrument {
		t.Fatalf("wrapper malformed: %+v", w)
	}
	// Wrapper structure: mr_start, get_new_stack, call .real,
	// return_old_stack, push, mr_finish, pop, ret.
	var calls []string
	for _, in := range w.Body {
		if in.Kind == kcc.ICall {
			calls = append(calls, in.Sym)
		}
	}
	want := []string{SymMrStart, SymGetNewStack, "drv_ioctl" + RealSuffix, SymReturnOldStack, SymMrFinish}
	if len(calls) != len(want) {
		t.Fatalf("wrapper calls %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("wrapper call %d = %s, want %s", i, calls[i], want[i])
		}
	}
}

func TestTransformWithoutStackRerand(t *testing.T) {
	m := driverModule()
	if err := Transform(m, Options{RetEncrypt: true}); err != nil {
		t.Fatal(err)
	}
	for _, in := range m.Func("drv_ioctl").Body {
		if in.Kind == kcc.ICall && (in.Sym == SymGetNewStack || in.Sym == SymReturnOldStack) {
			t.Fatal("stack swap emitted despite StackRerand=false")
		}
	}
}

func TestEncryptionVariants(t *testing.T) {
	m := driverModule()
	if err := Transform(m, Options{RetEncrypt: true}); err != nil {
		t.Fatal(err)
	}
	// Wrapped (originally exported) body uses the %r11 variant.
	real := m.Func("drv_ioctl" + RealSuffix)
	if real.Body[0].Kind != kcc.IGotLoad || real.Body[0].Dst != isa.R11 {
		t.Fatalf("non-static prologue should load key into r11, got %+v", real.Body[0])
	}
	if real.Body[1].Kind != kcc.IXorMem || real.Body[1].Off != 0 {
		t.Fatalf("non-static prologue should xor (rsp), got %+v", real.Body[1])
	}
	// r11 must be cleared to avoid key leakage.
	if real.Body[2].Kind != kcc.IArith || real.Body[2].Op != kcc.OpXor || real.Body[2].Dst != isa.R11 {
		t.Fatalf("scratch register not cleared: %+v", real.Body[2])
	}
	// Static helper uses the %rbp variant with push/pop.
	h := m.Func("helper")
	if h.Body[0].Kind != kcc.IPush || h.Body[0].Src != isa.RBP {
		t.Fatalf("static prologue should push rbp, got %+v", h.Body[0])
	}
	if h.Body[1].Kind != kcc.IGotLoad || h.Body[1].Dst != isa.RBP {
		t.Fatalf("static prologue should load key into rbp, got %+v", h.Body[1])
	}
	if h.Body[2].Kind != kcc.IXorMem || h.Body[2].Off != 8 {
		t.Fatalf("static variant must xor 8(%%rsp) above the pushed rbp, got %+v", h.Body[2])
	}
}

func TestEpilogueBeforeEveryRet(t *testing.T) {
	m := &kcc.Module{Name: "m"}
	m.AddFunc("multi", true,
		kcc.CmpImm(isa.RDI, 0),
		kcc.Br(kcc.CondEQ, "zero"),
		kcc.MovImm(isa.RAX, 1),
		kcc.Ret(),
		kcc.Label("zero"),
		kcc.MovImm(isa.RAX, 0),
		kcc.Ret(),
	)
	if err := Transform(m, Options{RetEncrypt: true}); err != nil {
		t.Fatal(err)
	}
	body := m.Func("multi" + RealSuffix).Body
	rets, xors := 0, 0
	for _, in := range body {
		switch in.Kind {
		case kcc.IRet:
			rets++
		case kcc.IXorMem:
			xors++
		}
	}
	if rets != 2 {
		t.Fatalf("rets = %d", rets)
	}
	if xors != 3 { // 1 prologue + 2 epilogues
		t.Fatalf("xor-mem count = %d, want 3 (prologue + one per ret)", xors)
	}
}

func TestDoubleTransformRejected(t *testing.T) {
	m := driverModule()
	if err := Transform(m, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := Transform(m, Options{}); err == nil {
		t.Fatal("second transform accepted")
	}
}

func TestNoExportsRejected(t *testing.T) {
	m := &kcc.Module{Name: "m"}
	m.AddFunc("quiet", false, kcc.Ret())
	if err := Transform(m, Options{}); err == nil || !strings.Contains(err.Error(), "no functions") {
		t.Fatalf("got %v", err)
	}
}

func TestExportedWritableGlobalRejected(t *testing.T) {
	m := driverModule()
	m.AddGlobal(kcc.Global{Name: "bad", Size: 8, Init: make([]byte, 8), Export: true})
	if err := Transform(m, Options{}); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("got %v", err)
	}
}

func TestBuildProducesRerandomizableObject(t *testing.T) {
	obj, err := Build(driverModule(), Options{Retpoline: true, StackRerand: true, RetEncrypt: true})
	if err != nil {
		t.Fatal(err)
	}
	if !obj.Rerandomizable || !obj.PIC || !obj.Retpoline {
		t.Fatalf("object flags wrong: rerand=%v pic=%v retpoline=%v",
			obj.Rerandomizable, obj.PIC, obj.Retpoline)
	}
	// .fixed.text must exist and contain the wrapper.
	if _, sec := obj.SectionOf(elfmod.SecFixedText); sec == nil {
		t.Fatal("no .fixed.text section")
	}
	s, ok := obj.Lookup("drv_ioctl")
	if !ok || !s.Wrapper {
		t.Fatal("wrapper symbol missing or unflagged")
	}
	// Key accesses must reference the key pseudo-symbol.
	found := false
	for _, u := range obj.Undefineds() {
		if u == elfmod.KeySymbol {
			found = true
		}
	}
	if !found {
		t.Fatal("key pseudo-symbol not imported")
	}
	if err := obj.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildWithoutEncryptionHasNoKeyImport(t *testing.T) {
	obj, err := Build(driverModule(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range obj.Undefineds() {
		if u == elfmod.KeySymbol {
			t.Fatal("key imported despite RetEncrypt=false")
		}
	}
}
