// Package plugin is the reproduction's analogue of Adelie's GCC plugin
// (~1400 LoC in the paper): an automatic IR-to-IR transform that converts
// an ordinary driver module into a re-randomizable one.
//
// Per paper §3.4 and Fig. 3, the transform:
//
//  1. renames every exported function f to "f.real" (movable, static) and
//     emits a wrapper named f into .fixed.text (immovable) that brackets
//     the call with mr_start/mr_finish and optionally swaps to a stack
//     from the per-CPU pool;
//  2. injects a return-address encryption prologue and epilogue into every
//     movable function: the key is loaded from the local GOT (where the
//     re-randomizer rotates it), XORed over the return slot, and the
//     scratch register cleared to avoid key leakage. Functions that were
//     exported use the %r11 variant; static functions recycle %rbp
//     (paper Fig. 3b, both variants);
//  3. leaves data relocations that referenced exported functions pointing
//     at the wrappers (which keep the original names), so static ops
//     tables handed to the kernel contain immovable addresses only.
package plugin

import (
	"fmt"

	"adelie/internal/elfmod"
	"adelie/internal/isa"
	"adelie/internal/kcc"
)

// RealSuffix is appended to the movable body of a wrapped function.
const RealSuffix = ".real"

// Kernel helpers the generated code imports. The kernel (and
// internal/rerand for the stack pair) provide these natives.
const (
	SymMrStart        = "mr_start"
	SymMrFinish       = "mr_finish"
	SymGetNewStack    = "get_new_stack"
	SymReturnOldStack = "return_old_stack"
)

// Options configure the transform. The paper evaluates these as separate
// mechanisms (Fig. 9 isolates wrapper cost from stack re-randomization
// cost), so each is independently switchable for ablation.
type Options struct {
	Retpoline   bool // compile with retpoline thunks / PLT stubs
	StackRerand bool // wrappers swap to a pooled stack (Fig. 3b left)
	RetEncrypt  bool // prologue/epilogue return-address encryption (Fig. 3b right)
}

// Transform rewrites m in place into re-randomizable form. It is
// idempotent in effect only for modules not previously transformed;
// calling it twice is an error.
func Transform(m *kcc.Module, opts Options) error {
	for _, f := range m.Funcs {
		if f.Wrapper || f.InFixedText {
			return fmt.Errorf("plugin: module %s already transformed", m.Name)
		}
	}

	// Pass 1: wrap exported functions.
	var wrappers []*kcc.Func
	wasExported := map[string]bool{}
	for _, f := range m.Funcs {
		if !f.Export {
			continue
		}
		wasExported[f.Name] = true
		orig := f.Name
		f.Name = orig + RealSuffix
		f.Export = false
		wrappers = append(wrappers, makeWrapper(orig, opts))
	}
	if len(wrappers) == 0 {
		return fmt.Errorf("plugin: module %s exports no functions to wrap", m.Name)
	}
	m.Funcs = append(m.Funcs, wrappers...)

	// Pass 2: prologue/epilogue injection on movable functions.
	if opts.RetEncrypt {
		for _, f := range m.Funcs {
			if f.InFixedText || f.NoInstrument {
				continue
			}
			static := !wasExported[trimReal(f.Name)]
			injectEncryption(f, static)
		}
	}

	// Pass 3: data relocations referencing a wrapped function by its
	// original name now resolve to the wrapper automatically (it kept the
	// name). References that explicitly target the movable body keep
	// working and are slid by the re-randomizer. Nothing to rewrite —
	// but reject exported writable globals, which would hand the kernel a
	// movable address the loader cannot keep stable.
	for _, g := range m.Globals {
		if g.Export && !g.ReadOnly && g.Init != nil {
			return fmt.Errorf("plugin: module %s: exported writable global %q must be read-only (immovable) or unexported", m.Name, g.Name)
		}
		if g.Export && g.Init == nil {
			return fmt.Errorf("plugin: module %s: exported .bss global %q not supported in re-randomizable modules", m.Name, g.Name)
		}
	}
	return nil
}

func trimReal(name string) string {
	if len(name) > len(RealSuffix) && name[len(name)-len(RealSuffix):] == RealSuffix {
		return name[:len(name)-len(RealSuffix)]
	}
	return name
}

// makeWrapper emits the immovable wrapper of paper Fig. 3a:
//
//	long f(long arg) {
//	    mr_start();
//	    get_new_stack();          // if stack re-randomization is on
//	    long ret = f.real(arg);
//	    return_old_stack();
//	    mr_finish();
//	    return ret;
//	}
//
// Argument registers pass through untouched (up to six register args,
// §3.4). The return value is stashed in callee-saved %rbx across the
// helper calls: under retpoline those calls go through PLT stubs that
// clobber %rax (JMP_NOSPEC's one safe scratch register, paper §4.1
// footnote), and a stack save would not survive the stack switch.
func makeWrapper(name string, opts Options) *kcc.Func {
	var body []kcc.Ins
	body = append(body, kcc.Push(isa.RBX))
	body = append(body, kcc.Call(SymMrStart))
	if opts.StackRerand {
		body = append(body, kcc.Call(SymGetNewStack))
	}
	body = append(body, kcc.Call(name+RealSuffix))
	body = append(body, kcc.MovReg(isa.RBX, isa.RAX)) // long ret = f.real(...)
	if opts.StackRerand {
		body = append(body, kcc.Call(SymReturnOldStack))
	}
	body = append(body,
		kcc.Call(SymMrFinish),
		kcc.MovReg(isa.RAX, isa.RBX), // return ret
		kcc.Pop(isa.RBX),
		kcc.Ret(),
	)
	return &kcc.Func{
		Name: name, Export: true, Body: body,
		InFixedText: true, NoInstrument: true, Wrapper: true,
	}
}

// injectEncryption adds the Fig.-3b prologue/epilogue. The non-static
// variant uses %r11 as scratch and clears it afterwards; the static
// variant cannot assume %r11 is free (custom calling conventions), so it
// recycles %rbp with an extra push/pop.
func injectEncryption(f *kcc.Func, static bool) {
	var prologue, epilogue []kcc.Ins
	if static {
		prologue = []kcc.Ins{
			kcc.Push(isa.RBP),
			kcc.GotLoad(isa.RBP, elfmod.KeySymbol),
			kcc.XorMem(isa.RSP, 8, isa.RBP), // return slot is above the pushed rbp
			kcc.Pop(isa.RBP),
		}
	} else {
		prologue = []kcc.Ins{
			kcc.GotLoad(isa.R11, elfmod.KeySymbol),
			kcc.XorMem(isa.RSP, 0, isa.R11),
			kcc.Arith(kcc.OpXor, isa.R11, isa.R11), // avoid key leakage
		}
	}
	epilogue = prologue // the XOR is its own inverse; sequences are identical

	out := make([]kcc.Ins, 0, len(f.Body)+len(prologue)*4)
	out = append(out, prologue...)
	for _, in := range f.Body {
		if in.Kind == kcc.IRet {
			out = append(out, epilogue...)
		}
		out = append(out, in)
	}
	f.Body = out
}

// Build runs the transform and compiles the module as a re-randomizable
// PIC object — the one-stop entry point drivers use.
func Build(m *kcc.Module, opts Options) (*elfmod.Object, error) {
	if err := Transform(m, opts); err != nil {
		return nil, err
	}
	return kcc.Compile(m, kcc.Options{
		Model:          kcc.ModelPIC,
		Retpoline:      opts.Retpoline,
		Rerandomizable: true,
	})
}
