package attack

import (
	"math"
	"math/rand"

	"adelie/internal/mm"
)

// Entropy analysis of §6 ("Traditional ROP"). An attacker injecting an
// absolute gadget address must guess it; the success probability per
// attempt is determined by the KASLR placement window and page alignment.

// Paper window widths: vanilla Linux KASLR confines modules to a 31-bit
// region; Adelie's PIC model uses the full kernel half of the 57-bit
// space (56 bits).
const (
	VanillaWindowBits = 31
	Full64WindowBits  = 56
	pageBits          = 12
)

// GuessProbability returns the per-attempt probability of guessing a
// page-aligned module address inside a window of the given width:
// 2^-(bits-12). For the paper's numbers: vanilla → 2^-19, Adelie → 2^-44.
func GuessProbability(windowBits int) float64 {
	return math.Pow(2, -float64(windowBits-pageBits))
}

// ExpectedAttempts returns the expected number of brute-force probes
// before hitting a target page.
func ExpectedAttempts(windowBits int) float64 {
	return 1 / GuessProbability(windowBits)
}

// BruteForceResult is one simulated brute-force campaign.
type BruteForceResult struct {
	Found    bool
	Attempts int
}

// SimulateBruteForce models the §1-footnote attack: the attacker fires
// page-aligned guesses uniformly inside [lo,hi) until one lands inside the
// target region [targetBase, targetBase+targetSize) or the budget runs
// out. Each failed kernel-space guess would be an oops — the simulation
// just counts them.
func SimulateBruteForce(rng *rand.Rand, lo, hi, targetBase, targetSize uint64, maxAttempts int) BruteForceResult {
	span := (hi - lo) / mm.PageSize
	if span == 0 {
		return BruteForceResult{}
	}
	for i := 1; i <= maxAttempts; i++ {
		guess := lo + (uint64(rng.Int63())%span)*mm.PageSize
		if guess >= targetBase && guess < targetBase+targetSize {
			return BruteForceResult{Found: true, Attempts: i}
		}
	}
	return BruteForceResult{Found: false, Attempts: maxAttempts}
}
