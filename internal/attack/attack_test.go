package attack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adelie/internal/cpu"
	"adelie/internal/isa"
	"adelie/internal/kcc"
	"adelie/internal/kernel"
	"adelie/internal/plugin"
)

func asm(insts ...isa.Inst) []byte {
	var b []byte
	for _, in := range insts {
		b = in.Append(b)
	}
	return b
}

func TestScanFindsAlignedGadget(t *testing.T) {
	code := asm(
		isa.Inst{Op: isa.OpPOP, R1: isa.RDI},
		isa.Inst{Op: isa.OpRET},
	)
	gs := Scan(code, 0x1000)
	if len(gs) == 0 {
		t.Fatal("no gadgets found")
	}
	found := false
	for _, g := range gs {
		if g.VA == 0x1000 && g.Class == ClassPop && g.EndsIn == isa.OpRET {
			found = true
		}
	}
	if !found {
		t.Fatalf("pop rdi; ret not found: %v", gs)
	}
}

func TestScanFindsMisalignedGadget(t *testing.T) {
	// A movabs whose immediate bytes contain pop rsi; ret — invisible at
	// instruction granularity, harvestable by a byte-level scan.
	imm := int64(0)
	payload := []byte{byte(isa.OpPOP), byte(isa.RSI), byte(isa.OpRET), 0x90, 0x90, 0x90, 0x90, 0x90}
	for i := 7; i >= 0; i-- {
		imm = imm<<8 | int64(payload[i])
	}
	code := asm(
		isa.Inst{Op: isa.OpMOVABS, R1: isa.RAX, Imm: imm},
		isa.Inst{Op: isa.OpRET},
	)
	gs := Scan(code, 0)
	found := false
	for _, g := range gs {
		if g.VA == 2 && g.Insts[0].Op == isa.OpPOP && g.Insts[0].R1 == isa.RSI {
			found = true
		}
	}
	if !found {
		t.Fatal("misaligned pop rsi; ret not discovered")
	}
}

func TestScanSkipsBrokenSequences(t *testing.T) {
	// A direct branch before the ret breaks the chain.
	code := asm(
		isa.Inst{Op: isa.OpPOP, R1: isa.RDI},
		isa.Inst{Op: isa.OpJMP, Disp: 4},
		isa.Inst{Op: isa.OpRET},
	)
	for _, g := range Scan(code, 0) {
		if g.VA == 0 {
			t.Fatalf("gadget across a direct branch: %v", g)
		}
	}
}

func TestScanQuickNeverPanics(t *testing.T) {
	f := func(code []byte) bool {
		gs := Scan(code, 0x4000)
		for _, g := range gs {
			if len(g.Insts) == 0 || len(g.Insts) > MaxGadgetInsts {
				return false
			}
			last := g.Insts[len(g.Insts)-1].Op
			if last != isa.OpRET && last != isa.OpJMPR && last != isa.OpCALLR {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestClassification(t *testing.T) {
	cases := []struct {
		insts []isa.Inst
		want  GadgetClass
	}{
		{[]isa.Inst{{Op: isa.OpPOP, R1: isa.RAX}, {Op: isa.OpRET}}, ClassPop},
		{[]isa.Inst{{Op: isa.OpMOV, R1: isa.RAX, R2: isa.RBX}, {Op: isa.OpRET}}, ClassMov},
		{[]isa.Inst{{Op: isa.OpADD, R1: isa.RAX, R2: isa.RBX}, {Op: isa.OpRET}}, ClassArith},
		{[]isa.Inst{{Op: isa.OpXOR, R1: isa.RAX, R2: isa.RBX}, {Op: isa.OpRET}}, ClassLogic},
		{[]isa.Inst{{Op: isa.OpLOAD, R1: isa.RAX, R2: isa.RBX}, {Op: isa.OpRET}}, ClassMemory},
		{[]isa.Inst{{Op: isa.OpNOP}, {Op: isa.OpJMPR, R1: isa.RAX}}, ClassControl},
	}
	for _, c := range cases {
		code := asm(c.insts...)
		gs := Scan(code, 0)
		if len(gs) == 0 {
			t.Fatalf("no gadget for %v", c.insts)
		}
		if gs[0].Class != c.want {
			t.Errorf("class = %v, want %v (%v)", gs[0].Class, c.want, gs[0])
		}
	}
}

func TestDistribution(t *testing.T) {
	code := asm(
		isa.Inst{Op: isa.OpPOP, R1: isa.RDI}, isa.Inst{Op: isa.OpRET},
		isa.Inst{Op: isa.OpMOV, R1: isa.RAX, R2: isa.RBX}, isa.Inst{Op: isa.OpRET},
	)
	d := Distribute(Scan(code, 0))
	if d.Total() == 0 || d[ClassPop] == 0 {
		t.Fatalf("distribution wrong: %v", d)
	}
}

func TestBuildNXChain(t *testing.T) {
	code := asm(
		isa.Inst{Op: isa.OpPOP, R1: isa.RDI}, isa.Inst{Op: isa.OpRET},
		isa.Inst{Op: isa.OpPOP, R1: isa.RSI}, isa.Inst{Op: isa.OpRET},
		isa.Inst{Op: isa.OpPOP, R1: isa.RDX}, isa.Inst{Op: isa.OpRET},
	)
	gs := Scan(code, 0x7000)
	ch, err := BuildNXChain(gs, 0xAABB, [3]uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if ch.Quality != ChainClean {
		t.Fatalf("quality = %v, want clean", ch.Quality)
	}
	if len(ch.Words) != 7 || ch.Words[len(ch.Words)-1] != 0xAABB {
		t.Fatalf("payload = %#v", ch.Words)
	}
}

func TestBuildNXChainSideEffect(t *testing.T) {
	// pop rdi is only available with a store in between → dirty chain.
	code := asm(
		isa.Inst{Op: isa.OpPOP, R1: isa.RDI},
		isa.Inst{Op: isa.OpSTORE, R1: isa.RAX, R2: isa.RBX},
		isa.Inst{Op: isa.OpRET},
		isa.Inst{Op: isa.OpPOP, R1: isa.RSI}, isa.Inst{Op: isa.OpRET},
		isa.Inst{Op: isa.OpPOP, R1: isa.RDX}, isa.Inst{Op: isa.OpRET},
	)
	ch, err := BuildNXChain(Scan(code, 0), 0x1, [3]uint64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if ch.Quality != ChainWithSideEffect {
		t.Fatalf("quality = %v, want side-effect", ch.Quality)
	}
}

func TestBuildNXChainMissingGadget(t *testing.T) {
	code := asm(
		isa.Inst{Op: isa.OpPOP, R1: isa.RDI}, isa.Inst{Op: isa.OpRET},
	)
	if _, err := BuildNXChain(Scan(code, 0), 0x1, [3]uint64{0, 0, 0}); err == nil {
		t.Fatal("chain built without pop rsi/rdx")
	}
}

// vulnerableDriver deliberately contains pop rdi/rsi/rdx; ret sequences —
// the texture a buffer-handling driver exposes.
func vulnerableDriver() *kcc.Module {
	m := &kcc.Module{Name: "vuln"}
	m.AddFunc("vuln_ioctl", true,
		kcc.Push(isa.RDX),
		kcc.Push(isa.RSI),
		kcc.Push(isa.RDI),
		kcc.MovImm(isa.RAX, 0),
		kcc.Pop(isa.RDI),
		kcc.Pop(isa.RSI),
		kcc.Pop(isa.RDX),
		kcc.Ret(),
	)
	return m
}

func attackKernel(t *testing.T) (*kernel.Kernel, *uint64) {
	t.Helper()
	k, err := kernel.New(kernel.Config{NumCPUs: 2, Seed: 7, KASLR: kernel.KASLRFull64})
	if err != nil {
		t.Fatal(err)
	}
	pwned := new(uint64)
	k.DefineNative("set_memory_x", 100, func(c *cpu.CPU) error {
		*pwned = c.Regs[isa.RDI] // attacker-controlled argument
		return nil
	})
	return k, pwned
}

func TestExecuteChainAgainstStaticModule(t *testing.T) {
	// Against a non-rerandomized module the full kill chain works: scan,
	// build, fire — and the "NX-disable" target runs with attacker args.
	k, pwned := attackKernel(t)
	obj, err := kcc.Compile(vulnerableDriver(), kcc.Options{Model: kcc.ModelPIC})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := k.Load(obj)
	if err != nil {
		t.Fatal(err)
	}
	out := SimulateJITROP(k, mod, DefaultJITROP, 0, nil)
	if !out.Succeeded {
		t.Fatalf("attack on static module failed: %s", out.Reason)
	}
	if *pwned != mod.Base() {
		t.Fatalf("target ran with rdi=%#x, want module base %#x", *pwned, mod.Base())
	}
}

func TestRetEncryptionStarvesGadgets(t *testing.T) {
	// A pleasant side effect of the Fig.-3b epilogue: the injected
	// key-load/xor sequence pushes the pop-run away from the ret, so the
	// clean pop-chain the plain build exposes disappears.
	plain, err := kcc.Compile(vulnerableDriver(), kcc.Options{Model: kcc.ModelPIC})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := plugin.Build(vulnerableDriver(), plugin.Options{RetEncrypt: true})
	if err != nil {
		t.Fatal(err)
	}
	var plainCode, encCode []byte
	for _, s := range plain.Sections {
		if s.Kind.Executable() {
			plainCode = append(plainCode, s.Data...)
		}
	}
	for _, s := range enc.Sections {
		if s.Kind.Executable() {
			encCode = append(encCode, s.Data...)
		}
	}
	if q := ClassifyModule(plainCode, 0x10000); q == NoChain {
		t.Fatal("plain build should expose a chain")
	}
	if q := ClassifyModule(encCode, 0x10000); q != NoChain {
		t.Fatalf("encrypted build still exposes a chain (%v)", q)
	}
}

func TestJITROPDefeatedByRerandomization(t *testing.T) {
	k, pwned := attackKernel(t)
	obj, err := plugin.Build(vulnerableDriver(), plugin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := k.Load(obj)
	if err != nil {
		t.Fatal(err)
	}
	doRerand := func() error {
		if _, err := mod.Rerandomize(); err != nil {
			return err
		}
		k.SMR.Flush() // no pending calls: old range unmaps immediately
		return nil
	}
	// 5 ms period: far below the ~60 ms attack time.
	out := SimulateJITROP(k, mod, DefaultJITROP, 5_000, doRerand)
	if out.Succeeded {
		t.Fatal("attack succeeded despite re-randomization")
	}
	if *pwned != 0 {
		t.Fatal("target executed with attacker data")
	}
	// A (hypothetical) attacker faster than the period still wins — the
	// defense is the race, which is the paper's point about intervals.
	fast := JITROPConfig{LeakMicros: 1, PageReadMicros: 1, AnalyzeMicros: 1, TriggerMicros: 1}
	out = SimulateJITROP(k, mod, fast, 5_000_000, doRerand)
	if !out.Succeeded {
		t.Fatalf("sub-period attack should succeed: %s", out.Reason)
	}
}

func TestEntropyNumbers(t *testing.T) {
	// §6: vanilla 2^-19, Adelie 2^-44.
	if p := GuessProbability(VanillaWindowBits); p != 1.0/(1<<19) {
		t.Fatalf("vanilla probability = %g", p)
	}
	if p := GuessProbability(Full64WindowBits); p != 1.0/(1<<44) {
		t.Fatalf("full64 probability = %g", p)
	}
	if ExpectedAttempts(VanillaWindowBits) != 1<<19 {
		t.Fatal("expected attempts wrong")
	}
}

func TestBruteForceSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Small window: the attacker wins quickly.
	res := SimulateBruteForce(rng, 0, 1<<20, 1<<16, 1<<13, 1<<20)
	if !res.Found {
		t.Fatal("brute force failed on a small window")
	}
	// Window scaled like Adelie's: a million probes find nothing.
	res = SimulateBruteForce(rng, 0, 1<<48, 1<<20, 1<<13, 1_000_000)
	if res.Found {
		t.Fatal("brute force should be hopeless in a 48-bit window")
	}
}

func TestCorpusChainRate(t *testing.T) {
	// Table 2's headline: ~80% of modules carry a full NX-disable chain.
	mods := GenerateCorpus(11, 150, DefaultCorpus)
	withChain := 0
	for _, m := range mods {
		obj, err := kcc.Compile(m, kcc.Options{Model: kcc.ModelPIC})
		if err != nil {
			t.Fatal(err)
		}
		var code []byte
		for _, sec := range obj.Sections {
			if sec.Kind.Executable() {
				code = append(code, sec.Data...)
			}
		}
		if q := ClassifyModule(code, 0x10000); q != NoChain {
			withChain++
		}
	}
	rate := float64(withChain) / 150
	if rate < 0.6 || rate > 0.95 {
		t.Fatalf("chain rate = %.2f, want ≈0.8 (paper Table 2)", rate)
	}
}

func TestCorpusDeterminism(t *testing.T) {
	a := GenerateCorpus(5, 10, DefaultCorpus)
	b := GenerateCorpus(5, 10, DefaultCorpus)
	for i := range a {
		oa, err := kcc.Compile(a[i], kcc.Options{Model: kcc.ModelPIC})
		if err != nil {
			t.Fatal(err)
		}
		ob, err := kcc.Compile(b[i], kcc.Options{Model: kcc.ModelPIC})
		if err != nil {
			t.Fatal(err)
		}
		if string(oa.Encode()) != string(ob.Encode()) {
			t.Fatalf("corpus module %d not deterministic", i)
		}
	}
}

func TestCVEDataShape(t *testing.T) {
	// Fig. 1's qualitative content: monotone growth, Windows ≥ Linux in
	// the terminal years.
	for i := 1; i < len(CVEData); i++ {
		if CVEData[i].Linux < CVEData[i-1].Linux {
			t.Fatal("Linux series not monotone")
		}
	}
	last := CVEData[len(CVEData)-1]
	if last.Windows <= last.Linux {
		t.Fatal("terminal-year ordering wrong")
	}
}

func BenchmarkScan(b *testing.B) {
	mods := GenerateCorpus(2, 1, DefaultCorpus)
	obj, err := kcc.Compile(mods[0], kcc.Options{Model: kcc.ModelPIC})
	if err != nil {
		b.Fatal(err)
	}
	var code []byte
	for _, sec := range obj.Sections {
		if sec.Kind.Executable() {
			code = append(code, sec.Data...)
		}
	}
	b.SetBytes(int64(len(code)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Scan(code, 0x10000)
	}
}
