package attack

import (
	"fmt"

	"adelie/internal/isa"
)

// ChainQuality classifies a module per Table 2.
type ChainQuality int

const (
	// NoChain: the module lacks the gadgets to build an NX-disabling ROP
	// chain.
	NoChain ChainQuality = iota
	// ChainWithSideEffect: a chain exists but its gadgets carry extra
	// instructions with side effects (memory writes, clobbered state).
	ChainWithSideEffect
	// ChainClean: a chain of side-effect-free gadgets exists.
	ChainClean
)

func (q ChainQuality) String() string {
	switch q {
	case ChainClean:
		return "with ROP chain, no side-effect"
	case ChainWithSideEffect:
		return "with ROP chain, with side-effect"
	}
	return "without ROP chain"
}

// Chain is a concrete ROP payload: the stack words an attacker would
// write past an overflowed buffer. Executing it loads the three argument
// registers and transfers control to the target (e.g. a set_memory_x-like
// kernel function that disables NX on a chosen range — the Table 2
// scenario).
type Chain struct {
	Quality ChainQuality
	Gadgets []Gadget
	// Words is the payload laid on the stack: alternating gadget
	// addresses and popped values, ending with the target address.
	Words []uint64
}

// popTargets are the argument registers an NX-disable call needs loaded
// (addr, len, perms → rdi, rsi, rdx).
var popTargets = []isa.Reg{isa.RDI, isa.RSI, isa.RDX}

// BuildNXChain attempts to construct the Table-2 chain from a gadget
// catalog: pop rdi / pop rsi / pop rdx gadgets followed by a jump to
// target with the given argument values.
func BuildNXChain(gs []Gadget, target uint64, args [3]uint64) (Chain, error) {
	type candidate struct {
		g     Gadget
		clean bool
		pops  int // stack slots consumed before ours matters
	}
	best := map[isa.Reg]*candidate{}
	for _, g := range gs {
		if g.EndsIn != isa.OpRET {
			continue // JOP chaining needs controlled registers we lack here
		}
		// Find a gadget whose FIRST instruction pops the wanted register
		// and whose remaining instructions are harmless.
		first := g.Insts[0]
		if first.Op != isa.OpPOP {
			continue
		}
		reg := first.R1
		wanted := false
		for _, r := range popTargets {
			if r == reg {
				wanted = true
			}
		}
		if !wanted {
			continue
		}
		clean := true
		extraPops := 0
		for _, in := range g.Insts[1 : len(g.Insts)-1] {
			switch in.Op {
			case isa.OpNOP:
			case isa.OpPOP:
				extraPops++ // consumes a junk slot but is side-effect free
			case isa.OpSTORE, isa.OpSTRIP, isa.OpXORM, isa.OpCALLR, isa.OpCALLM:
				clean = false
			default:
				// Register-only effects: tolerable but dirty if they
				// clobber an already-loaded argument register.
				if in.R1 == isa.RDI || in.R1 == isa.RSI || in.R1 == isa.RDX {
					clean = false
				}
			}
		}
		cur := best[reg]
		cand := &candidate{g: g, clean: clean, pops: extraPops}
		if cur == nil || (!cur.clean && clean) || (cur.clean == clean && cand.pops < cur.pops) {
			best[reg] = cand
		}
	}

	var chain Chain
	chain.Quality = ChainClean
	for i, reg := range popTargets {
		c, ok := best[reg]
		if !ok {
			return Chain{Quality: NoChain}, fmt.Errorf("attack: no pop-%s gadget", reg)
		}
		if !c.clean {
			chain.Quality = ChainWithSideEffect
		}
		chain.Gadgets = append(chain.Gadgets, c.g)
		chain.Words = append(chain.Words, c.g.VA, args[i])
		for j := 0; j < c.pops; j++ {
			chain.Words = append(chain.Words, 0xDEAD) // junk for extra pops
		}
	}
	chain.Words = append(chain.Words, target)
	return chain, nil
}

// ClassifyModule runs the Table-2 classification for one module's
// executable bytes.
func ClassifyModule(code []byte, base uint64) ChainQuality {
	ch, err := BuildNXChain(Scan(code, base), 0x1000, [3]uint64{0, 0, 0})
	if err != nil {
		return NoChain
	}
	return ch.Quality
}
