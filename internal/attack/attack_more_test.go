package attack

import (
	"strings"
	"testing"

	"adelie/internal/kcc"
	"adelie/internal/kernel"
	"adelie/internal/mm"
)

func TestGadgetString(t *testing.T) {
	gs := Scan(asmJoin([][]byte{popRDI(), ret()}), 0x1000)
	if len(gs) == 0 {
		t.Fatal("no gadget")
	}
	s := gs[0].String()
	if !strings.Contains(s, "0x1000") || !strings.Contains(s, "pop") || !strings.Contains(s, "ret") {
		t.Fatalf("String() = %q", s)
	}
}

func TestScanMappedReadsThroughAddressSpace(t *testing.T) {
	k, err := kernel.New(kernel.Config{NumCPUs: 1, Seed: 3, KASLR: kernel.KASLRFull64})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := kcc.Compile(vulnerableDriver(), kcc.Options{Model: kcc.ModelPIC})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := k.Load(obj)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := ScanMapped(k.AS, mod.Base(), mod.Movable.Pages*4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) == 0 {
		t.Fatal("no gadgets through the mapped view")
	}
	// Unmapped region errors rather than returning junk.
	if _, err := ScanMapped(k.AS, mm.KernelBase+0x123456000, 4096); err == nil {
		t.Fatal("scan of unmapped range should fail")
	}
}

func TestExecuteChainFaultsOnBadGadget(t *testing.T) {
	k, _ := attackKernelBare(t)
	chain := Chain{Words: []uint64{mm.KernelBase + 0xDEAD000, 0}} // unmapped
	if err := ExecuteChain(k, chain); err == nil {
		t.Fatal("chain into unmapped memory should fault")
	}
}

func TestExecuteChainIntoNXData(t *testing.T) {
	k, _ := attackKernelBare(t)
	// Map a data page and point the chain at it: NX must stop execution —
	// the reason attackers need code reuse at all (§2.1).
	va := mm.KernelBase + 0x5000_0000
	if _, err := k.AS.MapRegion(va, 1, mm.FlagWrite); err != nil {
		t.Fatal(err)
	}
	if err := ExecuteChain(k, Chain{Words: []uint64{va}}); err == nil {
		t.Fatal("chain into NX data should fault")
	}
}

func attackKernelBare(t *testing.T) (*kernel.Kernel, *uint64) {
	t.Helper()
	return attackKernel(t)
}

func TestJITROPConfigTotal(t *testing.T) {
	c := JITROPConfig{LeakMicros: 10, PageReadMicros: 2, AnalyzeMicros: 3, TriggerMicros: 5}
	if got := c.TotalMicros(4); got != 10+4*(2+3)+5 {
		t.Fatalf("TotalMicros = %f", got)
	}
}

func TestDistributionClassesSorted(t *testing.T) {
	d := Distribution{ClassPop: 1, ClassArith: 2, ClassMov: 3}
	cs := d.Classes()
	for i := 1; i < len(cs); i++ {
		if cs[i-1] >= cs[i] {
			t.Fatalf("classes not sorted: %v", cs)
		}
	}
}

func TestChainQualityStrings(t *testing.T) {
	for q, want := range map[ChainQuality]string{
		ChainClean:          "no side-effect",
		ChainWithSideEffect: "with side-effect",
		NoChain:             "without",
	} {
		if !strings.Contains(strings.ToLower(q.String()), want) {
			t.Errorf("%d.String() = %q", q, q.String())
		}
	}
}

func TestBuildNXChainExtraPopsGetJunk(t *testing.T) {
	// pop rdi; pop rbx; ret — the extra pop consumes one junk slot.
	code := asmJoin([][]byte{
		popRDI(), popReg(3 /*rbx*/), ret(),
		popReg(6 /*rsi*/), ret(),
		popReg(2 /*rdx*/), ret(),
	})
	ch, err := BuildNXChain(Scan(code, 0), 0x42, [3]uint64{7, 8, 9})
	if err != nil {
		t.Fatal(err)
	}
	// rdi gadget contributes [va, 7, junk]; others [va, v]; plus target.
	if len(ch.Words) != 8 {
		t.Fatalf("payload = %v (len %d), want 8 words", ch.Words, len(ch.Words))
	}
	if ch.Quality != ChainClean {
		t.Fatalf("extra pops are clean, got %v", ch.Quality)
	}
}

// tiny encode helpers (raw AK64 bytes)

func popRDI() []byte       { return popReg(7) }
func popReg(r byte) []byte { return []byte{0x58, r} }
func ret() []byte          { return []byte{0xC3} }

func asmJoin(parts [][]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
