package attack

import (
	"fmt"

	"adelie/internal/cpu"
	"adelie/internal/isa"
	"adelie/internal/kernel"
	"adelie/internal/mm"
)

// JITROPConfig models the attacker's speed. The paper's §6 observes that
// all known JIT-ROP attacks need seconds end-to-end while Adelie's
// re-randomization periods are milliseconds; the defaults reflect a fast
// attacker well inside the published range.
type JITROPConfig struct {
	LeakMicros     float64 // initial pointer leak (info-leak exploitation)
	PageReadMicros float64 // disclosing one page of code via the read primitive
	AnalyzeMicros  float64 // gadget search + chain assembly, per page read
	TriggerMicros  float64 // firing the overflow and pivoting
}

// DefaultJITROP is an aggressive attacker: ~60 ms end-to-end for a small
// module — an order of magnitude faster than published attacks.
var DefaultJITROP = JITROPConfig{
	LeakMicros:     20_000,
	PageReadMicros: 2_000,
	AnalyzeMicros:  1_500,
	TriggerMicros:  5_000,
}

// TotalMicros estimates the end-to-end attack time against a module with
// the given number of disclosed text pages.
func (c JITROPConfig) TotalMicros(pages int) float64 {
	return c.LeakMicros + float64(pages)*(c.PageReadMicros+c.AnalyzeMicros) + c.TriggerMicros
}

// JITROPOutcome reports one simulated attack.
type JITROPOutcome struct {
	Succeeded     bool
	Reason        string
	ElapsedMicros float64
	PagesRead     int
	GadgetsFound  int
}

// SimulateJITROP runs a just-in-time ROP attack against a loaded module:
//
//  1. the attacker leaks the module's current base (info leak);
//  2. discloses the movable text pages through a read primitive and scans
//     them for gadgets (this is why mere code-reuse defenses without
//     re-randomization fail — the attacker reads the *current* layout);
//  3. builds an NX-disable chain and fires it via a stack overflow.
//
// rerandPeriodMicros is the module's re-randomization period (0 = no
// re-randomization, i.e. vanilla). If the attack's elapsed time crosses a
// period boundary, the module is actually moved (doRerand) before the
// chain fires, so the payload executes against stale addresses — the
// simulation runs the payload on a real vCPU either way and reports what
// physically happened.
func SimulateJITROP(k *kernel.Kernel, mod *kernel.Module, cfg JITROPConfig,
	rerandPeriodMicros float64, doRerand func() error) JITROPOutcome {

	var out JITROPOutcome

	// (1) + (2): disclose the movable text.
	base := mod.Base()
	textPages := mod.Movable.Pages
	code, err := k.AS.ReadBytes(base, textPages*mm.PageSize)
	if err != nil {
		out.Reason = fmt.Sprintf("disclosure failed: %v", err)
		return out
	}
	out.PagesRead = textPages
	gadgets := Scan(code, base)
	out.GadgetsFound = len(gadgets)
	out.ElapsedMicros = cfg.TotalMicros(textPages)

	// Target: a kernel function the chain diverts control to.
	target, ok := k.Symbol("set_memory_x")
	if !ok {
		target = k.KernelTextBase() // any fixed kernel address suffices
	}
	chain, err := BuildNXChain(gadgets, target, [3]uint64{base, uint64(textPages), 7})
	if err != nil {
		out.Reason = fmt.Sprintf("no chain: %v", err)
		return out
	}

	// (3) The clock: if re-randomization fired during the attack, the
	// harvested addresses are already stale when the payload lands.
	if rerandPeriodMicros > 0 && out.ElapsedMicros >= rerandPeriodMicros {
		if doRerand != nil {
			if err := doRerand(); err != nil {
				out.Reason = fmt.Sprintf("rerand failed: %v", err)
				return out
			}
		}
	}

	// Fire the payload on a real vCPU: write the chain past a "buffer"
	// on the stack and return into it.
	if err := ExecuteChain(k, chain); err != nil {
		out.Reason = fmt.Sprintf("payload faulted: %v", err)
		return out
	}
	out.Succeeded = true
	out.Reason = "chain executed"
	return out
}

// ExecuteChain runs a ROP payload on a fresh vCPU: the chain words are
// written to a stack and control "returns" into the first gadget, exactly
// as a stack overflow would arrange. A nil error means the chain reached
// its target.
func ExecuteChain(k *kernel.Kernel, chain Chain) error {
	c := cpu.New(999, k.AS)
	c.SetNatives(k.CPU(0).NativeTable())
	top, err := k.AllocStack()
	if err != nil {
		return err
	}
	defer func() { _ = k.FreeStack(top) }()

	// Lay out: [gadget0, val0, gadget1, val1, ..., target, HostReturn].
	words := append(append([]uint64(nil), chain.Words...), cpu.HostReturn)
	sp := top - uint64(len(words))*8
	for i, w := range words {
		if err := k.AS.Write64(sp+uint64(i)*8, w); err != nil {
			return err
		}
	}
	c.Regs[isa.RSP] = sp

	// "Return" into the chain: pop the first gadget address.
	first, err := c.Pop()
	if err != nil {
		return err
	}
	c.RIP = first
	return c.Run(100_000)
}
