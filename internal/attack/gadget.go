// Package attack implements the offensive side of the evaluation: a ROP
// gadget scanner (the Ropper [59] stand-in used for Fig. 10), an NX-
// disabling chain builder (Table 2), a JIT-ROP attack simulator and the
// KASLR entropy analysis of §6.
package attack

import (
	"fmt"
	"sort"

	"adelie/internal/isa"
	"adelie/internal/mm"
)

// GadgetClass buckets gadgets by the type of their instructions, matching
// the Fig. 10 distribution categories.
type GadgetClass string

const (
	ClassPop     GadgetClass = "pop"     // register loads from the stack
	ClassMov     GadgetClass = "mov"     // register moves / immediates
	ClassArith   GadgetClass = "arith"   // add/sub/mul/div
	ClassLogic   GadgetClass = "xor"     // xor/and/or logic
	ClassMemory  GadgetClass = "memory"  // loads/stores
	ClassControl GadgetClass = "control" // call/jmp-terminated (JOP)
	ClassOther   GadgetClass = "other"
)

// Gadget is a decodable instruction sequence ending in a control transfer
// an attacker can chain (ret, or an indirect call/jmp for JOP).
type Gadget struct {
	VA     uint64
	Insts  []isa.Inst
	Bytes  int
	Class  GadgetClass
	EndsIn isa.Op
}

// String renders the gadget Ropper-style.
func (g Gadget) String() string {
	s := fmt.Sprintf("%#x:", g.VA)
	pc := g.VA
	for _, in := range g.Insts {
		s += " " + in.Disasm(pc) + " ;"
		pc += uint64(in.Len)
	}
	return s
}

// MaxGadgetInsts is the longest instruction sequence considered a gadget,
// matching common gadget-finder defaults.
const MaxGadgetInsts = 5

// Scan finds all gadgets in code (assumed mapped at base), decoding at
// every byte offset — including misaligned ones, which on a dense
// variable-length ISA yield unintended instructions (§2.1).
func Scan(code []byte, base uint64) []Gadget {
	var out []Gadget
	for off := 0; off < len(code); off++ {
		if g, ok := gadgetAt(code, base, off); ok {
			out = append(out, g)
		}
	}
	return out
}

// gadgetAt tries to decode a gadget starting at offset off: a run of
// at most MaxGadgetInsts valid instructions whose last is a chainable
// control transfer and which contains no earlier control flow.
func gadgetAt(code []byte, base uint64, off int) (Gadget, bool) {
	var insts []isa.Inst
	p := off
	for len(insts) < MaxGadgetInsts {
		in, err := isa.Decode(code[p:])
		if err != nil {
			return Gadget{}, false
		}
		insts = append(insts, in)
		p += in.Len
		if in.Op == isa.OpRET || in.Op == isa.OpJMPR || in.Op == isa.OpCALLR {
			g := Gadget{
				VA: base + uint64(off), Insts: insts, Bytes: p - off,
				EndsIn: in.Op,
			}
			g.Class = classify(insts)
			return g, true
		}
		if in.Op.IsBranch() || in.Op == isa.OpHLT {
			// Direct branches and halts break the chain.
			return Gadget{}, false
		}
	}
	return Gadget{}, false
}

// classify buckets a gadget by its dominant payload instruction (the
// first non-terminator wins ties, mirroring how gadget catalogs are
// normally grouped).
func classify(insts []isa.Inst) GadgetClass {
	if len(insts) == 1 {
		if insts[0].Op == isa.OpRET {
			return ClassOther // bare ret
		}
		return ClassControl
	}
	for _, in := range insts[:len(insts)-1] {
		switch in.Op {
		case isa.OpPOP:
			return ClassPop
		case isa.OpMOV, isa.OpMOVI, isa.OpMOVABS, isa.OpLEARIP:
			return ClassMov
		case isa.OpADD, isa.OpSUB, isa.OpIMUL, isa.OpUDIV, isa.OpADDI, isa.OpSUBI, isa.OpSHLI, isa.OpSHRI:
			return ClassArith
		case isa.OpXOR, isa.OpXORI, isa.OpAND, isa.OpANDI, isa.OpOR, isa.OpXORM:
			return ClassLogic
		case isa.OpLOAD, isa.OpSTORE, isa.OpLDRIP, isa.OpSTRIP:
			return ClassMemory
		}
	}
	if insts[len(insts)-1].Op != isa.OpRET {
		return ClassControl
	}
	return ClassOther
}

// Distribution counts gadgets per class — one bar group of Fig. 10.
type Distribution map[GadgetClass]int

// Total returns the number of gadgets across classes.
func (d Distribution) Total() int {
	n := 0
	for _, v := range d {
		n += v
	}
	return n
}

// Classes returns the classes in stable order.
func (d Distribution) Classes() []GadgetClass {
	out := make([]GadgetClass, 0, len(d))
	for c := range d {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Distribute classifies a gadget list.
func Distribute(gs []Gadget) Distribution {
	d := Distribution{}
	for _, g := range gs {
		d[g.Class]++
	}
	return d
}

// ScanMapped scans an executable region through the address space (the
// attacker's view of loaded code).
func ScanMapped(as *mm.AddressSpace, base uint64, size int) ([]Gadget, error) {
	code, err := as.ReadBytes(base, size)
	if err != nil {
		return nil, err
	}
	return Scan(code, base), nil
}
