package attack

import (
	"fmt"
	"math/rand"

	"adelie/internal/isa"
	"adelie/internal/kcc"
)

// Corpus generation for the module-population experiments (Fig. 10 and
// Table 2). The paper scans Ubuntu 18.04's 5329 modules; we synthesize a
// population of driver-like modules whose code has the same
// gadget-relevant texture: real push/pop register discipline (the main
// source of pop-reg gadgets on x86-64), immediates that misaligned
// decoding can reinterpret, helper calls, loops and memory traffic.

// CorpusProfile tunes the generator.
type CorpusProfile struct {
	MinFuncs, MaxFuncs int
	// ArgRegPopFrac is the probability that one saved/restored register
	// is an argument register (rdi/rsi/rdx) rather than a callee-saved
	// one — the knob controlling how many modules end up with a full
	// NX-disable chain (Table 2 reports ~80%).
	ArgRegPopFrac float64
}

// DefaultCorpus approximates the Table-2 population: roughly 80% of
// modules contain a complete, side-effect-free NX-disable chain.
var DefaultCorpus = CorpusProfile{MinFuncs: 5, MaxFuncs: 16, ArgRegPopFrac: 0.4}

var calleeSaved = []isa.Reg{isa.RBX, isa.RBP, isa.R12, isa.R13, isa.R14, isa.R15}
var argRegs = []isa.Reg{isa.RDI, isa.RSI, isa.RDX}

// GenerateModule synthesizes one driver-like module. Modules are
// deterministic in rng and name-unique via idx.
func GenerateModule(rng *rand.Rand, idx int, p CorpusProfile) *kcc.Module {
	m := &kcc.Module{Name: fmt.Sprintf("synth%04d", idx)}
	nf := p.MinFuncs + rng.Intn(p.MaxFuncs-p.MinFuncs+1)
	for f := 0; f < nf; f++ {
		name := fmt.Sprintf("fn%d_%d", idx, f)
		export := f == 0 // one entry point per module
		m.AddFunc(name, export, genBody(rng, p, f)...)
	}
	m.AddGlobal(kcc.Global{Name: fmt.Sprintf("state%d", idx), Size: 64, Init: make([]byte, 64)})
	return m
}

// genBody emits a function with realistic register save/restore, some
// arithmetic, a loop and memory traffic.
func genBody(rng *rand.Rand, p CorpusProfile, f int) []kcc.Ins {
	var body []kcc.Ins
	// Prologue: save 1–4 registers.
	nsave := 1 + rng.Intn(4)
	var saved []isa.Reg
	for i := 0; i < nsave; i++ {
		var r isa.Reg
		if rng.Float64() < p.ArgRegPopFrac {
			r = argRegs[rng.Intn(len(argRegs))]
		} else {
			r = calleeSaved[rng.Intn(len(calleeSaved))]
		}
		saved = append(saved, r)
		body = append(body, kcc.Push(r))
	}
	// Body: immediates, ALU ops, kernel-helper calls, an occasional loop.
	work := 2 + rng.Intn(6)
	for i := 0; i < work; i++ {
		switch rng.Intn(7) {
		case 5:
			body = append(body, kcc.Call("cond_resched"))
		case 6:
			body = append(body, kcc.Call("printk"))
		}
		switch rng.Intn(5) {
		case 0:
			body = append(body, kcc.MovImm(isa.RAX, rng.Int63()))
		case 1:
			body = append(body, kcc.ArithImm(kcc.OpAdd, isa.RAX, int64(rng.Intn(1<<16))))
		case 2:
			body = append(body, kcc.Arith(kcc.OpXor, isa.RAX, isa.RCX))
		case 3:
			body = append(body, kcc.ArithImm(kcc.OpShl, isa.RAX, int64(rng.Intn(8))))
		case 4:
			lbl := fmt.Sprintf("l%d_%d", f, i)
			body = append(body,
				kcc.MovImm(isa.RCX, int64(1+rng.Intn(4))),
				kcc.Label(lbl),
				kcc.ArithImm(kcc.OpSub, isa.RCX, 1),
				kcc.CmpImm(isa.RCX, 0),
				kcc.Br(kcc.CondNE, lbl),
			)
		}
	}
	// Epilogue: restore in reverse — this is where pop-reg; …; ret
	// gadget material comes from, exactly as on real x86-64.
	for i := len(saved) - 1; i >= 0; i-- {
		body = append(body, kcc.Pop(saved[i]))
	}
	body = append(body, kcc.Ret())
	return body
}

// GenerateCorpus produces n modules under the profile.
func GenerateCorpus(seed int64, n int, p CorpusProfile) []*kcc.Module {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*kcc.Module, n)
	for i := range out {
		out[i] = GenerateModule(rng, i, p)
	}
	return out
}

// CVEPoint is one year of the driver-CVE series behind Fig. 1.
type CVEPoint struct {
	Year           int
	Linux, Windows int
}

// CVEData reproduces the *shape* of Fig. 1 (driver CVEs growing roughly
// exponentially, Windows above Linux in the terminal years). The paper's
// figure plots counts derived from cve.mitre.org [21]; that feed is not
// redistributable here, so this series is synthesized to match the
// figure's visual trend and is labeled as such in EXPERIMENTS.md.
var CVEData = []CVEPoint{
	{2012, 3, 4}, {2013, 4, 5}, {2014, 6, 7}, {2015, 8, 11},
	{2016, 13, 16}, {2017, 20, 26}, {2018, 30, 41},
	{2019, 44, 62}, {2020, 63, 85}, {2021, 78, 98},
}
