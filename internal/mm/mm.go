// Package mm simulates the memory subsystem Adelie manipulates: physical
// page frames, a 57-bit virtual address space with 5-level page tables,
// page permissions (including NX / W^X enforcement), and TLBs.
//
// The central operation for the paper is zero-copy remapping (Fig. 2a):
// RemapRegion installs page-table entries at a new random base that point
// at the same physical frames as the old region, so moving a module never
// copies its code or data. Unmapping the old range is deferred by the
// re-randomizer until pending calls drain (internal/smr + internal/rerand).
package mm

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Page geometry. AK64 uses 4 KB pages and five 9-bit translation levels,
// giving the 57-bit virtual address space of x86-64 5-level paging (the
// configuration the paper's §6 entropy analysis assumes).
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	PageMask  = PageSize - 1

	levelBits = 9
	numLevels = 5

	// VABits is the number of meaningful virtual-address bits.
	VABits = PageShift + levelBits*numLevels // 57

	// KernelBase is the lowest kernel-half virtual address. Addresses at or
	// above it are kernel space; below is user space (SMAP: the kernel
	// refuses to fetch code from user pages).
	KernelBase = uint64(1) << (VABits - 1)

	// MaxVA is one past the highest valid virtual address.
	MaxVA = uint64(1) << VABits
)

// FrameID identifies a physical page frame.
type FrameID uint64

// NoFrame is the zero FrameID sentinel used where no frame applies.
const NoFrame = FrameID(^uint64(0))

// PageFlags describe page permissions. A present page is always readable;
// Write and Exec are granted separately so W^X can be enforced.
type PageFlags uint8

const (
	FlagWrite PageFlags = 1 << iota // page is writable
	FlagExec                        // page is executable (NX clear)
	FlagUser                        // page belongs to user space
	FlagMMIO                        // loads/stores are routed to a device
)

func (f PageFlags) String() string {
	s := "r"
	if f&FlagWrite != 0 {
		s += "w"
	} else {
		s += "-"
	}
	if f&FlagExec != 0 {
		s += "x"
	} else {
		s += "-"
	}
	if f&FlagUser != 0 {
		s += "u"
	}
	if f&FlagMMIO != 0 {
		s += "m"
	}
	return s
}

// Access is the kind of memory access being attempted.
type Access uint8

const (
	AccessRead Access = iota
	AccessWrite
	AccessExec
)

func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	}
	return "?"
}

// PageFault reports a failed translation. The Adelie threat model leans on
// these: writes to a write-protected GOT fault, execution of NX data
// faults, and stale module addresses fault once the old range is unmapped.
type PageFault struct {
	VA     uint64
	Access Access
	Reason string
}

func (e *PageFault) Error() string {
	return fmt.Sprintf("page fault: %s at %#x (%s)", e.Access, e.VA, e.Reason)
}

// frameData is one physical frame plus the metadata the execution fast
// paths need. The content version is bumped on every write to a frame
// that is (or ever was) mapped executable; per-vCPU decoded-instruction
// caches validate against it, which closes the W^X hole of writing a
// code page through a writable alias mapping.
//
// refs counts how many machines' frame tables point at this record.
// A frame is born private (refs == 1); PhysMem.Fork increments refs for
// every frame it shares copy-on-write, and the first write through any
// sharer replaces its slot's record with a private copy (see
// frameSlot.private). Content never changes under a sharer's feet: a
// shared record is immutable until the last-but-one reference detaches.
type frameData struct {
	data [PageSize]byte
	ver  atomic.Uint64 // content version (see NoteWrite)
	exec atomic.Bool   // frame has been mapped executable at least once
	refs atomic.Int64  // machines sharing this record (1 = private)
}

// frameSlot is one machine's view of a physical frame: a stable cell
// whose current frameData pointer is swapped on copy-on-write. Slots are
// per-machine — forking copies the slot table, so sibling machines COW
// independently while the FrameID namespace (and everything keyed by it:
// page tables, module bookkeeping, decode caches) stays valid verbatim.
type frameSlot struct {
	mu  sync.Mutex // serializes copy-on-write on this slot
	fd  atomic.Pointer[frameData]
	ctr *atomic.Int64 // owning machine's COW-detach counter (PhysMem.detaches)
}

// load returns the slot's current frame record.
func (s *frameSlot) load() *frameData { return s.fd.Load() }

// private returns the slot's frame record, detaching it from any
// copy-on-write sharing first: if the record is shared, its bytes are
// copied into a fresh private record whose content version is bumped —
// which is exactly what invalidates decoded-instruction caches,
// superblocks and chain links built against the shared bytes. The
// detach is counted on the owning machine's observability counter
// (s.ctr), sampled by the engine at round barriers; the counter lives
// on the slot — not the hot translation Entry — so the TLB's cached
// entries stay one cache-line-friendly word narrower.
func (s *frameSlot) private() *frameData {
	fd := s.fd.Load()
	if fd.refs.Load() == 1 {
		return fd
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fd = s.fd.Load()
	if fd.refs.Load() == 1 {
		return fd
	}
	nfd := &frameData{data: fd.data}
	nfd.ver.Store(fd.ver.Load() + 1)
	nfd.exec.Store(fd.exec.Load())
	nfd.refs.Store(1)
	s.fd.Store(nfd)
	fd.refs.Add(-1)
	if s.ctr != nil {
		s.ctr.Add(1)
	}
	return nfd
}

// PhysMem is the physical memory of one machine: a growable set of 4 KB
// frames with a free list. Frames are zeroed on allocation.
//
// The slot table is published through an atomic pointer so that the
// translation fast path (vCPUs running concurrently on host goroutines)
// can index frames without taking the allocator lock. Alloc appends
// under the lock, then republishes; readers always observe a prefix
// that is fully initialized.
type PhysMem struct {
	mu    sync.Mutex
	slots atomic.Pointer[[]*frameSlot]
	free  []FrameID

	allocated   atomic.Int64 // currently live frames
	totalAllocs atomic.Int64
	detaches    atomic.Int64 // copy-on-write detaches (see COWDetaches)
	released    bool         // Release was called (teardown); second call panics
}

// NewPhysMem returns an empty physical memory.
func NewPhysMem() *PhysMem {
	p := &PhysMem{}
	empty := make([]*frameSlot, 0)
	p.slots.Store(&empty)
	return p
}

func (p *PhysMem) table() []*frameSlot { return *p.slots.Load() }

func newFrameData() *frameData {
	fd := &frameData{}
	fd.refs.Store(1)
	return fd
}

// Alloc allocates a zeroed frame.
func (p *PhysMem) Alloc() FrameID {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.allocated.Add(1)
	p.totalAllocs.Add(1)
	if n := len(p.free); n > 0 {
		id := p.free[n-1]
		p.free = p.free[:n-1]
		s := p.table()[id]
		f := s.fd.Load()
		if f.refs.Load() > 1 {
			// The recycled frame is still shared copy-on-write with a
			// sibling machine: detach instead of zeroing in place. The
			// fresh record continues the version sequence so stale cache
			// entries in this machine can never validate against it.
			nf := &frameData{}
			nf.ver.Store(f.ver.Load() + 1)
			nf.refs.Store(1)
			s.fd.Store(nf)
			f.refs.Add(-1)
			p.detaches.Add(1)
			return id
		}
		f.data = [PageSize]byte{}
		// A recycled frame may carry decoded-instruction cache entries
		// from its previous life; invalidate them and reset exec.
		f.ver.Add(1)
		f.exec.Store(false)
		return id
	}
	fs := p.table()
	nfs := make([]*frameSlot, len(fs)+1)
	copy(nfs, fs)
	ns := &frameSlot{ctr: &p.detaches}
	ns.fd.Store(newFrameData())
	nfs[len(fs)] = ns
	p.slots.Store(&nfs)
	return FrameID(len(fs))
}

// AllocN allocates n zeroed frames.
func (p *PhysMem) AllocN(n int) []FrameID {
	out := make([]FrameID, n)
	for i := range out {
		out[i] = p.Alloc()
	}
	return out
}

// Free returns a frame to the free list. Freeing an out-of-range frame
// panics: it indicates corruption in the caller, not bad input.
func (p *PhysMem) Free(id FrameID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) >= len(p.table()) {
		panic(fmt.Sprintf("mm: free of invalid frame %d", id))
	}
	p.allocated.Add(-1)
	p.free = append(p.free, id)
}

// slot returns the frame's slot, lock-free.
func (p *PhysMem) slot(id FrameID) *frameSlot {
	fs := p.table()
	if int(id) >= len(fs) {
		panic(fmt.Sprintf("mm: access to invalid frame %d", id))
	}
	return fs[id]
}

// frame returns the frame's current record, lock-free.
func (p *PhysMem) frame(id FrameID) *frameData { return p.slot(id).load() }

// Frame returns the backing bytes of a frame for reading. The caller must
// not retain the slice across a Free of the same frame.
func (p *PhysMem) Frame(id FrameID) []byte { return p.frame(id).data[:] }

// WritableFrame returns the backing bytes of a frame for writing,
// performing copy-on-write first if the frame is shared with a forked
// sibling machine. All write paths that bypass the TLB (kernel access
// helpers, device DMA, the loader) must use it instead of Frame.
func (p *PhysMem) WritableFrame(id FrameID) []byte { return p.slot(id).private().data[:] }

// COWDetaches returns how many frames this machine has detached from
// copy-on-write sharing (first writes after a fork). The engine samples
// the counter at round barriers to derive per-round trace events.
func (p *PhysMem) COWDetaches() int64 { return p.detaches.Load() }

// Fork returns a copy-on-write clone of this physical memory: a new slot
// table pointing at the same frame records with every refcount bumped.
// The clone and the original then detach frames independently on first
// write. Forking a machine that is concurrently writing memory is a data
// race — sim.Machine.Snapshot freezes the template first.
func (p *PhysMem) Fork() *PhysMem {
	p.mu.Lock()
	defer p.mu.Unlock()
	src := p.table()
	np := &PhysMem{free: append([]FrameID(nil), p.free...)}
	nslots := make([]*frameSlot, len(src))
	for i, s := range src {
		fd := s.fd.Load()
		fd.refs.Add(1)
		ns := &frameSlot{ctr: &np.detaches}
		ns.fd.Store(fd)
		nslots[i] = ns
	}
	np.slots.Store(&nslots)
	np.allocated.Store(p.allocated.Load())
	np.totalAllocs.Store(p.totalAllocs.Load())
	return np
}

// Release drops this machine's reference on every frame record (fork
// teardown). It returns the number of records whose last reference died
// here — frames whose memory becomes collectible. The PhysMem must not
// be used afterwards; a second Release panics.
func (p *PhysMem) Release() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.released {
		panic("mm: PhysMem released twice")
	}
	p.released = true
	var dead int64
	for _, s := range p.table() {
		if s.fd.Load().refs.Add(-1) == 0 {
			dead++
		}
	}
	return dead
}

// SharedFrames returns the number of frames currently shared copy-on-write
// with another machine (refcount > 1).
func (p *PhysMem) SharedFrames() int64 {
	var n int64
	for _, s := range p.table() {
		if s.fd.Load().refs.Load() > 1 {
			n++
		}
	}
	return n
}

// FrameVersion returns the content version of a frame. It only advances
// on writes to exec-mapped frames (and on frame recycling), so decoded
// code cached against a version stays valid exactly while the frame's
// bytes are unchanged.
func (p *PhysMem) FrameVersion(id FrameID) uint64 { return p.frame(id).ver.Load() }

// NoteWrite records that a frame's contents changed. Only exec-mapped
// frames pay the version bump; plain data frames keep writes free.
func (p *PhysMem) NoteWrite(id FrameID) {
	if f := p.frame(id); f.exec.Load() {
		f.ver.Add(1)
	}
}

// MarkExec flags a frame as reachable through an executable mapping,
// arming write tracking for decoded-instruction invalidation. The flag
// is sticky until the frame is freed and recycled: conservative, but it
// keeps the check on the store fast path a single atomic load.
func (p *PhysMem) MarkExec(id FrameID) { p.frame(id).exec.Store(true) }

// Live returns the number of currently allocated frames.
func (p *PhysMem) Live() int64 { return p.allocated.Load() }

// TotalAllocs returns the cumulative number of Alloc calls.
func (p *PhysMem) TotalAllocs() int64 { return p.totalAllocs.Load() }

// MMIOHandler receives 64-bit loads and stores on device-mapped pages.
// off is the byte offset within the mapped MMIO region.
type MMIOHandler interface {
	MMIORead(off uint64) uint64
	MMIOWrite(off uint64, val uint64)
}

type mmioRegion struct {
	base    uint64
	npages  int
	handler MMIOHandler
}

// pte is a page-table entry. Interior levels hold a child table; the leaf
// level holds a frame and its permissions.
type pte struct {
	child *table
	frame FrameID
	flags PageFlags
	leaf  bool
}

type table struct {
	entries [1 << levelBits]*pte
	used    int // number of non-nil entries, for table reclamation
}

// AddressSpace is one virtual address space backed by 5-level page tables.
// Mutating operations take the write lock; translations take the read
// lock only, so concurrent vCPUs do not serialize on the page tables
// (the per-CPU TLBs in front keep even the read lock off the hot path).
type AddressSpace struct {
	mu   sync.RWMutex
	root *table
	phys *PhysMem
	mmio []mmioRegion
	cow  bool // forked machine: translations resolve frames via slots

	mapped     int           // currently mapped pages
	gen        atomic.Uint64 // bumped on unmap/protect: TLB shootdown signal
	shootdowns atomic.Int64  // number of shootdowns issued
}

// NewAddressSpace returns an empty address space over phys.
func NewAddressSpace(phys *PhysMem) *AddressSpace {
	return &AddressSpace{root: &table{}, phys: phys}
}

// Phys returns the physical memory this address space maps.
func (as *AddressSpace) Phys() *PhysMem { return as.phys }

// Generation returns the current shootdown generation. TLBs compare it to
// decide whether their cached translations are stale.
func (as *AddressSpace) Generation() uint64 { return as.gen.Load() }

// Shootdowns returns the cumulative number of TLB shootdowns issued by
// unmap/protect operations (the re-randomization cost §4.3 discusses).
func (as *AddressSpace) Shootdowns() int64 { return as.shootdowns.Load() }

// MappedPages returns the number of currently mapped pages.
func (as *AddressSpace) MappedPages() int {
	as.mu.RLock()
	defer as.mu.RUnlock()
	return as.mapped
}

func checkVA(va uint64) error {
	if va >= MaxVA {
		return &PageFault{VA: va, Access: AccessRead, Reason: "non-canonical address"}
	}
	return nil
}

// indexes splits a VA into its five level indexes, most significant first.
func indexes(va uint64) [numLevels]int {
	var ix [numLevels]int
	shift := PageShift + levelBits*(numLevels-1)
	for i := 0; i < numLevels; i++ {
		ix[i] = int(va>>shift) & (1<<levelBits - 1)
		shift -= levelBits
	}
	return ix
}

// walk returns the leaf pte for va, or nil. Caller holds as.mu.
func (as *AddressSpace) walk(va uint64) *pte {
	t := as.root
	ix := indexes(va)
	for i := 0; i < numLevels-1; i++ {
		e := t.entries[ix[i]]
		if e == nil || e.child == nil {
			return nil
		}
		t = e.child
	}
	e := t.entries[ix[numLevels-1]]
	if e == nil || !e.leaf {
		return nil
	}
	return e
}

// Map installs a translation for the page containing va. The address must
// be page-aligned and not already mapped. W^X is enforced: requesting
// Write|Exec together is rejected, mirroring the kernel policy Adelie
// assumes (§2.1: data pages are NX; GOT pages are write-protected).
func (as *AddressSpace) Map(va uint64, frame FrameID, flags PageFlags) error {
	if va&PageMask != 0 {
		return fmt.Errorf("mm: Map: unaligned va %#x", va)
	}
	if err := checkVA(va); err != nil {
		return err
	}
	if flags&FlagWrite != 0 && flags&FlagExec != 0 {
		return fmt.Errorf("mm: Map: W^X violation at %#x", va)
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	t := as.root
	ix := indexes(va)
	for i := 0; i < numLevels-1; i++ {
		e := t.entries[ix[i]]
		if e == nil {
			e = &pte{child: &table{}}
			t.entries[ix[i]] = e
			t.used++
		}
		t = e.child
	}
	if t.entries[ix[numLevels-1]] != nil {
		return fmt.Errorf("mm: Map: va %#x already mapped", va)
	}
	t.entries[ix[numLevels-1]] = &pte{frame: frame, flags: flags, leaf: true}
	t.used++
	as.mapped++
	if flags&FlagExec != 0 {
		as.phys.MarkExec(frame)
	}
	return nil
}

// Unmap removes the translation for the page containing va and issues a
// TLB shootdown. It returns the frame that was mapped there; the caller
// decides whether to free it (zero-copy remapping keeps frames alive while
// both old and new mappings exist).
func (as *AddressSpace) Unmap(va uint64) (FrameID, error) {
	if va&PageMask != 0 {
		return NoFrame, fmt.Errorf("mm: Unmap: unaligned va %#x", va)
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	t := as.root
	ix := indexes(va)
	var path [numLevels - 1]*table
	for i := 0; i < numLevels-1; i++ {
		path[i] = t
		e := t.entries[ix[i]]
		if e == nil || e.child == nil {
			return NoFrame, fmt.Errorf("mm: Unmap: va %#x not mapped", va)
		}
		t = e.child
	}
	e := t.entries[ix[numLevels-1]]
	if e == nil || !e.leaf {
		return NoFrame, fmt.Errorf("mm: Unmap: va %#x not mapped", va)
	}
	t.entries[ix[numLevels-1]] = nil
	t.used--
	as.mapped--
	// Reclaim now-empty interior tables, bottom-up.
	for i := numLevels - 2; i >= 0 && t.used == 0; i-- {
		parent := path[i]
		parent.entries[ix[i]] = nil
		parent.used--
		t = parent
	}
	as.gen.Add(1)
	as.shootdowns.Add(1)
	return e.frame, nil
}

// Protect changes the permissions of an already-mapped page (e.g. the
// loader write-protecting GOT/PLT pages after relocation, §4.1). Issues a
// TLB shootdown.
func (as *AddressSpace) Protect(va uint64, flags PageFlags) error {
	if flags&FlagWrite != 0 && flags&FlagExec != 0 {
		return fmt.Errorf("mm: Protect: W^X violation at %#x", va)
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	e := as.walk(va &^ PageMask)
	if e == nil {
		return fmt.Errorf("mm: Protect: va %#x not mapped", va)
	}
	e.flags = flags
	if flags&FlagExec != 0 {
		as.phys.MarkExec(e.frame)
	}
	as.gen.Add(1)
	as.shootdowns.Add(1)
	return nil
}

// Lookup returns the frame and flags mapping the page containing va.
func (as *AddressSpace) Lookup(va uint64) (FrameID, PageFlags, bool) {
	as.mu.RLock()
	defer as.mu.RUnlock()
	e := as.walk(va &^ PageMask)
	if e == nil {
		return NoFrame, 0, false
	}
	return e.frame, e.flags, true
}

// Entry is one resolved translation, as cached by TLBs and consumed by
// the CPU fast paths. For non-MMIO pages in a machine that was never
// forked it carries a direct pointer to the frame record, so loads,
// stores and instruction fetch touch memory without re-walking the page
// tables or locking the allocator. In a forked (copy-on-write) machine
// it instead carries the frame's slot and resolves the current record on
// every access: a cached direct pointer would keep reading the shared
// pre-fork bytes after a device or sibling vCPU detached the frame —
// slot indirection makes post-COW writes visible without TLB shootdowns.
type Entry struct {
	Frame FrameID
	Flags PageFlags
	fd    *frameData // direct record; nil for MMIO pages and COW mode
	slot  *frameSlot // COW mode; nil for MMIO pages and direct mode
}

// rec resolves the entry's current frame record (nil for MMIO pages).
func (e Entry) rec() *frameData {
	if e.fd != nil {
		return e.fd
	}
	if e.slot != nil {
		return e.slot.load()
	}
	return nil
}

// Bytes returns the frame's backing bytes for reading (nil for MMIO
// pages).
func (e Entry) Bytes() []byte {
	fd := e.rec()
	if fd == nil {
		return nil
	}
	return fd.data[:]
}

// WritableBytes returns the frame's backing bytes for writing, detaching
// the frame from copy-on-write sharing first if needed (nil for MMIO
// pages). The store fast path must use it instead of Bytes: writing
// shared bytes would leak into the snapshot template and every sibling.
func (e Entry) WritableBytes() []byte {
	if e.fd != nil {
		return e.fd.data[:]
	}
	if e.slot == nil {
		return nil
	}
	return e.slot.private().data[:]
}

// CodeWindow returns the frame's bytes from off to the end of the page —
// the window within which a basic block can be decoded without a second
// translation (a block never outlives its page: crossing the boundary
// would need the next frame's translation and content version). Nil for
// MMIO pages.
func (e Entry) CodeWindow(off int) []byte {
	fd := e.rec()
	if fd == nil {
		return nil
	}
	return fd.data[off:]
}

// Version returns the frame's content version (0 for MMIO pages).
func (e Entry) Version() uint64 {
	fd := e.rec()
	if fd == nil {
		return 0
	}
	return fd.ver.Load()
}

// FrameRef is a stable one-word reference to a frame's content version.
// Execution caches that link decoded code across translations (superblock
// chain links) hold one per cached successor so they can revalidate the
// frame's bytes with a single atomic load — no page walk, no TLB probe.
// A recycled frame bumps its version on reallocation, and copy-on-write
// detach bumps it past the shared record's, so a stale ref can never
// validate against a frame's next life.
type FrameRef struct {
	fd   *frameData // nil for MMIO pages and COW mode
	slot *frameSlot // COW mode
}

// Ref returns the frame-version handle for this translation.
func (e Entry) Ref() FrameRef { return FrameRef{fd: e.fd, slot: e.slot} }

// Version returns the referenced frame's current content version (0 for
// the zero ref and MMIO pages).
func (r FrameRef) Version() uint64 {
	fd := r.fd
	if fd == nil {
		if r.slot == nil {
			return 0
		}
		fd = r.slot.load()
	}
	return fd.ver.Load()
}

// NoteWrite records a content change through this translation (decoded
// instruction caches watch exec-mapped frames; see PhysMem.NoteWrite).
func (e Entry) NoteWrite() {
	if fd := e.rec(); fd != nil && fd.exec.Load() {
		fd.ver.Add(1)
	}
}

// Translate checks permissions and returns the frame for an access at va.
func (as *AddressSpace) Translate(va uint64, access Access) (FrameID, PageFlags, error) {
	e, err := as.TranslateEntry(va, access)
	return e.Frame, e.Flags, err
}

// TranslateEntry is Translate returning the full fast-path Entry. It
// takes only the read lock: concurrent vCPUs translate in parallel.
func (as *AddressSpace) TranslateEntry(va uint64, access Access) (Entry, error) {
	if err := checkVA(va); err != nil {
		return Entry{Frame: NoFrame}, err
	}
	as.mu.RLock()
	e := as.walk(va &^ PageMask)
	as.mu.RUnlock()
	if e == nil {
		return Entry{Frame: NoFrame}, &PageFault{VA: va, Access: access, Reason: "not mapped"}
	}
	if err := checkPerm(va, e.flags, access); err != nil {
		return Entry{Frame: NoFrame}, err
	}
	out := Entry{Frame: e.frame, Flags: e.flags}
	if e.flags&FlagMMIO == 0 {
		if as.cow {
			out.slot = as.phys.slot(e.frame)
		} else {
			out.fd = as.phys.frame(e.frame)
		}
	}
	return out, nil
}

func checkPerm(va uint64, flags PageFlags, access Access) error {
	switch access {
	case AccessWrite:
		if flags&FlagWrite == 0 {
			return &PageFault{VA: va, Access: access, Reason: "write to read-only page"}
		}
	case AccessExec:
		if flags&FlagExec == 0 {
			return &PageFault{VA: va, Access: access, Reason: "NX: execute of non-executable page"}
		}
		if flags&FlagUser != 0 {
			// SMAP/SMEP analogue: the simulated kernel never executes
			// user pages (§2.1: "Adelie assumes this feature is enabled").
			return &PageFault{VA: va, Access: access, Reason: "SMEP: kernel execution of user page"}
		}
	}
	return nil
}

// MapRegion allocates npages fresh frames and maps them contiguously at
// base. It returns the frames so callers can later remap or free them.
func (as *AddressSpace) MapRegion(base uint64, npages int, flags PageFlags) ([]FrameID, error) {
	frames := make([]FrameID, 0, npages)
	for i := 0; i < npages; i++ {
		f := as.phys.Alloc()
		if err := as.Map(base+uint64(i)*PageSize, f, flags); err != nil {
			// Roll back partial work.
			as.phys.Free(f)
			for j, g := range frames {
				if _, uerr := as.Unmap(base + uint64(j)*PageSize); uerr == nil {
					as.phys.Free(g)
				}
			}
			return nil, err
		}
		frames = append(frames, f)
	}
	return frames, nil
}

// MapFrames maps existing frames contiguously at base without allocating.
func (as *AddressSpace) MapFrames(base uint64, frames []FrameID, flags PageFlags) error {
	for i, f := range frames {
		if err := as.Map(base+uint64(i)*PageSize, f, flags); err != nil {
			for j := 0; j < i; j++ {
				_, _ = as.Unmap(base + uint64(j)*PageSize)
			}
			return err
		}
	}
	return nil
}

// RemapRegion implements the zero-copy move of Fig. 2a: it maps the frames
// currently backing [oldBase, oldBase+npages*PageSize) at newBase with the
// same per-page permissions. The old mapping is left untouched — tearing it
// down is the re-randomizer's job once pending calls drain.
func (as *AddressSpace) RemapRegion(newBase, oldBase uint64, npages int) error {
	type pageInfo struct {
		frame FrameID
		flags PageFlags
	}
	infos := make([]pageInfo, npages)
	as.mu.RLock()
	for i := 0; i < npages; i++ {
		e := as.walk(oldBase + uint64(i)*PageSize)
		if e == nil {
			as.mu.RUnlock()
			return fmt.Errorf("mm: RemapRegion: source page %#x not mapped", oldBase+uint64(i)*PageSize)
		}
		infos[i] = pageInfo{e.frame, e.flags}
	}
	as.mu.RUnlock()
	for i, pi := range infos {
		if err := as.Map(newBase+uint64(i)*PageSize, pi.frame, pi.flags); err != nil {
			for j := 0; j < i; j++ {
				_, _ = as.Unmap(newBase + uint64(j)*PageSize)
			}
			return err
		}
	}
	return nil
}

// UnmapRegion removes npages translations starting at base. If freeFrames
// is true the backing frames are returned to the allocator (used when the
// last mapping of a region dies; zero-copy remaps pass false).
func (as *AddressSpace) UnmapRegion(base uint64, npages int, freeFrames bool) error {
	for i := 0; i < npages; i++ {
		f, err := as.Unmap(base + uint64(i)*PageSize)
		if err != nil {
			return err
		}
		if freeFrames {
			as.phys.Free(f)
		}
	}
	return nil
}

// RegisterMMIO maps npages at base as an MMIO region served by handler.
// MMIO pages are readable and writable but never executable.
func (as *AddressSpace) RegisterMMIO(base uint64, npages int, handler MMIOHandler) error {
	if base&PageMask != 0 {
		return fmt.Errorf("mm: RegisterMMIO: unaligned base %#x", base)
	}
	for i := 0; i < npages; i++ {
		// MMIO pages get a dedicated dummy frame so translation succeeds.
		f := as.phys.Alloc()
		if err := as.Map(base+uint64(i)*PageSize, f, FlagWrite|FlagMMIO); err != nil {
			return err
		}
	}
	as.mu.Lock()
	as.mmio = append(as.mmio, mmioRegion{base: base, npages: npages, handler: handler})
	as.mu.Unlock()
	return nil
}

// Fork returns a copy-on-write clone of this address space over phys
// (which must be the matching PhysMem.Fork result: the FrameID namespace
// carries over verbatim). The clone gets deep-copied page tables — so
// Map/Unmap/Protect diverge freely — and runs in COW mode: translations
// resolve frames through slots so post-fork writes are visible to every
// cached entry. MMIO regions are copied with their handlers still
// pointing at the template's devices; the bus clone rebinds them via
// RebindMMIO.
func (as *AddressSpace) Fork(phys *PhysMem) *AddressSpace {
	as.mu.RLock()
	defer as.mu.RUnlock()
	nas := &AddressSpace{
		root:   cloneTable(as.root, numLevels-1),
		phys:   phys,
		mmio:   append([]mmioRegion(nil), as.mmio...),
		cow:    true,
		mapped: as.mapped,
	}
	nas.gen.Store(as.gen.Load())
	nas.shootdowns.Store(as.shootdowns.Load())
	return nas
}

// cloneTable deep-copies a page-table subtree (depth counts the interior
// levels remaining below this table).
func cloneTable(t *table, depth int) *table {
	nt := &table{used: t.used}
	for i, e := range t.entries {
		if e == nil {
			continue
		}
		ne := &pte{frame: e.frame, flags: e.flags, leaf: e.leaf}
		if depth > 0 && e.child != nil {
			ne.child = cloneTable(e.child, depth-1)
		}
		nt.entries[i] = ne
	}
	return nt
}

// RebindMMIO replaces the handler of the MMIO region registered at base —
// used when forking a machine to point the cloned address space's device
// windows at the cloned devices instead of the template's.
func (as *AddressSpace) RebindMMIO(base uint64, handler MMIOHandler) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	for i := range as.mmio {
		if as.mmio[i].base == base {
			as.mmio[i].handler = handler
			return nil
		}
	}
	return fmt.Errorf("mm: RebindMMIO: no region at %#x", base)
}

// mmioFor returns the handler and region-relative offset for va, if va
// falls inside a registered MMIO region.
func (as *AddressSpace) mmioFor(va uint64) (MMIOHandler, uint64, bool) {
	as.mu.RLock()
	defer as.mu.RUnlock()
	for _, r := range as.mmio {
		end := r.base + uint64(r.npages)*PageSize
		if va >= r.base && va < end {
			return r.handler, va - r.base, true
		}
	}
	return nil, 0, false
}
