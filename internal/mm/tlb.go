package mm

// TLB is a per-vCPU translation lookaside buffer. Continuous
// re-randomization forces page-table updates and therefore TLB flushes
// (paper §4.3 names this the unavoidable cost of any remapping approach),
// so the model charges a refill penalty for every miss after a shootdown.
//
// Cached entries carry the full fast-path Entry (including the frame
// data pointer), so a TLB hit resolves a load, store or fetch without
// touching the address-space lock or the frame allocator at all — the
// lock-light translation path concurrent vCPUs run on.
type TLB struct {
	as      *AddressSpace
	entries map[uint64]Entry
	cap     int
	gen     uint64 // address-space generation the cached entries belong to

	hits    uint64
	misses  uint64
	flushes uint64
}

// DefaultTLBSize approximates a modern L2 STLB (entries, not bytes).
const DefaultTLBSize = 1536

// NewTLB returns a TLB caching translations of as.
func NewTLB(as *AddressSpace) *TLB {
	return &TLB{as: as, entries: make(map[uint64]Entry), cap: DefaultTLBSize}
}

// Entry resolves va for the given access kind, consulting the cache
// first. The boolean result reports whether the translation was a hit;
// callers use it to charge a miss penalty.
func (t *TLB) Entry(va uint64, access Access) (Entry, bool, error) {
	if g := t.as.Generation(); g != t.gen {
		// A shootdown occurred since we last filled: flush everything.
		t.Flush()
		t.gen = g
	}
	page := va &^ PageMask
	if e, ok := t.entries[page]; ok {
		if err := checkPerm(va, e.Flags, access); err != nil {
			return Entry{Frame: NoFrame}, true, err
		}
		t.hits++
		return e, true, nil
	}
	t.misses++
	e, err := t.as.TranslateEntry(va, access)
	if err != nil {
		return Entry{Frame: NoFrame}, false, err
	}
	if len(t.entries) >= t.cap {
		// Evict an arbitrary entry; capacity pressure, not recency, is the
		// effect we need to model.
		for k := range t.entries {
			delete(t.entries, k)
			break
		}
	}
	t.entries[page] = e
	return e, false, nil
}

// Translate resolves va for the given access kind, returning the frame
// and flags (compatibility form of Entry).
func (t *TLB) Translate(va uint64, access Access) (FrameID, PageFlags, bool, error) {
	e, hit, err := t.Entry(va, access)
	return e.Frame, e.Flags, hit, err
}

// Flush drops all cached translations.
func (t *TLB) Flush() {
	clear(t.entries)
	t.flushes++
}

// Stats returns cumulative hit/miss/flush counts.
func (t *TLB) Stats() (hits, misses, flushes uint64) {
	return t.hits, t.misses, t.flushes
}
