package mm

// TLB is a per-vCPU translation lookaside buffer. Continuous
// re-randomization forces page-table updates and therefore TLB flushes
// (paper §4.3 names this the unavoidable cost of any remapping approach),
// so the model charges a refill penalty for every miss after a shootdown.
//
// Cached entries carry the full fast-path Entry (including the frame
// data pointer), so a TLB hit resolves a load, store or fetch without
// touching the address-space lock or the frame allocator at all — the
// lock-light translation path concurrent vCPUs run on.
//
// Determinism: eviction under capacity pressure is FIFO over insertion
// order. The hit/miss sequence — and therefore every charged refill
// cycle — is a pure function of the access sequence, which is what lets
// two runs with the same seed produce bit-identical RunResults even when
// a workload's footprint exceeds DefaultTLBSize.
type TLB struct {
	as      *AddressSpace
	entries map[uint64]Entry
	fifo    []uint64 // resident page keys in insertion order (ring once full)
	head    int      // index of the oldest key in fifo
	cap     int
	gen     uint64 // address-space generation the cached entries belong to

	// l1 is a direct-mapped front cache over entries. It is purely a
	// lookup accelerator: every slot mirrors a live entries[] value and
	// is cleared when that entry is evicted or flushed, so hit/miss
	// accounting (and the cycles it charges) is identical with or
	// without it.
	l1 [l1Sets]l1Slot

	hits    uint64
	misses  uint64
	flushes uint64
}

// l1Sets is the number of direct-mapped front-cache slots (power of two).
const l1Sets = 256

// l1Slot tags a cached translation with page|1 (never zero, and never
// equal to a page-aligned address), so the zero value means empty.
type l1Slot struct {
	tag uint64
	e   Entry
}

// DefaultTLBSize approximates a modern L2 STLB (entries, not bytes).
const DefaultTLBSize = 1536

// NewTLB returns a TLB caching translations of as.
func NewTLB(as *AddressSpace) *TLB {
	return &TLB{as: as, entries: make(map[uint64]Entry), cap: DefaultTLBSize}
}

// Entry resolves va for the given access kind, consulting the cache
// first. The boolean result reports whether the translation was a hit;
// callers use it to charge a miss penalty.
func (t *TLB) Entry(va uint64, access Access) (Entry, bool, error) {
	if g := t.as.Generation(); g != t.gen {
		// A shootdown occurred since we last filled: flush everything.
		t.Flush()
		t.gen = g
	}
	page := va &^ PageMask
	s := &t.l1[(page>>PageShift)&(l1Sets-1)]
	if s.tag == page|1 {
		if err := checkPerm(va, s.e.Flags, access); err != nil {
			return Entry{Frame: NoFrame}, true, err
		}
		t.hits++
		return s.e, true, nil
	}
	if e, ok := t.entries[page]; ok {
		if err := checkPerm(va, e.Flags, access); err != nil {
			return Entry{Frame: NoFrame}, true, err
		}
		t.hits++
		s.tag, s.e = page|1, e
		return e, true, nil
	}
	t.misses++
	e, err := t.as.TranslateEntry(va, access)
	if err != nil {
		return Entry{Frame: NoFrame}, false, err
	}
	if len(t.entries) >= t.cap {
		// FIFO eviction: drop the oldest resident translation and reuse
		// its ring slot. Capacity pressure, not recency, is the effect
		// the model needs — but the victim choice must be deterministic.
		old := t.fifo[t.head]
		delete(t.entries, old)
		if os := &t.l1[(old>>PageShift)&(l1Sets-1)]; os.tag == old|1 {
			os.tag = 0
		}
		t.fifo[t.head] = page
		t.head++
		if t.head == len(t.fifo) {
			t.head = 0
		}
	} else {
		t.fifo = append(t.fifo, page)
	}
	t.entries[page] = e
	s.tag, s.e = page|1, e
	return e, false, nil
}

// LoadPage is the word-granularity resident load probe: one L1 lookup
// plus MMIO and straddle screening, sized to stay under the compiler's
// inlining budget so the CPU's block execute loop pays no call per
// access. On success it returns the page's backing bytes (the caller
// reads the word at va&PageMask) and counts exactly the hit Entry's
// L1 path would. It declines (nil, false, nothing counted) whenever the
// access needs the full path — L1 miss, MMIO page, or a page-straddling
// offset — and the caller then falls back to Entry, which performs
// identical accounting: hit/miss counts, charged cycles and fault
// shapes cannot diverge between probed and unprobed execution. Reads
// never permission-fault on a mapped page (checkPerm has no read case),
// so no permission error can arise here.
//
// Callers may use the probe only when they can guarantee the
// address-space generation has not changed since their last full Entry
// call on this TLB (the CPU's block execute loop qualifies: no native,
// actor or IRQ runs between block boundaries) — it skips the generation
// re-check Entry performs.
func (t *TLB) LoadPage(va uint64) ([]byte, bool) {
	s := &t.l1[(va>>PageShift)&(l1Sets-1)]
	if s.tag != va&^PageMask|1 || va&PageMask > PageSize-8 {
		return nil, false
	}
	fd := s.e.fd
	if fd == nil {
		if s.e.slot == nil {
			return nil, false // MMIO page: only fd and slot are ever nil
		}
		fd = s.e.slot.load()
	}
	t.hits++
	return fd.data[:], true
}

// StorePage is LoadPage's store twin, with the same decline-to-Entry
// accounting contract and generation precondition. Beyond LoadPage's
// screens it declines on read-only pages (the fallback Entry call
// reproduces the permission fault verbatim), on copy-on-write frames
// (the fallback's WritableBytes performs the detach), and on
// exec-mapped frames (the fallback's NoteWrite bumps the content
// version that invalidates decoded code) — each a correctness handoff,
// not an approximation, and each keeps the probe inlinable. The caller
// writes the word at va&PageMask into the returned bytes.
func (t *TLB) StorePage(va uint64) ([]byte, bool) {
	s := &t.l1[(va>>PageShift)&(l1Sets-1)]
	if s.tag != va&^PageMask|1 || s.e.Flags&FlagWrite == 0 || va&PageMask > PageSize-8 {
		return nil, false
	}
	fd := s.e.fd
	if fd == nil || fd.exec.Load() {
		return nil, false // MMIO, COW-shared, or exec-mapped: the full path
	}
	t.hits++
	return fd.data[:], true
}

// Translate resolves va for the given access kind, returning the frame
// and flags (compatibility form of Entry).
func (t *TLB) Translate(va uint64, access Access) (FrameID, PageFlags, bool, error) {
	e, hit, err := t.Entry(va, access)
	return e.Frame, e.Flags, hit, err
}

// CloneFor returns a copy of this TLB resolving against as (the forked
// address space of the machine the clone belongs to). The resident set,
// FIFO insertion order and hit/miss/flush counters carry over, so the
// clone's future eviction and refill sequence — and every cycle it
// charges — matches what the template's TLB would have done: the
// fork-determinism contract depends on it. Cached entries are
// re-resolved against as so they use its COW slot indirection; the L1
// front cache starts empty (it is a pure lookup accelerator and never
// affects accounting). If a shootdown invalidated the cached set, the
// clone starts empty like the template would at its next access.
func (t *TLB) CloneFor(as *AddressSpace) *TLB {
	nt := &TLB{
		as:      as,
		entries: make(map[uint64]Entry, len(t.entries)),
		cap:     t.cap,
		gen:     t.gen,
		hits:    t.hits,
		misses:  t.misses,
		flushes: t.flushes,
	}
	if t.gen != as.Generation() || len(t.entries) == 0 {
		return nt
	}
	nt.fifo = make([]uint64, len(t.fifo))
	copy(nt.fifo, t.fifo)
	nt.head = t.head
	for page := range t.entries {
		// Generation matched, so every cached translation is still mapped;
		// AccessRead re-resolves it without a permission surprise (flags
		// come from the page table, identical to the template's).
		e, err := as.TranslateEntry(page, AccessRead)
		if err != nil {
			// Unreachable while generations match; degrade to a cold TLB.
			return &TLB{as: as, entries: make(map[uint64]Entry), cap: t.cap,
				gen: t.gen, hits: t.hits, misses: t.misses, flushes: t.flushes}
		}
		nt.entries[page] = e
	}
	return nt
}

// Flush drops all cached translations.
func (t *TLB) Flush() {
	clear(t.entries)
	t.fifo = t.fifo[:0]
	t.head = 0
	t.l1 = [l1Sets]l1Slot{}
	t.flushes++
}

// Stats returns cumulative hit/miss/flush counts.
func (t *TLB) Stats() (hits, misses, flushes uint64) {
	return t.hits, t.misses, t.flushes
}
