package mm

// TLB is a per-vCPU translation lookaside buffer. Continuous
// re-randomization forces page-table updates and therefore TLB flushes
// (paper §4.3 names this the unavoidable cost of any remapping approach),
// so the model charges a refill penalty for every miss after a shootdown.
type TLB struct {
	as      *AddressSpace
	entries map[uint64]tlbEntry
	cap     int
	gen     uint64 // address-space generation the cached entries belong to

	hits    uint64
	misses  uint64
	flushes uint64
}

type tlbEntry struct {
	frame FrameID
	flags PageFlags
}

// DefaultTLBSize approximates a modern L2 STLB (entries, not bytes).
const DefaultTLBSize = 1536

// NewTLB returns a TLB caching translations of as.
func NewTLB(as *AddressSpace) *TLB {
	return &TLB{as: as, entries: make(map[uint64]tlbEntry), cap: DefaultTLBSize}
}

// Translate resolves va for the given access kind, consulting the cache
// first. The boolean result reports whether the translation was a hit;
// callers use it to charge a miss penalty.
func (t *TLB) Translate(va uint64, access Access) (FrameID, PageFlags, bool, error) {
	if g := t.as.Generation(); g != t.gen {
		// A shootdown occurred since we last filled: flush everything.
		t.Flush()
		t.gen = g
	}
	page := va &^ PageMask
	if e, ok := t.entries[page]; ok {
		if err := checkPerm(va, e.flags, access); err != nil {
			return NoFrame, 0, true, err
		}
		t.hits++
		return e.frame, e.flags, true, nil
	}
	t.misses++
	frame, flags, err := t.as.Translate(va, access)
	if err != nil {
		return NoFrame, 0, false, err
	}
	if len(t.entries) >= t.cap {
		// Evict an arbitrary entry; capacity pressure, not recency, is the
		// effect we need to model.
		for k := range t.entries {
			delete(t.entries, k)
			break
		}
	}
	t.entries[page] = tlbEntry{frame: frame, flags: flags}
	return frame, flags, false, nil
}

// Flush drops all cached translations.
func (t *TLB) Flush() {
	clear(t.entries)
	t.flushes++
}

// Stats returns cumulative hit/miss/flush counts.
func (t *TLB) Stats() (hits, misses, flushes uint64) {
	return t.hits, t.misses, t.flushes
}
