package mm

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMapTranslateUnmap(t *testing.T) {
	as := NewAddressSpace(NewPhysMem())
	const va = KernelBase + 0x1000
	f := as.Phys().Alloc()
	if err := as.Map(va, f, FlagWrite); err != nil {
		t.Fatal(err)
	}
	got, flags, err := as.Translate(va+123, AccessRead)
	if err != nil {
		t.Fatal(err)
	}
	if got != f || flags != FlagWrite {
		t.Fatalf("Translate = (%v,%v), want (%v,%v)", got, flags, f, FlagWrite)
	}
	unf, err := as.Unmap(va)
	if err != nil {
		t.Fatal(err)
	}
	if unf != f {
		t.Fatalf("Unmap returned frame %v, want %v", unf, f)
	}
	if _, _, err := as.Translate(va, AccessRead); err == nil {
		t.Fatal("translate after unmap should fault")
	}
}

func TestMapRejectsDoubleMap(t *testing.T) {
	as := NewAddressSpace(NewPhysMem())
	const va = KernelBase
	if err := as.Map(va, as.Phys().Alloc(), 0); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(va, as.Phys().Alloc(), 0); err == nil {
		t.Fatal("double map should fail")
	}
}

func TestMapRejectsUnaligned(t *testing.T) {
	as := NewAddressSpace(NewPhysMem())
	if err := as.Map(KernelBase+8, 0, 0); err == nil {
		t.Fatal("unaligned map should fail")
	}
	if _, err := as.Unmap(KernelBase + 8); err == nil {
		t.Fatal("unaligned unmap should fail")
	}
}

func TestWXEnforcement(t *testing.T) {
	as := NewAddressSpace(NewPhysMem())
	if err := as.Map(KernelBase, as.Phys().Alloc(), FlagWrite|FlagExec); err == nil {
		t.Fatal("W+X mapping must be rejected")
	}
	if err := as.Map(KernelBase, as.Phys().Alloc(), FlagExec); err != nil {
		t.Fatal(err)
	}
	if err := as.Protect(KernelBase, FlagWrite|FlagExec); err == nil {
		t.Fatal("W+X protect must be rejected")
	}
}

func TestNXFault(t *testing.T) {
	as := NewAddressSpace(NewPhysMem())
	const va = KernelBase + 0x2000
	if err := as.Map(va, as.Phys().Alloc(), FlagWrite); err != nil {
		t.Fatal(err)
	}
	_, _, err := as.Translate(va, AccessExec)
	var pf *PageFault
	if !errors.As(err, &pf) || pf.Access != AccessExec {
		t.Fatalf("exec of NX page: got %v, want exec PageFault", err)
	}
}

func TestSMEPFault(t *testing.T) {
	as := NewAddressSpace(NewPhysMem())
	const va = uint64(0x4000) // user half
	f := as.Phys().Alloc()
	if err := as.Map(va, f, FlagExec|FlagUser); err != nil {
		t.Fatal(err)
	}
	if _, _, err := as.Translate(va, AccessExec); err == nil {
		t.Fatal("kernel execution of user page must fault (SMEP)")
	}
}

func TestWriteProtectedPageFaults(t *testing.T) {
	as := NewAddressSpace(NewPhysMem())
	const va = KernelBase + 0x3000
	if err := as.Map(va, as.Phys().Alloc(), 0); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteBytes(va, []byte{1}); err == nil {
		t.Fatal("write to read-only page must fault")
	}
	// The loader path must still be able to populate it.
	if err := as.WriteBytesForce(va, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	b, err := as.ReadBytes(va, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 1 || b[1] != 2 || b[2] != 3 {
		t.Fatalf("force-write not visible: %v", b)
	}
}

func TestReadWriteAcrossPageBoundary(t *testing.T) {
	as := NewAddressSpace(NewPhysMem())
	base := KernelBase + 0x10000
	if _, err := as.MapRegion(base, 2, FlagWrite); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i + 1)
	}
	va := base + PageSize - 32 // straddles the boundary
	if err := as.WriteBytes(va, data); err != nil {
		t.Fatal(err)
	}
	got, err := as.ReadBytes(va, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], data[i])
		}
	}
	// 64-bit value across the boundary.
	if err := as.Write64(base+PageSize-4, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	v, err := as.Read64(base + PageSize - 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1122334455667788 {
		t.Fatalf("cross-page 64-bit = %#x", v)
	}
}

func TestRemapRegionIsZeroCopy(t *testing.T) {
	as := NewAddressSpace(NewPhysMem())
	oldBase := KernelBase + 0x100000
	newBase := KernelBase + 0x900000
	frames, err := as.MapRegion(oldBase, 3, FlagWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.WriteBytes(oldBase+100, []byte("adelie")); err != nil {
		t.Fatal(err)
	}
	allocsBefore := as.Phys().TotalAllocs()
	if err := as.RemapRegion(newBase, oldBase, 3); err != nil {
		t.Fatal(err)
	}
	if as.Phys().TotalAllocs() != allocsBefore {
		t.Fatal("RemapRegion allocated frames; it must be zero-copy")
	}
	// Same physical frames visible at both addresses.
	got, err := as.ReadBytes(newBase+100, 6)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "adelie" {
		t.Fatalf("data at new mapping = %q", got)
	}
	// Write through the new mapping, read through the old.
	if err := as.WriteBytes(newBase+200, []byte("kaslr")); err != nil {
		t.Fatal(err)
	}
	got, err = as.ReadBytes(oldBase+200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "kaslr" {
		t.Fatalf("aliased write not visible: %q", got)
	}
	// Old mapping dies, frames stay (still referenced by the new one).
	live := as.Phys().Live()
	if err := as.UnmapRegion(oldBase, 3, false); err != nil {
		t.Fatal(err)
	}
	if as.Phys().Live() != live {
		t.Fatal("frames freed while still mapped elsewhere")
	}
	// Final teardown frees them.
	if err := as.UnmapRegion(newBase, 3, true); err != nil {
		t.Fatal(err)
	}
	if as.Phys().Live() != live-int64(len(frames)) {
		t.Fatalf("frames not freed: live=%d", as.Phys().Live())
	}
}

func TestRemapPreservesPerPageFlags(t *testing.T) {
	as := NewAddressSpace(NewPhysMem())
	oldBase := KernelBase + 0x200000
	newBase := KernelBase + 0x800000
	if _, err := as.MapRegion(oldBase, 1, FlagExec); err != nil {
		t.Fatal(err)
	}
	if _, err := as.MapRegion(oldBase+PageSize, 1, FlagWrite); err != nil {
		t.Fatal(err)
	}
	if err := as.RemapRegion(newBase, oldBase, 2); err != nil {
		t.Fatal(err)
	}
	_, f0, _ := as.Lookup(newBase)
	_, f1, _ := as.Lookup(newBase + PageSize)
	if f0 != FlagExec || f1 != FlagWrite {
		t.Fatalf("flags not preserved: %v %v", f0, f1)
	}
}

func TestUnmapIssuesShootdown(t *testing.T) {
	as := NewAddressSpace(NewPhysMem())
	const va = KernelBase + 0x5000
	if err := as.Map(va, as.Phys().Alloc(), 0); err != nil {
		t.Fatal(err)
	}
	g0 := as.Generation()
	if _, err := as.Unmap(va); err != nil {
		t.Fatal(err)
	}
	if as.Generation() == g0 {
		t.Fatal("unmap must bump the shootdown generation")
	}
	if as.Shootdowns() == 0 {
		t.Fatal("shootdown counter not incremented")
	}
}

func TestNonCanonicalAddressFaults(t *testing.T) {
	as := NewAddressSpace(NewPhysMem())
	if _, _, err := as.Translate(MaxVA, AccessRead); err == nil {
		t.Fatal("access beyond 57-bit space should fault")
	}
	if err := as.Map(MaxVA, 0, 0); err == nil {
		t.Fatal("map beyond 57-bit space should fail")
	}
}

func TestPhysMemFreeListReuse(t *testing.T) {
	p := NewPhysMem()
	a := p.Alloc()
	p.Frame(a)[0] = 0xFF
	p.Free(a)
	b := p.Alloc()
	if b != a {
		t.Fatalf("free list not reused: got %v, want %v", b, a)
	}
	if p.Frame(b)[0] != 0 {
		t.Fatal("recycled frame not zeroed")
	}
	if p.Live() != 1 {
		t.Fatalf("live = %d, want 1", p.Live())
	}
}

func TestTLBHitMissFlush(t *testing.T) {
	as := NewAddressSpace(NewPhysMem())
	const va = KernelBase + 0x7000
	if err := as.Map(va, as.Phys().Alloc(), FlagWrite); err != nil {
		t.Fatal(err)
	}
	tlb := NewTLB(as)
	if _, _, hit, err := tlb.Translate(va, AccessRead); err != nil || hit {
		t.Fatalf("first access: hit=%v err=%v, want miss", hit, err)
	}
	if _, _, hit, err := tlb.Translate(va+8, AccessRead); err != nil || !hit {
		t.Fatalf("second access: hit=%v err=%v, want hit", hit, err)
	}
	// Unmapping elsewhere bumps the generation → next access flushes.
	if err := as.Map(va+PageSize, as.Phys().Alloc(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Unmap(va + PageSize); err != nil {
		t.Fatal(err)
	}
	if _, _, hit, err := tlb.Translate(va, AccessRead); err != nil || hit {
		t.Fatalf("post-shootdown access: hit=%v err=%v, want miss", hit, err)
	}
	hits, misses, flushes := tlb.Stats()
	if hits != 1 || misses != 2 || flushes == 0 {
		t.Fatalf("stats = (%d,%d,%d), want (1,2,>0)", hits, misses, flushes)
	}
}

func TestTLBPermissionCheckOnHit(t *testing.T) {
	as := NewAddressSpace(NewPhysMem())
	const va = KernelBase + 0x8000
	if err := as.Map(va, as.Phys().Alloc(), 0); err != nil {
		t.Fatal(err)
	}
	tlb := NewTLB(as)
	if _, _, _, err := tlb.Translate(va, AccessRead); err != nil {
		t.Fatal(err)
	}
	// A cached translation must still reject a write.
	if _, _, _, err := tlb.Translate(va, AccessWrite); err == nil {
		t.Fatal("TLB hit must not bypass write protection")
	}
}

func TestTLBCapacityEviction(t *testing.T) {
	as := NewAddressSpace(NewPhysMem())
	tlb := NewTLB(as)
	tlb.cap = 4
	base := KernelBase + 0x100000
	for i := 0; i < 8; i++ {
		va := base + uint64(i)*PageSize
		if err := as.Map(va, as.Phys().Alloc(), 0); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := tlb.Translate(va, AccessRead); err != nil {
			t.Fatal(err)
		}
	}
	if len(tlb.entries) > 4 {
		t.Fatalf("TLB grew to %d entries, cap 4", len(tlb.entries))
	}
}

func TestMMIORouting(t *testing.T) {
	as := NewAddressSpace(NewPhysMem())
	dev := &recordingMMIO{}
	base := KernelBase + 0xFEE00000
	if err := as.RegisterMMIO(base, 1, dev); err != nil {
		t.Fatal(err)
	}
	if err := as.Write64(base+0x10, 42); err != nil {
		t.Fatal(err)
	}
	if dev.lastOff != 0x10 || dev.lastVal != 42 {
		t.Fatalf("MMIO write not routed: off=%#x val=%d", dev.lastOff, dev.lastVal)
	}
	dev.readVal = 99
	v, err := as.Read64(base + 0x20)
	if err != nil {
		t.Fatal(err)
	}
	if v != 99 || dev.lastReadOff != 0x20 {
		t.Fatalf("MMIO read not routed: v=%d off=%#x", v, dev.lastReadOff)
	}
	// MMIO pages are never executable.
	if _, _, err := as.Translate(base, AccessExec); err == nil {
		t.Fatal("MMIO page must be NX")
	}
}

type recordingMMIO struct {
	lastOff, lastVal, lastReadOff, readVal uint64
}

func (m *recordingMMIO) MMIORead(off uint64) uint64 { m.lastReadOff = off; return m.readVal }
func (m *recordingMMIO) MMIOWrite(off, val uint64)  { m.lastOff, m.lastVal = off, val }

// TestQuickMapLookupConsistency property: after mapping a random set of
// distinct pages, every page translates to exactly the frame it was mapped
// to, and unmapped neighbours fault.
func TestQuickMapLookupConsistency(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		as := NewAddressSpace(NewPhysMem())
		pages := make(map[uint64]FrameID)
		for i := 0; i < int(n%64)+1; i++ {
			va := KernelBase + uint64(rng.Intn(1<<20))*PageSize
			if _, ok := pages[va]; ok {
				continue
			}
			fr := as.Phys().Alloc()
			if err := as.Map(va, fr, FlagWrite); err != nil {
				return false
			}
			pages[va] = fr
		}
		for va, fr := range pages {
			got, _, ok := as.Lookup(va)
			if !ok || got != fr {
				return false
			}
		}
		if as.MappedPages() != len(pages) {
			return false
		}
		// Tear down everything; the space must end empty.
		for va := range pages {
			if _, err := as.Unmap(va); err != nil {
				return false
			}
		}
		return as.MappedPages() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRemapAlias property: data written through any alias of a region
// is visible through every other alias.
func TestQuickRemapAlias(t *testing.T) {
	f := func(seed int64, val uint64) bool {
		rng := rand.New(rand.NewSource(seed))
		as := NewAddressSpace(NewPhysMem())
		base0 := KernelBase + uint64(rng.Intn(1<<18))*PageSize
		if _, err := as.MapRegion(base0, 2, FlagWrite); err != nil {
			return false
		}
		base1 := base0 + uint64(rng.Intn(1<<18)+4)*PageSize
		if err := as.RemapRegion(base1, base0, 2); err != nil {
			return false
		}
		off := uint64(rng.Intn(2*PageSize - 8))
		if err := as.Write64(base0+off, val); err != nil {
			return false
		}
		got, err := as.Read64(base1 + off)
		return err == nil && got == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTranslate(b *testing.B) {
	as := NewAddressSpace(NewPhysMem())
	const va = KernelBase + 0x10000
	if err := as.Map(va, as.Phys().Alloc(), FlagWrite); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := as.Translate(va, AccessRead); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTLBTranslate(b *testing.B) {
	as := NewAddressSpace(NewPhysMem())
	const va = KernelBase + 0x10000
	if err := as.Map(va, as.Phys().Alloc(), FlagWrite); err != nil {
		b.Fatal(err)
	}
	tlb := NewTLB(as)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := tlb.Translate(va, AccessRead); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRemapRegion(b *testing.B) {
	as := NewAddressSpace(NewPhysMem())
	base := KernelBase + 0x100000
	const npages = 16 // a typical driver module footprint
	if _, err := as.MapRegion(base, npages, FlagWrite); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	cur := base
	for i := 0; i < b.N; i++ {
		next := base + uint64(i+1)*0x100000%(1<<30)
		if next == cur {
			next += npages * PageSize
		}
		if err := as.RemapRegion(next, cur, npages); err != nil {
			b.Fatal(err)
		}
		if err := as.UnmapRegion(cur, npages, false); err != nil {
			b.Fatal(err)
		}
		cur = next
	}
}

// TestFrameRefVersion: the one-word frame-version handle chain links
// hold must observe exactly what Entry.Version observes — writes through
// any alias of an exec-mapped frame, and frame recycling — so a stale
// linked block can never revalidate.
func TestFrameRefVersion(t *testing.T) {
	phys := NewPhysMem()
	as := NewAddressSpace(phys)
	code := uint64(KernelBase + 0x10000)
	alias := uint64(KernelBase + 0x20000)
	frames, err := as.MapRegion(code, 1, FlagExec)
	if err != nil {
		t.Fatal(err)
	}
	e, err := as.TranslateEntry(code, AccessExec)
	if err != nil {
		t.Fatal(err)
	}
	ref := e.Ref()
	if ref.Version() != e.Version() {
		t.Fatalf("ref version %d != entry version %d", ref.Version(), e.Version())
	}
	v0 := ref.Version()
	// A write through a writable alias of the exec frame must move the
	// version the ref observes.
	if err := as.Map(alias, frames[0], FlagWrite); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteBytes(alias, []byte{0xCC}); err != nil {
		t.Fatal(err)
	}
	if ref.Version() == v0 {
		t.Fatal("alias write invisible through FrameRef")
	}
	// Recycling the frame must bump the version again: a ref recorded in
	// the frame's previous life can never validate its next one.
	v1 := ref.Version()
	if err := as.UnmapRegion(code, 1, true); err != nil {
		t.Fatal(err)
	}
	if err := as.UnmapRegion(alias, 1, false); err != nil {
		t.Fatal(err)
	}
	if got := phys.Alloc(); got != frames[0] {
		t.Fatalf("free list did not recycle frame %d (got %d)", frames[0], got)
	}
	if ref.Version() == v1 {
		t.Fatal("frame recycling invisible through FrameRef")
	}
	if (FrameRef{}).Version() != 0 {
		t.Fatal("zero FrameRef must report version 0")
	}
}
