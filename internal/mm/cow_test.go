package mm

import (
	"bytes"
	"sync"
	"testing"
)

// cowPair builds a parent address space with one writable+one exec page
// of recognizable content, then forks it. Returns parent AS, fork AS.
func cowPair(t *testing.T) (*AddressSpace, *AddressSpace) {
	t.Helper()
	phys := NewPhysMem()
	as := NewAddressSpace(phys)
	const dataVA = KernelBase
	const codeVA = KernelBase + PageSize
	if _, err := as.MapRegion(dataVA, 1, FlagWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := as.MapRegion(codeVA, 1, FlagExec); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteBytes(dataVA, []byte("template-data")); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteBytesForce(codeVA, []byte{0xAA, 0xBB, 0xCC}); err != nil {
		t.Fatal(err)
	}
	return as, as.Fork(phys.Fork())
}

func TestCOWWriteAfterForkIsolation(t *testing.T) {
	parent, fork := cowPair(t)
	const dataVA = KernelBase

	// Before any write the fork reads the template's bytes via shared frames.
	if got, _ := fork.ReadBytes(dataVA, 13); string(got) != "template-data" {
		t.Fatalf("fork reads %q, want template-data", got)
	}
	if parent.Phys().SharedFrames() == 0 {
		t.Fatal("no frames shared after fork")
	}

	// Writing in the fork must not leak into the parent.
	if err := fork.WriteBytes(dataVA, []byte("forked!")); err != nil {
		t.Fatal(err)
	}
	if got, _ := fork.ReadBytes(dataVA, 7); string(got) != "forked!" {
		t.Fatalf("fork reads %q after its own write", got)
	}
	if got, _ := parent.ReadBytes(dataVA, 13); string(got) != "template-data" {
		t.Fatalf("parent corrupted by fork write: %q", got)
	}

	// And vice versa: a second fork sees the template bytes, not the
	// sibling's.
	sibling := parent.Fork(parent.Phys().Fork())
	if got, _ := sibling.ReadBytes(dataVA, 13); string(got) != "template-data" {
		t.Fatalf("sibling reads %q, want template bytes", got)
	}
	sibling.Phys().Release()
	fork.Phys().Release()
}

func TestCOWVersionBumpInvalidatesCachedCode(t *testing.T) {
	_, fork := cowPair(t)
	const codeVA = KernelBase + PageSize

	// Simulate what a superblock chain link holds: a translation Entry and
	// its FrameRef captured before the write.
	e, err := fork.TranslateEntry(codeVA, AccessExec)
	if err != nil {
		t.Fatal(err)
	}
	ref := e.Ref()
	verBefore := ref.Version()
	window := append([]byte(nil), e.CodeWindow(0)[:3]...)
	if !bytes.Equal(window, []byte{0xAA, 0xBB, 0xCC}) {
		t.Fatalf("cached code window = %x", window)
	}

	// COW write to the exec frame in the fork (loader-style forced write).
	if err := fork.WriteBytesForce(codeVA, []byte{0x11}); err != nil {
		t.Fatal(err)
	}

	// The cached ref must observe a version bump — that is what frees the
	// decode/superblock caches from explicit invalidation — and the cached
	// Entry must resolve to the new private bytes, not the shared record.
	if ref.Version() <= verBefore {
		t.Fatalf("version not bumped by COW write: %d -> %d", verBefore, ref.Version())
	}
	if e.Version() <= verBefore {
		t.Fatal("cached entry still validates against pre-COW version")
	}
	if got := e.Bytes()[0]; got != 0x11 {
		t.Fatalf("cached entry reads stale byte %#x after COW", got)
	}
}

func TestCOWParentUnaffectedByForkCodeWrite(t *testing.T) {
	parent, fork := cowPair(t)
	const codeVA = KernelBase + PageSize
	pv := parent.Phys().FrameVersion(1) // frame 1 backs the code page
	if err := fork.WriteBytesForce(codeVA, []byte{0x99}); err != nil {
		t.Fatal(err)
	}
	if got, _ := parent.ReadBytes(codeVA, 1); got[0] != 0xAA {
		t.Fatalf("parent code byte changed to %#x", got[0])
	}
	if parent.Phys().FrameVersion(1) != pv {
		t.Fatal("parent frame version bumped by fork's COW write")
	}
	if fork.Phys().FrameVersion(1) <= pv {
		t.Fatal("fork frame version not past the shared version")
	}
}

func TestCOWConcurrentForks(t *testing.T) {
	phys := NewPhysMem()
	as := NewAddressSpace(phys)
	const base = KernelBase
	const npages = 8
	if _, err := as.MapRegion(base, npages, FlagWrite); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < npages; i++ {
		if err := as.Write64(base+uint64(i)*PageSize, 0xC0FFEE); err != nil {
			t.Fatal(err)
		}
	}

	const forks = 8
	var wg sync.WaitGroup
	errs := make([]error, forks)
	for i := 0; i < forks; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			f := as.Fork(phys.Fork())
			for p := 0; p < npages; p++ {
				va := base + uint64(p)*PageSize
				if err := f.Write64(va, uint64(n)); err != nil {
					errs[n] = err
					return
				}
				got, err := f.Read64(va)
				if err != nil {
					errs[n] = err
					return
				}
				if got != uint64(n) {
					t.Errorf("fork %d reads %#x", n, got)
					return
				}
			}
			f.Phys().Release()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// All forks released: the template owns every frame privately again.
	if n := phys.SharedFrames(); n != 0 {
		t.Fatalf("%d frames still shared after all forks released", n)
	}
	for i := 0; i < npages; i++ {
		got, err := as.Read64(base + uint64(i)*PageSize)
		if err != nil {
			t.Fatal(err)
		}
		if got != 0xC0FFEE {
			t.Fatalf("template page %d corrupted: %#x", i, got)
		}
	}
}

func TestCOWReleaseRefcounts(t *testing.T) {
	phys := NewPhysMem()
	as := NewAddressSpace(phys)
	if _, err := as.MapRegion(KernelBase, 4, FlagWrite); err != nil {
		t.Fatal(err)
	}

	fp := phys.Fork()
	fork := as.Fork(fp)

	// The fork COWs one page: that private record dies with the fork; the
	// other three records survive in the template.
	if err := fork.Write64(KernelBase, 1); err != nil {
		t.Fatal(err)
	}
	if dead := fp.Release(); dead != 1 {
		t.Fatalf("fork release freed %d records, want 1 (its private COW copy)", dead)
	}
	if n := phys.SharedFrames(); n != 0 {
		t.Fatalf("%d frames still shared after fork release", n)
	}

	// Releasing the template last frees everything it owns.
	if dead := phys.Release(); dead != 4 {
		t.Fatalf("template release freed %d records, want 4", dead)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	phys.Release()
}

func TestCOWAllocRecycleDetaches(t *testing.T) {
	// Recycling a freed frame that is still shared with a fork must detach,
	// not zero the shared record in place.
	phys := NewPhysMem()
	as := NewAddressSpace(phys)
	if _, err := as.MapRegion(KernelBase, 1, FlagWrite); err != nil {
		t.Fatal(err)
	}
	if err := as.Write64(KernelBase, 0xDEAD); err != nil {
		t.Fatal(err)
	}
	fp := phys.Fork()
	fork := as.Fork(fp)

	// Template frees and re-allocates the frame (recycle path).
	if err := as.UnmapRegion(KernelBase, 1, true); err != nil {
		t.Fatal(err)
	}
	id := phys.Alloc()
	if got := phys.Frame(id)[0]; got != 0 {
		t.Fatalf("recycled frame not zeroed: %#x", got)
	}
	// The fork still reads the pre-fork contents.
	got, err := fork.Read64(KernelBase)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xDEAD {
		t.Fatalf("fork lost shared contents on template recycle: %#x", got)
	}
	fp.Release()
}
