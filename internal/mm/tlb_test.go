package mm

import "testing"

// tlbFixture maps n pages at base and returns a TLB with the given cap.
func tlbFixture(t *testing.T, n int, cap int) (*TLB, uint64) {
	t.Helper()
	as := NewAddressSpace(NewPhysMem())
	base := KernelBase + 0x400000
	if _, err := as.MapRegion(base, n, FlagWrite); err != nil {
		t.Fatal(err)
	}
	tlb := NewTLB(as)
	tlb.cap = cap
	return tlb, base
}

// TestTLBFIFOEvictionOrder pins the eviction policy: under capacity
// pressure the oldest inserted translation goes first, so the hit/miss
// sequence is a pure function of the access sequence.
func TestTLBFIFOEvictionOrder(t *testing.T) {
	tlb, base := tlbFixture(t, 8, 4)
	page := func(i int) uint64 { return base + uint64(i)*PageSize }
	touch := func(i int) bool {
		_, hit, err := tlb.Entry(page(i), AccessRead)
		if err != nil {
			t.Fatal(err)
		}
		return hit
	}
	for i := 0; i < 4; i++ {
		if touch(i) {
			t.Fatalf("page %d: cold access hit", i)
		}
	}
	// Fill page 4: page 0 (oldest) must be the victim.
	if touch(4) {
		t.Fatal("page 4: cold access hit")
	}
	for i := 1; i <= 4; i++ {
		if !touch(i) {
			t.Fatalf("page %d evicted; FIFO victim should have been page 0", i)
		}
	}
	if touch(0) {
		t.Fatal("page 0 still resident; FIFO should have evicted it")
	}
	// That refill evicted page 1 (now the oldest); 2,3,4,0 are resident.
	if touch(1) {
		t.Fatal("page 1 still resident after ring rotation")
	}
	for _, i := range []int{3, 4, 0, 1} {
		if !touch(i) {
			t.Fatalf("page %d should be resident after rotation", i)
		}
	}
}

// TestTLBEvictionDeterministic replays an overflowing access pattern on
// two TLBs over the same address space and requires identical hit/miss
// accounting — the property the deterministic-clock contract needs once
// a working set exceeds capacity.
func TestTLBEvictionDeterministic(t *testing.T) {
	const pages = 64
	as := NewAddressSpace(NewPhysMem())
	base := KernelBase + 0x400000
	if _, err := as.MapRegion(base, pages, FlagWrite); err != nil {
		t.Fatal(err)
	}
	run := func() (uint64, uint64) {
		tlb := NewTLB(as)
		tlb.cap = 16
		// A pattern with reuse across eviction boundaries: two sequential
		// sweeps plus a strided re-visit.
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < pages; i++ {
				if _, _, err := tlb.Entry(base+uint64(i)*PageSize, AccessRead); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < pages; i += 3 {
				if _, _, err := tlb.Entry(base+uint64(i)*PageSize, AccessRead); err != nil {
					t.Fatal(err)
				}
			}
		}
		hits, misses, _ := tlb.Stats()
		return hits, misses
	}
	h1, m1 := run()
	h2, m2 := run()
	if h1 != h2 || m1 != m2 {
		t.Fatalf("eviction not deterministic: run1 (hits=%d misses=%d) vs run2 (hits=%d misses=%d)", h1, m1, h2, m2)
	}
	if m1 <= pages {
		t.Fatalf("pattern did not overflow the TLB (misses=%d)", m1)
	}
}

// TestTLBFrontCacheInvalidatedByEviction guards the l1 accelerator:
// after a FIFO eviction the front cache must not keep serving the
// evicted translation as a hit.
func TestTLBFrontCacheInvalidatedByEviction(t *testing.T) {
	tlb, base := tlbFixture(t, 6, 4)
	// Warm page 0 through both the map and the l1 slot.
	for i := 0; i < 2; i++ {
		if _, _, err := tlb.Entry(base, AccessRead); err != nil {
			t.Fatal(err)
		}
	}
	// Overflow: pages 1..4 evict page 0.
	for i := 1; i <= 4; i++ {
		if _, _, err := tlb.Entry(base+uint64(i)*PageSize, AccessRead); err != nil {
			t.Fatal(err)
		}
	}
	_, hit, err := tlb.Entry(base, AccessRead)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("front cache served an evicted translation")
	}
}

// TestWordProbeRequiresResidency: the inlinable word probes serve only
// L1-resident translations and count exactly one hit per successful
// probe — never on a decline.
func TestWordProbeRequiresResidency(t *testing.T) {
	tlb, base := tlbFixture(t, 2, 4)
	if _, ok := tlb.LoadPage(base); ok {
		t.Fatal("LoadPage hit a translation that was never loaded")
	}
	if _, ok := tlb.StorePage(base); ok {
		t.Fatal("StorePage hit a translation that was never loaded")
	}
	if hits, _, _ := tlb.Stats(); hits != 0 {
		t.Fatalf("declined probes counted %d hits", hits)
	}
	if _, _, err := tlb.Entry(base, AccessRead); err != nil {
		t.Fatal(err)
	}
	hits0, _, _ := tlb.Stats()
	if _, ok := tlb.LoadPage(base); !ok {
		t.Fatal("LoadPage declined a resident translation")
	}
	if _, ok := tlb.StorePage(base); !ok {
		t.Fatal("StorePage declined a resident writable translation")
	}
	if hits, _, _ := tlb.Stats(); hits != hits0+2 {
		t.Fatalf("probe hits %d → %d, want exactly +2", hits0, hits)
	}
}

// TestWordProbeDeclinesSpecialCases: straddling offsets, read-only
// stores and exec-mapped stores must decline (nothing counted) so the
// full Entry path keeps sole ownership of fault shapes, the content
// version bump, and accounting.
func TestWordProbeDeclinesSpecialCases(t *testing.T) {
	as := NewAddressSpace(NewPhysMem())
	base := KernelBase + 0x400000
	if _, err := as.MapRegion(base, 1, FlagWrite); err != nil {
		t.Fatal(err)
	}
	roBase := base + PageSize
	if _, err := as.MapRegion(roBase, 1, 0); err != nil {
		t.Fatal(err)
	}
	// W^X holds per mapping, so the exec-marked-but-writable case needs
	// an alias: map the frame executable at one VA (which exec-marks the
	// frame itself), then map the same frame writable at another.
	execBase := base + 2*PageSize
	if _, err := as.MapRegion(execBase, 1, FlagExec); err != nil {
		t.Fatal(err)
	}
	frame, _, ok := as.Lookup(execBase)
	if !ok {
		t.Fatal("Lookup(execBase) failed")
	}
	aliasBase := base + 3*PageSize
	if err := as.Map(aliasBase, frame, FlagWrite); err != nil {
		t.Fatal(err)
	}
	tlb := NewTLB(as)
	for _, va := range []uint64{base, roBase, execBase, aliasBase} {
		if _, _, err := tlb.Entry(va, AccessRead); err != nil {
			t.Fatal(err)
		}
	}
	hits0, _, _ := tlb.Stats()
	if _, ok := tlb.LoadPage(base + PageSize - 4); ok {
		t.Fatal("LoadPage served a page-straddling word")
	}
	if _, ok := tlb.StorePage(base + PageSize - 4); ok {
		t.Fatal("StorePage served a page-straddling word")
	}
	if _, ok := tlb.StorePage(roBase); ok {
		t.Fatal("StorePage served a read-only page")
	}
	if _, ok := tlb.StorePage(aliasBase); ok {
		t.Fatal("StorePage served a writable alias of an exec-marked frame (version bump skipped)")
	}
	if hits, _, _ := tlb.Stats(); hits != hits0 {
		t.Fatalf("declined probes counted hits: %d → %d", hits0, hits)
	}
	// An exec-page load is fine — only stores need the version bump.
	if _, ok := tlb.LoadPage(execBase); !ok {
		t.Fatal("LoadPage declined a resident exec page")
	}
}

// TestWordProbeDeclinesCOW: in a forked (copy-on-write) address space
// the store probe must decline — only the full path's WritableBytes
// performs the private-copy detach — while the load probe keeps working
// through the slot indirection.
func TestWordProbeDeclinesCOW(t *testing.T) {
	phys := NewPhysMem()
	as := NewAddressSpace(phys)
	base := KernelBase + 0x400000
	if _, err := as.MapRegion(base, 1, FlagWrite); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteBytes(base, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	fork := as.Fork(phys.Fork())
	tlb := NewTLB(fork)
	if _, _, err := tlb.Entry(base, AccessRead); err != nil {
		t.Fatal(err)
	}
	if _, ok := tlb.StorePage(base); ok {
		t.Fatal("StorePage wrote through a COW-shared frame without detaching")
	}
	b, ok := tlb.LoadPage(base)
	if !ok {
		t.Fatal("LoadPage declined a resident COW translation")
	}
	if b[0] != 1 || b[7] != 8 {
		t.Fatalf("LoadPage returned wrong bytes: % x", b[:8])
	}
}
