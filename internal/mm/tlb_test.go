package mm

import "testing"

// tlbFixture maps n pages at base and returns a TLB with the given cap.
func tlbFixture(t *testing.T, n int, cap int) (*TLB, uint64) {
	t.Helper()
	as := NewAddressSpace(NewPhysMem())
	base := KernelBase + 0x400000
	if _, err := as.MapRegion(base, n, FlagWrite); err != nil {
		t.Fatal(err)
	}
	tlb := NewTLB(as)
	tlb.cap = cap
	return tlb, base
}

// TestTLBFIFOEvictionOrder pins the eviction policy: under capacity
// pressure the oldest inserted translation goes first, so the hit/miss
// sequence is a pure function of the access sequence.
func TestTLBFIFOEvictionOrder(t *testing.T) {
	tlb, base := tlbFixture(t, 8, 4)
	page := func(i int) uint64 { return base + uint64(i)*PageSize }
	touch := func(i int) bool {
		_, hit, err := tlb.Entry(page(i), AccessRead)
		if err != nil {
			t.Fatal(err)
		}
		return hit
	}
	for i := 0; i < 4; i++ {
		if touch(i) {
			t.Fatalf("page %d: cold access hit", i)
		}
	}
	// Fill page 4: page 0 (oldest) must be the victim.
	if touch(4) {
		t.Fatal("page 4: cold access hit")
	}
	for i := 1; i <= 4; i++ {
		if !touch(i) {
			t.Fatalf("page %d evicted; FIFO victim should have been page 0", i)
		}
	}
	if touch(0) {
		t.Fatal("page 0 still resident; FIFO should have evicted it")
	}
	// That refill evicted page 1 (now the oldest); 2,3,4,0 are resident.
	if touch(1) {
		t.Fatal("page 1 still resident after ring rotation")
	}
	for _, i := range []int{3, 4, 0, 1} {
		if !touch(i) {
			t.Fatalf("page %d should be resident after rotation", i)
		}
	}
}

// TestTLBEvictionDeterministic replays an overflowing access pattern on
// two TLBs over the same address space and requires identical hit/miss
// accounting — the property the deterministic-clock contract needs once
// a working set exceeds capacity.
func TestTLBEvictionDeterministic(t *testing.T) {
	const pages = 64
	as := NewAddressSpace(NewPhysMem())
	base := KernelBase + 0x400000
	if _, err := as.MapRegion(base, pages, FlagWrite); err != nil {
		t.Fatal(err)
	}
	run := func() (uint64, uint64) {
		tlb := NewTLB(as)
		tlb.cap = 16
		// A pattern with reuse across eviction boundaries: two sequential
		// sweeps plus a strided re-visit.
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < pages; i++ {
				if _, _, err := tlb.Entry(base+uint64(i)*PageSize, AccessRead); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < pages; i += 3 {
				if _, _, err := tlb.Entry(base+uint64(i)*PageSize, AccessRead); err != nil {
					t.Fatal(err)
				}
			}
		}
		hits, misses, _ := tlb.Stats()
		return hits, misses
	}
	h1, m1 := run()
	h2, m2 := run()
	if h1 != h2 || m1 != m2 {
		t.Fatalf("eviction not deterministic: run1 (hits=%d misses=%d) vs run2 (hits=%d misses=%d)", h1, m1, h2, m2)
	}
	if m1 <= pages {
		t.Fatalf("pattern did not overflow the TLB (misses=%d)", m1)
	}
}

// TestTLBFrontCacheInvalidatedByEviction guards the l1 accelerator:
// after a FIFO eviction the front cache must not keep serving the
// evicted translation as a hit.
func TestTLBFrontCacheInvalidatedByEviction(t *testing.T) {
	tlb, base := tlbFixture(t, 6, 4)
	// Warm page 0 through both the map and the l1 slot.
	for i := 0; i < 2; i++ {
		if _, _, err := tlb.Entry(base, AccessRead); err != nil {
			t.Fatal(err)
		}
	}
	// Overflow: pages 1..4 evict page 0.
	for i := 1; i <= 4; i++ {
		if _, _, err := tlb.Entry(base+uint64(i)*PageSize, AccessRead); err != nil {
			t.Fatal(err)
		}
	}
	_, hit, err := tlb.Entry(base, AccessRead)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("front cache served an evicted translation")
	}
}
