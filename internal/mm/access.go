package mm

import "encoding/binary"

// ReadBytes copies n bytes starting at va into a fresh slice, honouring
// page permissions and crossing page boundaries.
func (as *AddressSpace) ReadBytes(va uint64, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for n > 0 {
		frame, _, err := as.Translate(va, AccessRead)
		if err != nil {
			return nil, err
		}
		off := int(va & PageMask)
		chunk := PageSize - off
		if chunk > n {
			chunk = n
		}
		out = append(out, as.phys.Frame(frame)[off:off+chunk]...)
		va += uint64(chunk)
		n -= chunk
	}
	return out, nil
}

// WriteBytes stores b at va, honouring page permissions.
func (as *AddressSpace) WriteBytes(va uint64, b []byte) error {
	for len(b) > 0 {
		frame, _, err := as.Translate(va, AccessWrite)
		if err != nil {
			return err
		}
		off := int(va & PageMask)
		chunk := PageSize - off
		if chunk > len(b) {
			chunk = len(b)
		}
		copy(as.phys.WritableFrame(frame)[off:off+chunk], b[:chunk])
		as.phys.NoteWrite(frame)
		va += uint64(chunk)
		b = b[chunk:]
	}
	return nil
}

// WriteBytesForce stores b at va ignoring write protection. It exists for
// the loader, which populates pages before write-protecting them, and for
// run-time patching of already-loaded text (paper Fig. 4); regular
// execution must use WriteBytes.
func (as *AddressSpace) WriteBytesForce(va uint64, b []byte) error {
	for len(b) > 0 {
		frame, _, err := as.Translate(va, AccessRead)
		if err != nil {
			return err
		}
		off := int(va & PageMask)
		chunk := PageSize - off
		if chunk > len(b) {
			chunk = len(b)
		}
		copy(as.phys.WritableFrame(frame)[off:off+chunk], b[:chunk])
		as.phys.NoteWrite(frame)
		va += uint64(chunk)
		b = b[chunk:]
	}
	return nil
}

// Read64 loads a 64-bit little-endian value. Loads from MMIO pages are
// routed to the registered device handler.
func (as *AddressSpace) Read64(va uint64) (uint64, error) {
	frame, flags, err := as.Translate(va, AccessRead)
	if err != nil {
		return 0, err
	}
	if flags&FlagMMIO != 0 {
		if h, off, ok := as.mmioFor(va); ok {
			return h.MMIORead(off), nil
		}
	}
	off := va & PageMask
	if off+8 <= PageSize {
		return binary.LittleEndian.Uint64(as.phys.Frame(frame)[off : off+8]), nil
	}
	b, err := as.ReadBytes(va, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// Write64 stores a 64-bit little-endian value. Stores to MMIO pages are
// routed to the registered device handler (doorbell writes, etc.).
func (as *AddressSpace) Write64(va uint64, val uint64) error {
	frame, flags, err := as.Translate(va, AccessWrite)
	if err != nil {
		return err
	}
	if flags&FlagMMIO != 0 {
		if h, off, ok := as.mmioFor(va); ok {
			h.MMIOWrite(off, val)
			return nil
		}
	}
	off := va & PageMask
	if off+8 <= PageSize {
		binary.LittleEndian.PutUint64(as.phys.WritableFrame(frame)[off:off+8], val)
		as.phys.NoteWrite(frame)
		return nil
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], val)
	return as.WriteBytes(va, b[:])
}

// Write64Force stores a 64-bit value ignoring write protection — used by
// the loader and re-randomizer to update entries in write-protected GOTs.
func (as *AddressSpace) Write64Force(va uint64, val uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], val)
	return as.WriteBytesForce(va, b[:])
}

// Read64Force loads a 64-bit value requiring only that the page is mapped.
func (as *AddressSpace) Read64Force(va uint64) (uint64, error) {
	b, err := as.ReadBytes(va, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}
