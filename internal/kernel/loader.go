package kernel

import (
	"fmt"

	"adelie/internal/elfmod"
	"adelie/internal/isa"
	"adelie/internal/mm"
	"adelie/internal/obs"
)

// stubSize is the bytes reserved per PLT stub:
// mov slot(%rip), %rax (6) + push %rax (2) + nop nop (2) + ret (1) = 11,
// rounded for alignment.
const stubSize = 16

// partID distinguishes the two module halves during loading.
type partID int

const (
	partMovable partID = iota
	partImmovable
)

// Load links a relocatable object into the kernel's address space,
// performing Adelie's loader duties (paper §4.1–4.2): section placement,
// GOT construction (four tables for re-randomizable modules), PLT stub
// creation or elision, run-time patching of local accesses (Fig. 4),
// relocation resolution, GOT write-protection and symbol export.
func (k *Kernel) Load(obj *elfmod.Object) (*Module, error) {
	if err := obj.Validate(); err != nil {
		return nil, err
	}
	k.mu.Lock()
	if _, dup := k.modules[obj.Name]; dup {
		k.mu.Unlock()
		return nil, fmt.Errorf("kernel: module %q already loaded", obj.Name)
	}
	k.mu.Unlock()
	if !obj.PIC && k.Cfg.KASLR == KASLRFull64 {
		return nil, fmt.Errorf("kernel: non-PIC module %q cannot load under full 64-bit KASLR", obj.Name)
	}
	if obj.Rerandomizable && !obj.PIC {
		return nil, fmt.Errorf("kernel: re-randomizable module %q must be PIC", obj.Name)
	}

	m := &Module{Name: obj.Name, Obj: obj, k: k, exports: map[string]uint64{}, keySlot: -1}
	ld := &loader{k: k, m: m, obj: obj}
	if err := ld.run(); err != nil {
		// Best-effort rollback of any mapped regions.
		for _, p := range []*Part{&m.Movable, &m.Immovable} {
			if p.Pages > 0 {
				_ = k.AS.UnmapRegion(p.Base, p.Pages, true)
				k.mu.Lock()
				k.release(p.Base, p.Size)
				k.mu.Unlock()
			}
		}
		return nil, err
	}
	k.mu.Lock()
	k.modules[obj.Name] = m
	k.mu.Unlock()
	obs.Default.Counter("adelie_kernel_modules_loaded_total").Inc()
	return m, nil
}

type loader struct {
	k   *Kernel
	m   *Module
	obj *elfmod.Object
}

// partOf returns which part a section belongs to.
func (ld *loader) partOf(sec int) partID {
	if !ld.obj.Rerandomizable {
		return partMovable // single-part module
	}
	if ld.obj.Sections[sec].Kind.Movable() {
		return partMovable
	}
	return partImmovable
}

func (ld *loader) part(id partID) *Part {
	if id == partMovable {
		return &ld.m.Movable
	}
	return &ld.m.Immovable
}

// symLocation returns the part and definedness of a symbol. Kernel imports
// and the key pseudo-symbol report defined=false.
func (ld *loader) symLocation(symIdx int) (id partID, defined bool) {
	s := &ld.obj.Symbols[symIdx]
	if s.IsUndefined() {
		return 0, false
	}
	return ld.partOf(s.Section), true
}

func (ld *loader) run() error {
	if err := ld.plan(); err != nil {
		return err
	}
	if err := ld.layout(partMovable); err != nil {
		return err
	}
	if ld.obj.Rerandomizable {
		if err := ld.layout(partImmovable); err != nil {
			return err
		}
	}
	if err := ld.populateSections(); err != nil {
		return err
	}
	if err := ld.fillGOTs(); err != nil {
		return err
	}
	if err := ld.writeStubs(); err != nil {
		return err
	}
	if err := ld.applyRelocs(); err != nil {
		return err
	}
	if err := ld.protect(); err != nil {
		return err
	}
	return ld.export()
}

// plan scans relocations to size the GOTs and PLT stub areas before any
// layout decisions are made.
func (ld *loader) plan() error {
	m := ld.m
	m.Movable.GotFixed = &GOT{Name: "mov.fixed"}
	m.Movable.GotLocal = &GOT{Name: "mov.local"}
	m.Movable.stubs = map[string]uint64{}
	if ld.obj.Rerandomizable {
		m.Immovable.GotFixed = &GOT{Name: "imm.fixed"}
		m.Immovable.GotLocal = &GOT{Name: "imm.local"}
		m.Immovable.stubs = map[string]uint64{}
	}

	for _, r := range ld.obj.Relocs {
		caller := ld.partOf(r.Section)
		sym := &ld.obj.Symbols[r.Symbol]
		switch r.Type {
		case elfmod.RelGOTPCREL:
			if sym.Name == elfmod.KeySymbol {
				// The key always lives in the movable local GOT; wrappers
				// never touch it.
				if caller != partMovable {
					return fmt.Errorf("kernel: %s: key access from immovable code", ld.obj.Name)
				}
				m.keySlot = ld.part(caller).GotLocal.slot(elfmod.KeySymbol)
				continue
			}
			loc, defined := ld.symLocation(r.Symbol)
			if defined && loc == caller && !ld.k.Cfg.DisableFig4Patching {
				continue // will be patched to lea/direct — no slot (Fig. 4)
			}
			ld.chooseGOT(caller, r.Symbol).slot(sym.Name)
		case elfmod.RelPLT32:
			loc, defined := ld.symLocation(r.Symbol)
			if defined && loc == caller && !ld.k.Cfg.DisableFig4Patching {
				continue // stub elided: direct call
			}
			// Stub needed: reserve its GOT slot and stub space.
			ld.chooseGOT(caller, r.Symbol).slot(sym.Name)
			p := ld.part(caller)
			if _, ok := p.stubs[sym.Name]; !ok {
				p.stubs[sym.Name] = uint64(len(p.stubs)) // ordinal; VA later
				m.PltStubsBuilt++
			}
		}
	}
	return nil
}

// chooseGOT routes a symbol to one of the caller part's two GOTs: local
// if the target moves with the module, fixed otherwise (kernel imports,
// immovable-part symbols).
func (ld *loader) chooseGOT(caller partID, symIdx int) *GOT {
	p := ld.part(caller)
	loc, defined := ld.symLocation(symIdx)
	if defined && loc == partMovable && ld.obj.Rerandomizable {
		return p.GotLocal
	}
	if !ld.obj.Rerandomizable {
		// Single-part modules keep one logical GOT; everything is "fixed"
		// because nothing moves after load.
		return p.GotFixed
	}
	return p.GotFixed
}

// layout assigns offsets to sections, stub area and GOTs within a part,
// allocates its region and maps it writable for population.
func (ld *loader) layout(id partID) error {
	p := ld.part(id)
	p.secOff = map[int]uint64{}
	var off uint64

	pageAlign := func() { off = (off + mm.PageMask) &^ mm.PageMask }
	pageOf := func(b uint64) int { return int(b / mm.PageSize) }

	// Executable chunk: code sections, then PLT stubs.
	execStart := off
	for i := range ld.obj.Sections {
		s := &ld.obj.Sections[i]
		if !s.Kind.Executable() || ld.partOf(i) != id {
			continue
		}
		off = (off + 15) &^ 15
		p.secOff[i] = off
		off += s.Size
	}
	off = (off + 15) &^ 15
	p.stubOff = off
	off += uint64(len(p.stubs)) * stubSize
	pageAlign()
	execEnd := off

	// Read-only data chunk.
	roStart := off
	for i := range ld.obj.Sections {
		s := &ld.obj.Sections[i]
		if s.Kind != elfmod.SecROData || ld.partOf(i) != id {
			continue
		}
		off = (off + 7) &^ 7
		p.secOff[i] = off
		off += s.Size
	}
	pageAlign()
	roEnd := off

	// Writable data chunk (.data then .bss).
	rwStart := off
	for i := range ld.obj.Sections {
		s := &ld.obj.Sections[i]
		if !s.Kind.Writable() || ld.partOf(i) != id {
			continue
		}
		off = (off + 7) &^ 7
		p.secOff[i] = off
		off += s.Size
	}
	pageAlign()
	rwEnd := off

	// Fixed GOT pages, then local GOT pages (page-granular so each can be
	// protected and — for the local one — remapped independently).
	fixedGotStart := off
	off += uint64(p.GotFixed.pages()) * mm.PageSize
	localGotStart := off
	off += uint64(p.GotLocal.pages()) * mm.PageSize
	if off == 0 {
		off = mm.PageSize // degenerate empty part: keep one page
	}
	pageAlign()

	p.Size = off
	p.Pages = int(off / mm.PageSize)
	p.localGotLo = pageOf(localGotStart)
	p.localGotHi = p.localGotLo + p.GotLocal.pages()

	p.chunks = []chunk{
		{pageOf(execStart), pageOf(execEnd), mm.FlagExec},
		{pageOf(roStart), pageOf(roEnd), 0},
		{pageOf(rwStart), pageOf(rwEnd), mm.FlagWrite},
		{pageOf(fixedGotStart), p.localGotLo, 0},
		{p.localGotLo, p.localGotHi, 0},
	}

	// Place the part. Non-PIC modules must stay within rel32 reach of the
	// kernel image, which the vanilla window guarantees.
	k := ld.k
	k.mu.Lock()
	base, err := k.randomRegion(p.Size, k.moduleRangeLo, k.moduleRangeHi)
	k.mu.Unlock()
	if err != nil {
		return err
	}
	p.Base = base
	frames, err := k.AS.MapRegion(base, p.Pages, mm.FlagWrite)
	if err != nil {
		return err
	}
	p.Frames = frames
	p.GotFixed.Base = base + fixedGotStart
	p.GotLocal.Base = base + localGotStart
	return nil
}

// populateSections copies section bytes into the mapped regions.
func (ld *loader) populateSections() error {
	for i := range ld.obj.Sections {
		s := &ld.obj.Sections[i]
		if s.Kind == elfmod.SecBSS || len(s.Data) == 0 {
			continue
		}
		p := ld.part(ld.partOf(i))
		va := p.Base + p.secOff[i]
		if err := ld.k.AS.WriteBytesForce(va, s.Data); err != nil {
			return fmt.Errorf("kernel: %s: populating %v: %w", ld.obj.Name, s.Kind, err)
		}
	}
	return nil
}

// symVA resolves a defined module symbol or a kernel export to its VA.
func (ld *loader) symVA(symIdx int) (uint64, error) {
	s := &ld.obj.Symbols[symIdx]
	if s.Name == elfmod.KeySymbol {
		return 0, fmt.Errorf("kernel: %s: %s has no address (GOT-slot value only)", ld.obj.Name, s.Name)
	}
	if !s.IsUndefined() {
		p := ld.part(ld.partOf(s.Section))
		return p.Base + p.secOff[s.Section] + s.Offset, nil
	}
	if va, ok := ld.k.Symbol(s.Name); ok {
		return va, nil
	}
	return 0, fmt.Errorf("kernel: %s: unresolved symbol %q (U)", ld.obj.Name, s.Name)
}

// fillGOTs resolves every GOT slot's contents and writes the tables.
func (ld *loader) fillGOTs() error {
	m := ld.m
	key := uint64(ld.k.Rand.Int63())<<1 | 1
	m.curKey = key
	parts := []*Part{&m.Movable}
	if ld.obj.Rerandomizable {
		parts = append(parts, &m.Immovable)
	}
	for _, p := range parts {
		for _, g := range []*GOT{p.GotFixed, p.GotLocal} {
			if g == nil {
				continue
			}
			// Record backing frames for the GOT pages.
			for pg := 0; pg < g.pages(); pg++ {
				idx := int((g.Base-p.Base)/mm.PageSize) + pg
				g.Frames = append(g.Frames, p.Frames[idx])
			}
			for i := range g.Slots {
				s := &g.Slots[i]
				if s.Sym == elfmod.KeySymbol {
					s.Val = key
				} else {
					idx := ld.obj.SymbolRef(s.Sym)
					va, err := ld.symVA(idx)
					if err != nil {
						return err
					}
					s.Val = va
				}
				if err := ld.k.AS.Write64Force(g.SlotVA(i), s.Val); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// writeStubs materializes PLT stubs: mov slot(%rip), %rax ; push %rax ;
// nop ; nop ; ret — Linux's JMP_NOSPEC construct (paper §4.1, footnote on
// %rax being the one safe volatile register).
func (ld *loader) writeStubs() error {
	m := ld.m
	parts := []*Part{&m.Movable}
	if ld.obj.Rerandomizable {
		parts = append(parts, &m.Immovable)
	}
	for pi, p := range parts {
		for sym, ordinal := range p.stubs {
			stubVA := p.Base + p.stubOff + ordinal*stubSize
			g := ld.chooseGOT(partID(pi), ld.obj.SymbolRef(sym))
			si, ok := g.Lookup(sym)
			if !ok {
				return fmt.Errorf("kernel: %s: stub for %q has no GOT slot", m.Name, sym)
			}
			slotVA := g.SlotVA(si)
			var code []byte
			// mov slot(%rip), %rax — disp relative to next RIP (stubVA+6).
			disp := int64(slotVA) - int64(stubVA+6)
			if disp < -1<<31 || disp >= 1<<31 {
				return fmt.Errorf("kernel: %s: stub GOT slot out of rel32 range", m.Name)
			}
			code = isa.Inst{Op: isa.OpLDRIP, R1: isa.RAX, Disp: int32(disp)}.Append(code)
			code = isa.Inst{Op: isa.OpPUSH, R1: isa.RAX}.Append(code)
			code = isa.Inst{Op: isa.OpNOP}.Append(code)
			code = isa.Inst{Op: isa.OpNOP}.Append(code)
			code = isa.Inst{Op: isa.OpRET}.Append(code)
			if err := ld.k.AS.WriteBytesForce(stubVA, code); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyRelocs patches every relocation site, performing the Fig.-4
// optimizations where symbol locality allows.
func (ld *loader) applyRelocs() error {
	m := ld.m
	for _, r := range ld.obj.Relocs {
		caller := ld.partOf(r.Section)
		p := ld.part(caller)
		P := p.Base + p.secOff[r.Section] + r.Offset
		sym := &ld.obj.Symbols[r.Symbol]

		switch r.Type {
		case elfmod.RelAbs64:
			S, err := ld.symVA(r.Symbol)
			if err != nil {
				return err
			}
			if err := ld.k.AS.Write64Force(P, S+uint64(r.Addend)); err != nil {
				return err
			}
			// Movable-targeting pointers in movable data are slid on each
			// re-randomization.
			loc, defined := ld.symLocation(r.Symbol)
			if ld.obj.Rerandomizable && defined && loc == partMovable {
				if caller != partMovable {
					return fmt.Errorf("kernel: %s: immovable data holds raw movable address of %q; export a wrapper instead", m.Name, sym.Name)
				}
				m.localPtrOffsets = append(m.localPtrOffsets, P-p.Base)
			}

		case elfmod.RelPC32:
			S, err := ld.symVA(r.Symbol)
			if err != nil {
				return err
			}
			loc, defined := ld.symLocation(r.Symbol)
			if ld.obj.Rerandomizable && defined && loc != caller {
				return fmt.Errorf("kernel: %s: rel32 reference crosses movable/immovable boundary (%q)", m.Name, sym.Name)
			}
			if err := ld.writePC32(P, S, r.Addend, sym.Name); err != nil {
				return err
			}

		case elfmod.RelGOTPCREL:
			if sym.Name == elfmod.KeySymbol {
				g := m.Movable.GotLocal
				si, _ := g.Lookup(elfmod.KeySymbol)
				if err := ld.writePC32(P, g.SlotVA(si), r.Addend, sym.Name); err != nil {
					return err
				}
				continue
			}
			loc, defined := ld.symLocation(r.Symbol)
			if defined && loc == caller && !ld.k.Cfg.DisableFig4Patching {
				// Fig. 4: local symbol — patch the instruction itself.
				S, err := ld.symVA(r.Symbol)
				if err != nil {
					return err
				}
				if err := ld.patchLocalGotAccess(P, S, r.Addend, m); err != nil {
					return err
				}
				continue
			}
			g := ld.chooseGOT(caller, r.Symbol)
			si, ok := g.Lookup(sym.Name)
			if !ok {
				return fmt.Errorf("kernel: %s: missing GOT slot for %q", m.Name, sym.Name)
			}
			if err := ld.writePC32(P, g.SlotVA(si), r.Addend, sym.Name); err != nil {
				return err
			}

		case elfmod.RelPLT32:
			loc, defined := ld.symLocation(r.Symbol)
			if defined && loc == caller && !ld.k.Cfg.DisableFig4Patching {
				// Stub elided: direct call (Fig. 4 "With PLT", local).
				S, err := ld.symVA(r.Symbol)
				if err != nil {
					return err
				}
				if err := ld.writePC32(P, S, r.Addend, sym.Name); err != nil {
					return err
				}
				m.CallsPatched++
				m.PltStubsElided++
				continue
			}
			ordinal, ok := p.stubs[sym.Name]
			if !ok {
				return fmt.Errorf("kernel: %s: missing PLT stub for %q", m.Name, sym.Name)
			}
			stubVA := p.Base + p.stubOff + ordinal*stubSize
			if err := ld.writePC32(P, stubVA, r.Addend, sym.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// patchLocalGotAccess rewrites a GOT-indirect instruction whose target
// turned out to be local (paper Fig. 4):
//
//	call/jmp *foo@GOTPCREL(%rip) → call/jmp foo
//	mov foo@GOTPCREL(%rip), %R  → lea foo(%rip), %R
//
// P is the VA of the 32-bit displacement field.
func (ld *loader) patchLocalGotAccess(P, S uint64, addend int64, m *Module) error {
	as := ld.k.AS
	// The opcode byte sits at P-1 for the call/jmp forms and P-2 for the
	// register-load form (whose P-1 byte is a register number < 16 and
	// therefore cannot be confused with the 0xFB/0xFD opcodes).
	b1, err := as.ReadBytes(P-1, 1)
	if err != nil {
		return err
	}
	switch isa.Op(b1[0]) {
	case isa.OpCALLM:
		if err := as.WriteBytesForce(P-1, []byte{byte(isa.OpCALL)}); err != nil {
			return err
		}
		m.CallsPatched++
	case isa.OpJMPM:
		if err := as.WriteBytesForce(P-1, []byte{byte(isa.OpJMP)}); err != nil {
			return err
		}
		m.CallsPatched++
	default:
		b2, err := as.ReadBytes(P-2, 1)
		if err != nil {
			return err
		}
		if isa.Op(b2[0]) != isa.OpLDRIP {
			return fmt.Errorf("kernel: %s: GOTPCREL relocation on unrecognized instruction (bytes %#x %#x)", m.Name, b2[0], b1[0])
		}
		if err := as.WriteBytesForce(P-2, []byte{byte(isa.OpLEARIP)}); err != nil {
			return err
		}
		m.GotLoadsPatched++
	}
	return ld.writePC32(P, S, addend, "(local)")
}

// writePC32 stores S+A-P into the 32-bit field at P, range-checked. For
// absolute-model modules this check is what enforces the ±2 GB placement
// constraint of vanilla KASLR.
func (ld *loader) writePC32(P, S uint64, addend int64, sym string) error {
	v := int64(S) + addend - int64(P)
	if v < -1<<31 || v >= 1<<31 {
		return fmt.Errorf("kernel: %s: relocation against %q out of rel32 range (%d)", ld.obj.Name, sym, v)
	}
	var b [4]byte
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	return ld.k.AS.WriteBytesForce(P, b[:])
}

// protect applies the final page permissions: text executable, read-only
// data and both GOTs write-protected (paper §4.1: "We write-protect pages
// with GOT/PLT entries after initialization").
func (ld *loader) protect() error {
	m := ld.m
	parts := []*Part{&m.Movable}
	if ld.obj.Rerandomizable {
		parts = append(parts, &m.Immovable)
	}
	for _, p := range parts {
		for _, c := range p.chunks {
			for pg := c.pageLo; pg < c.pageHi; pg++ {
				if err := ld.k.AS.Protect(p.Base+uint64(pg)*mm.PageSize, c.flags); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// export publishes the module's global symbols. Re-randomizable modules
// export only immovable-part symbols (wrappers, read-only tables): the
// kernel must never hold a raw movable address.
func (ld *loader) export() error {
	m := ld.m
	for i := range ld.obj.Symbols {
		s := &ld.obj.Symbols[i]
		if s.IsUndefined() || s.Bind != elfmod.BindGlobal {
			continue
		}
		if ld.obj.Rerandomizable && ld.partOf(s.Section) == partMovable {
			return fmt.Errorf("kernel: %s: exported symbol %q lives in the movable part; wrap it or make it immovable", m.Name, s.Name)
		}
		va, err := ld.symVA(i)
		if err != nil {
			return err
		}
		if err := ld.k.ExportSymbol(s.Name, va); err != nil {
			return err
		}
		m.exports[s.Name] = va
	}
	return nil
}
