package kernel

import (
	"sort"

	"adelie/internal/cpu"
)

// Interrupt support mirrors the workqueue's §3.4 treatment of deferred
// execution: a driver registers an ISR whose address may live inside its
// movable part (request_irq with &handler, like queue_work), the
// re-randomizer slides registered vectors when the module moves, and
// every dispatch runs inside its own mr_start/mr_finish bracket so a
// concurrent re-randomization cannot unmap the handler mid-ISR.
//
// Delivery timing is the engine's job: the bus's interrupt controller
// collects lines raised during a round, and the engine calls DispatchIRQ
// only at barrier-synchronized clock boundaries with all vCPUs
// quiescent — the determinism contract documented in README.md.

// RegisterISR installs handler as the interrupt service routine for a
// line. Re-registering a line replaces its handler (drivers re-init).
func (k *Kernel) RegisterISR(line int, handler uint64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.isrs == nil {
		k.isrs = map[int]uint64{}
	}
	k.isrs[line] = handler
}

// ISR returns the handler registered for a line.
func (k *Kernel) ISR(line int) (uint64, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	va, ok := k.isrs[line]
	return va, ok
}

// ISRLines returns the lines with registered handlers, sorted.
func (k *Kernel) ISRLines() []int {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]int, 0, len(k.isrs))
	for line := range k.isrs {
		out = append(out, line)
	}
	sort.Ints(out)
	return out
}

// DispatchIRQ runs the ISR registered for line on c, bracketed with
// mr_start/mr_finish like a workqueue handler. It returns false (and no
// error) for a spurious interrupt — a line with no registered handler.
func (k *Kernel) DispatchIRQ(c *cpu.CPU, line int) (bool, error) {
	k.mu.Lock()
	va, ok := k.isrs[line]
	k.mu.Unlock()
	if !ok {
		return false, nil
	}
	k.SMR.Enter(c.ID)
	defer k.SMR.Leave(c.ID)
	_, err := c.Call(va, uint64(line))
	return true, err
}

// slideISRs retargets registered handlers that point into the movable
// range being moved — the interrupt-vector counterpart of
// slideWorkqueue. Called by Module.Rerandomize under k's module lock.
func (k *Kernel) slideISRs(oldBase, size, delta uint64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	for line, va := range k.isrs {
		if va >= oldBase && va < oldBase+size {
			k.isrs[line] = va + delta
		}
	}
}
