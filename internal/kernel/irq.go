package kernel

import (
	"sort"

	"adelie/internal/cpu"
)

// Interrupt support mirrors the workqueue's §3.4 treatment of deferred
// execution: a driver registers an ISR whose address may live inside its
// movable part (request_irq with &handler, like queue_work), the
// re-randomizer slides registered vectors when the module moves, and
// every dispatch runs inside its own mr_start/mr_finish bracket so a
// concurrent re-randomization cannot unmap the handler mid-ISR.
//
// Each vector also carries an affinity — the vCPU its ISR runs on. The
// kernel is the source of truth for affinity (like the irq descriptor's
// effective mask); an installed IRQ router hook mirrors affinity changes
// into the bus's vector table so the interrupt controller groups
// delivery per target lane.
//
// Delivery timing is the engine's job: the bus's interrupt controller
// collects lines raised during a round, and the engine calls DispatchIRQ
// only at barrier-synchronized clock boundaries with all vCPUs
// quiescent — the determinism contract documented in README.md.

// isrEntry is one interrupt vector: the handler address plus the vCPU
// the handler is affine to.
type isrEntry struct {
	handler uint64
	vcpu    int
}

// SetIRQRouter installs the hook mirroring ISR affinity into the
// machine's interrupt-routing fabric (the bus vector table). The hook is
// machine wiring, not kernel state: Fork does not carry it over — the
// forked machine re-installs a hook pointing at its own controller.
func (k *Kernel) SetIRQRouter(route func(line, vcpu int)) {
	k.mu.Lock()
	k.irqRouter = route
	k.mu.Unlock()
}

// RegisterISR installs handler as the interrupt service routine for a
// line, affine to vcpu. Re-registering a line replaces its handler and
// affinity (drivers re-init).
func (k *Kernel) RegisterISR(line int, handler uint64, vcpu int) {
	k.mu.Lock()
	if k.isrs == nil {
		k.isrs = map[int]isrEntry{}
	}
	if vcpu < 0 {
		vcpu = 0
	}
	k.isrs[line] = isrEntry{handler: handler, vcpu: vcpu}
	route := k.irqRouter
	k.mu.Unlock()
	if route != nil {
		route(line, vcpu)
	}
}

// SetISRAffinity re-targets a registered line's ISR to a vCPU and
// mirrors the change through the router hook. Unregistered lines are
// routed only (the driver may set affinity before request_irq).
func (k *Kernel) SetISRAffinity(line, vcpu int) {
	if vcpu < 0 {
		vcpu = 0
	}
	k.mu.Lock()
	if e, ok := k.isrs[line]; ok {
		e.vcpu = vcpu
		k.isrs[line] = e
	}
	route := k.irqRouter
	k.mu.Unlock()
	if route != nil {
		route(line, vcpu)
	}
}

// ISRAffinity returns the vCPU a registered line is affine to (0 for
// unregistered lines — the legacy target).
func (k *Kernel) ISRAffinity(line int) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.isrs[line].vcpu
}

// ISR returns the handler registered for a line.
func (k *Kernel) ISR(line int) (uint64, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	e, ok := k.isrs[line]
	return e.handler, ok
}

// ISRLines returns the lines with registered handlers, sorted.
func (k *Kernel) ISRLines() []int {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]int, 0, len(k.isrs))
	for line := range k.isrs {
		out = append(out, line)
	}
	sort.Ints(out)
	return out
}

// DispatchIRQ runs the ISR registered for line on c, bracketed with
// mr_start/mr_finish like a workqueue handler. The engine picks c from
// the line's routed vCPU; the kernel only resolves the vector. It
// returns false (and no error) for a spurious interrupt — a line with
// no registered handler.
func (k *Kernel) DispatchIRQ(c *cpu.CPU, line int) (bool, error) {
	k.mu.Lock()
	e, ok := k.isrs[line]
	k.mu.Unlock()
	if !ok {
		return false, nil
	}
	k.SMR.Enter(c.ID)
	defer k.SMR.Leave(c.ID)
	_, err := c.Call(e.handler, uint64(line))
	return true, err
}

// slideISRs retargets registered handlers that point into the movable
// range being moved — the interrupt-vector counterpart of
// slideWorkqueue. Affinity is untouched: re-randomization moves code,
// not routing. Called by Module.Rerandomize under k's module lock.
func (k *Kernel) slideISRs(oldBase, size, delta uint64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	for line, e := range k.isrs {
		if e.handler >= oldBase && e.handler < oldBase+size {
			e.handler += delta
			k.isrs[line] = e
		}
	}
}
