package kernel

import (
	"fmt"
	"sync"

	"adelie/internal/elfmod"
	"adelie/internal/mm"
)

// GOT is one global offset table instance. Re-randomizable modules carry
// four (paper §4.1): {movable, immovable} × {local, fixed}. Local GOTs
// hold addresses into the movable part (plus the encryption key) and are
// reallocated on every re-randomization; fixed GOTs hold kernel and
// immovable-part addresses and are write-protected once, forever.
type GOT struct {
	Name   string
	Base   uint64 // VA of slot 0 (for the movable part: relative VA = Base is updated on move)
	Slots  []GOTSlot
	Frames []mm.FrameID // backing frames of the GOT pages
	index  map[string]int
}

// GOTSlot is one 8-byte GOT entry.
type GOTSlot struct {
	Sym string
	Val uint64 // current contents (symbol address, or the key)
}

// slot returns the index for sym, appending a new slot if needed.
func (g *GOT) slot(sym string) int {
	if g.index == nil {
		g.index = make(map[string]int)
	}
	if i, ok := g.index[sym]; ok {
		return i
	}
	g.Slots = append(g.Slots, GOTSlot{Sym: sym})
	g.index[sym] = len(g.Slots) - 1
	return len(g.Slots) - 1
}

// SlotVA returns the VA of slot i.
func (g *GOT) SlotVA(i int) uint64 { return g.Base + uint64(i)*8 }

// Lookup returns the slot index of sym.
func (g *GOT) Lookup(sym string) (int, bool) {
	i, ok := g.index[sym]
	return i, ok
}

// pages returns how many pages the GOT occupies (at least one if any
// slots exist).
func (g *GOT) pages() int {
	if len(g.Slots) == 0 {
		return 0
	}
	return (len(g.Slots)*8 + mm.PageSize - 1) / mm.PageSize
}

// Part is one logical half of a module (paper Fig. 2b). Non-rerandomizable
// modules have a single part holding every section.
type Part struct {
	Base  uint64
	Size  uint64 // bytes, page-aligned
	Pages int

	secOff   map[int]uint64 // object section index → offset within part
	chunks   []chunk        // protection layout
	stubOff  uint64         // offset of the PLT stub area
	stubs    map[string]uint64
	GotFixed *GOT
	GotLocal *GOT

	// localGotPages is the page range [lo,hi) within the part occupied by
	// the local GOT — the pages that get fresh frames on every move.
	localGotLo, localGotHi int

	Frames []mm.FrameID
}

// chunk is a run of pages sharing protection flags.
type chunk struct {
	pageLo, pageHi int
	flags          mm.PageFlags
}

// SectionVA returns the current VA of an object section.
func (p *Part) SectionVA(sec int) (uint64, bool) {
	off, ok := p.secOff[sec]
	return p.Base + off, ok
}

// Module is a loaded module instance.
type Module struct {
	Name string
	Obj  *elfmod.Object
	k    *Kernel

	Movable   Part
	Immovable Part // zero-valued for non-rerandomizable modules

	exports map[string]uint64

	// localPtrOffsets are offsets within the movable part whose 64-bit
	// contents point into the movable part (function pointers in .data,
	// heap-exported addresses); the re-randomizer slides them by the move
	// delta (paper §6 "pointers are also adjusted when re-randomizing").
	localPtrOffsets []uint64

	keySlot int // index of the key slot in the movable local GOT, or -1
	curKey  uint64

	// Statistics (paper Fig. 4 / §4.1 effects and dmesg counters).
	Rerandomizations uint64
	GotLoadsPatched  int // mov sym@GOTPCREL → lea sym(%rip)
	CallsPatched     int // GOT/PLT call → direct call
	PltStubsBuilt    int
	PltStubsElided   int
	PagesRemapped    uint64
	GotEntriesMoved  uint64

	mu sync.Mutex
}

// Exports returns the module's exported symbol → VA map (wrappers for
// re-randomizable modules).
func (m *Module) Exports() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]uint64, len(m.exports))
	for k, v := range m.exports {
		out[k] = v
	}
	return out
}

// Base returns the current movable-part base — the address an attacker
// must learn, and which re-randomization keeps changing.
func (m *Module) Base() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.Movable.Base
}

// Key returns the current return-address encryption key (tests and the
// attack simulator use it; module code reads it through the local GOT).
func (m *Module) Key() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.curKey
}

// LoadedSize returns the mapped footprint in bytes, including GOT and PLT
// pages — the quantity Fig. 5a compares across code models.
func (m *Module) LoadedSize() uint64 {
	return m.Movable.Size + m.Immovable.Size
}

// ContentSize returns the byte footprint before page rounding: section
// bytes plus the GOT slots and PLT stubs the loader materialized. This is
// the resolution Fig. 5a plots (tens of KB), where the GOT/PLT overhead
// of the PIC model is visible but small.
func (m *Module) ContentSize() uint64 {
	n := m.Obj.TotalSize()
	for _, p := range []*Part{&m.Movable, &m.Immovable} {
		for _, g := range []*GOT{p.GotFixed, p.GotLocal} {
			if g != nil {
				n += uint64(len(g.Slots)) * 8
			}
		}
		n += uint64(len(p.stubs)) * stubSize
	}
	return n
}

// Rerandomizable reports whether the module participates in continuous
// re-randomization.
func (m *Module) Rerandomizable() bool { return m.Obj.Rerandomizable }

// FindFunc resolves a guest VA inside the module to the name of the
// function containing it. Resolution is stable *through*
// re-randomization: a move changes only Part.Base, never a function's
// offset within its part, so a profiler sample taken in any epoch
// attributes to the same symbol. The second return is false when the VA
// is outside both parts or lands on non-function bytes (GOT and PLT
// pages, data sections with no covering symbol).
func (m *Module) FindFunc(va uint64) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range []*Part{&m.Movable, &m.Immovable} {
		if p.Size == 0 || va < p.Base || va >= p.Base+p.Size {
			continue
		}
		off := va - p.Base
		// Locate the object section containing the offset. Sections
		// within a part never overlap, so map iteration order cannot
		// change the answer.
		for sec, so := range p.secOff {
			size := uint64(len(m.Obj.Sections[sec].Data))
			if size == 0 {
				size = m.Obj.Sections[sec].Size
			}
			if off < so || off >= so+size {
				continue
			}
			inSec := off - so
			// Best-match function symbol: the greatest Offset at or
			// below the section offset whose Size (when declared)
			// covers it; offset ties break by name for determinism.
			name, bestOff, found := "", uint64(0), false
			for i := range m.Obj.Symbols {
				s := &m.Obj.Symbols[i]
				if s.Kind != elfmod.SymFunc || s.Section != sec || s.Offset > inSec {
					continue
				}
				if s.Size > 0 && inSec >= s.Offset+s.Size {
					continue
				}
				if !found || s.Offset > bestOff || (s.Offset == bestOff && s.Name < name) {
					name, bestOff, found = s.Name, s.Offset, true
				}
			}
			return name, found
		}
		return "", false
	}
	return "", false
}

// Rerandomize performs one re-randomization cycle (paper §4.2):
//
//  1. pick a fresh random base for the movable part;
//  2. build new local GOTs — contents slid by the move delta, with a new
//     encryption key — on fresh physical frames (the old mapping must
//     keep seeing the old key, or pending calls would decrypt their
//     return addresses with the wrong key);
//  3. slide movable-local pointers stored in movable data;
//  4. map the movable part at the new base: all pages alias the existing
//     frames (zero-copy) except the local-GOT pages, which get the new
//     frames;
//  5. swap the immovable part's local GOT pages to fresh frames holding
//     the new movable addresses (same VAs — wrappers keep working);
//  6. retire the old address range through SMR; it is unmapped when the
//     last pending call drains.
//
// It returns the move delta.
func (m *Module) Rerandomize() (uint64, error) {
	if !m.Obj.Rerandomizable {
		return 0, fmt.Errorf("kernel: module %s is not re-randomizable", m.Name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	k := m.k

	k.mu.Lock()
	newBase, err := k.randomRegion(m.Movable.Size, k.moduleRangeLo, k.moduleRangeHi)
	k.mu.Unlock()
	if err != nil {
		return 0, err
	}
	oldBase := m.Movable.Base
	delta := newBase - oldBase

	newKey := uint64(k.Rand.Int63())<<1 | 1 // never zero

	// (2) New movable local GOT frames with slid contents.
	mov := &m.Movable
	var newLocalFrames []mm.FrameID
	if mov.GotLocal.pages() > 0 {
		newLocalFrames = k.AS.Phys().AllocN(mov.GotLocal.pages())
		for i := range mov.GotLocal.Slots {
			s := &mov.GotLocal.Slots[i]
			if i == m.keySlot && s.Sym == elfmod.KeySymbol {
				s.Val = newKey
			} else {
				s.Val += delta
			}
			writeFrameWord(k.AS.Phys(), newLocalFrames, uint64(i)*8, s.Val)
			m.GotEntriesMoved++
		}
	}

	// (3) Slide movable-local data pointers. The data frames are shared
	// between old and new mappings, so one in-place update serves both;
	// old pending readers observing a new-mapping pointer is safe because
	// both mappings are live until the old one drains.
	for _, off := range m.localPtrOffsets {
		va := oldBase + off
		v, err := k.AS.Read64Force(va)
		if err != nil {
			return 0, fmt.Errorf("kernel: %s: sliding local pointer at +%#x: %w", m.Name, off, err)
		}
		if err := k.AS.Write64Force(va, v+delta); err != nil {
			return 0, err
		}
	}

	// (4) Map the movable part at the new base, zero-copy except the
	// local GOT pages.
	for pg := 0; pg < mov.Pages; pg++ {
		frame := mov.Frames[pg]
		if pg >= mov.localGotLo && pg < mov.localGotHi {
			frame = newLocalFrames[pg-mov.localGotLo]
		}
		flags := mov.flagsForPage(pg)
		if err := k.AS.Map(newBase+uint64(pg)*mm.PageSize, frame, flags); err != nil {
			return 0, fmt.Errorf("kernel: %s: remap: %w", m.Name, err)
		}
		m.PagesRemapped++
	}

	// (5) Immovable local GOT: fresh frames with the new movable
	// addresses, mapped at the unchanged VAs so wrapper code (and the
	// kernel's pointers to it) is untouched.
	imm := &m.Immovable
	if imm.GotLocal != nil && imm.GotLocal.pages() > 0 {
		fresh := k.AS.Phys().AllocN(imm.GotLocal.pages())
		for i := range imm.GotLocal.Slots {
			s := &imm.GotLocal.Slots[i]
			s.Val += delta
			writeFrameWord(k.AS.Phys(), fresh, uint64(i)*8, s.Val)
			m.GotEntriesMoved++
		}
		for pg := 0; pg < len(fresh); pg++ {
			va := imm.GotLocal.Base&^uint64(mm.PageMask) + uint64(pg)*mm.PageSize
			old, err := k.AS.Unmap(va)
			if err != nil {
				return 0, err
			}
			if err := k.AS.Map(va, fresh[pg], 0); err != nil {
				return 0, err
			}
			// The old frames are unreachable the instant the VA flips;
			// free them directly.
			k.AS.Phys().Free(old)
		}
		imm.GotLocal.Frames = fresh
	}

	// Retarget module bookkeeping to the new mapping.
	oldLocalFrames := make([]mm.FrameID, 0, mov.localGotHi-mov.localGotLo)
	for pg := mov.localGotLo; pg < mov.localGotHi; pg++ {
		oldLocalFrames = append(oldLocalFrames, mov.Frames[pg])
		mov.Frames[pg] = newLocalFrames[pg-mov.localGotLo]
	}
	// Retarget pending deferred-work handlers and registered interrupt
	// vectors that point into the range being moved (§3.4: the
	// re-randomizer "will only need to modify the function handler
	// address").
	k.slideWorkqueue(oldBase, mov.Size, delta)
	k.slideISRs(oldBase, mov.Size, delta)

	mov.Base = newBase
	mov.GotLocal.Base += delta
	mov.GotFixed.Base += delta
	m.keyRotate(newKey)
	m.Rerandomizations++

	oldSize := mov.Size
	pages := mov.Pages
	// (6) Delayed unmap: the old range lives until pending calls drain.
	k.SMR.Retire(func() {
		_ = k.AS.UnmapRegion(oldBase, pages, false)
		for _, f := range oldLocalFrames {
			k.AS.Phys().Free(f)
		}
		k.mu.Lock()
		k.release(oldBase, oldSize)
		k.mu.Unlock()
	})
	return delta, nil
}

func (m *Module) keyRotate(newKey uint64) { m.curKey = newKey }

// flagsForPage returns the protection flags of page pg per the part's
// chunk layout.
func (p *Part) flagsForPage(pg int) mm.PageFlags {
	for _, c := range p.chunks {
		if pg >= c.pageLo && pg < c.pageHi {
			return c.flags
		}
	}
	return 0
}

// writeFrameWord writes a 64-bit little-endian word at byte offset off
// into a run of frames.
func writeFrameWord(phys *mm.PhysMem, frames []mm.FrameID, off uint64, val uint64) {
	fr := frames[off/mm.PageSize]
	b := phys.WritableFrame(fr)
	o := off % mm.PageSize
	for i := 0; i < 8; i++ {
		b[o+uint64(i)] = byte(val >> (8 * i))
	}
}

// Unload removes the module: unmaps both parts and withdraws its exports.
// The caller must ensure no pending calls reference it (tests only; the
// paper does not unload re-randomizable modules either).
func (m *Module) Unload() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := m.k
	k.mu.Lock()
	for name := range m.exports {
		delete(k.symbols, name)
	}
	delete(k.modules, m.Name)
	k.mu.Unlock()
	for _, p := range []*Part{&m.Movable, &m.Immovable} {
		if p.Pages == 0 {
			continue
		}
		if err := k.AS.UnmapRegion(p.Base, p.Pages, true); err != nil {
			return err
		}
		k.mu.Lock()
		k.release(p.Base, p.Size)
		k.mu.Unlock()
	}
	return nil
}
