package kernel

import (
	"strings"
	"testing"

	"adelie/internal/elfmod"
	"adelie/internal/isa"
	"adelie/internal/kcc"
	"adelie/internal/mm"
)

// TestFig4AblationKeepsSemantics loads the same module with patching
// disabled and verifies identical behaviour with larger tables.
func TestFig4AblationKeepsSemantics(t *testing.T) {
	run := func(disabled bool) (uint64, int) {
		k, err := New(Config{NumCPUs: 2, Seed: 42, KASLR: KASLRFull64, DisableFig4Patching: disabled})
		if err != nil {
			t.Fatal(err)
		}
		obj := mustCompile(t, simpleModule("m"), kcc.Options{Model: kcc.ModelPIC, Retpoline: true})
		mod, err := k.Load(obj)
		if err != nil {
			t.Fatal(err)
		}
		va, _ := k.Symbol("compute")
		got, err := k.CPU(0).Call(va)
		if err != nil {
			t.Fatal(err)
		}
		return got, len(mod.Movable.GotFixed.Slots)
	}
	vPatched, gotPatched := run(false)
	vUnpatched, gotUnpatched := run(true)
	if vPatched != vUnpatched {
		t.Fatalf("semantics differ: %d vs %d", vPatched, vUnpatched)
	}
	if gotUnpatched <= gotPatched {
		t.Fatalf("ablation should inflate the GOT: %d vs %d", gotPatched, gotUnpatched)
	}
}

// TestUnpatchedCallMExecutes drives the CALLM (GOT-indirect call) path
// that the Fig.-4 optimization normally removes for local calls.
func TestUnpatchedCallMExecutes(t *testing.T) {
	k, err := New(Config{NumCPUs: 2, Seed: 7, KASLR: KASLRFull64, DisableFig4Patching: true})
	if err != nil {
		t.Fatal(err)
	}
	// Non-retpoline PIC: local calls stay as call *foo@GOTPCREL(%rip).
	obj := mustCompile(t, simpleModule("m"), kcc.Options{Model: kcc.ModelPIC})
	if _, err := k.Load(obj); err != nil {
		t.Fatal(err)
	}
	va, _ := k.Symbol("compute")
	got, err := k.CPU(0).Call(va)
	if err != nil {
		t.Fatal(err)
	}
	if got != 43 {
		t.Fatalf("compute through unpatched GOT calls = %d", got)
	}
}

// TestWrapperPreservesSixArgs checks the §3.4 claim embodied in wrappers:
// up to six register arguments pass through the wrapper untouched.
func TestWrapperPreservesSixArgs(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	m := &kcc.Module{Name: "args"}
	m.AddFunc("sum6.real", false,
		kcc.MovReg(isa.RAX, isa.RDI),
		kcc.Arith(kcc.OpAdd, isa.RAX, isa.RSI),
		kcc.Arith(kcc.OpAdd, isa.RAX, isa.RDX),
		kcc.Arith(kcc.OpAdd, isa.RAX, isa.RCX),
		kcc.Arith(kcc.OpAdd, isa.RAX, isa.R8),
		kcc.Arith(kcc.OpAdd, isa.RAX, isa.R9),
		kcc.Ret(),
	)
	w := m.AddFunc("sum6", true,
		kcc.Push(isa.RBX),
		kcc.Call("mr_start"),
		kcc.Call("sum6.real"),
		kcc.MovReg(isa.RBX, isa.RAX),
		kcc.Call("mr_finish"),
		kcc.MovReg(isa.RAX, isa.RBX),
		kcc.Pop(isa.RBX),
		kcc.Ret(),
	)
	w.InFixedText = true
	w.NoInstrument = true
	w.Wrapper = true
	obj := mustCompile(t, m, kcc.Options{Model: kcc.ModelPIC, Retpoline: true, Rerandomizable: true})
	if _, err := k.Load(obj); err != nil {
		t.Fatal(err)
	}
	va, _ := k.Symbol("sum6")
	got, err := k.CPU(0).Call(va, 1, 2, 3, 4, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got != 21 {
		t.Fatalf("sum6 = %d, want 21", got)
	}
}

// TestCrossPartRel32Rejected pins the loader's refusal to resolve a rel32
// reference between the movable and immovable parts — their distance is
// unbounded by design.
func TestCrossPartRel32Rejected(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	obj := elfmod.New("bad")
	obj.PIC = true
	obj.Rerandomizable = true
	text := obj.AddSection(elfmod.SecText, make([]byte, 16))
	fixed := obj.AddSection(elfmod.SecFixedText, []byte{0x90, 0xC3})
	wrap, err := obj.AddSymbol(elfmod.Symbol{Name: "w", Section: fixed, Bind: elfmod.BindGlobal, Kind: elfmod.SymFunc, Wrapper: true})
	if err != nil {
		t.Fatal(err)
	}
	obj.AddReloc(elfmod.Reloc{Section: text, Offset: 1, Type: elfmod.RelPC32, Symbol: wrap, Addend: -4})
	if _, err := k.Load(obj); err == nil || !strings.Contains(err.Error(), "crosses movable/immovable") {
		t.Fatalf("got %v, want cross-part rejection", err)
	}
}

// TestLoadRollbackOnFailure verifies a failed load leaves no mappings or
// claims behind.
func TestLoadRollbackOnFailure(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	mapped := k.AS.MappedPages()
	m := &kcc.Module{Name: "fail"}
	m.AddFunc("f", true, kcc.Call("missing_symbol"), kcc.Ret())
	obj := mustCompile(t, m, kcc.Options{Model: kcc.ModelPIC})
	if _, err := k.Load(obj); err == nil {
		t.Fatal("load should fail")
	}
	if got := k.AS.MappedPages(); got != mapped {
		t.Fatalf("pages leaked by failed load: %d → %d", mapped, got)
	}
	// The name is free for a corrected retry.
	good := &kcc.Module{Name: "fail"}
	good.AddFunc("f2", true, kcc.Ret())
	if _, err := k.Load(mustCompile(t, good, kcc.Options{Model: kcc.ModelPIC})); err != nil {
		t.Fatal(err)
	}
}

// TestRerandExhaustionIsGraceful: under vanilla KASLR the window is 2 GB;
// loading re-randomizable modules there is fine but they must still honor
// the window on every move.
func TestRerandStaysInsideWindow(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	obj, err := kcc.Compile(rerandModule(), kcc.Options{Model: kcc.ModelPIC, Retpoline: true, Rerandomizable: true})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := k.Load(obj)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := k.ModuleWindow()
	for i := 0; i < 10; i++ {
		if _, err := mod.Rerandomize(); err != nil {
			t.Fatal(err)
		}
		if b := mod.Base(); b < lo || b >= hi {
			t.Fatalf("move %d landed at %#x outside [%#x,%#x)", i, b, lo, hi)
		}
		k.SMR.Flush()
	}
}

// TestGOTPageIsSeparateFromData ensures GOTs land on their own pages so
// write-protection does not cover module data.
func TestGOTPageIsSeparateFromData(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	obj := mustCompile(t, simpleModule("m"), kcc.Options{Model: kcc.ModelPIC, Retpoline: true})
	mod, err := k.Load(obj)
	if err != nil {
		t.Fatal(err)
	}
	gotPage := mod.Movable.GotFixed.Base &^ uint64(mm.PageMask)
	sym, _ := obj.Lookup("counter")
	dataVA := mod.Movable.Base + mod.Movable.secOff[sym.Section] + sym.Offset
	if dataVA&^uint64(mm.PageMask) == gotPage {
		t.Fatal("GOT shares a page with .data")
	}
	// Data stays writable even though the GOT page is protected.
	if err := k.AS.Write64(dataVA, 9); err != nil {
		t.Fatal(err)
	}
}

// TestExportCollisionAcrossModulesRejected: the kernel symbol table is
// global, as in Linux.
func TestExportCollisionAcrossModulesRejected(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	a := &kcc.Module{Name: "a"}
	a.AddFunc("shared_name", true, kcc.Ret())
	if _, err := k.Load(mustCompile(t, a, kcc.Options{Model: kcc.ModelPIC})); err != nil {
		t.Fatal(err)
	}
	b := &kcc.Module{Name: "b"}
	b.AddFunc("shared_name", true, kcc.Ret())
	if _, err := k.Load(mustCompile(t, b, kcc.Options{Model: kcc.ModelPIC})); err == nil {
		t.Fatal("duplicate export across modules accepted")
	}
}
