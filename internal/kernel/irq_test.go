package kernel

import (
	"testing"

	"adelie/internal/isa"
	"adelie/internal/kcc"
)

// irqModule registers its own movable handler as an ISR via request_irq:
//
//	irq_setup(line)    — request_irq(line, &handler.isr)
//	handler.isr(line)  — irq_hits += line + 1
func irqModule() *kcc.Module {
	m := &kcc.Module{Name: "irqm"}
	m.AddFunc("handler.isr", false,
		kcc.GlobalLoad(isa.RAX, "irq_hits"),
		kcc.Arith(kcc.OpAdd, isa.RAX, isa.RDI),
		kcc.ArithImm(kcc.OpAdd, isa.RAX, 1),
		kcc.GlobalStore("irq_hits", isa.RAX),
		kcc.Ret(),
	)
	m.AddFunc("irq_setup", true,
		kcc.GlobalAddr(isa.RSI, "handler.isr"), // movable address!
		kcc.Call("request_irq"),
		kcc.Ret(),
	)
	m.AddFunc("irq_read", true,
		kcc.GlobalLoad(isa.RAX, "irq_hits"),
		kcc.Ret(),
	)
	m.AddGlobal(kcc.Global{Name: "irq_hits", Size: 8, Init: make([]byte, 8)})
	return m
}

func loadIRQ(t *testing.T, k *Kernel) *Module {
	t.Helper()
	// Hand-wrapped like loadWQ: exported entries get immovable wrappers.
	m := irqModule()
	for _, name := range []string{"irq_setup", "irq_read"} {
		f := m.Func(name)
		f.Name = name + ".real"
		f.Export = false
		w := m.AddFunc(name, true,
			kcc.Push(isa.RBX),
			kcc.Call("mr_start"),
			kcc.Call(name+".real"),
			kcc.MovReg(isa.RBX, isa.RAX),
			kcc.Call("mr_finish"),
			kcc.MovReg(isa.RAX, isa.RBX),
			kcc.Pop(isa.RBX),
			kcc.Ret(),
		)
		w.InFixedText = true
		w.NoInstrument = true
		w.Wrapper = true
	}
	obj := mustCompile(t, m, kcc.Options{Model: kcc.ModelPIC, Retpoline: true, Rerandomizable: true})
	mod, err := k.Load(obj)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func TestIRQRegisterAndDispatch(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	loadIRQ(t, k)
	setup, _ := k.Symbol("irq_setup")
	read, _ := k.Symbol("irq_read")
	c := k.CPU(0)

	if _, err := c.Call(setup, 3); err != nil {
		t.Fatal(err)
	}
	if lines := k.ISRLines(); len(lines) != 1 || lines[0] != 3 {
		t.Fatalf("ISR lines = %v, want [3]", lines)
	}
	handled, err := k.DispatchIRQ(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !handled {
		t.Fatal("registered line reported spurious")
	}
	if v, _ := c.Call(read); v != 4 { // line+1
		t.Fatalf("irq_hits = %d, want 4", v)
	}
}

// TestDispatchSpuriousIRQ: an unregistered line is reported spurious,
// no fault.
func TestDispatchSpuriousIRQ(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	handled, err := k.DispatchIRQ(k.CPU(0), 9)
	if err != nil || handled {
		t.Fatalf("spurious dispatch = (%v, %v), want (false, nil)", handled, err)
	}
}

// TestISRSurvivesRerandomization is the interrupt counterpart of the
// workqueue §3.4 corner case: the vector points into the movable part,
// the module moves several times, the old range drains, and dispatch
// still lands — because the re-randomizer slid the registered vector.
func TestISRSurvivesRerandomization(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	mod := loadIRQ(t, k)
	setup, _ := k.Symbol("irq_setup")
	read, _ := k.Symbol("irq_read")
	c := k.CPU(0)

	if _, err := c.Call(setup, 0); err != nil {
		t.Fatal(err)
	}
	oldBase := mod.Base()
	for i := 0; i < 3; i++ {
		if _, err := mod.Rerandomize(); err != nil {
			t.Fatal(err)
		}
	}
	k.SMR.Flush()
	// The old mapping is gone; an unslid vector would fault here.
	if _, _, ok := k.AS.Lookup(oldBase); ok {
		t.Fatal("old range still mapped")
	}
	handled, err := k.DispatchIRQ(c, 0)
	if err != nil {
		t.Fatalf("ISR after 3 moves: %v", err)
	}
	if !handled {
		t.Fatal("vector lost across moves")
	}
	if v, _ := c.Call(read); v != 1 {
		t.Fatalf("irq_hits = %d, want 1", v)
	}
}

// TestDispatchIRQBracketsSMR: each dispatch closes its own critical
// section — counters balance across the dispatch.
func TestDispatchIRQBracketsSMR(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	loadIRQ(t, k)
	setup, _ := k.Symbol("irq_setup")
	c := k.CPU(0)
	if _, err := c.Call(setup, 1); err != nil {
		t.Fatal(err)
	}
	before := k.SMR.Stats()
	if _, err := k.DispatchIRQ(c, 1); err != nil {
		t.Fatal(err)
	}
	after := k.SMR.Stats()
	if after.Delta() != before.Delta() {
		t.Fatalf("SMR delta changed across dispatch: %d → %d", before.Delta(), after.Delta())
	}
}
