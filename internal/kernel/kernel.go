// Package kernel simulates the Linux kernel environment Adelie patches:
// the kernel image with its exported symbol table, the module loader with
// Adelie's PIC and re-randomization support (paper §4.1–4.2), a kmalloc
// heap, per-CPU kernel stacks, and KASLR placement policies.
//
// The package corresponds to the paper's in-kernel changes: the ~727 LoC
// of PIC module support plus the ~2815 LoC common re-randomization part.
// Policy (when to re-randomize, period selection, the randomizer kthread)
// lives in internal/rerand on top of the mechanisms exposed here.
package kernel

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"adelie/internal/cpu"
	"adelie/internal/mm"
	"adelie/internal/smr"
)

// KASLRMode selects the module placement policy.
type KASLRMode int

const (
	// KASLRVanilla places modules in a 2 GB window near the kernel image,
	// 4 KB aligned — the stock Linux policy whose ~19 bits of entropy the
	// paper's §6 calls brute-forceable.
	KASLRVanilla KASLRMode = iota
	// KASLRFull64 places modules anywhere in the kernel half of the
	// 57-bit space — Adelie's PIC-enabled policy (~44 bits of entropy at
	// page alignment).
	KASLRFull64
)

func (m KASLRMode) String() string {
	if m == KASLRVanilla {
		return "vanilla"
	}
	return "full64"
}

// Config configures a simulated kernel.
type Config struct {
	NumCPUs int   // number of vCPUs (default 20, matching the paper's testbed)
	Seed    int64 // RNG seed; all placement decisions derive from it
	KASLR   KASLRMode
	// Reclaimer is the SMR scheme for delayed unmapping; nil selects
	// Hyaline with NumCPUs+1 slots (one per CPU plus the re-randomizer).
	Reclaimer smr.Reclaimer
	// DisableFig4Patching turns off the loader's run-time patching of
	// local GOT/PLT accesses (paper Fig. 4). Ablation only: every local
	// symbol then keeps a GOT slot (and PLT stub under retpoline),
	// inflating the tables the paper's optimizations shrink and exposing
	// more absolute addresses to leakage.
	DisableFig4Patching bool
}

// MaxCPUs bounds the vCPU count of a machine. Drivers carry per-CPU
// data arrays sized for this many CPUs (drivers.MaxGuestCPUs mirrors
// it), so a larger machine would make guest per-CPU stores run past
// their arrays; New rejects it up front.
const MaxCPUs = 64

// Fixed layout constants for the simulated kernel half.
const (
	kernelImageSpan = 1 << 30 // kernel image lands in the first GB of the half
	kernelTextPages = 16      // native entry points live here
	vanillaModSpan  = 1 << 31 // 2 GB module window in vanilla mode
	heapSpan        = 1 << 32 // kmalloc region
	stackSpan       = 1 << 30 // kernel stacks region

	// KernelStackPages is the size of each kernel stack (16 KB, like
	// Linux's THREAD_SIZE on x86-64).
	KernelStackPages = 4

	nativeSlot = 16 // bytes reserved per native entry point
)

// Kernel is the simulated kernel.
type Kernel struct {
	Cfg  Config
	AS   *mm.AddressSpace
	Rand *rand.Rand
	SMR  smr.Reclaimer

	mu       sync.Mutex
	symbols  map[string]uint64      // exported symbol table (kernel + modules)
	natives  map[uint64]*cpu.Native // shared dispatch table
	textBase uint64                 // kernel image base (randomized)
	textNext uint64                 // next free native slot

	heapBase   uint64
	heapNext   uint64
	heapFree   map[uint64][]uint64 // size class → free VAs
	heapSizes  map[uint64]uint64   // allocation VA → rounded size
	heapMapped uint64              // end of mapped heap pages

	stackBase uint64
	stackNext uint64

	// regions tracks every allocated VA interval for collision-free
	// randomized placement.
	regions []vaRegion

	modules   map[string]*Module
	cpus      []*cpu.CPU
	workqueue []workItem
	isrs      map[int]isrEntry // IRQ line → {handler VA, affinity vCPU} (see irq.go)

	// irqRouter mirrors ISR affinity into the bus's vector table. Machine
	// wiring, installed by sim and re-installed on fork — never copied.
	irqRouter func(line, vcpu int)

	log []string // printk buffer

	moduleRangeLo, moduleRangeHi uint64 // placement window for modules

	// randSrc is the counting source under Rand; Fork replays its call
	// count against a fresh source so the clone's random stream continues
	// bit-exactly where the template's stopped.
	randSrc *countingSource
}

// countingSource wraps the seeded math/rand source and counts every
// draw. Both Int63 and Uint64 advance the underlying generator state by
// exactly one step, so "number of calls" fully determines the stream
// position — which is all a fork needs to clone mid-stream RNG state.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (s *countingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.n = 0
}

// newCountingSource seeds a fresh source and fast-forwards it by skip
// draws.
func newCountingSource(seed int64, skip uint64) *countingSource {
	s := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	for i := uint64(0); i < skip; i++ {
		s.src.Uint64()
	}
	s.n = skip
	return s
}

type vaRegion struct{ lo, hi uint64 }

// New boots a simulated kernel.
func New(cfg Config) (*Kernel, error) {
	if cfg.NumCPUs <= 0 {
		cfg.NumCPUs = 20
	}
	if cfg.NumCPUs > MaxCPUs {
		return nil, fmt.Errorf("kernel: NumCPUs %d exceeds MaxCPUs %d (per-CPU driver arrays are sized for MaxCPUs)", cfg.NumCPUs, MaxCPUs)
	}
	src := newCountingSource(cfg.Seed, 0)
	k := &Kernel{
		Cfg:       cfg,
		AS:        mm.NewAddressSpace(mm.NewPhysMem()),
		Rand:      rand.New(src),
		randSrc:   src,
		symbols:   make(map[string]uint64),
		natives:   make(map[uint64]*cpu.Native),
		heapFree:  make(map[uint64][]uint64),
		heapSizes: make(map[uint64]uint64),
		modules:   make(map[string]*Module),
	}
	if cfg.Reclaimer != nil {
		k.SMR = cfg.Reclaimer
	} else {
		k.SMR = smr.NewHyaline(cfg.NumCPUs + 1)
	}

	// KASLR for the kernel image itself: a page-aligned base inside the
	// first GB of the kernel half (the PIE patch's job, paper §2.3; we
	// treat it as already applied).
	off := uint64(k.Rand.Int63n(kernelImageSpan-kernelTextPages*mm.PageSize)) &^ mm.PageMask
	k.textBase = mm.KernelBase + off
	if _, err := k.AS.MapRegion(k.textBase, kernelTextPages, mm.FlagExec); err != nil {
		return nil, fmt.Errorf("kernel: mapping image: %w", err)
	}
	k.claim(k.textBase, kernelTextPages*mm.PageSize)
	k.textNext = k.textBase

	// Heap and stack regions sit at fixed offsets above the image span.
	k.heapBase = mm.KernelBase + 2*kernelImageSpan
	k.heapNext = k.heapBase
	k.heapMapped = k.heapBase
	k.claim(k.heapBase, heapSpan)
	k.stackBase = k.heapBase + heapSpan
	k.stackNext = k.stackBase
	k.claim(k.stackBase, stackSpan)

	// Module placement window.
	switch cfg.KASLR {
	case KASLRVanilla:
		// Within ±2 GB of the image so rel32 calls reach the kernel.
		k.moduleRangeLo = k.textBase + kernelTextPages*mm.PageSize
		k.moduleRangeHi = k.textBase + vanillaModSpan
	default:
		k.moduleRangeLo = mm.KernelBase + 2*kernelImageSpan + heapSpan + stackSpan
		k.moduleRangeHi = mm.MaxVA
	}

	k.registerCoreNatives()

	for i := 0; i < cfg.NumCPUs; i++ {
		c := cpu.New(i, k.AS)
		c.SetNatives(k.natives)
		// All natives — including ones defined after boot — live inside
		// the kernel text region, so module RIPs skip the dispatch probe.
		c.SetNativeRange(k.textBase, k.textBase+kernelTextPages*mm.PageSize)
		stack, err := k.AllocStack()
		if err != nil {
			return nil, err
		}
		c.Regs[4] = stack // RSP
		k.cpus = append(k.cpus, c)
	}
	return k, nil
}

// claim records a VA interval as occupied.
func (k *Kernel) claim(base, size uint64) {
	k.regions = append(k.regions, vaRegion{lo: base, hi: base + size})
}

// release removes a claimed interval (module unload / re-randomization).
func (k *Kernel) release(base, size uint64) {
	for i, r := range k.regions {
		if r.lo == base && r.hi == base+size {
			k.regions = append(k.regions[:i], k.regions[i+1:]...)
			return
		}
	}
}

func (k *Kernel) overlaps(lo, hi uint64) bool {
	for _, r := range k.regions {
		if lo < r.hi && r.lo < hi {
			return true
		}
	}
	return false
}

// randomRegion picks a page-aligned, collision-free base for size bytes
// within [lo, hi). This is the KASLR placement primitive; the window
// passed in determines the entropy (§6).
func (k *Kernel) randomRegion(size uint64, lo, hi uint64) (uint64, error) {
	size = (size + mm.PageMask) &^ mm.PageMask
	if hi <= lo+size {
		return 0, fmt.Errorf("kernel: placement window [%#x,%#x) too small for %d bytes", lo, hi, size)
	}
	span := hi - lo - size
	for attempt := 0; attempt < 256; attempt++ {
		base := lo + (uint64(k.Rand.Int63())%span)&^mm.PageMask
		if !k.overlaps(base, base+size) {
			k.claim(base, size)
			return base, nil
		}
	}
	return 0, fmt.Errorf("kernel: no free region of %d bytes in [%#x,%#x)", size, lo, hi)
}

// DefineNative installs a native kernel function under the given exported
// name and returns its address. Cost is the cycle charge per call.
func (k *Kernel) DefineNative(name string, cost uint64, fn func(c *cpu.CPU) error) uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.defineNativeLocked(name, cost, fn)
}

func (k *Kernel) defineNativeLocked(name string, cost uint64, fn func(c *cpu.CPU) error) uint64 {
	if _, dup := k.symbols[name]; dup {
		panic(fmt.Sprintf("kernel: duplicate symbol %q", name))
	}
	va := k.textNext
	if va+nativeSlot > k.textBase+kernelTextPages*mm.PageSize {
		panic("kernel: native text region exhausted")
	}
	k.textNext += nativeSlot
	k.natives[va] = &cpu.Native{Name: name, Cost: cost, Fn: fn}
	k.symbols[name] = va
	return va
}

// Symbol resolves an exported symbol.
func (k *Kernel) Symbol(name string) (uint64, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	v, ok := k.symbols[name]
	return v, ok
}

// ExportSymbol publishes a symbol (module exports during load).
func (k *Kernel) ExportSymbol(name string, va uint64) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, dup := k.symbols[name]; dup {
		return fmt.Errorf("kernel: duplicate exported symbol %q", name)
	}
	k.symbols[name] = va
	return nil
}

// Symbols returns the exported symbol names, sorted.
func (k *Kernel) Symbols() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]string, 0, len(k.symbols))
	for n := range k.symbols {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CPU returns vCPU i.
func (k *Kernel) CPU(i int) *cpu.CPU { return k.cpus[i] }

// NumCPUs returns the configured CPU count.
func (k *Kernel) NumCPUs() int { return len(k.cpus) }

// Module returns a loaded module by name.
func (k *Kernel) Module(name string) (*Module, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	m, ok := k.modules[name]
	return m, ok
}

// Modules returns all loaded modules sorted by name.
func (k *Kernel) Modules() []*Module {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*Module, 0, len(k.modules))
	for _, m := range k.modules {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Kmalloc allocates size bytes from the kernel heap and returns the VA.
// Allocations are rounded to 64-byte classes with simple per-class free
// lists; heap pages are mapped on demand.
func (k *Kernel) Kmalloc(size uint64) (uint64, error) {
	if size == 0 {
		size = 1
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	class := (size + 63) &^ 63
	if list := k.heapFree[class]; len(list) > 0 {
		va := list[len(list)-1]
		k.heapFree[class] = list[:len(list)-1]
		k.heapSizes[va] = class
		return va, nil
	}
	va := k.heapNext
	end := va + class
	if end > k.heapBase+heapSpan {
		return 0, fmt.Errorf("kernel: kmalloc: heap exhausted")
	}
	// Map any new pages the allocation touches.
	for k.heapMapped < end {
		if _, err := k.AS.MapRegion(k.heapMapped, 1, mm.FlagWrite); err != nil {
			return 0, err
		}
		k.heapMapped += mm.PageSize
	}
	k.heapNext = end
	k.heapSizes[va] = class
	return va, nil
}

// Kfree releases a kmalloc allocation back to its size class.
func (k *Kernel) Kfree(va uint64) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	class, ok := k.heapSizes[va]
	if !ok {
		return fmt.Errorf("kernel: kfree of unknown address %#x", va)
	}
	delete(k.heapSizes, va)
	k.heapFree[class] = append(k.heapFree[class], va)
	return nil
}

// AllocStack maps a fresh kernel stack (with an unmapped guard page below)
// and returns its top-of-stack VA.
func (k *Kernel) AllocStack() (uint64, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	base := k.stackNext + mm.PageSize // skip guard page
	if base+KernelStackPages*mm.PageSize > k.stackBase+stackSpan {
		return 0, fmt.Errorf("kernel: stack region exhausted")
	}
	k.stackNext = base + KernelStackPages*mm.PageSize
	if _, err := k.AS.MapRegion(base, KernelStackPages, mm.FlagWrite); err != nil {
		return 0, err
	}
	return base + KernelStackPages*mm.PageSize, nil
}

// FreeStack unmaps a stack previously returned by AllocStack.
func (k *Kernel) FreeStack(top uint64) error {
	base := top - KernelStackPages*mm.PageSize
	return k.AS.UnmapRegion(base, KernelStackPages, true)
}

// Printk appends a line to the kernel log.
func (k *Kernel) Printk(s string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.log = append(k.log, s)
}

// Dmesg returns the kernel log.
func (k *Kernel) Dmesg() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	return append([]string(nil), k.log...)
}

// KernelTextBase returns the randomized base of the kernel image.
func (k *Kernel) KernelTextBase() uint64 { return k.textBase }

// ModuleWindow returns the placement window used for modules; its width
// determines the KASLR entropy available to attacks (§6).
func (k *Kernel) ModuleWindow() (lo, hi uint64) { return k.moduleRangeLo, k.moduleRangeHi }

// readCString reads a NUL-terminated string (capped) from guest memory.
func readCString(as *mm.AddressSpace, va uint64, max int) string {
	var out []byte
	for i := 0; i < max; i++ {
		b, err := as.ReadBytes(va+uint64(i), 1)
		if err != nil || b[0] == 0 {
			break
		}
		out = append(out, b[0])
	}
	return string(out)
}

// nativeDef pairs a native's identity with its implementation; the core
// API is expressed as a def list so a forked kernel can re-create the
// closures bound to itself at the symbol addresses the template already
// assigned (see rebindCoreNatives).
type nativeDef struct {
	name string
	cost uint64
	fn   func(c *cpu.CPU) error
}

// coreNativeDefs builds the kernel API every module may import, with
// every closure capturing this kernel. Costs are nominal cycle charges
// standing in for the real routines' work.
func (k *Kernel) coreNativeDefs() []nativeDef {
	return []nativeDef{
		{"printk", 150, func(c *cpu.CPU) error {
			k.Printk(readCString(k.AS, c.Regs[7], 256)) // RDI
			c.Regs[0] = 0
			return nil
		}},
		{"kmalloc", 120, func(c *cpu.CPU) error {
			va, err := k.Kmalloc(c.Regs[7])
			if err != nil {
				return err
			}
			c.Regs[0] = va
			return nil
		}},
		{"kfree", 90, func(c *cpu.CPU) error {
			return k.Kfree(c.Regs[7])
		}},
		{"memset64", 40, func(c *cpu.CPU) error {
			// memset64(dst, val, nwords)
			dst, val, n := c.Regs[7], c.Regs[6], c.Regs[2]
			for i := uint64(0); i < n; i++ {
				if err := k.AS.Write64(dst+8*i, val); err != nil {
					return err
				}
			}
			c.Cycles += n / 4
			return nil
		}},
		{"memcpy64", 40, func(c *cpu.CPU) error {
			// memcpy64(dst, src, nwords)
			dst, src, n := c.Regs[7], c.Regs[6], c.Regs[2]
			for i := uint64(0); i < n; i++ {
				v, err := k.AS.Read64(src + 8*i)
				if err != nil {
					return err
				}
				if err := k.AS.Write64(dst+8*i, v); err != nil {
					return err
				}
			}
			c.Cycles += n / 2
			return nil
		}},
		// cond_resched is the canonical cheap kernel helper drivers call on
		// hot paths; under retpoline+PIC it is reached through a PLT stub,
		// which is exactly where Fig. 5b's "slight performance hit of the
		// PIC code" comes from.
		{"cond_resched", 10, func(c *cpu.CPU) error {
			return nil
		}},
		// smp_processor_id returns the executing vCPU's index. Drivers use it
		// to address per-CPU state (counters, per-CPU device queue slots) so
		// their data paths are SMP-correct when the engine runs operations on
		// several vCPUs concurrently — the same this_cpu_* discipline real
		// Linux drivers follow.
		{"smp_processor_id", 5, func(c *cpu.CPU) error {
			c.Regs[0] = uint64(c.ID) // RAX
			return nil
		}},
		// queue_work(fn, arg) defers fn(arg) to workqueue context (§3.4).
		{"queue_work", 80, func(c *cpu.CPU) error {
			k.QueueWork(c.Regs[7], c.Regs[6]) // RDI, RSI
			c.Regs[0] = 0
			return nil
		}},
		// request_irq(line, handler) registers an interrupt service routine,
		// affine to vCPU 0 (the legacy target) until irq_set_affinity moves
		// it. Like queue_work, the handler address may point into the
		// module's movable part; the re-randomizer slides registered vectors
		// on moves.
		{"request_irq", 150, func(c *cpu.CPU) error {
			k.RegisterISR(int(c.Regs[7]), c.Regs[6], 0) // RDI, RSI
			c.Regs[0] = 0
			return nil
		}},
		// mr_start / mr_finish bracket externally-initiated module calls
		// (paper §3.4). The slot is the executing CPU.
		{"mr_start", 30, func(c *cpu.CPU) error {
			k.SMR.Enter(c.ID)
			return nil
		}},
		{"mr_finish", 30, func(c *cpu.CPU) error {
			k.SMR.Leave(c.ID)
			return nil
		}},
		// irq_set_affinity(line, cpu) points an interrupt vector at a target
		// vCPU — the guest half of MSI-X routing. Multi-queue drivers call
		// it per queue after request_irq so each queue's ISR runs on its own
		// lane. Appended after every pre-existing native: natives allocate
		// text addresses sequentially, so adding at the end keeps all prior
		// symbol VAs (and with them every existing figure) bit-identical.
		{"irq_set_affinity", 100, func(c *cpu.CPU) error {
			k.SetISRAffinity(int(c.Regs[7]), int(c.Regs[6])) // RDI, RSI
			c.Regs[0] = 0
			return nil
		}},
	}
}

// registerCoreNatives installs the kernel API every module may import.
func (k *Kernel) registerCoreNatives() {
	k.mu.Lock()
	defer k.mu.Unlock()
	for _, d := range k.coreNativeDefs() {
		k.defineNativeLocked(d.name, d.cost, d.fn)
	}
}

// rebindCoreNatives re-creates the core natives as closures over this
// (forked) kernel at the symbol addresses the template assigned. Caller
// holds k.mu; k.symbols must already carry the template's assignments.
func (k *Kernel) rebindCoreNatives() {
	for _, d := range k.coreNativeDefs() {
		va, ok := k.symbols[d.name]
		if !ok {
			panic(fmt.Sprintf("kernel: fork: core native %q missing from symbol table", d.name))
		}
		k.natives[va] = &cpu.Native{Name: d.name, Cost: d.cost, Fn: d.fn}
	}
}

// RebindNative replaces the implementation behind an already-defined
// native symbol, keeping its address and cost semantics. Forked machines
// use it to point natives whose closures capture per-machine state (the
// re-randomizer's stack-swap helpers) at the clone's state instead of
// the template's.
func (k *Kernel) RebindNative(name string, cost uint64, fn func(c *cpu.CPU) error) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	va, ok := k.symbols[name]
	if !ok {
		return fmt.Errorf("kernel: RebindNative: unknown symbol %q", name)
	}
	if _, isNative := k.natives[va]; !isNative {
		return fmt.Errorf("kernel: RebindNative: symbol %q is not a native", name)
	}
	k.natives[va] = &cpu.Native{Name: name, Cost: cost, Fn: fn}
	return nil
}
