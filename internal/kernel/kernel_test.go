package kernel

import (
	"errors"
	"strings"
	"testing"

	"adelie/internal/elfmod"
	"adelie/internal/isa"
	"adelie/internal/kcc"
	"adelie/internal/mm"
)

func newKernel(t *testing.T, mode KASLRMode) *Kernel {
	t.Helper()
	k, err := New(Config{NumCPUs: 4, Seed: 42, KASLR: mode})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// simpleModule builds a module with local calls, a GOT data access, a
// kernel import and a data table with function pointers.
func simpleModule(name string) *kcc.Module {
	m := &kcc.Module{Name: name}
	m.AddFunc("helper", false,
		kcc.MovImm(isa.RAX, 21),
		kcc.Arith(kcc.OpAdd, isa.RAX, isa.RAX), // 42
		kcc.Ret(),
	)
	m.AddFunc("compute", true,
		kcc.Call("helper"),
		kcc.GlobalLoad(isa.RBX, "counter"),
		kcc.ArithImm(kcc.OpAdd, isa.RBX, 1),
		kcc.GlobalStore("counter", isa.RBX),
		kcc.Arith(kcc.OpAdd, isa.RAX, isa.RBX),
		kcc.Ret(),
	)
	m.AddFunc("logline", true,
		kcc.GlobalAddr(isa.RDI, "banner"),
		kcc.Call("printk"),
		kcc.MovImm(isa.RAX, 0),
		kcc.Ret(),
	)
	m.AddGlobal(kcc.Global{Name: "counter", Size: 8, Init: make([]byte, 8)})
	m.AddGlobal(kcc.Global{Name: "banner", Size: 8, Init: []byte("hello.\x00\x00"), ReadOnly: true})
	return m
}

func mustCompile(t *testing.T, m *kcc.Module, opts kcc.Options) *elfmod.Object {
	t.Helper()
	obj, err := kcc.Compile(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

func TestLoadAndCallPICModule(t *testing.T) {
	for _, retpoline := range []bool{false, true} {
		k := newKernel(t, KASLRFull64)
		obj := mustCompile(t, simpleModule("m"), kcc.Options{Model: kcc.ModelPIC, Retpoline: retpoline})
		mod, err := k.Load(obj)
		if err != nil {
			t.Fatal(err)
		}
		va, ok := k.Symbol("compute")
		if !ok {
			t.Fatal("compute not exported")
		}
		c := k.CPU(0)
		for want := uint64(43); want < 46; want++ { // counter increments per call
			got, err := c.Call(va)
			if err != nil {
				t.Fatalf("retpoline=%v: %v", retpoline, err)
			}
			if got != want {
				t.Fatalf("retpoline=%v: compute = %d, want %d", retpoline, got, want)
			}
		}
		_ = mod
	}
}

func TestModuleCallsKernelNatives(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	obj := mustCompile(t, simpleModule("m"), kcc.Options{Model: kcc.ModelPIC, Retpoline: true})
	if _, err := k.Load(obj); err != nil {
		t.Fatal(err)
	}
	va, _ := k.Symbol("logline")
	if _, err := k.CPU(0).Call(va); err != nil {
		t.Fatal(err)
	}
	log := k.Dmesg()
	if len(log) != 1 || log[0] != "hello." {
		t.Fatalf("dmesg = %q, want [hello.]", log)
	}
}

func TestAbsoluteModelUnderVanillaKASLR(t *testing.T) {
	k := newKernel(t, KASLRVanilla)
	obj := mustCompile(t, simpleModule("m"), kcc.Options{Model: kcc.ModelAbsolute})
	mod, err := k.Load(obj)
	if err != nil {
		t.Fatal(err)
	}
	// Placement must be within the vanilla 2 GB window of the kernel.
	lo, hi := k.ModuleWindow()
	if mod.Movable.Base < lo || mod.Movable.Base >= hi {
		t.Fatalf("module at %#x outside vanilla window [%#x,%#x)", mod.Movable.Base, lo, hi)
	}
	if hi-lo > 1<<31 {
		t.Fatalf("vanilla window is %d bytes; must be ≤2 GB", hi-lo)
	}
	va, _ := k.Symbol("compute")
	got, err := k.CPU(0).Call(va)
	if err != nil {
		t.Fatal(err)
	}
	if got != 43 {
		t.Fatalf("compute = %d, want 43", got)
	}
}

func TestNonPICRejectedUnderFull64(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	obj := mustCompile(t, simpleModule("m"), kcc.Options{Model: kcc.ModelAbsolute})
	if _, err := k.Load(obj); err == nil {
		t.Fatal("non-PIC module must not load under 64-bit KASLR")
	}
}

func TestFig4PatchingCounters(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	obj := mustCompile(t, simpleModule("m"), kcc.Options{Model: kcc.ModelPIC})
	mod, err := k.Load(obj)
	if err != nil {
		t.Fatal(err)
	}
	// helper is local: its call site must be patched to a direct call.
	if mod.CallsPatched == 0 {
		t.Error("no GOT-indirect calls were patched to direct calls")
	}
	// counter/banner are local: their GOT loads become lea.
	if mod.GotLoadsPatched == 0 {
		t.Error("no GOT loads were patched to lea")
	}
	// Only kernel imports should hold GOT slots.
	for _, s := range mod.Movable.GotFixed.Slots {
		if sym, ok := obj.Lookup(s.Sym); ok && !sym.IsUndefined() {
			t.Errorf("local symbol %q kept a GOT slot", s.Sym)
		}
	}
}

func TestRetpolineStubsOnlyForImports(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	obj := mustCompile(t, simpleModule("m"), kcc.Options{Model: kcc.ModelPIC, Retpoline: true})
	mod, err := k.Load(obj)
	if err != nil {
		t.Fatal(err)
	}
	if mod.PltStubsElided == 0 {
		t.Error("local calls should have their PLT stubs elided")
	}
	if mod.PltStubsBuilt == 0 {
		t.Error("kernel imports under retpoline need PLT stubs")
	}
	if _, ok := mod.Movable.stubs["printk"]; !ok {
		t.Error("printk should have a PLT stub")
	}
	if _, ok := mod.Movable.stubs["helper"]; ok {
		t.Error("local helper must not have a PLT stub")
	}
}

func TestGOTIsWriteProtected(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	obj := mustCompile(t, simpleModule("m"), kcc.Options{Model: kcc.ModelPIC, Retpoline: true})
	mod, err := k.Load(obj)
	if err != nil {
		t.Fatal(err)
	}
	got := mod.Movable.GotFixed
	if len(got.Slots) == 0 {
		t.Fatal("expected GOT slots for kernel imports")
	}
	err = k.AS.WriteBytes(got.SlotVA(0), []byte{0xAA})
	var pf *mm.PageFault
	if !errors.As(err, &pf) || pf.Access != mm.AccessWrite {
		t.Fatalf("GOT write: got %v, want write page fault", err)
	}
}

func TestTextIsNotWritableAndDataIsNotExecutable(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	obj := mustCompile(t, simpleModule("m"), kcc.Options{Model: kcc.ModelPIC})
	mod, err := k.Load(obj)
	if err != nil {
		t.Fatal(err)
	}
	textVA, _ := mod.Movable.SectionVA(0)
	if err := k.AS.WriteBytes(textVA, []byte{0x90}); err == nil {
		t.Fatal("module text must be write-protected")
	}
	// counter lives in .data: executing it must fault (NX).
	sym, _ := obj.Lookup("counter")
	p := &mod.Movable
	dataVA := p.Base + p.secOff[sym.Section] + sym.Offset
	if _, err := k.CPU(0).Call(dataVA); err == nil {
		t.Fatal("executing .data must fault")
	}
}

// rerandModule hand-builds what the plugin will automate: a wrapped
// exported function with an immovable wrapper and a movable body.
func rerandModule() *kcc.Module {
	m := &kcc.Module{Name: "rr"}
	m.AddFunc("nullop.real", false,
		kcc.GlobalLoad(isa.RAX, "calls"),
		kcc.ArithImm(kcc.OpAdd, isa.RAX, 1),
		kcc.GlobalStore("calls", isa.RAX),
		kcc.Ret(),
	)
	w := m.AddFunc("nullop", true,
		kcc.Call("mr_start"),
		kcc.Call("nullop.real"),
		kcc.Push(isa.RAX), // preserve return value across mr_finish
		kcc.Call("mr_finish"),
		kcc.Pop(isa.RAX),
		kcc.Ret(),
	)
	w.InFixedText = true
	w.NoInstrument = true
	w.Wrapper = true
	m.AddGlobal(kcc.Global{Name: "calls", Size: 8, Init: make([]byte, 8)})
	// An ops table in .data holding a movable function pointer — the kind
	// of pointer the re-randomizer must slide.
	m.AddGlobal(kcc.Global{
		Name: "optable", Size: 8, Init: make([]byte, 8),
		Relocs: []kcc.DataReloc{{Offset: 0, Sym: "nullop.real"}},
	})
	return m
}

func loadRerand(t *testing.T, k *Kernel) *Module {
	t.Helper()
	obj := mustCompile(t, rerandModule(), kcc.Options{Model: kcc.ModelPIC, Retpoline: true, Rerandomizable: true})
	mod, err := k.Load(obj)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func TestRerandomizableModuleLayout(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	mod := loadRerand(t, k)
	if mod.Immovable.Pages == 0 {
		t.Fatal("re-randomizable module needs an immovable part")
	}
	// The export must resolve into the immovable part.
	va, ok := k.Symbol("nullop")
	if !ok {
		t.Fatal("wrapper not exported")
	}
	if va < mod.Immovable.Base || va >= mod.Immovable.Base+mod.Immovable.Size {
		t.Fatalf("export %#x outside immovable part [%#x,%#x)", va, mod.Immovable.Base, mod.Immovable.Base+mod.Immovable.Size)
	}
	// Wrapper→body call crosses parts: it must use the immovable local GOT.
	if len(mod.Immovable.GotLocal.Slots) == 0 {
		t.Fatal("immovable local GOT is empty; wrapper call not routed through it")
	}
}

func TestRerandomizeMovesModuleAndKeepsItWorking(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	mod := loadRerand(t, k)
	va, _ := k.Symbol("nullop")
	c := k.CPU(0)

	call := func() uint64 {
		t.Helper()
		v, err := c.Call(va)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if got := call(); got != 1 {
		t.Fatalf("first call = %d, want 1", got)
	}

	base0 := mod.Base()
	key0 := mod.Key()
	delta, err := mod.Rerandomize()
	if err != nil {
		t.Fatal(err)
	}
	if delta == 0 || mod.Base() == base0 {
		t.Fatal("module did not move")
	}
	if mod.Key() == key0 {
		t.Fatal("key did not rotate")
	}
	// Wrapper address is stable; calls keep working and see module state.
	if got := call(); got != 2 {
		t.Fatalf("post-rerand call = %d, want 2", got)
	}
	// After the SMR grace period the old range must be unmapped.
	k.SMR.Flush()
	if _, _, ok := k.AS.Lookup(base0); ok {
		t.Fatal("old base still mapped after drain")
	}
	// Several more rounds to shake out bookkeeping bugs.
	for i := 0; i < 5; i++ {
		if _, err := mod.Rerandomize(); err != nil {
			t.Fatal(err)
		}
		if got := call(); got != uint64(3+i) {
			t.Fatalf("round %d: calls = %d", i, got)
		}
	}
	if mod.Rerandomizations != 6 {
		t.Fatalf("Rerandomizations = %d, want 6", mod.Rerandomizations)
	}
}

func TestRerandomizeSlidesDataPointers(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	mod := loadRerand(t, k)
	sym, _ := mod.Obj.Lookup("optable")
	readPtr := func() uint64 {
		va := mod.Movable.Base + mod.Movable.secOff[sym.Section] + sym.Offset
		v, err := k.AS.Read64Force(va)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	before := readPtr()
	delta, err := mod.Rerandomize()
	if err != nil {
		t.Fatal(err)
	}
	after := readPtr()
	if after != before+delta {
		t.Fatalf("ops-table pointer = %#x, want %#x (slid by delta)", after, before+delta)
	}
	// The slid pointer must point at executable bytes of the new mapping.
	if _, _, err := k.AS.Translate(after, mm.AccessExec); err != nil {
		t.Fatalf("slid pointer not executable: %v", err)
	}
}

func TestDelayedUnmapHoldsForPendingCalls(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	mod := loadRerand(t, k)
	base0 := mod.Base()

	// A pending call entered before re-randomization…
	k.SMR.Enter(1)
	if _, err := mod.Rerandomize(); err != nil {
		t.Fatal(err)
	}
	k.SMR.Flush()
	if _, _, ok := k.AS.Lookup(base0); !ok {
		t.Fatal("old range unmapped while a call was pending")
	}
	// …keeps the old mapping alive until it finishes.
	k.SMR.Leave(1)
	k.SMR.Flush()
	if _, _, ok := k.AS.Lookup(base0); ok {
		t.Fatal("old range not unmapped after pending call finished")
	}
}

func TestOldKeyRemainsVisibleToOldMapping(t *testing.T) {
	// The reason local GOTs are reallocated rather than updated in place:
	// a pending call in the old mapping must still decrypt with the old
	// key. Verify the old mapping's key slot holds the old key while the
	// new mapping's holds the new one.
	k := newKernel(t, KASLRFull64)
	obj := mustCompile(t, rerandKeyModule(), kcc.Options{Model: kcc.ModelPIC, Rerandomizable: true})
	mod, err := k.Load(obj)
	if err != nil {
		t.Fatal(err)
	}
	g := mod.Movable.GotLocal
	ki, ok := g.Lookup(elfmod.KeySymbol)
	if !ok {
		t.Fatal("no key slot allocated")
	}
	oldSlotVA := g.SlotVA(ki)
	oldKey := mod.Key()

	k.SMR.Enter(0) // pending call pins the old mapping
	if _, err := mod.Rerandomize(); err != nil {
		t.Fatal(err)
	}
	newKey := mod.Key()
	gotOld, err := k.AS.Read64Force(oldSlotVA)
	if err != nil {
		t.Fatal(err)
	}
	if gotOld != oldKey {
		t.Fatalf("old mapping key slot = %#x, want old key %#x", gotOld, oldKey)
	}
	gotNew, err := k.AS.Read64Force(g.SlotVA(ki))
	if err != nil {
		t.Fatal(err)
	}
	if gotNew != newKey || newKey == oldKey {
		t.Fatalf("new mapping key slot = %#x, want fresh key %#x", gotNew, newKey)
	}
	k.SMR.Leave(0)
}

// rerandKeyModule contains a movable function that loads the key from the
// GOT, as the plugin's prologue does.
func rerandKeyModule() *kcc.Module {
	m := &kcc.Module{Name: "rk"}
	m.AddFunc("touchkey.real", false,
		kcc.GotLoad(isa.R11, elfmod.KeySymbol),
		kcc.MovReg(isa.RAX, isa.R11),
		kcc.Ret(),
	)
	w := m.AddFunc("touchkey", true,
		kcc.Call("touchkey.real"),
		kcc.Ret(),
	)
	w.InFixedText = true
	w.NoInstrument = true
	w.Wrapper = true
	return m
}

func TestMovableExportRejected(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	m := &kcc.Module{Name: "bad"}
	m.AddFunc("leaky", true, kcc.Ret()) // exported but movable
	obj := mustCompile(t, m, kcc.Options{Model: kcc.ModelPIC, Rerandomizable: true})
	if _, err := k.Load(obj); err == nil || !strings.Contains(err.Error(), "movable part") {
		t.Fatalf("got %v, want movable-export rejection", err)
	}
}

func TestDuplicateLoadRejected(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	obj := mustCompile(t, simpleModule("dup"), kcc.Options{Model: kcc.ModelPIC})
	if _, err := k.Load(obj); err != nil {
		t.Fatal(err)
	}
	obj2 := mustCompile(t, simpleModule("dup"), kcc.Options{Model: kcc.ModelPIC})
	if _, err := k.Load(obj2); err == nil {
		t.Fatal("duplicate module load accepted")
	}
}

func TestUnresolvedImportFailsLoad(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	m := &kcc.Module{Name: "m"}
	m.AddFunc("f", true, kcc.Call("no_such_kernel_symbol"), kcc.Ret())
	obj := mustCompile(t, m, kcc.Options{Model: kcc.ModelPIC})
	if _, err := k.Load(obj); err == nil || !strings.Contains(err.Error(), "unresolved symbol") {
		t.Fatalf("got %v, want unresolved-symbol error", err)
	}
}

func TestUnload(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	obj := mustCompile(t, simpleModule("m"), kcc.Options{Model: kcc.ModelPIC})
	mod, err := k.Load(obj)
	if err != nil {
		t.Fatal(err)
	}
	base := mod.Movable.Base
	if err := mod.Unload(); err != nil {
		t.Fatal(err)
	}
	if _, ok := k.Symbol("compute"); ok {
		t.Fatal("exports not withdrawn")
	}
	if _, _, ok := k.AS.Lookup(base); ok {
		t.Fatal("module pages not unmapped")
	}
	// The region is free for reuse.
	if _, err := k.Load(mustCompile(t, simpleModule("m"), kcc.Options{Model: kcc.ModelPIC})); err != nil {
		t.Fatal(err)
	}
}

func TestKmallocKfree(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	a, err := k.Kmalloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.AS.Write64(a, 0x1122); err != nil {
		t.Fatal(err)
	}
	b, err := k.Kmalloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("overlapping allocations")
	}
	if err := k.Kfree(a); err != nil {
		t.Fatal(err)
	}
	c2, err := k.Kmalloc(90) // same 128-byte class: reuses a
	if err != nil {
		t.Fatal(err)
	}
	if c2 != a {
		t.Fatalf("free list not reused: got %#x, want %#x", c2, a)
	}
	if err := k.Kfree(a); err != nil {
		t.Fatal(err)
	}
	if err := k.Kfree(a); err == nil {
		t.Fatal("double free accepted")
	}
}

func TestStackGuardPage(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	top, err := k.AllocStack()
	if err != nil {
		t.Fatal(err)
	}
	base := top - KernelStackPages*mm.PageSize
	if err := k.AS.WriteBytes(base, []byte{1}); err != nil {
		t.Fatal("stack base must be writable")
	}
	if err := k.AS.WriteBytes(base-8, []byte{1}); err == nil {
		t.Fatal("guard page below the stack must fault")
	}
}

func TestModulePlacementEntropy(t *testing.T) {
	// Under full 64-bit KASLR, repeated loads land at wildly different
	// addresses; under vanilla they cluster in the 2 GB window. This is
	// the §6 entropy difference in miniature.
	spread := func(mode KASLRMode) uint64 {
		k := newKernel(t, mode)
		var lo, hi uint64 = ^uint64(0), 0
		for i := 0; i < 8; i++ {
			name := fmt2("m", i)
			km := &kcc.Module{Name: name}
			km.AddFunc("entry_"+name, true, kcc.MovImm(isa.RAX, 1), kcc.Ret())
			obj := mustCompile(t, km, kcc.Options{Model: kcc.ModelPIC})
			mod, err := k.Load(obj)
			if err != nil {
				t.Fatal(err)
			}
			if mod.Movable.Base < lo {
				lo = mod.Movable.Base
			}
			if mod.Movable.Base > hi {
				hi = mod.Movable.Base
			}
		}
		return hi - lo
	}
	if v, f := spread(KASLRVanilla), spread(KASLRFull64); v >= 1<<31 || f <= 1<<31 {
		t.Fatalf("vanilla spread %#x (want <2GB), full64 spread %#x (want >2GB)", v, f)
	}
}

func fmt2(p string, i int) string { return p + string(rune('a'+i)) }

func TestRandomRegionNoOverlap(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	type iv struct{ lo, hi uint64 }
	var got []iv
	k.mu.Lock()
	defer k.mu.Unlock()
	for i := 0; i < 200; i++ {
		base, err := k.randomRegion(3*mm.PageSize, k.moduleRangeLo, k.moduleRangeHi)
		if err != nil {
			t.Fatal(err)
		}
		ni := iv{base, base + 3*mm.PageSize}
		for _, o := range got {
			if ni.lo < o.hi && o.lo < ni.hi {
				t.Fatalf("overlap: [%#x,%#x) vs [%#x,%#x)", ni.lo, ni.hi, o.lo, o.hi)
			}
		}
		got = append(got, ni)
	}
}

func BenchmarkRerandomize(b *testing.B) {
	k, err := New(Config{NumCPUs: 4, Seed: 7, KASLR: KASLRFull64})
	if err != nil {
		b.Fatal(err)
	}
	obj, err := kcc.Compile(rerandModule(), kcc.Options{Model: kcc.ModelPIC, Retpoline: true, Rerandomizable: true})
	if err != nil {
		b.Fatal(err)
	}
	mod, err := k.Load(obj)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mod.Rerandomize(); err != nil {
			b.Fatal(err)
		}
		k.SMR.Flush()
	}
}
