package kernel

import (
	"fmt"

	"adelie/internal/cpu"
)

// Workqueue support models the §3.4 corner case: "softirqs/workqueues do
// not require mr_finish to wait until the request is completed, and the
// re-randomization routine will only need to modify the function handler
// address. Only inside the actual handler (when scheduled), do we need to
// call mr_start/mr_finish again."
//
// A module schedules deferred work with a handler address inside its
// movable part. The scheduling call's mr_start/mr_finish bracket ends
// when queue_work returns — it does NOT pin the module until the handler
// runs. Instead, the re-randomizer slides pending handler addresses when
// the module moves, and the work runner brackets each handler execution
// with its own critical section.

// workItem is one pending deferred-work entry.
type workItem struct {
	fn  uint64 // handler address (movable; slid on re-randomization)
	arg uint64
}

// QueueWork schedules fn(arg) for deferred execution. Drivers reach it
// through the "queue_work" native.
func (k *Kernel) QueueWork(fn, arg uint64) {
	k.mu.Lock()
	k.workqueue = append(k.workqueue, workItem{fn: fn, arg: arg})
	k.mu.Unlock()
}

// PendingWork returns the number of queued items.
func (k *Kernel) PendingWork() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.workqueue)
}

// RunPendingWork executes every queued item on c, bracketing each handler
// with mr_start/mr_finish as §3.4 prescribes for re-entry from a
// workqueue context. It returns the number of handlers run.
func (k *Kernel) RunPendingWork(c *cpu.CPU) (int, error) {
	k.mu.Lock()
	items := k.workqueue
	k.workqueue = nil
	k.mu.Unlock()
	for i, it := range items {
		k.SMR.Enter(c.ID)
		_, err := c.Call(it.fn, it.arg)
		k.SMR.Leave(c.ID)
		if err != nil {
			// Re-queue the unprocessed tail so nothing is lost.
			k.mu.Lock()
			k.workqueue = append(items[i+1:], k.workqueue...)
			k.mu.Unlock()
			return i, fmt.Errorf("kernel: work item %d: %w", i, err)
		}
	}
	return len(items), nil
}

// slideWorkqueue retargets pending handlers that point into the movable
// range being moved — the "modify the function handler address" step of
// §3.4. Called by Module.Rerandomize under k's module lock.
func (k *Kernel) slideWorkqueue(oldBase, size, delta uint64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	for i := range k.workqueue {
		if fn := k.workqueue[i].fn; fn >= oldBase && fn < oldBase+size {
			k.workqueue[i].fn = fn + delta
		}
	}
}
