package kernel

import (
	"strings"
	"testing"

	"adelie/internal/isa"
	"adelie/internal/kcc"
)

// wqModule schedules its own movable handler onto the kernel workqueue:
//
//	wq_submit(arg)  — queue_work(&handler.deferred, arg)
//	handler.deferred(arg) — state += arg
func wqModule() *kcc.Module {
	m := &kcc.Module{Name: "wq"}
	m.AddFunc("handler.deferred", false,
		kcc.GlobalLoad(isa.RAX, "wq_state"),
		kcc.Arith(kcc.OpAdd, isa.RAX, isa.RDI),
		kcc.GlobalStore("wq_state", isa.RAX),
		kcc.Ret(),
	)
	m.AddFunc("wq_submit", true,
		kcc.MovReg(isa.RSI, isa.RDI),                // arg
		kcc.GlobalAddr(isa.RDI, "handler.deferred"), // movable address!
		kcc.Call("queue_work"),
		kcc.Ret(),
	)
	m.AddFunc("wq_read", true,
		kcc.GlobalLoad(isa.RAX, "wq_state"),
		kcc.Ret(),
	)
	m.AddGlobal(kcc.Global{Name: "wq_state", Size: 8, Init: make([]byte, 8)})
	return m
}

func loadWQ(t *testing.T, k *Kernel) *Module {
	t.Helper()
	// Hand-wrapped like rerandModule: the two exported entries get
	// immovable wrappers (the plugin would automate this).
	m := wqModule()
	for _, name := range []string{"wq_submit", "wq_read"} {
		f := m.Func(name)
		f.Name = name + ".real"
		f.Export = false
		w := m.AddFunc(name, true,
			kcc.Push(isa.RBX),
			kcc.Call("mr_start"),
			kcc.Call(name+".real"),
			kcc.MovReg(isa.RBX, isa.RAX),
			kcc.Call("mr_finish"),
			kcc.MovReg(isa.RAX, isa.RBX),
			kcc.Pop(isa.RBX),
			kcc.Ret(),
		)
		w.InFixedText = true
		w.NoInstrument = true
		w.Wrapper = true
	}
	obj := mustCompile(t, m, kcc.Options{Model: kcc.ModelPIC, Retpoline: true, Rerandomizable: true})
	mod, err := k.Load(obj)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func TestWorkqueueBasicFlow(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	loadWQ(t, k)
	submit, _ := k.Symbol("wq_submit")
	read, _ := k.Symbol("wq_read")
	c := k.CPU(0)

	for _, arg := range []uint64{5, 7} {
		if _, err := c.Call(submit, arg); err != nil {
			t.Fatal(err)
		}
	}
	if k.PendingWork() != 2 {
		t.Fatalf("pending = %d, want 2", k.PendingWork())
	}
	// Nothing ran yet.
	if v, _ := c.Call(read); v != 0 {
		t.Fatalf("state before drain = %d", v)
	}
	n, err := k.RunPendingWork(c)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || k.PendingWork() != 0 {
		t.Fatalf("ran %d, pending %d", n, k.PendingWork())
	}
	if v, _ := c.Call(read); v != 12 {
		t.Fatalf("state = %d, want 12", v)
	}
}

// TestWorkqueueSurvivesRerandomization is the §3.4 corner case: work is
// queued with a movable handler address, the module moves (possibly
// several times), the old range drains, and the deferred handler still
// runs — because the re-randomizer retargeted the queued address.
func TestWorkqueueSurvivesRerandomization(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	mod := loadWQ(t, k)
	submit, _ := k.Symbol("wq_submit")
	read, _ := k.Symbol("wq_read")
	c := k.CPU(0)

	if _, err := c.Call(submit, 9); err != nil {
		t.Fatal(err)
	}
	oldBase := mod.Base()
	for i := 0; i < 3; i++ {
		if _, err := mod.Rerandomize(); err != nil {
			t.Fatal(err)
		}
	}
	k.SMR.Flush()
	// The old mapping is gone; an unretargeted handler would fault here.
	if _, _, ok := k.AS.Lookup(oldBase); ok {
		t.Fatal("old range still mapped")
	}
	n, err := k.RunPendingWork(c)
	if err != nil {
		t.Fatalf("deferred handler after 3 moves: %v", err)
	}
	if n != 1 {
		t.Fatalf("ran %d items", n)
	}
	if v, _ := c.Call(read); v != 9 {
		t.Fatalf("state = %d, want 9", v)
	}
}

// TestWorkqueueHandlerGetsOwnCriticalSection verifies the runner brackets
// each handler with mr_start/mr_finish: a re-randomization retired while
// the handler runs must not unmap the range under it. We approximate by
// checking the SMR counters balance across the run.
func TestWorkqueueHandlerGetsOwnCriticalSection(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	loadWQ(t, k)
	submit, _ := k.Symbol("wq_submit")
	c := k.CPU(0)
	if _, err := c.Call(submit, 1); err != nil {
		t.Fatal(err)
	}
	before := k.SMR.Stats()
	if _, err := k.RunPendingWork(c); err != nil {
		t.Fatal(err)
	}
	// Enter/Leave happened (no direct counter, but retire/free balance
	// and no panic from unmatched Leave proves the bracket closed).
	after := k.SMR.Stats()
	if after.Delta() != before.Delta() {
		t.Fatalf("SMR delta changed across handler run: %d → %d", before.Delta(), after.Delta())
	}
}

// TestWorkqueueFaultRequeuesTail: a faulting handler stops the drain and
// preserves the unprocessed tail.
func TestWorkqueueFaultRequeuesTail(t *testing.T) {
	k := newKernel(t, KASLRFull64)
	mod := loadWQ(t, k)
	// Queue a bogus handler directly, then a valid one.
	sym, _ := mod.Obj.Lookup("handler.deferred")
	secVA, _ := mod.Movable.SectionVA(sym.Section)
	k.QueueWork(0xDEAD000, 1)        // unmapped: faults
	k.QueueWork(secVA+sym.Offset, 2) // valid
	c := k.CPU(0)
	n, err := k.RunPendingWork(c)
	if err == nil || !strings.Contains(err.Error(), "work item 0") {
		t.Fatalf("got (%d, %v), want item-0 fault", n, err)
	}
	if k.PendingWork() != 1 {
		t.Fatalf("tail not requeued: pending = %d", k.PendingWork())
	}
	if n2, err := k.RunPendingWork(c); err != nil || n2 != 1 {
		t.Fatalf("tail drain = (%d, %v)", n2, err)
	}
}
