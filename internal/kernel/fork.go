package kernel

import (
	"fmt"
	"math/rand"

	"adelie/internal/cpu"
	"adelie/internal/mm"
	"adelie/internal/smr"
)

// Fork returns a deep copy of this kernel sharing physical frames
// copy-on-write with the template. The template must be quiescent: no
// vCPU running, no SMR critical section live, no retired-but-unfreed
// address range (a pending retire closure captures the template's
// address space and could never run against the fork's). sim.Machine
// enforces this by freezing the template at Snapshot.
//
// Everything addressed by VA or FrameID carries over verbatim — the
// fork's address space maps the same frames at the same addresses, so
// symbol tables, module bookkeeping, heap metadata, pending work and
// registered ISRs are plain copies. Core natives are re-created as
// closures over the fork (rebindCoreNatives); natives registered by
// other owners (the re-randomizer's stack-swap helpers) are carried
// over and must be rebound by their owner via RebindNative.
func (k *Kernel) Fork() (*Kernel, error) {
	forker, ok := k.SMR.(smr.Forker)
	if !ok {
		return nil, fmt.Errorf("kernel: fork: reclaimer %q does not support forking", k.SMR.Name())
	}
	nsmr, err := forker.ForkQuiescent()
	if err != nil {
		return nil, fmt.Errorf("kernel: fork: %w", err)
	}

	k.mu.Lock()
	defer k.mu.Unlock()

	src := newCountingSource(k.Cfg.Seed, k.randSrc.n)
	nk := &Kernel{
		Cfg:      k.Cfg,
		AS:       k.AS.Fork(k.AS.Phys().Fork()),
		Rand:     rand.New(src),
		randSrc:  src,
		SMR:      nsmr,
		symbols:  make(map[string]uint64, len(k.symbols)),
		natives:  make(map[uint64]*cpu.Native, len(k.natives)),
		textBase: k.textBase,
		textNext: k.textNext,

		heapBase:   k.heapBase,
		heapNext:   k.heapNext,
		heapFree:   make(map[uint64][]uint64, len(k.heapFree)),
		heapSizes:  make(map[uint64]uint64, len(k.heapSizes)),
		heapMapped: k.heapMapped,

		stackBase: k.stackBase,
		stackNext: k.stackNext,

		regions: append([]vaRegion(nil), k.regions...),

		modules:   make(map[string]*Module, len(k.modules)),
		workqueue: append([]workItem(nil), k.workqueue...),

		log: append([]string(nil), k.log...),

		moduleRangeLo: k.moduleRangeLo,
		moduleRangeHi: k.moduleRangeHi,
	}
	for name, va := range k.symbols {
		nk.symbols[name] = va
	}
	for class, list := range k.heapFree {
		nk.heapFree[class] = append([]uint64(nil), list...)
	}
	for va, class := range k.heapSizes {
		nk.heapSizes[va] = class
	}
	if k.isrs != nil {
		nk.isrs = make(map[int]isrEntry, len(k.isrs))
		for line, e := range k.isrs {
			nk.isrs[line] = e
		}
	}
	for va, n := range k.natives {
		nk.natives[va] = n
	}
	nk.rebindCoreNatives()
	for name, m := range k.modules {
		nk.modules[name] = m.cloneFor(nk)
	}
	for _, c := range k.cpus {
		nk.cpus = append(nk.cpus, c.CloneFor(nk.AS, nk.natives))
	}
	return nk, nil
}

// cloneFor deep-copies a module for a forked kernel. The object file is
// shared (immutable after build); every piece of mutable bookkeeping is
// copied so re-randomization diverges independently per machine.
func (m *Module) cloneFor(nk *Kernel) *Module {
	nm := &Module{
		Name:            m.Name,
		Obj:             m.Obj,
		k:               nk,
		Movable:         m.Movable.clone(),
		Immovable:       m.Immovable.clone(),
		exports:         make(map[string]uint64, len(m.exports)),
		localPtrOffsets: append([]uint64(nil), m.localPtrOffsets...),
		keySlot:         m.keySlot,
		curKey:          m.curKey,

		Rerandomizations: m.Rerandomizations,
		GotLoadsPatched:  m.GotLoadsPatched,
		CallsPatched:     m.CallsPatched,
		PltStubsBuilt:    m.PltStubsBuilt,
		PltStubsElided:   m.PltStubsElided,
		PagesRemapped:    m.PagesRemapped,
		GotEntriesMoved:  m.GotEntriesMoved,
	}
	for name, va := range m.exports {
		nm.exports[name] = va
	}
	return nm
}

// clone deep-copies one module part.
func (p Part) clone() Part {
	np := p
	np.Frames = append([]mm.FrameID(nil), p.Frames...)
	np.chunks = append([]chunk(nil), p.chunks...)
	if p.secOff != nil {
		np.secOff = make(map[int]uint64, len(p.secOff))
		for sec, off := range p.secOff {
			np.secOff[sec] = off
		}
	}
	if p.stubs != nil {
		np.stubs = make(map[string]uint64, len(p.stubs))
		for sym, off := range p.stubs {
			np.stubs[sym] = off
		}
	}
	np.GotFixed = p.GotFixed.clone()
	np.GotLocal = p.GotLocal.clone()
	return np
}

// clone deep-copies a GOT (nil-safe).
func (g *GOT) clone() *GOT {
	if g == nil {
		return nil
	}
	ng := &GOT{
		Name:   g.Name,
		Base:   g.Base,
		Slots:  append([]GOTSlot(nil), g.Slots...),
		Frames: append([]mm.FrameID(nil), g.Frames...),
	}
	if g.index != nil {
		ng.index = make(map[string]int, len(g.index))
		for sym, i := range g.index {
			ng.index[sym] = i
		}
	}
	return ng
}
