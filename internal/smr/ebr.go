package smr

import (
	"sync"
	"sync/atomic"
)

func dec(p *int64) int64 { return atomic.AddInt64(p, -1) }

// EBR is classic three-epoch reclamation [Fraser 2004], the scheme the
// paper cites as Hyaline's closest relative. A global epoch advances only
// when every active reader has observed it; blocks retired in epoch e are
// safe once the global epoch reaches e+2.
//
// The integration cost the paper calls out is visible in the API: nothing
// is freed unless someone keeps calling Retire or Flush to attempt epoch
// advancement, whereas Hyaline reclaims in Leave.
type EBR struct {
	mu          sync.Mutex
	globalEpoch uint64
	slots       []ebrSlot
	limbo       [3][]func() // limbo[e%3] = blocks retired in epoch e
	counters
}

type ebrSlot struct {
	active  int
	epoch   uint64
	nesting int
}

// NewEBR returns an EBR reclaimer with the given number of slots.
func NewEBR(slots int) *EBR {
	if slots <= 0 {
		panic("smr: NewEBR needs at least one slot")
	}
	return &EBR{slots: make([]ebrSlot, slots)}
}

// Name implements Reclaimer.
func (e *EBR) Name() string { return "ebr" }

// Enter implements Reclaimer (mr_start): the slot pins the current epoch.
func (e *EBR) Enter(slot int) {
	e.mu.Lock()
	s := &e.slots[slot]
	if s.nesting == 0 {
		s.active = 1
		s.epoch = e.globalEpoch
	}
	s.nesting++
	e.mu.Unlock()
}

// Leave implements Reclaimer (mr_finish).
func (e *EBR) Leave(slot int) {
	e.mu.Lock()
	s := &e.slots[slot]
	if s.nesting == 0 {
		e.mu.Unlock()
		panic("smr: EBR.Leave without matching Enter")
	}
	s.nesting--
	if s.nesting == 0 {
		s.active = 0
	}
	e.mu.Unlock()
}

// Retire implements Reclaimer (mr_retire): the block joins the current
// epoch's limbo list, and an advancement attempt runs opportunistically.
func (e *EBR) Retire(free func()) {
	e.retired.Add(1)
	e.mu.Lock()
	e.limbo[e.globalEpoch%3] = append(e.limbo[e.globalEpoch%3], free)
	freed := e.tryAdvanceLocked()
	e.mu.Unlock()
	e.runFrees(freed)
}

// Flush implements Reclaimer: repeatedly attempts epoch advancement until
// either every limbo list is empty or a straggler blocks progress. Three
// successful advances always suffice to drain all three limbo lists.
func (e *EBR) Flush() {
	for i := 0; i < 3; i++ {
		e.mu.Lock()
		before := e.globalEpoch
		freed := e.tryAdvanceLocked()
		advanced := e.globalEpoch != before
		pending := len(e.limbo[0]) + len(e.limbo[1]) + len(e.limbo[2])
		e.mu.Unlock()
		e.runFrees(freed)
		if !advanced || pending == 0 {
			return
		}
	}
}

// tryAdvanceLocked advances the global epoch if every active slot has
// caught up, returning the limbo list that became safe. Caller holds e.mu.
func (e *EBR) tryAdvanceLocked() []func() {
	for i := range e.slots {
		s := &e.slots[i]
		if s.active == 1 && s.epoch != e.globalEpoch {
			return nil // a straggler pins the old epoch
		}
	}
	e.globalEpoch++
	// Blocks retired two epochs ago can no longer be observed: every
	// reader active then has either left or re-pinned a newer epoch.
	idx := (e.globalEpoch + 1) % 3 // == (globalEpoch-2) mod 3
	freed := e.limbo[idx]
	e.limbo[idx] = nil
	return freed
}

func (e *EBR) runFrees(fs []func()) {
	for _, f := range fs {
		f()
		e.freed.Add(1)
	}
}

// Stats implements Reclaimer.
func (e *EBR) Stats() Stats { return e.counters.stats() }

// QSBR is quiescent-state-based reclamation — the scheme CodeArmor uses
// (paper §2.7). Unlike Hyaline and EBR it has no Enter/Leave tracking at
// all: reclamation relies on every slot explicitly announcing that it has
// passed through a quiescent state (a point with no references to shared
// blocks). That announcement requirement is the integration burden the
// paper highlights: in a kernel, finding guaranteed-quiescent points for
// arbitrary call chains is hard.
//
// Enter/Leave are accepted (so QSBR satisfies Reclaimer and can be swapped
// into the re-randomizer for ablation) and are interpreted conservatively:
// Leave on a slot counts as that slot passing a quiescent state.
type QSBR struct {
	mu       sync.Mutex
	slots    []qsbrSlot
	interval uint64
	waiting  []qsbrGen
	counters
}

type qsbrSlot struct {
	lastQuiescent uint64
	nesting       int
}

type qsbrGen struct {
	gen   uint64
	frees []func()
}

// NewQSBR returns a QSBR reclaimer with the given number of slots.
func NewQSBR(slots int) *QSBR {
	if slots <= 0 {
		panic("smr: NewQSBR needs at least one slot")
	}
	return &QSBR{slots: make([]qsbrSlot, slots), interval: 1}
}

// Name implements Reclaimer.
func (q *QSBR) Name() string { return "qsbr" }

// Enter implements Reclaimer.
func (q *QSBR) Enter(slot int) {
	q.mu.Lock()
	q.slots[slot].nesting++
	q.mu.Unlock()
}

// Leave implements Reclaimer; leaving the outermost critical section is a
// quiescent state for the slot.
func (q *QSBR) Leave(slot int) {
	q.mu.Lock()
	s := &q.slots[slot]
	if s.nesting == 0 {
		q.mu.Unlock()
		panic("smr: QSBR.Leave without matching Enter")
	}
	s.nesting--
	var freed []func()
	if s.nesting == 0 {
		s.lastQuiescent = q.interval
		freed = q.collectLocked()
	}
	q.mu.Unlock()
	q.runFrees(freed)
}

// Quiescent announces that slot holds no references right now.
func (q *QSBR) Quiescent(slot int) {
	q.mu.Lock()
	q.slots[slot].lastQuiescent = q.interval
	freed := q.collectLocked()
	q.mu.Unlock()
	q.runFrees(freed)
}

// Retire implements Reclaimer: the block waits until every slot passes a
// quiescent state after the current interval.
func (q *QSBR) Retire(free func()) {
	q.retired.Add(1)
	q.mu.Lock()
	q.interval++
	q.waiting = append(q.waiting, qsbrGen{gen: q.interval, frees: []func(){free}})
	freed := q.collectLocked()
	q.mu.Unlock()
	q.runFrees(freed)
}

// Flush implements Reclaimer. It treats idle slots (no open critical
// section) as quiescent — a deliberate convenience for tests and the
// simulator's single-threaded phases.
func (q *QSBR) Flush() {
	q.mu.Lock()
	for i := range q.slots {
		if q.slots[i].nesting == 0 {
			q.slots[i].lastQuiescent = q.interval
		}
	}
	freed := q.collectLocked()
	q.mu.Unlock()
	q.runFrees(freed)
}

// collectLocked frees every waiting generation that all slots have
// quiesced past. Caller holds q.mu.
func (q *QSBR) collectLocked() []func() {
	minQ := ^uint64(0)
	for i := range q.slots {
		s := &q.slots[i]
		if s.nesting > 0 {
			// An active reader has not quiesced since it entered.
			if s.lastQuiescent < minQ {
				minQ = s.lastQuiescent
			}
			continue
		}
		if s.lastQuiescent < minQ {
			minQ = s.lastQuiescent
		}
	}
	var out []func()
	rest := q.waiting[:0]
	for _, g := range q.waiting {
		if g.gen <= minQ {
			out = append(out, g.frees...)
		} else {
			rest = append(rest, g)
		}
	}
	q.waiting = rest
	return out
}

func (q *QSBR) runFrees(fs []func()) {
	for _, f := range fs {
		f()
		q.freed.Add(1)
	}
}

// Stats implements Reclaimer.
func (q *QSBR) Stats() Stats { return q.counters.stats() }
