// Package smr provides the safe-memory-reclamation schemes Adelie uses to
// delay unmapping of old module address ranges until all pending calls
// complete (paper §3.4, "Controlling Address Space Lifetime").
//
// The paper's terminology maps onto this package as:
//
//	mr_start  → Reclaimer.Enter(slot)
//	mr_finish → Reclaimer.Leave(slot)
//	mr_retire → Reclaimer.Retire(free)
//
// where slot is a per-CPU identifier. Three schemes are provided:
//
//   - Hyaline [Nikolaev & Ravindran, PODC'19 / PLDI'21]: the scheme Adelie
//     adopts. Reclamation is driven by readers as they leave their critical
//     sections; no epoch advancement or scheduler cooperation is needed,
//     which is what makes it "context-agnostic" and easy to drop into a
//     kernel (paper §3.4).
//   - EBR: classic three-epoch reclamation [Fraser'04], the comparison
//     point the paper cites.
//   - QSBR: quiescent-state-based reclamation, what CodeArmor uses; it
//     needs explicit quiescence announcements, which is exactly the
//     integration burden Adelie avoids.
//
// All three guarantee: a block retired while reader R is inside a critical
// section it entered before the retirement is not freed until R leaves.
package smr

import "sync/atomic"

// Reclaimer is the common interface of the reclamation schemes.
//
// Slots identify the executing CPU (or thread); Enter/Leave may nest.
// Retire hands over a block whose free function runs once no pending
// critical section can still observe it. Free functions may run on the
// retiring goroutine or inside a later Leave/Flush — they must not call
// back into the Reclaimer.
type Reclaimer interface {
	// Enter marks the start of a critical section on slot (mr_start).
	Enter(slot int)
	// Leave marks the end of a critical section on slot (mr_finish).
	Leave(slot int)
	// Retire schedules free to run after all current critical sections
	// end (mr_retire).
	Retire(free func())
	// Flush attempts to reclaim everything that is already safe.
	Flush()
	// Stats returns cumulative retire/free counters.
	Stats() Stats
	// Name identifies the scheme ("hyaline", "ebr", "qsbr").
	Name() string
}

// Forker is implemented by reclaimers that support machine snapshot/fork:
// ForkQuiescent returns an independent reclaimer with the same slot
// layout and cumulative counters, and fails if any critical section is
// live or any retired block is still awaiting reclamation (a pending
// free closure captures template state a fork must not share).
type Forker interface {
	ForkQuiescent() (Reclaimer, error)
}

// Stats mirrors the counters Adelie's randomizer kthread logs via dmesg
// ("SMR Retire", "SMR Free", "SMR Delta" in the artifact appendix).
type Stats struct {
	Retired int64 // blocks handed to Retire
	Freed   int64 // blocks whose free function has run
}

// Delta returns Retired - Freed: blocks still awaiting reclamation.
func (s Stats) Delta() int64 { return s.Retired - s.Freed }

type counters struct {
	retired atomic.Int64
	freed   atomic.Int64
}

func (c *counters) stats() Stats {
	return Stats{Retired: c.retired.Load(), Freed: c.freed.Load()}
}

// Guard is a convenience for bracketing a critical section:
//
//	defer smr.Guarded(r, cpu)()
func Guarded(r Reclaimer, slot int) func() {
	r.Enter(slot)
	return func() { r.Leave(slot) }
}
