package smr

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func allSchemes(slots int) []Reclaimer {
	return []Reclaimer{NewHyaline(slots), NewEBR(slots), NewQSBR(slots)}
}

func TestRetireWithNoReadersFreesImmediately(t *testing.T) {
	for _, r := range allSchemes(4) {
		t.Run(r.Name(), func(t *testing.T) {
			freed := false
			r.Retire(func() { freed = true })
			r.Flush()
			if !freed {
				t.Fatal("block not freed with no active readers")
			}
			if s := r.Stats(); s.Retired != 1 || s.Freed != 1 || s.Delta() != 0 {
				t.Fatalf("stats = %+v", s)
			}
		})
	}
}

func TestRetireDuringCriticalSectionIsDeferred(t *testing.T) {
	for _, r := range allSchemes(4) {
		t.Run(r.Name(), func(t *testing.T) {
			freed := false
			r.Enter(1)
			r.Retire(func() { freed = true })
			r.Flush()
			if freed {
				t.Fatal("block freed while a pre-retire reader is active")
			}
			r.Leave(1)
			r.Flush()
			if !freed {
				t.Fatal("block not freed after the last reader left")
			}
		})
	}
}

func TestLateReaderDoesNotBlockReclamation(t *testing.T) {
	for _, r := range allSchemes(4) {
		t.Run(r.Name(), func(t *testing.T) {
			freed := false
			r.Retire(func() { freed = true })
			r.Enter(2) // enters after the retire
			r.Flush()
			r.Leave(2)
			r.Flush()
			if !freed {
				t.Fatal("reader that entered after retire delayed reclamation")
			}
		})
	}
}

func TestNestedCriticalSections(t *testing.T) {
	for _, r := range allSchemes(2) {
		t.Run(r.Name(), func(t *testing.T) {
			freed := false
			r.Enter(0)
			r.Enter(0) // nested (e.g. softirq handler re-entering, §3.4)
			r.Retire(func() { freed = true })
			r.Leave(0)
			r.Flush()
			if freed {
				t.Fatal("freed before outermost Leave")
			}
			r.Leave(0)
			r.Flush()
			if !freed {
				t.Fatal("not freed after outermost Leave")
			}
		})
	}
}

func TestUnmatchedLeavePanics(t *testing.T) {
	for _, r := range allSchemes(1) {
		t.Run(r.Name(), func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("Leave without Enter must panic")
				}
			}()
			r.Leave(0)
		})
	}
}

func TestMultipleRetiresOrderIndependent(t *testing.T) {
	for _, r := range allSchemes(4) {
		t.Run(r.Name(), func(t *testing.T) {
			var freed atomic.Int64
			r.Enter(0)
			for i := 0; i < 10; i++ {
				r.Retire(func() { freed.Add(1) })
			}
			r.Enter(1)
			for i := 0; i < 10; i++ {
				r.Retire(func() { freed.Add(1) })
			}
			r.Leave(1)
			r.Leave(0)
			r.Flush()
			if freed.Load() != 20 {
				t.Fatalf("freed %d of 20", freed.Load())
			}
		})
	}
}

func TestEBRStragglerPinsEpoch(t *testing.T) {
	e := NewEBR(2)
	freed := false
	e.Enter(0) // straggler pins the current epoch
	e.Retire(func() { freed = true })
	// Drive many retire/flush cycles; nothing may free while slot 0 sits
	// in its critical section.
	for i := 0; i < 10; i++ {
		e.Flush()
	}
	if freed {
		t.Fatal("EBR freed under a pinned epoch")
	}
	e.Leave(0)
	e.Flush()
	if !freed {
		t.Fatal("EBR failed to free after the straggler left")
	}
}

func TestQSBRNeedsQuiescence(t *testing.T) {
	q := NewQSBR(2)
	freed := false
	q.Retire(func() { freed = true })
	// No slot has announced quiescence after the retire interval; without
	// Flush (which forgives idle slots), nothing may be freed.
	q.Quiescent(0)
	if freed {
		t.Fatal("QSBR freed before all slots quiesced")
	}
	q.Quiescent(1)
	if !freed {
		t.Fatal("QSBR did not free after all slots quiesced")
	}
}

func TestQSBRActiveReaderBlocks(t *testing.T) {
	q := NewQSBR(2)
	freed := false
	q.Enter(0)
	q.Retire(func() { freed = true })
	q.Quiescent(1)
	q.Flush() // must not treat the active slot 0 as quiescent
	if freed {
		t.Fatal("QSBR freed while slot 0 was inside a critical section")
	}
	q.Leave(0)
	q.Flush()
	if !freed {
		t.Fatal("QSBR did not free after reader left")
	}
}

func TestHyalineActiveReaders(t *testing.T) {
	h := NewHyaline(4)
	if h.ActiveReaders() != 0 {
		t.Fatal("fresh Hyaline reports active readers")
	}
	h.Enter(0)
	h.Enter(3)
	if h.ActiveReaders() != 2 {
		t.Fatalf("ActiveReaders = %d, want 2", h.ActiveReaders())
	}
	h.Leave(0)
	h.Leave(3)
	if h.ActiveReaders() != 0 {
		t.Fatal("readers did not drain")
	}
}

func TestHyalineReclaimsInLeaveWithoutFlush(t *testing.T) {
	// The property that makes Hyaline suitable for the kernel: no external
	// driving needed — the departing reader performs the reclamation.
	h := NewHyaline(2)
	freed := false
	h.Enter(0)
	h.Retire(func() { freed = true })
	h.Leave(0) // note: no Flush anywhere
	if !freed {
		t.Fatal("Hyaline did not reclaim in Leave")
	}
}

// TestConcurrentSafety is the core safety property under real parallelism:
// readers hold a pointer to a shared block across their critical section;
// the writer continuously swaps the block and retires the old one. A
// reader observing a freed block is a reclamation bug.
func TestConcurrentSafety(t *testing.T) {
	type block struct{ freed atomic.Bool }
	const (
		readers = 4
		swaps   = 2000
	)
	for _, r := range allSchemes(readers + 1) {
		t.Run(r.Name(), func(t *testing.T) {
			var current atomic.Pointer[block]
			current.Store(&block{})
			var stop atomic.Bool
			var wg sync.WaitGroup
			for i := 0; i < readers; i++ {
				wg.Add(1)
				go func(slot int) {
					defer wg.Done()
					for !stop.Load() {
						r.Enter(slot)
						b := current.Load()
						if b.freed.Load() {
							t.Error("reader observed a freed block")
							r.Leave(slot)
							return
						}
						// Re-check after some delay within the section.
						for j := 0; j < 10; j++ {
							if b.freed.Load() {
								t.Error("block freed inside a critical section")
								r.Leave(slot)
								return
							}
						}
						r.Leave(slot)
					}
				}(i)
			}
			for i := 0; i < swaps; i++ {
				old := current.Swap(&block{})
				r.Retire(func() { old.freed.Store(true) })
				if i%64 == 0 {
					r.Flush()
				}
			}
			stop.Store(true)
			wg.Wait()
			r.Flush()
			// With all readers gone, everything must drain.
			if d := r.Stats().Delta(); d != 0 {
				t.Fatalf("delta = %d after drain, want 0", d)
			}
		})
	}
}

// TestQuickRandomSchedule property: under arbitrary interleavings of
// enter/leave/retire on a single goroutine, (a) nothing is freed while any
// reader that entered before the retire remains active, and (b) everything
// is freed once all sections close.
func TestQuickRandomSchedule(t *testing.T) {
	for _, name := range []string{"hyaline", "ebr", "qsbr"} {
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				const slots = 3
				var r Reclaimer
				switch name {
				case "hyaline":
					r = NewHyaline(slots)
				case "ebr":
					r = NewEBR(slots)
				case "qsbr":
					r = NewQSBR(slots)
				}
				rng := rand.New(rand.NewSource(seed))
				nesting := [slots]int{}
				type retired struct {
					freed    *bool
					blockers map[int]bool // slots active at retire time
				}
				var live []retired
				ok := true
				checkInvariant := func() {
					for _, re := range live {
						if !*re.freed {
							continue
						}
						// Freed: no blocker may still be in the critical
						// section it held at retire time. Conservative
						// check: freed while ANY blocker has nesting > 0
						// continuously since retire is a violation. We
						// track that by clearing blockers on leave.
						for s := range re.blockers {
							if nesting[s] > 0 {
								ok = false
							}
						}
					}
				}
				for i := 0; i < 200 && ok; i++ {
					switch rng.Intn(4) {
					case 0: // enter
						s := rng.Intn(slots)
						r.Enter(s)
						nesting[s]++
					case 1: // leave
						s := rng.Intn(slots)
						if nesting[s] > 0 {
							r.Leave(s)
							nesting[s]--
							if nesting[s] == 0 {
								for j := range live {
									delete(live[j].blockers, s)
								}
							}
						}
					case 2: // retire
						freed := new(bool)
						blockers := map[int]bool{}
						for s := 0; s < slots; s++ {
							if nesting[s] > 0 {
								blockers[s] = true
							}
						}
						r.Retire(func() { *freed = true })
						live = append(live, retired{freed: freed, blockers: blockers})
					case 3:
						r.Flush()
					}
					checkInvariant()
				}
				// Drain: close all sections, flush, everything freed.
				for s := 0; s < slots; s++ {
					for nesting[s] > 0 {
						r.Leave(s)
						nesting[s]--
					}
				}
				r.Flush()
				return ok && r.Stats().Delta() == 0
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGuarded(t *testing.T) {
	h := NewHyaline(1)
	func() {
		defer Guarded(h, 0)()
		if h.ActiveReaders() != 1 {
			t.Fatal("Guarded did not enter")
		}
	}()
	if h.ActiveReaders() != 0 {
		t.Fatal("Guarded did not leave")
	}
}

func BenchmarkEnterLeave(b *testing.B) {
	for _, r := range allSchemes(1) {
		b.Run(r.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r.Enter(0)
				r.Leave(0)
			}
		})
	}
}

func BenchmarkRetire(b *testing.B) {
	for _, r := range allSchemes(1) {
		b.Run(r.Name(), func(b *testing.B) {
			b.ReportAllocs()
			nop := func() {}
			for i := 0; i < b.N; i++ {
				r.Retire(nop)
			}
			r.Flush()
		})
	}
}
