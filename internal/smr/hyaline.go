package smr

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Hyaline implements the reclamation scheme Adelie integrates into the
// Linux kernel. Its distinguishing property — the reason the paper picks
// it over plain EBR — is that it is context-agnostic: nothing needs to
// periodically advance an epoch, and reclamation work is performed by
// readers themselves as they leave critical sections, so it drops into an
// environment with arbitrary thread management (kernel calls arriving from
// any process) without hooks into the scheduler.
//
// Structure: each slot (CPU) keeps a list of batches that were retired
// while that slot had a live critical section. A retired batch holds one
// reference per slot that was active at retirement time, plus one for the
// retirer. Each departing reader drops the references its slot holds; the
// batch's free functions run when the count reaches zero. Slots are
// protected by per-slot locks rather than the original's packed-word CAS;
// the protocol (who holds references, when they are dropped) is the
// paper's, and per-slot locking preserves its per-CPU contention profile.
type Hyaline struct {
	slots []hyalineSlot
	counters
}

type hyalineSlot struct {
	mu      sync.Mutex
	nesting int
	pending []*batch // batches this slot must release on Leave
	_       [24]byte // keep slots on separate cache lines in spirit
}

type batch struct {
	refs  int64
	frees []func()
}

// NewHyaline returns a Hyaline reclaimer with the given number of slots
// (one per simulated CPU).
func NewHyaline(slots int) *Hyaline {
	if slots <= 0 {
		panic("smr: NewHyaline needs at least one slot")
	}
	return &Hyaline{slots: make([]hyalineSlot, slots)}
}

// Name implements Reclaimer.
func (h *Hyaline) Name() string { return "hyaline" }

// Enter implements Reclaimer (mr_start).
func (h *Hyaline) Enter(slot int) {
	s := &h.slots[slot]
	s.mu.Lock()
	s.nesting++
	s.mu.Unlock()
}

// Leave implements Reclaimer (mr_finish). The departing reader releases
// every batch retired during its critical section — this is where Hyaline
// does its reclamation work.
func (h *Hyaline) Leave(slot int) {
	s := &h.slots[slot]
	s.mu.Lock()
	if s.nesting == 0 {
		s.mu.Unlock()
		panic("smr: Hyaline.Leave without matching Enter")
	}
	s.nesting--
	var release []*batch
	if s.nesting == 0 && len(s.pending) > 0 {
		release = s.pending
		s.pending = nil
	}
	s.mu.Unlock()
	for _, b := range release {
		h.unref(b)
	}
}

// Retire implements Reclaimer (mr_retire). The batch is handed one
// reference per currently-active slot plus one for the retirer; if no slot
// is active the free function runs immediately.
func (h *Hyaline) Retire(free func()) {
	h.retired.Add(1)
	b := &batch{refs: 1, frees: []func(){free}}
	for i := range h.slots {
		s := &h.slots[i]
		s.mu.Lock()
		if s.nesting > 0 {
			// Atomic: a reader appended to an earlier slot may already be
			// decrementing concurrently. The retirer's own reference keeps
			// the count positive until the loop finishes, so the batch
			// cannot be freed early.
			atomic.AddInt64(&b.refs, 1)
			s.pending = append(s.pending, b)
		}
		s.mu.Unlock()
	}
	h.unref(b) // drop the retirer's reference
}

func (h *Hyaline) unref(b *batch) {
	// refs is only touched under slot locks at append time and here; a
	// plain mutex-free decrement would race with concurrent Leave calls,
	// so serialize through a batch-local convention: the batch pointer is
	// shared, use atomic arithmetic.
	if dec(&b.refs) == 0 {
		for _, f := range b.frees {
			f()
			h.freed.Add(1)
		}
		b.frees = nil
	}
}

// Flush implements Reclaimer. Hyaline needs no external driving: anything
// reclaimable has already been reclaimed by departing readers, so Flush is
// a no-op.
func (h *Hyaline) Flush() {}

// Stats implements Reclaimer.
func (h *Hyaline) Stats() Stats { return h.counters.stats() }

// ForkQuiescent implements Forker: it returns a fresh Hyaline with the
// same slot count and cumulative counters, for a forked machine. Hyaline
// only holds pending batches while some slot is inside a critical
// section (Retire with no active readers frees immediately, and the last
// Leave drains a slot's list), so quiescence — no active readers — is
// exactly the no-pending-work condition the fork needs.
func (h *Hyaline) ForkQuiescent() (Reclaimer, error) {
	for i := range h.slots {
		s := &h.slots[i]
		s.mu.Lock()
		nesting, npending := s.nesting, len(s.pending)
		s.mu.Unlock()
		if nesting > 0 || npending > 0 {
			return nil, fmt.Errorf("smr: fork: slot %d not quiescent (nesting=%d, pending=%d)", i, nesting, npending)
		}
	}
	nh := NewHyaline(len(h.slots))
	nh.retired.Store(h.retired.Load())
	nh.freed.Store(h.freed.Load())
	return nh, nil
}

// ActiveReaders returns the number of slots currently inside a critical
// section (used by tests and the re-randomizer's diagnostics).
func (h *Hyaline) ActiveReaders() int {
	n := 0
	for i := range h.slots {
		s := &h.slots[i]
		s.mu.Lock()
		if s.nesting > 0 {
			n++
		}
		s.mu.Unlock()
	}
	return n
}
