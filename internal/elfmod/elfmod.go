// Package elfmod defines the relocatable object format for AK64 kernel
// modules — the stand-in for ELF .ko files.
//
// Adelie keeps Linux's relocatable module format rather than switching to
// shared libraries (paper §4.1): relocations are finalized at load time,
// which gives the loader the flexibility to create multiple GOTs, build or
// elide PLT stubs, and patch instructions once symbol locality is known
// (Fig. 4). This package models exactly the pieces that design needs:
// sections, a symbol table with undefined (kernel) symbols marked the way
// `nm` would print U, and the four relocation kinds the compiler emits.
package elfmod

import (
	"fmt"
	"sort"
)

// SectionKind classifies a section. The split between movable and
// immovable sections is the heart of the re-randomizable layout
// (Fig. 2b): .text/.data/.bss move on every re-randomization;
// .fixed.text (wrappers) and .rodata stay put.
type SectionKind uint8

const (
	SecText      SectionKind = iota // movable code
	SecFixedText                    // immovable glue/wrapper code
	SecROData                       // immovable read-only data
	SecData                         // movable initialized data
	SecBSS                          // movable zero-initialized data
)

var sectionNames = map[SectionKind]string{
	SecText: ".text", SecFixedText: ".fixed.text", SecROData: ".rodata",
	SecData: ".data", SecBSS: ".bss",
}

func (k SectionKind) String() string {
	if n, ok := sectionNames[k]; ok {
		return n
	}
	return fmt.Sprintf(".sec%d", uint8(k))
}

// Movable reports whether sections of this kind belong to the movable
// part of a re-randomizable module.
func (k SectionKind) Movable() bool {
	switch k {
	case SecText, SecData, SecBSS:
		return true
	}
	return false
}

// Executable reports whether the section holds code.
func (k SectionKind) Executable() bool { return k == SecText || k == SecFixedText }

// Writable reports whether the section must be mapped writable.
func (k SectionKind) Writable() bool { return k == SecData || k == SecBSS }

// Section is one module section.
type Section struct {
	Kind SectionKind
	Data []byte // nil for SecBSS
	Size uint64 // == len(Data) except for SecBSS
}

// Bind is a symbol's linkage visibility.
type Bind uint8

const (
	BindLocal  Bind = iota // static: not visible outside the module
	BindGlobal             // exported to the kernel symbol table
)

// SymKind distinguishes functions from data objects.
type SymKind uint8

const (
	SymFunc SymKind = iota
	SymObject
)

// KeySymbol is the pseudo-symbol whose GOT slot holds the return-address
// encryption key (paper Fig. 3b: "mov key@GOTPCREL(%rip), %r11"). It is
// never defined by any module or the kernel; the loader materializes it as
// a slot in the movable part's local GOT, and the re-randomizer rotates
// its value every period.
const KeySymbol = "__adelie_rerand_key"

// Undefined marks a symbol with no defining section — an import from the
// kernel (or another module), shown as U by nm (paper §4: "it should be
// very easy to detect external addresses since they are marked as U").
const Undefined = -1

// Symbol is one symbol-table entry.
type Symbol struct {
	Name    string
	Section int // index into Object.Sections, or Undefined
	Offset  uint64
	Size    uint64
	Bind    Bind
	Kind    SymKind
	// Wrapper marks symbols the plugin generated as immovable wrappers;
	// the loader exports these to the kernel instead of the real bodies.
	Wrapper bool
}

// IsUndefined reports whether the symbol is an import.
func (s *Symbol) IsUndefined() bool { return s.Section == Undefined }

// RelocType is a relocation kind, mirroring the x86-64 ELF relocations the
// paper's toolchain produces.
type RelocType uint8

const (
	// RelAbs64 stores the 64-bit absolute address of S+A. Only the
	// absolute (non-PIC) code model emits these for code; re-randomizable
	// modules may not contain any in movable sections.
	RelAbs64 RelocType = iota
	// RelPC32 stores the 32-bit value S+A-P (direct rel32 call/jmp or
	// RIP-relative data access to a symbol known to be within ±2 GB).
	RelPC32
	// RelGOTPCREL stores GOT(S)+A-P: the code reads the symbol's address
	// from a GOT slot near the instruction pointer. The loader chooses
	// which of the four GOTs receives the slot (§4.1).
	RelGOTPCREL
	// RelPLT32 stores PLT(S)+A-P: a call routed through a PLT stub. Used
	// when retpoline is enabled; the loader elides stubs for local calls.
	RelPLT32
)

var relocNames = map[RelocType]string{
	RelAbs64: "R_ABS64", RelPC32: "R_PC32",
	RelGOTPCREL: "R_GOTPCREL", RelPLT32: "R_PLT32",
}

func (t RelocType) String() string {
	if n, ok := relocNames[t]; ok {
		return n
	}
	return fmt.Sprintf("R_%d", uint8(t))
}

// Width returns the number of bytes the relocation patches.
func (t RelocType) Width() int {
	if t == RelAbs64 {
		return 8
	}
	return 4
}

// Reloc is one relocation record.
type Reloc struct {
	Section int // section whose bytes are patched
	Offset  uint64
	Type    RelocType
	Symbol  int // index into Object.Symbols
	Addend  int64
}

// Object is a relocatable AK64 module object — the output of the compiler
// (internal/kcc), optionally after the plugin transform (internal/plugin),
// and the input of the kernel loader.
type Object struct {
	Name     string
	Sections []Section
	Symbols  []Symbol
	Relocs   []Reloc

	// Rerandomizable marks modules built with the plugin: they carry the
	// movable/immovable split and the wrapper symbols, and the loader
	// gives them the four-GOT layout plus a registration with the
	// re-randomizer.
	Rerandomizable bool
	// PIC records the code model the object was compiled with. Non-PIC
	// objects contain RelAbs64 relocations and must be placed within
	// ±2 GB of the kernel (the vanilla Linux constraint).
	PIC bool
	// Retpoline records whether indirect branches were compiled through
	// retpoline thunks / PLT stubs.
	Retpoline bool

	symIndex map[string]int
}

// New returns an empty object with the given name.
func New(name string) *Object {
	return &Object{Name: name, symIndex: make(map[string]int)}
}

// AddSection appends a section and returns its index.
func (o *Object) AddSection(kind SectionKind, data []byte) int {
	o.Sections = append(o.Sections, Section{Kind: kind, Data: data, Size: uint64(len(data))})
	return len(o.Sections) - 1
}

// AddBSS appends a zero-initialized section of the given size.
func (o *Object) AddBSS(size uint64) int {
	o.Sections = append(o.Sections, Section{Kind: SecBSS, Size: size})
	return len(o.Sections) - 1
}

// AddSymbol appends a symbol and returns its index. Duplicate defined
// names are rejected; an undefined symbol is upgraded in place if a
// definition with the same name arrives later.
func (o *Object) AddSymbol(s Symbol) (int, error) {
	if o.symIndex == nil {
		o.symIndex = make(map[string]int)
	}
	if prev, ok := o.symIndex[s.Name]; ok {
		p := &o.Symbols[prev]
		switch {
		case p.IsUndefined() && !s.IsUndefined():
			*p = s
			return prev, nil
		case !p.IsUndefined() && s.IsUndefined():
			return prev, nil
		case p.IsUndefined() && s.IsUndefined():
			return prev, nil
		default:
			return 0, fmt.Errorf("elfmod: duplicate symbol %q in %s", s.Name, o.Name)
		}
	}
	o.Symbols = append(o.Symbols, s)
	o.symIndex[s.Name] = len(o.Symbols) - 1
	return len(o.Symbols) - 1, nil
}

// SymbolRef returns the index of the named symbol, adding an undefined
// placeholder if it is not present yet.
func (o *Object) SymbolRef(name string) int {
	if o.symIndex == nil {
		o.symIndex = make(map[string]int)
	}
	if i, ok := o.symIndex[name]; ok {
		return i
	}
	o.Symbols = append(o.Symbols, Symbol{Name: name, Section: Undefined, Bind: BindGlobal})
	o.symIndex[name] = len(o.Symbols) - 1
	return len(o.Symbols) - 1
}

// Lookup returns the symbol with the given name.
func (o *Object) Lookup(name string) (*Symbol, bool) {
	if i, ok := o.symIndex[name]; ok {
		return &o.Symbols[i], true
	}
	return nil, false
}

// AddReloc appends a relocation record.
func (o *Object) AddReloc(r Reloc) { o.Relocs = append(o.Relocs, r) }

// Undefineds returns the names of all imported symbols, sorted.
func (o *Object) Undefineds() []string {
	var out []string
	for i := range o.Symbols {
		if o.Symbols[i].IsUndefined() {
			out = append(out, o.Symbols[i].Name)
		}
	}
	sort.Strings(out)
	return out
}

// SectionOf returns the first section of the given kind, or nil.
func (o *Object) SectionOf(kind SectionKind) (int, *Section) {
	for i := range o.Sections {
		if o.Sections[i].Kind == kind {
			return i, &o.Sections[i]
		}
	}
	return -1, nil
}

// TotalSize returns the byte footprint of the object image: section data
// plus BSS. This is the quantity Fig. 5a compares between PIC and non-PIC
// builds (GOT/PLT and longer encodings show up here).
func (o *Object) TotalSize() uint64 {
	var n uint64
	for i := range o.Sections {
		n += o.Sections[i].Size
	}
	return n
}

// Validate checks internal consistency: indices in range, symbol offsets
// inside their sections, relocations patching bytes that exist, and the
// re-randomizable constraint that movable sections carry no absolute
// relocations (they would dangle after the first remap).
func (o *Object) Validate() error {
	for i := range o.Symbols {
		s := &o.Symbols[i]
		if s.IsUndefined() {
			continue
		}
		if s.Section < 0 || s.Section >= len(o.Sections) {
			return fmt.Errorf("elfmod: %s: symbol %q references section %d of %d",
				o.Name, s.Name, s.Section, len(o.Sections))
		}
		sec := &o.Sections[s.Section]
		if s.Offset > sec.Size {
			return fmt.Errorf("elfmod: %s: symbol %q offset %d outside %s (size %d)",
				o.Name, s.Name, s.Offset, sec.Kind, sec.Size)
		}
	}
	for i, r := range o.Relocs {
		if r.Section < 0 || r.Section >= len(o.Sections) {
			return fmt.Errorf("elfmod: %s: reloc %d references section %d", o.Name, i, r.Section)
		}
		if r.Symbol < 0 || r.Symbol >= len(o.Symbols) {
			return fmt.Errorf("elfmod: %s: reloc %d references symbol %d", o.Name, i, r.Symbol)
		}
		sec := &o.Sections[r.Section]
		if sec.Kind == SecBSS {
			return fmt.Errorf("elfmod: %s: reloc %d patches .bss", o.Name, i)
		}
		if r.Offset+uint64(r.Type.Width()) > uint64(len(sec.Data)) {
			return fmt.Errorf("elfmod: %s: reloc %d at %d overruns %s (len %d)",
				o.Name, i, r.Offset, sec.Kind, len(sec.Data))
		}
		if o.Rerandomizable && r.Type == RelAbs64 && sec.Kind.Movable() && sec.Kind.Executable() {
			return fmt.Errorf("elfmod: %s: absolute relocation in movable code (reloc %d)", o.Name, i)
		}
	}
	return nil
}

// rebuildIndex reconstructs the name index after decoding.
func (o *Object) rebuildIndex() {
	o.symIndex = make(map[string]int, len(o.Symbols))
	for i := range o.Symbols {
		o.symIndex[o.Symbols[i].Name] = i
	}
}
