package elfmod

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// sampleObject builds a small but representative re-randomizable module.
func sampleObject(t *testing.T) *Object {
	t.Helper()
	o := New("e1000e")
	o.PIC = true
	o.Rerandomizable = true
	text := o.AddSection(SecText, []byte{0x90, 0x90, 0xC3, 0x90})
	fixed := o.AddSection(SecFixedText, []byte{0x90, 0xC3})
	data := o.AddSection(SecData, make([]byte, 16))
	o.AddBSS(64)
	if _, err := o.AddSymbol(Symbol{Name: "xmit_frame.real", Section: text, Offset: 0, Size: 3, Bind: BindLocal, Kind: SymFunc}); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AddSymbol(Symbol{Name: "xmit_frame", Section: fixed, Offset: 0, Size: 2, Bind: BindGlobal, Kind: SymFunc, Wrapper: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AddSymbol(Symbol{Name: "tx_ring", Section: data, Offset: 0, Size: 16, Bind: BindLocal, Kind: SymObject}); err != nil {
		t.Fatal(err)
	}
	kmalloc := o.SymbolRef("kmalloc") // undefined import
	o.AddReloc(Reloc{Section: text, Offset: 0, Type: RelGOTPCREL, Symbol: kmalloc, Addend: -4})
	return o
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	o := sampleObject(t)
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(o.Encode())
	if err != nil {
		t.Fatal(err)
	}
	o.symIndex = nil
	got.symIndex = nil
	if !reflect.DeepEqual(o, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, o)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	if _, err := Decode([]byte("NOTAMODULE")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	enc := sampleObject(t).Encode()
	for _, n := range []int{len(enc) / 4, len(enc) / 2, len(enc) - 1} {
		if _, err := Decode(enc[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestDecodeRejectsCorruptLengths(t *testing.T) {
	enc := sampleObject(t).Encode()
	// Flip bytes one at a time; Decode must return an error or a valid
	// object, never panic. (Validation catches most structural damage.)
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0xFF
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on corruption at byte %d: %v", i, r)
				}
			}()
			_, _ = Decode(mut)
		}()
	}
}

func TestQuickDecodeArbitraryBytes(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Decode(b) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAddSymbolDuplicateDefined(t *testing.T) {
	o := New("m")
	sec := o.AddSection(SecText, []byte{0xC3})
	if _, err := o.AddSymbol(Symbol{Name: "f", Section: sec}); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AddSymbol(Symbol{Name: "f", Section: sec}); err == nil {
		t.Fatal("duplicate definition accepted")
	}
}

func TestAddSymbolUpgradesUndefined(t *testing.T) {
	o := New("m")
	idx := o.SymbolRef("f") // undefined placeholder
	sec := o.AddSection(SecText, []byte{0xC3})
	idx2, err := o.AddSymbol(Symbol{Name: "f", Section: sec, Bind: BindGlobal})
	if err != nil {
		t.Fatal(err)
	}
	if idx2 != idx {
		t.Fatalf("definition got new index %d, want upgrade of %d", idx2, idx)
	}
	if s, _ := o.Lookup("f"); s.IsUndefined() {
		t.Fatal("symbol still undefined after definition")
	}
	// A later undefined reference resolves to the existing definition.
	if i := o.SymbolRef("f"); i != idx {
		t.Fatalf("SymbolRef returned %d, want %d", i, idx)
	}
}

func TestUndefineds(t *testing.T) {
	o := sampleObject(t)
	o.SymbolRef("printk")
	got := o.Undefineds()
	want := []string{"kmalloc", "printk"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Undefineds = %v, want %v", got, want)
	}
}

func TestValidateCatchesBadSymbolSection(t *testing.T) {
	o := New("m")
	o.AddSection(SecText, []byte{0xC3})
	o.Symbols = append(o.Symbols, Symbol{Name: "f", Section: 7})
	if err := o.Validate(); err == nil {
		t.Fatal("symbol with out-of-range section accepted")
	}
}

func TestValidateCatchesRelocOverrun(t *testing.T) {
	o := New("m")
	sec := o.AddSection(SecText, []byte{0xC3, 0x90})
	sym := o.SymbolRef("x")
	o.AddReloc(Reloc{Section: sec, Offset: 1, Type: RelPC32, Symbol: sym})
	if err := o.Validate(); err == nil {
		t.Fatal("reloc overrunning section accepted")
	}
}

func TestValidateCatchesBSSReloc(t *testing.T) {
	o := New("m")
	bss := o.AddBSS(32)
	sym := o.SymbolRef("x")
	o.AddReloc(Reloc{Section: bss, Offset: 0, Type: RelAbs64, Symbol: sym})
	if err := o.Validate(); err == nil {
		t.Fatal("reloc into .bss accepted")
	}
}

func TestValidateRejectsAbs64InMovableCode(t *testing.T) {
	// The defining constraint of re-randomizable modules: movable code
	// cannot contain absolute addresses, or the first remap would leave
	// dangling pointers (paper §3.2 "Performance" goal).
	o := New("m")
	o.Rerandomizable = true
	sec := o.AddSection(SecText, make([]byte, 16))
	sym := o.SymbolRef("x")
	o.AddReloc(Reloc{Section: sec, Offset: 0, Type: RelAbs64, Symbol: sym})
	if err := o.Validate(); err == nil || !strings.Contains(err.Error(), "absolute relocation in movable") {
		t.Fatalf("got %v, want movable-abs64 rejection", err)
	}
	// The same relocation in a non-rerandomizable module is fine.
	o.Rerandomizable = false
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSectionKindProperties(t *testing.T) {
	movable := map[SectionKind]bool{SecText: true, SecData: true, SecBSS: true}
	exec := map[SectionKind]bool{SecText: true, SecFixedText: true}
	writable := map[SectionKind]bool{SecData: true, SecBSS: true}
	for _, k := range []SectionKind{SecText, SecFixedText, SecROData, SecData, SecBSS} {
		if k.Movable() != movable[k] {
			t.Errorf("%v.Movable() = %v", k, k.Movable())
		}
		if k.Executable() != exec[k] {
			t.Errorf("%v.Executable() = %v", k, k.Executable())
		}
		if k.Writable() != writable[k] {
			t.Errorf("%v.Writable() = %v", k, k.Writable())
		}
	}
}

func TestTotalSizeIncludesBSS(t *testing.T) {
	o := New("m")
	o.AddSection(SecText, make([]byte, 100))
	o.AddBSS(50)
	if got := o.TotalSize(); got != 150 {
		t.Fatalf("TotalSize = %d, want 150", got)
	}
}

func TestSectionOf(t *testing.T) {
	o := sampleObject(t)
	i, s := o.SectionOf(SecFixedText)
	if s == nil || s.Kind != SecFixedText || i != 1 {
		t.Fatalf("SectionOf(.fixed.text) = (%d, %v)", i, s)
	}
	if _, s := o.SectionOf(SecROData); s != nil {
		t.Fatal("found nonexistent .rodata")
	}
}

func TestRelocWidth(t *testing.T) {
	if RelAbs64.Width() != 8 {
		t.Fatal("ABS64 must patch 8 bytes")
	}
	for _, rt := range []RelocType{RelPC32, RelGOTPCREL, RelPLT32} {
		if rt.Width() != 4 {
			t.Fatalf("%v must patch 4 bytes", rt)
		}
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	o := New("bench")
	o.PIC = true
	text := o.AddSection(SecText, make([]byte, 8192))
	for i := 0; i < 100; i++ {
		sym := o.SymbolRef("sym" + string(rune('a'+i%26)) + string(rune('0'+i%10)))
		o.AddReloc(Reloc{Section: text, Offset: uint64(i * 16), Type: RelGOTPCREL, Symbol: sym})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := o.Encode()
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
