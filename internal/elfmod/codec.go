package elfmod

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary format:
//
//	magic "AK64MOD1" | flags u8 | name | sections | symbols | relocs
//
// with varint-style length-prefixed strings and byte slices. The format
// exists so module objects can be written to disk and inspected by the
// cmd/gadgetscan tool, and so the loader's input is a byte stream rather
// than shared Go pointers — the same trust boundary a real .ko crosses.

var magic = []byte("AK64MOD1")

const (
	flagRerand    = 1 << 0
	flagPIC       = 1 << 1
	flagRetpoline = 1 << 2
)

// Encode serializes the object.
func (o *Object) Encode() []byte {
	var b bytes.Buffer
	b.Write(magic)
	var flags byte
	if o.Rerandomizable {
		flags |= flagRerand
	}
	if o.PIC {
		flags |= flagPIC
	}
	if o.Retpoline {
		flags |= flagRetpoline
	}
	b.WriteByte(flags)
	writeString(&b, o.Name)

	writeUvarint(&b, uint64(len(o.Sections)))
	for i := range o.Sections {
		s := &o.Sections[i]
		b.WriteByte(byte(s.Kind))
		writeUvarint(&b, s.Size)
		if s.Kind != SecBSS {
			writeBytes(&b, s.Data)
		}
	}

	writeUvarint(&b, uint64(len(o.Symbols)))
	for i := range o.Symbols {
		s := &o.Symbols[i]
		writeString(&b, s.Name)
		writeVarint(&b, int64(s.Section))
		writeUvarint(&b, s.Offset)
		writeUvarint(&b, s.Size)
		b.WriteByte(byte(s.Bind))
		b.WriteByte(byte(s.Kind))
		if s.Wrapper {
			b.WriteByte(1)
		} else {
			b.WriteByte(0)
		}
	}

	writeUvarint(&b, uint64(len(o.Relocs)))
	for _, r := range o.Relocs {
		writeVarint(&b, int64(r.Section))
		writeUvarint(&b, r.Offset)
		b.WriteByte(byte(r.Type))
		writeVarint(&b, int64(r.Symbol))
		writeVarint(&b, r.Addend)
	}
	return b.Bytes()
}

// Decode parses an object previously produced by Encode and validates it.
func Decode(data []byte) (*Object, error) {
	r := bytes.NewReader(data)
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(r, hdr); err != nil || !bytes.Equal(hdr, magic) {
		return nil, fmt.Errorf("elfmod: bad magic")
	}
	flags, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("elfmod: truncated flags")
	}
	o := &Object{
		Rerandomizable: flags&flagRerand != 0,
		PIC:            flags&flagPIC != 0,
		Retpoline:      flags&flagRetpoline != 0,
	}
	if o.Name, err = readString(r); err != nil {
		return nil, err
	}

	nsec, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if nsec > 1<<16 {
		return nil, fmt.Errorf("elfmod: unreasonable section count %d", nsec)
	}
	o.Sections = make([]Section, nsec)
	for i := range o.Sections {
		kind, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("elfmod: truncated section %d", i)
		}
		o.Sections[i].Kind = SectionKind(kind)
		if o.Sections[i].Size, err = readUvarint(r); err != nil {
			return nil, err
		}
		if o.Sections[i].Kind != SecBSS {
			if o.Sections[i].Data, err = readBytes(r); err != nil {
				return nil, err
			}
			if uint64(len(o.Sections[i].Data)) != o.Sections[i].Size {
				return nil, fmt.Errorf("elfmod: section %d size mismatch", i)
			}
		}
	}

	nsym, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if nsym > 1<<20 {
		return nil, fmt.Errorf("elfmod: unreasonable symbol count %d", nsym)
	}
	o.Symbols = make([]Symbol, nsym)
	for i := range o.Symbols {
		s := &o.Symbols[i]
		if s.Name, err = readString(r); err != nil {
			return nil, err
		}
		sec, err := readVarint(r)
		if err != nil {
			return nil, err
		}
		s.Section = int(sec)
		if s.Offset, err = readUvarint(r); err != nil {
			return nil, err
		}
		if s.Size, err = readUvarint(r); err != nil {
			return nil, err
		}
		bind, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		s.Bind = Bind(bind)
		kind, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		s.Kind = SymKind(kind)
		w, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		s.Wrapper = w != 0
	}

	nrel, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if nrel > 1<<24 {
		return nil, fmt.Errorf("elfmod: unreasonable reloc count %d", nrel)
	}
	o.Relocs = make([]Reloc, nrel)
	for i := range o.Relocs {
		rl := &o.Relocs[i]
		sec, err := readVarint(r)
		if err != nil {
			return nil, err
		}
		rl.Section = int(sec)
		if rl.Offset, err = readUvarint(r); err != nil {
			return nil, err
		}
		typ, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		rl.Type = RelocType(typ)
		sym, err := readVarint(r)
		if err != nil {
			return nil, err
		}
		rl.Symbol = int(sym)
		if rl.Addend, err = readVarint(r); err != nil {
			return nil, err
		}
	}
	o.rebuildIndex()
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}

func writeUvarint(b *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	b.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

func writeVarint(b *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	b.Write(tmp[:binary.PutVarint(tmp[:], v)])
}

func writeString(b *bytes.Buffer, s string) {
	writeUvarint(b, uint64(len(s)))
	b.WriteString(s)
}

func writeBytes(b *bytes.Buffer, p []byte) {
	writeUvarint(b, uint64(len(p)))
	b.Write(p)
}

func readUvarint(r *bytes.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("elfmod: truncated uvarint: %w", err)
	}
	return v, nil
}

func readVarint(r *bytes.Reader) (int64, error) {
	v, err := binary.ReadVarint(r)
	if err != nil {
		return 0, fmt.Errorf("elfmod: truncated varint: %w", err)
	}
	return v, nil
}

func readString(r *bytes.Reader) (string, error) {
	b, err := readBytes(r)
	return string(b), err
}

func readBytes(r *bytes.Reader) ([]byte, error) {
	n, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) {
		return nil, fmt.Errorf("elfmod: length %d exceeds remaining %d", n, r.Len())
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}
