// Package stackpool implements Adelie's per-CPU lock-free LIFO lists of
// kernel stacks (paper §3.4, "Stacks"). Wrapper functions dequeue a stack
// on entry and return it on exit; the re-randomizer periodically replaces
// every CPU's list head with a fresh empty list and garbage-collects the
// old stacks once it is safe (through SMR, like old address ranges).
//
// The LIFO is a Treiber stack with an ABA tag packed next to a node index
// in a single 64-bit head word, mirroring the paper's "atomically replaced
// head" design. Contention is low by construction — each CPU has its own
// list and only the re-randomizer's wholesale swap competes with it.
package stackpool

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// AllocFunc allocates a new stack and returns its top-of-stack address.
type AllocFunc func() (uint64, error)

// FreeFunc releases a stack by its top-of-stack address.
type FreeFunc func(top uint64) error

// head word layout: tag(32) | nodeIndex+1(32); index 0 means empty.
const idxMask = 0xFFFFFFFF

type node struct {
	top  uint64
	next uint32 // nodeIndex+1, 0 = end of list
}

// Stats mirrors the dmesg counters of the paper's artifact
// ("Stack Alloc", "Stack Free", "Stack Delta").
type Stats struct {
	Allocs int64 // stacks allocated from the kernel
	Frees  int64 // stacks returned to the kernel
	Gets   int64 // wrapper entries (pops)
	Puts   int64 // wrapper exits (pushes)
}

// Delta returns Allocs - Frees.
func (s Stats) Delta() int64 { return s.Allocs - s.Frees }

// Pool is the set of per-CPU stack lists.
type Pool struct {
	alloc AllocFunc
	free  FreeFunc
	heads []atomic.Uint64

	mu       sync.Mutex
	nodes    []node
	freeList []uint32 // recycled node indexes

	allocs atomic.Int64
	frees  atomic.Int64
	gets   atomic.Int64
	puts   atomic.Int64
}

// New returns a pool with one list per CPU.
func New(ncpu int, alloc AllocFunc, free FreeFunc) *Pool {
	if ncpu <= 0 {
		panic("stackpool: need at least one CPU")
	}
	return &Pool{alloc: alloc, free: free, heads: make([]atomic.Uint64, ncpu)}
}

// newNode returns a node index, recycling retired ones.
func (p *Pool) newNode(top uint64) uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.freeList); n > 0 {
		idx := p.freeList[n-1]
		p.freeList = p.freeList[:n-1]
		p.nodes[idx] = node{top: top}
		return idx
	}
	p.nodes = append(p.nodes, node{top: top})
	return uint32(len(p.nodes) - 1)
}

// nodeCopy reads a node snapshot under the registry lock. The head CAS
// validates the snapshot: if the tag has not moved, the node was still
// ours when we read it.
func (p *Pool) nodeCopy(idx uint32) node {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nodes[idx]
}

// setNext updates a node's next link under the registry lock.
func (p *Pool) setNext(idx, next uint32) {
	p.mu.Lock()
	p.nodes[idx].next = next
	p.mu.Unlock()
}

func (p *Pool) recycle(idx uint32) {
	p.mu.Lock()
	p.freeList = append(p.freeList, idx)
	p.mu.Unlock()
}

// Get pops a stack from cpu's list, allocating a fresh one if the list is
// empty (stacks are "allocated on demand as needed", §3.4).
func (p *Pool) Get(cpu int) (uint64, error) {
	p.gets.Add(1)
	h := &p.heads[cpu]
	for {
		old := h.Load()
		idx := uint32(old & idxMask)
		if idx == 0 {
			p.allocs.Add(1)
			return p.alloc()
		}
		n := p.nodeCopy(idx - 1)
		tag := (old>>32 + 1) << 32
		if h.CompareAndSwap(old, tag|uint64(n.next)) {
			p.recycle(idx - 1)
			return n.top, nil
		}
	}
}

// Put pushes a stack back onto cpu's list.
func (p *Pool) Put(cpu int, top uint64) {
	p.puts.Add(1)
	idx := p.newNode(top)
	h := &p.heads[cpu]
	for {
		old := h.Load()
		p.setNext(idx, uint32(old&idxMask))
		tag := (old>>32 + 1) << 32
		if h.CompareAndSwap(old, tag|uint64(idx+1)) {
			return
		}
	}
}

// SwapAll atomically replaces every CPU's list head with an empty list and
// returns the stacks that were queued — the re-randomizer's "generate new
// LIFO lists for each CPU" step. The caller frees them when safe (via
// SMR); Release does the freeing.
func (p *Pool) SwapAll() []uint64 {
	var out []uint64
	for i := range p.heads {
		h := &p.heads[i]
		var old uint64
		for {
			old = h.Load()
			tag := (old>>32 + 1) << 32
			if h.CompareAndSwap(old, tag) { // empty list, bumped tag
				break
			}
		}
		idx := uint32(old & idxMask)
		for idx != 0 {
			n := p.nodeCopy(idx - 1)
			out = append(out, n.top)
			p.recycle(idx - 1)
			idx = n.next
		}
	}
	return out
}

// Release frees stacks previously returned by SwapAll.
func (p *Pool) Release(tops []uint64) error {
	for _, t := range tops {
		if err := p.free(t); err != nil {
			return fmt.Errorf("stackpool: releasing stack %#x: %w", t, err)
		}
		p.frees.Add(1)
	}
	return nil
}

// Clone returns a copy of the pool for a forked machine: same queued
// stacks (the top-of-stack VAs are valid in the fork's address space —
// forking preserves all mappings), same node registry, same counters,
// but allocating and freeing through the fork kernel's callbacks. The
// template must be quiescent (no concurrent Get/Put) while cloning.
func (p *Pool) Clone(alloc AllocFunc, free FreeFunc) *Pool {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := &Pool{
		alloc:    alloc,
		free:     free,
		heads:    make([]atomic.Uint64, len(p.heads)),
		nodes:    append([]node(nil), p.nodes...),
		freeList: append([]uint32(nil), p.freeList...),
	}
	for i := range p.heads {
		n.heads[i].Store(p.heads[i].Load())
	}
	n.allocs.Store(p.allocs.Load())
	n.frees.Store(p.frees.Load())
	n.gets.Store(p.gets.Load())
	n.puts.Store(p.puts.Load())
	return n
}

// Stats returns cumulative counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Allocs: p.allocs.Load(), Frees: p.frees.Load(),
		Gets: p.gets.Load(), Puts: p.puts.Load(),
	}
}
