package stackpool

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// fakeAlloc hands out distinct "stack tops" and tracks liveness.
type fakeAlloc struct {
	mu   sync.Mutex
	next uint64
	live map[uint64]bool
}

func newFakeAlloc() *fakeAlloc {
	return &fakeAlloc{next: 0x1000, live: map[uint64]bool{}}
}

func (f *fakeAlloc) alloc() (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.next += 0x10000
	f.live[f.next] = true
	return f.next, nil
}

func (f *fakeAlloc) free(top uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.live[top] {
		panic("free of unknown or double-freed stack")
	}
	delete(f.live, top)
	return nil
}

func (f *fakeAlloc) liveCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.live)
}

func TestGetAllocatesOnEmpty(t *testing.T) {
	fa := newFakeAlloc()
	p := New(2, fa.alloc, fa.free)
	top, err := p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if top == 0 {
		t.Fatal("no stack returned")
	}
	if s := p.Stats(); s.Allocs != 1 || s.Gets != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPutThenGetReusesLIFO(t *testing.T) {
	fa := newFakeAlloc()
	p := New(1, fa.alloc, fa.free)
	a, _ := p.Get(0)
	b, _ := p.Get(0)
	p.Put(0, a)
	p.Put(0, b)
	// LIFO: last put comes back first.
	got1, _ := p.Get(0)
	got2, _ := p.Get(0)
	if got1 != b || got2 != a {
		t.Fatalf("got (%#x,%#x), want LIFO (%#x,%#x)", got1, got2, b, a)
	}
	if s := p.Stats(); s.Allocs != 2 {
		t.Fatalf("allocs = %d, want 2 (reuse, not realloc)", s.Allocs)
	}
}

func TestPerCPUListsAreIndependent(t *testing.T) {
	fa := newFakeAlloc()
	p := New(2, fa.alloc, fa.free)
	a, _ := p.Get(0)
	p.Put(0, a)
	// CPU 1's list is empty: must allocate fresh.
	b, _ := p.Get(1)
	if b == a {
		t.Fatal("CPU 1 stole CPU 0's stack")
	}
}

func TestSwapAllDrainsAndRelease(t *testing.T) {
	fa := newFakeAlloc()
	p := New(4, fa.alloc, fa.free)
	var tops []uint64
	for cpu := 0; cpu < 4; cpu++ {
		for i := 0; i < 3; i++ {
			s, _ := p.Get(cpu)
			tops = append(tops, s)
		}
	}
	for i, s := range tops {
		p.Put(i%4, s)
	}
	old := p.SwapAll()
	if len(old) != 12 {
		t.Fatalf("SwapAll returned %d stacks, want 12", len(old))
	}
	// Lists are now empty: next Get allocates.
	allocsBefore := p.Stats().Allocs
	if _, err := p.Get(0); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Allocs != allocsBefore+1 {
		t.Fatal("post-swap Get should allocate")
	}
	if err := p.Release(old); err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.Frees != 12 {
		t.Fatalf("frees = %d, want 12", s.Frees)
	}
}

func TestStatsDelta(t *testing.T) {
	fa := newFakeAlloc()
	p := New(1, fa.alloc, fa.free)
	s1, _ := p.Get(0)
	s2, _ := p.Get(0)
	p.Put(0, s1)
	p.Put(0, s2)
	old := p.SwapAll()
	if err := p.Release(old); err != nil {
		t.Fatal(err)
	}
	if d := p.Stats().Delta(); d != 0 {
		t.Fatalf("delta = %d, want 0 (as in the artifact's dmesg)", d)
	}
}

// TestConcurrentGetPut hammers one CPU list from many goroutines while a
// "re-randomizer" goroutine swaps lists — the exact concurrency pattern of
// the paper's design.
func TestConcurrentGetPut(t *testing.T) {
	fa := newFakeAlloc()
	const ncpu = 4
	p := New(ncpu, fa.alloc, fa.free)
	var stop atomic.Bool
	var workers, swapper sync.WaitGroup
	for g := 0; g < 8; g++ {
		workers.Add(1)
		go func(cpu int) {
			defer workers.Done()
			for i := 0; i < 3000; i++ {
				top, err := p.Get(cpu)
				if err != nil {
					t.Error(err)
					return
				}
				if top == 0 {
					t.Error("zero stack")
					return
				}
				p.Put(cpu, top)
			}
		}(g % ncpu)
	}
	var swapped []uint64
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for !stop.Load() {
			swapped = append(swapped, p.SwapAll()...)
		}
	}()
	workers.Wait()
	stop.Store(true)
	swapper.Wait()
	// Collect the rest.
	swapped = append(swapped, p.SwapAll()...)
	// No stack may appear twice (no double-pop / lost update).
	seen := map[uint64]bool{}
	for _, s := range swapped {
		if seen[s] {
			t.Fatalf("stack %#x drained twice", s)
		}
		seen[s] = true
	}
	if err := p.Release(swapped); err != nil {
		t.Fatal(err) // fakeAlloc panics on double free
	}
}

// TestQuickNoLostStacks property: after any sequence of get/put/swap, the
// number of live stacks equals allocs - frees, and draining everything
// releases all of them.
func TestQuickNoLostStacks(t *testing.T) {
	f := func(ops []uint8) bool {
		fa := newFakeAlloc()
		p := New(2, fa.alloc, fa.free)
		held := [][]uint64{nil, nil}
		for _, op := range ops {
			cpu := int(op>>1) % 2
			switch op % 3 {
			case 0:
				s, err := p.Get(cpu)
				if err != nil {
					return false
				}
				held[cpu] = append(held[cpu], s)
			case 1:
				if n := len(held[cpu]); n > 0 {
					p.Put(cpu, held[cpu][n-1])
					held[cpu] = held[cpu][:n-1]
				}
			case 2:
				if err := p.Release(p.SwapAll()); err != nil {
					return false
				}
			}
		}
		// Drain: return held stacks, swap, release.
		for cpu, hs := range held {
			for _, s := range hs {
				p.Put(cpu, s)
			}
		}
		if err := p.Release(p.SwapAll()); err != nil {
			return false
		}
		st := p.Stats()
		return fa.liveCount() == 0 && st.Delta() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGetPut(b *testing.B) {
	fa := newFakeAlloc()
	p := New(1, fa.alloc, fa.free)
	s, _ := p.Get(0)
	p.Put(0, s)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		top, err := p.Get(0)
		if err != nil {
			b.Fatal(err)
		}
		p.Put(0, top)
	}
}
