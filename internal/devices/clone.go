package devices

import "adelie/internal/mm"

// Device clones for machine fork (sim.Machine.Fork). Each CloneFor
// deep-copies the device's state so the fork's I/O diverges independently
// from the template's, DMA-attached to the fork's address space. The
// template must be quiescent (no in-flight MMIO, no open epoch) —
// sim.Machine.Snapshot guarantees it by freezing the machine between
// engine runs.

// CloneFor returns a copy of the controller attached to as: media,
// DRAM-cache contents and FIFO order, queue registers and counters all
// carry over, so the clone's future hit/miss latency sequence matches
// what the template's would have been.
func (d *NVMe) CloneFor(as *mm.AddressSpace) *NVMe {
	d.mu.Lock()
	defer d.mu.Unlock()
	nd := &NVMe{
		as:           as,
		sqBase:       d.sqBase,
		cqBase:       d.cqBase,
		sqHead:       d.sqHead,
		lastLatency:  d.lastLatency,
		media:        make(map[uint64][]byte, len(d.media)),
		cachedLBA:    make(map[uint64]bool, len(d.cachedLBA)),
		cacheFIFO:    append([]uint64(nil), d.cacheFIFO...),
		cacheCap:     d.cacheCap,
		pendingSet:   map[uint64]bool{},
		intEnabled:   d.intEnabled,
		Reads:        d.Reads,
		Writes:       d.Writes,
		CacheHits:    d.CacheHits,
		IRQsAsserted: d.IRQsAsserted,
	}
	for lba, blk := range d.media {
		nd.media[lba] = append([]byte(nil), blk...)
	}
	for lba := range d.cachedLBA {
		nd.cachedLBA[lba] = true
	}
	return nd
}

// CloneFor returns a copy of the adapter attached to as. The peer link
// and IRQ wiring are machine-level topology and are NOT copied: the bus
// clone re-runs ConnectVectors with the fork's interrupt controller,
// and sim.Machine.Fork re-Connects the cloned server/load-generator
// pair. Per-queue ring, mask and coalescing state carries over.
func (n *NIC) CloneFor(as *mm.AddressSpace) *NIC {
	n.mu.Lock()
	defer n.mu.Unlock()
	nn := &NIC{
		as:           as,
		Name:         n.Name,
		txRing:       n.txRing,
		ringLen:      n.ringLen,
		hostRxCap:    n.hostRxCap,
		TxFrames:     n.TxFrames,
		RxFrames:     n.RxFrames,
		TxBytes:      n.TxBytes,
		RxBytes:      n.RxBytes,
		Dropped:      n.Dropped,
		HostConsumed: n.HostConsumed,
		IRQsAsserted: n.IRQsAsserted,
	}
	nn.queues = make([]*nicQueue, len(n.queues))
	for i, q := range n.queues {
		cq := *q
		cq.irq = nil // rewired by the bus clone
		nn.queues[i] = &cq
	}
	if n.hostRx != nil {
		nn.hostRx = make([][]byte, len(n.hostRx))
		for i, f := range n.hostRx {
			nn.hostRx[i] = append([]byte(nil), f...)
		}
	}
	return nn
}

// Clone returns a copy of the controller (no DMA state to re-attach).
func (x *XHCI) Clone() *XHCI {
	x.mu.Lock()
	defer x.mu.Unlock()
	return &XHCI{Polls: x.Polls, connected: x.connected}
}
