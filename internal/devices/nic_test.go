package devices

import (
	"fmt"
	"testing"

	"adelie/internal/mm"
)

// ringNIC maps a loopback NIC with an RX ring of ringLen posted buffers.
func ringNIC(t *testing.T, ringLen uint64) (*mm.AddressSpace, *NIC, uint64) {
	t.Helper()
	as, base := testAS(t)
	n := NewNIC(as)
	rxRing := base + 0x1000
	n.MMIOWrite(NICRegRxRing, rxRing)
	n.MMIOWrite(NICRegRingLen, ringLen)
	for i := uint64(0); i < ringLen; i++ {
		if err := as.Write64(rxRing+i*16, base+0x4000+i*0x800); err != nil {
			t.Fatal(err)
		}
	}
	return as, n, rxRing
}

// consume mimics poll_rx: read the slot's length and mark it free.
func consume(t *testing.T, as *mm.AddressSpace, rxRing, slot uint64) uint64 {
	t.Helper()
	length, err := as.Read64(rxRing + slot*16 + 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Write64(rxRing+slot*16+8, 0); err != nil {
		t.Fatal(err)
	}
	return length
}

// TestNICRingWrap delivers more frames than the ring holds, draining as
// it goes: rxTail must wrap and reuse freed slots with no drops.
func TestNICRingWrap(t *testing.T) {
	const ringLen = 4
	as, n, rxRing := ringNIC(t, ringLen)
	for i := 0; i < 2*ringLen+1; i++ {
		payload := fmt.Sprintf("frame-%02d", i)
		n.Deliver([]byte(payload))
		slot := uint64(i % ringLen)
		if got := consume(t, as, rxRing, slot); got != uint64(len(payload)) {
			t.Fatalf("frame %d: slot %d length = %d, want %d", i, slot, got, len(payload))
		}
		buf, _ := as.Read64(rxRing + slot*16)
		data, _ := as.ReadBytes(buf, len(payload))
		if string(data) != payload {
			t.Fatalf("frame %d: data = %q, want %q", i, data, payload)
		}
	}
	if n.Dropped != 0 {
		t.Fatalf("dropped %d frames on a drained ring", n.Dropped)
	}
	if n.RxFrames != 2*ringLen+1 {
		t.Fatalf("rx frames = %d, want %d", n.RxFrames, 2*ringLen+1)
	}
	if head := n.MMIORead(NICRegRxHead); head != 2*ringLen+1 {
		t.Fatalf("rx head = %d, want %d", head, 2*ringLen+1)
	}
}

// TestNICOverrunDropsInsteadOfOverwriting fills the ring without
// consuming: the overflow frame must be dropped and the oldest
// unconsumed frame left intact, and delivery must resume on the same
// slot once the driver drains it.
func TestNICOverrunDropsInsteadOfOverwriting(t *testing.T) {
	const ringLen = 4
	as, n, rxRing := ringNIC(t, ringLen)
	for i := 0; i < ringLen; i++ {
		n.Deliver([]byte(fmt.Sprintf("keep-%d", i)))
	}
	n.Deliver([]byte("overrun"))
	if n.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", n.Dropped)
	}
	if n.RxFrames != ringLen {
		t.Fatalf("rx frames = %d, want %d", n.RxFrames, ringLen)
	}
	// Slot 0 still holds the first frame, not "overrun".
	buf, _ := as.Read64(rxRing)
	data, _ := as.ReadBytes(buf, 6)
	if string(data) != "keep-0" {
		t.Fatalf("slot 0 overwritten: %q", data)
	}
	if length, _ := as.Read64(rxRing + 8); length != 6 {
		t.Fatalf("slot 0 length = %d, want 6", length)
	}
	// Drain slot 0; the next delivery lands there.
	consume(t, as, rxRing, 0)
	n.Deliver([]byte("after-drain"))
	if n.Dropped != 1 || n.RxFrames != ringLen+1 {
		t.Fatalf("post-drain delivery failed: dropped=%d rx=%d", n.Dropped, n.RxFrames)
	}
	if got := consume(t, as, rxRing, 0); got != uint64(len("after-drain")) {
		t.Fatalf("slot 0 length after drain = %d", got)
	}
}

// TestNICBadRingAddressesDropNotFault: descriptor reads through
// mis-programmed (unmapped) ring bases must count drops, not fall
// through to VA 0 or fault the host.
func TestNICBadRingAddressesDropNotFault(t *testing.T) {
	as, _ := testAS(t)
	n := NewNIC(as)
	unmapped := uint64(mm.KernelBase + 0x9000_0000)
	n.MMIOWrite(NICRegTxRing, unmapped)
	n.MMIOWrite(NICRegRingLen, 8)
	n.MMIOWrite(NICRegTxDoorbell, 0)
	if n.Dropped != 1 || n.TxFrames != 0 {
		t.Fatalf("bad TX ring: dropped=%d tx=%d, want 1/0", n.Dropped, n.TxFrames)
	}
	n.MMIOWrite(NICRegRxRing, unmapped)
	n.Deliver([]byte("lost"))
	if n.Dropped != 2 || n.RxFrames != 0 {
		t.Fatalf("bad RX ring: dropped=%d rx=%d, want 2/0", n.Dropped, n.RxFrames)
	}
}

// TestNICLoopbackRingRoundTrip runs the full TX→wire→RX loop on one
// adapter: transmit from a TX descriptor, receive into the RX ring,
// consume, and repeat past the ring length to cover wrap on loopback.
func TestNICLoopbackRingRoundTrip(t *testing.T) {
	const ringLen = 2
	as, base := testAS(t)
	n := NewNIC(as)
	txRing, rxRing := base, base+0x1000
	n.MMIOWrite(NICRegTxRing, txRing)
	n.MMIOWrite(NICRegRxRing, rxRing)
	n.MMIOWrite(NICRegRingLen, ringLen)
	for i := uint64(0); i < ringLen; i++ {
		if err := as.Write64(rxRing+i*16, base+0x4000+i*0x800); err != nil {
			t.Fatal(err)
		}
	}
	payload := []byte("ping")
	if err := as.WriteBytes(base+0x2000, payload); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 2*ringLen+1; i++ {
		slot := i % ringLen
		if err := as.Write64(txRing+slot*16, base+0x2000); err != nil {
			t.Fatal(err)
		}
		if err := as.Write64(txRing+slot*16+8, uint64(len(payload))); err != nil {
			t.Fatal(err)
		}
		n.MMIOWrite(NICRegTxDoorbell, slot)
		if got := consume(t, as, rxRing, slot); got != uint64(len(payload)) {
			t.Fatalf("round %d: rx length = %d", i, got)
		}
		buf, _ := as.Read64(rxRing + slot*16)
		data, _ := as.ReadBytes(buf, len(payload))
		if string(data) != "ping" {
			t.Fatalf("round %d: data = %q", i, data)
		}
	}
	if n.TxFrames != 2*ringLen+1 || n.RxFrames != 2*ringLen+1 || n.Dropped != 0 {
		t.Fatalf("loopback stats tx=%d rx=%d dropped=%d", n.TxFrames, n.RxFrames, n.Dropped)
	}
}
