package devices

import (
	"fmt"
	"testing"

	"adelie/internal/bus"
	"adelie/internal/mm"
)

// irqNIC attaches a ring NIC to a bus so it gets a line, and returns the
// controller for assertions. now is mutable through the returned setter.
func irqNIC(t *testing.T, ringLen uint64) (*mm.AddressSpace, *NIC, *bus.Bus, uint64) {
	t.Helper()
	as := mm.NewAddressSpace(mm.NewPhysMem())
	base := mm.KernelBase + 0x100000
	if _, err := as.MapRegion(base, 64, mm.FlagWrite); err != nil {
		t.Fatal(err)
	}
	b := bus.New(as, mm.KernelBase+0x7_0000_0000)
	n := NewNIC(as)
	n.Name = "nic0"
	if _, err := b.Attach(n); err != nil {
		t.Fatal(err)
	}
	rxRing := base + 0x1000
	n.MMIOWrite(NICRegRxRing, rxRing)
	n.MMIOWrite(NICRegRingLen, ringLen)
	for i := uint64(0); i < ringLen; i++ {
		if err := as.Write64(rxRing+i*16, base+0x4000+i*0x800); err != nil {
			t.Fatal(err)
		}
	}
	return as, n, b, rxRing
}

// TestNICAssertsPerFrameByDefault: with no coalescing configured, every
// ring delivery raises the line once.
func TestNICAssertsPerFrameByDefault(t *testing.T) {
	_, n, b, _ := irqNIC(t, 8)
	line := n.IRQLine()
	if line != 0 {
		t.Fatalf("line = %d, want 0", line)
	}
	for i := 0; i < 3; i++ {
		n.Deliver([]byte(fmt.Sprintf("f%d", i)))
	}
	if got := b.IC().Raised(line); got != 3 {
		t.Fatalf("raised = %d, want 3", got)
	}
	if n.IRQsAsserted != 3 {
		t.Fatalf("IRQsAsserted = %d", n.IRQsAsserted)
	}
	// All three raises coalesce into one pending delivery.
	if p := b.IC().TakePending(); len(p) != 1 || p[0].Line != line {
		t.Fatalf("pending = %+v", p)
	}
}

// TestNICCoalescingFrameThreshold: with maxFrames=4, three frames stay
// silent; the fourth asserts, covering all four.
func TestNICCoalescingFrameThreshold(t *testing.T) {
	_, n, b, _ := irqNIC(t, 8)
	n.SetCoalescing(4, 1_000_000)
	for i := 0; i < 3; i++ {
		n.Deliver([]byte("x"))
	}
	if got := b.IC().Raised(n.IRQLine()); got != 0 {
		t.Fatalf("asserted below threshold: %d", got)
	}
	n.Deliver([]byte("x"))
	if got := b.IC().Raised(n.IRQLine()); got != 1 {
		t.Fatalf("raised = %d, want 1", got)
	}
}

// TestNICCoalescingDelayFlushOnTick: below the frame threshold, the line
// asserts at a clock boundary once the oldest frame has waited past the
// delay, stamping pendingSince with the arrival-time clock value.
func TestNICCoalescingDelayFlushOnTick(t *testing.T) {
	_, n, b, _ := irqNIC(t, 8)
	n.SetCoalescing(16, 500)
	b.SetNow(1000)
	n.Deliver([]byte("x"))
	n.Tick(1400, false) // 400 < 500: not yet
	if got := b.IC().Raised(n.IRQLine()); got != 0 {
		t.Fatalf("asserted before delay: %d", got)
	}
	n.Tick(1500, false)
	p := b.IC().TakePending()
	if len(p) != 1 || p[0].Since != 1000 {
		t.Fatalf("pending = %+v, want since=1000", p)
	}
	// Force tick flushes regardless of thresholds.
	n.Deliver([]byte("y"))
	n.Tick(1501, true)
	if got := b.IC().Raised(n.IRQLine()); got != 2 {
		t.Fatalf("force tick did not flush: raised=%d", got)
	}
}

// TestNICMaskDefersAndUnmaskReasserts: NAPI discipline — while masked,
// deliveries accumulate silently; unmasking with pending frames
// re-asserts immediately so no work goes unsignalled.
func TestNICMaskDefersAndUnmaskReasserts(t *testing.T) {
	_, n, b, _ := irqNIC(t, 8)
	n.MMIOWrite(NICRegIntCtl, 1) // mask
	if n.MMIORead(NICRegIntCtl) != 1 {
		t.Fatal("mask state not readable")
	}
	n.Deliver([]byte("a"))
	n.Deliver([]byte("b"))
	if got := b.IC().Raised(n.IRQLine()); got != 0 {
		t.Fatalf("masked NIC asserted %d times", got)
	}
	n.MMIOWrite(NICRegIntCtl, 0) // unmask → re-assert
	if got := b.IC().Raised(n.IRQLine()); got != 1 {
		t.Fatalf("unmask re-assert: raised=%d, want 1", got)
	}
	// Nothing pending after the re-assert: a further unmask is silent.
	n.MMIOWrite(NICRegIntCtl, 1)
	n.MMIOWrite(NICRegIntCtl, 0)
	if got := b.IC().Raised(n.IRQLine()); got != 1 {
		t.Fatalf("spurious re-assert: raised=%d", got)
	}
}

// TestNICNoIRQWithoutBus: an unattached NIC (no line wired) delivers
// without asserting — the pre-bus polling behavior.
func TestNICNoIRQWithoutBus(t *testing.T) {
	_, n, _ := ringNIC(t, 4)
	n.Deliver([]byte("quiet"))
	if n.IRQsAsserted != 0 {
		t.Fatal("lineless NIC asserted an IRQ")
	}
}

// TestHostRxCapConsumesOverflow: the load-generator capture queue is
// bounded (compaction amortized at 2×cap); overflow frames count as
// consumed, counters keep counting, and the stored tail is the most
// recent frames.
func TestHostRxCapConsumesOverflow(t *testing.T) {
	as := mm.NewAddressSpace(mm.NewPhysMem())
	n := NewNIC(as) // no ring: host-driven side
	n.SetHostRxCap(4)
	const total = 13 // trims at deliveries 8 and 12, then one more lands
	for i := 0; i < total; i++ {
		n.Deliver([]byte(fmt.Sprintf("f%02d", i)))
	}
	if n.RxFrames != total {
		t.Fatalf("RxFrames = %d, want %d", n.RxFrames, total)
	}
	frames := n.TakeHostFrames()
	if len(frames) >= 8 { // bounded below 2×cap
		t.Fatalf("stored = %d, cap 4 not enforced", len(frames))
	}
	if n.HostConsumed+uint64(len(frames)) != total {
		t.Fatalf("consumed %d + stored %d != %d", n.HostConsumed, len(frames), total)
	}
	if got := string(frames[len(frames)-1]); got != "f12" {
		t.Fatalf("newest kept frame = %q, want f12", got)
	}
	if got := string(frames[0]); got != fmt.Sprintf("f%02d", n.HostConsumed) {
		t.Fatalf("oldest kept frame = %q with %d consumed", got, n.HostConsumed)
	}
}
