// Package devices models the hardware the evaluated drivers talk to: an
// NVMe controller with submission/completion queues and an internal DRAM
// cache (the Fig. 6 experiment reads one block repeatedly to stay inside
// that cache), an E1000E-style ring-buffer NIC with a 1 GbE wire, and an
// xHCI-like port device. Devices are reached through MMIO registers via
// internal/mm and DMA directly into guest physical memory — the same
// interaction pattern the real drivers have, so driver code paths in
// internal/drivers exercise loads, stores and doorbells exactly as the
// paper's modules do.
package devices

import (
	"encoding/binary"
	"sort"
	"sync"

	"adelie/internal/bus"
	"adelie/internal/mm"
	"adelie/internal/obs"
)

// Latency model (cycles at the 2.2 GHz nominal clock). NVMeCacheLatency
// corresponds to ~8 µs — an NVMe read served from controller DRAM, the
// fast path Fig. 6's benchmark deliberately hits.
const (
	NVMeCacheLatency = 17600  // ≈8 µs: controller DRAM cache hit
	NVMeMediaLatency = 176000 // ≈80 µs: flash read
)

// NVMe MMIO register map (byte offsets).
const (
	NVMeRegSQBase   = 0x00 // submission queue base VA
	NVMeRegCQBase   = 0x08 // completion queue base VA
	NVMeRegDoorbell = 0x10 // write: SQ tail index to process
	NVMeRegLatency  = 0x18 // read: cycles the last command took
	NVMeRegIntCtl   = 0x20 // write 1: enable the completion interrupt; 0: disable; read: state
)

// NVMe command opcodes (first word of an SQ entry).
const (
	NVMeCmdRead  = 1
	NVMeCmdWrite = 2
)

// SQ entry layout (4 words): opcode, LBA, byte count, buffer VA.
// CQ entry layout (2 words): status (1 = done), command latency in
// cycles. Queues are slot-indexed by the doorbell value; the driver
// dedicates slot smp_processor_id() to each vCPU, so commands from
// different vCPUs never share an entry.

// NVMe is the controller.
//
// It implements bus.EpochDevice (discovered by interface assertion when
// the controller is attached): between BeginEpoch and EndEpoch
// (the engine's round barriers), cache-hit decisions are made against
// the epoch-start snapshot of the DRAM cache and insertions are
// buffered, applied in sorted order at EndEpoch. Latencies observed by
// concurrently-executing vCPUs are therefore independent of host
// goroutine scheduling — the property that keeps parallel measurement
// runs bit-reproducible.
type NVMe struct {
	mu sync.Mutex
	as *mm.AddressSpace

	sqBase, cqBase uint64
	sqHead         uint64
	lastLatency    uint64

	media     map[uint64][]byte // LBA → 512-byte block
	cachedLBA map[uint64]bool   // controller DRAM cache contents
	cacheFIFO []uint64          // insertion order, for deterministic eviction
	cacheCap  int

	epoch        bool            // inside a BeginEpoch/EndEpoch window
	pendingTouch []uint64        // cache insertions buffered this epoch
	pendingSet   map[uint64]bool // dedup for pendingTouch

	// Completion-interrupt state (bus.IRQDevice). The interrupt is
	// disabled until the driver writes NVMeRegIntCtl=1; the legacy
	// polled-CQ driver never does, so the controller raises nothing for
	// it and stays bit-identical to the pre-interrupt device.
	irq        *bus.Line
	clock      func() uint64
	intEnabled bool

	Reads, Writes, CacheHits uint64
	IRQsAsserted             uint64
}

// NewNVMe creates a controller DMA-attached to the address space.
func NewNVMe(as *mm.AddressSpace) *NVMe {
	return &NVMe{
		as: as, media: map[uint64][]byte{}, cachedLBA: map[uint64]bool{},
		cacheCap: 1024, pendingSet: map[uint64]bool{},
	}
}

// DevName implements bus.Device.
func (d *NVMe) DevName() string { return "nvme" }

// DevPages implements bus.Device.
func (d *NVMe) DevPages() int { return 1 }

// ConnectIRQ implements bus.IRQDevice: the bus hands the controller its
// completion-interrupt line and a reader for the barrier-published
// virtual clock.
func (d *NVMe) ConnectIRQ(l *bus.Line, now func() uint64) {
	d.mu.Lock()
	d.irq, d.clock = l, now
	d.mu.Unlock()
}

// IRQLine returns the bus line number wired to the controller (-1 if
// none).
func (d *NVMe) IRQLine() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.irq == nil {
		return -1
	}
	return d.irq.Num()
}

// BeginEpoch enters round-granular cache semantics (bus.EpochDevice).
func (d *NVMe) BeginEpoch() {
	d.mu.Lock()
	d.epoch = true
	d.mu.Unlock()
}

// EndEpoch applies buffered cache insertions in deterministic (sorted)
// order and leaves epoch mode.
func (d *NVMe) EndEpoch() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.epoch = false
	sort.Slice(d.pendingTouch, func(i, j int) bool { return d.pendingTouch[i] < d.pendingTouch[j] })
	for _, lba := range d.pendingTouch {
		d.insertCache(lba)
	}
	d.pendingTouch = d.pendingTouch[:0]
	clear(d.pendingSet)
}

// Preload writes a block image directly to the media (test fixtures).
func (d *NVMe) Preload(lba uint64, data []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	blk := make([]byte, 512)
	copy(blk, data)
	d.media[lba] = blk
}

// MMIORead implements mm.MMIOHandler.
func (d *NVMe) MMIORead(off uint64) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch off {
	case NVMeRegSQBase:
		return d.sqBase
	case NVMeRegCQBase:
		return d.cqBase
	case NVMeRegLatency:
		return d.lastLatency
	case NVMeRegIntCtl:
		if d.intEnabled {
			return 1
		}
	}
	return 0
}

// MMIOWrite implements mm.MMIOHandler. A doorbell write executes the
// command at the rung SQ slot and posts its completion.
func (d *NVMe) MMIOWrite(off uint64, val uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch off {
	case NVMeRegSQBase:
		d.sqBase = val
	case NVMeRegCQBase:
		d.cqBase = val
	case NVMeRegDoorbell:
		d.process(val)
	case NVMeRegIntCtl:
		d.intEnabled = val != 0
	}
}

func (d *NVMe) process(slot uint64) {
	if d.sqBase == 0 || d.cqBase == 0 {
		return
	}
	entry := d.sqBase + slot*32
	op, _ := d.as.Read64Force(entry)
	lba, _ := d.as.Read64Force(entry + 8)
	count, _ := d.as.Read64Force(entry + 16)
	buf, _ := d.as.Read64Force(entry + 24)
	if count > 1<<20 {
		count = 1 << 20
	}

	latency := uint64(NVMeMediaLatency)
	switch op {
	case NVMeCmdRead:
		d.Reads++
		if d.cachedLBA[lba] {
			d.CacheHits++
			latency = NVMeCacheLatency
		}
		d.touchCache(lba)
		// DMA the block(s) into the host buffer.
		data := make([]byte, count)
		for i := uint64(0); i < count; i += 512 {
			if blk, ok := d.media[lba+i/512]; ok {
				copy(data[i:min64(i+512, count)], blk)
			}
		}
		_ = d.as.WriteBytesForce(buf, data)
	case NVMeCmdWrite:
		d.Writes++
		data, err := d.as.ReadBytes(buf, int(count))
		if err == nil {
			for i := uint64(0); i < count; i += 512 {
				blk := make([]byte, 512)
				copy(blk, data[i:min64(i+512, count)])
				d.media[lba+i/512] = blk
			}
		}
		d.touchCache(lba)
		latency = NVMeCacheLatency // write lands in controller DRAM
	default:
		return
	}
	d.lastLatency = latency
	// Post completion: status=1, then the command's latency so the
	// driver reads its own slot's timing instead of a shared register.
	_ = d.as.Write64Force(d.cqBase+slot*16, 1)
	_ = d.as.Write64Force(d.cqBase+slot*16+8, latency)
	// Completion interrupt: raised per posted completion when the driver
	// enabled it (the interrupt-driven driver retired the polled CQ).
	// pendingSince is the barrier-published clock — the command was
	// submitted and completed within this round.
	if d.intEnabled && d.irq != nil {
		since := uint64(0)
		if d.clock != nil {
			since = d.clock()
		}
		d.irq.Assert(since)
		d.IRQsAsserted++
	}
}

// touchCache records an access to lba. Inside an epoch the insertion is
// buffered so hit/miss decisions keep reading the epoch-start snapshot.
func (d *NVMe) touchCache(lba uint64) {
	if d.epoch {
		if !d.cachedLBA[lba] && !d.pendingSet[lba] {
			d.pendingSet[lba] = true
			d.pendingTouch = append(d.pendingTouch, lba)
		}
		return
	}
	d.insertCache(lba)
}

// insertCache admits lba, evicting the oldest entry at capacity. FIFO
// order (not map iteration) keeps eviction — and therefore every
// subsequent hit/miss latency — deterministic across runs.
func (d *NVMe) insertCache(lba uint64) {
	if d.cachedLBA[lba] {
		return
	}
	if len(d.cachedLBA) >= d.cacheCap {
		victim := d.cacheFIFO[0]
		d.cacheFIFO = d.cacheFIFO[1:]
		delete(d.cachedLBA, victim)
	}
	d.cachedLBA[lba] = true
	d.cacheFIFO = append(d.cacheFIFO, lba)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// ReadBlockDirect is a host-side helper mirroring what the driver's DMA
// does — used by tests to verify media contents.
func (d *NVMe) ReadBlockDirect(lba uint64) []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	blk, ok := d.media[lba]
	if !ok {
		return make([]byte, 512)
	}
	out := make([]byte, 512)
	copy(out, blk)
	return out
}

// EncodeSQEntry builds the 32-byte submission entry the driver writes.
func EncodeSQEntry(op, lba, count, buf uint64) []byte {
	b := make([]byte, 32)
	binary.LittleEndian.PutUint64(b[0:], op)
	binary.LittleEndian.PutUint64(b[8:], lba)
	binary.LittleEndian.PutUint64(b[16:], count)
	binary.LittleEndian.PutUint64(b[24:], buf)
	return b
}

// ObsStats implements obs.StatSource: cumulative submit/complete
// counters the engine delta-samples at round barriers to derive NVMe
// trace events.
func (d *NVMe) ObsStats(dst []obs.Stat) []obs.Stat {
	return append(dst,
		obs.Stat{Name: "reads", Value: d.Reads},
		obs.Stat{Name: "writes", Value: d.Writes},
		obs.Stat{Name: "cache_hits", Value: d.CacheHits},
		obs.Stat{Name: "irqs_asserted", Value: d.IRQsAsserted},
	)
}
