package devices

import (
	"sync"

	"adelie/internal/bus"
	"adelie/internal/mm"
)

// NIC is an E1000E-flavoured ring-buffer network adapter. The driver
// publishes descriptor rings (VA + length + head/tail indexes), rings a
// doorbell to transmit, and reads received frames out of the RX ring.
// Frames transmitted on one NIC appear on its peer's RX ring (or loop
// back), with a 1 GbE wire bandwidth that the simulator accounts as the
// throughput ceiling Fig. 7/8 observe (~110 MB/s).
//
// The NIC is a bus.IRQDevice: when the bus wires a line, RX delivery
// into the driver ring asserts it under the configured coalescing
// policy (SetCoalescing), and the driver's NAPI-style ISR masks the
// line via NICRegIntCtl, drains the ring, and unmasks. Frames delivered
// while no line is wired (or to the host-driven load-generator side)
// never interrupt.
type NIC struct {
	mu sync.Mutex
	as *mm.AddressSpace

	// Name distinguishes multiple adapters on one bus ("nic0"/"nic1",
	// the server/load-generator pair of Table 1).
	Name string

	txRing, rxRing uint64 // descriptor ring base VAs
	ringLen        uint64 // descriptors per ring
	rxTail         uint64 // next RX slot the device fills

	peer *NIC // nil = loopback

	// hostRx captures frames when no RX ring is programmed — the
	// load-generator side of the wire, consumed by the host harness.
	// It is bounded by hostRxCap: the modeled load generator keeps up
	// with the wire, so overflow frames count as consumed (HostConsumed)
	// instead of accumulating, and long runs cannot wedge on a full
	// host ring.
	hostRx    [][]byte
	hostRxCap int

	// Interrupt state. The bus assigns irq and the clock reader; the
	// guest masks/unmasks through NICRegIntCtl. pendingIRQ counts frames
	// delivered since the last assert; firstPending timestamps the
	// oldest of them (virtual cycles) for the coalescing delay and the
	// controller's latency accounting.
	irq            *bus.Line
	clock          func() uint64
	intMasked      bool
	pendingIRQ     uint64
	firstPending   uint64
	coalesceFrames uint64 // assert once this many frames are pending
	coalesceDelay  uint64 // or once the oldest has waited this many cycles

	TxFrames, RxFrames, TxBytes, RxBytes uint64
	Dropped                              uint64
	HostConsumed                         uint64 // load-generator frames consumed past the cap
	IRQsAsserted                         uint64
}

// WireBytesPerSec is the 1 GbE line rate (≈110 MB/s of goodput, the
// ceiling visible in the paper's Fig. 7/8 network numbers).
const WireBytesPerSec = 110e6

// NIC MMIO register map.
const (
	NICRegTxRing     = 0x00 // TX descriptor ring base VA
	NICRegRxRing     = 0x08 // RX descriptor ring base VA
	NICRegRingLen    = 0x10 // descriptors per ring
	NICRegTxDoorbell = 0x18 // write: TX slot to send
	NICRegRxHead     = 0x20 // read: next filled RX slot count
	NICRegIntCtl     = 0x28 // write 1: mask the RX interrupt (IMC); write 0: unmask (IMS); read: mask state
)

// Descriptor layout (2 words): buffer VA, byte length. A zero length
// marks a free RX descriptor.

// DefaultHostRxCap bounds the host-side capture queue of a ringless
// (load-generator) adapter.
const DefaultHostRxCap = 1024

// NewNIC creates an adapter DMA-attached to as.
func NewNIC(as *mm.AddressSpace) *NIC {
	return &NIC{as: as, Name: "nic", hostRxCap: DefaultHostRxCap, coalesceFrames: 1}
}

// DevName implements bus.Device.
func (n *NIC) DevName() string { return n.Name }

// DevPages implements bus.Device.
func (n *NIC) DevPages() int { return 1 }

// ConnectIRQ implements bus.IRQDevice: the bus hands the adapter its
// line and a reader for the barrier-published virtual clock.
func (n *NIC) ConnectIRQ(l *bus.Line, now func() uint64) {
	n.mu.Lock()
	n.irq, n.clock = l, now
	n.mu.Unlock()
}

// IRQLine returns the bus line number wired to this adapter (-1 if
// none).
func (n *NIC) IRQLine() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.irq == nil {
		return -1
	}
	return n.irq.Num()
}

// SetCoalescing configures interrupt moderation: the line asserts once
// maxFrames frames are pending, or — checked at clock boundaries — once
// the oldest pending frame has waited delayCycles. maxFrames <= 1 means
// assert per frame; delayCycles == 0 makes every clock boundary flush
// whatever is pending.
func (n *NIC) SetCoalescing(maxFrames, delayCycles uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if maxFrames == 0 {
		maxFrames = 1
	}
	n.coalesceFrames, n.coalesceDelay = maxFrames, delayCycles
}

// SetHostRxCap bounds the host-side capture queue (load-generator
// receive path); frames past the cap are consumed, not stored.
func (n *NIC) SetHostRxCap(cap int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cap < 1 {
		cap = 1
	}
	n.hostRxCap = cap
}

// Tick implements bus.Ticker: at a clock boundary, assert the line if
// the oldest pending frame has exceeded the coalescing delay (or
// unconditionally on the final force tick of a measurement).
func (n *NIC) Tick(nowCycles uint64, force bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.pendingIRQ == 0 {
		return
	}
	if force || nowCycles-n.firstPending >= n.coalesceDelay {
		n.assertIRQLocked()
	}
}

// noteRxLocked records one frame landing in the driver ring and applies
// the frame-count coalescing threshold. Caller holds n.mu.
func (n *NIC) noteRxLocked() {
	if n.irq == nil {
		return
	}
	if n.pendingIRQ == 0 {
		if n.clock != nil {
			n.firstPending = n.clock()
		} else {
			n.firstPending = 0
		}
	}
	n.pendingIRQ++
	if !n.intMasked && n.pendingIRQ >= n.coalesceFrames {
		n.assertIRQLocked()
	}
}

// assertIRQLocked raises the line, folding all pending frames into one
// interrupt. Caller holds n.mu and has checked pendingIRQ > 0.
func (n *NIC) assertIRQLocked() {
	if n.irq == nil || n.intMasked {
		return
	}
	n.irq.Assert(n.firstPending)
	n.IRQsAsserted++
	n.pendingIRQ = 0
}

// Connect wires two NICs back-to-back (server/load-generator setup of
// Table 1). A NIC without a peer loops frames back to itself.
func Connect(a, b *NIC) {
	a.mu.Lock()
	a.peer = b
	a.mu.Unlock()
	b.mu.Lock()
	b.peer = a
	b.mu.Unlock()
}

// MMIORead implements mm.MMIOHandler.
func (n *NIC) MMIORead(off uint64) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch off {
	case NICRegTxRing:
		return n.txRing
	case NICRegRxRing:
		return n.rxRing
	case NICRegRingLen:
		return n.ringLen
	case NICRegRxHead:
		return n.rxTail
	case NICRegIntCtl:
		if n.intMasked {
			return 1
		}
		return 0
	}
	return 0
}

// MMIOWrite implements mm.MMIOHandler.
func (n *NIC) MMIOWrite(off uint64, val uint64) {
	n.mu.Lock()
	switch off {
	case NICRegTxRing:
		n.txRing = val
	case NICRegRxRing:
		n.rxRing = val
	case NICRegRingLen:
		n.ringLen = val
	case NICRegTxDoorbell:
		n.mu.Unlock()
		n.transmit(val)
		return
	case NICRegIntCtl:
		if val != 0 {
			n.intMasked = true
		} else {
			// NAPI re-enable: if frames arrived while the line was
			// masked, re-assert immediately so the driver is told about
			// work it has not been signalled for.
			n.intMasked = false
			if n.pendingIRQ > 0 {
				n.assertIRQLocked()
			}
		}
	}
	n.mu.Unlock()
}

// transmit sends the frame described by TX slot and delivers it to the
// peer (or loops it back).
func (n *NIC) transmit(slot uint64) {
	n.mu.Lock()
	if n.txRing == 0 || n.ringLen == 0 {
		n.mu.Unlock()
		return
	}
	desc := n.txRing + (slot%n.ringLen)*16
	buf, err := n.as.Read64Force(desc)
	if err != nil {
		// A mis-programmed ring base must not fall through to VA 0.
		n.Dropped++
		n.mu.Unlock()
		return
	}
	length, err := n.as.Read64Force(desc + 8)
	if err != nil {
		n.Dropped++
		n.mu.Unlock()
		return
	}
	if length == 0 || length > 1<<16 {
		n.Dropped++
		n.mu.Unlock()
		return
	}
	frame, err := n.as.ReadBytes(buf, int(length))
	if err != nil {
		n.Dropped++
		n.mu.Unlock()
		return
	}
	n.TxFrames++
	n.TxBytes += length
	dst := n.peer
	if dst == nil {
		dst = n
	}
	n.mu.Unlock()
	dst.Deliver(frame)
}

// Deliver places a frame into the next free RX descriptor — what the wire
// (or a host-side load generator) does.
func (n *NIC) Deliver(frame []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.rxRing == 0 || n.ringLen == 0 {
		// No driver-owned ring: this adapter is host-driven (the load
		// generator of Table 1); queue the frame for the harness. The
		// modeled generator keeps pace with the wire, so past the cap
		// the oldest frames count as consumed rather than accumulating.
		// Trimming waits until 2×cap so the compaction cost amortizes to
		// O(1) per frame instead of an O(cap) memmove per delivery.
		n.hostRx = append(n.hostRx, frame)
		if len(n.hostRx) >= 2*n.hostRxCap {
			over := len(n.hostRx) - n.hostRxCap
			n.hostRx = append(n.hostRx[:0], n.hostRx[over:]...)
			n.HostConsumed += uint64(over)
		}
		n.RxFrames++
		n.RxBytes += uint64(len(frame))
		return
	}
	desc := n.rxRing + (n.rxTail%n.ringLen)*16
	buf, err := n.as.Read64Force(desc)
	if err != nil || buf == 0 {
		n.Dropped++
		return
	}
	// Ring overrun check: a zero length word marks a free RX descriptor
	// (the documented convention; poll_rx writes 0 when it consumes a
	// frame). Non-zero means the driver has not caught up — overwriting
	// the unconsumed frame would corrupt the ring, so the wire drops the
	// frame instead, and rxTail stays on the slot so delivery resumes
	// there once the driver drains it.
	if length, err := n.as.Read64Force(desc + 8); err != nil || length != 0 {
		n.Dropped++
		return
	}
	if err := n.as.WriteBytesForce(buf, frame); err != nil {
		n.Dropped++
		return
	}
	if err := n.as.Write64Force(desc+8, uint64(len(frame))); err != nil {
		n.Dropped++
		return
	}
	n.rxTail++
	n.RxFrames++
	n.RxBytes += uint64(len(frame))
	n.noteRxLocked()
}

// TakeHostFrames drains the host-side capture queue (load-generator
// receive path).
func (n *NIC) TakeHostFrames() [][]byte {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := n.hostRx
	n.hostRx = nil
	return out
}

// XHCI is a minimal USB 3.0 host-controller stand-in: a port status
// register block the xhci driver polls. It exists so the Fig. 8 workload
// can re-randomize a USB driver as "extra load", as the paper does.
type XHCI struct {
	mu        sync.Mutex
	Polls     uint64
	connected bool
}

// xHCI MMIO register map.
const (
	XHCIRegPortStatus = 0x00 // bit 0: device connected
	XHCIRegControl    = 0x08 // write 1: reset port
)

// NewXHCI returns a controller with one connected port.
func NewXHCI() *XHCI { return &XHCI{connected: true} }

// DevName implements bus.Device.
func (x *XHCI) DevName() string { return "xhci" }

// DevPages implements bus.Device.
func (x *XHCI) DevPages() int { return 1 }

// MMIORead implements mm.MMIOHandler.
func (x *XHCI) MMIORead(off uint64) uint64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	if off == XHCIRegPortStatus {
		x.Polls++
		if x.connected {
			return 1
		}
	}
	return 0
}

// MMIOWrite implements mm.MMIOHandler.
func (x *XHCI) MMIOWrite(off uint64, val uint64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if off == XHCIRegControl && val == 1 {
		x.connected = true
	}
}
