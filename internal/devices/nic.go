package devices

import (
	"sync"

	"adelie/internal/mm"
)

// NIC is an E1000E-flavoured ring-buffer network adapter. The driver
// publishes descriptor rings (VA + length + head/tail indexes), rings a
// doorbell to transmit, and reads received frames out of the RX ring.
// Frames transmitted on one NIC appear on its peer's RX ring (or loop
// back), with a 1 GbE wire bandwidth that the simulator accounts as the
// throughput ceiling Fig. 7/8 observe (~110 MB/s).
type NIC struct {
	mu sync.Mutex
	as *mm.AddressSpace

	txRing, rxRing uint64 // descriptor ring base VAs
	ringLen        uint64 // descriptors per ring
	rxTail         uint64 // next RX slot the device fills

	peer *NIC // nil = loopback

	// hostRx captures frames when no RX ring is programmed — the
	// load-generator side of the wire, consumed by the host harness.
	hostRx [][]byte

	TxFrames, RxFrames, TxBytes, RxBytes uint64
	Dropped                              uint64
}

// WireBytesPerSec is the 1 GbE line rate (≈110 MB/s of goodput, the
// ceiling visible in the paper's Fig. 7/8 network numbers).
const WireBytesPerSec = 110e6

// NIC MMIO register map.
const (
	NICRegTxRing     = 0x00 // TX descriptor ring base VA
	NICRegRxRing     = 0x08 // RX descriptor ring base VA
	NICRegRingLen    = 0x10 // descriptors per ring
	NICRegTxDoorbell = 0x18 // write: TX slot to send
	NICRegRxHead     = 0x20 // read: next filled RX slot count
)

// Descriptor layout (2 words): buffer VA, byte length. A zero length
// marks a free RX descriptor.

// NewNIC creates an adapter DMA-attached to as.
func NewNIC(as *mm.AddressSpace) *NIC { return &NIC{as: as} }

// Connect wires two NICs back-to-back (server/load-generator setup of
// Table 1). A NIC without a peer loops frames back to itself.
func Connect(a, b *NIC) {
	a.mu.Lock()
	a.peer = b
	a.mu.Unlock()
	b.mu.Lock()
	b.peer = a
	b.mu.Unlock()
}

// MMIORead implements mm.MMIOHandler.
func (n *NIC) MMIORead(off uint64) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch off {
	case NICRegTxRing:
		return n.txRing
	case NICRegRxRing:
		return n.rxRing
	case NICRegRingLen:
		return n.ringLen
	case NICRegRxHead:
		return n.rxTail
	}
	return 0
}

// MMIOWrite implements mm.MMIOHandler.
func (n *NIC) MMIOWrite(off uint64, val uint64) {
	n.mu.Lock()
	switch off {
	case NICRegTxRing:
		n.txRing = val
	case NICRegRxRing:
		n.rxRing = val
	case NICRegRingLen:
		n.ringLen = val
	case NICRegTxDoorbell:
		n.mu.Unlock()
		n.transmit(val)
		return
	}
	n.mu.Unlock()
}

// transmit sends the frame described by TX slot and delivers it to the
// peer (or loops it back).
func (n *NIC) transmit(slot uint64) {
	n.mu.Lock()
	if n.txRing == 0 || n.ringLen == 0 {
		n.mu.Unlock()
		return
	}
	desc := n.txRing + (slot%n.ringLen)*16
	buf, err := n.as.Read64Force(desc)
	if err != nil {
		// A mis-programmed ring base must not fall through to VA 0.
		n.Dropped++
		n.mu.Unlock()
		return
	}
	length, err := n.as.Read64Force(desc + 8)
	if err != nil {
		n.Dropped++
		n.mu.Unlock()
		return
	}
	if length == 0 || length > 1<<16 {
		n.Dropped++
		n.mu.Unlock()
		return
	}
	frame, err := n.as.ReadBytes(buf, int(length))
	if err != nil {
		n.Dropped++
		n.mu.Unlock()
		return
	}
	n.TxFrames++
	n.TxBytes += length
	dst := n.peer
	if dst == nil {
		dst = n
	}
	n.mu.Unlock()
	dst.Deliver(frame)
}

// Deliver places a frame into the next free RX descriptor — what the wire
// (or a host-side load generator) does.
func (n *NIC) Deliver(frame []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.rxRing == 0 || n.ringLen == 0 {
		// No driver-owned ring: this adapter is host-driven (the load
		// generator of Table 1); queue the frame for the harness.
		n.hostRx = append(n.hostRx, frame)
		n.RxFrames++
		n.RxBytes += uint64(len(frame))
		return
	}
	desc := n.rxRing + (n.rxTail%n.ringLen)*16
	buf, err := n.as.Read64Force(desc)
	if err != nil || buf == 0 {
		n.Dropped++
		return
	}
	// Ring overrun check: a zero length word marks a free RX descriptor
	// (the documented convention; poll_rx writes 0 when it consumes a
	// frame). Non-zero means the driver has not caught up — overwriting
	// the unconsumed frame would corrupt the ring, so the wire drops the
	// frame instead, and rxTail stays on the slot so delivery resumes
	// there once the driver drains it.
	if length, err := n.as.Read64Force(desc + 8); err != nil || length != 0 {
		n.Dropped++
		return
	}
	if err := n.as.WriteBytesForce(buf, frame); err != nil {
		n.Dropped++
		return
	}
	if err := n.as.Write64Force(desc+8, uint64(len(frame))); err != nil {
		n.Dropped++
		return
	}
	n.rxTail++
	n.RxFrames++
	n.RxBytes += uint64(len(frame))
}

// TakeHostFrames drains the host-side capture queue (load-generator
// receive path).
func (n *NIC) TakeHostFrames() [][]byte {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := n.hostRx
	n.hostRx = nil
	return out
}

// XHCI is a minimal USB 3.0 host-controller stand-in: a port status
// register block the xhci driver polls. It exists so the Fig. 8 workload
// can re-randomize a USB driver as "extra load", as the paper does.
type XHCI struct {
	mu        sync.Mutex
	Polls     uint64
	connected bool
}

// xHCI MMIO register map.
const (
	XHCIRegPortStatus = 0x00 // bit 0: device connected
	XHCIRegControl    = 0x08 // write 1: reset port
)

// NewXHCI returns a controller with one connected port.
func NewXHCI() *XHCI { return &XHCI{connected: true} }

// MMIORead implements mm.MMIOHandler.
func (x *XHCI) MMIORead(off uint64) uint64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	if off == XHCIRegPortStatus {
		x.Polls++
		if x.connected {
			return 1
		}
	}
	return 0
}

// MMIOWrite implements mm.MMIOHandler.
func (x *XHCI) MMIOWrite(off uint64, val uint64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if off == XHCIRegControl && val == 1 {
		x.connected = true
	}
}
