package devices

import (
	"sync"

	"adelie/internal/bus"
	"adelie/internal/mm"
	"adelie/internal/obs"
)

// NIC is an E1000E-flavoured ring-buffer network adapter with up to
// MaxNICQueues receive queues. The driver publishes descriptor rings
// (VA + length + head/tail indexes), rings a doorbell to transmit, and
// reads received frames out of the RX rings. Frames transmitted on one
// NIC appear on its peer's RX side (or loop back), steered to a queue
// by a deterministic RSS hash over the frame bytes, with a 1 GbE wire
// bandwidth that the simulator accounts as the throughput ceiling
// Fig. 7/8 observe (~110 MB/s).
//
// The NIC is a bus.MSIXDevice: the bus wires one vector (line) per
// queue, RX delivery into a queue's ring asserts that queue's line
// under the queue's coalescing policy (SetCoalescing), and the driver's
// NAPI-style ISR masks the queue via its IntCtl register, drains the
// ring, and unmasks. Queue 0 doubles as the legacy single-queue device:
// its ring, head and mask registers alias the original register map, so
// a single-queue NIC is bit-identical to the pre-multi-queue one.
// Frames delivered while no line is wired (or to the host-driven
// load-generator side) never interrupt.
type NIC struct {
	mu sync.Mutex
	as *mm.AddressSpace

	// Name distinguishes multiple adapters on one bus ("nic0"/"nic1",
	// the server/load-generator pair of Table 1).
	Name string

	txRing  uint64 // TX descriptor ring base VA
	ringLen uint64 // descriptors per ring (TX and every RX ring)

	queues []*nicQueue // RX queues; len >= 1, queue 0 = legacy registers
	clock  func() uint64

	peer *NIC // nil = loopback

	// hostRx captures frames when no RX ring is programmed — the
	// load-generator side of the wire, consumed by the host harness.
	// It is bounded by hostRxCap: the modeled load generator keeps up
	// with the wire, so overflow frames count as consumed (HostConsumed)
	// instead of accumulating, and long runs cannot wedge on a full
	// host ring.
	hostRx    [][]byte
	hostRxCap int

	TxFrames, RxFrames, TxBytes, RxBytes uint64
	Dropped                              uint64
	HostConsumed                         uint64 // load-generator frames consumed past the cap
	IRQsAsserted                         uint64
}

// nicQueue is one RX queue: a descriptor ring plus its MSI-X vector and
// coalescing state. The bus assigns irq; the guest masks/unmasks
// through the queue's IntCtl register. pendingIRQ counts frames
// delivered since the last assert; firstPending timestamps the oldest
// of them (virtual cycles) for the coalescing delay and the
// controller's latency accounting.
type nicQueue struct {
	rxRing uint64 // descriptor ring base VA; 0 = not programmed
	rxTail uint64 // next RX slot the device fills

	irq            *bus.Line
	intMasked      bool
	pendingIRQ     uint64
	firstPending   uint64
	coalesceFrames uint64 // assert once this many frames are pending
	coalesceDelay  uint64 // or once the oldest has waited this many cycles

	RxFrames uint64 // frames steered into this queue's ring
}

// MaxNICQueues bounds the RSS queue count (the vector-table size).
const MaxNICQueues = 8

// WireBytesPerSec is the 1 GbE line rate (≈110 MB/s of goodput, the
// ceiling visible in the paper's Fig. 7/8 network numbers).
const WireBytesPerSec = 110e6

// NIC MMIO register map. The scalar registers alias queue 0, keeping
// single-queue drivers unchanged; per-queue register blocks start at
// NICRegQueueBase, one NICRegQueueStride-sized block per queue (queue
// 0's block aliases the scalar registers too).
const (
	NICRegTxRing     = 0x00 // TX descriptor ring base VA
	NICRegRxRing     = 0x08 // queue 0 RX descriptor ring base VA
	NICRegRingLen    = 0x10 // descriptors per ring
	NICRegTxDoorbell = 0x18 // write: TX slot to send
	NICRegRxHead     = 0x20 // read: queue 0 next filled RX slot count
	NICRegIntCtl     = 0x28 // write 1: mask queue 0's interrupt (IMC); write 0: unmask (IMS); read: mask state

	NICRegQueueBase   = 0x40 // per-queue register blocks start here
	NICRegQueueStride = 0x20 // bytes per queue block
	NICRegQRxRing     = 0x00 // block + 0x00: RX descriptor ring base VA
	NICRegQRxHead     = 0x08 // block + 0x08: next filled RX slot count (read)
	NICRegQIntCtl     = 0x10 // block + 0x10: mask/unmask this queue's vector
)

// Descriptor layout (2 words): buffer VA, byte length. A zero length
// marks a free RX descriptor.

// DefaultHostRxCap bounds the host-side capture queue of a ringless
// (load-generator) adapter.
const DefaultHostRxCap = 1024

// NewNIC creates a single-queue adapter DMA-attached to as.
func NewNIC(as *mm.AddressSpace) *NIC {
	return &NIC{as: as, Name: "nic", hostRxCap: DefaultHostRxCap,
		queues: []*nicQueue{{coalesceFrames: 1}}}
}

// DevName implements bus.Device.
func (n *NIC) DevName() string { return n.Name }

// DevPages implements bus.Device.
func (n *NIC) DevPages() int { return 1 }

// SetQueues sizes the RSS queue set (clamped to [1, MaxNICQueues]).
// Must be called before the adapter is attached to a bus: the queue
// count is the MSI-X vector-table size the bus allocates lines for.
func (n *NIC) SetQueues(count int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if count < 1 {
		count = 1
	}
	if count > MaxNICQueues {
		count = MaxNICQueues
	}
	n.queues = make([]*nicQueue, count)
	for i := range n.queues {
		n.queues[i] = &nicQueue{coalesceFrames: 1}
	}
}

// NumQueues returns the RSS queue count.
func (n *NIC) NumQueues() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.queues)
}

// NumVectors implements bus.MSIXDevice: one vector per RX queue.
func (n *NIC) NumVectors() int { return n.NumQueues() }

// ConnectVectors implements bus.MSIXDevice: the bus hands the adapter
// one line per queue plus a reader for the barrier-published virtual
// clock.
func (n *NIC) ConnectVectors(lines []*bus.Line, now func() uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.clock = now
	for i, q := range n.queues {
		if i < len(lines) {
			q.irq = lines[i]
		}
	}
}

// ConnectIRQ wires a single line to queue 0 — the legacy IRQDevice
// shape, kept for direct (non-bus) wiring in tests.
func (n *NIC) ConnectIRQ(l *bus.Line, now func() uint64) {
	n.mu.Lock()
	n.queues[0].irq, n.clock = l, now
	n.mu.Unlock()
}

// IRQLine returns the bus line number wired to queue 0 (-1 if none).
func (n *NIC) IRQLine() int { return n.QueueIRQLine(0) }

// QueueIRQLine returns the bus line number wired to a queue's vector
// (-1 if none).
func (n *NIC) QueueIRQLine(q int) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if q < 0 || q >= len(n.queues) || n.queues[q].irq == nil {
		return -1
	}
	return n.queues[q].irq.Num()
}

// QueueRxFrames returns how many frames RSS steered into a queue.
func (n *NIC) QueueRxFrames(q int) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if q < 0 || q >= len(n.queues) {
		return 0
	}
	return n.queues[q].RxFrames
}

// SetCoalescing configures interrupt moderation on every queue: a
// queue's line asserts once maxFrames frames are pending on it, or —
// checked at clock boundaries — once its oldest pending frame has
// waited delayCycles. maxFrames <= 1 means assert per frame;
// delayCycles == 0 makes every clock boundary flush whatever is
// pending.
func (n *NIC) SetCoalescing(maxFrames, delayCycles uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if maxFrames == 0 {
		maxFrames = 1
	}
	for _, q := range n.queues {
		q.coalesceFrames, q.coalesceDelay = maxFrames, delayCycles
	}
}

// SetHostRxCap bounds the host-side capture queue (load-generator
// receive path); frames past the cap are consumed, not stored.
func (n *NIC) SetHostRxCap(cap int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cap < 1 {
		cap = 1
	}
	n.hostRxCap = cap
}

// Tick implements bus.Ticker: at a clock boundary, assert any queue
// whose oldest pending frame has exceeded its coalescing delay (or
// every pending queue unconditionally on the final force tick of a
// measurement), in queue order.
func (n *NIC) Tick(nowCycles uint64, force bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, q := range n.queues {
		if q.pendingIRQ == 0 {
			continue
		}
		if force || nowCycles-q.firstPending >= q.coalesceDelay {
			n.assertIRQLocked(q)
		}
	}
}

// noteRxLocked records one frame landing in a queue's ring and applies
// that queue's frame-count coalescing threshold. Caller holds n.mu.
func (n *NIC) noteRxLocked(q *nicQueue) {
	if q.irq == nil {
		return
	}
	if q.pendingIRQ == 0 {
		if n.clock != nil {
			q.firstPending = n.clock()
		} else {
			q.firstPending = 0
		}
	}
	q.pendingIRQ++
	if !q.intMasked && q.pendingIRQ >= q.coalesceFrames {
		n.assertIRQLocked(q)
	}
}

// assertIRQLocked raises a queue's line, folding all its pending frames
// into one interrupt. Caller holds n.mu and has checked pendingIRQ > 0.
func (n *NIC) assertIRQLocked(q *nicQueue) {
	if q.irq == nil || q.intMasked {
		return
	}
	q.irq.Assert(q.firstPending)
	n.IRQsAsserted++
	q.pendingIRQ = 0
}

// Connect wires two NICs back-to-back (server/load-generator setup of
// Table 1). A NIC without a peer loops frames back to itself.
func Connect(a, b *NIC) {
	a.mu.Lock()
	a.peer = b
	a.mu.Unlock()
	b.mu.Lock()
	b.peer = a
	b.mu.Unlock()
}

// queueReg resolves an offset inside the per-queue register blocks.
// Caller holds n.mu.
func (n *NIC) queueRegLocked(off uint64) (*nicQueue, uint64, bool) {
	if off < NICRegQueueBase {
		return nil, 0, false
	}
	qi := int((off - NICRegQueueBase) / NICRegQueueStride)
	if qi >= len(n.queues) {
		return nil, 0, false
	}
	return n.queues[qi], (off - NICRegQueueBase) % NICRegQueueStride, true
}

// MMIORead implements mm.MMIOHandler.
func (n *NIC) MMIORead(off uint64) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch off {
	case NICRegTxRing:
		return n.txRing
	case NICRegRxRing:
		return n.queues[0].rxRing
	case NICRegRingLen:
		return n.ringLen
	case NICRegRxHead:
		return n.queues[0].rxTail
	case NICRegIntCtl:
		if n.queues[0].intMasked {
			return 1
		}
		return 0
	}
	if q, reg, ok := n.queueRegLocked(off); ok {
		switch reg {
		case NICRegQRxRing:
			return q.rxRing
		case NICRegQRxHead:
			return q.rxTail
		case NICRegQIntCtl:
			if q.intMasked {
				return 1
			}
			return 0
		}
	}
	return 0
}

// MMIOWrite implements mm.MMIOHandler.
func (n *NIC) MMIOWrite(off uint64, val uint64) {
	n.mu.Lock()
	switch off {
	case NICRegTxRing:
		n.txRing = val
	case NICRegRxRing:
		n.queues[0].rxRing = val
	case NICRegRingLen:
		n.ringLen = val
	case NICRegTxDoorbell:
		n.mu.Unlock()
		n.transmit(val)
		return
	case NICRegIntCtl:
		n.intCtlLocked(n.queues[0], val)
	default:
		if q, reg, ok := n.queueRegLocked(off); ok {
			switch reg {
			case NICRegQRxRing:
				q.rxRing = val
			case NICRegQIntCtl:
				n.intCtlLocked(q, val)
			}
		}
	}
	n.mu.Unlock()
}

// intCtlLocked applies a mask/unmask write to a queue. Caller holds
// n.mu.
func (n *NIC) intCtlLocked(q *nicQueue, val uint64) {
	if val != 0 {
		q.intMasked = true
		return
	}
	// NAPI re-enable: if frames arrived while the vector was masked,
	// re-assert immediately so the driver is told about work it has not
	// been signalled for.
	q.intMasked = false
	if q.pendingIRQ > 0 {
		n.assertIRQLocked(q)
	}
}

// transmit sends the frame described by TX slot and delivers it to the
// peer (or loops it back).
func (n *NIC) transmit(slot uint64) {
	n.mu.Lock()
	if n.txRing == 0 || n.ringLen == 0 {
		n.mu.Unlock()
		return
	}
	desc := n.txRing + (slot%n.ringLen)*16
	buf, err := n.as.Read64Force(desc)
	if err != nil {
		// A mis-programmed ring base must not fall through to VA 0.
		n.Dropped++
		n.mu.Unlock()
		return
	}
	length, err := n.as.Read64Force(desc + 8)
	if err != nil {
		n.Dropped++
		n.mu.Unlock()
		return
	}
	if length == 0 || length > 1<<16 {
		n.Dropped++
		n.mu.Unlock()
		return
	}
	frame, err := n.as.ReadBytes(buf, int(length))
	if err != nil {
		n.Dropped++
		n.mu.Unlock()
		return
	}
	n.TxFrames++
	n.TxBytes += length
	dst := n.peer
	if dst == nil {
		dst = n
	}
	n.mu.Unlock()
	dst.Deliver(frame)
}

// rssHash is the deterministic receive-side-scaling hash: FNV-1a over
// the frame's first 32 bytes (the header region real RSS hashes). The
// same frame bytes always land on the same queue, so steering is a pure
// function of traffic content and queue count.
func rssHash(frame []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	n := len(frame)
	if n > 32 {
		n = 32
	}
	for _, b := range frame[:n] {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// Deliver places a frame into the next free RX descriptor of the queue
// its RSS hash selects — what the wire (or a host-side load generator)
// does.
func (n *NIC) Deliver(frame []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	q := n.queues[0]
	if len(n.queues) > 1 {
		q = n.queues[rssHash(frame)%uint64(len(n.queues))]
	}
	if q.rxRing == 0 || n.ringLen == 0 {
		// No driver-owned ring: this adapter is host-driven (the load
		// generator of Table 1); queue the frame for the harness. The
		// modeled generator keeps pace with the wire, so past the cap
		// the oldest frames count as consumed rather than accumulating.
		// Trimming waits until 2×cap so the compaction cost amortizes to
		// O(1) per frame instead of an O(cap) memmove per delivery.
		n.hostRx = append(n.hostRx, frame)
		if len(n.hostRx) >= 2*n.hostRxCap {
			over := len(n.hostRx) - n.hostRxCap
			n.hostRx = append(n.hostRx[:0], n.hostRx[over:]...)
			n.HostConsumed += uint64(over)
		}
		n.RxFrames++
		n.RxBytes += uint64(len(frame))
		return
	}
	desc := q.rxRing + (q.rxTail%n.ringLen)*16
	buf, err := n.as.Read64Force(desc)
	if err != nil || buf == 0 {
		n.Dropped++
		return
	}
	// Ring overrun check: a zero length word marks a free RX descriptor
	// (the documented convention; poll_rx writes 0 when it consumes a
	// frame). Non-zero means the driver has not caught up — overwriting
	// the unconsumed frame would corrupt the ring, so the wire drops the
	// frame instead, and rxTail stays on the slot so delivery resumes
	// there once the driver drains it.
	if length, err := n.as.Read64Force(desc + 8); err != nil || length != 0 {
		n.Dropped++
		return
	}
	if err := n.as.WriteBytesForce(buf, frame); err != nil {
		n.Dropped++
		return
	}
	if err := n.as.Write64Force(desc+8, uint64(len(frame))); err != nil {
		n.Dropped++
		return
	}
	q.rxTail++
	q.RxFrames++
	n.RxFrames++
	n.RxBytes += uint64(len(frame))
	n.noteRxLocked(q)
}

// TakeHostFrames drains the host-side capture queue (load-generator
// receive path).
func (n *NIC) TakeHostFrames() [][]byte {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := n.hostRx
	n.hostRx = nil
	return out
}

// XHCI is a minimal USB 3.0 host-controller stand-in: a port status
// register block the xhci driver polls. It exists so the Fig. 8 workload
// can re-randomize a USB driver as "extra load", as the paper does.
type XHCI struct {
	mu        sync.Mutex
	Polls     uint64
	connected bool
}

// xHCI MMIO register map.
const (
	XHCIRegPortStatus = 0x00 // bit 0: device connected
	XHCIRegControl    = 0x08 // write 1: reset port
)

// NewXHCI returns a controller with one connected port.
func NewXHCI() *XHCI { return &XHCI{connected: true} }

// DevName implements bus.Device.
func (x *XHCI) DevName() string { return "xhci" }

// DevPages implements bus.Device.
func (x *XHCI) DevPages() int { return 1 }

// MMIORead implements mm.MMIOHandler.
func (x *XHCI) MMIORead(off uint64) uint64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	if off == XHCIRegPortStatus {
		x.Polls++
		if x.connected {
			return 1
		}
	}
	return 0
}

// MMIOWrite implements mm.MMIOHandler.
func (x *XHCI) MMIOWrite(off uint64, val uint64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if off == XHCIRegControl && val == 1 {
		x.connected = true
	}
}

// ObsStats implements obs.StatSource: cumulative ring counters the
// engine delta-samples at round barriers to derive NIC trace events.
func (n *NIC) ObsStats(dst []obs.Stat) []obs.Stat {
	return append(dst,
		obs.Stat{Name: "tx_frames", Value: n.TxFrames},
		obs.Stat{Name: "rx_frames", Value: n.RxFrames},
		obs.Stat{Name: "dropped", Value: n.Dropped},
		obs.Stat{Name: "irqs_asserted", Value: n.IRQsAsserted},
	)
}
