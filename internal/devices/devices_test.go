package devices

import (
	"testing"

	"adelie/internal/mm"
)

func testAS(t *testing.T) (*mm.AddressSpace, uint64) {
	t.Helper()
	as := mm.NewAddressSpace(mm.NewPhysMem())
	base := mm.KernelBase + 0x100000
	if _, err := as.MapRegion(base, 16, mm.FlagWrite); err != nil {
		t.Fatal(err)
	}
	return as, base
}

func TestNVMeReadViaQueues(t *testing.T) {
	as, base := testAS(t)
	d := NewNVMe(as)
	d.Preload(9, []byte("hello nvme"))
	sq, cq, buf := base, base+0x1000, base+0x2000

	d.MMIOWrite(NVMeRegSQBase, sq)
	d.MMIOWrite(NVMeRegCQBase, cq)
	if err := as.WriteBytes(sq, EncodeSQEntry(NVMeCmdRead, 9, 512, buf)); err != nil {
		t.Fatal(err)
	}
	d.MMIOWrite(NVMeRegDoorbell, 0)

	status, _ := as.Read64(cq)
	if status != 1 {
		t.Fatalf("completion status = %d", status)
	}
	got, _ := as.ReadBytes(buf, 10)
	if string(got) != "hello nvme" {
		t.Fatalf("DMA data = %q", got)
	}
	if d.Reads != 1 {
		t.Fatalf("reads = %d", d.Reads)
	}
}

func TestNVMeWriteThenRead(t *testing.T) {
	as, base := testAS(t)
	d := NewNVMe(as)
	sq, cq, buf := base, base+0x1000, base+0x2000
	d.MMIOWrite(NVMeRegSQBase, sq)
	d.MMIOWrite(NVMeRegCQBase, cq)

	if err := as.WriteBytes(buf, []byte("persist me")); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteBytes(sq, EncodeSQEntry(NVMeCmdWrite, 3, 512, buf)); err != nil {
		t.Fatal(err)
	}
	d.MMIOWrite(NVMeRegDoorbell, 0)
	if string(d.ReadBlockDirect(3)[:10]) != "persist me" {
		t.Fatal("write did not reach media")
	}
	// Read it back through the queue into a different buffer.
	buf2 := base + 0x3000
	if err := as.WriteBytes(sq, EncodeSQEntry(NVMeCmdRead, 3, 512, buf2)); err != nil {
		t.Fatal(err)
	}
	d.MMIOWrite(NVMeRegDoorbell, 0)
	got, _ := as.ReadBytes(buf2, 10)
	if string(got) != "persist me" {
		t.Fatalf("read back %q", got)
	}
}

func TestNVMeCacheLatency(t *testing.T) {
	as, base := testAS(t)
	d := NewNVMe(as)
	sq, cq, buf := base, base+0x1000, base+0x2000
	d.MMIOWrite(NVMeRegSQBase, sq)
	d.MMIOWrite(NVMeRegCQBase, cq)
	d.Preload(1, []byte("x"))

	read := func() uint64 {
		if err := as.WriteBytes(sq, EncodeSQEntry(NVMeCmdRead, 1, 512, buf)); err != nil {
			t.Fatal(err)
		}
		d.MMIOWrite(NVMeRegDoorbell, 0)
		return d.MMIORead(NVMeRegLatency)
	}
	if lat := read(); lat != NVMeMediaLatency {
		t.Fatalf("cold read latency = %d, want media %d", lat, NVMeMediaLatency)
	}
	if lat := read(); lat != NVMeCacheLatency {
		t.Fatalf("warm read latency = %d, want cache %d", lat, NVMeCacheLatency)
	}
}

func TestNVMeCacheEviction(t *testing.T) {
	as, base := testAS(t)
	d := NewNVMe(as)
	d.cacheCap = 2
	sq, cq, buf := base, base+0x1000, base+0x2000
	d.MMIOWrite(NVMeRegSQBase, sq)
	d.MMIOWrite(NVMeRegCQBase, cq)
	for lba := uint64(0); lba < 5; lba++ {
		if err := as.WriteBytes(sq, EncodeSQEntry(NVMeCmdRead, lba, 512, buf)); err != nil {
			t.Fatal(err)
		}
		d.MMIOWrite(NVMeRegDoorbell, 0)
	}
	if len(d.cachedLBA) > 2 {
		t.Fatalf("cache grew to %d entries, cap 2", len(d.cachedLBA))
	}
}

func TestNVMeIgnoresDoorbellWithoutQueues(t *testing.T) {
	as, _ := testAS(t)
	d := NewNVMe(as)
	d.MMIOWrite(NVMeRegDoorbell, 0) // must not panic or fault
	if d.Reads != 0 {
		t.Fatal("phantom read")
	}
}

func setupNICPair(t *testing.T) (*mm.AddressSpace, *NIC, *NIC, uint64) {
	t.Helper()
	as, base := testAS(t)
	a, b := NewNIC(as), NewNIC(as)
	Connect(a, b)
	// a gets rings; b stays host-driven.
	txRing, rxRing := base, base+0x1000
	a.MMIOWrite(NICRegTxRing, txRing)
	a.MMIOWrite(NICRegRxRing, rxRing)
	a.MMIOWrite(NICRegRingLen, 8)
	// Post RX buffers.
	for i := uint64(0); i < 8; i++ {
		if err := as.Write64(rxRing+i*16, base+0x4000+i*0x800); err != nil {
			t.Fatal(err)
		}
	}
	return as, a, b, base
}

func TestNICTransmitToPeer(t *testing.T) {
	as, a, b, base := setupNICPair(t)
	payload := []byte("frame payload")
	if err := as.WriteBytes(base+0x2000, payload); err != nil {
		t.Fatal(err)
	}
	if err := as.Write64(base, base+0x2000); err != nil { // tx desc 0: buf
		t.Fatal(err)
	}
	if err := as.Write64(base+8, uint64(len(payload))); err != nil { // len
		t.Fatal(err)
	}
	a.MMIOWrite(NICRegTxDoorbell, 0)
	if a.TxFrames != 1 || a.TxBytes != uint64(len(payload)) {
		t.Fatalf("tx stats %d/%d", a.TxFrames, a.TxBytes)
	}
	frames := b.TakeHostFrames()
	if len(frames) != 1 || string(frames[0]) != "frame payload" {
		t.Fatalf("peer frames = %q", frames)
	}
	if len(b.TakeHostFrames()) != 0 {
		t.Fatal("host queue not drained")
	}
}

func TestNICDeliverIntoRing(t *testing.T) {
	as, a, _, _ := setupNICPair(t)
	a.Deliver([]byte("incoming"))
	if a.RxFrames != 1 {
		t.Fatal("rx frame not counted")
	}
	head := a.MMIORead(NICRegRxHead)
	if head != 1 {
		t.Fatalf("rx head = %d", head)
	}
	// The descriptor now carries the length and the buffer the data.
	rxRing := a.MMIORead(NICRegRxRing)
	n, _ := as.Read64(rxRing + 8)
	if n != 8 {
		t.Fatalf("descriptor length = %d", n)
	}
	buf, _ := as.Read64(rxRing)
	got, _ := as.ReadBytes(buf, 8)
	if string(got) != "incoming" {
		t.Fatalf("ring data = %q", got)
	}
}

func TestNICDropsOversizedAndBadFrames(t *testing.T) {
	as, a, _, base := setupNICPair(t)
	if err := as.Write64(base, base+0x2000); err != nil {
		t.Fatal(err)
	}
	if err := as.Write64(base+8, 1<<20); err != nil { // absurd length
		t.Fatal(err)
	}
	a.MMIOWrite(NICRegTxDoorbell, 0)
	if a.Dropped != 1 || a.TxFrames != 0 {
		t.Fatalf("oversized frame not dropped: %d/%d", a.Dropped, a.TxFrames)
	}
}

func TestNICLoopbackWithoutPeer(t *testing.T) {
	as, base := testAS(t)
	n := NewNIC(as)
	txRing, rxRing := base, base+0x1000
	n.MMIOWrite(NICRegTxRing, txRing)
	n.MMIOWrite(NICRegRxRing, rxRing)
	n.MMIOWrite(NICRegRingLen, 4)
	if err := as.Write64(rxRing, base+0x3000); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteBytes(base+0x2000, []byte("loop")); err != nil {
		t.Fatal(err)
	}
	if err := as.Write64(txRing, base+0x2000); err != nil {
		t.Fatal(err)
	}
	if err := as.Write64(txRing+8, 4); err != nil {
		t.Fatal(err)
	}
	n.MMIOWrite(NICRegTxDoorbell, 0)
	if n.RxFrames != 1 {
		t.Fatal("loopback frame lost")
	}
	got, _ := as.ReadBytes(base+0x3000, 4)
	if string(got) != "loop" {
		t.Fatalf("loopback data = %q", got)
	}
}

func TestXHCIPortStatus(t *testing.T) {
	x := NewXHCI()
	if x.MMIORead(XHCIRegPortStatus) != 1 {
		t.Fatal("port should start connected")
	}
	if x.Polls != 1 {
		t.Fatal("poll not counted")
	}
	x.connected = false
	if x.MMIORead(XHCIRegPortStatus) != 0 {
		t.Fatal("disconnected port reads 1")
	}
	x.MMIOWrite(XHCIRegControl, 1) // reset reconnects
	if x.MMIORead(XHCIRegPortStatus) != 1 {
		t.Fatal("reset did not reconnect")
	}
}
