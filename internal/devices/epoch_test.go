package devices

import "testing"

// TestNVMeEpochSnapshotLatency: inside an epoch, hit/miss decisions read
// the epoch-start cache snapshot — two first-time reads of the same LBA
// in one epoch both see a miss regardless of order, and the insertion
// becomes visible only after EndEpoch. This is what makes NVMe latencies
// independent of host goroutine scheduling within an engine round.
func TestNVMeEpochSnapshotLatency(t *testing.T) {
	as, base := testAS(t)
	d := NewNVMe(as)
	d.Preload(7, []byte("epoch"))
	sq, cq, buf := base, base+0x1000, base+0x2000
	d.MMIOWrite(NVMeRegSQBase, sq)
	d.MMIOWrite(NVMeRegCQBase, cq)

	read := func(slot uint64) uint64 {
		if err := as.WriteBytes(sq+slot*32, EncodeSQEntry(NVMeCmdRead, 7, 512, buf)); err != nil {
			t.Fatal(err)
		}
		d.MMIOWrite(NVMeRegDoorbell, slot)
		lat, _ := as.Read64(cq + slot*16 + 8)
		return lat
	}

	d.BeginEpoch()
	if lat := read(0); lat != NVMeMediaLatency {
		t.Fatalf("first epoch read: latency %d, want media %d", lat, NVMeMediaLatency)
	}
	// Same LBA, different slot, same epoch: still a miss (snapshot).
	if lat := read(1); lat != NVMeMediaLatency {
		t.Fatalf("second same-epoch read: latency %d, want media %d", lat, NVMeMediaLatency)
	}
	d.EndEpoch()

	d.BeginEpoch()
	if lat := read(2); lat != NVMeCacheLatency {
		t.Fatalf("next-epoch read: latency %d, want cache %d", lat, NVMeCacheLatency)
	}
	d.EndEpoch()
}

// TestNVMePerSlotCompletionLatency: each slot's CQ entry carries the
// latency of its own command, so per-CPU queue slots never observe a
// neighbour's timing.
func TestNVMePerSlotCompletionLatency(t *testing.T) {
	as, base := testAS(t)
	d := NewNVMe(as)
	d.Preload(1, []byte("a"))
	sq, cq, buf := base, base+0x1000, base+0x2000
	d.MMIOWrite(NVMeRegSQBase, sq)
	d.MMIOWrite(NVMeRegCQBase, cq)

	// Warm LBA 1 so slot 0's read hits; slot 1 reads cold LBA 2.
	if err := as.WriteBytes(sq, EncodeSQEntry(NVMeCmdRead, 1, 512, buf)); err != nil {
		t.Fatal(err)
	}
	d.MMIOWrite(NVMeRegDoorbell, 0)

	if err := as.WriteBytes(sq, EncodeSQEntry(NVMeCmdRead, 1, 512, buf)); err != nil {
		t.Fatal(err)
	}
	d.MMIOWrite(NVMeRegDoorbell, 0)
	if err := as.WriteBytes(sq+32, EncodeSQEntry(NVMeCmdRead, 2, 512, buf)); err != nil {
		t.Fatal(err)
	}
	d.MMIOWrite(NVMeRegDoorbell, 1)

	lat0, _ := as.Read64(cq + 8)
	lat1, _ := as.Read64(cq + 16 + 8)
	if lat0 != NVMeCacheLatency {
		t.Fatalf("slot 0 latency = %d, want cache hit %d", lat0, NVMeCacheLatency)
	}
	if lat1 != NVMeMediaLatency {
		t.Fatalf("slot 1 latency = %d, want media %d", lat1, NVMeMediaLatency)
	}
}
