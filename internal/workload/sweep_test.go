package workload

import (
	"bytes"
	"reflect"
	"testing"
)

func TestParseRange(t *testing.T) {
	cases := []struct {
		in   string
		want []int64
		rng  bool
		err  bool
	}{
		{"100..400:100", []int64{100, 200, 300, 400}, true, false},
		{"1..5", []int64{1, 2, 3, 4, 5}, true, false},
		{"7..7", []int64{7}, true, false},
		{"0..10:4", []int64{0, 4, 8}, true, false}, // short final step
		{"-4..-2", []int64{-4, -3, -2}, true, false},
		{"42", nil, false, false}, // plain integer: not a range
		{"", nil, false, false},
		{"..8", nil, false, false}, // nothing before "..": not a range
		{"5..1", nil, true, true},  // descending
		{"1..10:0", nil, true, true},
		{"1..10:-2", nil, true, true},
		{"a..10", nil, true, true},
		{"1..b", nil, true, true},
		{"0..1000000", nil, true, true}, // past the point cap
	}
	for _, c := range cases {
		got, rng, err := ParseRange(c.in)
		if rng != c.rng || (err != nil) != c.err || !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseRange(%q) = %v, %v, %v; want %v, %v, err=%v",
				c.in, got, rng, err, c.want, c.rng, c.err)
		}
	}
}

// TestRegistryForkPoolEquivalent is the tentpole's correctness contract,
// registry-wide: every experiment must produce a bit-identical Table
// when its machines are copy-on-write forks of a booted template instead
// of cold boots. This is what licenses the parallel sweep runner (and
// CI's serial-vs-parallel diff) to exist.
func TestRegistryForkPoolEquivalent(t *testing.T) {
	for _, e := range Experiments.All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			run := func() (*Table, string) {
				p := e.Params(true)
				for k, v := range determinismOverrides[e.Name] {
					if err := p.Set(k, v); err != nil {
						t.Fatal(err)
					}
				}
				tab, err := e.Run(p)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				tab.Fprint(&buf)
				return tab, buf.String()
			}
			cold, coldOut := run()
			EnableForkPool()
			defer DisableForkPool()
			forked, forkedOut := run()
			if !reflect.DeepEqual(cold, forked) {
				t.Errorf("fork-pool table diverges from cold boot:\n%+v\n%+v", cold, forked)
			}
			if coldOut != forkedOut {
				t.Errorf("fork-pool rendering diverges from cold boot:\n%s\n---\n%s", coldOut, forkedOut)
			}
		})
	}
}

// TestSweepForkParallelMatchesSerial: the two sweep modes must render
// byte-identical tables point for point — the same check CI's sweep
// gate runs from benchtool.
func TestSweepForkParallelMatchesSerial(t *testing.T) {
	e, ok := Experiments.Lookup("fig5b")
	if !ok {
		t.Fatal("fig5b not registered")
	}
	values := []int64{50, 100, 150, 200}
	sweep := func(parallel bool) string {
		pts, err := RunSweep(e, e.Params(true), "ops", values, parallel, 4)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, pt := range pts {
			if pt.Table == nil {
				t.Fatalf("missing point %d", pt.Value)
			}
			pt.Table.Fprint(&buf)
		}
		return buf.String()
	}
	serial := sweep(false)
	parallel := sweep(true)
	if serial != parallel {
		t.Fatalf("parallel sweep output diverges from serial:\n%s\n---\n%s", serial, parallel)
	}
}

// TestForkPoolFallsBackOnColdBoot: a shape the pool cannot serve (here:
// simply disabling the pool mid-flight) must still boot — and pooled
// boots must actually hit the pool (the template map fills).
func TestForkPoolTemplatesReused(t *testing.T) {
	EnableForkPool()
	defer DisableForkPool()
	m1, err := newMachine(CfgPICRet, 999, "dummy")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := newMachine(CfgPICRet, 999, "dummy")
	if err != nil {
		t.Fatal(err)
	}
	if m1 == m2 {
		t.Fatal("pool handed out the same machine twice")
	}
	if m1.Frozen() || m2.Frozen() {
		t.Fatal("pool handed out the frozen template itself")
	}
	forkPool.mu.Lock()
	n := len(forkPool.tmpl)
	forkPool.mu.Unlock()
	if n != 1 {
		t.Fatalf("pool holds %d templates, want 1 (same key reused)", n)
	}
	m1.Release()
	m2.Release()
}
