package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"adelie/internal/attack"
	"adelie/internal/drivers"
	"adelie/internal/elfmod"
	"adelie/internal/isa"
	"adelie/internal/kcc"
	"adelie/internal/kernel"
	"adelie/internal/rerand"
	"adelie/internal/sim"
)

// ---------------------------------------------------------------------------
// Fig. 10 — ROP gadget distribution.

// GadgetRow is one bar group of Fig. 10: gadget counts per class for one
// code population.
type GadgetRow struct {
	Population string // "kernel", "modules", "pic-modules", "pic-immovable"
	Dist       attack.Distribution
}

// Default seeds of the §5.4/§6 experiments (the "seed" param defaults in
// their registry descriptors): the scalability testbed kernel, and the
// JIT-ROP victim kernels. The brute-force campaign RNG derives from the
// security seed so one override moves the whole analysis.
const (
	seedScalability int64 = 54
	seedSecurity    int64 = 13
	// seedSecurity + bruteForceSeedSkew = 66, the historical RNG seed.
	bruteForceSeedSkew int64 = 53
)

// GadgetDistribution scans (a) a kernel-sized code body, (b) the module
// corpus built non-PIC, (c) the same corpus built PIC+retpoline split into
// movable and immovable parts, mirroring Fig. 10's populations.
func GadgetDistribution(corpusSize int) ([]GadgetRow, error) {
	mods := attack.GenerateCorpus(23, corpusSize, attack.DefaultCorpus)

	scanSections := func(obj *elfmod.Object, kind elfmod.SectionKind, all bool) attack.Distribution {
		d := attack.Distribution{}
		for _, sec := range obj.Sections {
			if !sec.Kind.Executable() {
				continue
			}
			if !all && sec.Kind != kind {
				continue
			}
			for c, n := range attack.Distribute(attack.Scan(sec.Data, 0x10000)) {
				d[c] += n
			}
		}
		return d
	}
	merge := func(dst, src attack.Distribution) {
		for c, n := range src {
			dst[c] += n
		}
	}

	// "Kernel": the core kernel is ~15% of the gadget mass (paper §6);
	// model it as a corpus slice of that proportion built non-PIC.
	kernelN := corpusSize / 6
	if kernelN == 0 {
		kernelN = 1
	}
	kernelDist := attack.Distribution{}
	for _, m := range attack.GenerateCorpus(29, kernelN, attack.DefaultCorpus) {
		obj, err := kcc.Compile(m, kcc.Options{Model: kcc.ModelAbsolute})
		if err != nil {
			return nil, err
		}
		merge(kernelDist, scanSections(obj, 0, true))
	}

	plainDist := attack.Distribution{}
	picMovable := attack.Distribution{}
	picImmovable := attack.Distribution{}
	for _, m := range mods {
		plain, err := kcc.Compile(m, kcc.Options{Model: kcc.ModelAbsolute})
		if err != nil {
			return nil, err
		}
		merge(plainDist, scanSections(plain, 0, true))

		pic, err := drivers.Build(cloneModule(m), drivers.BuildOpts{
			PIC: true, Retpoline: true, Rerand: true, RetEncrypt: true,
		})
		if err != nil {
			return nil, err
		}
		merge(picMovable, scanSections(pic, elfmod.SecText, false))
		merge(picImmovable, scanSections(pic, elfmod.SecFixedText, false))
	}

	return []GadgetRow{
		{Population: "kernel", Dist: kernelDist},
		{Population: "modules", Dist: plainDist},
		{Population: "pic-movable", Dist: picMovable},
		{Population: "pic-immovable", Dist: picImmovable},
	}, nil
}

// cloneModule deep-copies a module so plugin transforms don't contaminate
// the shared corpus instance.
func cloneModule(m *kcc.Module) *kcc.Module {
	out := &kcc.Module{Name: m.Name}
	for _, f := range m.Funcs {
		nf := *f
		nf.Body = append([]kcc.Ins(nil), f.Body...)
		out.Funcs = append(out.Funcs, &nf)
	}
	for _, g := range m.Globals {
		ng := *g
		ng.Init = append([]byte(nil), g.Init...)
		ng.Relocs = append([]kcc.DataReloc(nil), g.Relocs...)
		out.Globals = append(out.Globals, &ng)
	}
	return out
}

var expFig10 = &Experiment{
	Name:   "fig10",
	Figure: "Fig. 10",
	Doc:    "ROP gadget distribution per class across code populations",
	ParamSpecs: []ParamSpec{
		{Name: "ops", Doc: "synthetic corpus size scanned", Default: 120, Quick: 60},
	},
	Run: func(p Params) (*Table, error) {
		rows, err := GadgetDistribution(p.Int("ops"))
		if err != nil {
			return nil, err
		}
		var classes []attack.GadgetClass
		seen := map[attack.GadgetClass]bool{}
		for _, r := range rows {
			for _, c := range r.Dist.Classes() {
				if !seen[c] {
					seen[c] = true
					classes = append(classes, c)
				}
			}
		}
		sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
		t := &Table{
			Title:   "Fig. 10 — ROP gadget distribution (counts per class)",
			Columns: []Column{Col("population", "%-15s", "%-15s")},
		}
		for _, c := range classes {
			t.Columns = append(t.Columns, Col(string(c), "%9d", "%9s"))
		}
		t.Columns = append(t.Columns, Col("total", "%9d", "%9s"))
		for _, r := range rows {
			cells := []any{r.Population}
			for _, c := range classes {
				cells = append(cells, r.Dist[c])
			}
			cells = append(cells, r.Dist.Total())
			t.AddRow(cells...)
		}
		return t, nil
	},
	Headline: func(t *Table) map[string]float64 {
		out := map[string]float64{}
		for _, r := range t.Rows {
			out[r[0].(string)+"-gadgets"] = float64(r[len(r)-1].(int))
		}
		return out
	},
}

// ---------------------------------------------------------------------------
// Table 2 — ROP chain quality across the module population.

// ChainTable mirrors Table 2's rows.
type ChainTable struct {
	CleanChain      int // "With ROP Chain, no side-effect"
	SideEffectChain int // "With ROP Chain, with side-effect"
	NoChain         int // "Without ROP Chain"
	Modules         int
	PIC             bool
}

// ChainCensus classifies every module in the corpus under one code model.
func ChainCensus(corpusSize int, pic bool) (ChainTable, error) {
	mods := attack.GenerateCorpus(23, corpusSize, attack.DefaultCorpus)
	t := ChainTable{Modules: corpusSize, PIC: pic}
	model := kcc.ModelAbsolute
	if pic {
		model = kcc.ModelPIC
	}
	for _, m := range mods {
		obj, err := kcc.Compile(m, kcc.Options{Model: model, Retpoline: pic})
		if err != nil {
			return t, err
		}
		var code []byte
		for _, sec := range obj.Sections {
			if sec.Kind.Executable() {
				code = append(code, sec.Data...)
			}
		}
		switch attack.ClassifyModule(code, 0x10000) {
		case attack.ChainClean:
			t.CleanChain++
		case attack.ChainWithSideEffect:
			t.SideEffectChain++
		default:
			t.NoChain++
		}
	}
	return t, nil
}

var expTable2 = &Experiment{
	Name:   "table2",
	Figure: "Table 2",
	Doc:    "ROP chain quality (NX-disable chains) across the module corpus",
	ParamSpecs: []ParamSpec{
		{Name: "ops", Doc: "corpus modules classified per code model", Default: 400, Quick: 100},
	},
	Run: func(p Params) (*Table, error) {
		n := p.Int("ops")
		plain, err := ChainCensus(n, false)
		if err != nil {
			return nil, err
		}
		pic, err := ChainCensus(n, true)
		if err != nil {
			return nil, err
		}
		t := &Table{
			Title: "Table 2 — ROP gadget categories (NX-disable chains)",
			Columns: []Column{
				{Name: "category", Head: "", Fmt: "%-38s", HeadFmt: "%-38s"},
				Col("Non-PIC", "%10d", "%10s"),
				Col("PIC", "%10d", "%10s"),
			},
		}
		t.AddRow("With ROP Chain, no side-effect", plain.CleanChain, pic.CleanChain)
		t.AddRow("With ROP Chain, with side-effect", plain.SideEffectChain, pic.SideEffectChain)
		t.AddRow("Without ROP Chain", plain.NoChain, pic.NoChain)
		t.AddRow("Number of Modules", plain.Modules, pic.Modules)
		t.Notef("chain rate: non-PIC %.1f%%, PIC %.1f%% (paper: 80%%)",
			float64(plain.CleanChain+plain.SideEffectChain)/float64(n)*100,
			float64(pic.CleanChain+pic.SideEffectChain)/float64(n)*100)
		return t, nil
	},
	Headline: func(t *Table) map[string]float64 {
		chains := float64(t.Rows[0][2].(int) + t.Rows[1][2].(int))
		return map[string]float64{"pic-chain-rate-pct": chains / float64(t.Rows[3][2].(int)) * 100}
	},
}

// ---------------------------------------------------------------------------
// §5.4 — scalability of the re-randomizer thread.

// ScalabilityRow reports the randomizer thread's CPU share when
// re-randomizing n modules at the given period.
type ScalabilityRow struct {
	Modules  int
	PeriodMs float64
	CPUPct   float64 // share of ONE core, like the paper's 0.4% figure
}

// Scalability loads n re-randomizable synthetic modules, measures the
// cycle cost of a randomizer pass, and derives the thread's CPU share at
// the period.
func Scalability(moduleCounts []int, periodMs float64) ([]ScalabilityRow, error) {
	return scalability(seedScalability, moduleCounts, periodMs)
}

func scalability(seed int64, moduleCounts []int, periodMs float64) ([]ScalabilityRow, error) {
	var rows []ScalabilityRow
	for _, n := range moduleCounts {
		k, err := kernel.New(kernel.Config{NumCPUs: 20, Seed: seed, KASLR: kernel.KASLRFull64})
		if err != nil {
			return nil, err
		}
		r := rerand.New(k)
		for i, m := range attack.GenerateCorpus(31, n, attack.DefaultCorpus) {
			obj, err := drivers.Build(m, drivers.BuildOpts{
				PIC: true, Retpoline: true, Rerand: true, StackRerand: true, RetEncrypt: true,
			})
			if err != nil {
				return nil, fmt.Errorf("module %d: %w", i, err)
			}
			mod, err := k.Load(obj)
			if err != nil {
				return nil, err
			}
			if err := r.Add(mod); err != nil {
				return nil, err
			}
		}
		// Average the pass cost over several steps.
		var cycles uint64
		const steps = 5
		for s := 0; s < steps; s++ {
			rep, err := r.Step()
			if err != nil {
				return nil, err
			}
			cycles += rep.Cycles
			k.SMR.Flush()
		}
		perPass := float64(cycles) / steps
		passesPerSec := 1000 / periodMs
		rows = append(rows, ScalabilityRow{
			Modules: n, PeriodMs: periodMs,
			CPUPct: perPass * passesPerSec / sim.CPUHz * 100,
		})
	}
	return rows, nil
}

// ScalabilityModuleCounts is the §5.4 module-count sweep.
var ScalabilityModuleCounts = []int{1, 5, 20, 60, 120}

var expScalability = &Experiment{
	Name:   "scalability",
	Figure: "§5.4",
	Doc:    "re-randomizer thread CPU share vs module count",
	ParamSpecs: []ParamSpec{
		{Name: "mods", Doc: "cap on the module-count sweep", Default: 120, Quick: 20},
		{Name: "seed", Doc: "kernel boot seed", Default: seedScalability},
		{Name: "period", Doc: "re-randomization period (ms)", Default: 20},
	},
	Run: func(p Params) (*Table, error) {
		var counts []int
		for _, n := range ScalabilityModuleCounts {
			if n <= p.Int("mods") {
				counts = append(counts, n)
			}
		}
		rows, err := scalability(p.Int64("seed"), counts, float64(p.Int("period")))
		if err != nil {
			return nil, err
		}
		t := &Table{
			Title: fmt.Sprintf("§5.4 — re-randomizer thread CPU share (%d ms period)", p.Int("period")),
			Columns: []Column{
				Col("modules", "%-10d", "%-10s"),
				{Name: "cpu-pct", Head: "CPU% (1 core)", Fmt: "%12.4f", HeadFmt: "%12s"},
			},
		}
		for _, r := range rows {
			t.AddRow(r.Modules, r.CPUPct)
		}
		if len(rows) > 1 {
			per := rows[len(rows)-1].CPUPct / float64(rows[len(rows)-1].Modules)
			t.Notef("extrapolated 950 modules: %.2f%% of one core (paper: comfortably feasible)", per*950)
		}
		return t, nil
	},
	Headline: func(t *Table) map[string]float64 {
		last := t.Rows[len(t.Rows)-1]
		per := last[1].(float64) / float64(last[0].(int))
		return map[string]float64{"core-pct": last[1].(float64), "est-950-mods-pct": per * 950}
	},
}

// ---------------------------------------------------------------------------
// §6 — security analysis numbers.

// SecurityReport aggregates the §6 quantitative claims.
type SecurityReport struct {
	VanillaGuessProb  float64 // 2^-19
	Full64GuessProb   float64 // 2^-44
	VanillaBruteForce attack.BruteForceResult
	Full64BruteForce  attack.BruteForceResult
	JITROPVanilla     attack.JITROPOutcome // no re-randomization: succeeds
	JITROPDefended    attack.JITROPOutcome // 5 ms period: fails
	AttackMicros      float64
}

// SecurityAnalysis reproduces the §6 numbers: guess probabilities, an
// empirical brute-force campaign against both KASLR windows, and the
// JIT-ROP race against the re-randomization interval.
func SecurityAnalysis() (SecurityReport, error) {
	return securityAnalysis(seedSecurity)
}

func securityAnalysis(seed int64) (SecurityReport, error) {
	var rep SecurityReport
	rep.VanillaGuessProb = attack.GuessProbability(attack.VanillaWindowBits)
	rep.Full64GuessProb = attack.GuessProbability(attack.Full64WindowBits)

	rng := rand.New(rand.NewSource(seed + bruteForceSeedSkew))
	// Empirical brute force: a module of 8 pages inside each window.
	const modBytes = 8 * 4096
	rep.VanillaBruteForce = attack.SimulateBruteForce(rng, 0, 1<<attack.VanillaWindowBits, 1<<28, modBytes, 4<<20)
	rep.Full64BruteForce = attack.SimulateBruteForce(rng, 0, 1<<attack.Full64WindowBits, 1<<40, modBytes, 4<<20)

	// JIT-ROP against a vulnerable driver, vanilla vs defended.
	mkKernel := func() (*kernel.Kernel, error) {
		return kernel.New(kernel.Config{NumCPUs: 4, Seed: seed, KASLR: kernel.KASLRFull64})
	}
	vulnerable := func() *kcc.Module {
		m := &kcc.Module{Name: "vuln"}
		m.AddFunc("vuln_ioctl", true, vulnBody()...)
		return m
	}

	kv, err := mkKernel()
	if err != nil {
		return rep, err
	}
	objV, err := kcc.Compile(vulnerable(), kcc.Options{Model: kcc.ModelPIC})
	if err != nil {
		return rep, err
	}
	modV, err := kv.Load(objV)
	if err != nil {
		return rep, err
	}
	rep.JITROPVanilla = attack.SimulateJITROP(kv, modV, attack.DefaultJITROP, 0, nil)

	kd, err := mkKernel()
	if err != nil {
		return rep, err
	}
	objD, err := drivers.Build(vulnerable(), drivers.BuildOpts{PIC: true, Rerand: true})
	if err != nil {
		return rep, err
	}
	modD, err := kd.Load(objD)
	if err != nil {
		return rep, err
	}
	rep.JITROPDefended = attack.SimulateJITROP(kd, modD, attack.DefaultJITROP, 5_000, func() error {
		if _, err := modD.Rerandomize(); err != nil {
			return err
		}
		kd.SMR.Flush()
		return nil
	})
	rep.AttackMicros = rep.JITROPDefended.ElapsedMicros
	return rep, nil
}

var expSecurity = &Experiment{
	Name:   "security",
	Figure: "§6",
	Doc:    "security analysis: guess probability, brute force, JIT-ROP race",
	ParamSpecs: []ParamSpec{
		{Name: "seed", Doc: "victim kernel seed (brute-force RNG derives from it)", Default: seedSecurity},
	},
	Run: func(p Params) (*Table, error) {
		rep, err := securityAnalysis(p.Int64("seed"))
		if err != nil {
			return nil, err
		}
		t := &Table{
			Title: "§6 — security analysis",
			Columns: []Column{
				Col("metric", "%-28s", "%-28s"),
				Col("value", "%v", "%s"),
			},
		}
		t.AddRow("vanilla-guess-prob", rep.VanillaGuessProb)
		t.AddRow("full64-guess-prob", rep.Full64GuessProb)
		t.AddRow("vanilla-bruteforce-found", rep.VanillaBruteForce.Found)
		t.AddRow("vanilla-bruteforce-attempts", rep.VanillaBruteForce.Attempts)
		t.AddRow("full64-bruteforce-found", rep.Full64BruteForce.Found)
		t.AddRow("full64-bruteforce-attempts", rep.Full64BruteForce.Attempts)
		t.AddRow("attack-micros", rep.AttackMicros)
		t.AddRow("jitrop-vanilla-success", rep.JITROPVanilla.Succeeded)
		t.AddRow("jitrop-vanilla-reason", rep.JITROPVanilla.Reason)
		t.AddRow("jitrop-defended-success", rep.JITROPDefended.Succeeded)
		t.AddRow("jitrop-defended-reason", rep.JITROPDefended.Reason)
		// The historical report is free-form prose; keep it bit-identical.
		t.Text = []string{
			fmt.Sprintf("guess probability     vanilla 2^-19 = %.3g   Adelie 2^-44 = %.3g",
				rep.VanillaGuessProb, rep.Full64GuessProb),
			"brute force (8-page module, ≤4M probes):",
			fmt.Sprintf("  vanilla window: found=%v after %d attempts",
				rep.VanillaBruteForce.Found, rep.VanillaBruteForce.Attempts),
			fmt.Sprintf("  64-bit window:  found=%v after %d attempts",
				rep.Full64BruteForce.Found, rep.Full64BruteForce.Attempts),
			fmt.Sprintf("JIT-ROP (attack ≈ %.0f µs end-to-end):", rep.AttackMicros),
			fmt.Sprintf("  no re-randomization: success=%v (%s)",
				rep.JITROPVanilla.Succeeded, rep.JITROPVanilla.Reason),
			fmt.Sprintf("  5 ms period:         success=%v (%s)",
				rep.JITROPDefended.Succeeded, rep.JITROPDefended.Reason),
		}
		return t, nil
	},
	Headline: func(t *Table) map[string]float64 {
		out := map[string]float64{}
		for _, r := range t.Rows {
			switch v := r[1].(type) {
			case bool:
				if v {
					out[r[0].(string)] = 1
				} else {
					out[r[0].(string)] = 0
				}
			case int:
				out[r[0].(string)] = float64(v)
			}
		}
		return out
	},
}

// vulnBody is a buffer-handling entry with the usual pop-rich epilogue.
func vulnBody() []kcc.Ins {
	return []kcc.Ins{
		kcc.Push(isa.RDX),
		kcc.Push(isa.RSI),
		kcc.Push(isa.RDI),
		kcc.MovImm(isa.RAX, 0),
		kcc.Pop(isa.RDI),
		kcc.Pop(isa.RSI),
		kcc.Pop(isa.RDX),
		kcc.Ret(),
	}
}
