package workload

import (
	"fmt"
	"math/rand"

	"adelie/internal/attack"
	"adelie/internal/drivers"
	"adelie/internal/elfmod"
	"adelie/internal/isa"
	"adelie/internal/kcc"
	"adelie/internal/kernel"
	"adelie/internal/rerand"
	"adelie/internal/sim"
)

// ---------------------------------------------------------------------------
// Fig. 10 — ROP gadget distribution.

// GadgetRow is one bar group of Fig. 10: gadget counts per class for one
// code population.
type GadgetRow struct {
	Population string // "kernel", "modules", "pic-modules", "pic-immovable"
	Dist       attack.Distribution
}

// GadgetDistribution scans (a) a kernel-sized code body, (b) the module
// corpus built non-PIC, (c) the same corpus built PIC+retpoline split into
// movable and immovable parts, mirroring Fig. 10's populations.
func GadgetDistribution(corpusSize int) ([]GadgetRow, error) {
	mods := attack.GenerateCorpus(23, corpusSize, attack.DefaultCorpus)

	scanSections := func(obj *elfmod.Object, kind elfmod.SectionKind, all bool) attack.Distribution {
		d := attack.Distribution{}
		for _, sec := range obj.Sections {
			if !sec.Kind.Executable() {
				continue
			}
			if !all && sec.Kind != kind {
				continue
			}
			for c, n := range attack.Distribute(attack.Scan(sec.Data, 0x10000)) {
				d[c] += n
			}
		}
		return d
	}
	merge := func(dst, src attack.Distribution) {
		for c, n := range src {
			dst[c] += n
		}
	}

	// "Kernel": the core kernel is ~15% of the gadget mass (paper §6);
	// model it as a corpus slice of that proportion built non-PIC.
	kernelN := corpusSize / 6
	if kernelN == 0 {
		kernelN = 1
	}
	kernelDist := attack.Distribution{}
	for _, m := range attack.GenerateCorpus(29, kernelN, attack.DefaultCorpus) {
		obj, err := kcc.Compile(m, kcc.Options{Model: kcc.ModelAbsolute})
		if err != nil {
			return nil, err
		}
		merge(kernelDist, scanSections(obj, 0, true))
	}

	plainDist := attack.Distribution{}
	picMovable := attack.Distribution{}
	picImmovable := attack.Distribution{}
	for _, m := range mods {
		plain, err := kcc.Compile(m, kcc.Options{Model: kcc.ModelAbsolute})
		if err != nil {
			return nil, err
		}
		merge(plainDist, scanSections(plain, 0, true))

		pic, err := drivers.Build(cloneModule(m), drivers.BuildOpts{
			PIC: true, Retpoline: true, Rerand: true, RetEncrypt: true,
		})
		if err != nil {
			return nil, err
		}
		merge(picMovable, scanSections(pic, elfmod.SecText, false))
		merge(picImmovable, scanSections(pic, elfmod.SecFixedText, false))
	}

	return []GadgetRow{
		{Population: "kernel", Dist: kernelDist},
		{Population: "modules", Dist: plainDist},
		{Population: "pic-movable", Dist: picMovable},
		{Population: "pic-immovable", Dist: picImmovable},
	}, nil
}

// cloneModule deep-copies a module so plugin transforms don't contaminate
// the shared corpus instance.
func cloneModule(m *kcc.Module) *kcc.Module {
	out := &kcc.Module{Name: m.Name}
	for _, f := range m.Funcs {
		nf := *f
		nf.Body = append([]kcc.Ins(nil), f.Body...)
		out.Funcs = append(out.Funcs, &nf)
	}
	for _, g := range m.Globals {
		ng := *g
		ng.Init = append([]byte(nil), g.Init...)
		ng.Relocs = append([]kcc.DataReloc(nil), g.Relocs...)
		out.Globals = append(out.Globals, &ng)
	}
	return out
}

// ---------------------------------------------------------------------------
// Table 2 — ROP chain quality across the module population.

// ChainTable mirrors Table 2's rows.
type ChainTable struct {
	CleanChain      int // "With ROP Chain, no side-effect"
	SideEffectChain int // "With ROP Chain, with side-effect"
	NoChain         int // "Without ROP Chain"
	Modules         int
	PIC             bool
}

// ChainCensus classifies every module in the corpus under one code model.
func ChainCensus(corpusSize int, pic bool) (ChainTable, error) {
	mods := attack.GenerateCorpus(23, corpusSize, attack.DefaultCorpus)
	t := ChainTable{Modules: corpusSize, PIC: pic}
	model := kcc.ModelAbsolute
	if pic {
		model = kcc.ModelPIC
	}
	for _, m := range mods {
		obj, err := kcc.Compile(m, kcc.Options{Model: model, Retpoline: pic})
		if err != nil {
			return t, err
		}
		var code []byte
		for _, sec := range obj.Sections {
			if sec.Kind.Executable() {
				code = append(code, sec.Data...)
			}
		}
		switch attack.ClassifyModule(code, 0x10000) {
		case attack.ChainClean:
			t.CleanChain++
		case attack.ChainWithSideEffect:
			t.SideEffectChain++
		default:
			t.NoChain++
		}
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// §5.4 — scalability of the re-randomizer thread.

// ScalabilityRow reports the randomizer thread's CPU share when
// re-randomizing n modules at the given period.
type ScalabilityRow struct {
	Modules  int
	PeriodMs float64
	CPUPct   float64 // share of ONE core, like the paper's 0.4% figure
}

// Scalability loads n re-randomizable synthetic modules, measures the
// cycle cost of a randomizer pass, and derives the thread's CPU share at
// the period.
func Scalability(moduleCounts []int, periodMs float64) ([]ScalabilityRow, error) {
	var rows []ScalabilityRow
	for _, n := range moduleCounts {
		k, err := kernel.New(kernel.Config{NumCPUs: 20, Seed: 54, KASLR: kernel.KASLRFull64})
		if err != nil {
			return nil, err
		}
		r := rerand.New(k)
		for i, m := range attack.GenerateCorpus(31, n, attack.DefaultCorpus) {
			obj, err := drivers.Build(m, drivers.BuildOpts{
				PIC: true, Retpoline: true, Rerand: true, StackRerand: true, RetEncrypt: true,
			})
			if err != nil {
				return nil, fmt.Errorf("module %d: %w", i, err)
			}
			mod, err := k.Load(obj)
			if err != nil {
				return nil, err
			}
			if err := r.Add(mod); err != nil {
				return nil, err
			}
		}
		// Average the pass cost over several steps.
		var cycles uint64
		const steps = 5
		for s := 0; s < steps; s++ {
			rep, err := r.Step()
			if err != nil {
				return nil, err
			}
			cycles += rep.Cycles
			k.SMR.Flush()
		}
		perPass := float64(cycles) / steps
		passesPerSec := 1000 / periodMs
		rows = append(rows, ScalabilityRow{
			Modules: n, PeriodMs: periodMs,
			CPUPct: perPass * passesPerSec / sim.CPUHz * 100,
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// §6 — security analysis numbers.

// SecurityReport aggregates the §6 quantitative claims.
type SecurityReport struct {
	VanillaGuessProb  float64 // 2^-19
	Full64GuessProb   float64 // 2^-44
	VanillaBruteForce attack.BruteForceResult
	Full64BruteForce  attack.BruteForceResult
	JITROPVanilla     attack.JITROPOutcome // no re-randomization: succeeds
	JITROPDefended    attack.JITROPOutcome // 5 ms period: fails
	AttackMicros      float64
}

// SecurityAnalysis reproduces the §6 numbers: guess probabilities, an
// empirical brute-force campaign against both KASLR windows, and the
// JIT-ROP race against the re-randomization interval.
func SecurityAnalysis() (SecurityReport, error) {
	var rep SecurityReport
	rep.VanillaGuessProb = attack.GuessProbability(attack.VanillaWindowBits)
	rep.Full64GuessProb = attack.GuessProbability(attack.Full64WindowBits)

	rng := rand.New(rand.NewSource(66))
	// Empirical brute force: a module of 8 pages inside each window.
	const modBytes = 8 * 4096
	rep.VanillaBruteForce = attack.SimulateBruteForce(rng, 0, 1<<attack.VanillaWindowBits, 1<<28, modBytes, 4<<20)
	rep.Full64BruteForce = attack.SimulateBruteForce(rng, 0, 1<<attack.Full64WindowBits, 1<<40, modBytes, 4<<20)

	// JIT-ROP against a vulnerable driver, vanilla vs defended.
	mkKernel := func() (*kernel.Kernel, error) {
		return kernel.New(kernel.Config{NumCPUs: 4, Seed: 13, KASLR: kernel.KASLRFull64})
	}
	vulnerable := func() *kcc.Module {
		m := &kcc.Module{Name: "vuln"}
		m.AddFunc("vuln_ioctl", true, vulnBody()...)
		return m
	}

	kv, err := mkKernel()
	if err != nil {
		return rep, err
	}
	objV, err := kcc.Compile(vulnerable(), kcc.Options{Model: kcc.ModelPIC})
	if err != nil {
		return rep, err
	}
	modV, err := kv.Load(objV)
	if err != nil {
		return rep, err
	}
	rep.JITROPVanilla = attack.SimulateJITROP(kv, modV, attack.DefaultJITROP, 0, nil)

	kd, err := mkKernel()
	if err != nil {
		return rep, err
	}
	objD, err := drivers.Build(vulnerable(), drivers.BuildOpts{PIC: true, Rerand: true})
	if err != nil {
		return rep, err
	}
	modD, err := kd.Load(objD)
	if err != nil {
		return rep, err
	}
	rep.JITROPDefended = attack.SimulateJITROP(kd, modD, attack.DefaultJITROP, 5_000, func() error {
		if _, err := modD.Rerandomize(); err != nil {
			return err
		}
		kd.SMR.Flush()
		return nil
	})
	rep.AttackMicros = rep.JITROPDefended.ElapsedMicros
	return rep, nil
}

// vulnBody is a buffer-handling entry with the usual pop-rich epilogue.
func vulnBody() []kcc.Ins {
	return []kcc.Ins{
		kcc.Push(isa.RDX),
		kcc.Push(isa.RSI),
		kcc.Push(isa.RDI),
		kcc.MovImm(isa.RAX, 0),
		kcc.Pop(isa.RDI),
		kcc.Pop(isa.RSI),
		kcc.Pop(isa.RDX),
		kcc.Ret(),
	}
}
