package workload

import "testing"

func TestPatchingAblationShrinksTables(t *testing.T) {
	rows, err := PatchingAblation(500)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// §4.1: the optimizations "substantially reduce the total number
		// of GOT and PLT entries".
		if r.GotEntriesPatched >= r.GotEntriesUnpatched {
			t.Errorf("%s: GOT entries %d (patched) !< %d (unpatched)",
				r.Driver, r.GotEntriesPatched, r.GotEntriesUnpatched)
		}
		if r.StubsPatched > r.StubsUnpatched {
			t.Errorf("%s: stubs %d (patched) > %d (unpatched)",
				r.Driver, r.StubsPatched, r.StubsUnpatched)
		}
		if r.CallsPatched == 0 && r.LoadsPatched == 0 {
			t.Errorf("%s: loader patched nothing", r.Driver)
		}
	}
	// Patching must not make the hot path slower.
	for _, r := range rows {
		if r.Driver != "dummy" {
			continue
		}
		if r.MopsPatched < r.MopsUnpatched*0.999 {
			t.Errorf("patched throughput %.3f below unpatched %.3f", r.MopsPatched, r.MopsUnpatched)
		}
	}
}

func TestSMRAblationHyalineSelfDrives(t *testing.T) {
	rows, err := SMRAblation()
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[string]SMRRow{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	// The §3.4 rationale for Hyaline: reclamation happens as readers
	// leave, with no external driving. QSBR (CodeArmor's choice) stalls
	// until every slot announces quiescence — which idle CPUs never do.
	if d := byScheme["hyaline"].DeltaAfterSteps; d != 0 {
		t.Errorf("hyaline backlog without driving = %d, want 0", d)
	}
	if d := byScheme["qsbr"].DeltaAfterSteps; d == 0 {
		t.Error("qsbr should stall without quiescence announcements")
	}
	if byScheme["ebr"].DeltaAfterSteps > byScheme["qsbr"].DeltaAfterSteps {
		t.Error("EBR should drain at least as well as QSBR under traffic")
	}
	// With explicit driving, every scheme drains fully.
	for _, r := range rows {
		if r.DeltaAfterFlush != 0 {
			t.Errorf("%s: backlog after flush = %d", r.Scheme, r.DeltaAfterFlush)
		}
	}
}

func TestMechanismAblationMonotone(t *testing.T) {
	rows, err := MechanismAblation(1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].MopsPerSec > rows[i-1].MopsPerSec*1.001 {
			t.Errorf("adding %s increased throughput over %s (%.3f > %.3f)",
				rows[i].Mechanism, rows[i-1].Mechanism, rows[i].MopsPerSec, rows[i-1].MopsPerSec)
		}
	}
	total := (rows[0].MopsPerSec - rows[3].MopsPerSec) / rows[0].MopsPerSec * 100
	if total < 2 || total > 20 {
		t.Errorf("total instrumentation cost %.1f%%, expected single-digit-ish (paper ≈10%%)", total)
	}
}
