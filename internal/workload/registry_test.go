package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// Registry invariants: the contract benchtool, bench_test and the CI
// smoke pass rely on.

// legacyBenchtoolIDs are the experiment ids benchtool's hand-written
// switch accepted before the registry existed; every one must resolve.
var legacyBenchtoolIDs = []string{
	"fig1", "fig5a", "fig5b", "fig5c", "fig5d", "fig6", "fig7", "fig8",
	"fig9", "fig10", "table2", "scalability", "security", "ablation", "coalesce",
}

func TestRegistryNamesUniqueAndComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments.All() {
		if e.Name == "" {
			t.Fatal("experiment with empty name registered")
		}
		if seen[e.Name] {
			t.Fatalf("duplicate experiment name %q", e.Name)
		}
		seen[e.Name] = true
		if e.Run == nil {
			t.Fatalf("%s: no Run function", e.Name)
		}
		if e.Figure == "" || e.Doc == "" {
			t.Fatalf("%s: descriptor missing Figure/Doc", e.Name)
		}
	}
	if len(Experiments.Names()) != len(Experiments.All()) {
		t.Fatal("Names and All disagree")
	}
}

func TestRegistryResolvesEveryLegacyFigureID(t *testing.T) {
	for _, id := range legacyBenchtoolIDs {
		if _, ok := Experiments.Lookup(id); !ok {
			t.Errorf("legacy benchtool id %q not resolvable", id)
		}
	}
	if len(Experiments.All()) < len(legacyBenchtoolIDs) {
		t.Fatalf("registry holds %d experiments, fewer than the %d legacy ids",
			len(Experiments.All()), len(legacyBenchtoolIDs))
	}
}

func TestRegistryQuickScaleParamsValid(t *testing.T) {
	for _, e := range Experiments.All() {
		seen := map[string]bool{}
		for _, s := range e.ParamSpecs {
			if s.Name == "" || seen[s.Name] {
				t.Fatalf("%s: bad or duplicate param %q", e.Name, s.Name)
			}
			seen[s.Name] = true
			if s.Default <= 0 {
				t.Errorf("%s: param %q default %d not positive", e.Name, s.Name, s.Default)
			}
			if s.Quick < 0 || s.Quick > s.Default {
				t.Errorf("%s: param %q quick %d outside [0, default %d]", e.Name, s.Name, s.Quick, s.Default)
			}
			if strings.HasSuffix(s.Name, "seed") && s.Quick != 0 {
				t.Errorf("%s: seed param %q must not quick-scale", e.Name, s.Name)
			}
		}
		// Quick params must actually resolve: the -quick value substitutes
		// only where declared, defaults elsewhere.
		p := e.Params(true)
		for _, s := range e.ParamSpecs {
			want := s.Default
			if s.Quick != 0 {
				want = s.Quick
			}
			if got := p.Int64(s.Name); got != want {
				t.Errorf("%s: quick param %s = %d, want %d", e.Name, s.Name, got, want)
			}
		}
	}
}

func TestRegistryRegisterRejectsBadDescriptors(t *testing.T) {
	expectPanic := func(name string, e *Experiment, r *Registry) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		r.Register(e)
	}
	run := func(Params) (*Table, error) { return &Table{}, nil }
	expectPanic("empty name", &Experiment{Run: run}, NewRegistry())
	expectPanic("nil Run", &Experiment{Name: "x"}, NewRegistry())
	expectPanic("duplicate", &Experiment{Name: "x", Run: run},
		NewRegistry(&Experiment{Name: "x", Run: run}))
	expectPanic("quick > default", &Experiment{Name: "x", Run: run,
		ParamSpecs: []ParamSpec{{Name: "ops", Default: 10, Quick: 20}}}, NewRegistry())
	expectPanic("quick-scaled seed", &Experiment{Name: "x", Run: run,
		ParamSpecs: []ParamSpec{{Name: "seed", Default: 10, Quick: 5}}}, NewRegistry())
}

func TestRegistrySuggestion(t *testing.T) {
	cases := map[string]string{
		"fig5":        "fig5a", // truncated
		"fig5B":       "fig5b", // case slip
		"tabel2":      "table2",
		"coalescing":  "coalesce",
		"scalabilty":  "scalability",
		"qqqqqqqqqqq": "", // nothing plausible
	}
	for in, want := range cases {
		if got := Experiments.Suggest(in); got != want {
			t.Errorf("Suggest(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParamsSetUnknownKeyErrors(t *testing.T) {
	e, _ := Experiments.Lookup("fig9")
	p := e.Params(false)
	if err := p.Set("bogus", 1); err == nil {
		t.Fatal("Set of unknown param did not error")
	} else if !strings.Contains(err.Error(), "ops") {
		t.Errorf("error does not list available params: %v", err)
	}
	if err := p.Set("ops", 42); err != nil {
		t.Fatal(err)
	}
	if p.Int("ops") != 42 {
		t.Fatalf("override did not stick: %d", p.Int("ops"))
	}
	if err := p.SetString("ops", "not-a-number"); err == nil {
		t.Fatal("SetString accepted a non-integer")
	}
}

// TestTableRenderAndJSONShape pins the rendering contract on a toy
// table: framed title, single-space-joined formatted cells, notes, and
// JSON that round-trips with rows matching the schema.
func TestTableRenderAndJSONShape(t *testing.T) {
	tab := &Table{
		Title: "toy",
		Columns: []Column{
			Col("name", "%-6s", "%-6s"),
			Col("val", "%8.1f", "%8s"),
		},
	}
	tab.AddRow("a", 1.25)
	tab.AddRow("b", 2.0)
	tab.Notef("note %d", 7)
	var buf bytes.Buffer
	tab.Fprint(&buf)
	want := fmt.Sprintf("\n== toy ==\n%-6s %8s\n%-6s %8.1f\n%-6s %8.1f\nnote 7\n",
		"name", "val", "a", 1.25, "b", 2.0)
	if buf.String() != want {
		t.Fatalf("render mismatch:\n%q\nwant\n%q", buf.String(), want)
	}

	b, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		Title   string  `json:"title"`
		Columns []any   `json:"columns"`
		Rows    [][]any `json:"rows"`
		Notes   []string
	}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Title != "toy" || len(back.Rows) != 2 || len(back.Rows[0]) != len(back.Columns) {
		t.Fatalf("JSON shape wrong: %s", b)
	}

	defer func() {
		if recover() == nil {
			t.Error("AddRow with wrong arity did not panic")
		}
	}()
	tab.AddRow("only-one-cell")
}
