package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// Override resolution: the one code path that turns "-p key=val" /
// "key=lo..hi[:step]" pairs (benchtool flags, the fleet service's JSON
// params) into a resolved Params set plus at most one sweep range.
// benchtool and internal/service both resolve through here, so
// default/quick/range semantics cannot drift between the CLI and the
// HTTP API.

// SplitOverride splits one "key=val" pair.
func SplitOverride(kv string) (key, val string, err error) {
	key, val, ok := strings.Cut(kv, "=")
	if !ok || key == "" {
		return "", "", fmt.Errorf("override %q: want key=val", kv)
	}
	return key, val, nil
}

// ResolveOverrides resolves the experiment's defaults (quick-scaled when
// quick), then applies the overrides in order. A value may be a plain
// integer or a range "lo..hi[:step]"; at most one parameter may carry a
// range, returned as (sweepParam, sweepValues) with the parameter itself
// set to the first point (sweepParam == "" means no range). Malformed
// pairs and bad values always error; a key the experiment does not
// declare errors under strict and is skipped otherwise — benchtool's
// multi-experiment runs tune each experiment with the overrides it has,
// while the service rejects unknown keys per request.
func (e *Experiment) ResolveOverrides(quick bool, overrides []string, strict bool) (Params, string, []int64, error) {
	p := e.Params(quick)
	var sweepParam string
	var sweepValues []int64
	for _, kv := range overrides {
		k, v, err := SplitOverride(kv)
		if err != nil {
			return p, "", nil, err
		}
		vals, isRange, err := ParseRange(v)
		if isRange {
			if err != nil {
				return p, "", nil, err
			}
			if err := p.Set(k, vals[0]); err != nil {
				if strict {
					return p, "", nil, err
				}
				continue // this experiment has no such param
			}
			if sweepParam != "" && sweepParam != k {
				return p, "", nil, fmt.Errorf("%s: one -p range per run (have %s and %s)", e.Name, sweepParam, k)
			}
			sweepParam, sweepValues = k, vals
			continue
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return p, "", nil, fmt.Errorf("parameter %q: %q is not an integer (or lo..hi[:step] range)", k, v)
		}
		if err := p.Set(k, n); err != nil {
			if strict {
				return p, "", nil, err
			}
			continue
		}
	}
	return p, sweepParam, sweepValues, nil
}

// CheckOverrides validates a set of overrides against a selection of
// experiment names up front: every pair must be well-formed, every value
// must parse as an integer or range, and every key must be declared by
// at least one selected experiment — catching a typo'd key or value
// before anything runs beats silently running everything at defaults.
func (r *Registry) CheckOverrides(names, overrides []string) error {
	for _, kv := range overrides {
		k, v, err := SplitOverride(kv)
		if err != nil {
			return err
		}
		if _, isRange, err := ParseRange(v); isRange {
			if err != nil {
				return fmt.Errorf("-p %s: %w", kv, err)
			}
		} else if _, err := strconv.ParseInt(v, 10, 64); err != nil {
			return fmt.Errorf("-p %s: %q is not an integer (or lo..hi[:step] range)", kv, v)
		}
		matched := false
		for _, name := range names {
			if exp, ok := r.Lookup(name); ok {
				for _, s := range exp.ParamSpecs {
					if s.Name == k {
						matched = true
					}
				}
			}
		}
		if !matched {
			return fmt.Errorf("-p %s: no selected experiment has parameter %q (see benchtool list)", kv, k)
		}
	}
	return nil
}
