// Package workload regenerates every table and figure of the paper's
// evaluation (§5–§6): the workload generators, parameter sweeps, baseline
// configurations and result shaping. Each experiment returns typed rows;
// cmd/benchtool renders them as the tables behind the figures, and
// bench_test.go exposes them as testing.B benchmarks.
package workload

import (
	"fmt"

	"adelie/internal/cpu"
	"adelie/internal/drivers"
	"adelie/internal/kernel"
	"adelie/internal/sim"
)

// Config names the standard build configurations the evaluation compares
// (§5.1 uses the first four; §5.2–5.3 use the re-randomizable ones).
type Config string

const (
	CfgVanilla     Config = "linux"        // absolute model, no retpoline
	CfgVanillaRet  Config = "linux+ret"    // absolute model, retpoline
	CfgPIC         Config = "pic"          // PIC modules, no retpoline
	CfgPICRet      Config = "pic+ret"      // PIC modules, retpoline
	CfgRerand      Config = "rerand"       // re-randomizable, wrappers only
	CfgRerandStack Config = "rerand+stack" // + stack re-randomization
)

// buildOpts maps a configuration to driver build options.
func buildOpts(c Config) drivers.BuildOpts {
	switch c {
	case CfgVanilla:
		return drivers.BuildOpts{}
	case CfgVanillaRet:
		return drivers.BuildOpts{Retpoline: true}
	case CfgPIC:
		return drivers.BuildOpts{PIC: true}
	case CfgPICRet:
		return drivers.BuildOpts{PIC: true, Retpoline: true}
	case CfgRerand:
		return drivers.BuildOpts{PIC: true, Retpoline: true, Rerand: true, RetEncrypt: true}
	case CfgRerandStack:
		return drivers.BuildOpts{PIC: true, Retpoline: true, Rerand: true, RetEncrypt: true, StackRerand: true}
	}
	panic("workload: unknown config " + string(c))
}

// kaslrFor returns the KASLR mode a configuration runs under: non-PIC
// modules need the vanilla 2 GB window; PIC builds get full 64-bit KASLR.
func kaslrFor(c Config) kernel.KASLRMode {
	if c == CfgVanilla || c == CfgVanillaRet {
		return kernel.KASLRVanilla
	}
	return kernel.KASLRFull64
}

// newMachine provides a booted testbed for the configuration with the
// listed drivers loaded. Normally that is a cold boot; while a parallel
// sweep has the fork pool enabled it is a copy-on-write fork of a frozen
// template — indistinguishable by the fork-determinism contract.
func newMachine(c Config, seed int64, driverNames ...string) (*sim.Machine, error) {
	return newMachineQ(c, seed, 1, driverNames...)
}

// newMachineQ is newMachine with an explicit NIC RX queue count (the
// server experiment sweeps it; every legacy figure uses the single-queue
// shape via newMachine).
func newMachineQ(c Config, seed int64, queues int, driverNames ...string) (*sim.Machine, error) {
	if m, ok := poolFork(c, seed, queues, driverNames); ok {
		attachObs(m, c, seed, queues, true, driverNames)
		return m, nil
	}
	if forkPool.on.Load() {
		forkPool.coldBoots.Add(1) // pool miss: unforkable shape or fork failure
	}
	m, err := bootMachineQ(c, seed, queues, driverNames...)
	if err == nil {
		attachObs(m, c, seed, queues, false, driverNames)
	}
	return m, err
}

// NewBenchMachine is the exported machine factory for harness
// benchmarks (benchtool selfbench measures snapshot/fork latency on the
// same machine shape the figures boot). It behaves exactly like the
// experiments' internal factory, fork pool included.
func NewBenchMachine(c Config, seed int64, driverNames ...string) (*sim.Machine, error) {
	return newMachine(c, seed, driverNames...)
}

// bootMachine cold-boots a testbed and loads the listed drivers.
func bootMachine(c Config, seed int64, driverNames ...string) (*sim.Machine, error) {
	return bootMachineQ(c, seed, 1, driverNames...)
}

func bootMachineQ(c Config, seed int64, queues int, driverNames ...string) (*sim.Machine, error) {
	m, err := sim.NewMachine(sim.Config{NumCPUs: 20, Seed: seed, KASLR: kaslrFor(c), NICQueues: queues})
	if err != nil {
		return nil, err
	}
	for _, d := range driverNames {
		if _, err := m.LoadDriver(d, buildOpts(c)); err != nil {
			return nil, fmt.Errorf("workload: %s/%s: %w", c, d, err)
		}
	}
	return m, nil
}

// Nominal native-path costs (cycles). SyscallEntry covers user→kernel
// transition plus the core-kernel path down to the driver; the app costs
// stand in for the server software the paper runs unmodified (mySQL,
// Apache), which executes in user space and is not instrumented.
const (
	SyscallEntry  = 1800    // syscall + VFS / socket layer
	PageCopyCost  = 700     // copying one 4 KB page out of the buffer cache
	OLTPQueryCost = 420_000 // mySQL-side work per query
	HTTPAppCost   = 90_000  // Apache-side work per request
	CompileOpCost = 3_000   // per syscall of the kernbench mix
)

// syscallCost returns the per-syscall kernel-path cost for a
// configuration: retpoline-enabled kernels pay extra for every indirect
// call in the core-kernel path (§2.5), independent of the module model.
func syscallCost(c Config) uint64 {
	switch c {
	case CfgVanilla, CfgPIC:
		return SyscallEntry
	}
	return SyscallEntry + RetpolineKernelTax
}

// RetpolineKernelTax is the added core-kernel cost per syscall under the
// retpoline mitigation.
const RetpolineKernelTax = 260

// callVA resolves a symbol once; per-op lookups would distort cycle
// accounting.
func callVA(m *sim.Machine, sym string) (uint64, error) {
	va, ok := m.K.Symbol(sym)
	if !ok {
		return 0, fmt.Errorf("workload: symbol %q not exported", sym)
	}
	return va, nil
}

// burn charges pure-CPU work to the vCPU without interpreting code — the
// stand-in for uninstrumented native paths (buffer-cache copies,
// user-space server work).
func burn(c *cpu.CPU, cycles uint64) { c.Cycles += cycles }
