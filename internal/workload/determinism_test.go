package workload

import (
	"fmt"
	"strings"
	"testing"

	"adelie/internal/cpu"
	"adelie/internal/sim"
)

// Determinism tests: every experiment must reproduce bit-identically
// under its fixed seed, which is what makes EXPERIMENTS.md's recorded
// numbers verifiable.

// TestSuperblockRetirementDeterministic drives a driver path through the
// full engine twice and requires identical RunResults — including the
// count of basic blocks retired by superblock execution, which must be
// nonzero (the hot path is actually in use) and lane-order independent.
func TestSuperblockRetirementDeterministic(t *testing.T) {
	run := func() sim.RunResult {
		m, err := newMachine(CfgPICRet, 411, "dummy")
		if err != nil {
			t.Fatal(err)
		}
		ioctlVA, err := callVA(m, "dummy_ioctl")
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(sim.RunConfig{Ops: 300, Workers: 8, SyscallCycles: SyscallEntry},
			func(c *cpu.CPU) (uint64, error) {
				_, err := c.Call(ioctlVA, 1)
				return 0, err
			})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("RunResult not deterministic:\n%+v\n%+v", a, b)
	}
	if a.Blocks == 0 {
		t.Fatal("no superblocks retired; hot path not in use")
	}
}

func TestDDDeterministic(t *testing.T) {
	a, err := DD(CfgPICRet, 16, 200)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DD(CfgPICRet, 16, 200)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("DD not deterministic: %+v vs %+v", a, b)
	}
}

func TestNVMeDeterministic(t *testing.T) {
	a, err := NVMeDirectRead(Period1ms, false, 300)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NVMeDirectRead(Period1ms, false, 300)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("NVMe not deterministic: %+v vs %+v", a, b)
	}
}

func TestOLTPDeterministic(t *testing.T) {
	a, err := OLTP(Period5ms, false, 50, 60)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OLTP(Period5ms, false, 50, 60)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("OLTP not deterministic: %+v vs %+v", a, b)
	}
}

func TestIoctlDeterministic(t *testing.T) {
	a, err := Ioctl("wrappers+stack", CfgRerandStack, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Ioctl("wrappers+stack", CfgRerandStack, 500)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("Ioctl not deterministic: %+v vs %+v", a, b)
	}
}

// TestNICInterruptDeterministic is the interrupt-path determinism
// contract: frame injection, coalescing decisions, ring overruns and
// ISR dispatches all ride the barrier-synchronized clock, so repeated
// runs must produce identical RunResults (including IRQ counts and
// cycles), identical NIC/driver counters, and an identical delivery
// order (line, cycle) trace — while actually overflowing the RX ring
// with coalescing enabled.
func TestNICInterruptDeterministic(t *testing.T) {
	type outcome struct {
		row CoalesceRow
		res sim.RunResult
	}
	run := func() (outcome, []string) {
		// maxFrames=16 on a 16-slot ring defers drains past ring
		// capacity: overruns are part of the scenario under test.
		row, res, m, err := nicCoalesceRun(16, 200, 240)
		if err != nil {
			t.Fatal(err)
		}
		var trace []string
		for _, d := range m.Bus.IC().Trace() {
			trace = append(trace, fmt.Sprintf("%d@%d:%v", d.Line, d.AtCycle, d.Handled))
		}
		return outcome{row, res}, trace
	}
	a, at := run()
	b, bt := run()
	if a != b {
		t.Fatalf("coalescing run not deterministic:\n%+v\n%+v", a, b)
	}
	if len(at) == 0 {
		t.Fatal("no interrupts delivered")
	}
	if strings.Join(at, ",") != strings.Join(bt, ",") {
		t.Fatalf("delivery order differs:\n%v\n%v", at, bt)
	}
	if a.row.Dropped == 0 {
		t.Fatal("scenario did not overrun the RX ring; overflow path untested")
	}
	if a.row.DrainedRx == 0 || a.res.IRQs == 0 {
		t.Fatalf("ISR never drained: %+v", a.row)
	}
}

// TestCoalescingSweepDistinct: the acceptance property — the max-frames
// sweep produces *distinct* RX-latency/IRQ/drop curves, not one curve
// relabeled. Latency must rise monotonically with the threshold and the
// interrupt rate must fall.
func TestCoalescingSweepDistinct(t *testing.T) {
	rows, err := NICCoalesceSweep(240)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].AvgIRQLatUs <= rows[i-1].AvgIRQLatUs {
			t.Fatalf("RX latency not rising with coalescing: %+v", rows)
		}
		if rows[i].IRQsRaised >= rows[i-1].IRQsRaised {
			t.Fatalf("IRQ rate not falling with coalescing: %+v", rows)
		}
	}
	// Aggressive coalescing on the small ring must overrun; per-frame
	// interrupts must not.
	if rows[0].Dropped != 0 {
		t.Fatalf("per-frame config dropped %d frames", rows[0].Dropped)
	}
	if rows[2].Dropped == 0 {
		t.Fatalf("max-frames=16 config never overran the ring: %+v", rows[2])
	}
	// Everything the wire kept was eventually drained by the ISR.
	for _, r := range rows {
		if r.DrainedRx != r.RxFrames {
			t.Fatalf("frames lost between ring and ISR: %+v", r)
		}
	}
}

func TestGadgetDistributionDeterministic(t *testing.T) {
	a, err := GadgetDistribution(10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GadgetDistribution(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Population != b[i].Population || a[i].Dist.Total() != b[i].Dist.Total() {
			t.Fatalf("gadget distribution not deterministic at row %d", i)
		}
		for c, n := range a[i].Dist {
			if b[i].Dist[c] != n {
				t.Fatalf("class %s differs: %d vs %d", c, n, b[i].Dist[c])
			}
		}
	}
}

func TestScalabilityDeterministic(t *testing.T) {
	a, err := Scalability([]int{10}, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Scalability([]int{10}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Fatalf("scalability not deterministic: %+v vs %+v", a[0], b[0])
	}
}
