package workload

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"adelie/internal/cpu"
	"adelie/internal/sim"
)

// Determinism tests: every experiment must reproduce bit-identically
// under its fixed seed, which is what makes EXPERIMENTS.md's recorded
// numbers verifiable.

// TestSuperblockRetirementDeterministic drives a driver path through the
// full engine twice and requires identical RunResults — including the
// count of basic blocks retired by superblock execution, which must be
// nonzero (the hot path is actually in use) and lane-order independent.
func TestSuperblockRetirementDeterministic(t *testing.T) {
	run := func() sim.RunResult {
		m, err := newMachine(CfgPICRet, 411, "dummy")
		if err != nil {
			t.Fatal(err)
		}
		ioctlVA, err := callVA(m, "dummy_ioctl")
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(sim.RunConfig{Ops: 300, Workers: 8, SyscallCycles: SyscallEntry},
			func(c *cpu.CPU) (uint64, error) {
				_, err := c.Call(ioctlVA, 1)
				return 0, err
			})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("RunResult not deterministic:\n%+v\n%+v", a, b)
	}
	if a.Blocks == 0 {
		t.Fatal("no superblocks retired; hot path not in use")
	}
	if a.ChainedBlocks == 0 {
		t.Fatal("no blocks entered via trace links; chaining not in use on the hot path")
	}
}

// TestRegistryChainedUnchainedEquivalent is the cross-mode contract the
// CI equivalence gate enforces at -quick scale: every registered
// experiment must produce a bit-identical Table with trace linking
// disabled (cpu.SetChaining / ADELIE_NOCHAIN=1). Charged cycles can only
// diverge when a followed link's successor translation would have missed
// the TLB on the dispatch path — the same capacity-pressure exception
// superblock execution documents against single-stepping — and every
// registered experiment's working set is TLB-resident.
func TestRegistryChainedUnchainedEquivalent(t *testing.T) {
	for _, e := range Experiments.All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			run := func() *Table {
				p := e.Params(true)
				for k, v := range determinismOverrides[e.Name] {
					if err := p.Set(k, v); err != nil {
						t.Fatal(err)
					}
				}
				tab, err := e.Run(p)
				if err != nil {
					t.Fatal(err)
				}
				return tab
			}
			chained := run()
			was := cpu.SetChaining(false)
			t.Cleanup(func() { cpu.SetChaining(was) }) // restore even when run() t.Fatals
			unchained := run()
			if !reflect.DeepEqual(chained, unchained) {
				t.Errorf("chained and unchained tables differ:\n%+v\n%+v", chained, unchained)
			}
		})
	}
}

// TestRegistryIndirectOffEquivalent is the middle column of the
// three-mode matrix: every registered experiment must produce a
// bit-identical Table with the monomorphic indirect target cache
// disabled (cpu.SetIndirect / ADELIE_NOINDIRECT=1) while direct links
// stay on. Same TLB-resident working-set argument as the chained/
// unchained contract above.
func TestRegistryIndirectOffEquivalent(t *testing.T) {
	for _, e := range Experiments.All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			run := func() *Table {
				p := e.Params(true)
				for k, v := range determinismOverrides[e.Name] {
					if err := p.Set(k, v); err != nil {
						t.Fatal(err)
					}
				}
				tab, err := e.Run(p)
				if err != nil {
					t.Fatal(err)
				}
				return tab
			}
			full := run()
			was := cpu.SetIndirect(false)
			t.Cleanup(func() { cpu.SetIndirect(was) }) // restore even when run() t.Fatals
			directOnly := run()
			if !reflect.DeepEqual(full, directOnly) {
				t.Errorf("full and direct-only tables differ:\n%+v\n%+v", full, directOnly)
			}
		})
	}
}

// determinismOverrides shrinks each experiment's work below even its
// -quick scale so the registry-wide rerun test stays fast; the values
// mirror the op counts the old per-figure determinism tests used.
var determinismOverrides = map[string]map[string]int64{
	"fig5a":       {"ops": 4},
	"fig5b":       {"ops": 200},
	"fig5d":       {"conc": 20},
	"fig7":        {"ops": 60, "conc": 50},
	"fig8":        {"ops": 30, "block": 512, "conc": 20},
	"fig9":        {"ops": 500},
	"fig10":       {"ops": 10},
	"table2":      {"ops": 40},
	"scalability": {"mods": 10},
	"server":      {"ops": 24},
}

// TestRegistryExperimentsDeterministic is the registry-wide determinism
// contract: every registered experiment, rerun with identical params,
// must produce a bit-identical Table — same typed cells, same rendered
// bytes. This is what makes the recorded figures verifiable and lets CI
// treat any drift as a bug.
func TestRegistryExperimentsDeterministic(t *testing.T) {
	for _, e := range Experiments.All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			run := func() (*Table, string) {
				p := e.Params(true)
				for k, v := range determinismOverrides[e.Name] {
					if err := p.Set(k, v); err != nil {
						t.Fatal(err)
					}
				}
				tab, err := e.Run(p)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				tab.Fprint(&buf)
				return tab, buf.String()
			}
			ta, ra := run()
			tb, rb := run()
			if !reflect.DeepEqual(ta, tb) {
				t.Errorf("tables differ across reruns:\n%+v\n%+v", ta, tb)
			}
			if ra != rb {
				t.Errorf("rendered output differs across reruns:\n%s\n---\n%s", ra, rb)
			}
			if len(ta.Rows) == 0 && len(ta.Children) == 0 {
				t.Error("experiment produced an empty table")
			}
		})
	}
}

// TestNICInterruptDeterministic is the interrupt-path determinism
// contract: frame injection, coalescing decisions, ring overruns and
// ISR dispatches all ride the barrier-synchronized clock, so repeated
// runs must produce identical RunResults (including IRQ counts and
// cycles), identical NIC/driver counters, and an identical delivery
// order (line, cycle) trace — while actually overflowing the RX ring
// with coalescing enabled.
func TestNICInterruptDeterministic(t *testing.T) {
	type outcome struct {
		row CoalesceRow
		res sim.RunResult
	}
	run := func() (outcome, []string) {
		// maxFrames=16 on a 16-slot ring defers drains past ring
		// capacity: overruns are part of the scenario under test.
		row, res, m, err := nicCoalesceRun(16, 200, 240)
		if err != nil {
			t.Fatal(err)
		}
		var trace []string
		for _, d := range m.Bus.IC().Trace() {
			trace = append(trace, fmt.Sprintf("%d>%d@%d:%v", d.Line, d.VCPU, d.AtCycle, d.Handled))
		}
		return outcome{row, res}, trace
	}
	a, at := run()
	b, bt := run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("coalescing run not deterministic:\n%+v\n%+v", a, b)
	}
	if len(at) == 0 {
		t.Fatal("no interrupts delivered")
	}
	if strings.Join(at, ",") != strings.Join(bt, ",") {
		t.Fatalf("delivery order differs:\n%v\n%v", at, bt)
	}
	if a.row.Dropped == 0 {
		t.Fatal("scenario did not overrun the RX ring; overflow path untested")
	}
	if a.row.DrainedRx == 0 || a.res.IRQs == 0 {
		t.Fatalf("ISR never drained: %+v", a.row)
	}
}

// TestISRDeliveryUnaffectedByChaining: trace linking must never carry a
// chain across the engine's barrier-synchronized clock boundary, so an
// ISR "arriving mid-chain" — a line raised while lanes retire linked
// blocks inside a round — is still delivered at exactly the same
// boundary, in the same order, with the same cycle stamps as unchained
// execution. The scenario overflows the RX ring under coalescing so
// drops, drains and re-asserted lines are all in play.
func TestISRDeliveryUnaffectedByChaining(t *testing.T) {
	run := func() (CoalesceRow, sim.RunResult, []string) {
		row, res, m, err := nicCoalesceRun(16, 200, 240)
		if err != nil {
			t.Fatal(err)
		}
		var trace []string
		for _, d := range m.Bus.IC().Trace() {
			trace = append(trace, fmt.Sprintf("%d>%d@%d:%v", d.Line, d.VCPU, d.AtCycle, d.Handled))
		}
		return row, res, trace
	}
	rowC, resC, traceC := run()
	was := cpu.SetChaining(false)
	t.Cleanup(func() { cpu.SetChaining(was) }) // restore even when run() t.Fatals
	rowU, resU, traceU := run()
	if resC.ChainedBlocks == 0 || resU.ChainedBlocks != 0 {
		t.Fatalf("mode mix-up: chained=%d unchained=%d links followed",
			resC.ChainedBlocks, resU.ChainedBlocks)
	}
	resC.ChainedBlocks, resU.ChainedBlocks = 0, 0
	resC.IndirectChained, resU.IndirectChained = 0, 0
	if rowC != rowU || !reflect.DeepEqual(resC, resU) {
		t.Fatalf("coalescing outcome differs across modes:\n%+v %+v\n%+v %+v", rowC, resC, rowU, resU)
	}
	if strings.Join(traceC, ",") != strings.Join(traceU, ",") {
		t.Fatalf("IRQ delivery order differs across modes:\n%v\n%v", traceC, traceU)
	}
}

// TestCoalescingSweepDistinct: the acceptance property — the max-frames
// sweep produces *distinct* RX-latency/IRQ/drop curves, not one curve
// relabeled. Latency must rise monotonically with the threshold and the
// interrupt rate must fall.
func TestCoalescingSweepDistinct(t *testing.T) {
	rows, err := NICCoalesceSweep(240)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].AvgIRQLatUs <= rows[i-1].AvgIRQLatUs {
			t.Fatalf("RX latency not rising with coalescing: %+v", rows)
		}
		if rows[i].IRQsRaised >= rows[i-1].IRQsRaised {
			t.Fatalf("IRQ rate not falling with coalescing: %+v", rows)
		}
	}
	// Aggressive coalescing on the small ring must overrun; per-frame
	// interrupts must not.
	if rows[0].Dropped != 0 {
		t.Fatalf("per-frame config dropped %d frames", rows[0].Dropped)
	}
	if rows[2].Dropped == 0 {
		t.Fatalf("max-frames=16 config never overran the ring: %+v", rows[2])
	}
	// Everything the wire kept was eventually drained by the ISR.
	for _, r := range rows {
		if r.DrainedRx != r.RxFrames {
			t.Fatalf("frames lost between ring and ISR: %+v", r)
		}
	}
}

// TestSeedParamMovesEveryExperiment: overriding the standard seed param
// must actually reach the machines — a different seed may change the
// table, and the same non-default seed must still be deterministic.
// (KASLR placement differs per seed, but most figure *metrics* are
// placement-independent by design, so this checks determinism under
// override rather than that outputs differ.)
func TestSeedParamMovesEveryExperiment(t *testing.T) {
	e, ok := Experiments.Lookup("scalability")
	if !ok {
		t.Fatal("scalability not registered")
	}
	run := func(seed int64) *Table {
		p := e.Params(true)
		if err := p.Set("mods", 5); err != nil {
			t.Fatal(err)
		}
		if err := p.Set("seed", seed); err != nil {
			t.Fatal(err)
		}
		tab, err := e.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	a, b := run(1234), run(1234)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("non-default seed not deterministic:\n%+v\n%+v", a, b)
	}
	// The override must actually reach the machines, not just be
	// declared: the security experiment's brute-force campaign is
	// seed-sensitive (probe order derives from the seed), so a different
	// seed must change its table while staying deterministic itself.
	sec, ok := Experiments.Lookup("security")
	if !ok {
		t.Fatal("security not registered")
	}
	runSec := func(seed int64) *Table {
		p := sec.Params(true)
		if err := p.Set("seed", seed); err != nil {
			t.Fatal(err)
		}
		tab, err := sec.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	def, moved := runSec(seedSecurity), runSec(seedSecurity+1)
	if reflect.DeepEqual(def, moved) {
		t.Error("security table identical under a different seed; -p seed= override is not reaching the experiment")
	}
	if again := runSec(seedSecurity + 1); !reflect.DeepEqual(moved, again) {
		t.Error("security not deterministic under an overridden seed")
	}
	// Every experiment that boots a machine or kernel declares "seed".
	for _, e := range Experiments.All() {
		switch e.Name {
		case "fig1", "fig10", "table2": // corpus-only, no kernel boot
			continue
		}
		found := false
		for _, s := range e.ParamSpecs {
			if s.Name == "seed" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no standard seed param", e.Name)
		}
	}
}
