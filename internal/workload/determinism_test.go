package workload

import (
	"testing"

	"adelie/internal/cpu"
	"adelie/internal/sim"
)

// Determinism tests: every experiment must reproduce bit-identically
// under its fixed seed, which is what makes EXPERIMENTS.md's recorded
// numbers verifiable.

// TestSuperblockRetirementDeterministic drives a driver path through the
// full engine twice and requires identical RunResults — including the
// count of basic blocks retired by superblock execution, which must be
// nonzero (the hot path is actually in use) and lane-order independent.
func TestSuperblockRetirementDeterministic(t *testing.T) {
	run := func() sim.RunResult {
		m, err := newMachine(CfgPICRet, 411, "dummy")
		if err != nil {
			t.Fatal(err)
		}
		ioctlVA, err := callVA(m, "dummy_ioctl")
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(sim.RunConfig{Ops: 300, Workers: 8, SyscallCycles: SyscallEntry},
			func(c *cpu.CPU) (uint64, error) {
				_, err := c.Call(ioctlVA, 1)
				return 0, err
			})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("RunResult not deterministic:\n%+v\n%+v", a, b)
	}
	if a.Blocks == 0 {
		t.Fatal("no superblocks retired; hot path not in use")
	}
}

func TestDDDeterministic(t *testing.T) {
	a, err := DD(CfgPICRet, 16, 200)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DD(CfgPICRet, 16, 200)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("DD not deterministic: %+v vs %+v", a, b)
	}
}

func TestNVMeDeterministic(t *testing.T) {
	a, err := NVMeDirectRead(Period1ms, false, 300)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NVMeDirectRead(Period1ms, false, 300)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("NVMe not deterministic: %+v vs %+v", a, b)
	}
}

func TestOLTPDeterministic(t *testing.T) {
	a, err := OLTP(Period5ms, false, 50, 60)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OLTP(Period5ms, false, 50, 60)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("OLTP not deterministic: %+v vs %+v", a, b)
	}
}

func TestIoctlDeterministic(t *testing.T) {
	a, err := Ioctl("wrappers+stack", CfgRerandStack, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Ioctl("wrappers+stack", CfgRerandStack, 500)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("Ioctl not deterministic: %+v vs %+v", a, b)
	}
}

func TestGadgetDistributionDeterministic(t *testing.T) {
	a, err := GadgetDistribution(10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GadgetDistribution(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Population != b[i].Population || a[i].Dist.Total() != b[i].Dist.Total() {
			t.Fatalf("gadget distribution not deterministic at row %d", i)
		}
		for c, n := range a[i].Dist {
			if b[i].Dist[c] != n {
				t.Fatalf("class %s differs: %d vs %d", c, n, b[i].Dist[c])
			}
		}
	}
}

func TestScalabilityDeterministic(t *testing.T) {
	a, err := Scalability([]int{10}, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Scalability([]int{10}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Fatalf("scalability not deterministic: %+v vs %+v", a[0], b[0])
	}
}
