package workload

import (
	"fmt"
	"sort"

	"adelie/internal/cpu"
	"adelie/internal/engine"
	"adelie/internal/sim"
)

// Request/response server scenario over the per-vCPU interrupt path:
// a load generator injects request frames into the multi-queue RSS NIC
// (queue q's NAPI vector pinned to vCPU q), each server op does
// application work plus one NVMe read served by the completion
// interrupt, and transmits a response frame back to the load generator
// — all under active re-randomization. The row sweep over the queue
// count is the tentpole's end-to-end demonstration: one queue delivers
// every interrupt on vCPU 0 (the legacy shape); more queues spread RX
// vectors across vCPUs bit-reproducibly.

// ServerRow is one queue-count point of the server experiment.
type ServerRow struct {
	Queues    int     // NIC RX queues (RSS)
	RPS       float64 // completed requests per second
	P99Us     float64 // 99th-percentile request latency (µs)
	IRQs      uint64  // ISR dispatches (NIC vectors + NVMe completion)
	IRQVCPUs  int     // distinct vCPUs that handled at least one IRQ
	Responses uint64  // response frames the load generator received
}

// seedServer is the server experiment's default machine seed.
const seedServer int64 = 1103

// serverAppCost is the per-request application work (request parse +
// server logic stand-in), matching the coalescing experiment's op.
const serverAppCost = 40_000

// serverRun executes one queue-count configuration and returns the row
// plus the raw RunResult and machine (for determinism audits).
func serverRun(seed int64, queues, workers, ops int, periodUs float64) (ServerRow, sim.RunResult, *sim.Machine, error) {
	row := ServerRow{Queues: queues}
	m, err := newMachineQ(CfgRerandStack, seed, queues, "e1000emq", "nvme", "nvmeirq")
	if err != nil {
		return row, sim.RunResult{}, nil, err
	}
	const ringLen = 64
	if _, err := m.InitNICMQ("e1000emq", ringLen, queues); err != nil {
		return row, sim.RunResult{}, nil, err
	}
	if err := m.InitNVMe(); err != nil {
		return row, sim.RunResult{}, nil, err
	}
	// Storage path on completion interrupts, the vector pinned to the
	// last RX queue's vCPU so the NVMe ISR shares a lane with NIC work.
	if err := m.InitNVMeIRQ(queues - 1); err != nil {
		return row, sim.RunResult{}, nil, err
	}
	m.NVMe.Preload(9, []byte("server block"))
	readVA, err := callVA(m, "nvme_read")
	if err != nil {
		return row, sim.RunResult{}, nil, err
	}
	xmitVA, err := callVA(m, "e1000emq_xmit")
	if err != nil {
		return row, sim.RunResult{}, nil, err
	}
	ncpu := m.K.NumCPUs()
	bufs := make([]uint64, ncpu)
	for i := range bufs {
		if bufs[i], err = m.K.Kmalloc(2048); err != nil {
			return row, sim.RunResult{}, nil, err
		}
	}
	// Warm the controller cache so reads measure the DRAM-hit path.
	if _, err := m.K.CPU(0).Call(readVA, bufs[0], 9, 512); err != nil {
		return row, sim.RunResult{}, nil, err
	}
	// Load generator: one request frame every 10 µs of virtual time.
	// The rotating first byte walks the RSS hash across the RX queues,
	// so with ≥2 queues the NIC's vectors — each affine to its queue's
	// vCPU — fire on distinct vCPUs. Actors fire at round barriers:
	// injection order, hash spread and every IRQ decision they trigger
	// are deterministic.
	frame := make([]byte, 256)
	for i := range frame {
		frame[i] = byte(i)
	}
	var reqSeq uint64
	loadgen := engine.Actor{
		Name:     "server-loadgen",
		PeriodUs: 10,
		Step: func() error {
			frame[0] = byte(reqSeq)
			reqSeq++
			m.NIC.Deliver(frame)
			return nil
		},
	}
	// Server op: application work, one interrupt-completed NVMe read,
	// one response frame striped per lane across the TX ring. Request
	// latency = executed cycles + device wait + syscall path, collected
	// per lane (host-side closure state must be lane-indexed).
	lanes := workers
	if ncpu < lanes {
		lanes = ncpu
	}
	if lanes > ringLen {
		return row, sim.RunResult{}, nil, fmt.Errorf("workload: %d lanes cannot stripe a %d-slot TX ring", lanes, ringLen)
	}
	frames := make([]uint64, ncpu)
	lats := make([][]uint64, ncpu)
	slotsPerLane := uint64(ringLen / lanes)
	syscall := syscallCost(CfgRerandStack)
	op := func(c *cpu.CPU) (uint64, error) {
		lane := c.ID
		start := c.Cycles
		burn(c, serverAppCost)
		lat, err := c.Call(readVA, bufs[lane], 9, 512)
		if err != nil {
			return 0, err
		}
		if lat == 0 {
			return 0, fmt.Errorf("server: nvme read failed")
		}
		slot := uint64(lane)*slotsPerLane + frames[lane]%slotsPerLane
		if _, err := c.Call(xmitVA, bufs[lane], 256, slot); err != nil {
			return 0, err
		}
		frames[lane]++
		lats[lane] = append(lats[lane], c.Cycles-start+lat+syscall)
		return lat, nil
	}
	res, err := m.Run(sim.RunConfig{
		Ops: ops, Workers: workers, SyscallCycles: syscall,
		BytesPerOp: 256, RerandPeriodUs: periodUs,
		Actors: []engine.Actor{loadgen},
	}, op)
	if err != nil {
		return row, sim.RunResult{}, nil, err
	}
	var all []uint64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p99 := uint64(0)
	if len(all) > 0 {
		idx := len(all) * 99 / 100
		if idx >= len(all) {
			idx = len(all) - 1
		}
		p99 = all[idx]
	}
	row.RPS = res.OpsPerSec
	row.P99Us = float64(p99) / sim.CPUHz * 1e6
	row.IRQs = res.IRQs
	row.IRQVCPUs = res.IRQVCPUs()
	row.Responses = m.Peer.RxFrames
	return row, res, m, nil
}

// Server measures one server configuration (benchtool selfbench rides
// this for the request/response wall-clock and headline metrics).
func Server(queues, workers, ops int, periodUs float64) (ServerRow, error) {
	row, _, _, err := serverRun(seedServer, queues, workers, ops, periodUs)
	return row, err
}

// ServerSweep runs the server scenario across queue counts 1, 2, 4, …
// up to maxQueues.
func ServerSweep(seed int64, maxQueues, workers, ops int, periodUs float64) ([]ServerRow, error) {
	var rows []ServerRow
	for q := 1; q <= maxQueues; q *= 2 {
		r, _, _, err := serverRun(seed, q, workers, ops, periodUs)
		if err != nil {
			return nil, fmt.Errorf("workload: server queues=%d: %w", q, err)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

var expServer = &Experiment{
	Name:   "server",
	Figure: "§5 server",
	Doc:    "request/response server: multi-queue RSS NIC + NVMe completion IRQs under re-randomization",
	ParamSpecs: []ParamSpec{
		{Name: "ops", Doc: "requests per queue-count configuration", Default: 480, Quick: 60},
		{Name: "seed", Doc: "machine boot seed", Default: seedServer},
		{Name: "queues", Doc: "max NIC RX queues (rows sweep 1,2,4,… up to this)", Default: 4},
		{Name: "workers", Doc: "concurrent server lanes", Default: 4},
		{Name: "period_us", Doc: "re-randomization period (µs)", Default: 1000},
	},
	Run: func(p Params) (*Table, error) {
		rows, err := ServerSweep(p.Int64("seed"), p.Int("queues"), p.Int("workers"),
			p.Int("ops"), float64(p.Int("period_us")))
		if err != nil {
			return nil, err
		}
		t := &Table{
			Title: "Server — request/response over per-vCPU interrupt routing (RSS queues swept)",
			Columns: []Column{
				Col("queues", "%-8d", "%-8s"),
				Col("rps", "%12.0f", "%12s"),
				Col("p99_us", "%10.1f", "%10s"),
				Col("irqs", "%8d", "%8s"),
				Col("irq_vcpus", "%11d", "%11s"),
				Col("responses", "%11d", "%11s"),
			},
		}
		for _, r := range rows {
			t.AddRow(r.Queues, r.RPS, r.P99Us, r.IRQs, r.IRQVCPUs, r.Responses)
		}
		return t, nil
	},
	Headline: func(t *Table) map[string]float64 {
		last := t.Rows[len(t.Rows)-1]
		return map[string]float64{
			"server_rps":    last[1].(float64),
			"server_p99_us": last[2].(float64),
		}
	},
}
