package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"adelie/internal/attack"
	"adelie/internal/cpu"
	"adelie/internal/drivers"
	"adelie/internal/kcc"
	"adelie/internal/kernel"
	"adelie/internal/sim"
)

// ---------------------------------------------------------------------------
// Fig. 5a — module memory footprint, PIC vs non-PIC.

// SizeRow is one bar pair of Fig. 5a.
type SizeRow struct {
	Module       string
	VanillaBytes uint64
	PICBytes     uint64 // PIC + retpoline, as the paper presents
}

// Default seeds of the Fig. 5 experiments. They are the "seed" param
// defaults in the registry descriptors; the exported convenience
// functions pin them so recorded figures stay reproducible.
const (
	seedFig5a int64 = 5
	seedFig5b int64 = 301
	seedFig5c int64 = 302
	seedFig5d int64 = 303
)

// ModuleSizes builds the driver suite plus a sample of the synthetic
// corpus under both code models, loads each into a kernel, and reports
// loaded content sizes (sections + GOT slots + PLT stubs) — the memory
// footprint Fig. 5a compares. Non-PIC modules carry no GOT/PLT; the PIC
// build's overhead is the table entries and stubs the loader creates.
func ModuleSizes(extraSynthetic int) ([]SizeRow, error) {
	return moduleSizes(seedFig5a, extraSynthetic)
}

func moduleSizes(seed int64, extraSynthetic int) ([]SizeRow, error) {
	var rows []SizeRow
	mods := map[string]func() *kcc.Module{}
	for n, mk := range drivers.All() {
		mods[n] = mk
	}
	synth := attack.GenerateCorpus(17, extraSynthetic, attack.DefaultCorpus)
	for _, s := range synth {
		s := s
		mods[s.Name] = func() *kcc.Module { return s }
	}
	names := make([]string, 0, len(mods))
	for n := range mods {
		names = append(names, n)
	}
	sort.Strings(names)
	loadedSize := func(mk func() *kcc.Module, o drivers.BuildOpts, mode kernel.KASLRMode) (uint64, error) {
		obj, err := drivers.Build(mk(), o)
		if err != nil {
			return 0, err
		}
		k, err := kernel.New(kernel.Config{NumCPUs: 1, Seed: seed, KASLR: mode})
		if err != nil {
			return 0, err
		}
		mod, err := k.Load(obj)
		if err != nil {
			return 0, err
		}
		return mod.ContentSize(), nil
	}
	for _, n := range names {
		plain, err := loadedSize(mods[n], drivers.BuildOpts{}, kernel.KASLRVanilla)
		if err != nil {
			return nil, err
		}
		pic, err := loadedSize(mods[n], drivers.BuildOpts{PIC: true, Retpoline: true}, kernel.KASLRFull64)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SizeRow{Module: n, VanillaBytes: plain, PICBytes: pic})
	}
	return rows, nil
}

var expFig5a = &Experiment{
	Name:   "fig5a",
	Figure: "Fig. 5a",
	Doc:    "module memory footprint, vanilla vs PIC+retpoline",
	ParamSpecs: []ParamSpec{
		{Name: "ops", Doc: "synthetic corpus modules sized alongside the driver suite", Default: 8},
		{Name: "seed", Doc: "kernel boot seed", Default: seedFig5a},
	},
	Run: func(p Params) (*Table, error) {
		rows, err := moduleSizes(p.Int64("seed"), p.Int("ops"))
		if err != nil {
			return nil, err
		}
		t := &Table{
			Title: "Fig. 5a — module size, vanilla vs PIC+retpoline (bytes)",
			Columns: []Column{
				Col("module", "%-12s", "%-12s"),
				Col("linux", "%10d", "%10s"),
				Col("pic", "%10d", "%10s"),
				Col("ratio", "%8.3f", "%8s"),
			},
		}
		for _, r := range rows {
			t.AddRow(r.Module, r.VanillaBytes, r.PICBytes,
				float64(r.PICBytes)/float64(r.VanillaBytes))
		}
		return t, nil
	},
	Headline: func(t *Table) map[string]float64 {
		var ratio float64
		for _, r := range t.Rows {
			ratio += r[3].(float64)
		}
		return map[string]float64{"pic-size-ratio": ratio / float64(len(t.Rows))}
	},
}

// ---------------------------------------------------------------------------
// Fig. 5b — dd buffer-cache read microbenchmark.

// DDRow is one point of Fig. 5b. Blocks/ChainedBlocks/IndirectChained
// report the interpreter's superblock counters for the run (selfbench's
// chain-rate metrics); they ride along and are not part of the rendered
// figure.
type DDRow struct {
	Config          Config
	BlockKB         int
	MBps            float64
	Blocks          uint64
	ChainedBlocks   uint64
	IndirectChained uint64
}

// DDBlockSizesKB is the sweep of Fig. 5b.
var DDBlockSizesKB = []int{4, 16, 64, 256, 1024}

// PICConfigs are the four §5.1 configurations.
var PICConfigs = []Config{CfgVanilla, CfgVanillaRet, CfgPIC, CfgPICRet}

// DD runs the cached-read microbenchmark: reads hit the buffer cache
// (CPU-bound, §5.1), with the ext4 module's get_block on the per-page
// path — where PIC and retpoline costs live.
func DD(cfg Config, blockKB, ops int) (DDRow, error) {
	return dd(seedFig5b, cfg, blockKB, ops)
}

func dd(seed int64, cfg Config, blockKB, ops int) (DDRow, error) {
	m, err := newMachine(cfg, seed, "ext4")
	if err != nil {
		return DDRow{}, err
	}
	getBlock, err := callVA(m, "ext4_get_block")
	if err != nil {
		return DDRow{}, err
	}
	pages := blockKB / 4
	if pages == 0 {
		pages = 1
	}
	// Per-lane file positions: ops run concurrently on several vCPUs, so
	// each lane advances its own sequential stream (deterministic, since
	// the engine's lane→op assignment is static).
	blks := make([]uint64, m.K.NumCPUs())
	op := func(c *cpu.CPU) (uint64, error) {
		blk := &blks[c.ID]
		for p := 0; p < pages; p++ {
			if _, err := c.Call(getBlock, 1, *blk%4096); err != nil {
				return 0, err
			}
			burn(c, PageCopyCost)
			*blk++
		}
		return 0, nil
	}
	res, err := m.Run(sim.RunConfig{
		Ops: ops, Workers: 1, SyscallCycles: syscallCost(cfg),
		BytesPerOp: float64(blockKB) * 1024,
	}, op)
	if err != nil {
		return DDRow{}, err
	}
	return DDRow{Config: cfg, BlockKB: blockKB, MBps: res.MBPerSec,
		Blocks: res.Blocks, ChainedBlocks: res.ChainedBlocks,
		IndirectChained: res.IndirectChained}, nil
}

// DDSweep runs the full Fig. 5b grid.
func DDSweep(ops int) ([]DDRow, error) {
	return ddSweep(seedFig5b, ops)
}

func ddSweep(seed int64, ops int) ([]DDRow, error) {
	var rows []DDRow
	for _, cfg := range PICConfigs {
		for _, bs := range DDBlockSizesKB {
			r, err := dd(seed, cfg, bs, ops)
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

var expFig5b = &Experiment{
	Name:   "fig5b",
	Figure: "Fig. 5b",
	Doc:    "dd cached-read microbenchmark across the §5.1 configs",
	ParamSpecs: []ParamSpec{
		{Name: "ops", Doc: "dd reads per configuration point", Default: 1600, Quick: 200},
		{Name: "seed", Doc: "machine boot seed", Default: seedFig5b},
	},
	Run: func(p Params) (*Table, error) {
		rows, err := ddSweep(p.Int64("seed"), p.Int("ops"))
		if err != nil {
			return nil, err
		}
		cells := make([]matrixCell, len(rows))
		for i, r := range rows {
			cells[i] = matrixCell{fmt.Sprintf("%dKB", r.BlockKB), string(r.Config), r.MBps}
		}
		return matrixTable("Fig. 5b — dd cached-read microbenchmark (MB/s)", cells), nil
	},
	Headline: func(t *Table) map[string]float64 {
		v, _ := t.Cell("64KB", string(CfgPICRet))
		return map[string]float64{"dd64-picret-MBps": v}
	},
}

// ---------------------------------------------------------------------------
// Fig. 5c — sysbench file_io, cached random/sequential reads.

// SysbenchRow is one bar of Fig. 5c.
type SysbenchRow struct {
	Config Config
	Mode   string // "rndrd" or "seqrd"
	MBps   float64
}

// Sysbench measures cached file_io throughput. Random reads pay an extra
// per-op block lookup and worse locality (modelled as an additional
// get_block call), matching sysbench's rndrd/seqrd split.
func Sysbench(cfg Config, mode string, ops int) (SysbenchRow, error) {
	return sysbench(seedFig5c, cfg, mode, ops)
}

func sysbench(seed int64, cfg Config, mode string, ops int) (SysbenchRow, error) {
	m, err := newMachine(cfg, seed, "ext4")
	if err != nil {
		return SysbenchRow{}, err
	}
	getBlock, err := callVA(m, "ext4_get_block")
	if err != nil {
		return SysbenchRow{}, err
	}
	const ioBytes = 16 * 1024
	// Per-lane streams and RNGs (4 workers run on 4 vCPUs concurrently).
	ncpu := m.K.NumCPUs()
	rngs := make([]*rand.Rand, ncpu)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(77 + int64(i)))
	}
	seqs := make([]uint64, ncpu)
	op := func(c *cpu.CPU) (uint64, error) {
		lane := c.ID
		lookups := 4 // 16 KB = 4 pages
		if mode == "rndrd" {
			lookups++ // extent lookup restarts on a random offset
		}
		for i := 0; i < lookups; i++ {
			blk := seqs[lane]
			if mode == "rndrd" {
				blk = uint64(rngs[lane].Intn(4096))
			}
			if _, err := c.Call(getBlock, 1, blk); err != nil {
				return 0, err
			}
			burn(c, PageCopyCost)
			seqs[lane]++
		}
		return 0, nil
	}
	res, err := m.Run(sim.RunConfig{
		Ops: ops, Workers: 4, SyscallCycles: syscallCost(cfg),
		BytesPerOp: ioBytes,
	}, op)
	if err != nil {
		return SysbenchRow{}, err
	}
	return SysbenchRow{Config: cfg, Mode: mode, MBps: res.MBPerSec}, nil
}

// SysbenchSweep runs the Fig. 5c grid.
func SysbenchSweep(ops int) ([]SysbenchRow, error) {
	return sysbenchSweep(seedFig5c, ops)
}

func sysbenchSweep(seed int64, ops int) ([]SysbenchRow, error) {
	var rows []SysbenchRow
	for _, cfg := range PICConfigs {
		for _, mode := range []string{"seqrd", "rndrd"} {
			r, err := sysbench(seed, cfg, mode, ops)
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

var expFig5c = &Experiment{
	Name:   "fig5c",
	Figure: "Fig. 5c",
	Doc:    "sysbench file_io cached reads, sequential and random",
	ParamSpecs: []ParamSpec{
		{Name: "ops", Doc: "file_io requests per configuration point", Default: 1200, Quick: 150},
		{Name: "seed", Doc: "machine boot seed", Default: seedFig5c},
	},
	Run: func(p Params) (*Table, error) {
		rows, err := sysbenchSweep(p.Int64("seed"), p.Int("ops"))
		if err != nil {
			return nil, err
		}
		cells := make([]matrixCell, len(rows))
		for i, r := range rows {
			cells[i] = matrixCell{r.Mode, string(r.Config), r.MBps}
		}
		return matrixTable("Fig. 5c — sysbench file_io cached reads (MB/s)", cells), nil
	},
	Headline: func(t *Table) map[string]float64 {
		v, _ := t.Cell("rndrd", string(CfgPICRet))
		return map[string]float64{"rndrd-picret-MBps": v}
	},
}

// ---------------------------------------------------------------------------
// Fig. 5d — kernbench: kernel-space time of a compile-like syscall mix.

// KernbenchRow is one bar of Fig. 5d.
type KernbenchRow struct {
	Config      Config
	Concurrency int
	KernelSec   float64 // time spent in kernel space for the fixed job count
}

// KernbenchConcurrency levels: half, optimal and double the core count
// (kernbench's -o/-h convention).
var KernbenchConcurrency = []int{10, 20, 40}

// Kernbench executes a fixed number of compile-like jobs, each a burst of
// syscalls (opens, cached reads, allocations) with module code on the
// path, and reports kernel-space seconds.
func Kernbench(cfg Config, concurrency, jobs int) (KernbenchRow, error) {
	return kernbench(seedFig5d, cfg, concurrency, jobs)
}

func kernbench(seed int64, cfg Config, concurrency, jobs int) (KernbenchRow, error) {
	m, err := newMachine(cfg, seed, "ext4", "fuse")
	if err != nil {
		return KernbenchRow{}, err
	}
	getBlock, err := callVA(m, "ext4_get_block")
	if err != nil {
		return KernbenchRow{}, err
	}
	dispatch, err := callVA(m, "fuse_dispatch")
	if err != nil {
		return KernbenchRow{}, err
	}
	op := func(c *cpu.CPU) (uint64, error) {
		// One compilation unit: ~40 source reads + header lookups.
		for i := 0; i < 40; i++ {
			if _, err := c.Call(getBlock, 2, uint64(i)); err != nil {
				return 0, err
			}
			burn(c, CompileOpCost)
		}
		for i := 0; i < 6; i++ {
			if _, err := c.Call(dispatch, 1); err != nil {
				return 0, err
			}
		}
		return 0, nil
	}
	res, err := m.Run(sim.RunConfig{
		Ops: jobs, Workers: concurrency, SyscallCycles: syscallCost(cfg) * 46,
	}, op)
	if err != nil {
		return KernbenchRow{}, err
	}
	kernelSec := float64(res.BusyCycles) / sim.CPUHz
	return KernbenchRow{Config: cfg, Concurrency: concurrency, KernelSec: kernelSec}, nil
}

// KernbenchSweep runs the Fig. 5d grid.
func KernbenchSweep(jobs int) ([]KernbenchRow, error) {
	return kernbenchSweep(seedFig5d, jobs, KernbenchConcurrency[len(KernbenchConcurrency)-1])
}

func kernbenchSweep(seed int64, jobs, maxConc int) ([]KernbenchRow, error) {
	var rows []KernbenchRow
	for _, cfg := range PICConfigs {
		for _, conc := range KernbenchConcurrency {
			if conc > maxConc {
				continue
			}
			r, err := kernbench(seed, cfg, conc, jobs)
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

var expFig5d = &Experiment{
	Name:   "fig5d",
	Figure: "Fig. 5d",
	Doc:    "kernbench kernel-space time of a compile-like syscall mix",
	ParamSpecs: []ParamSpec{
		{Name: "ops", Doc: "compile jobs per configuration point", Default: 160, Quick: 20},
		{Name: "seed", Doc: "machine boot seed", Default: seedFig5d},
		{Name: "conc", Doc: "cap on the -j concurrency sweep", Default: 40},
	},
	Run: func(p Params) (*Table, error) {
		rows, err := kernbenchSweep(p.Int64("seed"), p.Int("ops"), p.Int("conc"))
		if err != nil {
			return nil, err
		}
		cells := make([]matrixCell, len(rows))
		for i, r := range rows {
			cells[i] = matrixCell{fmt.Sprintf("-j%d", r.Concurrency), string(r.Config), r.KernelSec * 1000}
		}
		return matrixTable("Fig. 5d — kernbench kernel-space time (ms, fixed job count)", cells), nil
	},
	Headline: func(t *Table) map[string]float64 {
		v, _ := t.Cell("-j20", string(CfgPICRet))
		return map[string]float64{"j20-picret-kernel-ms": v}
	},
}
