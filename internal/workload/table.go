package workload

import (
	"fmt"
	"io"
)

// Table is the generic result every experiment produces: a column schema,
// typed rows, and enough rendering hints that cmd/benchtool (or any other
// front end) can print the exact table the paper's figure is drawn from,
// or marshal it as structured JSON. An experiment that prints several
// sections (the ablations) returns one Table with Children.
type Table struct {
	// Title is the figure header ("Fig. 5b — dd cached-read microbenchmark
	// (MB/s)"); renderers frame it as a section heading.
	Title string `json:"title"`

	// Columns describe the cells of every row, in order.
	Columns []Column `json:"columns,omitempty"`

	// Rows hold one cell per column. Cells are typed (string, int,
	// uint64, float64) so JSON consumers get real values; rendering
	// applies each column's format verb.
	Rows [][]any `json:"rows,omitempty"`

	// Notes are free-form lines printed after the body (derived summary
	// figures, paper cross-references).
	Notes []string `json:"notes,omitempty"`

	// Text, when set, replaces the columnar body in terminal rendering —
	// used by experiments whose historical output is free-form prose
	// (the security analysis). Columns/Rows still carry the structured
	// values for JSON.
	Text []string `json:"-"`

	// Children are additional sections rendered after this table
	// (ablation B and C ride behind A).
	Children []*Table `json:"sections,omitempty"`
}

// Column is one column of a Table.
type Column struct {
	// Name is the machine-readable identifier used in JSON.
	Name string `json:"name"`
	// Head is the header label as printed (may be empty or prettier than
	// Name, e.g. "CPU% (1 core)").
	Head string `json:"head"`
	// Fmt is the printf verb applied to each cell ("%10.1f", "%-12s").
	// Fixed widths are what keeps rendered output bit-identical across
	// runs and PRs.
	Fmt string `json:"-"`
	// HeadFmt is the printf verb for the header cell ("%10s"); columns
	// print numbers but head strings, so the verbs differ.
	HeadFmt string `json:"-"`
}

// Col builds a Column whose Name doubles as the header label.
func Col(name, fmtVerb, headVerb string) Column {
	return Column{Name: name, Head: name, Fmt: fmtVerb, HeadFmt: headVerb}
}

// AddRow appends one row; the cell count must match the schema.
func (t *Table) AddRow(cells ...any) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("workload: table %q: row has %d cells, schema has %d columns",
			t.Title, len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Notef appends a formatted note line.
func (t *Table) Notef(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table (and its children) to w exactly as benchtool
// prints it: a framed title, a header row, formatted cells separated by
// single spaces, then the notes.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	t.fprintBody(w)
	for _, c := range t.Children {
		c.Fprint(w)
	}
}

func (t *Table) fprintBody(w io.Writer) {
	switch {
	case len(t.Text) > 0:
		for _, line := range t.Text {
			fmt.Fprintln(w, line)
		}
	case len(t.Columns) > 0:
		for i, c := range t.Columns {
			if i > 0 {
				io.WriteString(w, " ")
			}
			fmt.Fprintf(w, c.HeadFmt, c.Head)
		}
		fmt.Fprintln(w)
		for _, row := range t.Rows {
			for i, cell := range row {
				if i > 0 {
					io.WriteString(w, " ")
				}
				fmt.Fprintf(w, t.Columns[i].Fmt, cell)
			}
			fmt.Fprintln(w)
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintln(w, n)
	}
}

// Cell returns the float value at (row label, column name), for tables
// whose first column labels the row — the matrix figures. The bool
// reports whether both coordinates exist.
func (t *Table) Cell(rowLabel, colName string) (float64, bool) {
	ci := -1
	for i, c := range t.Columns {
		if i > 0 && c.Name == colName {
			ci = i
			break
		}
	}
	if ci < 0 {
		return 0, false
	}
	for _, row := range t.Rows {
		if lab, ok := row[0].(string); ok && lab == rowLabel {
			if v, ok := row[ci].(float64); ok {
				return v, true
			}
			return 0, false
		}
	}
	return 0, false
}

// matrixCell is one (row label, column label, value) point of a matrix
// figure (the Fig. 5 grids: block size × configuration, etc.).
type matrixCell struct {
	row, col string
	val      float64
}

// matrixTable pivots (row, col, value) cells into a Table, with row and
// column order of first appearance — the rendering benchtool's historical
// printMatrix produced. The leading label column is unnamed and
// left-aligned; value columns are fixed-width floats.
func matrixTable(title string, cells []matrixCell) *Table {
	t := &Table{Title: title}
	t.Columns = append(t.Columns, Column{Name: "row", Head: "", Fmt: "%-10s", HeadFmt: "%-10s"})
	colIdx := map[string]int{}
	var rowOrder []string
	vals := map[string]map[string]float64{}
	for _, c := range cells {
		if _, ok := colIdx[c.col]; !ok {
			colIdx[c.col] = len(t.Columns)
			t.Columns = append(t.Columns, Col(c.col, "%12.1f", "%12s"))
		}
		if vals[c.row] == nil {
			vals[c.row] = map[string]float64{}
			rowOrder = append(rowOrder, c.row)
		}
		vals[c.row][c.col] = c.val
	}
	for _, r := range rowOrder {
		row := make([]any, len(t.Columns))
		row[0] = r
		for i := 1; i < len(row); i++ {
			row[i] = float64(0)
		}
		for col, i := range colIdx {
			row[i] = vals[r][col]
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
