package workload

import (
	"fmt"
	"math/rand"

	"adelie/internal/cpu"
	"adelie/internal/devices"
	"adelie/internal/sim"
)

// RerandPeriod labels the re-randomization settings of §5.2.
type RerandPeriod struct {
	Label    string
	PeriodUs float64 // 0 = disabled
}

// Periods used across Figs. 6–8 (1 ms, 5 ms, 20 ms, plus vanilla).
var (
	PeriodOff  = RerandPeriod{"linux", 0}
	PeriodNone = RerandPeriod{"no-rerand", 0}
	Period20ms = RerandPeriod{"20 ms", 20_000}
	Period5ms  = RerandPeriod{"5 ms", 5_000}
	Period1ms  = RerandPeriod{"1 ms", 1_000}
)

// ---------------------------------------------------------------------------
// Fig. 6 — NVMe O_DIRECT read throughput under re-randomization.

// NVMeRow is one bar pair of Fig. 6.
type NVMeRow struct {
	Period    string
	MBps      float64
	IOPS      float64
	CPUPct    float64
	RerandPct float64 // randomizer thread share of all cores
}

// NVMeDirectRead reproduces the §5.2 NVMe experiment: the same 512-byte
// block is read through the driver in a tight loop with O_DIRECT/O_SYNC
// semantics, hitting the controller's DRAM cache to minimize I/O wait.
// vanilla=true runs the non-rerandomizable (plain Linux) driver build.
func NVMeDirectRead(period RerandPeriod, vanilla bool, ops int) (NVMeRow, error) {
	cfg := CfgRerandStack
	if vanilla {
		cfg = CfgVanillaRet
	}
	m, err := newMachine(cfg, 601, "nvme")
	if err != nil {
		return NVMeRow{}, err
	}
	if err := m.InitNVMe(); err != nil {
		return NVMeRow{}, err
	}
	m.NVMe.Preload(5, []byte("fig6 block"))
	buf, err := m.K.Kmalloc(512)
	if err != nil {
		return NVMeRow{}, err
	}
	readVA, err := callVA(m, "nvme_read")
	if err != nil {
		return NVMeRow{}, err
	}
	// Warm the controller cache so the loop measures the DRAM-hit path.
	if _, err := m.K.CPU(0).Call(readVA, buf, 5, 512); err != nil {
		return NVMeRow{}, err
	}
	op := func(c *cpu.CPU) (uint64, error) {
		lat, err := c.Call(readVA, buf, 5, 512)
		if err != nil {
			return 0, err
		}
		if lat == 0 {
			return 0, fmt.Errorf("nvme read failed")
		}
		return lat, nil
	}
	res, err := m.Run(sim.RunConfig{
		Ops: ops, Workers: 1, SyscallCycles: SyscallEntry,
		BytesPerOp: 512, RerandPeriodUs: period.PeriodUs,
	}, op)
	if err != nil {
		return NVMeRow{}, err
	}
	return NVMeRow{
		Period: period.Label, MBps: res.MBPerSec,
		IOPS: res.OpsPerSec, CPUPct: res.CPUUsagePct,
		RerandPct: pct(res.RerandCycles, res.ElapsedSec),
	}, nil
}

func pct(cycles uint64, elapsedSec float64) float64 {
	if elapsedSec == 0 {
		return 0
	}
	return float64(cycles) / (20 * elapsedSec * sim.CPUHz) * 100
}

// NVMeSweep runs the Fig. 6 configurations.
func NVMeSweep(ops int) ([]NVMeRow, error) {
	var rows []NVMeRow
	r, err := NVMeDirectRead(PeriodOff, true, ops)
	if err != nil {
		return nil, err
	}
	rows = append(rows, r)
	for _, p := range []RerandPeriod{PeriodNone, Period5ms, Period1ms} {
		r, err := NVMeDirectRead(p, false, ops)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Fig. 7 — mySQL OLTP (sysbench oltp) with E1000E + NVMe re-randomized.

// OLTPRow is one point of Fig. 7.
type OLTPRow struct {
	Period      string
	Concurrency int
	TPS         float64
	CPUPct      float64
	// NICDropped sums frames both adapters dropped: TX descriptor
	// faults, plus RX ring overruns once traffic is delivered into a
	// driver-owned ring (the OLTP/Apache response path is TX-only into
	// the host-driven load generator, so overruns appear here when a
	// workload adds server-bound RX traffic).
	NICDropped uint64
}

// OLTPConcurrency is the Fig. 7 sweep.
var OLTPConcurrency = []int{25, 50, 75, 100}

// OLTP models a sysbench-oltp transaction against the 10×1M-row database
// (§5.2): ten queries of server-side work, a partially-cached working set
// hitting NVMe on misses, and the result set returned over the NIC.
func OLTP(period RerandPeriod, vanilla bool, concurrency, txs int) (OLTPRow, error) {
	cfg := CfgRerandStack
	if vanilla {
		cfg = CfgVanillaRet
	}
	m, err := newMachine(cfg, 701, "e1000e", "nvme")
	if err != nil {
		return OLTPRow{}, err
	}
	if err := m.InitNVMe(); err != nil {
		return OLTPRow{}, err
	}
	ringLen, err := m.InitNIC("e1000e")
	if err != nil {
		return OLTPRow{}, err
	}
	m.NVMe.Preload(100, []byte("db page"))
	// Per-lane I/O buffers, RNGs and TX-descriptor partitions: lanes run
	// concurrently, so each owns its DMA target, its randomness stream
	// and a disjoint stripe of the NIC ring.
	ncpu := m.K.NumCPUs()
	bufs := make([]uint64, ncpu)
	rngs := make([]*rand.Rand, ncpu)
	frames := make([]uint64, ncpu)
	for i := 0; i < ncpu; i++ {
		if bufs[i], err = m.K.Kmalloc(4096); err != nil {
			return OLTPRow{}, err
		}
		rngs[i] = rand.New(rand.NewSource(7 + int64(i)))
	}
	slotsPerLane := ringLen / uint64(ncpu)
	if slotsPerLane == 0 {
		slotsPerLane = 1
	}
	readVA, err := callVA(m, "nvme_read")
	if err != nil {
		return OLTPRow{}, err
	}
	xmitVA, err := callVA(m, "e1000e_xmit")
	if err != nil {
		return OLTPRow{}, err
	}
	const respBytes = 44_000 // result set per transaction
	op := func(c *cpu.CPU) (uint64, error) {
		lane := c.ID
		rng, buf := rngs[lane], bufs[lane]
		var wait uint64
		for q := 0; q < 10; q++ {
			burn(c, OLTPQueryCost)
			// The database is partially cached in RAM (§5.2): ~15% of
			// queries miss to NVMe.
			if rng.Intn(100) < 15 {
				lat, err := c.Call(readVA, buf, uint64(100+rng.Intn(64)), 4096)
				if err != nil {
					return 0, err
				}
				wait += lat
			}
		}
		// Return the result set: one driver xmit per MTU-sized frame,
		// cycling through this lane's stripe of the TX ring.
		for b := 0; b < respBytes; b += 1448 {
			slot := uint64(lane)*slotsPerLane + frames[lane]%slotsPerLane
			if _, err := c.Call(xmitVA, buf, 1448, slot); err != nil {
				return 0, err
			}
			frames[lane]++
		}
		// Client round-trip think time (the load generator is a separate
		// box; latency off the server's CPUs).
		wait += 30_000_000 // ≈13.6 ms
		return wait, nil
	}
	res, err := m.Run(sim.RunConfig{
		Ops: txs, Workers: concurrency, SyscallCycles: SyscallEntry * 12,
		BytesPerOp: respBytes, WireBps: devices.WireBytesPerSec,
		RerandPeriodUs: period.PeriodUs,
	}, op)
	if err != nil {
		return OLTPRow{}, err
	}
	return OLTPRow{
		Period: period.Label, Concurrency: concurrency,
		TPS: res.OpsPerSec, CPUPct: res.CPUUsagePct,
		NICDropped: m.NIC.Dropped + m.Peer.Dropped,
	}, nil
}

// OLTPSweep runs the Fig. 7 grid.
func OLTPSweep(txs int) ([]OLTPRow, error) {
	var rows []OLTPRow
	for _, p := range []struct {
		RerandPeriod
		vanilla bool
	}{{PeriodOff, true}, {Period5ms, false}, {Period1ms, false}} {
		for _, conc := range OLTPConcurrency {
			r, err := OLTP(p.RerandPeriod, p.vanilla, conc, txs)
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Fig. 8 — ApacheBench static file serving, five modules re-randomized.

// ApacheRow is one point of Fig. 8.
type ApacheRow struct {
	Period      string
	BlockBytes  int
	Concurrency int
	MBps        float64
	CPUPct      float64
	NICDropped  uint64 // frame drops across both adapters (see OLTPRow)
}

// ApacheBlockSizes and ApacheConcurrency are the Fig. 8 sweeps.
var (
	ApacheBlockSizes  = []int{512, 1024, 4096, 8192}
	ApacheConcurrency = []int{20, 40, 60, 80, 100}
)

// Apache serves a static file of the given size per request. Pressure
// lands on E1000E with occasional NVMe accesses; FUSE, ext4 and xHCI ride
// along as extra re-randomization load, exactly as in §5.2.
func Apache(period RerandPeriod, vanilla bool, blockBytes, concurrency, reqs int) (ApacheRow, error) {
	cfg := CfgRerandStack
	if vanilla {
		cfg = CfgVanillaRet
	}
	m, err := newMachine(cfg, 801, "e1000e", "nvme", "fuse", "ext4", "xhci")
	if err != nil {
		return ApacheRow{}, err
	}
	if err := m.InitNVMe(); err != nil {
		return ApacheRow{}, err
	}
	ringLen, err := m.InitNIC("e1000e")
	if err != nil {
		return ApacheRow{}, err
	}
	if err := m.InitXHCI(); err != nil {
		return ApacheRow{}, err
	}
	// Per-lane buffers, RNGs and ring stripes (see OLTP).
	ncpu := m.K.NumCPUs()
	bufs := make([]uint64, ncpu)
	rngs := make([]*rand.Rand, ncpu)
	frames := make([]uint64, ncpu)
	for i := 0; i < ncpu; i++ {
		if bufs[i], err = m.K.Kmalloc(8192); err != nil {
			return ApacheRow{}, err
		}
		rngs[i] = rand.New(rand.NewSource(9 + int64(i)))
	}
	slotsPerLane := ringLen / uint64(ncpu)
	if slotsPerLane == 0 {
		slotsPerLane = 1
	}
	pollVA, err := callVA(m, "e1000e_poll_rx")
	if err != nil {
		return ApacheRow{}, err
	}
	xmitVA, err := callVA(m, "e1000e_xmit")
	if err != nil {
		return ApacheRow{}, err
	}
	getBlockVA, err := callVA(m, "ext4_get_block")
	if err != nil {
		return ApacheRow{}, err
	}
	readVA, err := callVA(m, "nvme_read")
	if err != nil {
		return ApacheRow{}, err
	}
	op := func(c *cpu.CPU) (uint64, error) {
		lane := c.ID
		rng, buf := rngs[lane], bufs[lane]
		laneSlot := func() uint64 { return uint64(lane)*slotsPerLane + frames[lane]%slotsPerLane }
		var wait uint64
		// Receive + parse the request (this lane's stripe of the RX ring).
		if _, err := c.Call(pollVA, laneSlot()); err != nil {
			return 0, err
		}
		burn(c, HTTPAppCost)
		// File lookup through ext4; ~5% of requests miss the page cache
		// and hit NVMe.
		if _, err := c.Call(getBlockVA, 3, uint64(rng.Intn(2048))); err != nil {
			return 0, err
		}
		if rng.Intn(100) < 5 {
			lat, err := c.Call(readVA, buf, uint64(200+rng.Intn(32)), 4096)
			if err != nil {
				return 0, err
			}
			wait += lat
		}
		// Send the response, one frame per MTU.
		for b := 0; b < blockBytes+300; b += 1448 {
			if _, err := c.Call(xmitVA, buf, 1448, laneSlot()); err != nil {
				return 0, err
			}
			frames[lane]++
		}
		// Client-side round trip.
		wait += 5_500_000 // ≈2.5 ms
		return wait, nil
	}
	res, err := m.Run(sim.RunConfig{
		Ops: reqs, Workers: concurrency, SyscallCycles: SyscallEntry * 4,
		BytesPerOp: float64(blockBytes + 300), WireBps: devices.WireBytesPerSec,
		RerandPeriodUs: period.PeriodUs,
	}, op)
	if err != nil {
		return ApacheRow{}, err
	}
	return ApacheRow{
		Period: period.Label, BlockBytes: blockBytes, Concurrency: concurrency,
		MBps: res.MBPerSec, CPUPct: res.CPUUsagePct,
		NICDropped: m.NIC.Dropped + m.Peer.Dropped,
	}, nil
}

// ApacheSweep runs the Fig. 8 grid.
func ApacheSweep(reqs int) ([]ApacheRow, error) {
	var rows []ApacheRow
	for _, p := range []struct {
		RerandPeriod
		vanilla bool
	}{{PeriodOff, true}, {Period20ms, false}, {Period5ms, false}, {Period1ms, false}} {
		for _, bs := range ApacheBlockSizes {
			for _, conc := range ApacheConcurrency {
				r, err := Apache(p.RerandPeriod, p.vanilla, bs, conc, reqs)
				if err != nil {
					return nil, err
				}
				rows = append(rows, r)
			}
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Fig. 9 — IOCTL null-operation throughput (CPU-bound worst case, §5.3).

// IoctlRow is one bar of Fig. 9.
type IoctlRow struct {
	Variant    string
	MopsPerSec float64
	CPUPct     float64
}

// IoctlVariants are the Fig. 9 comparison points: original Linux, plain
// PIC, wrappers (re-randomizable without stack swap), and wrappers plus
// stack re-randomization.
var IoctlVariants = []struct {
	Name string
	Cfg  Config
}{
	{"linux", CfgVanillaRet},
	{"pic", CfgPICRet},
	{"wrappers", CfgRerand},
	{"wrappers+stack", CfgRerandStack},
}

// Ioctl measures the dummy driver's null-ioctl rate.
func Ioctl(name string, cfg Config, ops int) (IoctlRow, error) {
	m, err := newMachine(cfg, 901, "dummy")
	if err != nil {
		return IoctlRow{}, err
	}
	va, err := callVA(m, "dummy_ioctl")
	if err != nil {
		return IoctlRow{}, err
	}
	op := func(c *cpu.CPU) (uint64, error) {
		ret, err := c.Call(va, 0)
		if err != nil {
			return 0, err
		}
		if ret != 0 {
			return 0, fmt.Errorf("ioctl returned %d", int64(ret))
		}
		return 0, nil
	}
	res, err := m.Run(sim.RunConfig{
		Ops: ops, Workers: 1, SyscallCycles: SyscallEntry,
	}, op)
	if err != nil {
		return IoctlRow{}, err
	}
	return IoctlRow{Variant: name, MopsPerSec: res.OpsPerSec / 1e6, CPUPct: res.CPUUsagePct}, nil
}

// IoctlSweep runs the Fig. 9 variants.
func IoctlSweep(ops int) ([]IoctlRow, error) {
	var rows []IoctlRow
	for _, v := range IoctlVariants {
		r, err := Ioctl(v.Name, v.Cfg, ops)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}
