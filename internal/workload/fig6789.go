package workload

import (
	"fmt"
	"math/rand"

	"adelie/internal/cpu"
	"adelie/internal/devices"
	"adelie/internal/sim"
)

// RerandPeriod labels the re-randomization settings of §5.2.
type RerandPeriod struct {
	Label    string
	PeriodUs float64 // 0 = disabled
}

// Periods used across Figs. 6–8 (1 ms, 5 ms, 20 ms, plus vanilla).
var (
	PeriodOff  = RerandPeriod{"linux", 0}
	PeriodNone = RerandPeriod{"no-rerand", 0}
	Period20ms = RerandPeriod{"20 ms", 20_000}
	Period5ms  = RerandPeriod{"5 ms", 5_000}
	Period1ms  = RerandPeriod{"1 ms", 1_000}
)

// ---------------------------------------------------------------------------
// Fig. 6 — NVMe O_DIRECT read throughput under re-randomization.

// NVMeRow is one bar pair of Fig. 6.
type NVMeRow struct {
	Period    string
	MBps      float64
	IOPS      float64
	CPUPct    float64
	RerandPct float64 // randomizer thread share of all cores
}

// Default seeds of the Fig. 6–9 experiments (the "seed" param defaults
// in their registry descriptors).
const (
	seedFig6 int64 = 601
	seedFig7 int64 = 701
	seedFig8 int64 = 801
	seedFig9 int64 = 901
)

// NVMeDirectRead reproduces the §5.2 NVMe experiment: the same 512-byte
// block is read through the driver in a tight loop with O_DIRECT/O_SYNC
// semantics, hitting the controller's DRAM cache to minimize I/O wait.
// vanilla=true runs the non-rerandomizable (plain Linux) driver build.
func NVMeDirectRead(period RerandPeriod, vanilla bool, ops int) (NVMeRow, error) {
	return nvmeDirectRead(seedFig6, period, vanilla, ops)
}

func nvmeDirectRead(seed int64, period RerandPeriod, vanilla bool, ops int) (NVMeRow, error) {
	cfg := CfgRerandStack
	if vanilla {
		cfg = CfgVanillaRet
	}
	m, err := newMachine(cfg, seed, "nvme")
	if err != nil {
		return NVMeRow{}, err
	}
	if err := m.InitNVMe(); err != nil {
		return NVMeRow{}, err
	}
	m.NVMe.Preload(5, []byte("fig6 block"))
	buf, err := m.K.Kmalloc(512)
	if err != nil {
		return NVMeRow{}, err
	}
	readVA, err := callVA(m, "nvme_read")
	if err != nil {
		return NVMeRow{}, err
	}
	// Warm the controller cache so the loop measures the DRAM-hit path.
	if _, err := m.K.CPU(0).Call(readVA, buf, 5, 512); err != nil {
		return NVMeRow{}, err
	}
	op := func(c *cpu.CPU) (uint64, error) {
		lat, err := c.Call(readVA, buf, 5, 512)
		if err != nil {
			return 0, err
		}
		if lat == 0 {
			return 0, fmt.Errorf("nvme read failed")
		}
		return lat, nil
	}
	res, err := m.Run(sim.RunConfig{
		Ops: ops, Workers: 1, SyscallCycles: SyscallEntry,
		BytesPerOp: 512, RerandPeriodUs: period.PeriodUs,
	}, op)
	if err != nil {
		return NVMeRow{}, err
	}
	return NVMeRow{
		Period: period.Label, MBps: res.MBPerSec,
		IOPS: res.OpsPerSec, CPUPct: res.CPUUsagePct,
		RerandPct: pct(res.RerandCycles, res.ElapsedSec),
	}, nil
}

func pct(cycles uint64, elapsedSec float64) float64 {
	if elapsedSec == 0 {
		return 0
	}
	return float64(cycles) / (20 * elapsedSec * sim.CPUHz) * 100
}

// NVMeSweep runs the Fig. 6 configurations.
func NVMeSweep(ops int) ([]NVMeRow, error) {
	return nvmeSweep(seedFig6, ops)
}

func nvmeSweep(seed int64, ops int) ([]NVMeRow, error) {
	var rows []NVMeRow
	r, err := nvmeDirectRead(seed, PeriodOff, true, ops)
	if err != nil {
		return nil, err
	}
	rows = append(rows, r)
	for _, p := range []RerandPeriod{PeriodNone, Period5ms, Period1ms} {
		r, err := nvmeDirectRead(seed, p, false, ops)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

var expFig6 = &Experiment{
	Name:   "fig6",
	Figure: "Fig. 6",
	Doc:    "NVMe O_DIRECT 512B read throughput under re-randomization",
	ParamSpecs: []ParamSpec{
		{Name: "ops", Doc: "direct reads per configuration", Default: 2400, Quick: 300},
		{Name: "seed", Doc: "machine boot seed", Default: seedFig6},
	},
	Run: func(p Params) (*Table, error) {
		rows, err := nvmeSweep(p.Int64("seed"), p.Int("ops"))
		if err != nil {
			return nil, err
		}
		t := &Table{
			Title: "Fig. 6 — NVMe O_DIRECT 512B read under re-randomization",
			Columns: []Column{
				Col("config", "%-10s", "%-10s"),
				Col("MB/s", "%10.1f", "%10s"),
				Col("IOPS", "%12.0f", "%12s"),
				Col("CPU%", "%8.2f", "%8s"),
				Col("rerand%", "%10.4f", "%10s"),
			},
		}
		for _, r := range rows {
			t.AddRow(r.Period, r.MBps, r.IOPS, r.CPUPct, r.RerandPct)
		}
		return t, nil
	},
	Headline: func(t *Table) map[string]float64 {
		last := t.Rows[len(t.Rows)-1] // 1 ms period
		return map[string]float64{"1ms-MBps": last[1].(float64), "1ms-cpu-pct": last[3].(float64)}
	},
}

// ---------------------------------------------------------------------------
// Fig. 7 — mySQL OLTP (sysbench oltp) with E1000E + NVMe re-randomized.

// OLTPRow is one point of Fig. 7.
type OLTPRow struct {
	Period      string
	Concurrency int
	TPS         float64
	CPUPct      float64
	// NICDropped sums frames both adapters dropped: TX descriptor
	// faults, plus RX ring overruns once traffic is delivered into a
	// driver-owned ring (the OLTP/Apache response path is TX-only into
	// the host-driven load generator, so overruns appear here when a
	// workload adds server-bound RX traffic).
	NICDropped uint64
}

// OLTPConcurrency is the Fig. 7 sweep.
var OLTPConcurrency = []int{25, 50, 75, 100}

// OLTP models a sysbench-oltp transaction against the 10×1M-row database
// (§5.2): ten queries of server-side work, a partially-cached working set
// hitting NVMe on misses, and the result set returned over the NIC.
func OLTP(period RerandPeriod, vanilla bool, concurrency, txs int) (OLTPRow, error) {
	return oltp(seedFig7, period, vanilla, concurrency, txs)
}

func oltp(seed int64, period RerandPeriod, vanilla bool, concurrency, txs int) (OLTPRow, error) {
	cfg := CfgRerandStack
	if vanilla {
		cfg = CfgVanillaRet
	}
	m, err := newMachine(cfg, seed, "e1000e", "nvme")
	if err != nil {
		return OLTPRow{}, err
	}
	if err := m.InitNVMe(); err != nil {
		return OLTPRow{}, err
	}
	ringLen, err := m.InitNIC("e1000e")
	if err != nil {
		return OLTPRow{}, err
	}
	m.NVMe.Preload(100, []byte("db page"))
	// Per-lane I/O buffers, RNGs and TX-descriptor partitions: lanes run
	// concurrently, so each owns its DMA target, its randomness stream
	// and a disjoint stripe of the NIC ring.
	ncpu := m.K.NumCPUs()
	bufs := make([]uint64, ncpu)
	rngs := make([]*rand.Rand, ncpu)
	frames := make([]uint64, ncpu)
	for i := 0; i < ncpu; i++ {
		if bufs[i], err = m.K.Kmalloc(4096); err != nil {
			return OLTPRow{}, err
		}
		rngs[i] = rand.New(rand.NewSource(7 + int64(i)))
	}
	slotsPerLane := ringLen / uint64(ncpu)
	if slotsPerLane == 0 {
		slotsPerLane = 1
	}
	readVA, err := callVA(m, "nvme_read")
	if err != nil {
		return OLTPRow{}, err
	}
	xmitVA, err := callVA(m, "e1000e_xmit")
	if err != nil {
		return OLTPRow{}, err
	}
	const respBytes = 44_000 // result set per transaction
	op := func(c *cpu.CPU) (uint64, error) {
		lane := c.ID
		rng, buf := rngs[lane], bufs[lane]
		var wait uint64
		for q := 0; q < 10; q++ {
			burn(c, OLTPQueryCost)
			// The database is partially cached in RAM (§5.2): ~15% of
			// queries miss to NVMe.
			if rng.Intn(100) < 15 {
				lat, err := c.Call(readVA, buf, uint64(100+rng.Intn(64)), 4096)
				if err != nil {
					return 0, err
				}
				wait += lat
			}
		}
		// Return the result set: one driver xmit per MTU-sized frame,
		// cycling through this lane's stripe of the TX ring.
		for b := 0; b < respBytes; b += 1448 {
			slot := uint64(lane)*slotsPerLane + frames[lane]%slotsPerLane
			if _, err := c.Call(xmitVA, buf, 1448, slot); err != nil {
				return 0, err
			}
			frames[lane]++
		}
		// Client round-trip think time (the load generator is a separate
		// box; latency off the server's CPUs).
		wait += 30_000_000 // ≈13.6 ms
		return wait, nil
	}
	res, err := m.Run(sim.RunConfig{
		Ops: txs, Workers: concurrency, SyscallCycles: SyscallEntry * 12,
		BytesPerOp: respBytes, WireBps: devices.WireBytesPerSec,
		RerandPeriodUs: period.PeriodUs,
	}, op)
	if err != nil {
		return OLTPRow{}, err
	}
	return OLTPRow{
		Period: period.Label, Concurrency: concurrency,
		TPS: res.OpsPerSec, CPUPct: res.CPUUsagePct,
		NICDropped: m.NIC.Dropped + m.Peer.Dropped,
	}, nil
}

// OLTPSweep runs the Fig. 7 grid.
func OLTPSweep(txs int) ([]OLTPRow, error) {
	return oltpSweep(seedFig7, txs, OLTPConcurrency[len(OLTPConcurrency)-1])
}

func oltpSweep(seed int64, txs, maxConc int) ([]OLTPRow, error) {
	var rows []OLTPRow
	for _, p := range []struct {
		RerandPeriod
		vanilla bool
	}{{PeriodOff, true}, {Period5ms, false}, {Period1ms, false}} {
		for _, conc := range OLTPConcurrency {
			if conc > maxConc {
				continue
			}
			r, err := oltp(seed, p.RerandPeriod, p.vanilla, conc, txs)
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

var expFig7 = &Experiment{
	Name:   "fig7",
	Figure: "Fig. 7",
	Doc:    "mySQL OLTP transactions/s with E1000E+NVMe re-randomized",
	ParamSpecs: []ParamSpec{
		{Name: "ops", Doc: "transactions per configuration point", Default: 400, Quick: 50},
		{Name: "seed", Doc: "machine boot seed", Default: seedFig7},
		{Name: "conc", Doc: "cap on the client-concurrency sweep", Default: 100},
	},
	Run: func(p Params) (*Table, error) {
		rows, err := oltpSweep(p.Int64("seed"), p.Int("ops"), p.Int("conc"))
		if err != nil {
			return nil, err
		}
		t := &Table{
			Title: "Fig. 7 — mySQL OLTP (E1000E+NVMe re-randomized)",
			Columns: []Column{
				Col("config", "%-10s", "%-10s"),
				Col("conc", "%6d", "%6s"),
				Col("tx/s", "%10.0f", "%10s"),
				Col("CPU%", "%8.2f", "%8s"),
				Col("drops", "%8d", "%8s"),
			},
		}
		for _, r := range rows {
			t.AddRow(r.Period, r.Concurrency, r.TPS, r.CPUPct, r.NICDropped)
		}
		return t, nil
	},
	Headline: func(t *Table) map[string]float64 {
		last := t.Rows[len(t.Rows)-1] // 1 ms at the highest concurrency
		return map[string]float64{"1ms-tps": last[2].(float64), "1ms-cpu-pct": last[3].(float64)}
	},
}

// ---------------------------------------------------------------------------
// Fig. 8 — ApacheBench static file serving, five modules re-randomized.

// ApacheRow is one point of Fig. 8.
type ApacheRow struct {
	Period      string
	BlockBytes  int
	Concurrency int
	MBps        float64
	CPUPct      float64
	NICDropped  uint64 // frame drops across both adapters (see OLTPRow)
}

// ApacheBlockSizes and ApacheConcurrency are the Fig. 8 sweeps.
var (
	ApacheBlockSizes  = []int{512, 1024, 4096, 8192}
	ApacheConcurrency = []int{20, 40, 60, 80, 100}
)

// Apache serves a static file of the given size per request. Pressure
// lands on E1000E with occasional NVMe accesses; FUSE, ext4 and xHCI ride
// along as extra re-randomization load, exactly as in §5.2.
func Apache(period RerandPeriod, vanilla bool, blockBytes, concurrency, reqs int) (ApacheRow, error) {
	return apache(seedFig8, period, vanilla, blockBytes, concurrency, reqs)
}

func apache(seed int64, period RerandPeriod, vanilla bool, blockBytes, concurrency, reqs int) (ApacheRow, error) {
	cfg := CfgRerandStack
	if vanilla {
		cfg = CfgVanillaRet
	}
	m, err := newMachine(cfg, seed, "e1000e", "nvme", "fuse", "ext4", "xhci")
	if err != nil {
		return ApacheRow{}, err
	}
	if err := m.InitNVMe(); err != nil {
		return ApacheRow{}, err
	}
	ringLen, err := m.InitNIC("e1000e")
	if err != nil {
		return ApacheRow{}, err
	}
	if err := m.InitXHCI(); err != nil {
		return ApacheRow{}, err
	}
	// Per-lane buffers, RNGs and ring stripes (see OLTP).
	ncpu := m.K.NumCPUs()
	bufs := make([]uint64, ncpu)
	rngs := make([]*rand.Rand, ncpu)
	frames := make([]uint64, ncpu)
	for i := 0; i < ncpu; i++ {
		if bufs[i], err = m.K.Kmalloc(8192); err != nil {
			return ApacheRow{}, err
		}
		rngs[i] = rand.New(rand.NewSource(9 + int64(i)))
	}
	slotsPerLane := ringLen / uint64(ncpu)
	if slotsPerLane == 0 {
		slotsPerLane = 1
	}
	pollVA, err := callVA(m, "e1000e_poll_rx")
	if err != nil {
		return ApacheRow{}, err
	}
	xmitVA, err := callVA(m, "e1000e_xmit")
	if err != nil {
		return ApacheRow{}, err
	}
	getBlockVA, err := callVA(m, "ext4_get_block")
	if err != nil {
		return ApacheRow{}, err
	}
	readVA, err := callVA(m, "nvme_read")
	if err != nil {
		return ApacheRow{}, err
	}
	op := func(c *cpu.CPU) (uint64, error) {
		lane := c.ID
		rng, buf := rngs[lane], bufs[lane]
		laneSlot := func() uint64 { return uint64(lane)*slotsPerLane + frames[lane]%slotsPerLane }
		var wait uint64
		// Receive + parse the request (this lane's stripe of the RX ring).
		if _, err := c.Call(pollVA, laneSlot()); err != nil {
			return 0, err
		}
		burn(c, HTTPAppCost)
		// File lookup through ext4; ~5% of requests miss the page cache
		// and hit NVMe.
		if _, err := c.Call(getBlockVA, 3, uint64(rng.Intn(2048))); err != nil {
			return 0, err
		}
		if rng.Intn(100) < 5 {
			lat, err := c.Call(readVA, buf, uint64(200+rng.Intn(32)), 4096)
			if err != nil {
				return 0, err
			}
			wait += lat
		}
		// Send the response, one frame per MTU.
		for b := 0; b < blockBytes+300; b += 1448 {
			if _, err := c.Call(xmitVA, buf, 1448, laneSlot()); err != nil {
				return 0, err
			}
			frames[lane]++
		}
		// Client-side round trip.
		wait += 5_500_000 // ≈2.5 ms
		return wait, nil
	}
	res, err := m.Run(sim.RunConfig{
		Ops: reqs, Workers: concurrency, SyscallCycles: SyscallEntry * 4,
		BytesPerOp: float64(blockBytes + 300), WireBps: devices.WireBytesPerSec,
		RerandPeriodUs: period.PeriodUs,
	}, op)
	if err != nil {
		return ApacheRow{}, err
	}
	return ApacheRow{
		Period: period.Label, BlockBytes: blockBytes, Concurrency: concurrency,
		MBps: res.MBPerSec, CPUPct: res.CPUUsagePct,
		NICDropped: m.NIC.Dropped + m.Peer.Dropped,
	}, nil
}

// ApacheSweep runs the Fig. 8 grid.
func ApacheSweep(reqs int) ([]ApacheRow, error) {
	return apacheSweep(seedFig8, reqs,
		ApacheBlockSizes[len(ApacheBlockSizes)-1], ApacheConcurrency[len(ApacheConcurrency)-1])
}

func apacheSweep(seed int64, reqs, maxBlock, maxConc int) ([]ApacheRow, error) {
	var rows []ApacheRow
	for _, p := range []struct {
		RerandPeriod
		vanilla bool
	}{{PeriodOff, true}, {Period20ms, false}, {Period5ms, false}, {Period1ms, false}} {
		for _, bs := range ApacheBlockSizes {
			if bs > maxBlock {
				continue
			}
			for _, conc := range ApacheConcurrency {
				if conc > maxConc {
					continue
				}
				r, err := apache(seed, p.RerandPeriod, p.vanilla, bs, conc, reqs)
				if err != nil {
					return nil, err
				}
				rows = append(rows, r)
			}
		}
	}
	return rows, nil
}

var expFig8 = &Experiment{
	Name:   "fig8",
	Figure: "Fig. 8",
	Doc:    "ApacheBench static file serving, five modules re-randomized",
	ParamSpecs: []ParamSpec{
		{Name: "ops", Doc: "requests per configuration point", Default: 240, Quick: 30},
		{Name: "seed", Doc: "machine boot seed", Default: seedFig8},
		{Name: "block", Doc: "cap on the served-file block-size sweep (bytes)", Default: 8192},
		{Name: "conc", Doc: "cap on the client-concurrency sweep", Default: 100},
	},
	Run: func(p Params) (*Table, error) {
		rows, err := apacheSweep(p.Int64("seed"), p.Int("ops"), p.Int("block"), p.Int("conc"))
		if err != nil {
			return nil, err
		}
		t := &Table{
			Title: "Fig. 8 — ApacheBench (5 modules re-randomized)",
			Columns: []Column{
				Col("config", "%-10s", "%-10s"),
				Col("block", "%7d", "%7s"),
				Col("conc", "%6d", "%6s"),
				Col("MB/s", "%10.1f", "%10s"),
				Col("CPU%", "%8.2f", "%8s"),
				Col("drops", "%8d", "%8s"),
			},
		}
		for _, r := range rows {
			t.AddRow(r.Period, r.BlockBytes, r.Concurrency, r.MBps, r.CPUPct, r.NICDropped)
		}
		return t, nil
	},
	Headline: func(t *Table) map[string]float64 {
		last := t.Rows[len(t.Rows)-1] // tightest period, biggest block, highest conc
		return map[string]float64{"1ms-MBps": last[3].(float64), "1ms-cpu-pct": last[4].(float64)}
	},
}

// ---------------------------------------------------------------------------
// Fig. 9 — IOCTL null-operation throughput (CPU-bound worst case, §5.3).

// IoctlRow is one bar of Fig. 9.
type IoctlRow struct {
	Variant    string
	MopsPerSec float64
	CPUPct     float64
}

// IoctlVariants are the Fig. 9 comparison points: original Linux, plain
// PIC, wrappers (re-randomizable without stack swap), and wrappers plus
// stack re-randomization.
var IoctlVariants = []struct {
	Name string
	Cfg  Config
}{
	{"linux", CfgVanillaRet},
	{"pic", CfgPICRet},
	{"wrappers", CfgRerand},
	{"wrappers+stack", CfgRerandStack},
}

// Ioctl measures the dummy driver's null-ioctl rate.
func Ioctl(name string, cfg Config, ops int) (IoctlRow, error) {
	return ioctl(seedFig9, name, cfg, ops)
}

func ioctl(seed int64, name string, cfg Config, ops int) (IoctlRow, error) {
	m, err := newMachine(cfg, seed, "dummy")
	if err != nil {
		return IoctlRow{}, err
	}
	va, err := callVA(m, "dummy_ioctl")
	if err != nil {
		return IoctlRow{}, err
	}
	op := func(c *cpu.CPU) (uint64, error) {
		ret, err := c.Call(va, 0)
		if err != nil {
			return 0, err
		}
		if ret != 0 {
			return 0, fmt.Errorf("ioctl returned %d", int64(ret))
		}
		return 0, nil
	}
	res, err := m.Run(sim.RunConfig{
		Ops: ops, Workers: 1, SyscallCycles: SyscallEntry,
	}, op)
	if err != nil {
		return IoctlRow{}, err
	}
	return IoctlRow{Variant: name, MopsPerSec: res.OpsPerSec / 1e6, CPUPct: res.CPUUsagePct}, nil
}

// IoctlSweep runs the Fig. 9 variants.
func IoctlSweep(ops int) ([]IoctlRow, error) {
	return ioctlSweep(seedFig9, ops)
}

func ioctlSweep(seed int64, ops int) ([]IoctlRow, error) {
	var rows []IoctlRow
	for _, v := range IoctlVariants {
		r, err := ioctl(seed, v.Name, v.Cfg, ops)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

var expFig9 = &Experiment{
	Name:   "fig9",
	Figure: "Fig. 9",
	Doc:    "IOCTL null-op throughput per mechanism variant (CPU-bound worst case)",
	ParamSpecs: []ParamSpec{
		{Name: "ops", Doc: "ioctl calls per variant", Default: 24000, Quick: 3000},
		{Name: "seed", Doc: "machine boot seed", Default: seedFig9},
	},
	Run: func(p Params) (*Table, error) {
		rows, err := ioctlSweep(p.Int64("seed"), p.Int("ops"))
		if err != nil {
			return nil, err
		}
		t := &Table{
			Title: "Fig. 9 — IOCTL null-op throughput (CPU-bound worst case)",
			Columns: []Column{
				Col("variant", "%-16s", "%-16s"),
				Col("Mops/s", "%10.3f", "%10s"),
				Col("CPU%", "%8.2f", "%8s"),
				{Name: "vs linux", Head: "vs linux", Fmt: "%9.1f%%", HeadFmt: "%10s"},
			},
		}
		base := rows[0].MopsPerSec
		for _, r := range rows {
			t.AddRow(r.Variant, r.MopsPerSec, r.CPUPct, (r.MopsPerSec/base-1)*100)
		}
		return t, nil
	},
	Headline: func(t *Table) map[string]float64 {
		out := map[string]float64{}
		for _, r := range t.Rows {
			out[r[0].(string)+"-Mops"] = r[1].(float64)
		}
		return out
	},
}
