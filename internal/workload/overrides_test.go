package workload

import (
	"strings"
	"testing"
)

func TestSplitOverride(t *testing.T) {
	if k, v, err := SplitOverride("ops=100"); err != nil || k != "ops" || v != "100" {
		t.Fatalf("SplitOverride(ops=100) = %q, %q, %v", k, v, err)
	}
	// "=" in the value survives (first cut wins).
	if k, v, err := SplitOverride("a=b=c"); err != nil || k != "a" || v != "b=c" {
		t.Fatalf("SplitOverride(a=b=c) = %q, %q, %v", k, v, err)
	}
	for _, bad := range []string{"ops", "=100", ""} {
		if _, _, err := SplitOverride(bad); err == nil {
			t.Fatalf("SplitOverride(%q): want error", bad)
		}
	}
}

func TestResolveOverrides(t *testing.T) {
	exp, ok := Experiments.Lookup("fig9")
	if !ok {
		t.Fatal("fig9 not registered")
	}

	// Plain override lands; untouched params keep their defaults.
	p, sweepParam, sweepValues, err := exp.ResolveOverrides(false, []string{"ops=123"}, true)
	if err != nil || sweepParam != "" || sweepValues != nil {
		t.Fatalf("plain override: %v %q %v", err, sweepParam, sweepValues)
	}
	if got := p.Int64("ops"); got != 123 {
		t.Fatalf("ops = %d, want 123", got)
	}

	// Quick defaults apply before overrides.
	pq, _, _, err := exp.ResolveOverrides(true, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	pd, _, _, _ := exp.ResolveOverrides(false, nil, true)
	if pq.Int64("ops") >= pd.Int64("ops") {
		t.Fatalf("quick ops %d not reduced from default %d", pq.Int64("ops"), pd.Int64("ops"))
	}

	// A range yields the sweep and pins the param to the first point.
	p, sweepParam, sweepValues, err = exp.ResolveOverrides(false, []string{"ops=100..300:100"}, true)
	if err != nil || sweepParam != "ops" {
		t.Fatalf("range override: %v %q", err, sweepParam)
	}
	if len(sweepValues) != 3 || sweepValues[0] != 100 || sweepValues[2] != 300 {
		t.Fatalf("sweep values: %v", sweepValues)
	}
	if got := p.Int64("ops"); got != 100 {
		t.Fatalf("ops pinned to %d, want first point 100", got)
	}

	// Two distinct ranges is an error.
	if _, _, _, err := exp.ResolveOverrides(false, []string{"ops=1..2", "seed=3..4"}, true); err == nil ||
		!strings.Contains(err.Error(), "one -p range per run") {
		t.Fatalf("two ranges: %v", err)
	}

	// Unknown keys: error under strict, skipped otherwise.
	if _, _, _, err := exp.ResolveOverrides(false, []string{"bogus=1"}, true); err == nil {
		t.Fatal("strict unknown key: want error")
	}
	if _, _, _, err := exp.ResolveOverrides(false, []string{"bogus=1"}, false); err != nil {
		t.Fatalf("lenient unknown key: %v", err)
	}

	// Malformed values error regardless of strictness.
	for _, bad := range []string{"ops=abc", "ops=1.5", "ops"} {
		if _, _, _, err := exp.ResolveOverrides(false, []string{bad}, false); err == nil {
			t.Fatalf("ResolveOverrides(%q): want error", bad)
		}
	}
}

func TestCheckOverrides(t *testing.T) {
	if err := Experiments.CheckOverrides([]string{"fig9", "fig5b"}, []string{"ops=100", "seed=2"}); err != nil {
		t.Fatalf("valid overrides: %v", err)
	}
	// Key matching any one selected experiment is enough.
	if err := Experiments.CheckOverrides([]string{"fig1", "fig9"}, []string{"ops=100"}); err != nil {
		t.Fatalf("partially-matched key: %v", err)
	}
	for _, tc := range []struct {
		overrides []string
		want      string
	}{
		{[]string{"bogus=1"}, "no selected experiment"},
		{[]string{"ops=abc"}, "not an integer"},
		{[]string{"ops=5..1"}, ""},
		{[]string{"ops"}, "want key=val"},
	} {
		err := Experiments.CheckOverrides([]string{"fig9"}, tc.overrides)
		if err == nil {
			t.Fatalf("CheckOverrides(%v): want error", tc.overrides)
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("CheckOverrides(%v) = %v, want mention of %q", tc.overrides, err, tc.want)
		}
	}
}
