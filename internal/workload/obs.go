package workload

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"adelie/internal/obs"
	"adelie/internal/sim"
)

// ObsSession is one exclusive observability window: every machine booted
// (or forked) by the workload layer while the session is open gets a
// trace process in Trace and/or sample lanes in Profile.
type ObsSession struct {
	Trace   *obs.TraceSession // nil unless tracing was requested
	Profile *obs.Profiler     // nil unless profiling was requested
}

// obsExcl serializes observability sessions: exactly one observed run at
// a time, so a trace's machine set — and therefore its pid assignment —
// is a pure function of the observed experiment. obsActive is the
// currently open session, read lock-free on every machine boot (boots by
// unobserved callers proceed concurrently and see nil).
var (
	obsExcl   sync.Mutex
	obsActive atomic.Pointer[ObsSession]
)

// BeginObs opens an observability session and returns it with its close
// function. Sessions are exclusive — a second BeginObs blocks until the
// first closes — which is what makes traces deterministic: machines
// enter the trace in boot order, and the boot sequence of a seeded
// experiment is fixed. Callers that boot machines concurrently with an
// open session (the fleet service handling untraced requests alongside a
// traced one) will see those machines join the trace too; that is the
// fleet-wide view, documented in README, not a race.
func BeginObs(trace, profile bool) (*ObsSession, func()) {
	obsExcl.Lock()
	s := &ObsSession{}
	if trace {
		s.Trace = &obs.TraceSession{}
	}
	if profile {
		s.Profile = &obs.Profiler{}
	}
	obsActive.Store(s)
	return s, func() {
		obsActive.Store(nil)
		obsExcl.Unlock()
	}
}

// attachObs joins a freshly provided machine to the open observability
// session, if any. The trace process name encodes the boot request
// (config, seed, queue shape, drivers) so multi-machine traces stay
// legible; pid is assigned by boot order inside the session. Forked
// machines carry a "fork" instant on their memory-system track so the
// trace distinguishes pool forks from cold boots.
func attachObs(m *sim.Machine, c Config, seed int64, queues int, forked bool, driverNames []string) {
	s := obsActive.Load()
	if s == nil {
		return
	}
	var tr *obs.Tracer
	if s.Trace != nil {
		name := fmt.Sprintf("%s seed=%d", c, seed)
		if queues > 1 {
			name += fmt.Sprintf(" q%d", queues)
		}
		if len(driverNames) > 0 {
			name += " [" + strings.Join(driverNames, ",") + "]"
		}
		tr = s.Trace.Tracer(name, m.K.NumCPUs())
		if forked {
			tr.Emit(obs.Event{Track: tr.Track("mm"), Kind: obs.KindMM, Name: "fork"})
		}
	}
	if tr != nil || s.Profile != nil {
		m.AttachObs(tr, s.Profile)
	}
}
