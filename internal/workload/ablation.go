package workload

import (
	"fmt"

	"adelie/internal/cpu"
	"adelie/internal/drivers"
	"adelie/internal/kernel"
	"adelie/internal/rerand"
	"adelie/internal/sim"
	"adelie/internal/smr"
)

// Ablations for the design choices DESIGN.md calls out: the loader's
// Fig.-4 run-time patching (§4.1 claims it "substantially reduces the
// total number of GOT and PLT entries") and the choice of Hyaline over
// EBR/QSBR for delayed unmapping (§3.4).

// ---------------------------------------------------------------------------
// Fig.-4 patching ablation.

// PatchRow compares one driver loaded with and without the loader's
// local-symbol patching.
type PatchRow struct {
	Driver string

	GotEntriesPatched   int // GOT slots with Fig. 4 enabled
	GotEntriesUnpatched int // GOT slots with it disabled
	StubsPatched        int
	StubsUnpatched      int
	CallsPatched        int // call sites rewritten to direct calls
	LoadsPatched        int // GOT loads rewritten to lea

	MopsPatched   float64 // dummy-ioctl style throughput, patched
	MopsUnpatched float64
}

// Default seeds of the three ablations (the registry descriptor's seed
// params: "seed" drives A, "smrseed" B, "mechseed" C).
const (
	seedAblationPatching  int64 = 111
	seedAblationSMR       int64 = 222
	seedAblationMechanism int64 = 333
)

// PatchingAblation loads each driver under retpoline PIC with the Fig.-4
// optimizations on and off, and measures the table sizes plus the
// dummy driver's call rate both ways.
func PatchingAblation(ops int) ([]PatchRow, error) {
	return patchingAblation(seedAblationPatching, ops)
}

func patchingAblation(seed int64, ops int) ([]PatchRow, error) {
	names := []string{"dummy", "nvme", "e1000e", "ext4", "fuse", "xhci"}
	var rows []PatchRow
	for _, name := range names {
		row := PatchRow{Driver: name}
		for _, disabled := range []bool{false, true} {
			k, err := kernel.New(kernel.Config{
				NumCPUs: 20, Seed: seed, KASLR: kernel.KASLRFull64,
				DisableFig4Patching: disabled,
			})
			if err != nil {
				return nil, err
			}
			r := rerand.New(k)
			_ = r // stack natives registered for StackRerand builds
			obj, err := drivers.Build(drivers.All()[name](), drivers.BuildOpts{
				PIC: true, Retpoline: true, Rerand: true, RetEncrypt: true,
			})
			if err != nil {
				return nil, err
			}
			mod, err := k.Load(obj)
			if err != nil {
				return nil, err
			}
			got := len(mod.Movable.GotFixed.Slots) + len(mod.Movable.GotLocal.Slots) +
				len(mod.Immovable.GotFixed.Slots) + len(mod.Immovable.GotLocal.Slots)
			if disabled {
				row.GotEntriesUnpatched = got
				row.StubsUnpatched = mod.PltStubsBuilt
			} else {
				row.GotEntriesPatched = got
				row.StubsPatched = mod.PltStubsBuilt
				row.CallsPatched = mod.CallsPatched
				row.LoadsPatched = mod.GotLoadsPatched
			}
			// Throughput for the dummy driver only (the others lack a
			// zero-argument hot entry point).
			if name == "dummy" {
				va, ok := k.Symbol("dummy_ioctl")
				if !ok {
					continue
				}
				c := k.CPU(0)
				start := c.Cycles
				for i := 0; i < ops; i++ {
					if _, err := c.Call(va, 0); err != nil {
						return nil, err
					}
				}
				perOp := float64(c.Cycles-start)/float64(ops) + float64(SyscallEntry)
				mops := sim.CPUHz / perOp / 1e6
				if disabled {
					row.MopsUnpatched = mops
				} else {
					row.MopsPatched = mops
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// SMR scheme ablation.

// SMRRow compares the reclamation schemes as the delayed-unmap backend.
type SMRRow struct {
	Scheme string
	// DeltaAfterSteps is the retired-but-not-freed backlog after a burst
	// of re-randomizations with live call traffic and NO external
	// driving — the property that makes Hyaline kernel-friendly (§3.4):
	// its readers reclaim on their own way out.
	DeltaAfterSteps int64
	// DeltaAfterFlush is the backlog after explicit driving (all schemes
	// must reach zero).
	DeltaAfterFlush int64
	// StepCycles is the modeled cost of one re-randomization pass.
	StepCycles uint64
}

// SMRAblation runs the same re-randomization burst under Hyaline, EBR and
// QSBR.
func SMRAblation() ([]SMRRow, error) {
	return smrAblation(seedAblationSMR)
}

func smrAblation(seed int64) ([]SMRRow, error) {
	mk := func(name string, ncpu int) smr.Reclaimer {
		switch name {
		case "hyaline":
			return smr.NewHyaline(ncpu + 1)
		case "ebr":
			return smr.NewEBR(ncpu + 1)
		default:
			return smr.NewQSBR(ncpu + 1)
		}
	}
	var rows []SMRRow
	for _, scheme := range []string{"hyaline", "ebr", "qsbr"} {
		const ncpu = 4
		k, err := kernel.New(kernel.Config{
			NumCPUs: ncpu, Seed: seed, KASLR: kernel.KASLRFull64,
			Reclaimer: mk(scheme, ncpu),
		})
		if err != nil {
			return nil, err
		}
		r := rerand.New(k)
		obj, err := drivers.Build(drivers.Dummy("dummy"), drivers.BuildOpts{
			PIC: true, Retpoline: true, Rerand: true, StackRerand: true, RetEncrypt: true,
		})
		if err != nil {
			return nil, err
		}
		mod, err := k.Load(obj)
		if err != nil {
			return nil, err
		}
		if err := r.Add(mod); err != nil {
			return nil, err
		}
		va, _ := k.Symbol("dummy_ioctl")
		c := k.CPU(0)

		row := SMRRow{Scheme: scheme}
		for i := 0; i < 10; i++ {
			rep, err := r.Step()
			if err != nil {
				return nil, err
			}
			row.StepCycles = rep.Cycles
			// Live traffic between steps: wrapped calls enter and leave
			// critical sections, which is all the driving Hyaline needs.
			for j := 0; j < 5; j++ {
				if _, err := c.Call(va, 0); err != nil {
					return nil, err
				}
			}
		}
		row.DeltaAfterSteps = k.SMR.Stats().Delta()
		k.SMR.Flush()
		row.DeltaAfterFlush = k.SMR.Stats().Delta()
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Plugin-option cost ablation (fills in between the Fig. 9 bars).

// MechanismRow isolates the cost of one instrumentation mechanism.
type MechanismRow struct {
	Mechanism  string
	MopsPerSec float64
}

// MechanismAblation measures the dummy-ioctl rate with each mechanism
// enabled incrementally: plain PIC → wrappers → +encryption → +stack.
func MechanismAblation(ops int) ([]MechanismRow, error) {
	return mechanismAblation(seedAblationMechanism, ops)
}

func mechanismAblation(seed int64, ops int) ([]MechanismRow, error) {
	cases := []struct {
		name string
		opts drivers.BuildOpts
	}{
		{"pic", drivers.BuildOpts{PIC: true, Retpoline: true}},
		{"wrappers", drivers.BuildOpts{PIC: true, Retpoline: true, Rerand: true}},
		{"wrappers+encrypt", drivers.BuildOpts{PIC: true, Retpoline: true, Rerand: true, RetEncrypt: true}},
		{"wrappers+encrypt+stack", drivers.BuildOpts{PIC: true, Retpoline: true, Rerand: true, RetEncrypt: true, StackRerand: true}},
	}
	var rows []MechanismRow
	for _, cse := range cases {
		m, err := sim.NewMachine(sim.Config{NumCPUs: 20, Seed: seed, KASLR: kernel.KASLRFull64})
		if err != nil {
			return nil, err
		}
		if _, err := m.LoadDriver("dummy", cse.opts); err != nil {
			return nil, err
		}
		va, err := callVA(m, "dummy_ioctl")
		if err != nil {
			return nil, err
		}
		res, err := m.Run(sim.RunConfig{Ops: ops, Workers: 1, SyscallCycles: syscallCost(CfgRerandStack)},
			func(c *cpu.CPU) (uint64, error) {
				_, err := c.Call(va, 0)
				return 0, err
			})
		if err != nil {
			return nil, err
		}
		rows = append(rows, MechanismRow{Mechanism: cse.name, MopsPerSec: res.OpsPerSec / 1e6})
	}
	return rows, nil
}

var expAblation = &Experiment{
	Name:   "ablation",
	Figure: "Fig. 4 / §3.4 / §4.1",
	Doc:    "design ablations: loader patching, SMR scheme, per-mechanism cost",
	ParamSpecs: []ParamSpec{
		{Name: "ops", Doc: "ioctl calls per patching measurement", Default: 2000, Quick: 500},
		{Name: "mechops", Doc: "ioctl calls per mechanism measurement", Default: 6000, Quick: 1500},
		{Name: "seed", Doc: "kernel seed for the patching ablation", Default: seedAblationPatching},
		{Name: "smrseed", Doc: "kernel seed for the SMR ablation", Default: seedAblationSMR},
		{Name: "mechseed", Doc: "machine seed for the mechanism ablation", Default: seedAblationMechanism},
	},
	Run: func(p Params) (*Table, error) {
		prows, err := patchingAblation(p.Int64("seed"), p.Int("ops"))
		if err != nil {
			return nil, err
		}
		a := &Table{
			Title: "Ablation A — loader run-time patching (paper Fig. 4 / §4.1)",
			Columns: []Column{
				Col("driver", "%-8s", "%-8s"),
				Col("GOT entries", "%s", "%18s"),
				Col("PLT stubs", "%s", "%14s"),
				Col("patched sites", "%s", "%16s"),
			},
		}
		for _, r := range prows {
			a.AddRow(r.Driver,
				fmt.Sprintf("%8d → %-7d", r.GotEntriesUnpatched, r.GotEntriesPatched),
				fmt.Sprintf("%5d → %-6d", r.StubsUnpatched, r.StubsPatched),
				fmt.Sprintf("%7d+%d", r.CallsPatched, r.LoadsPatched))
		}
		for _, r := range prows {
			if r.Driver == "dummy" {
				a.Notef("dummy ioctl rate: %.3f Mops/s patched vs %.3f unpatched",
					r.MopsPatched, r.MopsUnpatched)
			}
		}

		srows, err := smrAblation(p.Int64("smrseed"))
		if err != nil {
			return nil, err
		}
		b := &Table{
			Title: "Ablation B — SMR scheme as the delayed-unmap backend (§3.4)",
			Columns: []Column{
				Col("scheme", "%-10s", "%-10s"),
				Col("backlog (no driving)", "%22d", "%22s"),
				Col("after flush", "%18d", "%18s"),
				Col("step cycles", "%12d", "%12s"),
			},
		}
		for _, r := range srows {
			b.AddRow(r.Scheme, r.DeltaAfterSteps, r.DeltaAfterFlush, r.StepCycles)
		}

		mrows, err := mechanismAblation(p.Int64("mechseed"), p.Int("mechops"))
		if err != nil {
			return nil, err
		}
		c := &Table{
			Title: "Ablation C — per-mechanism instrumentation cost",
			Columns: []Column{
				Col("mechanisms", "%-24s", "%-24s"),
				Col("Mops/s", "%10.3f", "%10s"),
				{Name: "vs pic", Head: "vs pic", Fmt: "%9.1f%%", HeadFmt: "%10s"},
			},
		}
		base := mrows[0].MopsPerSec
		for _, r := range mrows {
			c.AddRow(r.Mechanism, r.MopsPerSec, (r.MopsPerSec/base-1)*100)
		}

		a.Children = []*Table{b, c}
		return a, nil
	},
	Headline: func(t *Table) map[string]float64 {
		mech := t.Children[1]
		first := mech.Rows[0][1].(float64)
		last := mech.Rows[len(mech.Rows)-1][1].(float64)
		return map[string]float64{"full-instr-cost-pct": (1 - last/first) * 100}
	},
}
