package workload

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"adelie/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata goldens from current output")

// serverTestRun is the shared harness: one server configuration plus
// its delivery trace (line>vcpu@cycle:handled per delivered interrupt).
func serverTestRun(t *testing.T, queues, workers, ops int) (ServerRow, sim.RunResult, []string) {
	t.Helper()
	row, res, m, err := serverRun(seedServer, queues, workers, ops, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var trace []string
	for _, d := range m.Bus.IC().Trace() {
		trace = append(trace, fmt.Sprintf("%d>%d@%d:%v", d.Line, d.VCPU, d.AtCycle, d.Handled))
	}
	return row, res, trace
}

// TestServerCrossVCPUDeterminism is the tentpole's determinism
// contract: with RSS spreading RX vectors across vCPUs (and the NVMe
// completion vector pinned alongside them), repeated runs must produce
// identical RunResults — including the per-lane IRQ breakdown — and an
// identical (line, vcpu, cycle) delivery trace, while interrupts
// demonstrably arrive on multiple distinct vCPUs.
func TestServerCrossVCPUDeterminism(t *testing.T) {
	for _, queues := range []int{2, 4} {
		queues := queues
		t.Run(fmt.Sprintf("queues=%d", queues), func(t *testing.T) {
			rowA, resA, traceA := serverTestRun(t, queues, 4, 48)
			rowB, resB, traceB := serverTestRun(t, queues, 4, 48)
			if rowA != rowB || !reflect.DeepEqual(resA, resB) {
				t.Fatalf("server run not deterministic:\n%+v %+v\n%+v %+v", rowA, resA, rowB, resB)
			}
			if strings.Join(traceA, ",") != strings.Join(traceB, ",") {
				t.Fatalf("delivery trace differs:\n%v\n%v", traceA, traceB)
			}
			if resA.IRQVCPUs() != queues {
				t.Fatalf("IRQs delivered on %d vCPUs, want %d (per-lane %v)",
					resA.IRQVCPUs(), queues, resA.IRQsPerLane)
			}
			var sum uint64
			for _, c := range resA.IRQsPerLane {
				sum += c
			}
			if sum != resA.IRQs || resA.IRQs == 0 {
				t.Fatalf("per-lane IRQ counts %v don't sum to aggregate %d", resA.IRQsPerLane, resA.IRQs)
			}
		})
	}
}

// TestServerSingleQueueOnVCPU0: one queue with default affinity is the
// legacy delivery shape — every interrupt (NIC vector and NVMe
// completion alike) lands on vCPU 0.
func TestServerSingleQueueOnVCPU0(t *testing.T) {
	_, res, trace := serverTestRun(t, 1, 4, 48)
	if res.IRQVCPUs() != 1 || res.IRQs == 0 {
		t.Fatalf("single-queue spread = %d vCPUs (per-lane %v)", res.IRQVCPUs(), res.IRQsPerLane)
	}
	if res.IRQsPerLane[0] != res.IRQs {
		t.Fatalf("single-queue IRQs not all on vCPU 0: %v", res.IRQsPerLane)
	}
	for _, d := range trace {
		if !strings.Contains(d, ">0@") {
			t.Fatalf("delivery off vCPU 0 in single-queue mode: %v", trace)
		}
	}
}

// TestServerForkPoolMatchesColdBoot extends the fork-determinism
// contract to the multi-queue machine shape: a server run on a
// copy-on-write fork must be bit-identical — row, RunResult, delivery
// trace — to one on a cold-booted machine.
func TestServerForkPoolMatchesColdBoot(t *testing.T) {
	rowCold, resCold, traceCold := serverTestRun(t, 4, 4, 48)
	EnableForkPool()
	defer DisableForkPool()
	// Two forked runs: the first boots and freezes the template, both
	// must match the cold boot.
	for i := 0; i < 2; i++ {
		rowF, resF, traceF := serverTestRun(t, 4, 4, 48)
		if rowCold != rowF || !reflect.DeepEqual(resCold, resF) {
			t.Fatalf("fork %d diverges from cold boot:\n%+v %+v\n%+v %+v", i, rowCold, resCold, rowF, resF)
		}
		if strings.Join(traceCold, ",") != strings.Join(traceF, ",") {
			t.Fatalf("fork %d delivery trace diverges:\n%v\n%v", i, traceCold, traceF)
		}
	}
}

// TestFig6QuickGolden pins the NVMe latency figure byte-for-byte: the
// interrupt-path refactor retired the driver's polled-CQ spin, and this
// golden is the regression proof that the replacement consume sequence
// left every fig6 number — throughput, IOPS, CPU%, rerand% — unchanged.
// Regenerate (only with an understood, intended change) via
// go test ./internal/workload -run Fig6QuickGolden -args -update.
func TestFig6QuickGolden(t *testing.T) {
	e, ok := Experiments.Lookup("fig6")
	if !ok {
		t.Fatal("fig6 not registered")
	}
	tab, err := e.Run(e.Params(true))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	golden := filepath.Join("testdata", "fig6_quick.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Fatalf("fig6 quick table drifted from golden:\n--- want\n%s--- got\n%s", want, buf.Bytes())
	}
}
