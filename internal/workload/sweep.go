package workload

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"adelie/internal/sim"
)

// Parameter sweeps: run one experiment once per value of a -p range
// ("ops=100..1600:250"), producing one Table per point. The parallel
// path fans points across a worker pool and serves machine boots from a
// snapshot/fork template pool — every machine an experiment would
// cold-boot is instead forked copy-on-write from a booted, frozen
// template of the same (config, seed, drivers) key. Forks are
// bit-identical to cold boots (sim's fork-determinism contract), so
// serial and parallel sweeps must render byte-identical output; CI
// diffs the two modes on every push.

// poolKey identifies one bootable machine shape.
type poolKey struct {
	cfg     Config
	seed    int64
	queues  int
	drivers string
}

// forkPool caches frozen snapshot templates while a parallel sweep (or
// any caller of EnableForkPool) is active. Disabled, newMachine boots
// cold and the pool costs one atomic load. Enables nest: the fleet
// service holds the pool open for its whole lifetime while each sweep
// request's RunSweep still brackets itself with Enable/Disable — the
// templates are torn down only when the last enabler leaves.
var forkPool struct {
	on   atomic.Bool
	mu   sync.Mutex
	refs int
	tmpl map[poolKey]*sim.Machine

	// Lifetime counters for statsz-style reporting (PoolStats).
	templates atomic.Int64
	forks     atomic.Int64
	coldBoots atomic.Int64
}

// EnableForkPool turns on snapshot/fork boot caching: until the matching
// DisableForkPool, every newMachine call forks a pooled template
// instead of cold-booting (falling back to a cold boot if the machine
// shape cannot fork, e.g. under a reclaimer without fork support).
// Enable/Disable pairs nest.
func EnableForkPool() {
	forkPool.mu.Lock()
	defer forkPool.mu.Unlock()
	forkPool.refs++
	if forkPool.tmpl == nil {
		forkPool.tmpl = map[poolKey]*sim.Machine{}
	}
	forkPool.on.Store(true)
}

// DisableForkPool undoes one EnableForkPool; when the last enabler
// leaves, boot caching turns back off and every template's
// copy-on-write frame references are released.
func DisableForkPool() {
	forkPool.mu.Lock()
	defer forkPool.mu.Unlock()
	if forkPool.refs > 0 {
		forkPool.refs--
	}
	if forkPool.refs > 0 {
		return
	}
	forkPool.on.Store(false)
	for _, m := range forkPool.tmpl {
		m.Release()
	}
	forkPool.tmpl = nil
}

// PoolStats reports the fork pool's lifetime boot accounting: templates
// frozen, machines served as copy-on-write forks, and machines that had
// to cold-boot while the pool was enabled (a fork-pool miss — the
// service's "no cold boot per request" contract watches this stay 0).
type PoolStats struct {
	Templates int64 `json:"templates"`
	Forks     int64 `json:"forks"`
	ColdBoots int64 `json:"cold_boots"`
}

// ForkPoolStats returns the pool's cumulative counters.
func ForkPoolStats() PoolStats {
	return PoolStats{
		Templates: forkPool.templates.Load(),
		Forks:     forkPool.forks.Load(),
		ColdBoots: forkPool.coldBoots.Load(),
	}
}

// poolFork serves one machine from the template pool, booting and
// freezing the template on first use of its key. ok is false when the
// pool is off or this shape cannot fork — the caller cold-boots.
func poolFork(c Config, seed int64, queues int, driverNames []string) (*sim.Machine, bool) {
	if !forkPool.on.Load() {
		return nil, false
	}
	forkPool.mu.Lock()
	defer forkPool.mu.Unlock()
	if forkPool.tmpl == nil { // disabled between the atomic check and the lock
		return nil, false
	}
	key := poolKey{c, seed, queues, strings.Join(driverNames, ",")}
	tmpl, ok := forkPool.tmpl[key]
	if !ok {
		m, err := bootMachineQ(c, seed, queues, driverNames...)
		if err != nil {
			return nil, false // let the cold path surface the boot error
		}
		if err := m.Snapshot(); err != nil {
			return nil, false // unforkable shape: cold boots from here on
		}
		forkPool.tmpl[key] = m
		forkPool.templates.Add(1)
		tmpl = m
	}
	f, err := tmpl.Fork()
	if err != nil {
		return nil, false
	}
	forkPool.forks.Add(1)
	return f, true
}

// SweepPoint is one completed point of a parameter sweep.
type SweepPoint struct {
	Param string
	Value int64
	Table *Table
}

// RunSweep runs the experiment once per value of the named parameter,
// returning the points in value order. Serial mode runs them one after
// another on cold-booted machines — the reference behavior. Parallel
// mode fans the points across up to workers goroutines (default: one
// per host core) with boots served by the fork pool; its tables must be
// bit-identical to serial mode's, point for point.
func RunSweep(e *Experiment, base Params, param string, values []int64, parallel bool, workers int) ([]SweepPoint, error) {
	pts := make([]SweepPoint, len(values))
	runPoint := func(i int) error {
		p := base.Clone()
		if err := p.Set(param, values[i]); err != nil {
			return err
		}
		tab, err := e.Run(p)
		if err != nil {
			return fmt.Errorf("%s -p %s=%d: %w", e.Name, param, values[i], err)
		}
		pts[i] = SweepPoint{Param: param, Value: values[i], Table: tab}
		return nil
	}

	if !parallel {
		for i := range values {
			if err := runPoint(i); err != nil {
				return nil, err
			}
		}
		return pts, nil
	}

	EnableForkPool()
	defer DisableForkPool()
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(values) {
		workers = len(values)
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(values) {
					return
				}
				if err := runPoint(i); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return pts, nil
}
