package workload

import (
	"math"
	"testing"
)

// The workload tests verify the *shape* properties the paper reports —
// who wins, by roughly what factor, where the crossovers fall — using
// small op counts so the suite stays fast. cmd/benchtool runs the full
// sweeps.

func TestModuleSizesPICOverheadIsModest(t *testing.T) {
	rows, err := ModuleSizes(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("only %d modules sized", len(rows))
	}
	for _, r := range rows {
		ratio := float64(r.PICBytes) / float64(r.VanillaBytes)
		// Fig. 5a: "the overhead is negligible for all modules" — allow a
		// generous envelope but catch blowups.
		if ratio < 0.5 || ratio > 1.6 {
			t.Errorf("%s: PIC/vanilla size ratio %.2f out of range", r.Module, ratio)
		}
	}
}

func TestDDRetpolineCostAndPICParity(t *testing.T) {
	// Fig. 5b: without retpoline PIC ≈ non-PIC; retpoline costs a bit,
	// slightly more for PIC (PLT stubs on external calls).
	const ops = 400
	get := func(cfg Config) float64 {
		r, err := DD(cfg, 64, ops)
		if err != nil {
			t.Fatal(err)
		}
		return r.MBps
	}
	vanilla := get(CfgVanilla)
	vanillaRet := get(CfgVanillaRet)
	pic := get(CfgPIC)
	picRet := get(CfgPICRet)

	if d := math.Abs(pic-vanilla) / vanilla; d > 0.03 {
		t.Errorf("PIC vs vanilla (no retpoline) differ by %.1f%%, want ≈identical", d*100)
	}
	if picRet >= pic {
		t.Error("retpoline should cost something on the PIC build")
	}
	if picRet > vanillaRet {
		// PIC pays PLT stubs on kernel calls that vanilla dodges.
		t.Logf("note: picRet %.1f > vanillaRet %.1f (acceptable)", picRet, vanillaRet)
	}
	// The retpoline hit stays small (paper: "slight performance hit").
	if (vanillaRet-picRet)/vanillaRet > 0.15 {
		t.Errorf("PIC+retpoline loses %.1f%% vs vanilla+retpoline; paper shows a slight hit",
			(vanillaRet-picRet)/vanillaRet*100)
	}
}

func TestSysbenchPICParity(t *testing.T) {
	// Fig. 5c: "performance of PIC-enabled and non-PIC systems is nearly
	// identical" (same retpoline setting).
	const ops = 300
	for _, mode := range []string{"seqrd", "rndrd"} {
		v, err := Sysbench(CfgVanillaRet, mode, ops)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Sysbench(CfgPICRet, mode, ops)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(p.MBps-v.MBps) / v.MBps; d > 0.06 {
			t.Errorf("%s: PIC vs vanilla differ by %.1f%%", mode, d*100)
		}
		if mode == "seqrd" {
			continue
		}
		s, err := Sysbench(CfgPICRet, "seqrd", ops)
		if err != nil {
			t.Fatal(err)
		}
		if p.MBps >= s.MBps {
			t.Error("random reads should not beat sequential reads")
		}
	}
}

func TestKernbenchNoSubstantialDifference(t *testing.T) {
	// Fig. 5d: "no substantial difference across different configurations".
	const jobs = 30
	base, err := Kernbench(CfgVanilla, 20, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{CfgVanillaRet, CfgPIC, CfgPICRet} {
		r, err := Kernbench(cfg, 20, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(r.KernelSec-base.KernelSec) / base.KernelSec; d > 0.10 {
			t.Errorf("%s kernel time differs from vanilla by %.1f%%", cfg, d*100)
		}
	}
}

func TestNVMeThroughputUnaffectedByRerandomization(t *testing.T) {
	// Fig. 6: "performance of NVMe storage remains largely unaffected";
	// CPU usage increases only slightly.
	const ops = 600
	rows, err := NVMeSweep(ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	linux := rows[0]
	for _, r := range rows[1:] {
		if d := math.Abs(r.MBps-linux.MBps) / linux.MBps; d > 0.08 {
			t.Errorf("%s: throughput differs from Linux by %.1f%%", r.Period, d*100)
		}
	}
	// 1 ms re-randomization costs more randomizer CPU than 5 ms.
	r5, r1 := rows[2], rows[3]
	if r1.RerandPct <= r5.RerandPct {
		t.Errorf("randomizer share at 1 ms (%.4f%%) not above 5 ms (%.4f%%)", r1.RerandPct, r5.RerandPct)
	}
}

func TestOLTPShape(t *testing.T) {
	// Fig. 7: TPS identical across Linux/5ms/1ms; rises with concurrency
	// to a saturation plateau; CPU usage increase below ~2 points.
	const txs = 120
	get := func(p RerandPeriod, vanilla bool, conc int) OLTPRow {
		r, err := OLTP(p, vanilla, conc, txs)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	lin25 := get(PeriodOff, true, 25)
	lin100 := get(PeriodOff, true, 100)
	if lin100.TPS <= lin25.TPS {
		t.Error("TPS should grow with concurrency before saturation")
	}
	r1 := get(Period1ms, false, 100)
	if d := math.Abs(r1.TPS-lin100.TPS) / lin100.TPS; d > 0.05 {
		t.Errorf("1 ms TPS differs from Linux by %.1f%% at c=100", d*100)
	}
	if r1.CPUPct-lin100.CPUPct > 2.0 {
		t.Errorf("CPU usage increase %.2f points, paper reports <2", r1.CPUPct-lin100.CPUPct)
	}
}

func TestApacheShape(t *testing.T) {
	// Fig. 8: throughput unaffected by re-randomization; smaller blocks
	// yield lower MB/s; 20 ms costs less randomizer CPU than 1 ms.
	const reqs = 120
	lin, err := Apache(PeriodOff, true, 8192, 100, reqs)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Apache(Period1ms, false, 8192, 100, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(r1.MBps-lin.MBps) / lin.MBps; d > 0.06 {
		t.Errorf("1 ms MB/s differs from Linux by %.1f%%", d*100)
	}
	small, err := Apache(Period1ms, false, 512, 100, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if small.MBps >= r1.MBps {
		t.Error("512-byte blocks should deliver less MB/s than 8 KB blocks")
	}
}

func TestIoctlOverheadOrdering(t *testing.T) {
	// Fig. 9: wrappers ≈ −4%, stack re-randomization ≈ −6% more. Check
	// ordering and that each mechanism costs a single-digit percentage.
	const ops = 3000
	rows, err := IoctlSweep(ops)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		for _, r := range rows {
			if r.Variant == name {
				return r.MopsPerSec
			}
		}
		t.Fatalf("variant %s missing", name)
		return 0
	}
	linux := get("linux")
	pic := get("pic")
	wrap := get("wrappers")
	stack := get("wrappers+stack")
	if !(linux >= pic && pic > wrap && wrap > stack) {
		t.Fatalf("ordering violated: linux=%.3f pic=%.3f wrap=%.3f stack=%.3f",
			linux, pic, wrap, stack)
	}
	wrapDrop := (linux - wrap) / linux * 100
	stackDrop := (wrap - stack) / wrap * 100
	if wrapDrop < 1 || wrapDrop > 15 {
		t.Errorf("wrapper drop %.1f%%, paper ≈4%%", wrapDrop)
	}
	if stackDrop < 1 || stackDrop > 15 {
		t.Errorf("stack drop %.1f%%, paper ≈6%%", stackDrop)
	}
	t.Logf("wrapper drop %.1f%% (paper ≈4%%), stack drop %.1f%% (paper ≈6%%)", wrapDrop, stackDrop)
}

func TestGadgetDistributionShape(t *testing.T) {
	// Fig. 10: the immovable part holds a negligible share of a PIC
	// module's gadgets; modules dominate the kernel.
	rows, err := GadgetDistribution(30)
	if err != nil {
		t.Fatal(err)
	}
	byPop := map[string]int{}
	for _, r := range rows {
		byPop[r.Population] = r.Dist.Total()
	}
	if byPop["modules"] <= byPop["kernel"] {
		t.Error("modules should expose more gadgets than the core kernel")
	}
	mov, imm := byPop["pic-movable"], byPop["pic-immovable"]
	if imm*5 > mov {
		t.Errorf("immovable part has %d gadgets vs movable %d; paper: negligible", imm, mov)
	}
}

func TestChainCensusMatchesTable2(t *testing.T) {
	const n = 120
	pic, err := ChainCensus(n, true)
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(pic.CleanChain+pic.SideEffectChain) / float64(n)
	if rate < 0.6 || rate > 0.95 {
		t.Errorf("PIC chain rate %.2f, paper ≈0.80", rate)
	}
	plain, err := ChainCensus(n, false)
	if err != nil {
		t.Fatal(err)
	}
	plainRate := float64(plain.CleanChain+plain.SideEffectChain) / float64(n)
	if math.Abs(plainRate-rate) > 0.15 {
		t.Errorf("PIC (%.2f) and non-PIC (%.2f) chain rates should be close", rate, plainRate)
	}
}

func TestScalabilityHeadroom(t *testing.T) {
	// §5.4: the randomizer thread uses ~0.4% of a core at 20 ms for the
	// benchmark module set, and hundreds of modules stay affordable.
	rows, err := Scalability([]int{5, 20, 60}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].CPUPct > 2 {
		t.Errorf("5 modules cost %.2f%% of a core, want well under 2%%", rows[0].CPUPct)
	}
	if !(rows[0].CPUPct < rows[1].CPUPct && rows[1].CPUPct < rows[2].CPUPct) {
		t.Error("randomizer cost should grow with module count")
	}
	// Linear extrapolation to 950 modules stays under one core.
	perModule := rows[2].CPUPct / 60
	if est := perModule * 950; est > 100 {
		t.Errorf("950-module estimate %.1f%% exceeds one core", est)
	}
}

func TestSecurityAnalysisReport(t *testing.T) {
	rep, err := SecurityAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	if rep.VanillaGuessProb != 1.0/(1<<19) || rep.Full64GuessProb != 1.0/(1<<44) {
		t.Fatalf("guess probabilities wrong: %g %g", rep.VanillaGuessProb, rep.Full64GuessProb)
	}
	if !rep.VanillaBruteForce.Found {
		t.Error("brute force should crack the vanilla window")
	}
	if rep.Full64BruteForce.Found {
		t.Error("brute force should fail against the 64-bit window")
	}
	if !rep.JITROPVanilla.Succeeded {
		t.Errorf("JIT-ROP should succeed without re-randomization: %s", rep.JITROPVanilla.Reason)
	}
	if rep.JITROPDefended.Succeeded {
		t.Error("JIT-ROP should fail against a 5 ms period")
	}
}
