package workload

import (
	"bytes"
	"strings"
	"testing"

	"adelie/internal/cpu"
	"adelie/internal/obs"
)

// renderAll runs every registered experiment at quick params and returns
// the concatenated rendered tables.
func renderAll(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	for _, e := range Experiments.All() {
		tab, err := e.Run(e.Params(true))
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		tab.Fprint(&sb)
	}
	return sb.String()
}

// TestTraceOnOffTableEquality is the subsystem's core contract: enabling
// tracing+profiling must not change any figure. Every experiment in the
// registry renders byte-identically with the observability session open
// and closed.
func TestTraceOnOffTableEquality(t *testing.T) {
	plain := renderAll(t)
	_, end := BeginObs(true, true)
	traced := renderAll(t)
	end()
	if plain != traced {
		t.Fatalf("tracing changed experiment output\n--- untraced ---\n%s\n--- traced ---\n%s", plain, traced)
	}
}

// TestServerTraceByteIdentical records the server experiment — 4 NIC
// queues, per-vCPU interrupt routing, the most concurrent machine in the
// registry — twice and requires the exported trace JSON to match byte
// for byte. Run under -race this also proves the emission path is
// data-race-free.
func TestServerTraceByteIdentical(t *testing.T) {
	capture := func() []byte {
		sess, end := BeginObs(true, false)
		defer end()
		if _, err := Server(4, 4, 60, 1000); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sess.Trace.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := capture()
	b := capture()
	if !bytes.Equal(a, b) {
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				lo := i - 80
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("trace bytes diverge at offset %d:\n run1: …%s\n run2: …%s",
					i, a[lo:min(i+80, len(a))], b[lo:min(i+80, len(b))])
			}
		}
		t.Fatalf("trace lengths differ: %d vs %d bytes", len(a), len(b))
	}
}

// traceEvents flattens a session's merged event streams, excluding the
// given kinds.
func traceEvents(s *ObsSession, exclude ...obs.Kind) []obs.Event {
	skip := map[obs.Kind]bool{}
	for _, k := range exclude {
		skip[k] = true
	}
	var out []obs.Event
	for _, tr := range s.Trace.Machines() {
		for _, ev := range tr.Events() {
			if !skip[ev.Kind] {
				out = append(out, ev)
			}
		}
	}
	return out
}

// TestChainedVsNoChainEventSequence proves the trace records simulated
// state, not host execution strategy: with trace linking disabled
// (the ADELIE_NOCHAIN cross-mode gate), every event except the per-round
// block summaries — which legitimately carry chained-block counts — is
// identical, clock stamps and arguments included.
func TestChainedVsNoChainEventSequence(t *testing.T) {
	capture := func() []obs.Event {
		sess, end := BeginObs(true, false)
		defer end()
		if _, err := Ioctl("wrappers", CfgRerand, 500); err != nil {
			t.Fatal(err)
		}
		return traceEvents(sess, obs.KindRound)
	}
	chained := capture()
	was := cpu.SetChaining(false)
	unchained := capture()
	cpu.SetChaining(was)

	if len(chained) != len(unchained) {
		t.Fatalf("event counts differ: %d chained vs %d unchained", len(chained), len(unchained))
	}
	for i := range chained {
		a, b := chained[i], unchained[i]
		if a.Clk != b.Clk || a.Dur != b.Dur || a.Track != b.Track || a.Kind != b.Kind || a.Name != b.Name {
			t.Fatalf("event %d differs: chained %+v vs unchained %+v", i, a, b)
		}
		if len(a.Args) != len(b.Args) {
			t.Fatalf("event %d arg counts differ", i)
		}
		for j := range a.Args {
			if a.Args[j] != b.Args[j] {
				t.Fatalf("event %d arg %d differs: %+v vs %+v", i, j, a.Args[j], b.Args[j])
			}
		}
	}
	if len(chained) == 0 {
		t.Fatal("no events captured; the comparison proved nothing")
	}
}

// TestProfilerSymbolStableAcrossRerand pins the symbolization contract:
// a function sample attributes to the same module;function name before
// and after re-randomization moves the module, never to the transient
// address.
func TestProfilerSymbolStableAcrossRerand(t *testing.T) {
	m, err := bootMachine(CfgRerand, 77, "dummy")
	if err != nil {
		t.Fatal(err)
	}
	mod := m.Module("dummy")
	if mod == nil {
		t.Fatal("dummy module not loaded")
	}
	// The exported dummy_ioctl VA is its wrapper in the immovable part,
	// which re-randomization never moves; samples land in the movable
	// part, where the real function bodies live. Find a sampleable
	// offset there whose symbol resolves, then check the same offset
	// resolves to the same symbol after the part's base moves.
	base0 := mod.Movable.Base
	var delta uint64
	var name0 string
	for ; delta < mod.Movable.Size; delta += 8 {
		if fn, ok := mod.FindFunc(base0 + delta); ok {
			name0 = fn
			break
		}
	}
	if name0 == "" {
		t.Fatal("no function symbol anywhere in the movable part")
	}
	rep, err := m.R.Step()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ModulesMoved == 0 {
		t.Fatal("rerand step moved nothing; the test forced no move")
	}
	base1 := mod.Movable.Base
	if base0 == base1 {
		t.Fatalf("rerand did not move the movable part (still at %#x)", base0)
	}
	name1, ok := mod.FindFunc(base1 + delta)
	if !ok {
		t.Fatalf("offset %#x lost its symbol after the move", delta)
	}
	if name0 != name1 {
		t.Fatalf("symbol attribution moved with the VA: %q at %#x vs %q at %#x",
			name0, base0+delta, name1, base1+delta)
	}
	if old, ok := mod.FindFunc(base0 + delta); ok {
		t.Fatalf("stale pre-move VA %#x still resolves (%q); samples would mis-attribute", base0+delta, old)
	}
}
