package workload

import (
	"fmt"

	"adelie/internal/cpu"
	"adelie/internal/engine"
	"adelie/internal/sim"
)

// NIC interrupt-coalescing experiment. A load-generator actor on the
// engine's virtual clock injects frame bursts into the server NIC's RX
// ring; the driver's NAPI ISR (registered via request_irq at init)
// drains the ring when the line is delivered at clock boundaries; each
// server op does application work and transmits a response frame back
// to the load generator — the RX→ISR→TX round trip the Fig. 7/8
// machinery rides on. Sweeping the coalescing thresholds (max pending
// frames, max delay) trades interrupt rate against RX latency and —
// because an idle ring drains only when the line fires — against drops
// once bursts overrun the ring. This is the ROADMAP's "NIC interrupt
// model" item: the knob Fig. 7/8-style experiments need to model
// moderation the way real adapters (and the assertion-driven design
// exploration of Yu et al.) do.

// CoalesceRow is one point of the coalescing sweep.
type CoalesceRow struct {
	MaxFrames   int     // frame-count threshold
	DelayUs     float64 // max time the oldest pending frame waits
	RxFrames    uint64  // frames the wire placed into the ring
	DrainedRx   uint64  // frames the ISR consumed (driver rx_count)
	Dropped     uint64  // ring-overrun drops
	IRQsRaised  uint64  // line assertions (before barrier merging)
	IRQs        uint64  // ISR dispatches
	AvgIRQLatUs float64 // oldest-pending-frame → ISR dispatch
	Responses   uint64  // round-trip frames the load generator got back
}

// seedCoalesce is the coalescing experiment's default machine seed (the
// registry descriptor's "seed" param).
const seedCoalesce int64 = 1003

// nicCoalesceRun executes one coalescing configuration and returns the
// row plus the raw RunResult and machine (for determinism audits).
func nicCoalesceRun(maxFrames int, delayUs float64, ops int) (CoalesceRow, sim.RunResult, *sim.Machine, error) {
	return nicCoalesceSeeded(seedCoalesce, maxFrames, delayUs, ops)
}

func nicCoalesceSeeded(seed int64, maxFrames int, delayUs float64, ops int) (CoalesceRow, sim.RunResult, *sim.Machine, error) {
	row := CoalesceRow{MaxFrames: maxFrames, DelayUs: delayUs}
	m, err := newMachine(CfgPICRet, seed, "e1000e")
	if err != nil {
		return row, sim.RunResult{}, nil, err
	}
	// A small ring makes overruns reachable: a coalescing policy that
	// defers the drain past 8 pending frames fills every slot and the
	// wire starts dropping.
	const ringLen = 8
	if _, err := m.InitNICRing("e1000e", ringLen); err != nil {
		return row, sim.RunResult{}, nil, err
	}
	m.NIC.SetCoalescing(uint64(maxFrames), uint64(delayUs*sim.CPUHz/1e6))
	xmitVA, err := callVA(m, "e1000e_xmit")
	if err != nil {
		return row, sim.RunResult{}, nil, err
	}
	ncpu := m.K.NumCPUs()
	bufs := make([]uint64, ncpu)
	for i := range bufs {
		if bufs[i], err = m.K.Kmalloc(2048); err != nil {
			return row, sim.RunResult{}, nil, err
		}
	}
	// Load generator: a clocked actor injecting one frame every 10 µs
	// of virtual time (≈2 per engine round at this op cost). Actors fire
	// at round barriers, so injection — and every IRQ decision it
	// triggers — is deterministic. The rate sits below the larger
	// frame-count thresholds on purpose: maxFrames=1 interrupts every
	// round, maxFrames=4 every couple of rounds, and maxFrames=16 can
	// only be rescued by the delay cap, by which time the 8-slot ring
	// has overrun — three visibly different service disciplines.
	frame := make([]byte, 256)
	for i := range frame {
		frame[i] = byte(i)
	}
	loadgen := engine.Actor{
		Name:     "nic-loadgen",
		PeriodUs: 10,
		Step: func() error {
			m.NIC.Deliver(frame)
			return nil
		},
	}
	// Server op: per-request application work plus one response frame
	// to the load generator, striped per lane across the TX ring. The
	// stripe is sized by the engine's *lane* count (min(Workers, CPUs)),
	// not the CPU count, so concurrently-running lanes always own
	// disjoint TX descriptors.
	const workers = 4
	lanes := workers
	if ncpu < lanes {
		lanes = ncpu
	}
	if lanes > ringLen {
		return row, sim.RunResult{}, nil, fmt.Errorf("workload: %d lanes cannot stripe a %d-slot TX ring", lanes, ringLen)
	}
	frames := make([]uint64, ncpu)
	slotsPerLane := uint64(ringLen / lanes)
	op := func(c *cpu.CPU) (uint64, error) {
		lane := c.ID
		burn(c, 40_000)
		slot := uint64(lane)*slotsPerLane + frames[lane]%slotsPerLane
		if _, err := c.Call(xmitVA, bufs[lane], 256, slot); err != nil {
			return 0, err
		}
		frames[lane]++
		return 0, nil
	}
	res, err := m.Run(sim.RunConfig{
		Ops: ops, Workers: workers, SyscallCycles: SyscallEntry,
		BytesPerOp: 256, Actors: []engine.Actor{loadgen},
	}, op)
	if err != nil {
		return row, sim.RunResult{}, nil, err
	}
	drained, err := m.Call("e1000e_rx_count")
	if err != nil {
		return row, sim.RunResult{}, nil, err
	}
	line := m.NIC.IRQLine()
	row.RxFrames = m.NIC.RxFrames
	row.DrainedRx = drained
	row.Dropped = m.NIC.Dropped
	row.IRQsRaised = m.NIC.IRQsAsserted
	row.IRQs = res.IRQs
	row.AvgIRQLatUs = m.Bus.IC().AvgLatencyCycles(line) / sim.CPUHz * 1e6
	row.Responses = m.Peer.RxFrames
	return row, res, m, nil
}

// NICCoalesce measures one coalescing configuration.
func NICCoalesce(maxFrames int, delayUs float64, ops int) (CoalesceRow, error) {
	row, _, _, err := nicCoalesceRun(maxFrames, delayUs, ops)
	return row, err
}

// CoalesceMaxFrames is the sweep of the acceptance experiment.
var CoalesceMaxFrames = []int{1, 4, 16}

// NICCoalesceSweep sweeps the frame-count threshold at a fixed 100 µs
// delay cap, producing the RX-latency/IRQ-rate/drop trade-off curves.
func NICCoalesceSweep(ops int) ([]CoalesceRow, error) {
	return nicCoalesceSweep(seedCoalesce, 100, ops)
}

func nicCoalesceSweep(seed int64, delayUs float64, ops int) ([]CoalesceRow, error) {
	var rows []CoalesceRow
	for _, mf := range CoalesceMaxFrames {
		r, _, _, err := nicCoalesceSeeded(seed, mf, delayUs, ops)
		if err != nil {
			return nil, fmt.Errorf("workload: coalesce maxframes=%d: %w", mf, err)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

var expCoalesce = &Experiment{
	Name:   "coalesce",
	Figure: "NIC sweep",
	Doc:    "NIC interrupt coalescing: RX latency / IRQ rate / drops vs max-frames",
	ParamSpecs: []ParamSpec{
		{Name: "ops", Doc: "server ops per coalescing configuration", Default: 960, Quick: 120},
		{Name: "seed", Doc: "machine boot seed", Default: seedCoalesce},
		{Name: "delay", Doc: "coalescing delay cap (µs)", Default: 100},
	},
	Run: func(p Params) (*Table, error) {
		rows, err := nicCoalesceSweep(p.Int64("seed"), float64(p.Int("delay")), p.Int("ops"))
		if err != nil {
			return nil, err
		}
		t := &Table{
			Title: "NIC interrupt coalescing — RX latency / IRQ rate / drops vs max-frames",
			Columns: []Column{
				Col("maxframes", "%-10d", "%-10s"),
				Col("delay_us", "%9.0f", "%9s"),
				Col("rx", "%8d", "%8s"),
				Col("drained", "%8d", "%8s"),
				Col("dropped", "%8d", "%8s"),
				Col("irqs", "%8d", "%8s"),
				Col("raised", "%12d", "%12s"),
				Col("rxlat_us", "%10.2f", "%10s"),
			},
		}
		for _, r := range rows {
			t.AddRow(r.MaxFrames, r.DelayUs, r.RxFrames, r.DrainedRx, r.Dropped,
				r.IRQs, r.IRQsRaised, r.AvgIRQLatUs)
		}
		return t, nil
	},
	Headline: func(t *Table) map[string]float64 {
		out := map[string]float64{}
		for _, r := range t.Rows {
			mf := r[0].(int)
			out[fmt.Sprintf("mf%d-irqs", mf)] = float64(r[5].(uint64))
			out[fmt.Sprintf("mf%d-rxlat-us", mf)] = r[7].(float64)
		}
		return out
	},
}
