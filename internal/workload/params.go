package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ParamSpec declares one tunable of an experiment: its name, what it
// means, the default that reproduces the paper's figure bit-identically,
// and (for size knobs) the reduced value a -quick smoke pass substitutes.
type ParamSpec struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
	// Default is the full-scale value. Defaults are the contract: running
	// an experiment with its defaults must reproduce the recorded figure
	// exactly, so lifting a hardcoded constant (an op count, a seed) into
	// a ParamSpec must carry the constant here unchanged.
	Default int64 `json:"default"`
	// Quick, when nonzero, replaces Default under -quick. Seeds and other
	// value-like params leave it zero; only work-size knobs shrink.
	Quick int64 `json:"quick,omitempty"`
}

// Params is a resolved set of parameter values for one experiment run.
// Construct it with Experiment.Params (defaults, optionally quick-scaled)
// and adjust with Set; Run reads values through Int/Int64.
type Params struct {
	exp  *Experiment
	vals map[string]int64
}

// Set overrides one parameter by name, as benchtool's -p key=val does.
// Unknown names are an error that lists what the experiment accepts.
func (p Params) Set(name string, v int64) error {
	if _, ok := p.vals[name]; !ok {
		return fmt.Errorf("experiment %q has no parameter %q (has: %s)",
			p.exp.Name, name, strings.Join(p.exp.paramNames(), ", "))
	}
	p.vals[name] = v
	return nil
}

// SetString parses a -p key=val pair.
func (p Params) SetString(name, val string) error {
	v, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		if strings.Contains(val, "..") {
			return fmt.Errorf("parameter %q: %q is a range — ranges sweep one table per point and are expanded by the runner, not set as a single value", name, val)
		}
		return fmt.Errorf("parameter %q: %q is not an integer", name, val)
	}
	return p.Set(name, v)
}

// Clone returns an independent copy: Set on the clone leaves the
// original untouched. Sweep points each get their own.
func (p Params) Clone() Params {
	vals := make(map[string]int64, len(p.vals))
	for k, v := range p.vals {
		vals[k] = v
	}
	return Params{exp: p.exp, vals: vals}
}

// maxRangePoints caps how many values one -p range may expand to; past
// this a sweep is almost certainly a typo ("1..1600" for "1600").
const maxRangePoints = 4096

// ParseRange parses benchtool's sweep syntax "lo..hi[:step]" into its
// individual values, inclusive on both ends (a short final step lands on
// the last value ≤ hi). The bool reports whether val uses range syntax
// at all; plain integers return (nil, false, nil) so callers fall back
// to SetString.
func ParseRange(val string) ([]int64, bool, error) {
	i := strings.Index(val, "..")
	if i < 1 { // no ".." (or nothing before it: "..8" is not a range)
		return nil, false, nil
	}
	rest := val[i+2:]
	step := int64(1)
	if j := strings.IndexByte(rest, ':'); j >= 0 {
		s, err := strconv.ParseInt(rest[j+1:], 10, 64)
		if err != nil || s <= 0 {
			return nil, true, fmt.Errorf("range %q: step %q must be a positive integer", val, rest[j+1:])
		}
		step, rest = s, rest[:j]
	}
	lo, err := strconv.ParseInt(val[:i], 10, 64)
	if err != nil {
		return nil, true, fmt.Errorf("range %q: bad lower bound %q", val, val[:i])
	}
	hi, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		return nil, true, fmt.Errorf("range %q: bad upper bound %q", val, rest)
	}
	if hi < lo {
		return nil, true, fmt.Errorf("range %q: upper bound below lower", val)
	}
	if (hi-lo)/step+1 > maxRangePoints {
		return nil, true, fmt.Errorf("range %q expands to more than %d points", val, maxRangePoints)
	}
	var out []int64
	for v := lo; v <= hi; v += step {
		out = append(out, v)
	}
	return out, true, nil
}

// Int returns a parameter as int; asking for an undeclared parameter is a
// programming error in the experiment and panics.
func (p Params) Int(name string) int { return int(p.Int64(name)) }

// Int64 returns a parameter's value.
func (p Params) Int64(name string) int64 {
	v, ok := p.vals[name]
	if !ok {
		panic(fmt.Sprintf("workload: experiment %q read undeclared parameter %q", p.exp.Name, name))
	}
	return v
}

// Map returns the resolved values keyed by name (for JSON records).
func (p Params) Map() map[string]int64 {
	out := make(map[string]int64, len(p.vals))
	for k, v := range p.vals {
		out[k] = v
	}
	return out
}

// String renders the values in declaration order, for list output and
// error messages.
func (p Params) String() string {
	var b strings.Builder
	for i, s := range p.exp.ParamSpecs {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", s.Name, p.vals[s.Name])
	}
	return b.String()
}

func (e *Experiment) paramNames() []string {
	names := make([]string, len(e.ParamSpecs))
	for i, s := range e.ParamSpecs {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}
