package workload

import (
	"fmt"
	"strings"

	"adelie/internal/attack"
)

// Experiment is the descriptor every figure, table, sweep and scenario of
// the evaluation registers: what it reproduces, which knobs it takes, and
// how to run it. One API for all of them is what keeps the Nth scenario a
// one-file change instead of a benchtool-switch + bench_test copy-paste.
type Experiment struct {
	// Name is the experiment id ("fig5b", "table2", "coalesce") — also
	// the historical benchtool argument.
	Name string `json:"name"`
	// Figure names the paper artifact this reproduces ("Fig. 5b",
	// "Table 2", "§5.4").
	Figure string `json:"figure"`
	// Doc is the one-line description shown by benchtool list.
	Doc string `json:"doc"`
	// ParamSpecs declare the tunables. Every experiment that boots a
	// machine declares a "seed" param; the op-count knob is named "ops".
	ParamSpecs []ParamSpec `json:"params,omitempty"`
	// Run executes the experiment and shapes its result as a Table.
	// With default params the table's rendered content must be
	// bit-identical run to run (the determinism tests enforce this).
	Run func(Params) (*Table, error) `json:"-"`
	// Headline extracts the figure's headline metrics from a result
	// table (bench_test reports them via b.ReportMetric). Optional.
	Headline func(*Table) map[string]float64 `json:"-"`
}

// Params resolves the experiment's parameter defaults; quick substitutes
// the reduced smoke-pass values where declared.
func (e *Experiment) Params(quick bool) Params {
	vals := make(map[string]int64, len(e.ParamSpecs))
	for _, s := range e.ParamSpecs {
		v := s.Default
		if quick && s.Quick != 0 {
			v = s.Quick
		}
		vals[s.Name] = v
	}
	return Params{exp: e, vals: vals}
}

// Registry holds experiments in registration order (the order `benchtool
// run all` executes and `list` prints — figure order, matching the paper).
type Registry struct {
	order  []*Experiment
	byName map[string]*Experiment
}

// NewRegistry builds a registry from descriptors, validating each.
func NewRegistry(exps ...*Experiment) *Registry {
	r := &Registry{byName: map[string]*Experiment{}}
	for _, e := range exps {
		r.Register(e)
	}
	return r
}

// Register adds one experiment. Registration is infallible or loud:
// a malformed descriptor (duplicate or empty name, missing Run, invalid
// quick scaling) panics at init time rather than surfacing mid-sweep.
func (r *Registry) Register(e *Experiment) {
	if e.Name == "" || e.Run == nil {
		panic("workload: experiment needs a name and a Run function")
	}
	if _, dup := r.byName[e.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate experiment %q", e.Name))
	}
	seen := map[string]bool{}
	for _, s := range e.ParamSpecs {
		if s.Name == "" || seen[s.Name] {
			panic(fmt.Sprintf("workload: experiment %q: bad or duplicate param %q", e.Name, s.Name))
		}
		seen[s.Name] = true
		if s.Quick < 0 || (s.Quick != 0 && s.Quick > s.Default) {
			panic(fmt.Sprintf("workload: experiment %q: param %q quick value %d not in (0, %d]",
				e.Name, s.Name, s.Quick, s.Default))
		}
		if strings.HasSuffix(s.Name, "seed") && s.Quick != 0 {
			panic(fmt.Sprintf("workload: experiment %q: seed param %q must not quick-scale", e.Name, s.Name))
		}
	}
	r.byName[e.Name] = e
	r.order = append(r.order, e)
}

// Lookup resolves a name.
func (r *Registry) Lookup(name string) (*Experiment, bool) {
	e, ok := r.byName[name]
	return e, ok
}

// All returns the experiments in registration order.
func (r *Registry) All() []*Experiment { return append([]*Experiment(nil), r.order...) }

// Names returns the experiment names in registration order.
func (r *Registry) Names() []string {
	names := make([]string, len(r.order))
	for i, e := range r.order {
		names[i] = e.Name
	}
	return names
}

// Suggest returns the registered name closest to the given (unknown) one,
// or "" when nothing is plausibly close — the "did you mean" half of
// benchtool's unknown-experiment error. Case slips are forgiven, and a
// name the query is a strict prefix of beats an edit-distance tie
// ("fig5" suggests "fig5a", not "fig1").
func (r *Registry) Suggest(name string) string {
	q := strings.ToLower(name)
	for _, e := range r.order {
		if q != "" && strings.HasPrefix(strings.ToLower(e.Name), q) {
			return e.Name
		}
	}
	best, bestDist := "", len(q)/2+2
	for _, e := range r.order {
		if d := editDistance(q, strings.ToLower(e.Name)); d < bestDist {
			best, bestDist = e.Name, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Experiments is the package-level registry: every figure, table and
// scenario of the evaluation, in paper order. cmd/benchtool drives it
// generically; bench_test.go and the determinism tests iterate it.
var Experiments = NewRegistry(
	expFig1,
	expFig5a, expFig5b, expFig5c, expFig5d,
	expFig6, expFig7, expFig8, expFig9, expFig10,
	expTable2,
	expScalability,
	expSecurity,
	expAblation,
	expCoalesce,
	expServer,
)

// ---------------------------------------------------------------------------
// Fig. 1 — background data series (no machine, no params).

var expFig1 = &Experiment{
	Name:   "fig1",
	Figure: "Fig. 1",
	Doc:    "driver CVEs per year (synthesized series)",
	Run: func(Params) (*Table, error) {
		t := &Table{
			Title: "Fig. 1 — driver CVEs per year (synthesized series, see EXPERIMENTS.md)",
			Columns: []Column{
				Col("year", "%-6d", "%-6s"),
				Col("linux", "%8d", "%8s"),
				Col("windows", "%8d", "%8s"),
			},
		}
		for _, p := range attack.CVEData {
			t.AddRow(p.Year, p.Linux, p.Windows)
		}
		return t, nil
	},
	Headline: func(t *Table) map[string]float64 {
		last := t.Rows[len(t.Rows)-1]
		return map[string]float64{
			"linux-cves":   float64(last[1].(int)),
			"windows-cves": float64(last[2].(int)),
		}
	},
}
