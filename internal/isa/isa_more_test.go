package isa

import (
	"strings"
	"testing"
)

func TestEncodedLenMatchesEncoding(t *testing.T) {
	for _, op := range allOps {
		enc := Inst{Op: op}.Encode()
		if got := EncodedLen(op); got != len(enc) {
			t.Errorf("%s: EncodedLen %d, encoding %d bytes", op.Name(), got, len(enc))
		}
	}
	if EncodedLen(Op(0x00)) != 0 {
		t.Error("invalid opcode should report length 0")
	}
}

func TestOpValid(t *testing.T) {
	for _, op := range allOps {
		if !op.Valid() {
			t.Errorf("%s reported invalid", op.Name())
		}
	}
	if Op(0x00).Valid() || Op(0xFF).Valid() {
		t.Error("undefined opcodes reported valid")
	}
}

func TestOpNameFallback(t *testing.T) {
	if got := Op(0x02).Name(); !strings.Contains(got, "bad") {
		t.Errorf("invalid opcode name = %q", got)
	}
}

func TestEncodePanicsOnInvalidRegister(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("encoding push of register 99 should panic")
		}
	}()
	_ = Inst{Op: OpPUSH, R1: Reg(99)}.Encode()
}

func TestEncodePanicsOnInvalidOpcode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("encoding invalid opcode should panic")
		}
	}()
	_ = Inst{Op: Op(0x00)}.Encode()
}

func TestDisasmGotIndirectForms(t *testing.T) {
	in := Inst{Op: OpCALLM, Disp: 0x10, Len: 5}
	if got := in.Disasm(0x100); !strings.Contains(got, "*") || !strings.Contains(got, "(%rip)") {
		t.Errorf("callm disasm = %q", got)
	}
	in = Inst{Op: OpSTRIP, R1: RBX, Disp: -8, Len: 6}
	if got := in.Disasm(0x100); !strings.Contains(got, "%rbx") {
		t.Errorf("strip disasm = %q", got)
	}
}

func TestDisasmBytesLimit(t *testing.T) {
	code := []byte{0x90, 0x90, 0x90, 0x90}
	if lines := DisasmBytes(code, 0, 2); len(lines) != 2 {
		t.Fatalf("limit ignored: %d lines", len(lines))
	}
}

// TestEncodingDensity documents the property the gadget analysis relies
// on: a large fraction of random byte windows decode as valid
// instructions, as on x86-64.
func TestEncodingDensity(t *testing.T) {
	valid := 0
	const total = 256
	buf := make([]byte, MaxInstLen)
	for b := 0; b < total; b++ {
		buf[0] = byte(b)
		if _, err := Decode(buf); err == nil {
			valid++
		}
	}
	// 44 defined opcodes out of 256 first bytes ≈ 17% density at the
	// first byte alone; misaligned decode multiplies opportunities.
	if valid < 30 {
		t.Fatalf("only %d/256 first bytes decode; ISA too sparse for ROP realism", valid)
	}
}
