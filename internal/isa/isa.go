// Package isa defines AK64, the instruction-set architecture used by the
// Adelie reproduction in place of x86-64.
//
// AK64 deliberately mirrors the x86-64 properties the paper depends on:
//
//   - variable-length instructions with a 1-byte RET (0xC3), so decoding at
//     arbitrary byte offsets yields unintended instruction sequences — the
//     raw material of ROP gadgets;
//   - a RIP-relative addressing mode with a signed 32-bit displacement, so
//     position-independent code can only reach data within ±2 GB of the
//     instruction pointer (this is why GOTs must sit near the code that
//     uses them, and why separate GOT pairs exist for the movable and
//     immovable module parts);
//   - direct call/jmp with a signed 32-bit relative offset only — 64-bit
//     targets require an indirect call through a register or memory,
//     exactly the constraint that makes retpolines and GOT-indirect calls
//     necessary;
//   - 64-bit immediates available only in a dedicated long MOV form, the
//     analogue of x86-64's movabs that absolute-address (non-PIC) code
//     relies on.
//
// The package provides the instruction model, binary encoder/decoder and a
// disassembler. Execution lives in internal/cpu.
package isa

import (
	"encoding/binary"
	"fmt"
)

// Reg names an AK64 general-purpose register. The first sixteen follow the
// x86-64 naming so that code transplanted from the paper's figures (e.g.
// "xor %r11, (%rsp)") reads the same.
type Reg uint8

// General-purpose registers. RSP is the stack pointer; RBP is the frame
// pointer recycled by the static-function prologue variant (paper Fig. 3b).
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15

	// NumRegs is the number of general-purpose registers.
	NumRegs = 16
)

var regNames = [NumRegs]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

// String returns the conventional register mnemonic.
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// Valid reports whether r names an existing register.
func (r Reg) Valid() bool { return r < NumRegs }

// ArgRegs is the order in which integer arguments are passed, mirroring the
// System V AMD64 convention the paper's wrappers assume (up to six register
// arguments; see §3.4 "Stacks").
var ArgRegs = [6]Reg{RDI, RSI, RDX, RCX, R8, R9}

// Op is an AK64 opcode byte.
type Op byte

// Opcode space. Values are chosen so that common gadget terminators (RET)
// and ALU bytes resemble their x86-64 counterparts where a counterpart
// exists, which keeps disassembly listings recognizable next to the paper.
const (
	// One-byte instructions.
	OpNOP Op = 0x90 // no operation
	OpRET Op = 0xC3 // pop rip
	OpHLT Op = 0xF4 // stop the virtual CPU (return to host)

	// Stack (2 bytes: op, reg).
	OpPUSH Op = 0x50 // push r1
	OpPOP  Op = 0x58 // pop r1

	// Moves.
	OpMOVABS Op = 0xB8 // r1 = imm64                      (10 bytes)
	OpMOVI   Op = 0xB9 // r1 = sign-extended imm32        (6 bytes)
	OpMOV    Op = 0x89 // r1 = r2                         (2 bytes)
	OpLOAD   Op = 0x8B // r1 = mem64[r2 + disp32]         (6 bytes)
	OpSTORE  Op = 0x88 // mem64[r2 + disp32] = r1         (6 bytes)
	OpLEARIP Op = 0x8D // r1 = rip + disp32               (6 bytes)
	OpLDRIP  Op = 0x8E // r1 = mem64[rip + disp32]        (6 bytes)
	OpSTRIP  Op = 0x8F // mem64[rip + disp32] = r1        (6 bytes)

	// ALU, register-register (2 bytes: op, regpair).
	OpADD  Op = 0x01 // r1 += r2
	OpSUB  Op = 0x29 // r1 -= r2
	OpXOR  Op = 0x31 // r1 ^= r2
	OpAND  Op = 0x21 // r1 &= r2
	OpOR   Op = 0x09 // r1 |= r2
	OpCMP  Op = 0x39 // flags = compare(r1, r2)
	OpTEST Op = 0x85 // flags = compare(r1&r2, 0)
	OpIMUL Op = 0x69 // r1 *= r2
	OpUDIV Op = 0x6B // r1 /= r2 (unsigned; divide by zero faults)

	// ALU, immediate (6 bytes: op, reg, imm32 sign-extended).
	OpADDI Op = 0x81 // r1 += imm32
	OpSUBI Op = 0x82 // r1 -= imm32
	OpCMPI Op = 0x83 // flags = compare(r1, imm32)
	OpANDI Op = 0x84 // r1 &= imm32
	OpXORI Op = 0x86 // r1 ^= imm32

	// Shifts (3 bytes: op, reg, imm8).
	OpSHLI Op = 0x87 // r1 <<= imm8
	OpSHRI Op = 0x8A // r1 >>= imm8 (logical)

	// XOR into memory: the return-address encryption primitive
	// ("xor %r11, (%rsp)" in paper Fig. 3b). 6 bytes: op, regpair, disp32.
	OpXORM Op = 0x35 // mem64[r2 + disp32] ^= r1

	// Control transfer.
	OpCALL  Op = 0xE8 // call rip+rel32                  (5 bytes)
	OpJMP   Op = 0xE9 // jmp rip+rel32                   (5 bytes)
	OpCALLR Op = 0xFA // call r1                         (2 bytes)
	OpCALLM Op = 0xFB // call mem64[rip + disp32]        (5 bytes) — GOT-indirect call
	OpJMPR  Op = 0xFC // jmp r1                          (2 bytes)
	OpJMPM  Op = 0xFD // jmp mem64[rip + disp32]         (5 bytes) — GOT-indirect jump

	// Conditional jumps, rel32 (5 bytes).
	OpJE  Op = 0x74
	OpJNE Op = 0x75
	OpJL  Op = 0x7C
	OpJGE Op = 0x7D
	OpJLE Op = 0x7E
	OpJG  Op = 0x7F
	OpJB  Op = 0x72 // unsigned below
	OpJAE Op = 0x73 // unsigned above-or-equal
)

// Inst is one decoded AK64 instruction.
type Inst struct {
	Op   Op
	R1   Reg   // first register operand (destination for two-operand forms)
	R2   Reg   // second register operand (source / base register)
	Imm  int64 // immediate for OpMOVABS/OpMOVI/ALU-immediate/shift forms
	Disp int32 // displacement for memory forms; relative offset for branches
	Len  int   // encoded length in bytes
}

// Lengths of each encoding class, in bytes.
const (
	lenOp1       = 1  // op
	lenOpReg     = 2  // op reg
	lenOpRegPair = 2  // op regpair
	lenOpRel32   = 5  // op rel32
	lenOpRegImm8 = 3  // op reg imm8
	lenOpRegD32  = 6  // op reg disp32/imm32
	lenOpPairD32 = 6  // op regpair disp32
	lenOpRegI64  = 10 // op reg imm64
)

// MaxInstLen is the longest possible AK64 encoding.
const MaxInstLen = lenOpRegI64

// class describes how an opcode's operands are encoded.
type class uint8

const (
	clInvalid  class = iota
	clNone           // op
	clReg            // op reg
	clRegPair        // op (r2<<4 | r1)
	clRegImm64       // op reg imm64le
	clRegImm32       // op reg imm32le (sign-extended into Imm)
	clRegImm8        // op reg imm8 (zero-extended into Imm)
	clPairDisp       // op (r2<<4 | r1) disp32le
	clRegDisp        // op reg disp32le
	clRel32          // op rel32le (into Disp)
	clDisp32         // op disp32le (into Disp; RIP-relative memory operand)
)

var opClasses = map[Op]class{
	OpNOP: clNone, OpRET: clNone, OpHLT: clNone,
	OpPUSH: clReg, OpPOP: clReg,
	OpMOVABS: clRegImm64,
	OpMOVI:   clRegImm32,
	OpMOV:    clRegPair,
	OpLOAD:   clPairDisp, OpSTORE: clPairDisp, OpXORM: clPairDisp,
	OpLEARIP: clRegDisp, OpLDRIP: clRegDisp, OpSTRIP: clRegDisp,
	OpADD: clRegPair, OpSUB: clRegPair, OpXOR: clRegPair, OpAND: clRegPair,
	OpOR: clRegPair, OpCMP: clRegPair, OpTEST: clRegPair, OpIMUL: clRegPair,
	OpUDIV: clRegPair,
	OpADDI: clRegImm32, OpSUBI: clRegImm32, OpCMPI: clRegImm32,
	OpANDI: clRegImm32, OpXORI: clRegImm32,
	OpSHLI: clRegImm8, OpSHRI: clRegImm8,
	OpCALL: clRel32, OpJMP: clRel32,
	OpCALLR: clReg, OpJMPR: clReg,
	OpCALLM: clDisp32, OpJMPM: clDisp32,
	OpJE: clRel32, OpJNE: clRel32, OpJL: clRel32, OpJGE: clRel32,
	OpJLE: clRel32, OpJG: clRel32, OpJB: clRel32, OpJAE: clRel32,
}

var opNames = map[Op]string{
	OpNOP: "nop", OpRET: "ret", OpHLT: "hlt",
	OpPUSH: "push", OpPOP: "pop",
	OpMOVABS: "movabs", OpMOVI: "mov", OpMOV: "mov",
	OpLOAD: "mov", OpSTORE: "mov",
	OpLEARIP: "lea", OpLDRIP: "mov", OpSTRIP: "mov",
	OpADD: "add", OpSUB: "sub", OpXOR: "xor", OpAND: "and", OpOR: "or",
	OpCMP: "cmp", OpTEST: "test", OpIMUL: "imul", OpUDIV: "udiv",
	OpADDI: "add", OpSUBI: "sub", OpCMPI: "cmp", OpANDI: "and", OpXORI: "xor",
	OpSHLI: "shl", OpSHRI: "shr", OpXORM: "xor",
	OpCALL: "call", OpJMP: "jmp", OpCALLR: "call", OpCALLM: "call",
	OpJMPR: "jmp", OpJMPM: "jmp",
	OpJE: "je", OpJNE: "jne", OpJL: "jl", OpJGE: "jge",
	OpJLE: "jle", OpJG: "jg", OpJB: "jb", OpJAE: "jae",
}

// Name returns the opcode mnemonic, or a hex byte if the opcode is invalid.
func (o Op) Name() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("(bad 0x%02x)", byte(o))
}

// Valid reports whether o is a defined AK64 opcode.
func (o Op) Valid() bool { _, ok := opClasses[o]; return ok }

// IsBranch reports whether o transfers control (conditionally or not).
func (o Op) IsBranch() bool {
	switch o {
	case OpCALL, OpJMP, OpCALLR, OpCALLM, OpJMPR, OpJMPM, OpRET,
		OpJE, OpJNE, OpJL, OpJGE, OpJLE, OpJG, OpJB, OpJAE:
		return true
	}
	return false
}

// IsIndirectBranch reports whether o is an indirect call or jump — the
// instruction class the Spectre-V2 retpoline mitigation replaces.
func (o Op) IsIndirectBranch() bool {
	switch o {
	case OpCALLR, OpCALLM, OpJMPR, OpJMPM:
		return true
	}
	return false
}

// ErrTruncated is returned by Decode when the byte slice ends mid-instruction.
var ErrTruncated = fmt.Errorf("isa: truncated instruction")

// InvalidOpcodeError reports an undefined opcode byte.
type InvalidOpcodeError byte

func (e InvalidOpcodeError) Error() string {
	return fmt.Sprintf("isa: invalid opcode 0x%02x", byte(e))
}

// InvalidRegError reports a register operand outside the register file.
type InvalidRegError uint8

func (e InvalidRegError) Error() string {
	return fmt.Sprintf("isa: invalid register %d", uint8(e))
}

// Decode decodes a single instruction from the start of b.
//
// Decoding never looks beyond the bytes the instruction's own class
// requires, so — like on x86-64 — decoding a byte stream at a misaligned
// offset frequently yields a different but valid instruction sequence.
// The gadget scanner in internal/attack depends on this property.
func Decode(b []byte) (Inst, error) {
	if len(b) == 0 {
		return Inst{}, ErrTruncated
	}
	op := Op(b[0])
	cl, ok := opClasses[op]
	if !ok {
		return Inst{}, InvalidOpcodeError(b[0])
	}
	in := Inst{Op: op}
	need := encodedLen(cl)
	if len(b) < need {
		return Inst{}, ErrTruncated
	}
	in.Len = need
	switch cl {
	case clNone:
	case clReg:
		in.R1 = Reg(b[1])
		if !in.R1.Valid() {
			return Inst{}, InvalidRegError(b[1])
		}
	case clRegPair:
		in.R1 = Reg(b[1] & 0x0F)
		in.R2 = Reg(b[1] >> 4)
	case clRegImm64:
		in.R1 = Reg(b[1])
		if !in.R1.Valid() {
			return Inst{}, InvalidRegError(b[1])
		}
		in.Imm = int64(binary.LittleEndian.Uint64(b[2:10]))
	case clRegImm32:
		in.R1 = Reg(b[1])
		if !in.R1.Valid() {
			return Inst{}, InvalidRegError(b[1])
		}
		in.Imm = int64(int32(binary.LittleEndian.Uint32(b[2:6])))
	case clRegImm8:
		in.R1 = Reg(b[1])
		if !in.R1.Valid() {
			return Inst{}, InvalidRegError(b[1])
		}
		in.Imm = int64(b[2])
	case clPairDisp:
		in.R1 = Reg(b[1] & 0x0F)
		in.R2 = Reg(b[1] >> 4)
		in.Disp = int32(binary.LittleEndian.Uint32(b[2:6]))
	case clRegDisp:
		in.R1 = Reg(b[1])
		if !in.R1.Valid() {
			return Inst{}, InvalidRegError(b[1])
		}
		in.Disp = int32(binary.LittleEndian.Uint32(b[2:6]))
	case clRel32, clDisp32:
		in.Disp = int32(binary.LittleEndian.Uint32(b[1:5]))
	}
	return in, nil
}

func encodedLen(cl class) int {
	switch cl {
	case clNone:
		return lenOp1
	case clReg, clRegPair:
		return lenOpReg
	case clRegImm64:
		return lenOpRegI64
	case clRegImm32, clRegDisp:
		return lenOpRegD32
	case clRegImm8:
		return lenOpRegImm8
	case clPairDisp:
		return lenOpPairD32
	case clRel32, clDisp32:
		return lenOpRel32
	}
	return 0
}

// EncodedLen returns the encoded size in bytes of an instruction with
// opcode o, or 0 if o is invalid.
func EncodedLen(o Op) int { return encodedLen(opClasses[o]) }

// Append encodes in and appends the bytes to dst, returning the extended
// slice. It panics on an invalid opcode or register, which always indicates
// a bug in the code generator rather than bad input data.
func (in Inst) Append(dst []byte) []byte {
	cl, ok := opClasses[in.Op]
	if !ok {
		panic(InvalidOpcodeError(byte(in.Op)))
	}
	switch cl {
	case clNone:
		return append(dst, byte(in.Op))
	case clReg:
		mustReg(in.R1)
		return append(dst, byte(in.Op), byte(in.R1))
	case clRegPair:
		mustReg(in.R1)
		mustReg(in.R2)
		return append(dst, byte(in.Op), byte(in.R2)<<4|byte(in.R1))
	case clRegImm64:
		mustReg(in.R1)
		dst = append(dst, byte(in.Op), byte(in.R1))
		return binary.LittleEndian.AppendUint64(dst, uint64(in.Imm))
	case clRegImm32:
		mustReg(in.R1)
		dst = append(dst, byte(in.Op), byte(in.R1))
		return binary.LittleEndian.AppendUint32(dst, uint32(int32(in.Imm)))
	case clRegImm8:
		mustReg(in.R1)
		return append(dst, byte(in.Op), byte(in.R1), byte(in.Imm))
	case clPairDisp:
		mustReg(in.R1)
		mustReg(in.R2)
		dst = append(dst, byte(in.Op), byte(in.R2)<<4|byte(in.R1))
		return binary.LittleEndian.AppendUint32(dst, uint32(in.Disp))
	case clRegDisp:
		mustReg(in.R1)
		dst = append(dst, byte(in.Op), byte(in.R1))
		return binary.LittleEndian.AppendUint32(dst, uint32(in.Disp))
	case clRel32, clDisp32:
		dst = append(dst, byte(in.Op))
		return binary.LittleEndian.AppendUint32(dst, uint32(in.Disp))
	}
	panic("isa: unreachable encoding class")
}

func mustReg(r Reg) {
	if !r.Valid() {
		panic(InvalidRegError(uint8(r)))
	}
}

// Encode returns the binary encoding of in.
func (in Inst) Encode() []byte { return in.Append(nil) }

// String disassembles the instruction using AT&T-flavoured syntax at an
// unknown address (RIP-relative operands are shown symbolically).
func (in Inst) String() string { return in.Disasm(0) }

// Disasm disassembles the instruction as it would appear at virtual address
// pc. Branch targets and RIP-relative operands are resolved against pc.
func (in Inst) Disasm(pc uint64) string {
	cl := opClasses[in.Op]
	name := in.Op.Name()
	next := pc + uint64(in.Len)
	switch cl {
	case clNone:
		return name
	case clReg:
		switch in.Op {
		case OpCALLR, OpJMPR:
			return fmt.Sprintf("%s *%%%s", name, in.R1)
		}
		return fmt.Sprintf("%s %%%s", name, in.R1)
	case clRegPair:
		switch in.Op {
		case OpMOV, OpADD, OpSUB, OpXOR, OpAND, OpOR, OpCMP, OpTEST, OpIMUL, OpUDIV:
			return fmt.Sprintf("%s %%%s, %%%s", name, in.R2, in.R1)
		}
		return fmt.Sprintf("%s %%%s, %%%s", name, in.R2, in.R1)
	case clRegImm64, clRegImm32:
		return fmt.Sprintf("%s $%#x, %%%s", name, uint64(in.Imm), in.R1)
	case clRegImm8:
		return fmt.Sprintf("%s $%d, %%%s", name, in.Imm, in.R1)
	case clPairDisp:
		switch in.Op {
		case OpLOAD:
			return fmt.Sprintf("%s %d(%%%s), %%%s", name, in.Disp, in.R2, in.R1)
		case OpSTORE, OpXORM:
			return fmt.Sprintf("%s %%%s, %d(%%%s)", name, in.R1, in.Disp, in.R2)
		}
	case clRegDisp:
		target := next + uint64(int64(in.Disp))
		switch in.Op {
		case OpSTRIP:
			return fmt.Sprintf("%s %%%s, %#x(%%rip)", name, in.R1, target)
		}
		return fmt.Sprintf("%s %#x(%%rip), %%%s", name, target, in.R1)
	case clRel32:
		return fmt.Sprintf("%s %#x", name, next+uint64(int64(in.Disp)))
	case clDisp32:
		return fmt.Sprintf("%s *%#x(%%rip)", name, next+uint64(int64(in.Disp)))
	}
	return name
}

// DisasmBytes disassembles up to max instructions from code, assumed to
// start at virtual address base. Decoding stops at the first invalid or
// truncated instruction. If max <= 0 the whole slice is disassembled.
func DisasmBytes(code []byte, base uint64, max int) []string {
	var out []string
	off := 0
	for off < len(code) {
		if max > 0 && len(out) >= max {
			break
		}
		in, err := Decode(code[off:])
		if err != nil {
			out = append(out, fmt.Sprintf("%#x: %v", base+uint64(off), err))
			break
		}
		out = append(out, fmt.Sprintf("%#x: %s", base+uint64(off), in.Disasm(base+uint64(off))))
		off += in.Len
	}
	return out
}
