package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// allOps lists every defined opcode for exhaustive encode/decode coverage.
var allOps = []Op{
	OpNOP, OpRET, OpHLT, OpPUSH, OpPOP, OpMOVABS, OpMOVI, OpMOV,
	OpLOAD, OpSTORE, OpLEARIP, OpLDRIP, OpSTRIP,
	OpADD, OpSUB, OpXOR, OpAND, OpOR, OpCMP, OpTEST, OpIMUL, OpUDIV,
	OpADDI, OpSUBI, OpCMPI, OpANDI, OpXORI, OpSHLI, OpSHRI, OpXORM,
	OpCALL, OpJMP, OpCALLR, OpCALLM, OpJMPR, OpJMPM,
	OpJE, OpJNE, OpJL, OpJGE, OpJLE, OpJG, OpJB, OpJAE,
}

// canonicalize zeroes the operand fields an opcode's encoding does not
// carry, producing the instruction Decode should return.
func canonicalize(in Inst) Inst {
	out := Inst{Op: in.Op, Len: EncodedLen(in.Op)}
	switch opClasses[in.Op] {
	case clReg:
		out.R1 = in.R1
	case clRegPair:
		out.R1, out.R2 = in.R1, in.R2
	case clRegImm64:
		out.R1, out.Imm = in.R1, in.Imm
	case clRegImm32:
		out.R1, out.Imm = in.R1, int64(int32(in.Imm))
	case clRegImm8:
		out.R1, out.Imm = in.R1, int64(uint8(in.Imm))
	case clPairDisp:
		out.R1, out.R2, out.Disp = in.R1, in.R2, in.Disp
	case clRegDisp:
		out.R1, out.Disp = in.R1, in.Disp
	case clRel32, clDisp32:
		out.Disp = in.Disp
	}
	return out
}

func TestEncodeDecodeRoundTripAllOpcodes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, op := range allOps {
		for i := 0; i < 32; i++ {
			in := Inst{
				Op:   op,
				R1:   Reg(rng.Intn(NumRegs)),
				R2:   Reg(rng.Intn(NumRegs)),
				Imm:  rng.Int63() - rng.Int63(),
				Disp: int32(rng.Uint32()),
			}
			want := canonicalize(in)
			enc := in.Encode()
			if len(enc) != EncodedLen(op) {
				t.Fatalf("%s: encoded length %d, want %d", op.Name(), len(enc), EncodedLen(op))
			}
			got, err := Decode(enc)
			if err != nil {
				t.Fatalf("%s: decode: %v", op.Name(), err)
			}
			if got != want {
				t.Fatalf("%s: round trip mismatch\n got %+v\nwant %+v", op.Name(), got, want)
			}
		}
	}
}

func TestDecodeRejectsInvalidOpcode(t *testing.T) {
	// Collect bytes that are NOT opcodes.
	defined := map[byte]bool{}
	for _, op := range allOps {
		defined[byte(op)] = true
	}
	checked := 0
	for b := 0; b < 256; b++ {
		if defined[byte(b)] {
			continue
		}
		buf := []byte{byte(b), 0, 0, 0, 0, 0, 0, 0, 0, 0}
		if _, err := Decode(buf); err == nil {
			t.Fatalf("opcode 0x%02x should be invalid", b)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no invalid opcodes checked")
	}
}

func TestDecodeTruncated(t *testing.T) {
	for _, op := range allOps {
		want := EncodedLen(op)
		if want == 1 {
			continue
		}
		full := Inst{Op: op}.Encode()
		for n := 0; n < want; n++ {
			if _, err := Decode(full[:n]); err == nil {
				t.Fatalf("%s: decode of %d/%d bytes should fail", op.Name(), n, want)
			}
		}
	}
	if _, err := Decode(nil); err != ErrTruncated {
		t.Fatalf("Decode(nil) = %v, want ErrTruncated", err)
	}
}

func TestDecodeRejectsInvalidRegister(t *testing.T) {
	for _, op := range []Op{OpPUSH, OpPOP, OpMOVABS, OpMOVI, OpLEARIP, OpSHLI} {
		buf := make([]byte, MaxInstLen)
		buf[0] = byte(op)
		buf[1] = 0x1F // register 31: out of range
		if _, err := Decode(buf); err == nil {
			t.Fatalf("%s with register 31 should fail to decode", op.Name())
		}
	}
}

// TestQuickRoundTrip property: for any operand values, Encode then Decode
// yields the canonical instruction.
func TestQuickRoundTrip(t *testing.T) {
	f := func(opIdx uint8, r1, r2 uint8, imm int64, disp int32) bool {
		op := allOps[int(opIdx)%len(allOps)]
		in := Inst{
			Op: op, R1: Reg(r1 % NumRegs), R2: Reg(r2 % NumRegs),
			Imm: imm, Disp: disp,
		}
		got, err := Decode(in.Encode())
		return err == nil && got == canonicalize(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDecodeNeverPanics property: Decode tolerates arbitrary bytes.
// The gadget scanner decodes at every byte offset of module images, so this
// must hold for any input.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		in, err := Decode(b)
		if err != nil {
			return true
		}
		// A successful decode must report a length within the input.
		return in.Len >= 1 && in.Len <= len(b) && in.Len <= MaxInstLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

func TestImmediateSignExtension(t *testing.T) {
	in := Inst{Op: OpMOVI, R1: RAX, Imm: -5}
	got, err := Decode(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Imm != -5 {
		t.Fatalf("imm32 sign extension: got %d, want -5", got.Imm)
	}

	in = Inst{Op: OpADDI, R1: RBX, Imm: int64(int32(-1 << 31))}
	got, err = Decode(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Imm != int64(int32(-1<<31)) {
		t.Fatalf("imm32 min: got %d", got.Imm)
	}
}

func TestMovabsCarries64BitImmediate(t *testing.T) {
	const big = int64(0x7FEE_DDCC_BBAA_0102)
	in := Inst{Op: OpMOVABS, R1: R15, Imm: big}
	got, err := Decode(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Imm != big {
		t.Fatalf("imm64: got %#x, want %#x", got.Imm, big)
	}
}

func TestRetIsSingleByte(t *testing.T) {
	// The 1-byte RET is what makes misaligned decode yield gadgets; pin it.
	enc := Inst{Op: OpRET}.Encode()
	if len(enc) != 1 || enc[0] != 0xC3 {
		t.Fatalf("RET encoding = %x, want C3", enc)
	}
}

func TestBranchClassification(t *testing.T) {
	branches := map[Op]bool{
		OpCALL: true, OpJMP: true, OpCALLR: true, OpCALLM: true,
		OpJMPR: true, OpJMPM: true, OpRET: true,
		OpJE: true, OpJNE: true, OpJL: true, OpJGE: true,
		OpJLE: true, OpJG: true, OpJB: true, OpJAE: true,
	}
	indirect := map[Op]bool{OpCALLR: true, OpCALLM: true, OpJMPR: true, OpJMPM: true}
	for _, op := range allOps {
		if got := op.IsBranch(); got != branches[op] {
			t.Errorf("%s.IsBranch() = %v, want %v", op.Name(), got, branches[op])
		}
		if got := op.IsIndirectBranch(); got != indirect[op] {
			t.Errorf("%s.IsIndirectBranch() = %v, want %v", op.Name(), got, indirect[op])
		}
	}
}

func TestDisasmSmoke(t *testing.T) {
	cases := []struct {
		in   Inst
		pc   uint64
		want string
	}{
		{Inst{Op: OpRET}, 0, "ret"},
		{Inst{Op: OpPUSH, R1: RBP}, 0, "push %rbp"},
		{Inst{Op: OpMOV, R1: RAX, R2: RBX}, 0, "mov %rbx, %rax"},
		{Inst{Op: OpXORM, R1: R11, R2: RSP, Disp: 0}, 0, "xor %r11, 0(%rsp)"},
		{Inst{Op: OpCALLR, R1: RAX}, 0, "call *%rax"},
	}
	for _, c := range cases {
		c.in.Len = EncodedLen(c.in.Op)
		if got := c.in.Disasm(c.pc); got != c.want {
			t.Errorf("Disasm(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDisasmRelativeTargets(t *testing.T) {
	// call at 0x1000, rel32 = +0x20 → target = 0x1000 + 5 + 0x20 = 0x1025.
	in := Inst{Op: OpCALL, Disp: 0x20, Len: 5}
	got := in.Disasm(0x1000)
	if !strings.Contains(got, "0x1025") {
		t.Fatalf("Disasm = %q, want target 0x1025", got)
	}
}

func TestDisasmBytes(t *testing.T) {
	var code []byte
	code = Inst{Op: OpPUSH, R1: RBP}.Append(code)
	code = Inst{Op: OpMOVI, R1: RAX, Imm: 7}.Append(code)
	code = Inst{Op: OpRET}.Append(code)
	lines := DisasmBytes(code, 0x4000, 0)
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3: %v", len(lines), lines)
	}
	if !strings.HasPrefix(lines[0], "0x4000:") {
		t.Errorf("first line %q should start at 0x4000", lines[0])
	}
}

func TestDisasmBytesStopsAtInvalid(t *testing.T) {
	code := []byte{byte(OpNOP), 0x00 /* invalid opcode */}
	lines := DisasmBytes(code, 0, 0)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want nop + error marker: %v", len(lines), lines)
	}
	if !strings.Contains(lines[1], "invalid opcode") {
		t.Errorf("second line %q should report invalid opcode", lines[1])
	}
}

func TestMisalignedDecodeYieldsDifferentStream(t *testing.T) {
	// Encode movabs with an immediate whose bytes themselves form
	// instructions; decoding at offset 2 must see a different stream.
	// This is the property ROP gadget discovery exploits.
	imm := int64(0)
	immBytes := []byte{byte(OpPUSH), byte(RAX), byte(OpRET), byte(OpNOP), byte(OpNOP), byte(OpNOP), byte(OpNOP), byte(OpNOP)}
	for i := 7; i >= 0; i-- {
		imm = imm<<8 | int64(immBytes[i])
	}
	code := Inst{Op: OpMOVABS, R1: RAX, Imm: imm}.Encode()

	in, err := Decode(code[2:])
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != OpPUSH || in.R1 != RAX {
		t.Fatalf("misaligned decode got %s, want push %%rax", in)
	}
	in2, err := Decode(code[2+in.Len:])
	if err != nil {
		t.Fatal(err)
	}
	if in2.Op != OpRET {
		t.Fatalf("second misaligned inst = %s, want ret", in2)
	}
}

func TestRegString(t *testing.T) {
	if RSP.String() != "rsp" || R11.String() != "r11" {
		t.Fatalf("register names wrong: %s %s", RSP, R11)
	}
	if Reg(200).Valid() {
		t.Fatal("register 200 should be invalid")
	}
}

func TestArgRegsOrder(t *testing.T) {
	want := [6]Reg{RDI, RSI, RDX, RCX, R8, R9}
	if ArgRegs != want {
		t.Fatalf("ArgRegs = %v, want SysV order %v", ArgRegs, want)
	}
}

func BenchmarkDecode(b *testing.B) {
	code := Inst{Op: OpLOAD, R1: RAX, R2: RBX, Disp: 128}.Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(code); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	in := Inst{Op: OpLOAD, R1: RAX, R2: RBX, Disp: 128}
	buf := make([]byte, 0, MaxInstLen)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = in.Append(buf[:0])
	}
}
