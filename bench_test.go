// Package adelie's top-level benchmarks regenerate every table and figure
// of the paper's evaluation as testing.B benchmarks, reporting the
// figure's headline metric via b.ReportMetric. The same sweeps are
// available interactively through cmd/benchtool, which prints the full
// data series; EXPERIMENTS.md records paper-vs-measured for each.
//
// Benchmarks measure the simulated metrics (deterministic under the fixed
// seeds) and report wall-clock ns/op for the harness itself.
package adelie_test

import (
	"testing"

	"adelie/internal/attack"
	"adelie/internal/cpu"
	"adelie/internal/drivers"
	"adelie/internal/kernel"
	"adelie/internal/sim"
	"adelie/internal/workload"
)

// BenchmarkFig1CVEData reports the terminal-year driver-CVE counts of the
// background figure (data series; no computation to speak of).
func BenchmarkFig1CVEData(b *testing.B) {
	for i := 0; i < b.N; i++ {
		last := attack.CVEData[len(attack.CVEData)-1]
		b.ReportMetric(float64(last.Linux), "linux-cves")
		b.ReportMetric(float64(last.Windows), "windows-cves")
	}
}

// BenchmarkFig5aModuleSize reports the mean PIC/vanilla size ratio across
// the driver suite + synthetic corpus sample.
func BenchmarkFig5aModuleSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := workload.ModuleSizes(8)
		if err != nil {
			b.Fatal(err)
		}
		var ratio float64
		for _, r := range rows {
			ratio += float64(r.PICBytes) / float64(r.VanillaBytes)
		}
		b.ReportMetric(ratio/float64(len(rows)), "pic-size-ratio")
	}
}

// BenchmarkFig5bDDRead reports cached-read MB/s for the four §5.1 configs
// at a 64 KB block size.
func BenchmarkFig5bDDRead(b *testing.B) {
	for _, cfg := range workload.PICConfigs {
		b.Run(string(cfg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := workload.DD(cfg, 64, 400)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.MBps, "MB/s")
			}
		})
	}
}

// BenchmarkFig5cSysbench reports cached file_io MB/s, random and
// sequential.
func BenchmarkFig5cSysbench(b *testing.B) {
	for _, mode := range []string{"seqrd", "rndrd"} {
		for _, cfg := range []workload.Config{workload.CfgVanillaRet, workload.CfgPICRet} {
			b.Run(mode+"/"+string(cfg), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r, err := workload.Sysbench(cfg, mode, 300)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(r.MBps, "MB/s")
				}
			})
		}
	}
}

// BenchmarkFig5dKernbench reports kernel-space seconds at the optimal
// concurrency level.
func BenchmarkFig5dKernbench(b *testing.B) {
	for _, cfg := range workload.PICConfigs {
		b.Run(string(cfg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := workload.Kernbench(cfg, 20, 40)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.KernelSec*1000, "kernel-ms")
			}
		})
	}
}

// BenchmarkFig6NVMe reports NVMe direct-read throughput and CPU usage
// under each re-randomization setting.
func BenchmarkFig6NVMe(b *testing.B) {
	cases := []struct {
		name    string
		period  workload.RerandPeriod
		vanilla bool
	}{
		{"linux", workload.PeriodOff, true},
		{"no-rerand", workload.PeriodNone, false},
		{"5ms", workload.Period5ms, false},
		{"1ms", workload.Period1ms, false},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := workload.NVMeDirectRead(c.period, c.vanilla, 600)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.MBps, "MB/s")
				b.ReportMetric(r.CPUPct, "cpu%")
			}
		})
	}
}

// BenchmarkFig7OLTP reports transactions/s at the saturation concurrency.
func BenchmarkFig7OLTP(b *testing.B) {
	cases := []struct {
		name    string
		period  workload.RerandPeriod
		vanilla bool
	}{
		{"linux", workload.PeriodOff, true},
		{"5ms", workload.Period5ms, false},
		{"1ms", workload.Period1ms, false},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := workload.OLTP(c.period, c.vanilla, 100, 120)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.TPS, "tx/s")
				b.ReportMetric(r.CPUPct, "cpu%")
			}
		})
	}
}

// BenchmarkFig8Apache reports MB/s for the extreme block sizes at high
// concurrency under the tightest period.
func BenchmarkFig8Apache(b *testing.B) {
	cases := []struct {
		name    string
		period  workload.RerandPeriod
		vanilla bool
		block   int
	}{
		{"linux/8k", workload.PeriodOff, true, 8192},
		{"1ms/8k", workload.Period1ms, false, 8192},
		{"linux/512", workload.PeriodOff, true, 512},
		{"1ms/512", workload.Period1ms, false, 512},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := workload.Apache(c.period, c.vanilla, c.block, 100, 120)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.MBps, "MB/s")
				b.ReportMetric(r.CPUPct, "cpu%")
			}
		})
	}
}

// BenchmarkFig9Ioctl reports the null-ioctl rate per variant — the
// CPU-bound worst case isolating wrapper and stack-swap costs.
func BenchmarkFig9Ioctl(b *testing.B) {
	for _, v := range workload.IoctlVariants {
		b.Run(v.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := workload.Ioctl(v.Name, v.Cfg, 3000)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.MopsPerSec, "Mops/s")
			}
		})
	}
}

// BenchmarkFig10Gadgets reports total gadget counts per population.
func BenchmarkFig10Gadgets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := workload.GadgetDistribution(30)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Dist.Total()), r.Population+"-gadgets")
		}
	}
}

// BenchmarkTable2Chains reports the NX-chain rate across the corpus.
func BenchmarkTable2Chains(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := workload.ChainCensus(120, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(t.CleanChain+t.SideEffectChain)/float64(t.Modules)*100, "chain-rate-%")
	}
}

// BenchmarkEngineParallelLanes measures the execution engine itself: a
// fixed pool of CPU-bound ioctl operations interpreted on 1 vs 20
// physical lanes (host wall-clock per op is the metric; the simulated
// numbers are a side effect). The multi-lane case also reports how many
// vCPUs accrued interpreted work — the engine's true multi-core
// accounting.
func BenchmarkEngineParallelLanes(b *testing.B) {
	for _, workers := range []int{1, 20} {
		b.Run(map[int]string{1: "lanes1", 20: "lanes20"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m, err := sim.NewMachine(sim.Config{NumCPUs: 20, Seed: 11, KASLR: kernel.KASLRFull64})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.LoadDriver("dummy", drivers.BuildOpts{PIC: true, Retpoline: true}); err != nil {
					b.Fatal(err)
				}
				va, _ := m.K.Symbol("dummy_ioctl")
				b.StartTimer()
				res, err := m.Run(sim.RunConfig{Ops: 20000, Workers: workers, SyscallCycles: workload.SyscallEntry},
					func(c *cpu.CPU) (uint64, error) {
						_, err := c.Call(va, 0)
						return 0, err
					})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				busyCPUs := 0
				for j := 0; j < m.K.NumCPUs(); j++ {
					if m.K.CPU(j).Cycles > 0 {
						busyCPUs++
					}
				}
				b.ReportMetric(float64(res.Lanes), "lanes")
				b.ReportMetric(float64(busyCPUs), "busy-vcpus")
				b.StartTimer()
			}
		})
	}
}

// BenchmarkScalability reports the randomizer thread's single-core share
// at a 20 ms period for a 60-module set (§5.4).
func BenchmarkScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := workload.Scalability([]int{60}, 20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].CPUPct, "core-%")
		b.ReportMetric(rows[0].CPUPct/60*950, "est-950-mods-%")
	}
}

// BenchmarkSecurityAnalysis reports the §6 outcomes as 0/1 metrics.
func BenchmarkSecurityAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := workload.SecurityAnalysis()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(boolMetric(rep.JITROPVanilla.Succeeded), "jitrop-vanilla-success")
		b.ReportMetric(boolMetric(rep.JITROPDefended.Succeeded), "jitrop-defended-success")
		b.ReportMetric(float64(rep.VanillaBruteForce.Attempts), "vanilla-bruteforce-attempts")
	}
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// BenchmarkAblationPatching reports the GOT shrinkage from the loader's
// Fig.-4 run-time patching across the driver suite.
func BenchmarkAblationPatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := workload.PatchingAblation(200)
		if err != nil {
			b.Fatal(err)
		}
		var with, without int
		for _, r := range rows {
			with += r.GotEntriesPatched
			without += r.GotEntriesUnpatched
		}
		b.ReportMetric(float64(without-with), "got-entries-saved")
	}
}

// BenchmarkAblationSMR reports each reclamation scheme's undriven backlog
// after a re-randomization burst — why the paper picks Hyaline.
func BenchmarkAblationSMR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := workload.SMRAblation()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.DeltaAfterSteps), r.Scheme+"-backlog")
		}
	}
}

// BenchmarkAblationMechanisms reports the incremental cost of each
// instrumentation mechanism on the CPU-bound ioctl path.
func BenchmarkAblationMechanisms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := workload.MechanismAblation(1500)
		if err != nil {
			b.Fatal(err)
		}
		base := rows[0].MopsPerSec
		b.ReportMetric((1-rows[len(rows)-1].MopsPerSec/base)*100, "full-instr-cost-%")
	}
}
