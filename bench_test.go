// Package adelie's top-level benchmarks regenerate the paper's evaluation
// by iterating the typed experiment registry: every registered figure,
// table and scenario runs as one testing.B sub-benchmark, reporting its
// headline simulated metrics via b.ReportMetric alongside the harness's
// wall-clock ns/op. Adding an experiment to the registry adds it here
// (and to cmd/benchtool) with no per-figure code.
//
// Benchmarks run at -quick scale (each param's quick value) so the CI
// 1-iteration pass stays fast; the simulated metrics are deterministic
// under the registry's fixed seed params.
package adelie_test

import (
	"testing"

	"adelie/internal/cpu"
	"adelie/internal/drivers"
	"adelie/internal/kernel"
	"adelie/internal/sim"
	"adelie/internal/workload"
)

// BenchmarkExperiments runs every registered experiment at quick scale.
// The ns/op figure tracks the harness itself; the reported metrics are
// each figure's headline simulated numbers.
func BenchmarkExperiments(b *testing.B) {
	for _, e := range workload.Experiments.All() {
		e := e
		b.Run(e.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := e.Run(e.Params(true))
				if err != nil {
					b.Fatal(err)
				}
				if e.Headline != nil {
					for name, v := range e.Headline(t) {
						b.ReportMetric(v, name)
					}
				}
			}
		})
	}
}

// BenchmarkEngineParallelLanes measures the execution engine itself: a
// fixed pool of CPU-bound ioctl operations interpreted on 1 vs 20
// physical lanes (host wall-clock per op is the metric; the simulated
// numbers are a side effect). The multi-lane case also reports how many
// vCPUs accrued interpreted work — the engine's true multi-core
// accounting.
func BenchmarkEngineParallelLanes(b *testing.B) {
	for _, workers := range []int{1, 20} {
		b.Run(map[int]string{1: "lanes1", 20: "lanes20"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m, err := sim.NewMachine(sim.Config{NumCPUs: 20, Seed: 11, KASLR: kernel.KASLRFull64})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.LoadDriver("dummy", drivers.BuildOpts{PIC: true, Retpoline: true}); err != nil {
					b.Fatal(err)
				}
				va, _ := m.K.Symbol("dummy_ioctl")
				b.StartTimer()
				res, err := m.Run(sim.RunConfig{Ops: 20000, Workers: workers, SyscallCycles: workload.SyscallEntry},
					func(c *cpu.CPU) (uint64, error) {
						_, err := c.Call(va, 0)
						return 0, err
					})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				busyCPUs := 0
				for j := 0; j < m.K.NumCPUs(); j++ {
					if m.K.CPU(j).Cycles > 0 {
						busyCPUs++
					}
				}
				b.ReportMetric(float64(res.Lanes), "lanes")
				b.ReportMetric(float64(busyCPUs), "busy-vcpus")
				b.StartTimer()
			}
		})
	}
}
