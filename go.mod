module adelie

go 1.24
